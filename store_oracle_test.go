package netfail

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"netfail/internal/store"
	"netfail/internal/trace"
)

// The store is a cache of pipeline answers, so its correctness bar is
// an oracle: every query answer must be value-identical to computing
// the same answer fresh from the analysis. Comparison goes through
// JSON so time.Time equality is exact wire equality, not
// monotonic-clock-sensitive struct equality.

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// compareJSON fails with the first point of divergence instead of
// dumping two full documents.
func compareJSON(t *testing.T, what string, got, want any) {
	t.Helper()
	g, w := mustJSON(t, got), mustJSON(t, want)
	if g == w {
		return
	}
	i := 0
	for i < len(g) && i < len(w) && g[i] == w[i] {
		i++
	}
	start := i - 80
	if start < 0 {
		start = 0
	}
	end := func(s string) string {
		if i+80 < len(s) {
			return s[start : i+80]
		}
		return s[start:]
	}
	t.Errorf("%s diverge from pipeline oracle at byte %d:\n got …%s…\nwant …%s…", what, i, end(g), end(w))
}

// oracleFailures recomputes the store's failure list from the
// analysis — the same construction the writer uses, re-derived here
// so a writer bug cannot hide behind its own output.
func oracleFailures(a *Analysis) []store.FailureRecord {
	recs := make([]store.FailureRecord, 0, len(a.SyslogFailures)+len(a.ISISFailures))
	for _, f := range a.SyslogFailures {
		recs = append(recs, store.FailureRecord{Source: store.SourceSyslog, Link: f.Link, Start: f.Start, End: f.End})
	}
	for _, f := range a.ISISFailures {
		recs = append(recs, store.FailureRecord{Source: store.SourceISIS, Link: f.Link, Start: f.Start, End: f.End})
	}
	store.SortFailureRecords(recs)
	return recs
}

func oracleTransitions(a *Analysis) []store.TransitionRecord {
	var recs []store.TransitionRecord
	add := func(st store.Stream, ts []trace.Transition) {
		for _, tr := range ts {
			recs = append(recs, store.TransitionRecord{
				Stream: st, Time: tr.Time, Link: tr.Link, Dir: tr.Dir, Kind: tr.Kind, Reporter: tr.Reporter,
			})
		}
	}
	add(store.StreamSyslogAdj, a.SyslogAdj)
	add(store.StreamSyslogPerRouter, a.SyslogPerRtr)
	add(store.StreamSyslogPhysical, a.SyslogPhysical)
	add(store.StreamISReach, a.ISReach)
	add(store.StreamIPReach, a.IPReach)
	store.SortTransitionRecords(recs)
	return recs
}

func oracleMessages(camp *Campaign) []store.MessageRecord {
	out := make([]store.MessageRecord, 0, len(camp.Syslog))
	for _, m := range camp.Syslog {
		out = append(out, store.MessageRecord{
			Time: time.UnixMilli(m.Timestamp.UnixMilli()).UTC(),
			Host: m.Hostname,
			Line: m.Render(),
		})
	}
	return out
}

func oracleTables(st *Study) store.Tables {
	a := st.Analysis
	return store.Tables{
		Table1: a.Table1(st.Campaign.Archive.FileCount(), st.Campaign.Counts.LSPUpdates),
		Table2: a.Table2(),
		Table3: a.Table3(),
		Table4: a.Table4(),
		Table5: a.Table5(),
		Table6: a.Table6(),
		Table7: a.Table7(),
	}
}

// TestStoreOracleAcrossSeedsAndParallelism pins every bulk query
// against the pipeline oracle across campaigns and worker counts —
// building the store through a parallel run must not reorder or drop
// anything.
func TestStoreOracleAcrossSeedsAndParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 5} {
		for _, par := range []int{0, 1, 2} {
			t.Run(fmt.Sprintf("seed=%d/parallelism=%d", seed, par), func(t *testing.T) {
				dir := t.TempDir()
				st, err := Run(ctx, smallConfig(seed), WithParallelism(par), WithStoreDir(dir))
				if err != nil {
					t.Fatal(err)
				}
				s, err := store.Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				a := st.Analysis

				links, err := s.Links(ctx)
				if err != nil {
					t.Fatal(err)
				}
				wantLinks := make([]store.LinkEntry, 0, len(a.AnalyzedLinks))
				for _, l := range a.AnalyzedLinks {
					wantLinks = append(wantLinks, store.LinkEntry{ID: l.ID, Class: l.Class})
				}
				compareJSON(t, "links", links, wantLinks)

				fails, err := s.Failures(ctx)
				if err != nil {
					t.Fatal(err)
				}
				compareJSON(t, "failures", fails, oracleFailures(a))

				trans, err := s.Transitions(ctx)
				if err != nil {
					t.Fatal(err)
				}
				compareJSON(t, "transitions", trans, oracleTransitions(a))

				msgs, err := s.Messages(ctx)
				if err != nil {
					t.Fatal(err)
				}
				compareJSON(t, "messages", msgs, oracleMessages(st.Campaign))

				compareJSON(t, "tables", *s.Tables(), oracleTables(st))

				man := s.Manifest()
				if man.Seed != seed {
					t.Errorf("manifest seed = %d, want %d", man.Seed, seed)
				}
				if man.Failures.Records != int64(len(fails)) || man.Transitions.Records != int64(len(trans)) {
					t.Errorf("manifest record counts (%d failures, %d transitions) disagree with queries (%d, %d)",
						man.Failures.Records, man.Transitions.Records, len(fails), len(trans))
				}
			})
		}
	}
}

// TestStoreFilteredQueriesMatchOracle pins the indexed/filtered paths
// (postings, sparse-index window seeks, limits, flap grouping)
// against brute-force filters over the oracle lists. The indexed path
// and the filter predicate are independent implementations, so drift
// in either shows up as a mismatch.
func TestStoreFilteredQueriesMatchOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	dir := t.TempDir()
	st, err := Run(ctx, smallConfig(5), WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := st.Analysis
	allFails := oracleFailures(a)
	allTrans := oracleTransitions(a)
	allMsgs := oracleMessages(st.Campaign)
	if len(allFails) == 0 || len(allTrans) == 0 || len(allMsgs) == 0 {
		t.Fatal("campaign produced no data to query")
	}

	from := time.Date(2011, 1, 10, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 0, 7)
	link := allFails[0].Link

	t.Run("failures by link", func(t *testing.T) {
		got, err := s.Failures(ctx, store.WithLink(link))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.FailureRecord
		for _, r := range allFails {
			if r.Link == link {
				want = append(want, r)
			}
		}
		compareJSON(t, "failures by link", got, want)
	})

	t.Run("failures in window", func(t *testing.T) {
		got, err := s.Failures(ctx, store.WithWindow(from, to))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.FailureRecord
		for _, r := range allFails {
			if r.Failure().Overlaps(from, to) {
				want = append(want, r)
			}
		}
		if len(want) == 0 {
			t.Fatal("window selects nothing; widen it")
		}
		compareJSON(t, "failures in window", got, want)
	})

	t.Run("failures by source with limit", func(t *testing.T) {
		got, err := s.Failures(ctx, store.WithSource(store.SourceISIS), store.WithLimit(7))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.FailureRecord
		for _, r := range allFails {
			if r.Source == store.SourceISIS {
				want = append(want, r)
				if len(want) == 7 {
					break
				}
			}
		}
		compareJSON(t, "failures by source with limit", got, want)
	})

	t.Run("transitions by stream and direction", func(t *testing.T) {
		got, err := s.Transitions(ctx, store.WithStream(store.StreamISReach), store.WithDirection(trace.Down))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.TransitionRecord
		for _, r := range allTrans {
			if r.Stream == store.StreamISReach && r.Dir == trace.Down {
				want = append(want, r)
			}
		}
		compareJSON(t, "transitions by stream and direction", got, want)
	})

	t.Run("transitions by link in window", func(t *testing.T) {
		tlink := allTrans[len(allTrans)/2].Link
		got, err := s.Transitions(ctx, store.WithLink(tlink), store.WithWindow(from, to))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.TransitionRecord
		for _, r := range allTrans {
			if r.Link == tlink && !r.Time.Before(from) && r.Time.Before(to) {
				want = append(want, r)
			}
		}
		compareJSON(t, "transitions by link in window", got, want)
	})

	t.Run("transitions by reporter", func(t *testing.T) {
		rep := allTrans[0].Reporter
		got, err := s.Transitions(ctx, store.WithReporter(rep))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.TransitionRecord
		for _, r := range allTrans {
			if r.Reporter == rep {
				want = append(want, r)
			}
		}
		compareJSON(t, "transitions by reporter", got, want)
	})

	t.Run("messages by host", func(t *testing.T) {
		host := allMsgs[0].Host
		got, err := s.Messages(ctx, store.WithHost(host))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.MessageRecord
		for _, m := range allMsgs {
			if m.Host == host {
				want = append(want, m)
			}
		}
		compareJSON(t, "messages by host", got, want)
	})

	t.Run("messages by substring in window", func(t *testing.T) {
		host := allMsgs[len(allMsgs)/3].Host
		got, err := s.Messages(ctx, store.WithContains(host), store.WithWindow(from, to))
		if err != nil {
			t.Fatal(err)
		}
		var want []store.MessageRecord
		for _, m := range allMsgs {
			if !containsStr(m.Line, host) {
				continue
			}
			if m.Time.Before(from) || !m.Time.Before(to) {
				continue
			}
			want = append(want, m)
		}
		if len(want) == 0 {
			t.Fatal("substring window selects nothing; pick another probe")
		}
		compareJSON(t, "messages by substring in window", got, want)
	})

	t.Run("messages with limit", func(t *testing.T) {
		got, err := s.Messages(ctx, store.WithLimit(100))
		if err != nil {
			t.Fatal(err)
		}
		compareJSON(t, "messages with limit", got, allMsgs[:100])
	})

	t.Run("flaps", func(t *testing.T) {
		for _, src := range []store.Source{store.SourceSyslog, store.SourceISIS} {
			got, err := s.Flaps(ctx, src)
			if err != nil {
				t.Fatal(err)
			}
			var fs []Failure
			for _, r := range allFails {
				if r.Source == src {
					fs = append(fs, r.Failure())
				}
			}
			want := FlapEpisodes(fs, a.In.FlapGap)
			compareJSON(t, "flaps/"+src.String(), got, want)
		}
	})
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestStoreFromCaptureMatchesInRAM pins the second build path: a
// store written by AnalyzeCaptureDir (streaming, sharded, possibly
// parallel) must answer every query identically to the store the
// in-RAM pipeline writes for the same campaign.
func TestStoreFromCaptureMatchesInRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	cfg := smallConfig(3)

	ramStore := t.TempDir()
	if _, err := Run(ctx, cfg, WithStoreDir(ramStore)); err != nil {
		t.Fatal(err)
	}

	campDir := t.TempDir()
	if _, err := SimulateToCapture(ctx, cfg, FabricSpec{}, campDir); err != nil {
		t.Fatal(err)
	}
	capStore := t.TempDir() + "/store"
	if _, _, err := AnalyzeCaptureDir(ctx, campDir, false, WithStoreDir(capStore), WithParallelism(2)); err != nil {
		t.Fatal(err)
	}

	ram, err := store.Open(ramStore)
	if err != nil {
		t.Fatal(err)
	}
	cap, err := store.Open(capStore)
	if err != nil {
		t.Fatal(err)
	}

	rf, err := ram.Failures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := cap.Failures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	compareJSON(t, "capture-path failures", cf, rf)

	rt, err := ram.Transitions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := cap.Transitions(ctx)
	if err != nil {
		t.Fatal(err)
	}
	compareJSON(t, "capture-path transitions", ct, rt)

	rm, err := ram.Messages(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := cap.Messages(ctx)
	if err != nil {
		t.Fatal(err)
	}
	compareJSON(t, "capture-path messages", cm, rm)

	compareJSON(t, "capture-path tables", *cap.Tables(), *ram.Tables())
}
