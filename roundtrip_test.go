package netfail

import (
	"context"
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"netfail/internal/config"
	"netfail/internal/core"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/syslog"
	"netfail/internal/tickets"
	"netfail/internal/topo"
)

// TestFilePipelineMatchesInMemory saves a campaign to disk in the
// netfail-sim formats, reloads everything, re-runs the analysis, and
// checks the results equal the in-memory pipeline: the serialization
// layer must be lossless where it matters.
func TestFilePipelineMatchesInMemory(t *testing.T) {
	camp, err := Simulate(context.Background(), smallConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	inMem, err := Analyze(context.Background(), camp)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	// Save, mirroring cmd/netfail-sim.
	write := func(name string, fn func(*os.File) error) {
		t.Helper()
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("syslog.log", func(f *os.File) error { return syslog.WriteLog(f, camp.Syslog) })
	write("lsps.log", func(f *os.File) error { return netsim.WriteLSPLog(f, camp.LSPLog) })
	write("manifest.json", func(f *os.File) error { return camp.WriteManifest(f) })
	corpus := tickets.Generate(camp.Config.Seed+1, camp.GroundTruthFailures(), tickets.DefaultParams())
	write("tickets.json", func(f *os.File) error { return tickets.WriteJSON(f, corpus) })
	write("customers.json", func(f *os.File) error {
		return topo.WriteCustomersJSON(f, camp.Network.Customers)
	})
	if err := camp.Archive.SaveDir(filepath.Join(dir, "configs")); err != nil {
		t.Fatal(err)
	}

	// Reload, mirroring cmd/netfail-analyze.
	open := func(name string) *os.File {
		t.Helper()
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	mf := open("manifest.json")
	manifest, err := netsim.ReadManifest(mf)
	mf.Close()
	if err != nil {
		t.Fatal(err)
	}
	archive, err := config.LoadDir(filepath.Join(dir, "configs"))
	if err != nil {
		t.Fatal(err)
	}
	mined, err := config.Mine(archive)
	if err != nil {
		t.Fatal(err)
	}
	sf := open("syslog.log")
	msgs, bad, err := syslog.ReadLog(sf, manifest.Start)
	sf.Close()
	if err != nil || bad != 0 {
		t.Fatalf("syslog reload: err=%v bad=%d", err, bad)
	}
	lf := open("lsps.log")
	lsps, err := netsim.ReadLSPLog(lf)
	lf.Close()
	if err != nil {
		t.Fatal(err)
	}
	l := listener.New(mined.Network)
	for _, c := range lsps {
		if err := l.Process(c.Time, c.Data); err != nil {
			t.Fatal(err)
		}
	}
	res := l.Results()
	tf := open("tickets.json")
	corpus2, err := tickets.ReadJSON(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	cf := open("customers.json")
	customers, err := topo.ReadCustomersJSON(cf)
	cf.Close()
	if err != nil {
		t.Fatal(err)
	}
	fromDisk, err := core.Analyze(context.Background(), core.Input{
		Network:         mined.Network,
		Customers:       customers,
		Syslog:          msgs,
		ISTransitions:   res.ISTransitions,
		IPTransitions:   res.IPTransitions,
		Start:           manifest.Start,
		End:             manifest.End,
		ListenerOffline: manifest.Offline(),
		Tickets:         tickets.NewIndex(corpus2),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Compare headline results.
	a, b := inMem.Analysis.Table4(), fromDisk.Table4()
	if a.ISISFailures != b.ISISFailures || a.SyslogFailures != b.SyslogFailures ||
		a.OverlapFailures != b.OverlapFailures ||
		a.ISISDowntime != b.ISISDowntime || a.SyslogDowntime != b.SyslogDowntime {
		t.Errorf("Table 4 differs:\n mem: %+v\ndisk: %+v", a, b)
	}
	t3a, t3b := inMem.Analysis.Table3(), fromDisk.Table3()
	if t3a != t3b {
		t.Errorf("Table 3 differs:\n mem: %+v\ndisk: %+v", t3a, t3b)
	}
	t6a, t6b := inMem.Analysis.Table6(), fromDisk.Table6()
	if t6a != t6b {
		t.Errorf("Table 6 differs:\n mem: %+v\ndisk: %+v", t6a, t6b)
	}
	t7a, t7b := inMem.Analysis.Table7(), fromDisk.Table7()
	if t7a != t7b {
		t.Errorf("Table 7 differs:\n mem: %+v\ndisk: %+v", t7a, t7b)
	}
}

// TestGoldenSeed1Headline pins the seed-1 small-campaign headline
// numbers: any change to the deterministic pipeline shows up here
// before it silently shifts EXPERIMENTS.md.
func TestGoldenSeed1Headline(t *testing.T) {
	study, err := Run(context.Background(), smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	t4 := study.Analysis.Table4()
	var buf bytes.Buffer
	if err := study.Report(&buf); err != nil {
		t.Fatal(err)
	}
	if t4.ISISFailures == 0 || t4.SyslogFailures == 0 {
		t.Fatal("empty study")
	}
	// Re-run must give the identical report text.
	study2, err := Run(context.Background(), smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := study2.Report(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("report text not reproducible for identical seeds")
	}
}
