package netfail

import (
	"context"
	"bytes"
	"strings"
	"testing"
	"time"

	"netfail/internal/report"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// smallConfig is a quick campaign for API tests.
func smallConfig(seed int64) SimulationConfig {
	return SimulationConfig{
		Seed: seed,
		Spec: topo.Spec{
			Seed: seed, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
			DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 2, 15, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	}
}

func TestRunEndToEnd(t *testing.T) {
	study, err := Run(context.Background(), smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if study.Campaign == nil || study.Mined == nil || study.Listener == nil || study.Analysis == nil {
		t.Fatal("incomplete study")
	}
	t4 := study.Analysis.Table4()
	if t4.ISISFailures == 0 || t4.SyslogFailures == 0 {
		t.Errorf("empty comparison: %+v", t4)
	}
	// The analysis must have run on the MINED network, which round
	// trips the generated one.
	if len(study.Mined.Network.Links) != len(study.Campaign.Network.Links) {
		t.Errorf("mined %d links, campaign %d", len(study.Mined.Network.Links), len(study.Campaign.Network.Links))
	}
}

func TestReportRendersAllSections(t *testing.T) {
	study, err := Run(context.Background(), smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := study.Report(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5",
		"Table 6", "Table 7", "Figure 1a", "Figure 1b", "Figure 1c",
		"knee at ten seconds", "hold-previous",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}

func TestStagesComposable(t *testing.T) {
	camp, err := Simulate(context.Background(), smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	mined, err := MineConfigs(camp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Listen(context.Background(), mined.Network, camp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ISTransitions) == 0 {
		t.Error("listener produced no transitions")
	}
	if tix := GenerateTickets(camp); tix.Len() == 0 {
		t.Error("no tickets generated")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(context.Background(), smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Analysis.Table4(), b.Analysis.Table4()
	if ta.ISISFailures != tb.ISISFailures || ta.SyslogFailures != tb.SyslogFailures ||
		ta.SyslogDowntime != tb.SyslogDowntime {
		t.Errorf("nondeterministic: %+v vs %+v", ta, tb)
	}
}

func TestMarkdownReportEndToEnd(t *testing.T) {
	study, err := Run(context.Background(), smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.Markdown(&buf, study.Analysis,
		study.Campaign.Archive.FileCount(), study.Campaign.Counts.LSPUpdates); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Reproduction report", "## Table 1", "## Table 7",
		"| Verdict |", "knee at ten seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Topology cells always reproduce exactly on default-shaped specs
	// scaled down... the small spec differs from CENIC, so just check
	// verdicts exist.
	if !strings.Contains(out, "| ok |") {
		t.Error("no ok verdicts rendered")
	}
}
