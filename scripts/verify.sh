#!/bin/sh
# verify.sh — the single tier-1 verification entrypoint: build,
# vet, the repo's own static-analysis suite (netfail-lint), and the
# full test suite under the race detector. CI runs exactly this
# script; run it locally before pushing:
#
#   ./scripts/verify.sh          # everything
#   ./scripts/verify.sh -short   # skip the race run (quick iteration)
set -eu

cd "$(dirname "$0")/.."

short=0
[ "${1:-}" = "-short" ] && short=1

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> netfail-lint ./... (analyzers + escape baseline gate)"
go run ./cmd/netfail-lint ./...

echo "==> go test ./..."
go test ./...

echo "==> bench-compare (hot-path alloc pins)"
./scripts/bench-compare.sh > /dev/null

if [ "$short" = 0 ]; then
    echo "==> go test -race ./..."
    go test -race ./...

    echo "==> obs smoke (instrumented 1-month run)"
    ./scripts/obs-smoke.sh

    echo "==> query smoke (store build + netfail-query + /api/v1)"
    ./scripts/query.sh

    echo "==> scale smoke (2-shard spill campaign, 7 days)"
    MULTS=1,2 DAYS=7 MAX_RSS_MB=1024 OUT="$(mktemp)" ./scripts/scale.sh > /dev/null

    echo "==> chaos (kill/restart identity, overload soak, drain)"
    ./scripts/chaos.sh
fi

echo "verify: OK"
