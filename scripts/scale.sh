#!/usr/bin/env bash
# Scale gate: simulate and analyze sharded spill-to-disk campaigns at
# increasing CENIC multipliers, recording events/sec, per-phase
# wall-clock, on-disk capture size, and peak RSS into the BENCH_<PR>
# trajectory artifact (scale points merge with `make bench` results
# rather than replacing them). Fails if peak RSS exceeds MAX_RSS_MB —
# the spill format's whole point is that campaign size stops being a
# memory ceiling.
#
# Environment knobs:
#   PR          stack sequence number stamped into the report (default 9)
#   MULTS       comma-separated ascending multipliers (default 1,10)
#   DAYS        campaign days (default 0 = the full 13-month study)
#   SEED        campaign seed (default 1)
#   MAX_RSS_MB  peak-RSS bound in MB, 0 disables (default 2048)
#   OUT         output path (default BENCH_${PR}.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${PR:-9}"
MULTS="${MULTS:-1,10}"
DAYS="${DAYS:-0}"
SEED="${SEED:-1}"
MAX_RSS_MB="${MAX_RSS_MB:-2048}"
OUT="${OUT:-BENCH_${PR}.json}"

echo "scale: multipliers $MULTS, $DAYS days (0 = full study), RSS bound ${MAX_RSS_MB} MB" >&2
go run ./cmd/netfail-bench -scale \
    -scale-mult "$MULTS" -scale-days "$DAYS" -scale-seed "$SEED" \
    -scale-max-rss-mb "$MAX_RSS_MB" -pr "$PR" -o "$OUT"
echo "scale: wrote $OUT" >&2
