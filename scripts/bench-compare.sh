#!/usr/bin/env bash
# bench-compare.sh — the alloc-regression gate on the zero-allocation
# hot paths. Runs the pinned benchmarks with -benchmem and fails if any
# exceeds its allocs/op budget (netfail-bench -max-allocs). The pins
# are steady-state figures: each benchmark warms its scratch before the
# measured region, so any number above the budget means a per-record
# allocation crept back into a //netfail:hotpath loop.
#
#   BenchmarkSyslogExtract  6 allocs/op  fixed obs-stage cost, ~0/message
#   BenchmarkLSPDecode      0 allocs/op  arena decode, slot reuse
#   BenchmarkParseLinkEvent 0 allocs/op  []byte tokenizer + interning
#   BenchmarkAppend         0 allocs/op  reused WAL frame buffer
#   BenchmarkSegmentAppend  0 allocs/op  reused capture frame buffer
#   BenchmarkSegmentRead   16 allocs/op  zero-copy reader (buffer growth
#                                        amortized over 4096 records/op)
#   BenchmarkStoreWindowQueryWarm
#                          20 allocs/op  warm one-day/one-link store
#                                        query: two segment opens plus
#                                        result slices
#
# verify.sh runs this as part of tier-1; `make bench-compare` runs it
# alone. BENCHTIME trades precision for speed (default 10x).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-10x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkSyslogExtract$' -benchmem -benchtime "$BENCHTIME" . | tee "$raw"
go test -run '^$' -bench 'BenchmarkLSPDecode$|BenchmarkParseLinkEvent$' -benchmem -benchtime "$BENCHTIME" \
    ./internal/isis ./internal/syslog | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkAppend$' -benchmem -benchtime "$BENCHTIME" ./internal/checkpoint | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkSegmentAppend$|BenchmarkSegmentRead$' -benchmem -benchtime "$BENCHTIME" \
    ./internal/capture | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkStoreWindowQueryWarm$' -benchmem -benchtime "$BENCHTIME" . | tee -a "$raw"

go run ./cmd/netfail-bench -o /dev/null \
    -max-allocs BenchmarkSyslogExtract=6 \
    -max-allocs BenchmarkLSPDecode=0 \
    -max-allocs BenchmarkParseLinkEvent=0 \
    -max-allocs BenchmarkAppend=0 \
    -max-allocs BenchmarkSegmentAppend=0 \
    -max-allocs BenchmarkSegmentRead=16 \
    -max-allocs BenchmarkStoreWindowQueryWarm=20 \
    < "$raw"
echo "bench-compare: alloc pins hold" >&2
