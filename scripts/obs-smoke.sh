#!/bin/sh
# obs-smoke.sh — end-to-end check of the observability layer: run the
# instrumented pipeline over a one-month seeded campaign and assert
# that (a) the analysis itself still renders, (b) the tracer produced a
# non-empty stage/worker span tree, and (c) every drops.* counter is
# zero — a clean seeded run must not lose a single record.
#
#   make obs            # or: ./scripts/obs-smoke.sh
set -eu

cd "$(dirname "$0")/.."

out=$(mktemp)
err=$(mktemp)
trap 'rm -f "$out" "$err"' EXIT

echo "==> netfail-analyze -seed 1 -days 31 -table 4 -trace -progress -metrics"
go run ./cmd/netfail-analyze -seed 1 -days 31 -table 4 \
    -trace -progress -metrics >"$out" 2>"$err"

grep -q 'Table 4' "$out" || {
    echo "obs-smoke: FAIL: report missing Table 4" >&2
    cat "$out" >&2
    exit 1
}

# The span tree is what's left of stderr after the progress stream and
# the metrics dump; it must contain the top-level pipeline stages.
tree=$(grep -v '^progress:' "$err" | grep -v '^metric ' || true)
for stage in simulate listen analyze; do
    echo "$tree" | grep -q "^$stage " || {
        echo "obs-smoke: FAIL: span tree missing stage '$stage'" >&2
        echo "$tree" >&2
        exit 1
    }
done

drops=$(grep '^metric drops\.' "$err" || true)
[ -n "$drops" ] || {
    echo "obs-smoke: FAIL: no drops.* counters in metrics output" >&2
    exit 1
}
echo "$drops" | awk '$3 != 0 { bad = 1; print "obs-smoke: FAIL: nonzero " $2 " = " $3 > "/dev/stderr" }
                     END { exit bad }'

echo "$drops" | sed 's/^/    /'
echo "obs-smoke: OK ($(echo "$tree" | wc -l | tr -d ' ') spans, all drop counters zero)"
