#!/bin/sh
# chaos.sh — the crash-safety gate `make chaos` runs (and CI enforces):
#
#   1. kill/restart: netfail-serve is SIGKILLed at a seeded point
#      mid-ingest, restarted on the same state directory, and must
#      produce a final report byte-identical to an uninterrupted run
#      (TestChaosKillRestartReportIsByteIdentical, plus the in-process
#      twin TestKillResumeMatchesUninterrupted);
#   2. overload soak: each shed policy is driven at 10x queue capacity
#      and must account every record as ingested or shed, with bounded
#      queue depth (TestOverloadSoakShedsPerPolicyWithExactAccounting);
#   3. drain: a SIGTERM-style cancellation with a backlog must respect
#      its drain deadline and account the discarded backlog as shed.
#
# Everything runs under the race detector: crash-safety claims are
# worthless if the ingest path races.
set -eu

cd "$(dirname "$0")/.."

echo "==> chaos: kill/restart report identity (SIGKILL mid-ingest)"
go test -race -count=1 -run 'TestChaosKillRestart' .

echo "==> chaos: supervisor kill/resume, overload soak, drain deadline"
go test -race -count=1 \
    -run 'TestKillResumeMatchesUninterrupted|TestOverloadSoakShedsPerPolicyWithExactAccounting|TestDrainTimeoutBoundsShutdown' \
    ./internal/serve

echo "chaos: OK"
