#!/bin/sh
# query.sh — end-to-end smoke of the indexed failure store and its
# three query surfaces: build a store from a seeded two-week campaign
# with netfail-analyze -store, drive every netfail-query verb (text
# and -json), then mount the /api/v1 HTTP surface with `serve` and
# assert the JSON endpoints and the shared error envelope.
#
#   make query            # or: ./scripts/query.sh
set -eu

cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
srvpid=""
cleanup() {
    [ -n "$srvpid" ] && kill "$srvpid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

storedir="$tmp/store"
out="$tmp/out"

echo "==> netfail-analyze -seed 1 -days 14 -table 4 -store"
go run ./cmd/netfail-analyze -seed 1 -days 14 -table 4 -store "$storedir" > /dev/null

[ -f "$storedir/manifest.json" ] || {
    echo "query-smoke: FAIL: -store did not write a manifest" >&2
    exit 1
}

echo "==> go build ./cmd/netfail-query"
go build -o "$tmp/netfail-query" ./cmd/netfail-query
q="$tmp/netfail-query -store $storedir"

fail() {
    echo "query-smoke: FAIL: $1" >&2
    [ -f "$out" ] && sed 's/^/    /' "$out" >&2
    exit 1
}

echo "==> netfail-query verbs"
$q info > "$out"
grep -q 'NFSTORE1' "$out" || fail "info missing format name"
grep -q 'seed' "$out" || fail "info missing seed"

$q links > "$out"
[ -s "$out" ] || fail "links printed nothing"

$q -json failures -limit 5 > "$out"
grep -q '"count"' "$out" || fail "-json failures missing count"

$q -json transitions -stream is-reach -dir down -limit 3 > "$out"
grep -q '"is-reach"' "$out" || fail "-json transitions missing stream"

$q -json messages -limit 3 > "$out"
grep -q '"count"' "$out" || fail "-json messages missing count"

$q -json flaps -source syslog > "$out"
grep -q '"episodes"' "$out" || fail "-json flaps missing episodes"

$q table -n 4 > "$out"
grep -q 'Table 4' "$out" || fail "table -n 4 missing header"

# Usage errors must exit 2, not succeed or crash.
if $q table -n 99 > "$out" 2>&1; then
    fail "table -n 99 succeeded"
fi

echo "==> netfail-query serve + /api/v1"
addr=127.0.0.1:18641
$tmp/netfail-query -store "$storedir" serve -debug-addr "$addr" > "$out" 2>&1 &
srvpid=$!

i=0
until curl -sf "http://$addr/api/v1/health" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -gt 50 ] && fail "server never became healthy"
    kill -0 "$srvpid" 2>/dev/null || fail "server exited early"
    sleep 0.1
done

curl -sf "http://$addr/api/v1/links" > "$out" || fail "/api/v1/links"
grep -q '"links"' "$out" || fail "/api/v1/links missing links field"

curl -sf "http://$addr/api/v1/failures?source=isis&limit=5" > "$out" \
    || fail "/api/v1/failures"
grep -q '"count"' "$out" || fail "/api/v1/failures missing count"

curl -sf "http://$addr/api/v1/tables/4" > "$out" || fail "/api/v1/tables/4"
grep -q '"table"' "$out" || fail "/api/v1/tables/4 missing table field"

curl -sf "http://$addr/api/v1/store" > "$out" || fail "/api/v1/store"
grep -q 'NFSTORE1' "$out" || fail "/api/v1/store missing format"

# Bad parameters come back as 400 with the shared error envelope.
code=$(curl -s -o "$out" -w '%{http_code}' "http://$addr/api/v1/failures?limit=x")
[ "$code" = 400 ] || fail "bad limit returned $code, want 400"
grep -q '"error"' "$out" || fail "bad-param response missing error envelope"
grep -q '"bad_param"' "$out" || fail "bad-param envelope missing code"

kill "$srvpid"
wait "$srvpid" 2>/dev/null || true
srvpid=""

echo "query-smoke: OK (store built, CLI verbs, /api/v1 + error envelope)"
