#!/usr/bin/env bash
# Benchmark-trajectory harness: run the Benchmark* suites with
# -benchmem and distill the output into BENCH_<PR>.json via
# cmd/netfail-bench. CI uploads the file as an artifact; committing it
# per PR records how the pipeline's cost moves across the stack.
#
# Environment knobs:
#   PR        stack sequence number stamped into the report (default 10)
#   BENCHTIME go test -benchtime (default 1x: one measured iteration,
#             enough for trajectory tracking without minutes of CI)
#   BENCH     -bench regexp (default ".")
#   PKGS      packages with benchmarks (default: root + the codec,
#             stats, checkpoint, and capture suites)
#   PAIRS     space-separated base=variant overhead pairs recorded in
#             the report (default: the observability-enabled analysis
#             against its plain baseline, plus the store's warm window
#             query against a full pipeline re-run — the stored ratio
#             is the store's speedup, >=100x by acceptance)
#   OUT       output path (default BENCH_${PR}.json in the repo root)
#   PREV      previous BENCH_<n>.json for the cur-vs-prev ratio table
#             (default: the highest-numbered committed report below PR)
#   ISOLATE   regexp of root-package microbenchmarks to run in a fresh
#             process, away from the pipeline benchmarks' live heap
#             (default: the zero-alloc extraction benchmark; '^$'
#             disables)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${PR:-10}"
BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"
PKGS="${PKGS:-. ./internal/stats ./internal/syslog ./internal/isis ./internal/checkpoint ./internal/capture}"
PAIRS="${PAIRS:-BenchmarkAnalyzeMonth=BenchmarkAnalyzeMonthTraced BenchmarkStoreWindowQueryWarm=BenchmarkAnalyzeCaptureDirMonth}"
OUT="${OUT:-BENCH_${PR}.json}"

if [ -z "${PREV:-}" ]; then
    for f in $(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n -r); do
        n="${f#BENCH_}"; n="${n%.json}"
        if [ "$n" -lt "$PR" ] 2>/dev/null; then
            PREV="$f"
            break
        fi
    done
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The whole-pipeline benchmarks in the root package (FullReport, the
# table suite) leave a few hundred MB of live heap behind in the test
# process; the zero-alloc extraction microbenchmark measured after
# them in the same process reads ~40% slower than in a fresh one. Run
# it isolated so the trajectory records the hot path, not its
# neighbors' heap. ISOLATE is the regexp of benchmarks to hoist out
# (set ISOLATE='^$' to disable).
ISOLATE="${ISOLATE:-^BenchmarkSyslogExtract\$}"

echo "bench: go test -bench '$BENCH' -benchtime $BENCHTIME ($PKGS)" >&2
# shellcheck disable=SC2086  # PKGS is intentionally word-split
go test -run '^$' -bench "$BENCH" -skip "$ISOLATE" -benchmem -benchtime "$BENCHTIME" $PKGS | tee "$raw"
case " $PKGS " in
*" . "*)
    if [ "$ISOLATE" != '^$' ]; then
        echo "bench: go test -bench '$ISOLATE' (isolated, fresh process)" >&2
        go test -run '^$' -bench "$ISOLATE" -benchmem -benchtime "$BENCHTIME" . | tee -a "$raw"
    fi
    ;;
esac

pairargs=()
for p in $PAIRS; do
    pairargs+=(-pair "$p")
done
if [ -n "${PREV:-}" ]; then
    pairargs+=(-prev "$PREV")
fi
go run ./cmd/netfail-bench -pr "$PR" -o "$OUT" "${pairargs[@]}" < "$raw"
echo "bench: wrote $OUT" >&2
