#!/usr/bin/env bash
# Benchmark-trajectory harness: run the Benchmark* suites with
# -benchmem and distill the output into BENCH_<PR>.json via
# cmd/netfail-bench. CI uploads the file as an artifact; committing it
# per PR records how the pipeline's cost moves across the stack.
#
# Environment knobs:
#   PR        stack sequence number stamped into the report (default 5)
#   BENCHTIME go test -benchtime (default 1x: one measured iteration,
#             enough for trajectory tracking without minutes of CI)
#   BENCH     -bench regexp (default ".")
#   PKGS      packages with benchmarks (default: root + the codec,
#             stats, and checkpoint suites)
#   PAIRS     space-separated base=variant overhead pairs recorded in
#             the report (default: the observability-enabled analysis
#             against its plain baseline)
#   OUT       output path (default BENCH_${PR}.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${PR:-5}"
BENCHTIME="${BENCHTIME:-1x}"
BENCH="${BENCH:-.}"
PKGS="${PKGS:-. ./internal/stats ./internal/syslog ./internal/isis ./internal/checkpoint}"
PAIRS="${PAIRS:-BenchmarkAnalyzeMonth=BenchmarkAnalyzeMonthTraced}"
OUT="${OUT:-BENCH_${PR}.json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "bench: go test -bench '$BENCH' -benchtime $BENCHTIME ($PKGS)" >&2
# shellcheck disable=SC2086  # PKGS is intentionally word-split
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" $PKGS | tee "$raw"

pairargs=()
for p in $PAIRS; do
    pairargs+=(-pair "$p")
done
go run ./cmd/netfail-bench -pr "$PR" -o "$OUT" "${pairargs[@]}" < "$raw"
echo "bench: wrote $OUT" >&2
