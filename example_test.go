package netfail_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"netfail"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// ExampleRun simulates a small six-week campaign and prints the
// headline comparison. Identical seeds reproduce identical numbers.
func ExampleRun() {
	study, err := netfail.Run(context.Background(), netfail.SimulationConfig{
		Seed: 42,
		Spec: topo.Spec{
			Seed: 42, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
			DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 2, 15, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	})
	if err != nil {
		log.Fatal(err)
	}
	t4 := study.Analysis.Table4()
	fmt.Printf("IS-IS failures: %d\n", t4.ISISFailures)
	fmt.Printf("syslog failures: %d\n", t4.SyslogFailures)
	fmt.Printf("matched: %d\n", t4.OverlapFailures)
	// Output:
	// IS-IS failures: 189
	// syslog failures: 201
	// matched: 139
}

// ExampleFlapEpisodes groups a failure trace into flapping episodes
// with the paper's ten-minute rule.
func ExampleFlapEpisodes() {
	link := topo.LinkID("cpe-001:Gi0|core-a:Te0")
	at := func(min int) time.Time {
		return time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute)
	}
	failures := []netfail.Failure{
		{Link: link, Start: at(0), End: at(1)},
		{Link: link, Start: at(3), End: at(4)},   // 2 min gap: same episode
		{Link: link, Start: at(60), End: at(61)}, // far away: own episode
	}
	for _, e := range netfail.FlapEpisodes(failures, netfail.DefaultFlapGap) {
		fmt.Printf("episode with %d failures, flapping: %v\n", len(e.Failures), e.IsFlap())
	}
	// Output:
	// episode with 2 failures, flapping: true
	// episode with 1 failures, flapping: false
}
