package netfail

// CLI integration: build the three commands and drive the full
// sim → analyze → listener-replay flow through their real flag
// surfaces, the way a user would.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCommands compiles the binaries once into a shared temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration")
	}
	dir := t.TempDir()
	for _, name := range []string{"netfail-sim", "netfail-analyze", "netfail-listener"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

func TestCLIEndToEnd(t *testing.T) {
	bin := buildCommands(t)
	campaign := filepath.Join(t.TempDir(), "campaign")

	// Simulate a small short campaign.
	out, err := exec.Command(filepath.Join(bin, "netfail-sim"),
		"-seed", "5", "-days", "30", "-core", "8", "-cpe", "16",
		"-out", campaign, "-truth").CombinedOutput()
	if err != nil {
		t.Fatalf("netfail-sim: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "campaign written") {
		t.Fatalf("unexpected sim output:\n%s", out)
	}
	for _, f := range []string{"syslog.log", "lsps.log", "manifest.json", "tickets.json", "customers.json", "truth.log"} {
		if _, err := os.Stat(filepath.Join(campaign, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}

	// Analyze: single table, full report, markdown, SVG.
	out, err = exec.Command(filepath.Join(bin, "netfail-analyze"),
		"-data", campaign, "-table", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("netfail-analyze -table 4: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Failure Count") {
		t.Errorf("table 4 output:\n%s", out)
	}

	svgDir := filepath.Join(t.TempDir(), "figs")
	out, err = exec.Command(filepath.Join(bin, "netfail-analyze"),
		"-data", campaign, "-markdown", "-svg", svgDir).CombinedOutput()
	if err != nil {
		t.Fatalf("netfail-analyze -markdown: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "# Reproduction report") {
		t.Errorf("markdown output:\n%s", out)
	}
	for _, f := range []string{"figure1a.svg", "figure1b.svg", "figure1c.svg", "knee.svg"} {
		if _, err := os.Stat(filepath.Join(svgDir, f)); err != nil {
			t.Errorf("missing SVG %s", f)
		}
	}

	// Listener replay over loopback UDP: bind an ephemeral port and
	// read the bound address off the listener's banner.
	recv := exec.Command(filepath.Join(bin, "netfail-listener"),
		"-listen", "127.0.0.1:0", "-configs", filepath.Join(campaign, "configs"),
		"-limit", "50")
	stdout, err := recv.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	recv.Stderr = recv.Stdout
	if err := recv.Start(); err != nil {
		t.Fatal(err)
	}
	defer recv.Process.Kill()

	outCh := make(chan string, 1)
	addrCh := make(chan string, 1)
	go func() {
		data := &strings.Builder{}
		buf := make([]byte, 4096)
		sentAddr := false
		for {
			n, err := stdout.Read(buf)
			data.Write(buf[:n])
			if !sentAddr {
				if line, ok := bannerAddr(data.String()); ok {
					addrCh <- line
					sentAddr = true
				}
			}
			if err != nil {
				outCh <- data.String()
				return
			}
		}
	}()

	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("listener banner never appeared")
	}
	out, err = exec.Command(filepath.Join(bin, "netfail-listener"),
		"-replay", filepath.Join(campaign, "lsps.log"), "-to", addr).CombinedOutput()
	if err != nil || !strings.Contains(string(out), "replayed") {
		t.Fatalf("replay: %v\n%s", err, out)
	}
	if err := recv.Wait(); err != nil {
		t.Fatalf("listener: %v", err)
	}
	recvText := <-outCh
	if !strings.Contains(recvText, "done: 50 LSPs") {
		t.Errorf("listener output:\n%s", recvText)
	}
}

// bannerAddr extracts the bound address from the listener's
// "listening on HOST:PORT; ..." banner.
func bannerAddr(s string) (string, bool) {
	const prefix = "listening on "
	i := strings.Index(s, prefix)
	if i < 0 {
		return "", false
	}
	rest := s[i+len(prefix):]
	j := strings.IndexAny(rest, "; \n")
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

func TestCLISeedMode(t *testing.T) {
	bin := buildCommands(t)
	out, err := exec.Command(filepath.Join(bin, "netfail-analyze"),
		"-seed", "3", "-table", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("seed mode: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "IS reachability") {
		t.Errorf("output:\n%s", out)
	}
}
