package netfail

// Ablation experiments for the design choices DESIGN.md calls out:
// each toggles one mechanism of the substitution model and checks (or
// reports, for the benchmarks) how a headline result moves. These are
// the experiments behind the calibration story in EXPERIMENTS.md.

import (
	"context"
	"testing"
	"time"

	"netfail/internal/core"
	"netfail/internal/netsim"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// TestLinkIDExtensionRecoversMultiLinkCoverage exercises the paper's
// footnote-1 extension end to end: with RFC 5307 link identifiers on
// the wire, the analysis can include the multi-link adjacencies it
// otherwise discards, and the listener produces per-link failures for
// them.
func TestLinkIDExtensionRecoversMultiLinkCoverage(t *testing.T) {
	base := smallConfig(31)
	withIDs := base
	withIDs.EnableLinkIDs = true

	campBase, err := Simulate(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	campIDs, err := Simulate(context.Background(), withIDs)
	if err != nil {
		t.Fatal(err)
	}

	legacy, err := Analyze(context.Background(), campBase)
	if err != nil {
		t.Fatal(err)
	}
	extended, err := Analyze(context.Background(), campIDs, WithMultiLink(true))
	if err != nil {
		t.Fatal(err)
	}

	nLinks := len(campBase.Network.Links)
	if got := len(legacy.Analysis.AnalyzedLinks); got >= nLinks {
		t.Errorf("legacy analysis should discard multi-link links: %d of %d", got, nLinks)
	}
	if got := len(extended.Analysis.AnalyzedLinks); got != nLinks {
		t.Errorf("extended analysis links = %d, want all %d", got, nLinks)
	}

	// The extension must actually recover IS-IS failures on the
	// parallel links, not just include silent links.
	multi := make(map[topo.LinkID]bool)
	for _, l := range campIDs.Network.Links {
		if campIDs.Network.IsMultiLink(l.ID) {
			multi[l.ID] = true
		}
	}
	// Ground truth failures on multi-link links in this campaign.
	truthMulti := 0
	for _, f := range campIDs.GroundTruth {
		if multi[f.Link] {
			truthMulti++
		}
	}
	recovered := 0
	for _, f := range extended.Analysis.ISISFailures {
		if multi[f.Link] {
			recovered++
		}
	}
	if truthMulti == 0 {
		t.Skip("no ground-truth failures on multi-link links this seed")
	}
	if recovered == 0 {
		t.Fatalf("no IS-IS failures recovered on multi-link links (truth has %d)", truthMulti)
	}
	if recovered < truthMulti/2 {
		t.Errorf("recovered %d of %d multi-link failures", recovered, truthMulti)
	}
	// And the legacy listener must NOT see them.
	legacyMulti := 0
	for _, f := range legacy.Analysis.ISISFailures {
		if multi[f.Link] {
			legacyMulti++
		}
	}
	if legacyMulti != 0 {
		t.Errorf("legacy analysis reported %d multi-link failures, want 0", legacyMulti)
	}
}

// TestBlackoutModelDrivesTransitionMisses: turning the correlated
// blackout model off collapses the None column of Table 3, showing
// the mechanism carries the paper's 15-18%% missed transitions.
func TestBlackoutModelDrivesTransitionMisses(t *testing.T) {
	base := smallConfig(32)
	noBlackout := base
	im := netsim.DefaultImpairments()
	im.BlackoutBase, im.BlackoutFlap, im.BlackoutLong, im.DownBlackoutProb = 0, 0, 0, 0
	noBlackout.Impair = &im

	with, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(context.Background(), noBlackout)
	if err != nil {
		t.Fatal(err)
	}
	noneWith := noneFraction(with)
	noneWithout := noneFraction(without)
	t.Logf("none fraction: with blackouts %.3f, without %.3f", noneWith, noneWithout)
	if noneWithout >= noneWith {
		t.Errorf("disabling blackouts should reduce missed transitions: %.3f -> %.3f", noneWith, noneWithout)
	}
}

func noneFraction(s *Study) float64 {
	t3 := s.Analysis.Table3()
	total := t3.Down.Total() + t3.Up.Total()
	if total == 0 {
		return 0
	}
	return float64(t3.Down.None+t3.Up.None) / float64(total)
}

// TestPseudoFailuresDriveFalsePositives: without reset pseudo-
// failures, syslog's false-positive count collapses (§4.3 attributes
// the short false positives to aborted handshakes and resets).
func TestPseudoFailuresDriveFalsePositives(t *testing.T) {
	base := smallConfig(33)
	noPseudo := base
	im := netsim.DefaultImpairments()
	im.PseudoBackgroundPerYear, im.PseudoAfterFlap, im.PseudoAfterNonFlap = 0, 0, 0
	noPseudo.Impair = &im

	with, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(context.Background(), noPseudo)
	if err != nil {
		t.Fatal(err)
	}
	fpWith := with.Analysis.Table4().FalsePositives
	fpWithout := without.Analysis.Table4().FalsePositives
	t.Logf("false positives: with pseudo %d, without %d", fpWith, fpWithout)
	if fpWithout >= fpWith {
		t.Errorf("disabling pseudo-failures should reduce false positives: %d -> %d", fpWith, fpWithout)
	}
}

// TestLSPSuppressionBlindsListener: without LSP suppression the
// listener sees nearly every ground-truth failure; with it, the
// short-reset blind spot appears. Suppression only touches
// sub-1.5-second blips, so this needs a CENIC-scale campaign for a
// meaningful sample.
func TestLSPSuppressionBlindsListener(t *testing.T) {
	base := SimulationConfig{Seed: 34}
	base.Start = netsim.StudyStart
	base.End = netsim.StudyStart.Add(90 * 24 * time.Hour)
	base.ListenerOffline = []trace.Interval{}
	noSuppress := base
	im := netsim.DefaultImpairments()
	im.LSPSuppressProb = 0
	noSuppress.Impair = &im

	with, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(context.Background(), noSuppress)
	if err != nil {
		t.Fatal(err)
	}
	isisWith := with.Analysis.Table4().ISISFailures
	isisWithout := without.Analysis.Table4().ISISFailures
	t.Logf("IS-IS failures: with suppression %d, without %d", isisWith, isisWithout)
	if isisWithout <= isisWith {
		t.Errorf("disabling suppression should surface more IS-IS failures: %d -> %d", isisWith, isisWithout)
	}
}

// ablationBenchState is the per-config setup the ablation benchmarks
// hoist out of the measured loop: one simulated campaign, mined once,
// replayed through the listener once, plus a long-lived Extractor.
// The loop then measures only the ablated comparison — extraction
// through a reused (Extractor, SyslogTraces) pair and core.Analyze
// over pre-extracted Traces — instead of re-simulating and
// re-allocating a campaign's worth of state every iteration.
type ablationBenchState struct {
	camp  *Campaign
	mined *Study // only Mined/Listener/Tickets fields are set
	ext   *core.Extractor
	st    core.SyslogTraces
}

func newAblationBench(b testing.TB, cfg SimulationConfig) *ablationBenchState {
	b.Helper()
	ctx := context.Background()
	camp, err := Simulate(ctx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	mined, err := MineConfigs(camp)
	if err != nil {
		b.Fatal(err)
	}
	res, err := Listen(ctx, mined.Network, camp)
	if err != nil {
		b.Fatal(err)
	}
	s := &ablationBenchState{
		camp: camp,
		mined: &Study{
			Mined:    mined,
			Listener: res,
			Tickets:  GenerateTickets(camp),
		},
		ext: core.NewExtractor(mined.Network),
	}
	// Warm the extractor's scratch so the measured loop is the
	// amortized steady state.
	s.ext.ExtractInto(ctx, camp.Syslog, 60*time.Second, 1, &s.st)
	return s
}

// analyze runs one ablated comparison over the pre-extracted traces.
func (s *ablationBenchState) analyze(b testing.TB, multiLink bool) *Analysis {
	b.Helper()
	ctx := context.Background()
	s.ext.ExtractInto(ctx, s.camp.Syslog, 60*time.Second, 1, &s.st)
	a, err := core.Analyze(ctx, core.Input{
		Network:          s.mined.Mined.Network,
		Customers:        s.camp.Network.Customers,
		Traces:           &s.st,
		ISTransitions:    s.mined.Listener.ISTransitions,
		IPTransitions:    s.mined.Listener.IPTransitions,
		Start:            s.camp.Config.Start,
		End:              s.camp.Config.End,
		ListenerOffline:  s.camp.ListenerOffline,
		Tickets:          s.mined.Tickets,
		IncludeMultiLink: multiLink,
		Parallelism:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAblationLinkIDs regenerates the footnote-1 experiment.
// The campaign is simulated once; each iteration measures the
// multi-link-inclusive comparison over reused extraction state.
func BenchmarkAblationLinkIDs(b *testing.B) {
	b.ReportAllocs()
	cfg := benchMonthConfig(1)
	cfg.EnableLinkIDs = true
	s := newAblationBench(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := s.analyze(b, true)
		b.ReportMetric(float64(len(a.AnalyzedLinks)), "links")
	}
}

// BenchmarkAblationNoBlackout measures the comparison with the
// correlated-loss model disabled, over a campaign simulated once.
func BenchmarkAblationNoBlackout(b *testing.B) {
	b.ReportAllocs()
	cfg := benchMonthConfig(1)
	im := netsim.DefaultImpairments()
	im.BlackoutBase, im.BlackoutFlap, im.BlackoutLong, im.DownBlackoutProb = 0, 0, 0, 0
	cfg.Impair = &im
	s := newAblationBench(b, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := s.analyze(b, false)
		b.ReportMetric(analysisNoneFraction(a), "none-frac")
	}
}

// TestAblationAnalyzeAllocBudget pins the reworked ablation loop: a
// warmed iteration must stay under a small fixed multiple of the
// transition count, i.e. the comparison's own result slices — never
// the ~600k allocs/op the old simulate-per-iteration loop paid.
func TestAblationAnalyzeAllocBudget(t *testing.T) {
	cfg := benchMonthConfig(1)
	cfg.EnableLinkIDs = true
	s := newAblationBench(t, cfg)
	transitions := len(s.st.PerRouterAdj) + len(s.st.MergedAdj) + len(s.st.MergedPhysical) +
		len(s.mined.Listener.ISTransitions) + len(s.mined.Listener.IPTransitions)
	if transitions == 0 {
		t.Fatal("no transitions")
	}
	avg := testing.AllocsPerRun(3, func() {
		a := s.analyze(t, true)
		if len(a.AnalyzedLinks) == 0 {
			t.Fatal("no analyzed links")
		}
	})
	// The comparison legitimately allocates its filtered streams,
	// reconstructions, and flap indexes — all proportional to the
	// transition count — plus fixed stage overhead. Six per
	// transition is comfortable headroom over the measured ~2.
	budget := 6*float64(transitions) + 2048
	if avg > budget {
		t.Errorf("warmed ablation iteration allocates %.0f per op over %d transitions, budget %.0f",
			avg, transitions, budget)
	}
}

func analysisNoneFraction(a *Analysis) float64 {
	t3 := a.Table3()
	total := t3.Down.Total() + t3.Up.Total()
	if total == 0 {
		return 0
	}
	return float64(t3.Down.None+t3.Up.None) / float64(total)
}
