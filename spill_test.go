package netfail

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netfail/internal/capture"
)

// TestSpillReportByteIdenticalToInRAM is the tentpole pin: a
// single-shard spill capture of a campaign, analyzed back off disk,
// must produce a report byte-identical to the in-RAM pipeline — at
// every Parallelism setting on both sides.
func TestSpillReportByteIdenticalToInRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	cfg := smallConfig(7)

	ram, err := Run(ctx, cfg, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := ram.Report(&want); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if _, err := SimulateToCapture(ctx, cfg, FabricSpec{}, dir); err != nil {
		t.Fatal(err)
	}
	if !IsCaptureCampaign(dir) {
		t.Fatal("IsCaptureCampaign = false for a spilled campaign dir")
	}

	for _, par := range []int{1, 0, 2, 8} {
		study, reports, err := AnalyzeCaptureDir(ctx, dir, false, WithParallelism(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for _, r := range reports {
			if !r.Report.Clean() {
				t.Errorf("parallelism %d: unexpected salvage on clean capture: %s: %s", par, r.Name, r.Report)
			}
		}
		var got bytes.Buffer
		if err := study.Report(&got); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if got.String() != want.String() {
			t.Fatalf("parallelism %d: spill report differs from in-RAM report\n%s",
				par, firstDiff(want.String(), got.String()))
		}
	}
}

// TestSpillCampaignMatchesInRAM pins the simulation side: the spilled
// campaign's ground truth and counters equal the in-RAM run's (the
// sink is the only difference between the two code paths).
func TestSpillCampaignMatchesInRAM(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	cfg := smallConfig(3)
	ram, err := Simulate(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spilled, err := SimulateToCapture(ctx, cfg, FabricSpec{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if spilled.Counts != ram.Counts {
		t.Errorf("counts: spill %+v != ram %+v", spilled.Counts, ram.Counts)
	}
	if len(spilled.GroundTruth) != len(ram.GroundTruth) {
		t.Fatalf("ground truth: spill %d != ram %d", len(spilled.GroundTruth), len(ram.GroundTruth))
	}
	for i := range ram.GroundTruth {
		if spilled.GroundTruth[i] != ram.GroundTruth[i] {
			t.Fatalf("ground truth[%d]: spill %+v != ram %+v", i, spilled.GroundTruth[i], ram.GroundTruth[i])
		}
	}
	cm, err := capture.ReadManifestDir(filepath.Join(dir, CaptureDirName))
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Shards) != 1 {
		t.Fatalf("shards = %d, want 1", len(cm.Shards))
	}
	sy, _ := cm.Records()
	if sy != int64(len(ram.Syslog)) {
		t.Errorf("captured syslog records = %d, want %d", sy, len(ram.Syslog))
	}
}

// TestShardedSpillDeterministic pins the multi-domain path: the
// sharded capture and its analysis are byte-deterministic across
// simulation worker counts and analysis Parallelism settings.
func TestShardedSpillDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	cfg := smallConfig(5)
	fabric := FabricSpec{Domains: 2, Spines: 3, Leaves: 5, Metric: 10}

	report := func(par int) (string, string) {
		t.Helper()
		dir := t.TempDir()
		camp, err := SimulateToCapture(ctx, cfg, fabric, dir, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		if camp.Counts.GroundTruthFailures != len(camp.GroundTruth) {
			t.Fatalf("inconsistent ground-truth count")
		}
		study, _, err := AnalyzeCaptureDir(ctx, dir, false, WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := study.Report(&buf); err != nil {
			t.Fatal(err)
		}
		seg, err := os.ReadFile(filepath.Join(dir, CaptureDirName, "shard-0001", capture.SyslogSegment))
		if err != nil {
			t.Fatal(err)
		}
		return buf.String(), string(seg)
	}

	wantRep, wantSeg := report(1)
	for _, par := range []int{0, 3} {
		gotRep, gotSeg := report(par)
		if gotSeg != wantSeg {
			t.Fatalf("parallelism %d: shard-0001 segment bytes differ from sequential run", par)
		}
		if gotRep != wantRep {
			t.Fatalf("parallelism %d: sharded report differs from sequential run\n%s",
				par, firstDiff(wantRep, gotRep))
		}
	}
}

// TestShardedBackboneShardMatchesSingleShard pins the seeding
// contract: domain 0 of a sharded capture is byte-identical to the
// single-shard capture of the same config.
func TestShardedBackboneShardMatchesSingleShard(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	ctx := context.Background()
	cfg := smallConfig(11)
	single := t.TempDir()
	sharded := t.TempDir()
	if _, err := SimulateToCapture(ctx, cfg, FabricSpec{}, single); err != nil {
		t.Fatal(err)
	}
	if _, err := SimulateToCapture(ctx, cfg, FabricSpec{Domains: 1, Spines: 2, Leaves: 3, Metric: 10}, sharded); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{capture.SyslogSegment, capture.LSPSegment} {
		a, err := os.ReadFile(filepath.Join(single, CaptureDirName, "shard-0000", name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(sharded, CaptureDirName, "shard-0000", name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: backbone shard differs between single and sharded capture", name)
		}
	}
}

// firstDiff locates the first differing line of two reports, for
// failure messages that point at the divergence instead of dumping
// both documents.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return "line " + itoa(i+1) + ":\n  want: " + wl[i] + "\n  got:  " + gl[i]
		}
	}
	if len(wl) != len(gl) {
		return "line counts differ: want " + itoa(len(wl)) + ", got " + itoa(len(gl))
	}
	return "documents identical?"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
