# Developer entrypoints. `make verify` is the tier-1 gate CI enforces.

.PHONY: build test lint race verify

build:
	go build ./...

test:
	go test ./...

lint:
	go vet ./...
	go run ./cmd/netfail-lint ./...

race:
	go test -race ./...

verify:
	./scripts/verify.sh
