# Developer entrypoints. `make verify` is the tier-1 gate CI enforces.

.PHONY: build test lint lint-baseline race verify faultinject bench bench-compare obs chaos scale query

build:
	go build ./...

test:
	go test ./...

# Static analysis: go vet plus the repo's own suite (detclock,
# droppederr, lockguard, durmul, ctxfirst, hotalloc, goleak) and the
# escape-analysis baseline gate against lint-escape-baseline.txt.
lint:
	go vet ./...
	go run ./cmd/netfail-lint ./...

# Regenerate lint-escape-baseline.txt after an intentional change to a
# //netfail:hotpath function's escape behavior; review and commit the
# diff.
lint-baseline:
	go run ./cmd/netfail-lint -write-escape-baseline

race:
	go test -race ./...

# Degradation gate: corrupt every capture stream deterministically and
# re-assert the paper's qualitative findings on the salvaged data.
faultinject:
	go test -short -run 'Corrupt' -v . ./internal/faultinject

# Benchmark trajectory: run the Benchmark* suites with -benchmem and
# emit BENCH_<PR>.json (see scripts/bench.sh for the PR/BENCHTIME/PKGS
# knobs). CI uploads the file as an artifact.
bench:
	./scripts/bench.sh

# Alloc-regression gate: run the pinned zero-allocation benchmarks and
# fail if any hot path exceeds its allocs/op budget. Part of verify.
bench-compare:
	./scripts/bench-compare.sh

# Scale gate: simulate and analyze sharded spill-to-disk campaigns at
# 1x and 10x CENIC scale, recording events/sec, wall-clock, capture
# size, and peak RSS into BENCH_<PR>.json; fails if peak RSS blows the
# bound (see scripts/scale.sh for the MULTS/DAYS/MAX_RSS_MB knobs).
scale:
	./scripts/scale.sh

# Observability smoke: run the instrumented pipeline on a one-month
# seeded campaign; assert a non-empty span tree and zero drop counters.
obs:
	./scripts/obs-smoke.sh

# Query smoke: build an indexed failure store from a seeded campaign,
# drive every netfail-query verb, and hit the /api/v1 HTTP surface
# including the shared error envelope. Part of verify.
query:
	./scripts/query.sh

# Crash-safety gate: SIGKILL netfail-serve mid-ingest and assert the
# resumed report is byte-identical, plus the overload soak and drain
# deadline, all under the race detector.
chaos:
	./scripts/chaos.sh

verify:
	./scripts/verify.sh
