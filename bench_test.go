package netfail

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable1 … BenchmarkTable7   Tables 1-7
//	BenchmarkFigure1                    Figure 1a-c (CPE CDFs)
//	BenchmarkWindowSweep                §3.4 "knee at ten seconds"
//	BenchmarkPolicyAblation             §4.3 strategy comparison
//
// plus the pipeline-stage benchmarks (simulate, mine, listen,
// extract, analyze) that dominate regeneration cost. Each table
// benchmark runs over the full 13-month CENIC-scale study, prepared
// once outside the timer.
//
//	go test -bench=. -benchmem

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"netfail/internal/core"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchErr   error
)

// fullStudy prepares the 13-month CENIC-scale study shared by the
// table benchmarks.
func benchFullStudy(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = Run(context.Background(), SimulationConfig{Seed: 1})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy
}

func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := s.Analysis.Table1(s.Campaign.Archive.FileCount(), s.Campaign.Counts.LSPUpdates)
		if t1.CoreRouters == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := s.Analysis.Table2()
		if t2.ISISDownVsIS == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t3 := s.Analysis.Table3()
		if t3.Down.Total() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4 := s.Analysis.Table4()
		if t4.ISISFailures == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t5 := s.Analysis.Table5()
		if t5.KSDuration.N1 == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable6(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t6 := s.Analysis.Table6()
		if t6.TotalDown() == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable7(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t7 := s.Analysis.Table7()
		if t7.ISISEvents == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig := s.Analysis.Figure1()
		if len(fig.FailureDuration[0].X) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkWindowSweep(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts := s.Analysis.WindowKnee(nil)
		if len(pts) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

func BenchmarkPolicyAblation(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Analysis.PolicyAblation()
		if len(rows) != 3 {
			b.Fatal("bad ablation")
		}
	}
}

func BenchmarkFullReport(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Report(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReportSequential pins the report fan-out (and the
// analysis worker pool it inherits) to one worker; the delta against
// BenchmarkFullReport is the parallel speedup scripts/bench.sh
// records. Output is byte-identical at every worker count.
func BenchmarkFullReportSequential(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	saved := s.Analysis.In.Parallelism
	s.Analysis.In.Parallelism = 1
	defer func() { s.Analysis.In.Parallelism = saved }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Report(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Pipeline-stage benchmarks over a one-month CENIC-scale campaign.

func benchMonthConfig(seed int64) SimulationConfig {
	return SimulationConfig{
		Seed:            seed,
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 2, 1, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	}
}

func BenchmarkSimulateMonth(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		camp, err := Simulate(context.Background(), benchMonthConfig(int64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		if len(camp.Syslog) == 0 {
			b.Fatal("empty campaign")
		}
	}
}

func BenchmarkMineConfigs(b *testing.B) {
	b.ReportAllocs()
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mined, err := MineConfigs(camp)
		if err != nil {
			b.Fatal(err)
		}
		if len(mined.Network.Links) == 0 {
			b.Fatal("no links mined")
		}
	}
}

func BenchmarkListenerReplay(b *testing.B) {
	b.ReportAllocs()
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	mined, err := MineConfigs(camp)
	if err != nil {
		b.Fatal(err)
	}
	var bytesTotal int64
	for _, c := range camp.LSPLog {
		bytesTotal += int64(len(c.Data))
	}
	b.SetBytes(bytesTotal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := listener.New(mined.Network)
		for _, c := range camp.LSPLog {
			if err := l.Process(c.Time, c.Data); err != nil {
				b.Fatal(err)
			}
		}
		if len(l.Results().ISTransitions) == 0 {
			b.Fatal("no transitions")
		}
	}
}

func BenchmarkSyslogExtract(b *testing.B) {
	b.ReportAllocs()
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	mined, err := MineConfigs(camp)
	if err != nil {
		b.Fatal(err)
	}
	// The steady-state shape: a long-lived (Extractor, result) pair
	// reusing resolver, scratch, and result slices across captures, as
	// the streaming ingest path holds one per topology. Warm-up runs
	// grow the scratch so the measured region allocates nothing.
	ex := core.NewExtractor(mined.Network)
	var st core.SyslogTraces
	for i := 0; i < 2; i++ {
		ex.ExtractInto(context.Background(), camp.Syslog, 60*time.Second, 1, &st)
		if len(st.MergedAdj) == 0 {
			b.Fatal("no transitions")
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.ExtractInto(context.Background(), camp.Syslog, 60*time.Second, 1, &st)
		if len(st.MergedAdj) == 0 {
			b.Fatal("no transitions")
		}
	}
	b.ReportMetric(float64(len(camp.Syslog)), "msgs/op")
}

func BenchmarkAnalyzeMonth(b *testing.B) {
	b.ReportAllocs()
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study, err := Analyze(context.Background(), camp)
		if err != nil {
			b.Fatal(err)
		}
		if study.Analysis == nil {
			b.Fatal("no analysis")
		}
	}
}

// BenchmarkAnalyzeMonthTraced is BenchmarkAnalyzeMonth with the full
// observability stack attached: a tracer, a metrics registry, and a
// progress stream. The ns/op delta against BenchmarkAnalyzeMonth is
// the cost of enabling observability; scripts/bench.sh records the
// ratio as a pair in BENCH_<PR>.json. (With no consumers attached the
// instrumentation reduces to nil-receiver no-ops, so the plain
// benchmark doubles as the disabled-obs baseline.)
func BenchmarkAnalyzeMonthTraced(b *testing.B) {
	b.ReportAllocs()
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study, err := Analyze(context.Background(), camp,
			WithTracer(NewTracer()), WithMetrics(NewMetrics()),
			WithProgress(func(ProgressEvent) {}))
		if err != nil {
			b.Fatal(err)
		}
		if study.Analysis == nil {
			b.Fatal("no analysis")
		}
	}
}

// BenchmarkAnalyzeMonthSequential is the Parallelism: 1 reference for
// BenchmarkAnalyzeMonth (which runs one worker per CPU).
func BenchmarkAnalyzeMonthSequential(b *testing.B) {
	b.ReportAllocs()
	camp, err := Simulate(context.Background(), benchMonthConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		study, err := Analyze(context.Background(), camp, WithParallelism(1))
		if err != nil {
			b.Fatal(err)
		}
		if study.Analysis == nil {
			b.Fatal("no analysis")
		}
	}
}

func BenchmarkIsolationSweep(b *testing.B) {
	b.ReportAllocs()
	s := benchFullStudy(b)
	netWithCustomers := *s.Mined.Network
	netWithCustomers.Customers = s.Campaign.Network.Customers
	g := topo.NewGraph(&netWithCustomers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := core.IsolationEvents(g, netWithCustomers.Customers,
			s.Analysis.ISISFailures, s.Campaign.Config.End)
		if len(events) == 0 {
			b.Fatal("no events")
		}
	}
}

func BenchmarkCampaignGeneration(b *testing.B) {
	b.ReportAllocs()
	// Topology + workload generation only (no observation replay).
	spec := topo.DefaultSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := topo.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(n.Links) == 0 {
			b.Fatal("no links")
		}
	}
}

func BenchmarkRefreshFullDay(b *testing.B) {
	b.ReportAllocs()
	// One day with every periodic LSP refresh materialized: the
	// listener-side cost of Table 1's 11M updates, scaled down.
	cfg := benchMonthConfig(1)
	cfg.End = cfg.Start.Add(24 * time.Hour)
	cfg.RefreshMode = netsim.RefreshFull
	for i := 0; i < b.N; i++ {
		camp, err := Simulate(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		mined, err := MineConfigs(camp)
		if err != nil {
			b.Fatal(err)
		}
		l := listener.New(mined.Network)
		for _, c := range camp.LSPLog {
			if err := l.Process(c.Time, c.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}
