package netfail

// Chaos gate: netfail-serve must survive a SIGKILL at a
// fault-injection-chosen point mid-ingest. The killed daemon is
// restarted on the same state directory, resumes from its checkpoint,
// and must produce a final report byte-identical to an uninterrupted
// run over the same campaign. `make chaos` runs exactly this under
// the race detector.

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"netfail/internal/faultinject"
	"netfail/internal/netsim"
)

// buildServeCommands compiles netfail-sim and netfail-serve.
func buildServeCommands(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration")
	}
	dir := t.TempDir()
	for _, name := range []string{"netfail-sim", "netfail-serve"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, name), "./cmd/"+name)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	return dir
}

// campaignRecords counts the records the replay will ingest: syslog
// lines plus captured LSPs — the space the kill point is drawn from.
func campaignRecords(t *testing.T, campaign string) int {
	t.Helper()
	f, err := os.Open(filepath.Join(campaign, "syslog.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		if sc.Text() != "" {
			lines++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	lf, err := os.Open(filepath.Join(campaign, "lsps.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer lf.Close()
	lsps, err := netsim.ReadLSPLog(lf)
	if err != nil {
		t.Fatal(err)
	}
	return lines + len(lsps)
}

func TestChaosKillRestartReportIsByteIdentical(t *testing.T) {
	bin := buildServeCommands(t)
	campaign := filepath.Join(t.TempDir(), "campaign")
	out, err := exec.Command(filepath.Join(bin, "netfail-sim"),
		"-seed", "11", "-days", "14", "-core", "6", "-cpe", "12",
		"-out", campaign).CombinedOutput()
	if err != nil {
		t.Fatalf("netfail-sim: %v\n%s", err, out)
	}

	total := campaignRecords(t, campaign)
	if total < 3 {
		t.Fatalf("campaign too small for a chaos run: %d records", total)
	}
	// The kill point is seeded, interior, and replayable: rerunning
	// this test kills at the same record.
	killAfter := faultinject.RuntimePlan{Seed: 11}.KillAfter(total)
	t.Logf("campaign has %d records; killing after %d", total, killAfter)

	// Reference: uninterrupted run.
	refReport := filepath.Join(t.TempDir(), "ref.txt")
	out, err = exec.Command(filepath.Join(bin, "netfail-serve"),
		"-data", campaign, "-state", filepath.Join(t.TempDir(), "state"),
		"-snapshot-every", "97", "-report", refReport).CombinedOutput()
	if err != nil {
		t.Fatalf("uninterrupted serve: %v\n%s", err, out)
	}

	// Chaos run: the daemon SIGKILLs itself mid-ingest...
	stateDir := filepath.Join(t.TempDir(), "state")
	killedReport := filepath.Join(t.TempDir(), "resumed.txt")
	cmd := exec.Command(filepath.Join(bin, "netfail-serve"),
		"-data", campaign, "-state", stateDir,
		"-snapshot-every", "97", "-chaos-kill-after", strconv.Itoa(killAfter))
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("chaos run exited cleanly; the kill never fired\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("chaos run: %v\n%s", err, out)
	}
	if ws, ok := exitErr.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("chaos run died of %v, want SIGKILL\n%s", err, out)
	}

	// ...and the restart recovers the durable prefix and finishes.
	out, err = exec.Command(filepath.Join(bin, "netfail-serve"),
		"-data", campaign, "-state", stateDir,
		"-snapshot-every", "97", "-report", killedReport).CombinedOutput()
	if err != nil {
		t.Fatalf("resumed serve: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "recovered") {
		t.Fatalf("resumed run recovered nothing:\n%s", out)
	}

	ref, err := os.ReadFile(refReport)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(killedReport)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference report is empty")
	}
	if !bytes.Equal(ref, resumed) {
		t.Errorf("resumed report differs from uninterrupted run (%d vs %d bytes)", len(ref), len(resumed))
	}
}
