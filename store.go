package netfail

import (
	"context"
	"fmt"

	"netfail/internal/obs"
	"netfail/internal/store"
)

// writeStudyStore writes an indexed failure store from an in-RAM
// study: every raw syslog line (rendered through the zero-allocation
// wire encoder, exactly the bytes a capture shard would hold) into
// one message segment, then the analysis's failures, transitions,
// catalogs, and precomputed tables.
func writeStudyStore(ctx context.Context, dir string, st *Study) error {
	ctx, done := obs.Stage(ctx, "store")
	defer done()
	w, err := store.NewWriter(dir)
	if err != nil {
		return err
	}
	w.SetSeed(st.Campaign.Config.Seed)
	if len(st.Campaign.Syslog) > 0 {
		if err := w.StartMessageSegment(); err != nil {
			return err
		}
		var buf []byte
		for i, m := range st.Campaign.Syslog {
			if i%listenCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			buf = m.AppendRender(buf[:0])
			if err := w.AppendMessage(m.Timestamp.UnixMilli(), m.Hostname, buf); err != nil {
				return err
			}
		}
	}
	if err := w.WriteAnalysis(st.Analysis,
		st.Campaign.Archive.FileCount(), st.Campaign.Counts.LSPUpdates); err != nil {
		return err
	}
	if err := w.Finish(); err != nil {
		return fmt.Errorf("netfail: writing store: %w", err)
	}
	obs.Add(ctx, "store.messages", int64(len(st.Campaign.Syslog)))
	obs.Add(ctx, "store.links", int64(len(st.Analysis.AnalyzedLinks)))
	return nil
}
