// Package netfail reproduces the measurement study "A Comparison of
// Syslog and IS-IS for Network Failure Analysis" (Turner, Levchenko,
// Savage, Snoeren — ACM IMC 2013) as a reusable library.
//
// The original study compared two reconstructions of thirteen months
// of link failures in the CENIC network: one from Cisco syslog
// messages collected over UDP, one from a passive IS-IS listener
// recording link-state PDUs. The operational traces are proprietary,
// so this package pairs the paper's analysis pipeline with a
// calibrated discrete-event simulator of a CENIC-scale network that
// reproduces both observation channels, wire formats included.
//
// The high-level flow:
//
//	study, err := netfail.Run(ctx, netfail.SimulationConfig{Seed: 1},
//	    netfail.WithProgress(func(ev netfail.ProgressEvent) {
//	        log.Println(ev) // simulate started, analyze finished, ...
//	    }))
//	...
//	study.Report(os.Stdout)               // Tables 1-7, Figure 1 data
//	t4 := study.Analysis.Table4()         // or drill into results
//
// Entry points are context-first: cancel the context and the pipeline
// stops at the next stage or shard boundary, returning ctx's error.
// Functional options attach observability — WithTracer records a
// hierarchical span tree of every stage, WithMetrics collects named
// counters, WithProgress streams stage events — and tune the analysis
// (WithWindow, WithParallelism, ...). Observability never changes
// results: a run with a tracer attached produces byte-identical
// reports to one without.
//
// Each stage is also available separately: Simulate produces raw
// captures (syslog log, LSP capture, config archive, trouble
// tickets), MineConfigs rebuilds the link namespace from the config
// archive, Listen replays the LSP capture through the IS-IS listener,
// and Analyze runs the comparison. Everything is deterministic in the
// seed.
package netfail

import (
	"context"
	"fmt"
	"io"
	"time"

	"netfail/internal/config"
	"netfail/internal/core"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/obs"
	"netfail/internal/report"
	"netfail/internal/tickets"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Re-exported types forming the public API surface.
type (
	// SimulationConfig parameterizes a simulated measurement
	// campaign; the zero value (plus a Seed) reproduces the paper's
	// 13-month CENIC-scale study.
	SimulationConfig = netsim.Config
	// Campaign is a simulation's raw output: captures plus ground
	// truth.
	Campaign = netsim.Campaign
	// Analysis exposes the comparison results (Table1 … Table7,
	// Figure1, WindowKnee, PolicyAblation).
	Analysis = core.Analysis
	// ListenerResult is the IS-IS listener's reconstruction.
	ListenerResult = listener.Result
	// TopologySpec shapes the generated network.
	TopologySpec = topo.Spec
	// WorkloadParams and ImpairParams expose the calibrated failure
	// and impairment models for ablation studies.
	WorkloadParams = netsim.WorkloadParams
	ImpairParams   = netsim.ImpairParams

	// Tracer records a hierarchical tree of timed spans — one per
	// pipeline stage and pool worker. Attach with WithTracer; render
	// with WriteTree (text) or WriteChromeTrace (trace_event JSON).
	Tracer = obs.Tracer
	// Metrics is a registry of named counters and gauges the pipeline
	// stages populate. Attach with WithMetrics; it implements
	// expvar.Var and renders via String, Snapshot, or WriteText.
	Metrics = obs.Registry
	// ProgressEvent is one entry in the progress stream: a stage
	// starting or finishing, or a parallel shard completing.
	ProgressEvent = obs.Event
	// ProgressFunc consumes progress events. It may be called
	// concurrently from pool workers; the consumer synchronizes.
	ProgressFunc = obs.ProgressFunc
)

// Progress event kinds, re-exported for ProgressFunc consumers.
const (
	StageStarted  = obs.StageStarted
	StageFinished = obs.StageFinished
	ShardDone     = obs.ShardDone
)

// NewTracer returns an empty span tracer ready for WithTracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewMetrics returns an empty metrics registry ready for WithMetrics.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// AnalysisOptions tune the comparison without changing the captures.
//
// It is the bulk carrier behind the equivalent functional options
// (WithWindow, WithFlapGap, WithMergeWindow, WithMultiLink,
// WithParallelism); pass a whole struct at once to Run or Analyze
// with WithAnalysisOptions.
type AnalysisOptions struct {
	// Window is the matching window (default ten seconds).
	Window time.Duration
	// FlapGap is the flapping rule (default ten minutes).
	FlapGap time.Duration
	// MergeWindow collapses the two routers' reports of one event
	// (default sixty seconds).
	MergeWindow time.Duration
	// IncludeMultiLink keeps multi-link-adjacency links in the
	// analysis; pair with SimulationConfig.EnableLinkIDs.
	IncludeMultiLink bool
	// Parallelism bounds the analysis worker pool: <= 0 means one
	// worker per CPU, 1 forces the sequential reference path. Every
	// setting produces byte-identical results.
	Parallelism int
}

// options is the resolved functional-option state.
type options struct {
	ao       AnalysisOptions
	tracer   *Tracer
	metrics  *Metrics
	progress ProgressFunc
	storeDir string
}

// Option configures a Run, Analyze, or Simulate call.
type Option func(*options)

// WithWindow sets the matching window (default ten seconds).
func WithWindow(w time.Duration) Option { return func(o *options) { o.ao.Window = w } }

// WithFlapGap sets the flapping rule (default ten minutes).
func WithFlapGap(g time.Duration) Option { return func(o *options) { o.ao.FlapGap = g } }

// WithMergeWindow sets the span within which the two routers' reports
// of one event are collapsed (default sixty seconds).
func WithMergeWindow(w time.Duration) Option { return func(o *options) { o.ao.MergeWindow = w } }

// WithMultiLink keeps multi-link-adjacency links in the analysis;
// pair with SimulationConfig.EnableLinkIDs.
func WithMultiLink(include bool) Option { return func(o *options) { o.ao.IncludeMultiLink = include } }

// WithParallelism bounds the analysis worker pool: <= 0 means one
// worker per CPU, 1 forces the sequential reference path. Every
// setting produces byte-identical results.
func WithParallelism(n int) Option { return func(o *options) { o.ao.Parallelism = n } }

// WithAnalysisOptions applies a whole AnalysisOptions struct at once —
// the bulk alternative to the per-field options above.
func WithAnalysisOptions(ao AnalysisOptions) Option { return func(o *options) { o.ao = ao } }

// WithTracer records a span per pipeline stage and pool worker into t.
func WithTracer(t *Tracer) Option { return func(o *options) { o.tracer = t } }

// WithMetrics collects the pipeline's named counters and gauges into m.
func WithMetrics(m *Metrics) Option { return func(o *options) { o.metrics = m } }

// WithProgress streams stage and shard events to fn as the pipeline
// runs. fn may be called concurrently; it must synchronize.
func WithProgress(fn ProgressFunc) Option { return func(o *options) { o.progress = fn } }

// WithStoreDir makes Run, Analyze, and AnalyzeCaptureDir write an
// indexed failure store (internal/store) into dir at the end of the
// pipeline: CRC-framed failure/transition/message segments with
// sparse time indexes and per-link/per-host postings, plus a manifest
// carrying the catalogs and the precomputed agreement tables. Query
// it with netfail-query, the /api/v1 HTTP surface, or the store
// package's Go API.
func WithStoreDir(dir string) Option { return func(o *options) { o.storeDir = dir } }

// resolve folds opts and instruments ctx with any attached
// observability consumers.
func resolve(ctx context.Context, opts []Option) (context.Context, options) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	ctx = obs.WithTracer(ctx, o.tracer)
	ctx = obs.WithRegistry(ctx, o.metrics)
	ctx = obs.WithProgress(ctx, o.progress)
	return ctx, o
}

// Study bundles the artifacts of one end-to-end run.
type Study struct {
	// Campaign holds the raw captures and ground truth.
	Campaign *Campaign
	// Mined is the topology reconstructed from the config archive —
	// the link namespace both pipelines share.
	Mined *config.Mined
	// Listener is the IS-IS reconstruction.
	Listener *ListenerResult
	// Tickets is the generated trouble-ticket index.
	Tickets *tickets.Index
	// Analysis is the full comparison.
	Analysis *Analysis
}

// Simulate runs a measurement campaign. Cancellation is checked
// between simulator events; observability options trace the
// simulation phases.
func Simulate(ctx context.Context, cfg SimulationConfig, opts ...Option) (*Campaign, error) {
	ctx, _ = resolve(ctx, opts)
	return netsim.Run(ctx, cfg)
}

// MineConfigs reconstructs the network from a campaign's config
// archive, exactly as the original study mined CENIC's archive.
func MineConfigs(camp *Campaign) (*config.Mined, error) {
	return config.Mine(camp.Archive)
}

// listenCancelStride bounds how many capture records replay between
// cancellation checks: captures run to millions of records, and one
// record decodes in well under a microsecond, so 1024 keeps cancel
// latency around a millisecond while keeping the check off the per-
// record fast path.
const listenCancelStride = 1024

// Listen replays a campaign's LSP capture through the passive IS-IS
// listener, resolving against the given (typically mined) network.
// Cancellation is checked every few thousand records; a processing
// error identifies the failing record by index and capture timestamp.
func Listen(ctx context.Context, net *topo.Network, camp *Campaign) (*ListenerResult, error) {
	ctx, done := obs.Stage(ctx, "listen")
	defer done()
	l := listener.New(net)
	for i, c := range camp.LSPLog {
		if i%listenCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := l.Process(c.Time, c.Data); err != nil {
			return nil, fmt.Errorf("netfail: replaying LSP capture: record %d at %s: %w",
				i, c.Time.UTC().Format(time.RFC3339), err)
		}
	}
	res := l.Results()
	obs.Add(ctx, "listener.lsps", int64(res.LSPCount))
	obs.Add(ctx, "drops.listener.decode_errors", int64(res.DecodeErrors))
	obs.Add(ctx, "listener.stale", int64(res.StaleLSPs))
	obs.Add(ctx, "transitions.listener.is", int64(len(res.ISTransitions)))
	obs.Add(ctx, "transitions.listener.ip", int64(len(res.IPTransitions)))
	return res, nil
}

// GenerateTickets builds the trouble-ticket corpus from a campaign's
// ground truth, for the long-failure verification step.
func GenerateTickets(camp *Campaign) *tickets.Index {
	corpus := tickets.Generate(camp.Config.Seed+1, camp.GroundTruthFailures(), tickets.DefaultParams())
	return tickets.NewIndex(corpus)
}

// Run executes the complete pipeline: simulate, mine configs, listen,
// generate tickets, analyze. Cancel ctx to stop at the next stage or
// shard boundary with ctx's error.
func Run(ctx context.Context, cfg SimulationConfig, opts ...Option) (*Study, error) {
	ctx, o := resolve(ctx, opts)
	camp, err := netsim.Run(ctx, cfg)
	if err != nil {
		return nil, err
	}
	return analyze(ctx, camp, o)
}

// Analyze runs the analysis pipeline over an existing campaign:
// mine configs, listen, generate tickets, compare.
func Analyze(ctx context.Context, camp *Campaign, opts ...Option) (*Study, error) {
	ctx, o := resolve(ctx, opts)
	return analyze(ctx, camp, o)
}

// analyze is the shared mine → listen → tickets → compare tail.
func analyze(ctx context.Context, camp *Campaign, o options) (*Study, error) {
	ao := o.ao
	mctx, mdone := obs.Stage(ctx, "mine")
	mined, err := MineConfigs(camp)
	obs.Add(mctx, "mine.config_files", int64(camp.Archive.FileCount()))
	mdone()
	if err != nil {
		return nil, fmt.Errorf("netfail: mining configs: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res, err := Listen(ctx, mined.Network, camp)
	if err != nil {
		return nil, err
	}
	tix := GenerateTickets(camp)
	analysis, err := core.Analyze(ctx, core.Input{
		Network:          mined.Network,
		Customers:        camp.Network.Customers,
		Syslog:           camp.Syslog,
		ISTransitions:    res.ISTransitions,
		IPTransitions:    res.IPTransitions,
		Start:            camp.Config.Start,
		End:              camp.Config.End,
		ListenerOffline:  camp.ListenerOffline,
		Tickets:          tix,
		Window:           ao.Window,
		FlapGap:          ao.FlapGap,
		MergeWindow:      ao.MergeWindow,
		IncludeMultiLink: ao.IncludeMultiLink,
		Parallelism:      ao.Parallelism,
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, err
		}
		return nil, fmt.Errorf("netfail: %w", err)
	}
	study := &Study{
		Campaign: camp,
		Mined:    mined,
		Listener: res,
		Tickets:  tix,
		Analysis: analysis,
	}
	if o.storeDir != "" {
		if err := writeStudyStore(ctx, o.storeDir, study); err != nil {
			return nil, err
		}
	}
	return study, nil
}

// Report renders every table and figure of the paper's evaluation
// section, with the published values alongside. The independent table
// computations fan out across the analysis worker pool (the
// Parallelism knob the study was analyzed with); output is
// byte-identical for every worker count.
func (s *Study) Report(w io.Writer) error {
	return s.ReportContext(context.Background(), w)
}

// ReportContext is Report with cancellation and observability: cancel
// ctx to stop rendering at the next section boundary; WithTracer and
// friends instrument the per-section rendering (reuse the tracer from
// the originating Run call to get one contiguous span tree).
func (s *Study) ReportContext(ctx context.Context, w io.Writer, opts ...Option) error {
	ctx, _ = resolve(ctx, opts)
	return report.FullReport(ctx, w, s.Analysis,
		s.Campaign.Archive.FileCount(), s.Campaign.Counts.LSPUpdates,
		s.Analysis.In.Parallelism)
}

// Failure re-exports the trace failure record for downstream
// consumers of Analysis fields.
type Failure = trace.Failure

// Episode re-exports the flapping-episode record.
type Episode = trace.Episode

// FlapEpisodes groups failures into flapping episodes using the
// paper's ten-minute rule (or any other gap).
func FlapEpisodes(failures []Failure, gap time.Duration) []Episode {
	return trace.Episodes(failures, gap)
}

// DefaultFlapGap is the paper's ten-minute flapping rule.
const DefaultFlapGap = trace.DefaultFlapGap
