// Package netfail reproduces the measurement study "A Comparison of
// Syslog and IS-IS for Network Failure Analysis" (Turner, Levchenko,
// Savage, Snoeren — ACM IMC 2013) as a reusable library.
//
// The original study compared two reconstructions of thirteen months
// of link failures in the CENIC network: one from Cisco syslog
// messages collected over UDP, one from a passive IS-IS listener
// recording link-state PDUs. The operational traces are proprietary,
// so this package pairs the paper's analysis pipeline with a
// calibrated discrete-event simulator of a CENIC-scale network that
// reproduces both observation channels, wire formats included.
//
// The high-level flow:
//
//	study, err := netfail.Run(netfail.SimulationConfig{Seed: 1})
//	...
//	study.Report(os.Stdout)               // Tables 1-7, Figure 1 data
//	t4 := study.Analysis.Table4()         // or drill into results
//
// Each stage is also available separately: Simulate produces raw
// captures (syslog log, LSP capture, config archive, trouble
// tickets), MineConfigs rebuilds the link namespace from the config
// archive, Listen replays the LSP capture through the IS-IS listener,
// and Analyze runs the comparison. Everything is deterministic in the
// seed.
package netfail

import (
	"fmt"
	"io"
	"time"

	"netfail/internal/config"
	"netfail/internal/core"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/report"
	"netfail/internal/tickets"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Re-exported types forming the public API surface.
type (
	// SimulationConfig parameterizes a simulated measurement
	// campaign; the zero value (plus a Seed) reproduces the paper's
	// 13-month CENIC-scale study.
	SimulationConfig = netsim.Config
	// Campaign is a simulation's raw output: captures plus ground
	// truth.
	Campaign = netsim.Campaign
	// Analysis exposes the comparison results (Table1 … Table7,
	// Figure1, WindowKnee, PolicyAblation).
	Analysis = core.Analysis
	// ListenerResult is the IS-IS listener's reconstruction.
	ListenerResult = listener.Result
	// TopologySpec shapes the generated network.
	TopologySpec = topo.Spec
	// WorkloadParams and ImpairParams expose the calibrated failure
	// and impairment models for ablation studies.
	WorkloadParams = netsim.WorkloadParams
	ImpairParams   = netsim.ImpairParams
)

// Study bundles the artifacts of one end-to-end run.
type Study struct {
	// Campaign holds the raw captures and ground truth.
	Campaign *Campaign
	// Mined is the topology reconstructed from the config archive —
	// the link namespace both pipelines share.
	Mined *config.Mined
	// Listener is the IS-IS reconstruction.
	Listener *ListenerResult
	// Tickets is the generated trouble-ticket index.
	Tickets *tickets.Index
	// Analysis is the full comparison.
	Analysis *Analysis
}

// Simulate runs a measurement campaign.
func Simulate(cfg SimulationConfig) (*Campaign, error) {
	return netsim.Run(cfg)
}

// MineConfigs reconstructs the network from a campaign's config
// archive, exactly as the original study mined CENIC's archive.
func MineConfigs(camp *Campaign) (*config.Mined, error) {
	return config.Mine(camp.Archive)
}

// Listen replays a campaign's LSP capture through the passive IS-IS
// listener, resolving against the given (typically mined) network.
func Listen(net *topo.Network, camp *Campaign) (*ListenerResult, error) {
	l := listener.New(net)
	for _, c := range camp.LSPLog {
		if err := l.Process(c.Time, c.Data); err != nil {
			return nil, fmt.Errorf("netfail: replaying LSP capture: %w", err)
		}
	}
	return l.Results(), nil
}

// GenerateTickets builds the trouble-ticket corpus from a campaign's
// ground truth, for the long-failure verification step.
func GenerateTickets(camp *Campaign) *tickets.Index {
	corpus := tickets.Generate(camp.Config.Seed+1, camp.GroundTruthFailures(), tickets.DefaultParams())
	return tickets.NewIndex(corpus)
}

// Run executes the complete pipeline: simulate, mine configs, listen,
// generate tickets, analyze.
func Run(cfg SimulationConfig) (*Study, error) {
	camp, err := Simulate(cfg)
	if err != nil {
		return nil, err
	}
	return AnalyzeCampaign(camp)
}

// AnalysisOptions tune the comparison without changing the captures.
type AnalysisOptions struct {
	// Window is the matching window (default ten seconds).
	Window time.Duration
	// FlapGap is the flapping rule (default ten minutes).
	FlapGap time.Duration
	// MergeWindow collapses the two routers' reports of one event
	// (default sixty seconds).
	MergeWindow time.Duration
	// IncludeMultiLink keeps multi-link-adjacency links in the
	// analysis; pair with SimulationConfig.EnableLinkIDs.
	IncludeMultiLink bool
	// Parallelism bounds the analysis worker pool: <= 0 means one
	// worker per CPU, 1 forces the sequential reference path. Every
	// setting produces byte-identical results.
	Parallelism int
}

// AnalyzeCampaign runs the analysis pipeline over an existing
// campaign with the paper's default options.
func AnalyzeCampaign(camp *Campaign) (*Study, error) {
	return AnalyzeCampaignWithOptions(camp, AnalysisOptions{})
}

// AnalyzeCampaignWithOptions runs the analysis pipeline with custom
// options.
func AnalyzeCampaignWithOptions(camp *Campaign, opts AnalysisOptions) (*Study, error) {
	mined, err := MineConfigs(camp)
	if err != nil {
		return nil, fmt.Errorf("netfail: mining configs: %w", err)
	}
	res, err := Listen(mined.Network, camp)
	if err != nil {
		return nil, err
	}
	tix := GenerateTickets(camp)
	analysis, err := core.Analyze(core.Input{
		Network:          mined.Network,
		Customers:        camp.Network.Customers,
		Syslog:           camp.Syslog,
		ISTransitions:    res.ISTransitions,
		IPTransitions:    res.IPTransitions,
		Start:            camp.Config.Start,
		End:              camp.Config.End,
		ListenerOffline:  camp.ListenerOffline,
		Tickets:          tix,
		Window:           opts.Window,
		FlapGap:          opts.FlapGap,
		MergeWindow:      opts.MergeWindow,
		IncludeMultiLink: opts.IncludeMultiLink,
		Parallelism:      opts.Parallelism,
	})
	if err != nil {
		return nil, fmt.Errorf("netfail: %w", err)
	}
	return &Study{
		Campaign: camp,
		Mined:    mined,
		Listener: res,
		Tickets:  tix,
		Analysis: analysis,
	}, nil
}

// Report renders every table and figure of the paper's evaluation
// section, with the published values alongside. The independent table
// computations fan out across the analysis worker pool (the
// Parallelism knob the study was analyzed with); output is
// byte-identical for every worker count.
func (s *Study) Report(w io.Writer) error {
	return report.FullReport(w, s.Analysis,
		s.Campaign.Archive.FileCount(), s.Campaign.Counts.LSPUpdates,
		s.Analysis.In.Parallelism)
}

// Failure re-exports the trace failure record for downstream
// consumers of Analysis fields.
type Failure = trace.Failure

// Episode re-exports the flapping-episode record.
type Episode = trace.Episode

// FlapEpisodes groups failures into flapping episodes using the
// paper's ten-minute rule (or any other gap).
func FlapEpisodes(failures []Failure, gap time.Duration) []Episode {
	return trace.Episodes(failures, gap)
}

// DefaultFlapGap is the paper's ten-minute flapping rule.
const DefaultFlapGap = trace.DefaultFlapGap
