// Livecapture: exercise both wire paths on real loopback sockets — a
// router device emits RFC 3164 syslog over UDP to a collector, and
// floods binary IS-IS LSPs over UDP to a passive listener, which
// decodes the TLVs and reports the adjacency transition. This is the
// measurement apparatus of the paper in miniature.
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"netfail/internal/clock"
	"netfail/internal/device"
	"netfail/internal/listener"
	"netfail/internal/obs"
	"netfail/internal/syslog"
	"netfail/internal/topo"
)

func main() {
	// Wall time enters through the sanctioned clock only (the
	// detclock analyzer forbids time.Now outside internal/clock).
	clk := clock.System()

	// A two-router network with one link.
	network := topo.NewNetwork()
	for i, name := range []string{"riv-core-01", "cpe-001"} {
		class := topo.Core
		if i == 1 {
			class = topo.CPE
		}
		if err := network.AddRouter(&topo.Router{
			Name: name, Class: class,
			SystemID: topo.SystemIDFromIndex(i + 1),
			Loopback: 10<<24 | uint32(i+1),
		}); err != nil {
			log.Fatal(err)
		}
	}
	link, err := network.AddLink(
		topo.Endpoint{Host: "riv-core-01", Port: "TenGigE0/0/0/0"},
		topo.Endpoint{Host: "cpe-001", Port: "GigabitEthernet0/0/0"},
		137<<24|164<<16, 100)
	if err != nil {
		log.Fatal(err)
	}

	// Central syslog collector, as CENIC ran.
	collector, err := syslog.NewCollector("127.0.0.1:0", clk.Now())
	if err != nil {
		log.Fatal(err)
	}
	defer collector.Close()
	sender, err := syslog.NewSender(collector.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer sender.Close()

	// Passive IS-IS listener behind a UDP socket.
	lconn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer lconn.Close()
	lsp := listener.New(network)
	// Live counters, the same registry netfail-listener serves over
	// -debug-addr; here they just summarize the capture at the end.
	reg := obs.NewRegistry()
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, _, err := lconn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			reg.Counter("listener.datagrams").Add(1)
			if err := lsp.Process(clk.Now(), append([]byte(nil), buf[:n]...)); err != nil {
				reg.Counter("drops.listener.decode_errors").Add(1)
				fmt.Println("listener:", err)
			}
		}
	}()
	flood, err := net.Dial("udp", lconn.LocalAddr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer flood.Close()

	core := device.New(network, network.Routers["riv-core-01"], syslog.DialectIOSXR)
	cpe := device.New(network, network.Routers["cpe-001"], syslog.DialectIOS)

	originate := func(d *device.Router) {
		wire, err := d.OriginateLSP().Encode()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := flood.Write(wire); err != nil {
			log.Fatal(err)
		}
	}
	emit := func(d *device.Router, up bool, reason string) {
		m, err := d.AdjMessage(clk.Now(), link.ID, up, reason)
		if err != nil {
			log.Fatal(err)
		}
		if err := sender.Send(m); err != nil {
			log.Fatal(err)
		}
	}

	// Baseline: both routers advertise the adjacency.
	originate(core)
	originate(cpe)

	// The link fails: both devices notice, log, and re-originate.
	fmt.Println("--- link fails ---")
	core.SetAdjacency(link.ID, false)
	cpe.SetAdjacency(link.ID, false)
	emit(core, false, "hold time expired")
	emit(cpe, false, "hold time expired")
	originate(core)
	originate(cpe)

	// Recovery.
	fmt.Println("--- link recovers ---")
	core.SetAdjacency(link.ID, true)
	cpe.SetAdjacency(link.ID, true)
	emit(core, true, "new adjacency")
	emit(cpe, true, "new adjacency")
	originate(core)
	originate(cpe)

	// Let the sockets drain.
	deadline := clk.Now().Add(3 * time.Second)
	for clk.Now().Before(deadline) {
		if len(collector.Messages()) >= 4 && len(lsp.Results().ISTransitions) >= 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println("\nsyslog collector received:")
	for _, m := range collector.Messages() {
		fmt.Println(" ", m.Render())
	}
	res := lsp.Results()
	fmt.Printf("\nIS-IS listener: %d LSPs decoded, transitions:\n", res.LSPCount)
	for _, tr := range res.ISTransitions {
		fmt.Printf("  %s %-4s %s (reported by %s)\n",
			tr.Time.Format("15:04:05.000"), tr.Dir, tr.Link, tr.Reporter)
	}

	fmt.Println("\ncapture counters:")
	if err := reg.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
