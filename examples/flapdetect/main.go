// Flapdetect: study link flapping — the regime where syslog's view of
// the network collapses (§4.1) — and compare the three strategies for
// handling nonsensical repeated syslog transitions (§4.3).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"netfail"
	"netfail/internal/report"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

func main() {
	study, err := netfail.Run(context.Background(), netfail.SimulationConfig{
		Seed:  11,
		Start: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2011, 7, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}
	a := study.Analysis

	// Flap episodes in the IS-IS (ground-truth-grade) trace.
	episodes := netfail.FlapEpisodes(a.ISISFailures, netfail.DefaultFlapGap)
	var flaps []netfail.Episode
	perLink := make(map[topo.LinkID]int)
	for _, e := range episodes {
		if e.IsFlap() {
			flaps = append(flaps, e)
			perLink[e.Link]++
		}
	}
	fmt.Printf("IS-IS trace: %d failures in %d episodes, %d of them flapping\n",
		len(a.ISISFailures), len(episodes), len(flaps))

	sort.Slice(flaps, func(i, j int) bool { return len(flaps[i].Failures) > len(flaps[j].Failures) })
	fmt.Println("\nworst flapping episodes:")
	for i, e := range flaps {
		if i == 8 {
			break
		}
		fmt.Printf("  %-55s %3d failures over %s\n",
			e.Link, len(e.Failures), e.End().Sub(e.Start()).Round(time.Second))
	}

	// How badly does syslog do during flapping?
	t3 := a.Table3()
	fmt.Printf("\nIS-IS transitions with no matching syslog message: DOWN %.0f%%, UP %.0f%%\n",
		100*float64(t3.Down.None)/float64(t3.Down.Total()),
		100*float64(t3.Up.None)/float64(t3.Up.Total()))
	fmt.Printf("of those, occurring during flapping: DOWN %.0f%%, UP %.0f%% (paper: 67%%, 61%%)\n",
		100*t3.UnmatchedInFlapDown, 100*t3.UnmatchedInFlapUp)

	// Ambiguous repeated messages and the three repair strategies.
	t6 := a.Table6()
	fmt.Printf("\nambiguous syslog state changes: %d double-Down, %d double-Up\n",
		t6.TotalDown(), t6.TotalUp())
	fmt.Println()
	if err := report.RenderPolicies(os.Stdout, a.PolicyAblation()); err != nil {
		log.Fatal(err)
	}

	// The recommended policy in action on one link stream.
	rec := trace.Reconstruct(a.SyslogAdj)
	fmt.Printf("\nsyslog reconstruction: %d failures, %d ambiguities handled by hold-previous\n",
		len(rec.Failures), len(rec.Ambiguities))
}
