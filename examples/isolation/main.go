// Isolation: reproduce the paper's §4.4 customer-isolation analysis
// (Table 7) and show why high-level metrics amplify reconstruction
// error — syslog and IS-IS disagree more about "which customers were
// cut off" than about raw link failures.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"netfail"
	"netfail/internal/core"
	"netfail/internal/report"
	"netfail/internal/topo"
)

func main() {
	study, err := netfail.Run(context.Background(), netfail.SimulationConfig{
		Seed: 7,
		// Full CENIC scale but a shorter window keeps this example
		// quick; remove Start/End for the paper's 13 months.
		Start: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := report.RenderTable7(os.Stdout, study.Analysis.Table7()); err != nil {
		log.Fatal(err)
	}

	// Per-customer view from the IS-IS trace: who suffered most?
	netWithCustomers := *study.Mined.Network
	netWithCustomers.Customers = study.Campaign.Network.Customers
	g := topo.NewGraph(&netWithCustomers)
	events := core.IsolationEvents(g, netWithCustomers.Customers,
		study.Analysis.ISISFailures, study.Campaign.Config.End)

	type siteStats struct {
		events int
		total  time.Duration
	}
	bySite := make(map[string]*siteStats)
	for _, e := range events {
		s := bySite[e.Customer]
		if s == nil {
			s = &siteStats{}
			bySite[e.Customer] = s
		}
		s.events++
		s.total += e.Duration()
	}
	type row struct {
		site string
		s    *siteStats
	}
	rows := make([]row, 0, len(bySite))
	for site, s := range bySite {
		rows = append(rows, row{site, s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].s.total > rows[j].s.total })

	fmt.Println("\nworst-isolated customers (per IS-IS ground truth):")
	for i, r := range rows {
		if i == 10 {
			break
		}
		fmt.Printf("  %-10s %3d isolations, %7.1f h total\n",
			r.site, r.s.events, r.s.total.Hours())
	}

	// The paper's §4.4 anecdotes: matched isolation events whose
	// durations disagree wildly between the sources.
	fmt.Println("\negregious disagreements (paper: 17 h in syslog vs under a minute in IS-IS):")
	for _, m := range study.Analysis.EgregiousIsolations(3) {
		fmt.Printf("  %-10s IS-IS %v vs syslog %v (%.0fx apart)\n",
			m.Customer, m.ISIS.Duration().Round(time.Second),
			m.Syslog.Duration().Round(time.Second), m.Ratio)
	}
}
