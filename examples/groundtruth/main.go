// Groundtruth: why did the paper need an IS-IS listener at all? Its
// predecessors validated syslog with operator emails and active
// probing, both of which give "only sparse coverage of the failures"
// (§1). This example runs all three secondary sources against the
// IS-IS reference on one simulated campaign:
//
//   - syslog reconstruction (the paper's subject),
//   - a 5-minute active prober (the prior study's validation),
//   - 5-minute SNMP ifOperStatus polling (Labovitz et al.'s source),
//   - the trouble-ticket corpus (the other prior validation),
//
// and reports how much of the IS-IS failure record each one covers.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"netfail"
	"netfail/internal/match"
	"netfail/internal/probe"
	"netfail/internal/snmp"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

func main() {
	study, err := netfail.Run(context.Background(), netfail.SimulationConfig{
		Seed:  19,
		Start: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2011, 4, 1, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}
	a := study.Analysis
	reference := a.ISISFailures
	fmt.Printf("IS-IS reference: %d failures, %.0f h downtime\n\n",
		len(reference), trace.TotalDowntime(reference).Hours())

	// 1. Syslog: failure-for-failure matching (10 s window).
	m := match.Failures(reference, a.SyslogFailures, match.DefaultWindow)
	fmt.Printf("syslog:   %4d of %d failures matched (%.0f%%)\n",
		len(m.Pairs), len(reference), 100*float64(len(m.Pairs))/float64(len(reference)))

	// 2. Active probing from a backbone vantage point.
	netWithCustomers := *study.Mined.Network
	netWithCustomers.Customers = study.Campaign.Network.Customers
	g := topo.NewGraph(&netWithCustomers)
	vantage := study.Campaign.Network.RouterNames[0]
	p := probe.DefaultParams(vantage)
	res := probe.Run(g, study.Mined.Network, reference, p,
		study.Campaign.Config.Start, study.Campaign.Config.End)
	cov := probe.Assess(res, reference, p.Interval)
	fmt.Printf("probing:  %4d of %d failures overlapped by an outage (%.0f%%); %d probes sent\n",
		cov.Detected, cov.ReferenceFailures, 100*cov.Fraction(), res.ProbesSent)
	fmt.Printf("          of the %d failures >= one probing interval, %d detected (%.0f%%)\n",
		cov.LongFailures, cov.DetectedLong,
		100*float64(cov.DetectedLong)/float64(max(cov.LongFailures, 1)))

	// 3. SNMP ifOperStatus polling by an NMS.
	snmpTs := snmp.Poll(study.Mined.Network, reference, snmp.DefaultParams(),
		study.Campaign.Config.Start, study.Campaign.Config.End)
	cs := snmp.Compare(snmpTs, reference, snmp.DefaultParams().Interval)
	fmt.Printf("snmp:     %4d of %d failures detected by 5-minute polling (%.0f%%); %d below the interval\n",
		cs.Detected, cs.ReferenceFailures, 100*cs.Fraction(), cs.ShortMissed)

	// 4. Trouble tickets.
	ticketed := 0
	for _, f := range reference {
		if study.Tickets.Verify(f) {
			ticketed++
		}
	}
	fmt.Printf("tickets:  %4d of %d failures chronicled (%.0f%%); operators skip short outages\n",
		ticketed, len(reference), 100*float64(ticketed)/float64(len(reference)))

	fmt.Println("\nthe asymmetry is the paper's point: syslog approximates the record,")
	fmt.Println("probing and tickets only sample it — neither can validate failure-for-failure.")
}
