// Routes: run SPF over the IS-IS listener's link-state database —
// the concrete meaning of "routing state is ground truth" (§3.2). A
// small ring network loses a link; the routing table recomputes
// around it; then a second failure partitions a site and SPF shows
// the isolation directly.
package main

import (
	"fmt"
	"log"
	"time"

	"netfail/internal/device"
	"netfail/internal/isis"
	"netfail/internal/listener"
	"netfail/internal/syslog"
	"netfail/internal/topo"
)

func main() {
	// Ring of three cores plus a single-homed CPE on core-c.
	network := topo.NewNetwork()
	names := []string{"core-a", "core-b", "core-c", "cpe-1"}
	for i, name := range names {
		class := topo.Core
		if name == "cpe-1" {
			class = topo.CPE
		}
		if err := network.AddRouter(&topo.Router{
			Name: name, Class: class,
			SystemID: topo.SystemIDFromIndex(i + 1),
			Loopback: 10<<24 | uint32(i+1),
		}); err != nil {
			log.Fatal(err)
		}
	}
	link := func(a, b string, subnet, metric uint32) topo.LinkID {
		l, err := network.AddLink(
			topo.Endpoint{Host: a, Port: "to-" + b},
			topo.Endpoint{Host: b, Port: "to-" + a}, subnet, metric)
		if err != nil {
			log.Fatal(err)
		}
		return l.ID
	}
	ab := link("core-a", "core-b", 0, 10)
	bc := link("core-b", "core-c", 2, 10)
	ca := link("core-c", "core-a", 4, 10)
	uplink := link("core-c", "cpe-1", 6, 100)
	_ = ab

	devices := make(map[string]*device.Router)
	for name, r := range network.Routers {
		devices[name] = device.New(network, r, syslog.DialectIOSXR)
	}
	l := listener.New(network)
	now := time.Date(2011, 6, 1, 0, 0, 0, 0, time.UTC)
	flood := func(names ...string) {
		for _, n := range names {
			wire, err := devices[n].OriginateLSP().Encode()
			if err != nil {
				log.Fatal(err)
			}
			now = now.Add(time.Second)
			if err := l.Process(now, wire); err != nil {
				log.Fatal(err)
			}
		}
	}
	flood(names...)

	src := network.Routers["core-a"].SystemID
	show := func(header string) {
		fmt.Println(header)
		res := isis.RunSPF(l.Database(), src)
		for _, r := range res.Sorted() {
			name := r.Dest.String()
			if h, ok := l.Hostname(r.Dest); ok {
				name = h
			}
			via := r.NextHop.String()
			if h, ok := l.Hostname(r.NextHop); ok {
				via = h
			}
			fmt.Printf("  %-8s metric %3d  via %-8s (%d hops)\n", name, r.Metric, via, r.Hops)
		}
		if !res.Reachable(network.Routers["cpe-1"].SystemID) {
			fmt.Println("  cpe-1    UNREACHABLE — customer isolated")
		}
		fmt.Println()
	}

	show("routing table at core-a, all links up:")

	// The a-c ring segment fails: traffic to core-c reroutes via b.
	for _, n := range []string{"core-a", "core-c"} {
		devices[n].SetAdjacency(ca, false)
	}
	flood("core-a", "core-c")
	show("after core-a <-> core-c fails (ring reroutes):")

	// Then b-c fails too: core-c and its customer are cut off.
	for _, n := range []string{"core-b", "core-c"} {
		devices[n].SetAdjacency(bc, false)
	}
	flood("core-b", "core-c")
	show("after core-b <-> core-c also fails (partition):")

	// Recovery.
	for _, n := range []string{"core-a", "core-c"} {
		devices[n].SetAdjacency(ca, true)
	}
	for _, n := range []string{"core-b", "core-c"} {
		devices[n].SetAdjacency(bc, true)
	}
	flood("core-a", "core-b", "core-c")
	show("after recovery:")

	// The listener's transition trace recorded all of it.
	res := l.Results()
	fmt.Println("transitions the listener recorded along the way:")
	for _, tr := range res.ISTransitions {
		fmt.Printf("  %s %-4s %s\n", tr.Time.Format("15:04:05"), tr.Dir, tr.Link)
	}
	_ = uplink
}
