// Quickstart: simulate a small network for six weeks, run the full
// syslog-vs-IS-IS comparison, and print the headline numbers.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"netfail"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

func main() {
	cfg := netfail.SimulationConfig{
		Seed: 42,
		// A small topology keeps the run instant; drop Spec entirely
		// for the paper's full CENIC scale.
		Spec: topo.Spec{
			Seed: 42, CoreRouters: 12, CPERouters: 30, CoreChords: 3,
			DualHomedCPE: 5, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 20, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 2, 15, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	}

	// Run is context-first: cancel the context to stop the pipeline at
	// the next stage boundary. WithProgress streams stage events —
	// handy feedback on the full 13-month campaign.
	study, err := netfail.Run(context.Background(), cfg,
		netfail.WithProgress(func(ev netfail.ProgressEvent) {
			if ev.Kind != netfail.ShardDone {
				fmt.Fprintf(os.Stderr, "[%s]\n", ev)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}

	t4 := study.Analysis.Table4()
	fmt.Println("syslog vs IS-IS, six simulated weeks:")
	fmt.Printf("  IS-IS failures:   %d (%.0f h downtime)\n",
		t4.ISISFailures, t4.ISISDowntime.Hours())
	fmt.Printf("  syslog failures:  %d (%.0f h downtime)\n",
		t4.SyslogFailures, t4.SyslogDowntime.Hours())
	fmt.Printf("  matched failures: %d\n", t4.OverlapFailures)
	fmt.Printf("  syslog false positives: %d (%.0f%%)\n",
		t4.FalsePositives, 100*t4.FalsePositiveFraction)

	t5 := study.Analysis.Table5()
	fmt.Println("\nare the two sources statistically consistent? (two-sample KS)")
	fmt.Printf("  failures per link: %v (D=%.3f, p=%.3f)\n",
		t5.KSFailuresPerLink.Consistent(0.01), t5.KSFailuresPerLink.D, t5.KSFailuresPerLink.PValue)
	fmt.Printf("  link downtime:     %v (D=%.3f, p=%.3f)\n",
		t5.KSDowntime.Consistent(0.01), t5.KSDowntime.D, t5.KSDowntime.PValue)
	fmt.Printf("  failure duration:  %v (D=%.3f, p=%.3f)\n",
		t5.KSDuration.Consistent(0.01), t5.KSDuration.D, t5.KSDuration.PValue)
	fmt.Println("\n(the paper's verdict: counts and downtime consistent, durations not)")
}
