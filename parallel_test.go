package netfail

// Determinism contract of the parallel pipeline: every Parallelism
// setting must produce byte-identical reports. The shards merge in
// stable link-ID/chunk order and every sort downstream is stable, so
// worker count can change scheduling but never output.

import (
	"context"
	"bytes"
	"testing"
)

func TestParallelismIsByteIdentical(t *testing.T) {
	camp, err := Simulate(context.Background(), smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallelism int) []byte {
		t.Helper()
		study, err := Analyze(context.Background(), camp, WithParallelism(parallelism))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := study.Report(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := render(1)
	if len(sequential) == 0 {
		t.Fatal("empty report")
	}
	for _, p := range []int{0, 2, 8} {
		got := render(p)
		if !bytes.Equal(got, sequential) {
			t.Errorf("Parallelism %d report differs from sequential (%d vs %d bytes)",
				p, len(got), len(sequential))
		}
	}

	// Observability is purely observational: the same analysis with a
	// tracer, a metrics registry, and a progress stream attached must
	// stay byte-identical — at every Parallelism setting.
	for _, p := range []int{0, 1, 2, 8} {
		tracer := NewTracer()
		reg := NewMetrics()
		study, err := Analyze(context.Background(), camp,
			WithParallelism(p), WithTracer(tracer), WithMetrics(reg),
			WithProgress(func(ProgressEvent) {}))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := study.Report(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), sequential) {
			t.Errorf("Parallelism %d with observability attached differs from baseline report", p)
		}
		if len(tracer.Snapshot()) == 0 {
			t.Errorf("Parallelism %d: tracer recorded no spans", p)
		}
		if reg.Counter("syslog.messages").Value() == 0 {
			t.Errorf("Parallelism %d: syslog.messages counter not populated", p)
		}
	}
}

// TestParallelismKnobThreaded pins the knob's plumbing: the value
// handed to WithParallelism must be the one the analysis
// (and therefore Study.Report's fan-out) actually ran with.
func TestParallelismKnobThreaded(t *testing.T) {
	camp, err := Simulate(context.Background(), smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	study, err := Analyze(context.Background(), camp, WithParallelism(3))
	if err != nil {
		t.Fatal(err)
	}
	if study.Analysis.In.Parallelism != 3 {
		t.Errorf("Analysis.In.Parallelism = %d, want 3", study.Analysis.In.Parallelism)
	}
}
