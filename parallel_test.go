package netfail

// Determinism contract of the parallel pipeline: every Parallelism
// setting must produce byte-identical reports. The shards merge in
// stable link-ID/chunk order and every sort downstream is stable, so
// worker count can change scheduling but never output.

import (
	"bytes"
	"testing"
)

func TestParallelismIsByteIdentical(t *testing.T) {
	camp, err := Simulate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallelism int) []byte {
		t.Helper()
		study, err := AnalyzeCampaignWithOptions(camp, AnalysisOptions{Parallelism: parallelism})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := study.Report(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	sequential := render(1)
	if len(sequential) == 0 {
		t.Fatal("empty report")
	}
	for _, p := range []int{0, 2, 8} {
		got := render(p)
		if !bytes.Equal(got, sequential) {
			t.Errorf("Parallelism %d report differs from sequential (%d vs %d bytes)",
				p, len(got), len(sequential))
		}
	}
}

// TestParallelismKnobThreaded pins the knob's plumbing: the value
// handed to AnalyzeCampaignWithOptions must be the one the analysis
// (and therefore Study.Report's fan-out) actually ran with.
func TestParallelismKnobThreaded(t *testing.T) {
	camp, err := Simulate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	study, err := AnalyzeCampaignWithOptions(camp, AnalysisOptions{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if study.Analysis.In.Parallelism != 3 {
		t.Errorf("Analysis.In.Parallelism = %d, want 3", study.Analysis.In.Parallelism)
	}
}
