package netfail

// External-validity checks: the paper's qualitative findings should
// not be artifacts of the CENIC-shaped topology or of one particular
// seed. These tests rerun the comparison on differently-shaped
// networks and across seeds and assert the directional results.

import (
	"context"
	"testing"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// denseMeshConfig: a small, heavily-chorded backbone with mostly
// dual-homed CPE — much better connected than CENIC.
func denseMeshConfig(seed int64) SimulationConfig {
	return SimulationConfig{
		Seed: seed,
		Spec: topo.Spec{
			Seed: seed, CoreRouters: 16, CPERouters: 40, CoreChords: 24,
			DualHomedCPE: 30, MultiLinkCorePairs: 2, MultiLinkCPEPairs: 3,
			Customers: 25, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	}
}

// sparseTreeConfig: a thin ring with single-homed everything — much
// more fragile than CENIC.
func sparseTreeConfig(seed int64) SimulationConfig {
	return SimulationConfig{
		Seed: seed,
		Spec: topo.Spec{
			Seed: seed, CoreRouters: 12, CPERouters: 36, CoreChords: 1,
			DualHomedCPE: 1, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 1,
			Customers: 30, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 5, 1, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	}
}

// assertQualitativeFindings checks the directional results that must
// hold regardless of topology: syslog misses transitions (mostly in
// flaps), underestimates downtime, carries short false positives, and
// KS accepts counts but rejects durations.
func assertQualitativeFindings(t *testing.T, name string, s *Study) {
	t.Helper()
	t4 := s.Analysis.Table4()
	if t4.ISISFailures == 0 || t4.SyslogFailures == 0 {
		t.Fatalf("%s: empty comparison", name)
	}
	if t4.SyslogDowntime >= t4.ISISDowntime {
		t.Errorf("%s: syslog downtime (%v) not below IS-IS (%v)", name, t4.SyslogDowntime, t4.ISISDowntime)
	}
	if t4.FalsePositiveFraction < 0.05 || t4.FalsePositiveFraction > 0.5 {
		t.Errorf("%s: FP fraction = %.2f", name, t4.FalsePositiveFraction)
	}
	t3 := s.Analysis.Table3()
	noneDown := float64(t3.Down.None) / float64(max(t3.Down.Total(), 1))
	if noneDown < 0.03 || noneDown > 0.4 {
		t.Errorf("%s: DOWN none fraction = %.2f", name, noneDown)
	}
	t5 := s.Analysis.Table5()
	if !t5.KSFailuresPerLink.Consistent(0.01) {
		t.Errorf("%s: failures/link rejected (p=%.4f)", name, t5.KSFailuresPerLink.PValue)
	}
	if t5.KSDuration.Consistent(0.05) {
		t.Errorf("%s: duration accepted (p=%.4f)", name, t5.KSDuration.PValue)
	}
}

func TestFindingsHoldOnDenseMesh(t *testing.T) {
	s, err := Run(context.Background(), denseMeshConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	assertQualitativeFindings(t, "dense-mesh", s)
	// A dense mesh should produce almost no customer isolation.
	t7 := s.Analysis.Table7()
	t.Logf("dense-mesh isolation: isis=%d syslog=%d", t7.ISISEvents, t7.SyslogEvents)
}

func TestFindingsHoldOnSparseTree(t *testing.T) {
	s, err := Run(context.Background(), sparseTreeConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	assertQualitativeFindings(t, "sparse-tree", s)
	// A fragile network must show substantial isolation.
	t7 := s.Analysis.Table7()
	if t7.ISISEvents == 0 {
		t.Error("sparse-tree: no isolation events despite single-homing")
	}
	t.Logf("sparse-tree isolation: isis=%d syslog=%d", t7.ISISEvents, t7.SyslogEvents)
}

func TestFindingsHoldAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{11, 22, 33} {
		cfg := smallConfig(seed)
		cfg.End = cfg.Start.Add(120 * 24 * time.Hour)
		s, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertQualitativeFindings(t, "seed-sweep", s)
	}
}
