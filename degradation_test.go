package netfail

// End-to-end degradation: corrupt every capture stream at roughly 1%
// with deterministic fault injection, salvage what survives, and
// assert the paper's qualitative findings still hold. Real archives
// are never pristine — the analysis must degrade gracefully, and
// strict mode must localize the damage instead of tolerating it.

import (
	"context"
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netfail/internal/core"
	"netfail/internal/faultinject"
	"netfail/internal/listener"
	"netfail/internal/netsim"
	"netfail/internal/syslog"
	"netfail/internal/tickets"
	"netfail/internal/trace"
)

// corruptRoundTrip corrupts data with the plan and asserts the
// corruption is deterministic: the same plan must yield byte-identical
// output and an identical fault list.
func corruptRoundTrip(t *testing.T, name string, data []byte, plan faultinject.Plan) ([]byte, []faultinject.Fault) {
	t.Helper()
	dirty, faults := faultinject.Corrupt(data, plan)
	again, faults2 := faultinject.Corrupt(data, plan)
	if !bytes.Equal(dirty, again) {
		t.Fatalf("%s: same plan produced different corrupted captures", name)
	}
	if len(faults) != len(faults2) {
		t.Fatalf("%s: same plan produced different fault lists", name)
	}
	if len(faults) == 0 {
		t.Fatalf("%s: no faults injected at rate %v", name, plan.Rate)
	}
	return dirty, faults
}

func TestCorruptionSweep(t *testing.T) {
	cfg := smallConfig(7)
	cfg.End = cfg.Start.Add(120 * 24 * time.Hour)
	camp, err := Simulate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mined, err := MineConfigs(camp)
	if err != nil {
		t.Fatal(err)
	}

	// Syslog archive: serialize, corrupt ~1% of lines, salvage.
	var slogBuf bytes.Buffer
	if err := syslog.WriteLog(&slogBuf, camp.Syslog); err != nil {
		t.Fatal(err)
	}
	dirtySyslog, _ := corruptRoundTrip(t, "syslog", slogBuf.Bytes(), faultinject.Plan{Seed: 101, Rate: 0.01})
	msgs, srep, err := syslog.ReadLogLenient(bytes.NewReader(dirtySyslog), cfg.Start)
	if err != nil {
		t.Fatal(err)
	}
	if srep.Skipped == 0 {
		t.Error("syslog: corruption injected but salvage reports no skips")
	}
	t.Logf("syslog salvage: %s", srep)

	// LSP capture: corrupt, salvage, and check strict mode fails on
	// exactly the line the salvage report flags first.
	var lspBuf bytes.Buffer
	if err := netsim.WriteLSPLog(&lspBuf, camp.LSPLog); err != nil {
		t.Fatal(err)
	}
	dirtyLSP, _ := corruptRoundTrip(t, "lsps", lspBuf.Bytes(), faultinject.Plan{Seed: 102, Rate: 0.01})
	lsps, lrep, err := netsim.ReadLSPLogLenient(bytes.NewReader(dirtyLSP))
	if err != nil {
		t.Fatal(err)
	}
	if lrep.Skipped == 0 {
		t.Error("lsps: corruption injected but salvage reports no skips")
	}
	if _, serr := netsim.ReadLSPLog(bytes.NewReader(dirtyLSP)); serr == nil {
		t.Error("lsps: strict reader accepted a corrupted capture")
	} else if want := fmt.Sprintf("line %d", lrep.FirstBad); !strings.Contains(serr.Error(), want) {
		t.Errorf("lsps: strict error %q does not name %s", serr, want)
	}
	t.Logf("lsps salvage: %s", lrep)

	// Replay the salvaged capture. Bit flips can leave hex-valid but
	// undecodable payloads; the listener's decode accounting absorbs
	// them.
	l := listener.New(mined.Network)
	for _, c := range lsps {
		_ = l.Process(c.Time, c.Data) // decode failures tolerated below
	}
	res := l.Results()
	if res.DecodeErrors > 0 {
		t.Logf("lsps: %d salvaged payloads failed LSP decode", res.DecodeErrors)
	}

	// IS transition stream: corrupt the serialized listener output and
	// salvage it back, as if the transition log itself had bit-rotted
	// at rest.
	var trBuf bytes.Buffer
	if err := trace.WriteTransitions(&trBuf, res.ISTransitions); err != nil {
		t.Fatal(err)
	}
	dirtyTr, _ := corruptRoundTrip(t, "transitions", trBuf.Bytes(), faultinject.Plan{Seed: 103, Rate: 0.01})
	ists, trep, err := trace.ReadTransitionsLenient(bytes.NewReader(dirtyTr))
	if err != nil {
		t.Fatal(err)
	}
	if _, serr := trace.ReadTransitions(bytes.NewReader(dirtyTr)); serr == nil {
		t.Error("transitions: strict reader accepted a corrupted capture")
	} else if want := fmt.Sprintf("line %d", trep.FirstBad); !strings.Contains(serr.Error(), want) {
		t.Errorf("transitions: strict error %q does not name %s", serr, want)
	}
	t.Logf("transitions salvage: %s", trep)

	// Ground-truth failures JSONL feeding ticket generation.
	var fBuf bytes.Buffer
	if err := trace.WriteFailuresJSON(&fBuf, camp.GroundTruthFailures()); err != nil {
		t.Fatal(err)
	}
	dirtyF, _ := corruptRoundTrip(t, "failures", fBuf.Bytes(), faultinject.Plan{Seed: 104, Rate: 0.01})
	fails, frep, err := trace.ReadFailuresJSONLenient(bytes.NewReader(dirtyF))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("failures salvage: %s", frep)
	tix := tickets.NewIndex(tickets.Generate(cfg.Seed+1, fails, tickets.DefaultParams()))

	// The directional findings must survive ~1% loss on every stream.
	analysis, err := core.Analyze(context.Background(), core.Input{
		Network:         mined.Network,
		Customers:       camp.Network.Customers,
		Syslog:          msgs,
		ISTransitions:   ists,
		IPTransitions:   res.IPTransitions,
		Start:           cfg.Start,
		End:             cfg.End,
		ListenerOffline: camp.ListenerOffline,
		Tickets:         tix,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertQualitativeFindings(t, "corruption-sweep", &Study{Analysis: analysis})
}

// corruptFile rewrites path with a deterministically corrupted copy of
// its contents.
func corruptFile(t *testing.T, path string, plan faultinject.Plan) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	dirty, faults := faultinject.Corrupt(data, plan)
	if len(faults) == 0 {
		t.Fatalf("%s: no faults injected", path)
	}
	if err := os.WriteFile(path, dirty, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCLICorruptedCampaign drives netfail-analyze over an on-disk
// campaign with bit-rotted captures: strict mode must refuse with a
// line-accurate error and exit 1; -lenient must salvage, print the
// per-file reports on stderr, and exit 3 so scripts can tell a
// salvaged analysis from a clean one.
func TestCLICorruptedCampaign(t *testing.T) {
	bin := buildCommands(t)
	campaign := filepath.Join(t.TempDir(), "campaign")
	out, err := exec.Command(filepath.Join(bin, "netfail-sim"),
		"-seed", "5", "-days", "30", "-core", "8", "-cpe", "16",
		"-out", campaign).CombinedOutput()
	if err != nil {
		t.Fatalf("netfail-sim: %v\n%s", err, out)
	}
	corruptFile(t, filepath.Join(campaign, "lsps.log"), faultinject.Plan{Seed: 201, Rate: 0.01})
	corruptFile(t, filepath.Join(campaign, "syslog.log"), faultinject.Plan{Seed: 202, Rate: 0.01})

	// Strict: the corrupted LSP capture aborts the analysis.
	var stdout, stderr bytes.Buffer
	strict := exec.Command(filepath.Join(bin, "netfail-analyze"), "-data", campaign, "-table", "4")
	strict.Stdout, strict.Stderr = &stdout, &stderr
	err = strict.Run()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("strict analyze on corrupted campaign: err=%v, want exit 1\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "line ") {
		t.Errorf("strict error is not line-accurate:\n%s", stderr.String())
	}

	// Lenient: salvages, reports, exits 3.
	stdout.Reset()
	stderr.Reset()
	lenient := exec.Command(filepath.Join(bin, "netfail-analyze"), "-data", campaign, "-table", "4", "-lenient")
	lenient.Stdout, lenient.Stderr = &stdout, &stderr
	err = lenient.Run()
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 3 {
		t.Fatalf("lenient analyze: err=%v, want exit 3\n%s", err, stderr.String())
	}
	for _, want := range []string{"salvage lsps.log", "salvage syslog.log", "skipped"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("lenient stderr missing %q:\n%s", want, stderr.String())
		}
	}
	if !strings.Contains(stdout.String(), "Failure Count") {
		t.Errorf("lenient analysis produced no table:\n%s", stdout.String())
	}
}
