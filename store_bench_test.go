package netfail

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netfail/internal/store"
	"netfail/internal/topo"
)

// Store benchmarks over the month-long seed campaign. The pair
// recorded in BENCH_<PR>.json — BenchmarkStoreWindowQueryWarm as base,
// BenchmarkAnalyzeCaptureDirMonth as variant — is the store's reason
// to exist: answering a one-day, one-link window question from the
// warm store must be orders of magnitude (>=100x, per the acceptance
// bar) cheaper than re-running the batch pipeline to recompute it.

// benchCapture lazily spills the month campaign once and analyzes it
// once with a store attached; every store benchmark shares the result.
var benchCapture struct {
	once     sync.Once
	campDir  string
	storeDir string
	link     string
	err      error
}

func benchCaptureSetup(b *testing.B) (campDir, storeDir, link string) {
	b.Helper()
	benchCapture.once.Do(func() {
		ctx := context.Background()
		dir, err := os.MkdirTemp("", "netfail-store-bench-")
		if err != nil {
			benchCapture.err = err
			return
		}
		benchCapture.campDir = filepath.Join(dir, "campaign")
		benchCapture.storeDir = filepath.Join(dir, "store")
		if _, err := SimulateToCapture(ctx, benchMonthConfig(1), FabricSpec{}, benchCapture.campDir); err != nil {
			benchCapture.err = err
			return
		}
		if _, _, err := AnalyzeCaptureDir(ctx, benchCapture.campDir, false,
			WithStoreDir(benchCapture.storeDir)); err != nil {
			benchCapture.err = err
			return
		}
		s, err := store.Open(benchCapture.storeDir)
		if err != nil {
			benchCapture.err = err
			return
		}
		fails, err := s.Failures(ctx, store.WithLimit(1))
		if err == nil && len(fails) == 0 {
			err = fmt.Errorf("benchmark campaign produced no failures")
		}
		if err != nil {
			benchCapture.err = err
			return
		}
		benchCapture.link = string(fails[0].Link)
	})
	if benchCapture.err != nil {
		b.Fatal(benchCapture.err)
	}
	return benchCapture.campDir, benchCapture.storeDir, benchCapture.link
}

// BenchmarkStoreBuild measures writing the store from a finished
// study — the one-time cost a run pays for every later query being a
// segment seek instead of a pipeline re-run.
func BenchmarkStoreBuild(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	st, err := Run(ctx, benchMonthConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeStudyStore(ctx, filepath.Join(b.TempDir(), "store"), st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreOpen measures the cold open: manifest, sparse
// indexes, and postings load eagerly; segments stay on disk.
func BenchmarkStoreOpen(b *testing.B) {
	b.ReportAllocs()
	_, storeDir, _ := benchCaptureSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Open(storeDir); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWindowQueryWarm is the acceptance-bar query: one
// link, one day, failures plus transitions, against an already-open
// store.
func BenchmarkStoreWindowQueryWarm(b *testing.B) {
	b.ReportAllocs()
	_, storeDir, link := benchCaptureSetup(b)
	ctx := context.Background()
	s, err := store.Open(storeDir)
	if err != nil {
		b.Fatal(err)
	}
	from := time.Date(2011, 1, 15, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 0, 1)
	opts := []store.Option{store.WithLink(topo.LinkID(link)), store.WithWindow(from, to)}
	// Warm pass: touch the segments once so the measured region sees
	// steady state (page cache, grown decode buffers).
	if _, err := s.Failures(ctx, opts...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Failures(ctx, opts...); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Transitions(ctx, opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeCaptureDirMonth is the window query's alternative
// universe: recomputing the same answer by re-running the batch
// pipeline over the capture directory.
func BenchmarkAnalyzeCaptureDirMonth(b *testing.B) {
	b.ReportAllocs()
	campDir, _, _ := benchCaptureSetup(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, err := AnalyzeCaptureDir(ctx, campDir, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(st.Analysis.SyslogFailures) == 0 {
			b.Fatal("empty analysis")
		}
	}
}
