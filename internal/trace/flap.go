package trace

import (
	"sort"
	"time"

	"netfail/internal/topo"
)

// DefaultFlapGap is the paper's flapping rule: two or more consecutive
// failures on the same link separated by less than ten minutes form a
// flapping episode (§4.1).
const DefaultFlapGap = 10 * time.Minute

// Episode is one flapping episode: a maximal run of failures on one
// link with inter-failure gaps below the threshold.
type Episode struct {
	Link     topo.LinkID
	Failures []Failure
}

// Start returns the episode's first failure start.
func (e Episode) Start() time.Time { return e.Failures[0].Start }

// End returns the episode's last failure end.
func (e Episode) End() time.Time { return e.Failures[len(e.Failures)-1].End }

// IsFlap reports whether the episode contains at least two failures.
func (e Episode) IsFlap() bool { return len(e.Failures) >= 2 }

// Episodes groups failures (any link mix, any order) into episodes
// using the given maximum gap. Every failure lands in exactly one
// episode; singleton episodes are non-flapping.
func Episodes(failures []Failure, gap time.Duration) []Episode {
	byLink := make(map[topo.LinkID][]Failure)
	for _, f := range failures {
		byLink[f.Link] = append(byLink[f.Link], f)
	}
	links := make([]topo.LinkID, 0, len(byLink))
	for link := range byLink {
		links = append(links, link)
	}
	sortLinkIDs(links)

	var episodes []Episode
	for _, link := range links {
		fs := byLink[link]
		sort.Slice(fs, func(i, j int) bool { return fs[i].Start.Before(fs[j].Start) })
		cur := Episode{Link: link, Failures: []Failure{fs[0]}}
		for _, f := range fs[1:] {
			prevEnd := cur.Failures[len(cur.Failures)-1].End
			if f.Start.Sub(prevEnd) < gap {
				cur.Failures = append(cur.Failures, f)
			} else {
				episodes = append(episodes, cur)
				cur = Episode{Link: link, Failures: []Failure{f}}
			}
		}
		episodes = append(episodes, cur)
	}
	return episodes
}

// FlapIndex answers "was this link flapping at time t" queries, which
// the matching analysis uses to attribute unmatched transitions to
// flap periods (§4.1).
type FlapIndex struct {
	spans map[topo.LinkID][]Interval
}

// NewFlapIndex builds the index from failures using the given gap.
// A flap span covers the whole episode, padded by the gap on both
// sides so transitions just outside the episode's failures still
// count as flap-time.
func NewFlapIndex(failures []Failure, gap time.Duration) *FlapIndex {
	idx := &FlapIndex{spans: make(map[topo.LinkID][]Interval)}
	for _, e := range Episodes(failures, gap) {
		if !e.IsFlap() {
			continue
		}
		idx.spans[e.Link] = append(idx.spans[e.Link], Interval{
			Start: e.Start().Add(-gap),
			End:   e.End().Add(gap),
		})
	}
	for _, spans := range idx.spans {
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	}
	return idx
}

// InFlap reports whether the link was inside a flapping episode at t.
func (idx *FlapIndex) InFlap(link topo.LinkID, t time.Time) bool {
	spans := idx.spans[link]
	i := sort.Search(len(spans), func(i int) bool { return spans[i].End.After(t) })
	return i < len(spans) && spans[i].Contains(t)
}

// FlapLinkCount returns the number of links with at least one
// flapping episode.
func (idx *FlapIndex) FlapLinkCount() int { return len(idx.spans) }
