package trace

import (
	"fmt"
	"testing"
	"time"

	"netfail/internal/topo"
)

// TestReconstructAllocBudget pins the reconstruction state machine to
// its amortized allocation rate: on a 64-link, 3200-failure input the
// only allocations are the flat grouping buffer with its index slices,
// the per-group sort wrappers, and the growth of the result slices —
// ~0.07 per failure. A per-transition allocation sneaking into
// reconstructLinkInto (the //netfail:hotpath inner loop) raises the
// rate past one and fails the pin by an order of magnitude.
func TestReconstructAllocBudget(t *testing.T) {
	ts := allocBudgetTransitions()
	failures := len(ts) / 2
	avg := testing.AllocsPerRun(5, func() { Reconstruct(ts) })
	perFailure := avg / float64(failures)
	if perFailure > 0.15 {
		t.Errorf("Reconstruct allocates %.2f times per failure (%.0f for %d failures), budget is 0.15",
			perFailure, avg, failures)
	}
}

func allocBudgetTransitions() []Transition {
	out := make([]Transition, 0, 6400)
	base := time.Unix(0, 0)
	for link := 0; link < 64; link++ {
		id := topo.LinkID(fmt.Sprintf("r%03d|r%03d", link, link+1))
		for i := 0; i < 50; i++ {
			at := base.Add(time.Duration(link*100000+i*60) * time.Second)
			out = append(out, Transition{Link: id, Dir: Down, Time: at, Reporter: "a"})
			out = append(out, Transition{Link: id, Dir: Up, Time: at.Add(30 * time.Second), Reporter: "a"})
		}
	}
	return out
}
