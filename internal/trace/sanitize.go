package trace

import "time"

// LongFailureThreshold is the duration above which the paper manually
// verifies syslog failures against trouble tickets (§4.2): failures
// longer than 24 hours are frequently artifacts of lost messages.
const LongFailureThreshold = 24 * time.Hour

// SanitizeReport accounts for what sanitization removed.
type SanitizeReport struct {
	// Kept is the surviving failure list.
	Kept []Failure
	// RemovedOffline counts failures dropped for overlapping a
	// listener-offline window.
	RemovedOffline int
	// LongChecked counts failures exceeding the long-failure
	// threshold that were submitted for verification.
	LongChecked int
	// LongRemoved counts long failures rejected by verification,
	// with LongRemovedTime their total duration (the paper removes
	// ~6,000 hours of spurious downtime this way).
	LongRemoved     int
	LongRemovedTime time.Duration
}

// Sanitize applies the paper's two cleaning steps to a failure list:
// remove failures that span listener-offline windows (those periods
// cannot be compared), and verify failures longer than the threshold
// with the verify callback — typically a trouble-ticket lookup —
// dropping the ones it rejects. A nil verify keeps all long failures.
func Sanitize(failures []Failure, offline []Interval, threshold time.Duration, verify func(Failure) bool) SanitizeReport {
	var rep SanitizeReport
	for _, f := range failures {
		overlapsOffline := false
		for _, w := range offline {
			if f.Overlaps(w.Start, w.End) {
				overlapsOffline = true
				break
			}
		}
		if overlapsOffline {
			rep.RemovedOffline++
			continue
		}
		if threshold > 0 && f.Duration() > threshold {
			rep.LongChecked++
			if verify != nil && !verify(f) {
				rep.LongRemoved++
				rep.LongRemovedTime += f.Duration()
				continue
			}
		}
		rep.Kept = append(rep.Kept, f)
	}
	return rep
}

// TotalDowntime sums failure durations.
func TotalDowntime(failures []Failure) time.Duration {
	var total time.Duration
	for _, f := range failures {
		total += f.Duration()
	}
	return total
}
