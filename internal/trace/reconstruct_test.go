package trace

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

const linkA = topo.LinkID("a:p1|b:p1")
const linkB = topo.LinkID("a:p2|c:p1")

func at(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func tr(link topo.LinkID, sec int, dir Direction) Transition {
	return Transition{Time: at(sec), Link: link, Dir: dir, Kind: KindISISAdj, Reporter: "a"}
}

func TestReconstructSimpleFailure(t *testing.T) {
	rec := Reconstruct([]Transition{
		tr(linkA, 100, Down),
		tr(linkA, 160, Up),
	})
	if len(rec.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(rec.Failures))
	}
	f := rec.Failures[0]
	if f.Link != linkA || !f.Start.Equal(at(100)) || !f.End.Equal(at(160)) {
		t.Errorf("failure = %+v", f)
	}
	if f.Duration() != 60*time.Second {
		t.Errorf("duration = %v", f.Duration())
	}
	if len(rec.Ambiguities) != 0 || rec.OpenAtEnd != 0 {
		t.Errorf("rec = %+v", rec)
	}
}

func TestReconstructMultipleLinksAndOrder(t *testing.T) {
	// Unsorted input across two links.
	rec := Reconstruct([]Transition{
		tr(linkB, 300, Up),
		tr(linkA, 100, Down),
		tr(linkB, 200, Down),
		tr(linkA, 150, Up),
	})
	if len(rec.Failures) != 2 {
		t.Fatalf("failures = %d, want 2", len(rec.Failures))
	}
	if rec.Failures[0].Link != linkA || rec.Failures[1].Link != linkB {
		t.Errorf("failures not ordered by link: %+v", rec.Failures)
	}
}

func TestReconstructDoubleDown(t *testing.T) {
	// Down, Down, Up: ambiguity recorded; HoldPrevious keeps the
	// failure anchored at the first Down.
	rec := Reconstruct([]Transition{
		tr(linkA, 100, Down),
		tr(linkA, 130, Down),
		tr(linkA, 200, Up),
	})
	if len(rec.Failures) != 1 {
		t.Fatalf("failures = %d, want 1", len(rec.Failures))
	}
	if !rec.Failures[0].Start.Equal(at(100)) {
		t.Errorf("start = %v, want t=100 (spurious second Down must not move it)", rec.Failures[0].Start)
	}
	if len(rec.Ambiguities) != 1 {
		t.Fatalf("ambiguities = %d, want 1", len(rec.Ambiguities))
	}
	amb := rec.Ambiguities[0]
	if amb.Dir != Down || !amb.First.Equal(at(100)) || !amb.Second.Equal(at(130)) {
		t.Errorf("ambiguity = %+v", amb)
	}
}

func TestReconstructDoubleUp(t *testing.T) {
	rec := Reconstruct([]Transition{
		tr(linkA, 100, Down),
		tr(linkA, 150, Up),
		tr(linkA, 180, Up), // spurious
		tr(linkA, 300, Down),
		tr(linkA, 320, Up),
	})
	if len(rec.Failures) != 2 {
		t.Fatalf("failures = %d, want 2", len(rec.Failures))
	}
	if len(rec.Ambiguities) != 1 || rec.Ambiguities[0].Dir != Up {
		t.Errorf("ambiguities = %+v", rec.Ambiguities)
	}
}

func TestReconstructTripleDownChainsAmbiguities(t *testing.T) {
	rec := Reconstruct([]Transition{
		tr(linkA, 100, Down),
		tr(linkA, 110, Down),
		tr(linkA, 120, Down),
		tr(linkA, 200, Up),
	})
	if len(rec.Ambiguities) != 2 {
		t.Fatalf("ambiguities = %d, want 2", len(rec.Ambiguities))
	}
	// Spans must chain: [100,110], [110,120].
	if !rec.Ambiguities[0].Second.Equal(rec.Ambiguities[1].First) {
		t.Errorf("spans do not chain: %+v", rec.Ambiguities)
	}
}

func TestReconstructLeadingUpIgnored(t *testing.T) {
	rec := Reconstruct([]Transition{
		tr(linkA, 50, Up), // link was already up: no failure
		tr(linkA, 100, Down),
		tr(linkA, 150, Up),
	})
	if len(rec.Failures) != 1 || !rec.Failures[0].Start.Equal(at(100)) {
		t.Errorf("failures = %+v", rec.Failures)
	}
	if len(rec.Ambiguities) != 0 {
		t.Errorf("leading Up should not be ambiguous: %+v", rec.Ambiguities)
	}
}

func TestReconstructOpenFailureDropped(t *testing.T) {
	rec := Reconstruct([]Transition{
		tr(linkA, 100, Down),
	})
	if len(rec.Failures) != 0 || rec.OpenAtEnd != 1 {
		t.Errorf("rec = %+v", rec)
	}
}

func TestReconstructEmpty(t *testing.T) {
	rec := Reconstruct(nil)
	if len(rec.Failures) != 0 || len(rec.Ambiguities) != 0 {
		t.Errorf("rec = %+v", rec)
	}
}

func TestDowntimePolicies(t *testing.T) {
	// Double Down with gap [100,160], failure ends at 200:
	//  HoldPrevious: down 100..200            = 100s
	//  AssumeDown:   same (already down)      = 100s
	//  AssumeUp:     down 100..100? no: close at first message of the
	//                ambiguous span (100) and resume at 160 → 40s.
	ts := []Transition{
		tr(linkA, 100, Down),
		tr(linkA, 160, Down),
		tr(linkA, 200, Up),
	}
	if got := Downtime(ts, HoldPrevious)[linkA]; got != 100*time.Second {
		t.Errorf("HoldPrevious = %v, want 100s", got)
	}
	if got := Downtime(ts, AssumeDown)[linkA]; got != 100*time.Second {
		t.Errorf("AssumeDown = %v, want 100s", got)
	}
	if got := Downtime(ts, AssumeUp)[linkA]; got != 40*time.Second {
		t.Errorf("AssumeUp = %v, want 40s", got)
	}
}

func TestDowntimeDoubleUpPolicies(t *testing.T) {
	// Failure 100..150, spurious Up at 400:
	//  HoldPrevious/AssumeUp: 50s
	//  AssumeDown: ambiguous span [150,400] counted down → 50+250 = 300s
	ts := []Transition{
		tr(linkA, 100, Down),
		tr(linkA, 150, Up),
		tr(linkA, 400, Up),
	}
	if got := Downtime(ts, HoldPrevious)[linkA]; got != 50*time.Second {
		t.Errorf("HoldPrevious = %v, want 50s", got)
	}
	if got := Downtime(ts, AssumeUp)[linkA]; got != 50*time.Second {
		t.Errorf("AssumeUp = %v, want 50s", got)
	}
	if got := Downtime(ts, AssumeDown)[linkA]; got != 300*time.Second {
		t.Errorf("AssumeDown = %v, want 300s", got)
	}
}

func TestDowntimeOpenFailureDropped(t *testing.T) {
	// A trailing Down with no Up leaves the failure's extent unknown:
	// it must not be counted (consistent with Reconstruct).
	ts := []Transition{tr(linkA, 900, Down)}
	if got := Downtime(ts, HoldPrevious)[linkA]; got != 0 {
		t.Errorf("downtime = %v, want 0 (open failure dropped)", got)
	}
}

func TestSortTransitionsDeterministic(t *testing.T) {
	ts := []Transition{
		{Time: at(10), Link: linkB, Dir: Up, Reporter: "b"},
		{Time: at(10), Link: linkA, Dir: Up, Reporter: "b"},
		{Time: at(10), Link: linkA, Dir: Down, Reporter: "a"},
		{Time: at(5), Link: linkB, Dir: Down, Reporter: "z"},
		{Time: at(10), Link: linkA, Dir: Up, Reporter: "a"},
	}
	SortTransitions(ts)
	if !ts[0].Time.Equal(at(5)) {
		t.Error("not time-ordered")
	}
	if ts[1].Link != linkA || ts[1].Dir != Down {
		t.Errorf("tie-break wrong: %+v", ts[1])
	}
	if ts[2].Reporter != "a" || ts[3].Reporter != "b" {
		t.Errorf("reporter tie-break wrong: %+v %+v", ts[2], ts[3])
	}
}
