package trace

import (
	"bytes"
	"testing"

	"netfail/internal/faultinject"
)

// FuzzReadTransitions: arbitrary capture bytes must never panic
// either reader; whatever the lenient reader keeps must re-serialize
// and strict-read back identically. The seed corpus is a clean
// capture plus deterministic faultinject corruptions of it — the
// exact degradations the salvage path exists for.
func FuzzReadTransitions(f *testing.F) {
	var clean bytes.Buffer
	if err := WriteTransitions(&clean, sampleTransitions(40)); err != nil {
		f.Fatal(err)
	}
	f.Add(clean.Bytes())
	for seed := int64(1); seed <= 5; seed++ {
		corrupted, _ := faultinject.Corrupt(clean.Bytes(), faultinject.Plan{Seed: seed, Rate: 0.2})
		f.Add(corrupted)
	}
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("1000 down is-reach L r1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, rep, err := ReadTransitionsLenient(bytes.NewReader(data))
		if err != nil {
			return // scanner-level failure (e.g. token too long)
		}
		if rep.Kept != len(ts) {
			t.Fatalf("report kept %d, reader returned %d", rep.Kept, len(ts))
		}
		if rep.Skipped > 0 && (rep.FirstBad == 0 || rep.LastBad < rep.FirstBad) {
			t.Fatalf("inconsistent report %+v", rep)
		}
		// Strict mode must agree with a clean lenient read, and
		// salvaged records must round-trip losslessly.
		var out bytes.Buffer
		if err := WriteTransitions(&out, ts); err != nil {
			t.Fatalf("re-serializing salvaged transitions: %v", err)
		}
		ts2, err := ReadTransitions(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("strict re-read of salvaged transitions: %v", err)
		}
		if len(ts2) != len(ts) {
			t.Fatalf("round trip kept %d of %d transitions", len(ts2), len(ts))
		}
		for i := range ts {
			if !ts2[i].Time.Equal(ts[i].Time) || ts2[i].Dir != ts[i].Dir || ts2[i].Kind != ts[i].Kind ||
				ts2[i].Link != ts[i].Link || ts2[i].Reporter != ts[i].Reporter {
				t.Fatalf("transition %d changed in round trip: %+v vs %+v", i, ts[i], ts2[i])
			}
		}
	})
}
