// Package trace defines the common failure-trace model shared by the
// syslog and IS-IS reconstruction pipelines: state transitions,
// failures (a Down followed by an Up on the same link), ambiguous
// repeated transitions, flap episodes, and the sanitization steps the
// paper applies before comparing the two sources (§3.4, §4.2, §4.3).
package trace

import (
	"fmt"
	"sort"
	"time"

	"netfail/internal/topo"
)

// Direction is the sense of a state transition.
type Direction int

const (
	// Down withdraws a link from service.
	Down Direction = iota
	// Up restores it.
	Up
)

// String returns "down" or "up".
func (d Direction) String() string {
	if d == Up {
		return "up"
	}
	return "down"
}

// Kind records which observation channel produced a transition.
type Kind int

const (
	// KindISISAdj is a syslog IS-IS adjacency-change message.
	KindISISAdj Kind = iota
	// KindPhysical is a syslog %LINK-3-UPDOWN message.
	KindPhysical
	// KindLineProto is a syslog %LINEPROTO-5-UPDOWN message.
	KindLineProto
	// KindISReach is an IS-IS listener transition derived from the
	// Extended IS Reachability TLV.
	KindISReach
	// KindIPReach is an IS-IS listener transition derived from the
	// Extended IP Reachability TLV.
	KindIPReach
	// KindSNMP is a transition inferred from periodic ifOperStatus
	// polling.
	KindSNMP
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindISISAdj:
		return "isis-adj"
	case KindPhysical:
		return "physical"
	case KindLineProto:
		return "lineproto"
	case KindISReach:
		return "is-reach"
	case KindIPReach:
		return "ip-reach"
	case KindSNMP:
		return "snmp"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{KindISISAdj, KindPhysical, KindLineProto, KindISReach, KindIPReach, KindSNMP} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// Transition is one observed link state change, already resolved onto
// the common link namespace.
type Transition struct {
	Time time.Time
	Link topo.LinkID
	Dir  Direction
	Kind Kind
	// Reporter is the router that observed the transition: the
	// syslog sender, or the LSP originator for listener transitions.
	// Table 3 counts how many of a link's two routers reported.
	Reporter string
}

// Failure is one reconstructed outage: a Down at Start terminated by
// an Up at End on the same link.
type Failure struct {
	Link  topo.LinkID
	Start time.Time
	End   time.Time
}

// Duration is the failure length.
func (f Failure) Duration() time.Duration { return f.End.Sub(f.Start) }

// Overlaps reports whether two time intervals intersect.
func (f Failure) Overlaps(start, end time.Time) bool {
	return f.Start.Before(end) && start.Before(f.End)
}

// Interval is a closed-open time span, used for listener-offline
// windows and isolation events.
type Interval struct {
	Start, End time.Time
}

// Contains reports whether t falls inside the interval.
func (iv Interval) Contains(t time.Time) bool {
	return !t.Before(iv.Start) && t.Before(iv.End)
}

// Duration is the interval length.
func (iv Interval) Duration() time.Duration { return iv.End.Sub(iv.Start) }

// Ambiguity records a nonsensical repeated transition: a Down
// preceded by a Down, or an Up preceded by an Up, with no intervening
// opposite transition (§4.3). The span between First and Second is
// the ambiguous period.
type Ambiguity struct {
	Link   topo.LinkID
	Dir    Direction
	First  time.Time
	Second time.Time
}

// Span returns the ambiguous period as an interval.
func (a Ambiguity) Span() Interval { return Interval{Start: a.First, End: a.Second} }

// SortTransitions orders transitions by time, then link, then
// direction (Down first), then reporter, for deterministic pipelines.
func SortTransitions(ts []Transition) {
	sort.Slice(ts, func(i, j int) bool {
		if !ts[i].Time.Equal(ts[j].Time) {
			return ts[i].Time.Before(ts[j].Time)
		}
		if ts[i].Link != ts[j].Link {
			return ts[i].Link < ts[j].Link
		}
		if ts[i].Dir != ts[j].Dir {
			return ts[i].Dir == Down
		}
		return ts[i].Reporter < ts[j].Reporter
	})
}

// ByLink groups transitions per link, preserving time order within
// each group (input need not be sorted). The per-group sort is stable
// so equal-time transitions keep their input order — a requirement for
// the parallel pipeline, whose shard merges must be byte-identical to
// the sequential path.
func ByLink(ts []Transition) map[topo.LinkID][]Transition {
	counts := make(map[topo.LinkID]int)
	for _, t := range ts {
		counts[t.Link]++
	}
	grouped := make(map[topo.LinkID][]Transition, len(counts))
	for _, t := range ts {
		if grouped[t.Link] == nil {
			grouped[t.Link] = make([]Transition, 0, counts[t.Link])
		}
		grouped[t.Link] = append(grouped[t.Link], t)
	}
	for _, g := range grouped {
		sort.SliceStable(g, func(i, j int) bool { return g[i].Time.Before(g[j].Time) })
	}
	return grouped
}
