package trace_test

import (
	"fmt"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// ExampleReconstruct turns a transition stream into failure events,
// treating the repeated Down as a spurious retransmission per the
// paper's recommendation.
func ExampleReconstruct() {
	link := topo.LinkID("cpe-001:Gi0|core-a:Te0")
	at := func(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }
	rec := trace.Reconstruct([]trace.Transition{
		{Time: at(100), Link: link, Dir: trace.Down},
		{Time: at(130), Link: link, Dir: trace.Down}, // repeated: ambiguous
		{Time: at(160), Link: link, Dir: trace.Up},
	})
	for _, f := range rec.Failures {
		fmt.Printf("failure lasting %v\n", f.Duration())
	}
	fmt.Printf("ambiguities: %d\n", len(rec.Ambiguities))
	// Output:
	// failure lasting 1m0s
	// ambiguities: 1
}
