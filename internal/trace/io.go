package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"netfail/internal/salvage"
	"netfail/internal/topo"
)

// WriteTransitions serializes transitions one per line:
// "<unix_ms> <down|up> <kind> <link> <reporter>". Link IDs and
// hostnames contain no spaces, so the format splits cleanly.
func WriteTransitions(w io.Writer, ts []Transition) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := fmt.Fprintf(bw, "%d %s %s %s %s\n",
			t.Time.UnixMilli(), t.Dir, t.Kind, t.Link, t.Reporter); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFailuresJSON serializes a failure list as JSON lines, one
// failure per line — greppable and streamable for large traces.
func WriteFailuresJSON(w io.Writer, fs []Failure) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range fs {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFailuresJSON parses the WriteFailuresJSON format strictly: the
// first undecodable line aborts the read with a line-accurate error.
func ReadFailuresJSON(r io.Reader) ([]Failure, error) {
	out, _, err := readFailuresJSON(r, true)
	return out, err
}

// ReadFailuresJSONLenient parses the WriteFailuresJSON format in
// salvage mode: undecodable lines are skipped and accounted in the
// report instead of aborting the read.
func ReadFailuresJSONLenient(r io.Reader) ([]Failure, *salvage.Report, error) {
	return readFailuresJSON(r, false)
}

func readFailuresJSON(r io.Reader, strict bool) ([]Failure, *salvage.Report, error) {
	var out []Failure
	rep := &salvage.Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var f Failure
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			if strict {
				return nil, nil, fmt.Errorf("trace: failures JSON line %d: %w", lineNo, err)
			}
			rep.Skip(lineNo, "bad JSON")
			continue
		}
		out = append(out, f)
		rep.Kept++
	}
	return out, rep, sc.Err()
}

// ReadTransitions parses the WriteTransitions format strictly: the
// first malformed line aborts the read with a line-accurate error.
func ReadTransitions(r io.Reader) ([]Transition, error) {
	out, _, err := readTransitions(r, true)
	return out, err
}

// ReadTransitionsLenient parses the WriteTransitions format in
// salvage mode: malformed lines are skipped and accounted in the
// report instead of aborting the read.
func ReadTransitionsLenient(r io.Reader) ([]Transition, *salvage.Report, error) {
	return readTransitions(r, false)
}

func readTransitions(r io.Reader, strict bool) ([]Transition, *salvage.Report, error) {
	var out []Transition
	rep := &salvage.Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	skip := func(reason string, detail error) error {
		if strict {
			if detail != nil {
				return fmt.Errorf("trace: line %d: %s: %v", lineNo, reason, detail)
			}
			return fmt.Errorf("trace: line %d: %s", lineNo, reason)
		}
		rep.Skip(lineNo, reason)
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			if err := skip(fmt.Sprintf("want 5 fields, got %d", len(fields)), nil); err != nil {
				return nil, nil, err
			}
			continue
		}
		ms, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			if err := skip("bad timestamp", err); err != nil {
				return nil, nil, err
			}
			continue
		}
		var dir Direction
		switch fields[1] {
		case "down":
			dir = Down
		case "up":
			dir = Up
		default:
			if err := skip(fmt.Sprintf("bad direction %q", fields[1]), nil); err != nil {
				return nil, nil, err
			}
			continue
		}
		kind, err := ParseKind(fields[2])
		if err != nil {
			if err := skip("bad kind", err); err != nil {
				return nil, nil, err
			}
			continue
		}
		out = append(out, Transition{
			Time:     time.UnixMilli(ms).UTC(),
			Dir:      dir,
			Kind:     kind,
			Link:     topo.LinkID(fields[3]),
			Reporter: fields[4],
		})
		rep.Kept++
	}
	return out, rep, sc.Err()
}
