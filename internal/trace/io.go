package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"netfail/internal/topo"
)

// WriteTransitions serializes transitions one per line:
// "<unix_ms> <down|up> <kind> <link> <reporter>". Link IDs and
// hostnames contain no spaces, so the format splits cleanly.
func WriteTransitions(w io.Writer, ts []Transition) error {
	bw := bufio.NewWriter(w)
	for _, t := range ts {
		if _, err := fmt.Fprintf(bw, "%d %s %s %s %s\n",
			t.Time.UnixMilli(), t.Dir, t.Kind, t.Link, t.Reporter); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFailuresJSON serializes a failure list as JSON lines, one
// failure per line — greppable and streamable for large traces.
func WriteFailuresJSON(w io.Writer, fs []Failure) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range fs {
		if err := enc.Encode(f); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFailuresJSON parses the WriteFailuresJSON format.
func ReadFailuresJSON(r io.Reader) ([]Failure, error) {
	var out []Failure
	dec := json.NewDecoder(r)
	for dec.More() {
		var f Failure
		if err := dec.Decode(&f); err != nil {
			return nil, fmt.Errorf("trace: failures JSON: %w", err)
		}
		out = append(out, f)
	}
	return out, nil
}

// ReadTransitions parses the WriteTransitions format.
func ReadTransitions(r io.Reader) ([]Transition, error) {
	var out []Transition
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		ms, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", lineNo, err)
		}
		var dir Direction
		switch fields[1] {
		case "down":
			dir = Down
		case "up":
			dir = Up
		default:
			return nil, fmt.Errorf("trace: line %d: bad direction %q", lineNo, fields[1])
		}
		kind, err := ParseKind(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		out = append(out, Transition{
			Time:     time.UnixMilli(ms).UTC(),
			Dir:      dir,
			Kind:     kind,
			Link:     topo.LinkID(fields[3]),
			Reporter: fields[4],
		})
	}
	return out, sc.Err()
}
