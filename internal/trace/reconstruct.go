package trace

import (
	"context"
	"sort"
	"time"

	"netfail/internal/pool"
	"netfail/internal/topo"
)

// AmbiguityPolicy selects how the period between two repeated
// same-direction transitions is accounted (§4.3). The paper finds
// HoldPrevious — treating the offending message as a spurious
// retransmission and leaving link state unmodified — brings syslog
// downtime closest to IS-IS downtime.
type AmbiguityPolicy int

const (
	// HoldPrevious leaves the link in the state the first message
	// established (the paper's recommendation).
	HoldPrevious AmbiguityPolicy = iota
	// AssumeDown counts every ambiguous period as downtime.
	AssumeDown
	// AssumeUp counts every ambiguous period as uptime.
	AssumeUp
)

// String names the policy.
func (p AmbiguityPolicy) String() string {
	switch p {
	case AssumeDown:
		return "assume-down"
	case AssumeUp:
		return "assume-up"
	default:
		return "hold-previous"
	}
}

// Reconstruction is the output of turning one source's transition
// stream into failure events.
type Reconstruction struct {
	// Failures are the completed Down→Up events, ordered by link
	// then start time.
	Failures []Failure
	// Ambiguities are the repeated-transition records.
	Ambiguities []Ambiguity
	// OpenAtEnd counts failures still open when the observation
	// window closed (dropped from Failures).
	OpenAtEnd int
}

// Reconstruct builds failure events from transitions using the
// paper's recommended HoldPrevious rule for repeated transitions.
func Reconstruct(ts []Transition) Reconstruction {
	return ReconstructPolicy(ts, HoldPrevious)
}

// ReconstructParallel is Reconstruct sharded per link across a bounded
// worker pool. Output is byte-identical to Reconstruct for any worker
// count: links reconstruct independently and the shards merge in
// sorted link order, exactly the order the sequential loop visits.
// Cancellation of ctx stops dispatching link shards; the partial
// result must be discarded by the caller (check ctx.Err()).
func ReconstructParallel(ctx context.Context, ts []Transition, workers int) Reconstruction {
	return ReconstructPolicyParallel(ctx, ts, HoldPrevious, workers)
}

// ReconstructPolicyParallel is ReconstructPolicy with per-link
// sharding; workers <= 1 runs the sequential reference path. Each
// worker slot owns one accumulator reused across all the links it
// runs, and records per-link spans into it; the spans are then copied
// into exact-size result buffers in sorted link order — the same
// concatenation order the sequential loop produces — before the final
// sort, so the output is byte-identical for any worker count.
func ReconstructPolicyParallel(ctx context.Context, ts []Transition, policy AmbiguityPolicy, workers int) Reconstruction {
	if workers <= 1 {
		return ReconstructPolicy(ts, policy)
	}
	links, offsets, flat := groupLinkSeqs(ts)
	type linkSpan struct {
		w          int32 // worker slot that ran the link
		fOff, fLen int32 // the link's slice of the worker's Failures
		aOff, aLen int32 // ... and of its Ambiguities
	}
	spans := make([]linkSpan, len(links))
	accs := make([]Reconstruction, workers)
	_ = pool.ForEachWorkerCtx(ctx, len(links), workers, func(_ context.Context, w, i int) {
		acc := &accs[w]
		fOff, aOff := len(acc.Failures), len(acc.Ambiguities)
		reconstructLinkInto(links[i], flat[offsets[i]:offsets[i+1]], policy, acc)
		spans[i] = linkSpan{
			w:    int32(w),
			fOff: int32(fOff), fLen: int32(len(acc.Failures) - fOff),
			aOff: int32(aOff), aLen: int32(len(acc.Ambiguities) - aOff),
		}
	})
	var rec Reconstruction
	totalF, totalA := 0, 0
	for i := range accs {
		totalF += len(accs[i].Failures)
		totalA += len(accs[i].Ambiguities)
		rec.OpenAtEnd += accs[i].OpenAtEnd
	}
	// Exact-size merge buffers; empty streams stay nil, matching the
	// sequential path byte for byte.
	if totalF > 0 {
		rec.Failures = make([]Failure, 0, totalF)
	}
	if totalA > 0 {
		rec.Ambiguities = make([]Ambiguity, 0, totalA)
	}
	for i := range spans {
		sp := &spans[i]
		acc := &accs[sp.w]
		rec.Failures = append(rec.Failures, acc.Failures[sp.fOff:sp.fOff+sp.fLen]...)
		rec.Ambiguities = append(rec.Ambiguities, acc.Ambiguities[sp.aOff:sp.aOff+sp.aLen]...)
	}
	sortFailures(rec.Failures)
	return rec
}

// groupLinkSeqs is ByLink flattened: it buckets the transitions into
// one contiguous buffer — counting pass, prefix sums, scatter — and
// returns the sorted link list with each link's [offsets[i],
// offsets[i+1]) slice of the buffer, time-sorted stably (equal-time
// transitions keep input order, matching ByLink exactly). One buffer
// and three index slices replace ByLink's map of per-link slices.
func groupLinkSeqs(ts []Transition) ([]topo.LinkID, []int32, []Transition) {
	idx := make(map[topo.LinkID]int32, 64)
	var links []topo.LinkID
	for i := range ts {
		if _, ok := idx[ts[i].Link]; !ok {
			idx[ts[i].Link] = 0
			links = append(links, ts[i].Link)
		}
	}
	sortLinkIDs(links)
	for i, l := range links {
		idx[l] = int32(i)
	}
	offsets := make([]int32, len(links)+1)
	for i := range ts {
		offsets[idx[ts[i].Link]+1]++
	}
	for i := 1; i < len(offsets); i++ {
		offsets[i] += offsets[i-1]
	}
	cursor := make([]int32, len(links))
	copy(cursor, offsets)
	flat := make([]Transition, len(ts))
	for i := range ts {
		li := idx[ts[i].Link]
		flat[cursor[li]] = ts[i]
		cursor[li]++
	}
	for i := 0; i < len(links); i++ {
		g := flat[offsets[i]:offsets[i+1]]
		sort.SliceStable(g, func(a, b int) bool { return g[a].Time.Before(g[b].Time) })
	}
	return links, offsets, flat
}

// ReconstructPolicy builds failure events from transitions, which may
// cover many links and need not be sorted. Links are assumed up at
// the start of the observation window. Repeated same-direction
// transitions are recorded as ambiguities and the span between them
// is attributed per the policy (§4.3):
//
//   - HoldPrevious: the repeated message is spurious; a second Down
//     does not move a failure's start and a second Up creates nothing.
//   - AssumeDown: the span is downtime — a double Up inserts a
//     failure covering it; a double Down extends like HoldPrevious.
//   - AssumeUp: the span is uptime — a double Down restarts the
//     failure at the second message.
func ReconstructPolicy(ts []Transition, policy AmbiguityPolicy) Reconstruction {
	var rec Reconstruction
	links, offsets, flat := groupLinkSeqs(ts)
	for i, link := range links {
		reconstructLinkInto(link, flat[offsets[i]:offsets[i+1]], policy, &rec)
	}
	sortFailures(rec.Failures)
	return rec
}

// reconstructLinkInto runs the state machine over one link's
// (time-sorted) transition sequence, appending to rec. Links are
// independent, which is what makes the pipeline shardable; appending
// into a long-lived accumulator is what lets the per-worker scratch
// amortize across the many links each worker runs.
//
//netfail:hotpath
func reconstructLinkInto(link topo.LinkID, seq []Transition, policy AmbiguityPolicy, rec *Reconstruction) {
	down := false
	var start time.Time
	var lastDir Direction
	var lastTime time.Time
	seen := false
	for _, t := range seq {
		if seen && t.Dir == lastDir {
			rec.Ambiguities = append(rec.Ambiguities, Ambiguity{
				Link: link, Dir: t.Dir, First: lastTime, Second: t.Time,
			})
			switch {
			case policy == AssumeUp && t.Dir == Down && down:
				// The span was uptime: restart the failure here.
				start = t.Time
			case policy == AssumeDown && t.Dir == Up && !down:
				// The span was downtime: record it as a failure.
				rec.Failures = append(rec.Failures, Failure{Link: link, Start: lastTime, End: t.Time})
			}
			lastTime = t.Time
			continue
		}
		switch t.Dir {
		case Down:
			down = true
			start = t.Time
		case Up:
			if down {
				rec.Failures = append(rec.Failures, Failure{Link: link, Start: start, End: t.Time})
				down = false
			} else if !seen {
				// Leading Up with no preceding Down: state was
				// already up; nothing to record.
			}
		}
		lastDir, lastTime, seen = t.Dir, t.Time, true
	}
	if down {
		rec.OpenAtEnd++
	}
}

func sortFailures(fs []Failure) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Link != fs[j].Link {
			return fs[i].Link < fs[j].Link
		}
		return fs[i].Start.Before(fs[j].Start)
	})
}

// Downtime computes total downtime per link over the observation
// window under the given ambiguity policy. Ambiguous periods are
// attributed per the policy; unambiguous failures count fully. A
// failure still open at end is dropped (its true extent is unknown),
// consistent with Reconstruct.
func Downtime(ts []Transition, policy AmbiguityPolicy) map[topo.LinkID]time.Duration {
	result := make(map[topo.LinkID]time.Duration)
	for link, seq := range ByLink(ts) {
		var total time.Duration
		down := false
		var since time.Time
		var lastDir Direction
		var lastTime time.Time
		seen := false
		for _, t := range seq {
			if seen && t.Dir == lastDir {
				// Ambiguous span [lastTime, t.Time].
				switch policy {
				case AssumeDown:
					if !down {
						total += t.Time.Sub(lastTime)
					}
					// If already down, the open failure covers it.
				case AssumeUp:
					if down {
						// Close the accumulated downtime at the
						// start of the ambiguous span and restart
						// at its end.
						total += lastTime.Sub(since)
						since = t.Time
					}
				case HoldPrevious:
					// State unmodified: nothing to adjust.
				}
				lastTime = t.Time
				continue
			}
			switch t.Dir {
			case Down:
				if !down {
					down = true
					since = t.Time
				}
			case Up:
				if down {
					total += t.Time.Sub(since)
					down = false
				}
			}
			lastDir, lastTime, seen = t.Dir, t.Time, true
		}
		if total > 0 {
			result[link] = total
		}
	}
	return result
}

func sortLinkIDs(links []topo.LinkID) {
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
}
