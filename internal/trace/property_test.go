package trace

import (
	"math/rand"
	"testing"
	"time"

	"netfail/internal/topo"
)

// randomTransitions builds an arbitrary (possibly nonsensical)
// transition stream over a few links.
func randomTransitions(rng *rand.Rand, n int) []Transition {
	links := []topo.LinkID{"a:1|b:1", "a:2|c:1", "b:2|c:2"}
	ts := make([]Transition, n)
	for i := range ts {
		ts[i] = Transition{
			Time: time.Unix(int64(rng.Intn(100000)), 0).UTC(),
			Link: links[rng.Intn(len(links))],
			Dir:  Direction(rng.Intn(2)),
			Kind: KindISISAdj,
		}
	}
	return ts
}

// TestReconstructInvariants checks structural invariants over random
// streams: failures are well-formed, per-link non-overlapping, and
// ordered; the ambiguity count plus transition-consumption accounting
// adds up.
func TestReconstructInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		ts := randomTransitions(rng, rng.Intn(200))
		for _, policy := range []AmbiguityPolicy{HoldPrevious, AssumeDown, AssumeUp} {
			rec := ReconstructPolicy(ts, policy)
			lastEnd := make(map[topo.LinkID]time.Time)
			var prev *Failure
			for i := range rec.Failures {
				f := rec.Failures[i]
				if !f.End.After(f.Start) && !f.End.Equal(f.Start) {
					t.Fatalf("trial %d %v: failure ends before it starts: %+v", trial, policy, f)
				}
				if f.Duration() < 0 {
					t.Fatalf("negative duration: %+v", f)
				}
				if end, ok := lastEnd[f.Link]; ok && f.Start.Before(end) {
					t.Fatalf("trial %d %v: overlapping failures on %s", trial, policy, f.Link)
				}
				lastEnd[f.Link] = f.End
				if prev != nil && prev.Link == f.Link && f.Start.Before(prev.Start) {
					t.Fatalf("failures not ordered within link")
				}
				prev = &rec.Failures[i]
			}
			// Every ambiguity span must be non-negative and on a
			// known link.
			for _, amb := range rec.Ambiguities {
				if amb.Second.Before(amb.First) {
					t.Fatalf("ambiguity reversed: %+v", amb)
				}
			}
		}
	}
}

// TestDowntimePolicyOrdering: for any stream, AssumeDown yields at
// least as much downtime as HoldPrevious... per link and in total —
// except it cannot yield less; AssumeUp cannot yield more than
// HoldPrevious.
func TestDowntimePolicyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 300; trial++ {
		ts := randomTransitions(rng, rng.Intn(150))
		sum := func(m map[topo.LinkID]time.Duration) time.Duration {
			var total time.Duration
			for _, d := range m {
				total += d
			}
			return total
		}
		hold := sum(Downtime(ts, HoldPrevious))
		down := sum(Downtime(ts, AssumeDown))
		up := sum(Downtime(ts, AssumeUp))
		if down < hold {
			t.Fatalf("trial %d: AssumeDown (%v) < HoldPrevious (%v)", trial, down, hold)
		}
		if up > hold {
			t.Fatalf("trial %d: AssumeUp (%v) > HoldPrevious (%v)", trial, up, hold)
		}
	}
}

// TestReconstructDowntimeConsistency: on a clean alternating stream
// (no ambiguities), total failure duration equals Downtime under
// every policy.
func TestReconstructDowntimeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		var ts []Transition
		tcur := int64(0)
		link := topo.LinkID("a:1|b:1")
		for i := 0; i < rng.Intn(40); i++ {
			tcur += int64(1 + rng.Intn(1000))
			dir := Down
			if i%2 == 1 {
				dir = Up
			}
			ts = append(ts, Transition{Time: time.Unix(tcur, 0).UTC(), Link: link, Dir: dir})
		}
		rec := Reconstruct(ts)
		if len(rec.Ambiguities) != 0 {
			t.Fatalf("alternating stream produced ambiguities")
		}
		want := TotalDowntime(rec.Failures)
		for _, p := range []AmbiguityPolicy{HoldPrevious, AssumeDown, AssumeUp} {
			got := Downtime(ts, p)[link]
			if got != want {
				t.Fatalf("trial %d policy %v: downtime %v != failures %v", trial, p, got, want)
			}
		}
	}
}

// TestEpisodesPartition: episodes partition the failure set — every
// failure appears in exactly one episode.
func TestEpisodesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		ts := randomTransitions(rng, 100+rng.Intn(100))
		failures := Reconstruct(ts).Failures
		eps := Episodes(failures, 10*time.Minute)
		count := 0
		for _, e := range eps {
			count += len(e.Failures)
			for i := 1; i < len(e.Failures); i++ {
				if e.Failures[i].Link != e.Link {
					t.Fatal("episode mixes links")
				}
				gap := e.Failures[i].Start.Sub(e.Failures[i-1].End)
				if gap >= 10*time.Minute {
					t.Fatalf("episode contains a %v gap", gap)
				}
			}
		}
		if count != len(failures) {
			t.Fatalf("episodes cover %d of %d failures", count, len(failures))
		}
	}
}
