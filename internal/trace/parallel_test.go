package trace

// ReconstructParallel shards the state machine per link and merges in
// sorted-link order; every worker count must reproduce the sequential
// reconstruction exactly, field for field.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

func TestReconstructParallelMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 5, 99} {
		// randomTransitions (property_test.go) deliberately includes
		// the messy shapes the state machine handles: repeated downs,
		// dangling ups, open failures, equal-time entries.
		rng := rand.New(rand.NewSource(seed))
		ts := randomTransitions(rng, 600)
		want := Reconstruct(ts)
		for _, workers := range []int{0, 2, 3, 8, 64} {
			got := ReconstructParallel(context.Background(), ts, workers)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("seed %d workers %d: parallel reconstruction diverges", seed, workers)
			}
		}
	}
}

func TestReconstructParallelEmpty(t *testing.T) {
	want := Reconstruct(nil)
	got := ReconstructParallel(context.Background(), nil, 8)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("empty input: parallel %+v, sequential %+v", got, want)
	}
}
