package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"netfail/internal/faultinject"
	"netfail/internal/topo"
)

func sampleTransitions(n int) []Transition {
	base := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]Transition, 0, n)
	for i := 0; i < n; i++ {
		dir := Down
		if i%2 == 1 {
			dir = Up
		}
		out = append(out, Transition{
			Time:     base.Add(time.Duration(i) * time.Minute),
			Dir:      dir,
			Kind:     KindISReach,
			Link:     topo.LinkID("core-01:Gi0/0/0--core-02:Gi0/0/1"),
			Reporter: "core-01",
		})
	}
	return out
}

func TestReadTransitionsLenientSalvages(t *testing.T) {
	in := strings.Join([]string{
		"1000 down is-reach L r1",
		"garbage line with extra fields here",
		"2000 up is-reach L r1",
		"ZZZZ down is-reach L r1",
		"3000 sideways is-reach L r1",
		"4000 down not-a-kind L r1",
		"5000 down is-reach L r2",
	}, "\n") + "\n"
	got, rep, err := ReadTransitionsLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || rep.Kept != 3 {
		t.Fatalf("kept %d (report %d), want 3", len(got), rep.Kept)
	}
	if rep.Skipped != 4 || rep.FirstBad != 2 || rep.LastBad != 6 {
		t.Errorf("report = %+v", rep)
	}
	for _, reason := range []string{"bad timestamp", "bad kind"} {
		if rep.Reasons[reason] != 1 {
			t.Errorf("reason %q = %d, want 1", reason, rep.Reasons[reason])
		}
	}
	if got[2].Reporter != "r2" {
		t.Errorf("last transition = %+v", got[2])
	}
}

func TestReadTransitionsStrictLineAccurate(t *testing.T) {
	in := "1000 down is-reach L r1\nZZZZ down is-reach L r1\n"
	if _, err := ReadTransitions(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict error = %v, want line 2", err)
	}
}

func TestReadFailuresJSONLenientSalvages(t *testing.T) {
	var buf bytes.Buffer
	fs := []Failure{
		{Link: "L1", Start: time.UnixMilli(1000).UTC(), End: time.UnixMilli(2000).UTC()},
		{Link: "L2", Start: time.UnixMilli(3000).UTC(), End: time.UnixMilli(4000).UTC()},
	}
	if err := WriteFailuresJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	dirty := lines[0] + "{torn-record\n" + lines[1]
	got, rep, err := ReadFailuresJSONLenient(strings.NewReader(dirty))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || rep.Skipped != 1 || rep.FirstBad != 2 {
		t.Fatalf("got %d failures, report %+v", len(got), rep)
	}
	if got[1].Link != "L2" {
		t.Errorf("failures = %+v", got)
	}
}

func TestReadFailuresJSONStrictLineAccurate(t *testing.T) {
	in := "{\"link\":\"L1\"}\n{broken\n"
	if _, err := ReadFailuresJSON(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict error = %v, want line 2", err)
	}
}

func TestReadTransitionsLenientOnInjectedCorruption(t *testing.T) {
	var clean bytes.Buffer
	if err := WriteTransitions(&clean, sampleTransitions(500)); err != nil {
		t.Fatal(err)
	}
	corrupted, faults := faultinject.Corrupt(clean.Bytes(), faultinject.Plan{Seed: 17, Rate: 0.04})
	if len(faults) == 0 {
		t.Fatal("no faults injected")
	}
	got, rep, err := ReadTransitionsLenient(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != len(got) || rep.Skipped == 0 {
		t.Errorf("report %+v for %d transitions", rep, len(got))
	}
	if _, err := ReadTransitions(bytes.NewReader(corrupted)); err == nil {
		t.Error("strict reader accepted a corrupted capture")
	}
}
