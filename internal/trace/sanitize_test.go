package trace

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func TestSanitizeOfflineWindows(t *testing.T) {
	failures := []Failure{
		fl(linkA, 100, 200),
		fl(linkA, 1000, 1100), // overlaps the window
		fl(linkB, 5000, 5010),
	}
	offline := []Interval{{Start: at(1050), End: at(1060)}}
	rep := Sanitize(failures, offline, 0, nil)
	if rep.RemovedOffline != 1 {
		t.Errorf("removed = %d, want 1", rep.RemovedOffline)
	}
	if len(rep.Kept) != 2 {
		t.Errorf("kept = %d, want 2", len(rep.Kept))
	}
}

func TestSanitizeLongFailureVerification(t *testing.T) {
	day := int(24 * time.Hour / time.Second)
	failures := []Failure{
		fl(linkA, 0, 100),         // short: untouched
		fl(linkA, 200, 200+2*day), // long: verified true
		fl(linkB, 0, 3*day),       // long: verified false
	}
	verify := func(f Failure) bool { return f.Link == linkA }
	rep := Sanitize(failures, nil, LongFailureThreshold, verify)
	if rep.LongChecked != 2 {
		t.Errorf("checked = %d, want 2", rep.LongChecked)
	}
	if rep.LongRemoved != 1 {
		t.Errorf("removed = %d, want 1", rep.LongRemoved)
	}
	if rep.LongRemovedTime != 3*24*time.Hour {
		t.Errorf("removed time = %v", rep.LongRemovedTime)
	}
	if len(rep.Kept) != 2 {
		t.Errorf("kept = %d, want 2", len(rep.Kept))
	}
}

func TestSanitizeNilVerifyKeepsLong(t *testing.T) {
	failures := []Failure{fl(linkA, 0, int(48*time.Hour/time.Second))}
	rep := Sanitize(failures, nil, LongFailureThreshold, nil)
	if len(rep.Kept) != 1 || rep.LongChecked != 1 || rep.LongRemoved != 0 {
		t.Errorf("rep = %+v", rep)
	}
}

func TestTotalDowntime(t *testing.T) {
	failures := []Failure{fl(linkA, 0, 10), fl(linkB, 100, 130)}
	if got := TotalDowntime(failures); got != 40*time.Second {
		t.Errorf("downtime = %v, want 40s", got)
	}
}

func TestIntervalContains(t *testing.T) {
	iv := Interval{Start: at(10), End: at(20)}
	if !iv.Contains(at(10)) || !iv.Contains(at(19)) {
		t.Error("closed start / interior membership wrong")
	}
	if iv.Contains(at(20)) || iv.Contains(at(9)) {
		t.Error("open end / exterior membership wrong")
	}
	if iv.Duration() != 10*time.Second {
		t.Errorf("duration = %v", iv.Duration())
	}
}

func TestTransitionsIORoundTrip(t *testing.T) {
	ts := []Transition{
		{Time: at(100), Link: linkA, Dir: Down, Kind: KindISISAdj, Reporter: "a"},
		{Time: at(101), Link: linkA, Dir: Up, Kind: KindISReach, Reporter: "b"},
		{Time: at(102), Link: linkB, Dir: Down, Kind: KindPhysical, Reporter: "c"},
		{Time: at(103), Link: linkB, Dir: Up, Kind: KindIPReach, Reporter: "d"},
		{Time: at(104), Link: linkB, Dir: Down, Kind: KindLineProto, Reporter: "e"},
	}
	var buf bytes.Buffer
	if err := WriteTransitions(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTransitions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ts) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, ts)
	}
}

func TestReadTransitionsErrors(t *testing.T) {
	for _, in := range []string{
		"notanumber down isis-adj l r",
		"100 sideways isis-adj l r",
		"100 down nosuchkind l r",
		"100 down isis-adj l",
	} {
		if _, err := ReadTransitions(bytes.NewBufferString(in + "\n")); err == nil {
			t.Errorf("ReadTransitions(%q) succeeded", in)
		}
	}
}

func TestReadTransitionsSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header comment\n\n100000 down isis-adj a:p1|b:p1 a\n"
	got, err := ReadTransitions(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Link != linkA {
		t.Errorf("got = %+v", got)
	}
}

func TestFailuresJSONRoundTrip(t *testing.T) {
	fs := []Failure{fl(linkA, 0, 10), fl(linkB, 100, 130), fl(linkA, 500, 9999)}
	var buf bytes.Buffer
	if err := WriteFailuresJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFailuresJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fs) {
		t.Errorf("round trip: %+v != %+v", got, fs)
	}
	// One JSON object per line: easy to grep and stream.
	buf.Reset()
	if err := WriteFailuresJSON(&buf, fs); err != nil {
		t.Fatal(err)
	}
	if lines := len(bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))); lines != 3 {
		t.Errorf("lines = %d, want 3", lines)
	}
}

func TestReadFailuresJSONError(t *testing.T) {
	if _, err := ReadFailuresJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Error("garbage accepted")
	}
}
