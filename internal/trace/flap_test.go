package trace

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

func fl(link topo.LinkID, start, end int) Failure {
	return Failure{Link: link, Start: at(start), End: at(end)}
}

func TestEpisodesGrouping(t *testing.T) {
	gap := 100 * time.Second
	failures := []Failure{
		fl(linkA, 0, 10),
		fl(linkA, 50, 60),   // 40s after previous end: same episode
		fl(linkA, 300, 310), // 240s gap: new episode
		fl(linkB, 0, 5),     // different link: own episode
	}
	eps := Episodes(failures, gap)
	if len(eps) != 3 {
		t.Fatalf("episodes = %d, want 3", len(eps))
	}
	if !eps[0].IsFlap() || len(eps[0].Failures) != 2 {
		t.Errorf("episode 0 = %+v", eps[0])
	}
	if eps[1].IsFlap() || eps[2].IsFlap() {
		t.Error("singleton episodes must not be flaps")
	}
}

func TestEpisodesUnsortedInput(t *testing.T) {
	failures := []Failure{
		fl(linkA, 50, 60),
		fl(linkA, 0, 10),
	}
	eps := Episodes(failures, 100*time.Second)
	if len(eps) != 1 || len(eps[0].Failures) != 2 {
		t.Fatalf("episodes = %+v", eps)
	}
	if !eps[0].Start().Equal(at(0)) || !eps[0].End().Equal(at(60)) {
		t.Errorf("episode span = %v..%v", eps[0].Start(), eps[0].End())
	}
}

func TestEpisodesEmpty(t *testing.T) {
	if eps := Episodes(nil, time.Minute); len(eps) != 0 {
		t.Errorf("episodes = %+v", eps)
	}
}

func TestFlapIndex(t *testing.T) {
	gap := 60 * time.Second
	failures := []Failure{
		fl(linkA, 1000, 1010),
		fl(linkA, 1030, 1040), // flap episode on linkA 1000..1040
		fl(linkB, 1000, 1010), // singleton on linkB
	}
	idx := NewFlapIndex(failures, gap)
	if idx.FlapLinkCount() != 1 {
		t.Errorf("flap links = %d, want 1", idx.FlapLinkCount())
	}
	// Inside the episode.
	if !idx.InFlap(linkA, at(1035)) {
		t.Error("t=1035 should be flap-time on linkA")
	}
	// Within the gap padding before/after.
	if !idx.InFlap(linkA, at(950)) || !idx.InFlap(linkA, at(1090)) {
		t.Error("gap padding not applied")
	}
	// Outside.
	if idx.InFlap(linkA, at(2000)) || idx.InFlap(linkA, at(100)) {
		t.Error("far times must not be flap-time")
	}
	// Non-flapping link.
	if idx.InFlap(linkB, at(1005)) {
		t.Error("singleton failure must not create flap-time")
	}
}

func TestFlapIndexMultipleSpans(t *testing.T) {
	gap := 10 * time.Second
	failures := []Failure{
		fl(linkA, 100, 101), fl(linkA, 105, 106), // episode 1
		fl(linkA, 500, 501), fl(linkA, 505, 506), // episode 2
	}
	idx := NewFlapIndex(failures, gap)
	if !idx.InFlap(linkA, at(100)) || !idx.InFlap(linkA, at(505)) {
		t.Error("both episodes should be indexed")
	}
	if idx.InFlap(linkA, at(300)) {
		t.Error("between episodes is not flap-time")
	}
}
