// Package clock is the repository's single sanctioned source of wall
// time. Every other package either receives a Clock or takes
// timestamps as explicit parameters, so that simulation and analysis
// paths are reproducible from a seed; the detclock analyzer
// (internal/lint/detclock) enforces that time.Now, time.Since, and
// time.Until appear nowhere else in the module.
package clock

import "time"

// A Clock supplies the current time. Production code injects System;
// tests and simulations inject a Fake they advance explicitly.
type Clock interface {
	Now() time.Time
}

// System reads the operating-system wall clock in UTC. It is the only
// place in the module allowed to call time.Now, and belongs only at
// composition roots (cmd/, examples/) feeding live capture paths.
func System() Clock { return systemClock{} }

type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now().UTC() }

// A Fake is a manually advanced clock for deterministic tests and
// simulations.
type Fake struct {
	t time.Time
}

// NewFake returns a Fake frozen at start.
func NewFake(start time.Time) *Fake { return &Fake{t: start} }

// Now returns the fake's current instant.
func (f *Fake) Now() time.Time { return f.t }

// Advance moves the fake forward by d and returns the new instant.
func (f *Fake) Advance(d time.Duration) time.Time {
	f.t = f.t.Add(d)
	return f.t
}

// Set jumps the fake to t.
func (f *Fake) Set(t time.Time) { f.t = t }
