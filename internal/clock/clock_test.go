package clock_test

import (
	"testing"
	"time"

	"netfail/internal/clock"
)

func TestFakeAdvances(t *testing.T) {
	start := time.Date(2003, 8, 1, 0, 0, 0, 0, time.UTC)
	f := clock.NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", f.Now(), start)
	}
	if got := f.Advance(90 * time.Second); !got.Equal(start.Add(90 * time.Second)) {
		t.Fatalf("Advance = %v, want %v", got, start.Add(90*time.Second))
	}
	if !f.Now().Equal(start.Add(90 * time.Second)) {
		t.Fatalf("Now after Advance = %v", f.Now())
	}
	jump := time.Date(2004, 9, 1, 0, 0, 0, 0, time.UTC)
	f.Set(jump)
	if !f.Now().Equal(jump) {
		t.Fatalf("Now after Set = %v, want %v", f.Now(), jump)
	}
}

func TestSystemIsUTC(t *testing.T) {
	now := clock.System().Now()
	if now.Location() != time.UTC {
		t.Fatalf("System().Now() location = %v, want UTC", now.Location())
	}
	if now.IsZero() {
		t.Fatal("System().Now() returned the zero time")
	}
}
