// Package capture implements the sharded, spill-to-disk campaign
// capture format: one shard per topology domain, each holding a
// length-prefixed, CRC-framed segment per observation channel (syslog
// lines, LSP wire bytes) plus a sparse time index, tied together by a
// campaign-level manifest.
//
// The in-RAM capture slices (netsim.Campaign.Syslog / .LSPLog) cap
// campaign size long before the zero-allocation analysis hot paths
// do: a 13-month CENIC campaign fits comfortably, a 100x data-center
// fabric does not. This format converts that ceiling from RAM-bound
// to disk-bound: the simulator streams events through a bounded
// writer as the scheduler produces them, and the analysis streams
// them back shard by shard, so peak residency is one shard's working
// set, never the campaign.
//
// On-disk layout of a capture directory:
//
//	capture/
//	  manifest.json          shard list, per-shard counts and spans
//	  shard-0000/
//	    syslog.seg           framed rendered syslog lines
//	    syslog.idx           sparse time index over syslog.seg
//	    lsps.seg             framed LSP wire bytes
//	    lsps.idx             sparse time index over lsps.seg
//	  shard-0001/ ...
//
// A segment is the magic "NFSEG1\n" followed by frames:
//
//	sync[2]=0xA5,0x5A | len u32le | crc u32le | payload
//
// where payload is a millisecond unix timestamp (i64le) followed by
// the record bytes, and crc is CRC-32 (IEEE) over the payload. The
// framing deliberately mirrors the checkpoint WAL: the sync marker
// gives the lenient reader a resynchronization point after torn or
// bit-rotted regions, and the length prefix is bounded by maxFrameLen
// so a corrupted length cannot trigger a giant allocation.
//
// Records are ordered by timestamp within each shard (the spill
// writer's contract); readers stay zero-copy — Next returns a view
// into a reused buffer — because every consumer (the syslog
// Tokenizer, the LSP decoder) copies or interns what it retains.
package capture

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	// segHeader is the segment file magic.
	segHeader = "NFSEG1\n"
	// idxHeader is the index file magic.
	idxHeader = "NFIDX1\n"
	// FormatName identifies the capture format in the manifest.
	FormatName = "NFCAP1"

	sync0, sync1 = 0xA5, 0x5A
	// frameOverhead is sync + len + crc.
	frameOverhead = 2 + 4 + 4
	// tsLen is the payload's leading timestamp.
	tsLen = 8
	// maxFrameLen bounds a frame's payload so a corrupted length
	// field cannot make a reader allocate gigabytes.
	maxFrameLen = 64 << 20

	// indexEvery is the sparse-index stride: one entry per this many
	// records. 512 keeps the index ~0.004% of segment size while
	// bounding a time-seek's overshoot to a few hundred records.
	indexEvery = 512
	// idxEntryLen is ts i64le + offset u64le + record u32le.
	idxEntryLen = 8 + 8 + 4

	// SyslogSegment and LSPSegment are the per-shard segment file
	// names; their indexes swap .seg for .idx.
	SyslogSegment = "syslog.seg"
	LSPSegment    = "lsps.seg"
	SyslogIndex   = "syslog.idx"
	LSPIndex      = "lsps.idx"
)

// appendFrame appends one record's frame to dst, growing it as
// needed — the append-style encoder every segment write runs through
// one reused buffer, so a warm writer allocates nothing per record.
//
//netfail:hotpath
func appendFrame(dst []byte, tsMs int64, rec []byte) []byte {
	payloadLen := tsLen + len(rec)
	start := len(dst)
	if need := start + frameOverhead + payloadLen; cap(dst) < need {
		grown := make([]byte, start, need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+frameOverhead+payloadLen]
	dst[start] = sync0
	dst[start+1] = sync1
	binary.LittleEndian.PutUint32(dst[start+2:], uint32(payloadLen))
	payload := dst[start+frameOverhead:]
	binary.LittleEndian.PutUint64(payload, uint64(tsMs))
	copy(payload[tsLen:], rec)
	binary.LittleEndian.PutUint32(dst[start+6:], crc32.ChecksumIEEE(payload))
	return dst
}

// segmentWriter streams frames to one segment file through a bounded
// buffer, maintaining the sparse index alongside.
type segmentWriter struct {
	f   *os.File
	w   *bufio.Writer
	idx *os.File
	iw  *bufio.Writer

	frame    []byte // reused frame-encode buffer
	idxEntry [idxEntryLen]byte

	off     int64 // next frame's byte offset
	records int64
	firstMs int64
	lastMs  int64
}

func newSegmentWriter(dir, seg, idx string) (*segmentWriter, error) {
	f, err := os.Create(filepath.Join(dir, seg))
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	xf, err := os.Create(filepath.Join(dir, idx))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("capture: %w", err)
	}
	s := &segmentWriter{f: f, w: bufio.NewWriterSize(f, 256<<10), idx: xf, iw: bufio.NewWriterSize(xf, 16<<10)}
	if _, err := s.w.WriteString(segHeader); err != nil {
		s.close()
		return nil, fmt.Errorf("capture: %w", err)
	}
	s.off = int64(len(segHeader))
	if _, err := s.iw.WriteString(idxHeader); err != nil {
		s.close()
		return nil, fmt.Errorf("capture: %w", err)
	}
	return s, nil
}

// append frames one record. Records must arrive in non-decreasing
// timestamp order; the spill sink guarantees that.
//
//netfail:hotpath
func (s *segmentWriter) append(tsMs int64, rec []byte) error {
	if s.records%indexEvery == 0 {
		binary.LittleEndian.PutUint64(s.idxEntry[0:], uint64(tsMs))
		binary.LittleEndian.PutUint64(s.idxEntry[8:], uint64(s.off))
		binary.LittleEndian.PutUint32(s.idxEntry[16:], uint32(s.records))
		if _, err := s.iw.Write(s.idxEntry[:]); err != nil {
			return fmt.Errorf("capture: index: %w", err)
		}
	}
	s.frame = appendFrame(s.frame[:0], tsMs, rec)
	if _, err := s.w.Write(s.frame); err != nil {
		return fmt.Errorf("capture: segment: %w", err)
	}
	s.off += int64(len(s.frame))
	if s.records == 0 {
		s.firstMs = tsMs
	}
	s.lastMs = tsMs
	s.records++
	return nil
}

// finish flushes and syncs both files.
func (s *segmentWriter) finish() error {
	var err error
	flush := func(w *bufio.Writer, f *os.File) {
		if ferr := w.Flush(); err == nil {
			err = ferr
		}
		if ferr := f.Sync(); err == nil {
			err = ferr
		}
	}
	flush(s.w, s.f)
	flush(s.iw, s.idx)
	if cerr := s.close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("capture: finishing segment: %w", err)
	}
	return nil
}

func (s *segmentWriter) close() error {
	err := s.f.Close()
	if cerr := s.idx.Close(); err == nil {
		err = cerr
	}
	return err
}

// SegmentFileWriter streams frames to one standalone segment file,
// maintaining the sparse time index alongside — the same on-disk
// format as a capture shard's segments, exported so other subsystems
// (the failure store) can write CRC-framed, time-indexed record
// streams without re-implementing the framing. It is not safe for
// concurrent use.
type SegmentFileWriter struct {
	s *segmentWriter
}

// CreateSegmentFile creates (truncating) the segment file seg and its
// companion sparse index idx inside dir.
func CreateSegmentFile(dir, seg, idx string) (*SegmentFileWriter, error) {
	s, err := newSegmentWriter(dir, seg, idx)
	if err != nil {
		return nil, err
	}
	return &SegmentFileWriter{s: s}, nil
}

// Append frames one record. Records must arrive in non-decreasing
// timestamp order — the index contract every segment reader relies on.
func (w *SegmentFileWriter) Append(tsMs int64, rec []byte) error {
	return w.s.append(tsMs, rec)
}

// Records returns how many records have been appended.
func (w *SegmentFileWriter) Records() int64 { return w.s.records }

// Span returns the first and last appended timestamps (zero when the
// segment is empty).
func (w *SegmentFileWriter) Span() (firstMs, lastMs int64) {
	return w.s.firstMs, w.s.lastMs
}

// Finish flushes and syncs the segment and index files.
func (w *SegmentFileWriter) Finish() error { return w.s.finish() }

// ShardWriter streams one shard's two segments. It is not safe for
// concurrent use; the sharded simulator gives each domain its own.
type ShardWriter struct {
	info   *Shard
	syslog *segmentWriter
	lsps   *segmentWriter
}

// AppendSyslog frames one rendered syslog line. Lines must arrive in
// non-decreasing timestamp order.
func (sw *ShardWriter) AppendSyslog(tsMs int64, line []byte) error {
	return sw.syslog.append(tsMs, line)
}

// AppendLSP frames one LSP's wire bytes. Records must arrive in
// non-decreasing timestamp order.
func (sw *ShardWriter) AppendLSP(tsMs int64, wire []byte) error {
	return sw.lsps.append(tsMs, wire)
}

// Close flushes and syncs the shard's files and records its counts
// in the campaign manifest (written by the Writer's Finish).
func (sw *ShardWriter) Close() error {
	err := sw.syslog.finish()
	if lerr := sw.lsps.finish(); err == nil {
		err = lerr
	}
	sw.info.SyslogRecords = sw.syslog.records
	sw.info.LSPRecords = sw.lsps.records
	sw.info.FirstMs = minNonZeroSpan(sw.syslog.firstMs, sw.lsps.firstMs, sw.syslog.records, sw.lsps.records, true)
	sw.info.LastMs = minNonZeroSpan(sw.syslog.lastMs, sw.lsps.lastMs, sw.syslog.records, sw.lsps.records, false)
	return err
}

// minNonZeroSpan folds the two segments' first/last timestamps,
// ignoring empty segments.
func minNonZeroSpan(a, b, na, nb int64, first bool) int64 {
	switch {
	case na == 0 && nb == 0:
		return 0
	case na == 0:
		return b
	case nb == 0:
		return a
	case first && a < b, !first && a > b:
		return a
	}
	return b
}

// Writer manages a campaign capture directory: it hands out one
// ShardWriter per topology domain and writes the manifest once every
// shard is closed. Shard must be called in the campaign's fixed
// domain order — that order is the manifest order, and the analysis
// consumes shards in manifest order so results never depend on which
// domain's simulation finished first.
type Writer struct {
	dir    string
	shards []*Shard
	done   bool
}

// NewWriter creates (or truncates into) a capture directory.
func NewWriter(dir string) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return &Writer{dir: dir}, nil
}

// Shard opens the next shard. The name is the shard's directory;
// domain labels the topology domain it captures.
func (w *Writer) Shard(domain string, routers, links int) (*ShardWriter, error) {
	name := fmt.Sprintf("shard-%04d", len(w.shards))
	dir := filepath.Join(w.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	info := &Shard{Name: name, Domain: domain, Routers: routers, Links: links}
	sy, err := newSegmentWriter(dir, SyslogSegment, SyslogIndex)
	if err != nil {
		return nil, err
	}
	ls, err := newSegmentWriter(dir, LSPSegment, LSPIndex)
	if err != nil {
		sy.close()
		return nil, err
	}
	w.shards = append(w.shards, info)
	return &ShardWriter{info: info, syslog: sy, lsps: ls}, nil
}

// Finish writes the campaign manifest atomically (temp file + rename,
// so a crash mid-write never leaves a plausible half manifest). Every
// ShardWriter must be closed first.
func (w *Writer) Finish() error {
	if w.done {
		return fmt.Errorf("capture: Finish called twice")
	}
	w.done = true
	m := &Manifest{Format: FormatName}
	for _, s := range w.shards {
		m.Shards = append(m.Shards, *s)
	}
	return writeManifestFile(w.dir, m)
}
