package capture

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// writeShard builds one healthy shard with n syslog and m LSP records
// and returns the capture dir.
func writeShard(t testing.TB, n, m int) string {
	t.Helper()
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := w.Shard("cenic", 235, 299)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := sw.AppendSyslog(int64(1000+i), []byte(fmt.Sprintf("<189>Oct 20 00:00:01 host-%d 7: line %d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < m; i++ {
		if err := sw.AppendLSP(int64(2000+i), bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// readAll drains a segment, returning timestamps and copied records.
func readAll(t testing.TB, sr *SegmentReader) (ts []int64, recs [][]byte) {
	t.Helper()
	for {
		ms, rec, err := sr.Next()
		if err == io.EOF {
			return ts, recs
		}
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, ms)
		recs = append(recs, append([]byte(nil), rec...))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := writeShard(t, 1300, 77)

	m, err := ReadManifestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 1 {
		t.Fatalf("got %d shards, want 1", len(m.Shards))
	}
	s := m.Shards[0]
	if s.SyslogRecords != 1300 || s.LSPRecords != 77 {
		t.Errorf("manifest counts = %d/%d, want 1300/77", s.SyslogRecords, s.LSPRecords)
	}
	if s.FirstMs != 1000 || s.LastMs != 2299 {
		t.Errorf("manifest span = [%d, %d], want [1000, 2299]", s.FirstMs, s.LastMs)
	}
	if s.Domain != "cenic" || s.Routers != 235 || s.Links != 299 {
		t.Errorf("shard meta = %+v", s)
	}
	sy, lp := m.Records()
	if sy != 1300 || lp != 77 {
		t.Errorf("manifest totals = %d/%d", sy, lp)
	}

	sr, err := OpenSegment(filepath.Join(dir, s.Name, SyslogSegment))
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	ts, recs := readAll(t, sr)
	if len(recs) != 1300 {
		t.Fatalf("read %d syslog records, want 1300", len(recs))
	}
	if ts[0] != 1000 || ts[1299] != 2299 {
		t.Errorf("timestamps [%d ... %d]", ts[0], ts[1299])
	}
	if want := "<189>Oct 20 00:00:01 host-42 7: line 42"; string(recs[42]) != want {
		t.Errorf("record 42 = %q, want %q", recs[42], want)
	}

	lr, err := OpenSegment(filepath.Join(dir, s.Name, LSPSegment))
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Close()
	lts, lrecs := readAll(t, lr)
	if len(lrecs) != 77 || lts[0] != 2000 {
		t.Fatalf("read %d LSP records starting %d", len(lrecs), lts[0])
	}
	if !bytes.Equal(lrecs[5], bytes.Repeat([]byte{5}, 40)) {
		t.Errorf("LSP record 5 corrupted: %x", lrecs[5])
	}
}

func TestIsCaptureDir(t *testing.T) {
	dir := writeShard(t, 1, 1)
	if !IsCaptureDir(dir) {
		t.Error("capture dir not detected")
	}
	if IsCaptureDir(t.TempDir()) {
		t.Error("empty dir misdetected as capture")
	}
}

// TestSparseIndexSeek pins the index contract: Locate a mid-stream
// timestamp, OpenSegmentAt the returned boundary, and the tail read
// matches a full read's tail exactly.
func TestSparseIndexSeek(t *testing.T) {
	dir := writeShard(t, 3*indexEvery+17, 0)
	seg := filepath.Join(dir, "shard-0000", SyslogSegment)

	idx, err := LoadIndex(filepath.Join(dir, "shard-0000", SyslogIndex))
	if err != nil {
		t.Fatal(err)
	}
	// One entry per indexEvery records, starting at record 0.
	if want := 4; len(idx) != want {
		t.Fatalf("index has %d entries, want %d", len(idx), want)
	}
	if idx[0].Record != 0 || idx[1].Record != indexEvery {
		t.Fatalf("index records %d, %d", idx[0].Record, idx[1].Record)
	}

	full, err := OpenSegment(seg)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	allTs, allRecs := readAll(t, full)

	target := allTs[2*indexEvery+100]
	e, ok := Locate(idx, target)
	if !ok {
		t.Fatal("Locate found nothing")
	}
	if e.Record != 2*indexEvery {
		t.Fatalf("Locate landed on record %d, want %d", e.Record, 2*indexEvery)
	}
	sr, err := OpenSegmentAt(seg, e.Offset, e.Record)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	ts, recs := readAll(t, sr)
	wantN := len(allRecs) - int(e.Record)
	if len(recs) != wantN {
		t.Fatalf("seek read %d records, want %d", len(recs), wantN)
	}
	for i := range recs {
		j := int(e.Record) + i
		if ts[i] != allTs[j] || !bytes.Equal(recs[i], allRecs[j]) {
			t.Fatalf("seek record %d differs from full read record %d", i, j)
		}
	}

	// A timestamp before the first entry has no boundary at or
	// before it.
	if _, ok := Locate(idx, allTs[0]-1); ok {
		t.Error("Locate before the first record should fail")
	}
}

// TestStrictReaderFailsRecordAccurate pins the strict error contract:
// a flipped payload byte is reported with the failing record's
// ordinal and its frame's byte offset.
func TestStrictReaderFailsRecordAccurate(t *testing.T) {
	dir := writeShard(t, 10, 0)
	seg := filepath.Join(dir, "shard-0000", SyslogSegment)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Locate record 4's frame by walking the healthy stream.
	off := int64(len(segHeader))
	sr, err := NewSegmentReader(bytes.NewReader(data), "walk")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, rec, err := sr.Next(); err != nil {
			t.Fatal(err)
		} else {
			off += int64(frameOverhead + tsLen + len(rec))
		}
	}

	// Flip a byte inside record 4's payload.
	data[off+frameOverhead+tsLen+2] ^= 0x10
	sr2, err := NewSegmentReader(bytes.NewReader(data), "damaged")
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	for {
		_, _, err := sr2.Next()
		if err != nil {
			gotErr = err
			break
		}
	}
	want := fmt.Sprintf("capture: damaged: record 4 at offset %d: crc mismatch", off)
	if gotErr == nil || gotErr.Error() != want {
		t.Fatalf("strict error = %v, want %q", gotErr, want)
	}

	// The lenient reader salvages everything but the damaged record.
	lr, err := NewSegmentReaderLenient(bytes.NewReader(data), "damaged")
	if err != nil {
		t.Fatal(err)
	}
	_, recs := readAll(t, lr)
	if len(recs) != 9 {
		t.Fatalf("lenient kept %d records, want 9", len(recs))
	}
	rep := lr.Report()
	if rep.Skipped != 1 || rep.Reasons["crc mismatch"] != 1 {
		t.Errorf("salvage report: %s", rep)
	}
}

// TestLenientReaderResyncsAfterGarbage splices garbage between two
// frames; the lenient reader skips it and realigns on the next sync
// marker, while strict fails at the splice point.
func TestLenientReaderResyncsAfterGarbage(t *testing.T) {
	dir := writeShard(t, 6, 0)
	seg := filepath.Join(dir, "shard-0000", SyslogSegment)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find record 2's frame start and inject garbage there.
	off := int64(len(segHeader))
	sr, _ := NewSegmentReader(bytes.NewReader(data), "walk")
	for i := 0; i < 2; i++ {
		_, rec, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		off += int64(frameOverhead + tsLen + len(rec))
	}
	garbage := []byte("@@@ not a frame @@@")
	spliced := append(append(append([]byte(nil), data[:off]...), garbage...), data[off:]...)

	if _, err := NewSegmentReader(bytes.NewReader(spliced), "s"); err != nil {
		t.Fatal(err)
	}
	strict, _ := NewSegmentReader(bytes.NewReader(spliced), "s")
	n := 0
	for {
		_, _, err := strict.Next()
		if err != nil {
			if err == io.EOF {
				t.Fatal("strict reader accepted spliced garbage")
			}
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("strict read %d records before failing, want 2", n)
	}

	lr, _ := NewSegmentReaderLenient(bytes.NewReader(spliced), "s")
	_, recs := readAll(t, lr)
	if len(recs) != 6 {
		t.Fatalf("lenient salvaged %d records, want all 6", len(recs))
	}
	if rep := lr.Report(); rep.Clean() {
		t.Error("salvage report claims clean read over spliced garbage")
	}
}

// TestTruncatedFinalFrame mirrors the crash-mid-write case: the
// strict reader identifies the torn record; the lenient reader keeps
// everything before it.
func TestTruncatedFinalFrame(t *testing.T) {
	dir := writeShard(t, 5, 0)
	seg := filepath.Join(dir, "shard-0000", SyslogSegment)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7]

	strict, _ := NewSegmentReader(bytes.NewReader(torn), "torn")
	var gotErr error
	n := 0
	for {
		_, _, err := strict.Next()
		if err != nil {
			gotErr = err
			break
		}
		n++
	}
	if n != 4 || gotErr == io.EOF {
		t.Fatalf("strict kept %d records, err %v; want 4 and a truncation error", n, gotErr)
	}

	lr, _ := NewSegmentReaderLenient(bytes.NewReader(torn), "torn")
	_, recs := readAll(t, lr)
	if len(recs) != 4 {
		t.Fatalf("lenient kept %d records, want 4", len(recs))
	}
	if rep := lr.Report(); rep.Reasons["truncated final frame"] != 1 {
		t.Errorf("salvage report: %s", rep)
	}
}

// TestTornIndexWrite pins the advisory-index contract: a torn
// trailing index entry is dropped by the lenient reader (with
// accurate accounting) and rejected entry-accurately by the strict
// one, while the segment itself stays fully readable.
func TestTornIndexWrite(t *testing.T) {
	dir := writeShard(t, 2*indexEvery+5, 0)
	idxPath := filepath.Join(dir, "shard-0000", SyslogIndex)
	data, err := os.ReadFile(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-5]

	if _, err := ReadIndex(bytes.NewReader(torn)); err == nil {
		t.Fatal("strict index reader accepted a torn entry")
	}
	idx, rep, err := ReadIndexLenient(bytes.NewReader(torn))
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("lenient index kept %d entries, want 2", len(idx))
	}
	if rep.Reasons["torn index entry"] != 1 {
		t.Errorf("salvage report: %s", rep)
	}

	// The segment is complete without the index.
	sr, err := OpenSegment(filepath.Join(dir, "shard-0000", SyslogSegment))
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if _, recs := readAll(t, sr); len(recs) != 2*indexEvery+5 {
		t.Fatalf("segment read %d records", len(recs))
	}
}

func TestLoadIndexMissingIsAdvisory(t *testing.T) {
	if _, err := LoadIndex(filepath.Join(t.TempDir(), "nope.idx")); err != ErrNoIndex {
		t.Fatalf("missing index: %v, want ErrNoIndex", err)
	}
}

// TestManifestLenientGarbage mirrors the netsim manifest's salvage
// behavior: garbage around the JSON object is skipped and accounted;
// damage inside stays fatal.
func TestManifestLenientGarbage(t *testing.T) {
	dir := writeShard(t, 1, 1)
	raw, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	noisy := append([]byte("### log prefix\n"), raw...)
	noisy = append(noisy, []byte("trailing junk\n")...)
	m, rep, err := ReadManifestLenient(bytes.NewReader(noisy))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 1 || rep.Skipped != 2 {
		t.Errorf("shards %d, skipped %d", len(m.Shards), rep.Skipped)
	}
	if _, _, err := ReadManifestLenient(bytes.NewReader([]byte("no json here"))); err == nil {
		t.Error("manifest with no object should fail even leniently")
	}
	if _, err := ReadManifest(bytes.NewReader([]byte(`{"format":"WRONG","shards":[]}`))); err == nil {
		t.Error("wrong format tag should fail")
	}
}

// TestWriterAllocs pins the steady-state writer: a warm segment
// writer appends with zero heap allocations per record (the frame
// buffer and index entry are reused; bufio absorbs the writes).
func TestWriterAllocs(t *testing.T) {
	dir := t.TempDir()
	sw, err := newSegmentWriter(dir, "a.seg", "a.idx")
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{0x42}, 120)
	if err := sw.append(1, rec); err != nil {
		t.Fatal(err)
	}
	ts := int64(2)
	avg := testing.AllocsPerRun(200, func() {
		if err := sw.append(ts, rec); err != nil {
			t.Fatal(err)
		}
		ts++
	})
	if err := sw.finish(); err != nil {
		t.Fatal(err)
	}
	// bufio flushes inside the measured region are I/O, not heap
	// growth; the budget absorbs the occasional flush bookkeeping.
	if avg > 0.05 {
		t.Errorf("steady-state append allocates %.3f per record, budget 0.05", avg)
	}
}

func BenchmarkSegmentAppend(b *testing.B) {
	dir := b.TempDir()
	sw, err := newSegmentWriter(dir, "b.seg", "b.idx")
	if err != nil {
		b.Fatal(err)
	}
	rec := bytes.Repeat([]byte{0x42}, 120)
	b.SetBytes(int64(frameOverhead + tsLen + len(rec)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sw.append(int64(i), rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := sw.finish(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSegmentRead(b *testing.B) {
	var buf bytes.Buffer
	buf.WriteString(segHeader)
	rec := bytes.Repeat([]byte{0x42}, 120)
	var frame []byte
	const n = 4096
	for i := 0; i < n; i++ {
		frame = appendFrame(frame[:0], int64(i), rec)
		buf.Write(frame)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, err := NewSegmentReader(bytes.NewReader(data), "bench")
		if err != nil {
			b.Fatal(err)
		}
		got := 0
		for {
			_, _, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			got++
		}
		if got != n {
			b.Fatalf("read %d records", got)
		}
		b.ReportMetric(float64(n), "records/op")
	}
}
