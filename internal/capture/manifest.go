package capture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"netfail/internal/salvage"
)

// ManifestName is the capture manifest's file name inside the
// capture directory.
const ManifestName = "manifest.json"

// Shard describes one shard in the manifest: which topology domain
// it captures, how big that domain is, and what the shard holds.
type Shard struct {
	// Name is the shard's directory name inside the capture dir.
	Name string `json:"name"`
	// Domain labels the topology domain this shard captures.
	Domain string `json:"domain"`
	// Routers and Links size the domain.
	Routers int `json:"routers"`
	Links   int `json:"links"`
	// SyslogRecords and LSPRecords count the framed records.
	SyslogRecords int64 `json:"syslog_records"`
	LSPRecords    int64 `json:"lsp_records"`
	// FirstMs and LastMs span the shard's record timestamps
	// (millisecond unix time, 0 when the shard is empty).
	FirstMs int64 `json:"first_ms"`
	LastMs  int64 `json:"last_ms"`
}

// Manifest is the campaign-level capture metadata: the shard list in
// the fixed order the analysis consumes them.
type Manifest struct {
	Format string  `json:"format"`
	Shards []Shard `json:"shards"`
}

// Records totals the framed records across all shards.
func (m *Manifest) Records() (syslog, lsps int64) {
	for _, s := range m.Shards {
		syslog += s.SyslogRecords
		lsps += s.LSPRecords
	}
	return syslog, lsps
}

// Span returns the earliest and latest record timestamps across all
// non-empty shards (zero times when the capture is empty).
func (m *Manifest) Span() (first, last time.Time) {
	var fMs, lMs int64
	for _, s := range m.Shards {
		if s.SyslogRecords == 0 && s.LSPRecords == 0 {
			continue
		}
		if fMs == 0 || s.FirstMs < fMs {
			fMs = s.FirstMs
		}
		if s.LastMs > lMs {
			lMs = s.LastMs
		}
	}
	if fMs == 0 {
		return time.Time{}, time.Time{}
	}
	return time.UnixMilli(fMs).UTC(), time.UnixMilli(lMs).UTC()
}

// writeManifestFile writes the manifest atomically into dir.
func writeManifestFile(dir string, m *Manifest) error {
	tmp, err := os.CreateTemp(dir, "manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("capture: manifest: %w", err)
	}
	tmpName := tmp.Name()
	enc := json.NewEncoder(tmp)
	enc.SetIndent("", "  ")
	err = enc.Encode(m)
	if serr := tmp.Sync(); err == nil {
		err = serr
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("capture: manifest: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ManifestName)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("capture: manifest: %w", err)
	}
	return nil
}

// IsCaptureDir reports whether dir looks like a capture directory
// (has a manifest). netfail-analyze uses it to auto-detect sharded
// campaigns.
func IsCaptureDir(dir string) bool {
	st, err := os.Stat(filepath.Join(dir, ManifestName))
	return err == nil && !st.IsDir()
}

// ReadManifest parses a capture manifest strictly and validates the
// format tag.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("capture: manifest: %w", err)
	}
	if m.Format != FormatName {
		return nil, fmt.Errorf("capture: manifest: unknown format %q (want %q)", m.Format, FormatName)
	}
	return &m, nil
}

// ReadManifestDir reads dir's manifest strictly.
func ReadManifestDir(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	defer f.Close()
	return ReadManifest(f)
}

// ReadManifestLenient parses a capture manifest in salvage mode:
// garbage before or after the JSON object is skipped and accounted.
// The manifest is small and names every shard, so corruption inside
// the object stays fatal even here — a guessed shard list would
// silently drop whole domains from the analysis.
func ReadManifestLenient(r io.Reader) (*Manifest, *salvage.Report, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("capture: manifest: %w", err)
	}
	rep := &salvage.Report{}
	start := bytes.IndexByte(raw, '{')
	if start < 0 {
		return nil, nil, fmt.Errorf("capture: manifest: no JSON object found")
	}
	end := matchBrace(raw, start)
	if end < 0 {
		return nil, nil, fmt.Errorf("capture: manifest: unterminated JSON object")
	}
	m, err := ReadManifest(bytes.NewReader(raw[start : end+1]))
	if err != nil {
		return nil, nil, err
	}
	rep.Kept = 1
	for _, lineNo := range garbageLines(raw, start, end) {
		rep.Skip(lineNo, "garbage around manifest object")
	}
	return m, rep, nil
}

// matchBrace returns the index of the brace closing the object opened
// at start, honouring JSON string syntax, or -1.
func matchBrace(data []byte, start int) int {
	depth, inString, escaped := 0, false, false
	for i := start; i < len(data); i++ {
		c := data[i]
		if inString {
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			inString = true
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// garbageLines returns the 1-based line numbers of non-blank lines
// falling entirely outside data[start:end+1].
func garbageLines(data []byte, start, end int) []int {
	var out []int
	lineNo, lineStart := 0, 0
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != '\n' {
			continue
		}
		lineNo++
		line := bytes.TrimSpace(data[lineStart:i])
		if len(line) > 0 && (i <= start || lineStart > end) {
			out = append(out, lineNo)
		}
		lineStart = i + 1
	}
	return out
}
