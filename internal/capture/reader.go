package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"netfail/internal/salvage"
)

// SegmentReader streams one segment's frames. Next returns each
// record's timestamp and bytes; the byte slice is a view into a
// reused internal buffer, valid only until the next call — consumers
// (the syslog Tokenizer, the LSP decoder) copy or intern everything
// they retain, which is what keeps the read path zero-copy.
//
// The strict reader (OpenSegment / NewSegmentReader) aborts on the
// first damaged frame with a record- and offset-accurate error. The
// lenient reader (OpenSegmentLenient / NewSegmentReaderLenient) skips
// damaged regions — resynchronizing on the next sync marker — and
// accounts every skip in its salvage report instead of aborting.
type SegmentReader struct {
	br      *bufio.Reader
	c       io.Closer
	name    string
	buf     []byte
	record  int64 // records returned so far
	off     int64 // byte offset of the next unconsumed byte
	lenient bool
	rep     *salvage.Report
}

// NewSegmentReader wraps r as a strict frame stream. name labels
// errors (typically the file path).
func NewSegmentReader(r io.Reader, name string) (*SegmentReader, error) {
	return newSegmentReader(r, name, false)
}

// NewSegmentReaderLenient wraps r as a lenient frame stream; the
// salvage accounting accumulates in Report.
func NewSegmentReaderLenient(r io.Reader, name string) (*SegmentReader, error) {
	return newSegmentReader(r, name, true)
}

func newSegmentReader(r io.Reader, name string, lenient bool) (*SegmentReader, error) {
	sr := &SegmentReader{
		br:      bufio.NewReaderSize(r, 256<<10),
		name:    name,
		lenient: lenient,
		rep:     &salvage.Report{},
	}
	hdr := make([]byte, len(segHeader))
	if _, err := io.ReadFull(sr.br, hdr); err != nil || string(hdr) != segHeader {
		if lenient {
			// A missing header means this is not (or no longer) a
			// segment; salvage nothing rather than misparse garbage.
			sr.rep.Skip(1, "bad segment header")
			sr.br = bufio.NewReader(bytes0)
			return sr, nil
		}
		if err != nil {
			return nil, fmt.Errorf("capture: %s: bad segment header: %v", name, err)
		}
		return nil, fmt.Errorf("capture: %s: bad segment header", name)
	}
	sr.off = int64(len(segHeader))
	return sr, nil
}

// bytes0 is the empty stream a lenient reader degrades to when the
// header itself is damaged.
var bytes0 = emptyReader{}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

// OpenSegment opens path as a strict frame stream.
func OpenSegment(path string) (*SegmentReader, error) {
	return openSegment(path, false)
}

// OpenSegmentLenient opens path as a lenient frame stream.
func OpenSegmentLenient(path string) (*SegmentReader, error) {
	return openSegment(path, true)
}

func openSegment(path string, lenient bool) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	sr, err := newSegmentReader(f, path, lenient)
	if err != nil {
		f.Close()
		return nil, err
	}
	sr.c = f
	return sr, nil
}

// OpenSegmentAt opens path and positions the reader at a frame
// boundary previously obtained from the segment's sparse index:
// offset is the frame's byte offset, record its ordinal. Reading
// proceeds from that record to the end of the segment.
func OpenSegmentAt(path string, offset int64, record int64) (*SegmentReader, error) {
	return openSegmentAt(path, offset, record, false)
}

// OpenSegmentAtLenient is OpenSegmentAt in salvage mode: damage after
// the seek point is skipped and accounted instead of aborting. An
// index entry pointing into a damaged region simply resynchronizes on
// the next sync marker.
func OpenSegmentAtLenient(path string, offset int64, record int64) (*SegmentReader, error) {
	return openSegmentAt(path, offset, record, true)
}

func openSegmentAt(path string, offset int64, record int64, lenient bool) (*SegmentReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	if offset < int64(len(segHeader)) {
		f.Close()
		return nil, fmt.Errorf("capture: %s: seek offset %d inside header", path, offset)
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("capture: %s: %w", path, err)
	}
	sr := &SegmentReader{
		br:      bufio.NewReaderSize(f, 256<<10),
		c:       f,
		name:    path,
		off:     offset,
		record:  record,
		lenient: lenient,
		rep:     &salvage.Report{},
	}
	return sr, nil
}

// Report returns the lenient reader's salvage accounting (empty and
// clean for a strict reader that has not errored).
func (sr *SegmentReader) Report() *salvage.Report { return sr.rep }

// Records returns how many records Next has returned so far.
func (sr *SegmentReader) Records() int64 { return sr.record }

// Close closes the underlying file when the reader owns one.
func (sr *SegmentReader) Close() error {
	if sr.c == nil {
		return nil
	}
	return sr.c.Close()
}

// Next returns the next record. At the end of the segment it returns
// io.EOF. The returned slice aliases the reader's internal buffer.
//
//netfail:hotpath
func (sr *SegmentReader) Next() (tsMs int64, rec []byte, err error) {
	for {
		frameStart := sr.off
		hdr, err := sr.br.Peek(frameOverhead)
		if len(hdr) == 0 && err != nil {
			return 0, nil, io.EOF
		}
		if len(hdr) < frameOverhead {
			if sr.lenient {
				sr.rep.Skip(int(sr.record+1), "truncated final frame")
				sr.discard(len(hdr))
				return 0, nil, io.EOF
			}
			return 0, nil, sr.corrupt(frameStart, "truncated frame header")
		}
		if hdr[0] != sync0 || hdr[1] != sync1 {
			if sr.lenient {
				sr.resync("bad sync marker")
				continue
			}
			return 0, nil, sr.corrupt(frameStart, "bad sync marker")
		}
		payloadLen := int(binary.LittleEndian.Uint32(hdr[2:]))
		if payloadLen < tsLen || payloadLen > maxFrameLen {
			if sr.lenient {
				sr.resync("implausible frame length")
				continue
			}
			return 0, nil, sr.corrupt(frameStart, "implausible frame length")
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[6:])
		sr.discard(frameOverhead)
		if cap(sr.buf) < payloadLen {
			sr.buf = make([]byte, payloadLen)
		}
		payload := sr.buf[:payloadLen]
		n, rerr := readFull(sr.br, payload)
		sr.off += int64(n)
		if rerr != nil {
			if sr.lenient {
				sr.rep.Skip(int(sr.record+1), "truncated final frame")
				return 0, nil, io.EOF
			}
			return 0, nil, sr.corrupt(frameStart, "truncated frame payload")
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			if sr.lenient {
				// The frame boundary itself was intact (sync and
				// length checked out), so the stream stays aligned;
				// skip just this record.
				sr.rep.Skip(int(sr.record+1), "crc mismatch")
				continue
			}
			return 0, nil, sr.corrupt(frameStart, "crc mismatch")
		}
		sr.record++
		sr.rep.Kept++
		return int64(binary.LittleEndian.Uint64(payload)), payload[tsLen:], nil
	}
}

// readFull is io.ReadFull over the concrete *bufio.Reader, keeping
// the per-record read free of the io.Reader boxing.
//
//netfail:hotpath
func readFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// corrupt builds the strict reader's record- and offset-accurate
// error: the record ordinal is the one that failed (1-based), the
// offset is where its frame starts.
func (sr *SegmentReader) corrupt(frameStart int64, reason string) error {
	return fmt.Errorf("capture: %s: record %d at offset %d: %s", sr.name, sr.record+1, frameStart, reason)
}

// resync accounts a damaged region and scans forward for the next
// sync marker so the lenient reader can realign. The skipped bytes —
// however many — count as one skipped record.
func (sr *SegmentReader) resync(reason string) {
	sr.rep.Skip(int(sr.record+1), reason)
	// Move off the current (bad) position first.
	sr.discard(1)
	for {
		win, err := sr.br.Peek(2)
		if len(win) < 2 {
			// Ran off the end while scanning; drain what's left.
			sr.discard(len(win))
			return
		}
		_ = err
		if win[0] == sync0 && win[1] == sync1 {
			return
		}
		sr.discard(1)
	}
}

// discard consumes n buffered bytes, tracking the offset.
func (sr *SegmentReader) discard(n int) {
	d, _ := sr.br.Discard(n)
	sr.off += int64(d)
}

// IndexEntry is one sparse-index record: the timestamp, byte offset,
// and ordinal of a frame in the companion segment.
type IndexEntry struct {
	TsMs   int64
	Offset int64
	Record int64
}

// ReadIndex parses a sparse index strictly.
func ReadIndex(r io.Reader) ([]IndexEntry, error) {
	out, _, err := readIndex(r, true)
	return out, err
}

// ReadIndexLenient parses a sparse index in salvage mode: a torn
// trailing entry (the crash-mid-write case) or a damaged header is
// accounted and skipped. Entries after the first damage are dropped —
// a sparse index is advisory, and the segment remains fully readable
// without it.
func ReadIndexLenient(r io.Reader) ([]IndexEntry, *salvage.Report, error) {
	return readIndex(r, false)
}

func readIndex(r io.Reader, strict bool) ([]IndexEntry, *salvage.Report, error) {
	rep := &salvage.Report{}
	br := bufio.NewReader(r)
	hdr := make([]byte, len(idxHeader))
	if _, err := io.ReadFull(br, hdr); err != nil || string(hdr) != idxHeader {
		if strict {
			return nil, nil, fmt.Errorf("capture: index: bad header")
		}
		rep.Skip(1, "bad index header")
		return nil, rep, nil
	}
	var out []IndexEntry
	var raw [idxEntryLen]byte
	prevRecord := int64(-1)
	for {
		n, err := io.ReadFull(br, raw[:])
		if err == io.EOF {
			return out, rep, nil
		}
		if err != nil {
			if strict {
				return nil, nil, fmt.Errorf("capture: index: entry %d: torn entry (%d of %d bytes)", len(out)+1, n, idxEntryLen)
			}
			rep.Skip(len(out)+1, "torn index entry")
			return out, rep, nil
		}
		e := IndexEntry{
			TsMs:   int64(binary.LittleEndian.Uint64(raw[0:])),
			Offset: int64(binary.LittleEndian.Uint64(raw[8:])),
			Record: int64(binary.LittleEndian.Uint32(raw[16:])),
		}
		// Entries are strictly record-ordered by construction; a
		// violation means the index bytes are rotten even though the
		// entry length worked out.
		if e.Record <= prevRecord || e.Offset < int64(len(segHeader)) {
			if strict {
				return nil, nil, fmt.Errorf("capture: index: entry %d: implausible entry (record %d, offset %d)", len(out)+1, e.Record, e.Offset)
			}
			rep.Skip(len(out)+1, "implausible index entry")
			return out, rep, nil
		}
		prevRecord = e.Record
		out = append(out, e)
		rep.Kept++
	}
}

// Locate returns the latest index entry whose timestamp is at or
// before tsMs — the frame boundary a time-seek starts reading from —
// or false when the index is empty or every entry is later.
func Locate(idx []IndexEntry, tsMs int64) (IndexEntry, bool) {
	lo, hi := 0, len(idx)
	for lo < hi {
		mid := (lo + hi) / 2
		if idx[mid].TsMs <= tsMs {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return IndexEntry{}, false
	}
	return idx[lo-1], true
}

// ErrNoIndex reports a missing index file to callers that treat the
// index as advisory.
var ErrNoIndex = errors.New("capture: no index")

// LoadIndex reads a segment's index file, mapping a missing file to
// ErrNoIndex (the index is advisory; the segment alone is complete).
func LoadIndex(path string) ([]IndexEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNoIndex
		}
		return nil, fmt.Errorf("capture: %w", err)
	}
	defer f.Close()
	return ReadIndex(f)
}
