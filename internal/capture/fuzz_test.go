package capture

import (
	"bytes"
	"io"
	"testing"

	"netfail/internal/faultinject"
)

// corpusSegment builds a healthy segment stream of n records.
func corpusSegment(n int) []byte {
	var buf bytes.Buffer
	buf.WriteString(segHeader)
	var frame []byte
	for i := 0; i < n; i++ {
		frame = appendFrame(frame[:0], int64(1000+i), []byte("record payload bytes"))
		buf.Write(frame)
	}
	return buf.Bytes()
}

// drain reads a segment stream to EOF, returning the records and the
// first non-EOF error (strict mode only).
func drain(sr *SegmentReader) (recs [][]byte, err error) {
	for {
		_, rec, e := sr.Next()
		if e == io.EOF {
			return recs, nil
		}
		if e != nil {
			return recs, e
		}
		recs = append(recs, append([]byte(nil), rec...))
	}
}

// FuzzReadSegment drives the strict/lenient shard-reader pair over
// corrupted segment streams, mirroring checkpoint's FuzzReadWAL. The
// seed corpus comes from the faultinject binary corruptor — torn
// writes, truncated finals, bit flips, spliced garbage — plus a clean
// stream and degenerate shapes; the fuzzer mutates from there.
// Invariants, whatever the bytes:
//
//   - neither reader panics or over-allocates (maxFrameLen guard);
//   - strict success implies lenient agrees record-for-record and
//     reports a clean salvage;
//   - the lenient reader never returns a non-EOF error on in-memory
//     data, and its accounting matches what it returned.
func FuzzReadSegment(f *testing.F) {
	clean := corpusSegment(8)
	f.Add(clean)
	f.Add([]byte{})
	f.Add([]byte(segHeader))
	f.Add([]byte("not a segment at all"))
	for seed := int64(1); seed <= 4; seed++ {
		torn, _ := faultinject.CorruptBytes(clean, faultinject.Plan{
			Seed: seed, Rate: 0.4, Modes: []faultinject.Mode{faultinject.TornWrite},
		})
		f.Add(torn)
		truncated, _ := faultinject.CorruptBytes(clean, faultinject.Plan{
			Seed: seed, Modes: []faultinject.Mode{faultinject.TruncateFinal},
		})
		f.Add(truncated)
		mixed, _ := faultinject.CorruptBytes(clean, faultinject.Plan{Seed: seed, Rate: 0.1})
		f.Add(mixed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var strictRecs [][]byte
		var strictErr error
		sr, err := NewSegmentReader(bytes.NewReader(data), "fuzz")
		if err != nil {
			strictErr = err
		} else {
			strictRecs, strictErr = drain(sr)
		}

		lr, err := NewSegmentReaderLenient(bytes.NewReader(data), "fuzz")
		if err != nil {
			t.Fatalf("lenient reader errored opening in-memory data: %v", err)
		}
		lenientRecs, lenientErr := drain(lr)
		if lenientErr != nil {
			t.Fatalf("lenient reader errored on in-memory data: %v", lenientErr)
		}
		rep := lr.Report()
		if rep.Kept != len(lenientRecs) {
			t.Fatalf("report kept %d, returned %d records", rep.Kept, len(lenientRecs))
		}
		if strictErr == nil {
			if !rep.Clean() {
				t.Fatalf("strict accepted the stream but lenient skipped: %s", rep)
			}
			if len(strictRecs) != len(lenientRecs) {
				t.Fatalf("strict kept %d records, lenient %d", len(strictRecs), len(lenientRecs))
			}
			for i := range strictRecs {
				if !bytes.Equal(strictRecs[i], lenientRecs[i]) {
					t.Fatalf("record %d differs between strict and lenient", i)
				}
			}
		}
	})
}

// FuzzReadIndex holds the same pair invariants over the sparse index.
func FuzzReadIndex(f *testing.F) {
	var buf bytes.Buffer
	buf.WriteString(idxHeader)
	var raw [idxEntryLen]byte
	for i := 0; i < 6; i++ {
		le := raw[:]
		putUint64(le[0:], uint64(1000+i*512))
		putUint64(le[8:], uint64(len(segHeader)+i*1024))
		putUint32(le[16:], uint32(i*512))
		buf.Write(le)
	}
	clean := buf.Bytes()
	f.Add(clean)
	f.Add([]byte{})
	f.Add([]byte(idxHeader))
	f.Add(clean[:len(clean)-7])
	for seed := int64(1); seed <= 3; seed++ {
		mixed, _ := faultinject.CorruptBytes(clean, faultinject.Plan{Seed: seed, Rate: 0.2})
		f.Add(mixed)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		strictIdx, strictErr := ReadIndex(bytes.NewReader(data))
		lenientIdx, rep, lenientErr := ReadIndexLenient(bytes.NewReader(data))
		if lenientErr != nil {
			t.Fatalf("lenient index reader errored on in-memory data: %v", lenientErr)
		}
		if rep.Kept != len(lenientIdx) {
			t.Fatalf("report kept %d, returned %d entries", rep.Kept, len(lenientIdx))
		}
		if strictErr == nil {
			if !rep.Clean() {
				t.Fatalf("strict accepted the index but lenient skipped: %s", rep)
			}
			if len(strictIdx) != len(lenientIdx) {
				t.Fatalf("strict kept %d entries, lenient %d", len(strictIdx), len(lenientIdx))
			}
			for i := range strictIdx {
				if strictIdx[i] != lenientIdx[i] {
					t.Fatalf("entry %d differs between strict and lenient", i)
				}
			}
			// Whatever the bytes, surviving entries must satisfy the
			// Locate precondition (strictly increasing records).
			for i := 1; i < len(strictIdx); i++ {
				if strictIdx[i].Record <= strictIdx[i-1].Record {
					t.Fatalf("strict index not record-ordered at %d", i)
				}
			}
		}
	})
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putUint32(b []byte, v uint32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
