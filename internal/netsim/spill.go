package netsim

import (
	"context"
	"fmt"
	"time"

	"netfail/internal/capture"
	"netfail/internal/config"
	"netfail/internal/pool"
	"netfail/internal/topo"
)

// BackboneDomain is the manifest domain label for the CENIC-style
// backbone — always shard 0 of a sharded capture.
const BackboneDomain = "backbone"

// RunToCapture executes a campaign exactly as Run does — identical
// RNG streams, identical event schedule — but streams the captures to
// a single-shard capture directory instead of accumulating them in
// RAM. The returned Campaign carries everything except the Syslog and
// LSPLog slices, which live on disk; peak residency is the spill
// sink's reorder horizon, not the campaign's event volume.
func RunToCapture(ctx context.Context, cfg Config, dir string) (*Campaign, error) {
	w, err := capture.NewWriter(dir)
	if err != nil {
		return nil, err
	}
	var sw *capture.ShardWriter
	camp, err := run(ctx, cfg, nil, func(camp *Campaign) (eventSink, error) {
		var serr error
		sw, serr = w.Shard(BackboneDomain, len(camp.Network.RouterNames), len(camp.Network.Links))
		if serr != nil {
			return nil, serr
		}
		return &spillSink{sw: sw}, nil
	}, false)
	if err != nil {
		if sw != nil {
			sw.Close()
		}
		return nil, err
	}
	if err := sw.Close(); err != nil {
		return nil, err
	}
	if err := w.Finish(); err != nil {
		return nil, err
	}
	return camp, nil
}

// domainSeedStride separates per-domain seeds so domains draw
// independent workloads from one campaign seed. Domain 0 (the
// backbone) keeps the campaign seed itself, so its shard is
// byte-identical to a RunToCapture of the same config.
const domainSeedStride = 1_000_003

// RunShardedToCapture executes a multi-domain campaign: the backbone
// from cfg.Spec as domain 0 plus fabric.Domains spine/leaf pods, each
// simulated independently (domains are link-disjoint IS-IS areas) and
// captured to its own shard. Per-domain simulations fan out over
// workers goroutines; shards are opened in domain order before the
// fan-out, so the manifest order — and therefore everything the
// analysis derives from it — never depends on which domain finishes
// first.
//
// The returned Campaign describes the combined network: the merged
// topology, one config archive over the union, ground truth and
// counts aggregated in domain order.
func RunShardedToCapture(ctx context.Context, cfg Config, fabric topo.FabricSpec, dir string, workers int) (*Campaign, error) {
	cfg.fillDefaults()
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("netsim: empty observation window")
	}
	backbone, err := topo.Generate(cfg.Spec)
	if err != nil {
		return nil, err
	}
	pods, err := topo.Fabric(fabric)
	if err != nil {
		return nil, err
	}
	domains := make([]topo.Domain, 0, 1+len(pods))
	domains = append(domains, topo.Domain{Name: BackboneDomain, Net: backbone})
	domains = append(domains, pods...)

	w, err := capture.NewWriter(dir)
	if err != nil {
		return nil, err
	}
	sws := make([]*capture.ShardWriter, len(domains))
	for i, d := range domains {
		sws[i], err = w.Shard(d.Name, len(d.Net.RouterNames), len(d.Net.Links))
		if err != nil {
			return nil, err
		}
	}

	camps := make([]*Campaign, len(domains))
	errs := make([]error, len(domains))
	perr := pool.ForEachWorkerCtx(ctx, len(domains), pool.Resolve(workers), func(ctx context.Context, _, i int) {
		dcfg := cfg
		dcfg.Seed = cfg.Seed + int64(i)*domainSeedStride
		sw := sws[i]
		camps[i], errs[i] = run(ctx, dcfg, domains[i].Net, func(*Campaign) (eventSink, error) {
			return &spillSink{sw: sw}, nil
		}, true)
		if cerr := sw.Close(); errs[i] == nil {
			errs[i] = cerr
		}
	})
	if perr != nil {
		return nil, perr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	merged, err := topo.Merge(netsOf(domains)...)
	if err != nil {
		return nil, err
	}
	camp := &Campaign{
		Config:          cfg,
		Network:         merged,
		Archive:         config.GenerateArchive(merged, cfg.Start.Add(-24*time.Hour), cfg.End, 7*24*time.Hour),
		ListenerOffline: cfg.ListenerOffline,
	}
	for _, dc := range camps {
		camp.GroundTruth = append(camp.GroundTruth, dc.GroundTruth...)
		camp.Counts.SyslogSent += dc.Counts.SyslogSent
		camp.Counts.SyslogReceived += dc.Counts.SyslogReceived
		camp.Counts.LSPUpdates += dc.Counts.LSPUpdates
		camp.Counts.ContentLSPs += dc.Counts.ContentLSPs
	}
	camp.Counts.GroundTruthFailures = len(camp.GroundTruth)
	if err := w.Finish(); err != nil {
		return nil, err
	}
	return camp, nil
}

func netsOf(domains []topo.Domain) []*topo.Network {
	nets := make([]*topo.Network, len(domains))
	for i, d := range domains {
		nets[i] = d.Net
	}
	return nets
}
