package netsim

import (
	"bytes"
	"testing"
	"time"

	"netfail/internal/faultinject"
)

// FuzzReadLSPLog: arbitrary capture bytes must never panic either
// reader, the salvage report must account for every kept record, and
// salvaged records must survive a write/strict-read round trip. The
// seed corpus is a clean capture plus deterministic faultinject
// corruptions of it.
func FuzzReadLSPLog(f *testing.F) {
	var clean bytes.Buffer
	log := make([]CapturedLSP, 0, 40)
	for i := 0; i < 40; i++ {
		log = append(log, CapturedLSP{
			Time: time.UnixMilli(int64(1_300_000_000_000 + i*250)).UTC(),
			Data: []byte{0x83, byte(i), 0xaa, 0x55},
		})
	}
	if err := WriteLSPLog(&clean, log); err != nil {
		f.Fatal(err)
	}
	f.Add(clean.Bytes())
	for seed := int64(1); seed <= 5; seed++ {
		corrupted, _ := faultinject.Corrupt(clean.Bytes(), faultinject.Plan{Seed: seed, Rate: 0.2})
		f.Add(corrupted)
	}
	f.Add([]byte("1000 83aa\n"))
	f.Add([]byte("1000"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, rep, err := ReadLSPLogLenient(bytes.NewReader(data))
		if err != nil {
			return // scanner-level failure (e.g. token too long)
		}
		if rep.Kept != len(got) {
			t.Fatalf("report kept %d, reader returned %d", rep.Kept, len(got))
		}
		if rep.Skipped > 0 && (rep.FirstBad == 0 || rep.LastBad < rep.FirstBad) {
			t.Fatalf("inconsistent report %+v", rep)
		}
		var out bytes.Buffer
		if err := WriteLSPLog(&out, got); err != nil {
			t.Fatalf("re-serializing salvaged records: %v", err)
		}
		got2, err := ReadLSPLog(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("strict re-read of salvaged records: %v", err)
		}
		if len(got2) != len(got) {
			t.Fatalf("round trip kept %d of %d records", len(got2), len(got))
		}
		for i := range got {
			if !got2[i].Time.Equal(got[i].Time) || !bytes.Equal(got2[i].Data, got[i].Data) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
