package netsim

import (
	"context"
	"testing"
	"time"

	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

func limitedConfig(seed int64, mutate func(*ImpairParams)) Config {
	im := DefaultImpairments()
	mutate(&im)
	return Config{
		Seed: seed,
		Spec: topo.Spec{
			Seed: seed, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
			DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 2, 15, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
		Impair:          &im,
	}
}

func TestRateLimitDropsBurstMessages(t *testing.T) {
	base, err := Run(context.Background(), limitedConfig(8, func(im *ImpairParams) {}))
	if err != nil {
		t.Fatal(err)
	}
	limited, err := Run(context.Background(), limitedConfig(8, func(im *ImpairParams) {
		im.RateLimitPerMin = 0.5
		im.RateLimitBurst = 2
	}))
	if err != nil {
		t.Fatal(err)
	}
	if limited.Counts.SyslogSent != base.Counts.SyslogSent {
		t.Fatalf("sent differ: %d vs %d (same seed must emit identically)",
			limited.Counts.SyslogSent, base.Counts.SyslogSent)
	}
	if limited.Counts.SyslogReceived >= base.Counts.SyslogReceived {
		t.Errorf("rate limit dropped nothing: %d >= %d",
			limited.Counts.SyslogReceived, base.Counts.SyslogReceived)
	}
	t.Logf("received: unlimited %d, rate-limited %d",
		base.Counts.SyslogReceived, limited.Counts.SyslogReceived)
}

func TestRateLimitBucketMechanics(t *testing.T) {
	s := &simulation{
		cfg:     Config{Impair: &ImpairParams{RateLimitPerMin: 6, RateLimitBurst: 3}},
		buckets: make(map[string]*tokenBucket),
	}
	t0 := time.Unix(0, 0)
	// Burst of 3 passes, 4th drops.
	for i := 0; i < 3; i++ {
		if s.rateLimited("r", t0) {
			t.Fatalf("message %d limited within burst", i)
		}
	}
	if !s.rateLimited("r", t0) {
		t.Fatal("burst overflow not limited")
	}
	// 6/min = one token per 10 s.
	if s.rateLimited("r", t0.Add(11*time.Second)) {
		t.Fatal("refilled token not granted")
	}
	if !s.rateLimited("r", t0.Add(11*time.Second)) {
		t.Fatal("second message after single refill not limited")
	}
	// Long idle refills to the burst cap, no further.
	if s.rateLimited("r", t0.Add(time.Hour)) ||
		s.rateLimited("r", t0.Add(time.Hour)) ||
		s.rateLimited("r", t0.Add(time.Hour)) {
		t.Fatal("burst not restored after idle")
	}
	if !s.rateLimited("r", t0.Add(time.Hour)) {
		t.Fatal("cap exceeded after idle")
	}
}

func TestNoiseMessagesFiltered(t *testing.T) {
	camp, err := Run(context.Background(), limitedConfig(9, func(im *ImpairParams) {
		im.NoisePerRouterDay = 2
	}))
	if err != nil {
		t.Fatal(err)
	}
	noise := 0
	for _, m := range camp.Syslog {
		if _, err := syslog.ParseLinkEvent(m); err != nil {
			noise++
		}
	}
	if noise == 0 {
		t.Fatal("no noise messages generated")
	}
	// 30 routers x 45 days x 2/day ≈ 2700 minus loss.
	if noise < 1000 {
		t.Errorf("noise = %d, expected thousands", noise)
	}
	// Every noise message still parses as valid RFC 3164.
	for _, m := range camp.Syslog {
		if _, err := syslog.Parse(m.Render(), camp.Config.Start); err != nil {
			t.Fatalf("noise message does not re-parse: %v", err)
		}
	}
	t.Logf("noise messages: %d of %d total", noise, len(camp.Syslog))
}
