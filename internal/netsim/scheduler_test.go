package netsim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewScheduler(start)
	var order []int
	s.At(start.Add(3*time.Second), func() { order = append(order, 3) })
	s.At(start.Add(1*time.Second), func() { order = append(order, 1) })
	s.At(start.Add(2*time.Second), func() { order = append(order, 2) })
	n := s.Run(start.Add(time.Minute))
	if n != 3 {
		t.Errorf("executed = %d", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewScheduler(start)
	var order []int
	at := start.Add(time.Second)
	for i := 0; i < 10; i++ {
		i := i
		s.At(at, func() { order = append(order, i) })
	}
	s.Run(start.Add(time.Minute))
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSchedulerEventsScheduleEvents(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewScheduler(start)
	var fired []time.Time
	s.At(start.Add(time.Second), func() {
		s.After(time.Second, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run(start.Add(time.Minute))
	if len(fired) != 1 || !fired[0].Equal(start.Add(2*time.Second)) {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulerStopsAtEnd(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewScheduler(start)
	ran := false
	s.At(start.Add(time.Hour), func() { ran = true })
	s.Run(start.Add(time.Minute))
	if ran {
		t.Error("event beyond end executed")
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	if !s.Now().Equal(start.Add(time.Minute)) {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSchedulerPastClamped(t *testing.T) {
	start := time.Unix(100, 0)
	s := NewScheduler(start)
	var at time.Time
	s.At(start.Add(-time.Hour), func() { at = s.Now() })
	s.Run(start.Add(time.Second))
	if !at.Equal(start) {
		t.Errorf("past event ran at %v, want %v", at, start)
	}
}
