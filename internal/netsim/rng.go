package netsim

import (
	"math"
	"math/rand"
	"time"
)

// rng wraps math/rand with the distribution helpers the workload and
// impairment models need.
type rng struct {
	*rand.Rand
}

func newRNG(seed int64) *rng {
	return &rng{Rand: rand.New(rand.NewSource(seed))}
}

// bernoulli returns true with probability p.
func (r *rng) bernoulli(p float64) bool {
	return r.Float64() < p
}

// uniformDur draws uniformly from [lo, hi).
func (r *rng) uniformDur(lo, hi time.Duration) time.Duration {
	if hi <= lo {
		return lo
	}
	return lo + time.Duration(r.Int63n(int64(hi-lo)))
}

// expDur draws an exponential duration with the given mean.
func (r *rng) expDur(mean time.Duration) time.Duration {
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// lognormalDur draws a lognormal duration with the given median and
// log-space sigma.
func (r *rng) lognormalDur(median time.Duration, sigma float64) time.Duration {
	return time.Duration(float64(median) * math.Exp(sigma*r.NormFloat64()))
}

// lognormal draws a lognormal scalar with the given median and sigma.
func (r *rng) lognormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*r.NormFloat64())
}

// fork derives an independent deterministic stream, so consumers can
// draw in any order without perturbing each other.
func (r *rng) fork() *rng {
	return newRNG(r.Int63())
}
