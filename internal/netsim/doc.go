// Package netsim is the discrete-event simulator that stands in for
// the CENIC production network. The paper's data sources are
// proprietary operational traces; netsim generates the closest
// synthetic equivalent: a 13-month campaign of link failures over a
// CENIC-scale topology, observed through the same two imperfect
// channels the paper compares —
//
//   - routers that originate binary IS-IS LSPs on adjacency changes,
//     flooded to a passive listener (with LSP suppression for
//     sub-second resets and scheduled listener-offline windows), and
//   - routers that emit Cisco syslog messages over lossy UDP (base
//     loss, heavily elevated loss during flap episodes, spurious
//     retransmissions, and syslog-only pseudo-failures from
//     connection resets and aborted three-way handshakes).
//
// The failure workload is generated per link class with heavy-tailed
// durations and flapping episodes calibrated against Table 5 of the
// paper. All randomness flows from a single seed, so identical
// configurations reproduce identical captures.
package netsim
