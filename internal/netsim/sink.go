package netsim

import (
	"math"
	"sort"
	"time"

	"netfail/internal/capture"
	"netfail/internal/syslog"
)

// eventSink receives the simulation's two observation streams as the
// scheduler produces them. The simulation drives the sink from the
// identical code path regardless of implementation — same RNG draws,
// same event schedule — so an in-RAM run and a spill run of the same
// config produce the identical event streams.
type eventSink interface {
	// syslog receives a message delivered to the collector; now is
	// the scheduler clock at delivery. Delivered messages carry
	// millisecond-truncated timestamps computed as now-at-emission
	// plus a non-negative processing delay, so every future delivery
	// is stamped at or after the floor of now's millisecond — the
	// invariant that lets the spill sink bound its reorder buffer.
	syslog(now time.Time, m *syslog.Message)
	// lsp receives one LSP's wire bytes captured at now. Captures
	// arrive in scheduler order, i.e. non-decreasing time.
	lsp(now time.Time, wire []byte)
	// finish settles the streams once the scheduler has drained.
	finish() error
}

// memorySink is the classic in-RAM capture: accumulate, then sort
// once at the end. The stable sorts keep delivery order among
// equal-timestamp messages, which the spill sink reproduces with its
// delivery-sequence tiebreak.
type memorySink struct{ camp *Campaign }

func (ms *memorySink) syslog(_ time.Time, m *syslog.Message) {
	ms.camp.Syslog = append(ms.camp.Syslog, m)
}

func (ms *memorySink) lsp(now time.Time, wire []byte) {
	// Capture files carry millisecond resolution; quantize so the
	// on-disk form is lossless.
	ms.camp.LSPLog = append(ms.camp.LSPLog, CapturedLSP{Time: now.Truncate(time.Millisecond), Data: wire})
}

func (ms *memorySink) finish() error {
	camp := ms.camp
	sort.SliceStable(camp.Syslog, func(i, j int) bool {
		return camp.Syslog[i].Timestamp.Before(camp.Syslog[j].Timestamp)
	})
	sort.SliceStable(camp.LSPLog, func(i, j int) bool {
		return camp.LSPLog[i].Time.Before(camp.LSPLog[j].Time)
	})
	return nil
}

// spillEntry is one syslog message waiting in the spill sink's
// reorder buffer.
type spillEntry struct {
	tsMs int64
	seq  int64 // delivery order, the equal-timestamp tiebreak
	m    *syslog.Message
}

// spillHeap is a hand-rolled min-heap over (tsMs, seq). A specialized
// heap keeps the per-message path free of the interface boxing
// container/heap would impose.
type spillHeap []spillEntry

func (h spillHeap) less(i, j int) bool {
	if h[i].tsMs != h[j].tsMs {
		return h[i].tsMs < h[j].tsMs
	}
	return h[i].seq < h[j].seq
}

//netfail:hotpath
func (h *spillHeap) push(e spillEntry) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

//netfail:hotpath
func (h *spillHeap) pop() spillEntry {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = spillEntry{}
	q = q[:last]
	*h = q
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < len(q) && q.less(left, smallest) {
			smallest = left
		}
		if right < len(q) && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}

// spillSink streams both observation channels to one capture shard
// with bounded memory. LSP captures already arrive in non-decreasing
// millisecond order and are framed immediately. Syslog messages carry
// timestamps up to the processing-delay horizon (~1s of simulated
// time) ahead of the scheduler, so a min-heap keyed (timestamp,
// delivery sequence) reorders them; an entry is framed only once the
// scheduler clock passes its millisecond, after which no
// earlier-stamped message can be delivered. Heap occupancy is bounded
// by that horizon's message volume, never the campaign's.
type spillSink struct {
	sw   *capture.ShardWriter
	heap spillHeap
	seq  int64
	buf  []byte // reused render buffer
	err  error  // first write error; surfaced by finish
}

//netfail:hotpath
func (sp *spillSink) syslog(now time.Time, m *syslog.Message) {
	sp.seq++
	sp.heap.push(spillEntry{tsMs: m.Timestamp.UnixMilli(), seq: sp.seq, m: m})
	sp.flush(now.UnixMilli())
}

// flush frames every buffered message stamped strictly before
// beforeMs. Messages stamped in the scheduler's current millisecond
// stay buffered: a later delivery could still share their stamp, and
// the sequence tiebreak only orders entries that meet in the heap.
//
//netfail:hotpath
func (sp *spillSink) flush(beforeMs int64) {
	for sp.err == nil && len(sp.heap) > 0 && sp.heap[0].tsMs < beforeMs {
		e := sp.heap.pop()
		sp.buf = e.m.AppendRender(sp.buf[:0])
		sp.err = sp.sw.AppendSyslog(e.tsMs, sp.buf)
	}
}

//netfail:hotpath
func (sp *spillSink) lsp(now time.Time, wire []byte) {
	if sp.err != nil {
		return
	}
	sp.err = sp.sw.AppendLSP(now.Truncate(time.Millisecond).UnixMilli(), wire)
}

func (sp *spillSink) finish() error {
	sp.flush(math.MaxInt64)
	return sp.err
}
