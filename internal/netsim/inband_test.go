package netsim

import (
	"context"
	"testing"
	"time"

	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// inbandConfig builds a fragile chain-heavy topology where isolations
// are common, with and without the in-band transport model.
func inbandConfig(seed int64, inband bool) Config {
	return Config{
		Seed: seed,
		Spec: topo.Spec{
			Seed: seed, CoreRouters: 8, CPERouters: 24, CoreChords: 1,
			DualHomedCPE: 1, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 1,
			Customers: 20, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
		InBandSyslog:    inband,
	}
}

func TestInBandSyslogLosesIsolatedRoutersMessages(t *testing.T) {
	without, err := Run(context.Background(), inbandConfig(3, false))
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(context.Background(), inbandConfig(3, true))
	if err != nil {
		t.Fatal(err)
	}
	// Same workload (same seed), same emissions; the in-band model
	// can only lose more.
	if with.Counts.SyslogSent != without.Counts.SyslogSent {
		t.Fatalf("sent differ: %d vs %d (workload must be identical)",
			with.Counts.SyslogSent, without.Counts.SyslogSent)
	}
	if with.Counts.SyslogReceived >= without.Counts.SyslogReceived {
		t.Errorf("in-band model did not lose messages: %d >= %d",
			with.Counts.SyslogReceived, without.Counts.SyslogReceived)
	}
	t.Logf("received: out-of-band %d, in-band %d (lost %d to partitions)",
		without.Counts.SyslogReceived, with.Counts.SyslogReceived,
		without.Counts.SyslogReceived-with.Counts.SyslogReceived)
}

func TestInBandSyslogBiasesAgainstCPEDowns(t *testing.T) {
	with, err := Run(context.Background(), inbandConfig(4, true))
	if err != nil {
		t.Fatal(err)
	}
	// Down messages from CPE routers (the side that gets cut off)
	// should be rarer than their Up counterparts, which are sent
	// after connectivity returns.
	var cpeDown, cpeUp int
	for _, m := range with.Syslog {
		ev, err := syslog.ParseLinkEvent(m)
		if err != nil || ev.Type != syslog.EventISISAdj {
			continue
		}
		r, ok := with.Network.Routers[ev.Router]
		if !ok || r.Class != topo.CPE {
			continue
		}
		if ev.Up {
			cpeUp++
		} else {
			cpeDown++
		}
	}
	if cpeDown == 0 || cpeUp == 0 {
		t.Fatal("no CPE adjacency messages")
	}
	t.Logf("CPE adjacency messages: %d down, %d up", cpeDown, cpeUp)
	if cpeDown >= cpeUp {
		t.Errorf("in-band loss should suppress CPE Down messages: down=%d up=%d", cpeDown, cpeUp)
	}
}

func TestInBandDeterministic(t *testing.T) {
	a, err := Run(context.Background(), inbandConfig(5, true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), inbandConfig(5, true))
	if err != nil {
		t.Fatal(err)
	}
	if a.Counts != b.Counts {
		t.Errorf("nondeterministic counts: %+v vs %+v", a.Counts, b.Counts)
	}
}
