package netsim

import (
	"sort"
	"time"

	"netfail/internal/topo"
)

// FailureCause classifies what took the link down, which controls
// which observation channels see the event.
type FailureCause int

const (
	// CauseProtocol is an IS-IS-level failure (hold-time expiry,
	// congestion, unidirectional loss): no physical media change, so
	// no %LINK syslog and no IP-reachability withdrawal.
	CauseProtocol FailureCause = iota
	// CausePhysical is a media failure (fiber cut, optics, power):
	// interface down, %LINK/%LINEPROTO syslog, and IP-reachability
	// withdrawal alongside the adjacency loss.
	CausePhysical
)

// String names the cause.
func (c FailureCause) String() string {
	if c == CausePhysical {
		return "physical"
	}
	return "protocol"
}

// GroundTruthFailure is one true outage interval: what actually
// happened, before either observation channel distorts it.
type GroundTruthFailure struct {
	Link   topo.LinkID
	Class  topo.LinkClass
	Start  time.Time
	End    time.Time
	Cause  FailureCause
	InFlap bool
}

// Duration returns the outage length.
func (f GroundTruthFailure) Duration() time.Duration { return f.End.Sub(f.Start) }

// ClassParams parameterizes the failure workload for one link class.
// Defaults are calibrated so the reconstructed statistics land in the
// bands of Table 5.
type ClassParams struct {
	// RateMedian and RateSigma describe the per-link annualized
	// failure count: each link draws its rate from a lognormal, which
	// produces the paper's heavy skew between median and mean links.
	// RateCap clamps pathological draws.
	RateMedian float64
	RateSigma  float64
	RateCap    float64

	// Duration mixture for non-flap failures.
	ShortWeight      float64 // probability of a 1 s – ShortMax failure
	ShortMax         time.Duration
	MediumMedian     time.Duration // lognormal body
	MediumSigma      float64
	LongWeight       float64 // probability of a LongMin–LongMax failure
	LongMin, LongMax time.Duration

	// Flapping: an arrival becomes a flap episode with FlapProb,
	// adding a geometric number of extra short failures separated by
	// sub-10-minute gaps.
	FlapProb      float64
	FlapMeanExtra float64
	FlapGapMax    time.Duration
	FlapDurMax    time.Duration

	// PhysicalFraction is the probability a failure is media-caused.
	PhysicalFraction float64
}

// WorkloadParams carries per-class parameters.
type WorkloadParams struct {
	Core ClassParams
	CPE  ClassParams
	// StableRateFactor and StableFlapFactor damp the failure rate
	// and flap probability of critical sole-uplink links (small
	// stable tail sites; see topo.Network.CriticalUplinks).
	StableRateFactor float64
	StableFlapFactor float64
	// MaintenancePerRouterYear, when positive, schedules router-wide
	// maintenance events: every link of the router fails
	// simultaneously for a MaintenanceMin-MaintenanceMax window.
	// These shared-risk events are what make multi-homed customers
	// isolable. Off by default (the calibrated per-link workload
	// already matches Table 5).
	MaintenancePerRouterYear float64
	MaintenanceMin           time.Duration
	MaintenanceMax           time.Duration
}

// DefaultWorkload returns parameters calibrated against Table 5.
func DefaultWorkload() WorkloadParams {
	return WorkloadParams{
		StableRateFactor: 0.35,
		StableFlapFactor: 0.15,
		Core: ClassParams{
			RateMedian: 6.6, RateSigma: 1.3, RateCap: 250,
			ShortWeight: 0.30, ShortMax: 20 * time.Second,
			MediumMedian: 90 * time.Second, MediumSigma: 1.9,
			LongWeight: 0.08, LongMin: 30 * time.Minute, LongMax: 16 * time.Hour,
			FlapProb: 0.12, FlapMeanExtra: 4,
			FlapGapMax: 8 * time.Minute, FlapDurMax: 60 * time.Second,
			PhysicalFraction: 0.33,
		},
		CPE: ClassParams{
			RateMedian: 15.0, RateSigma: 1.6, RateCap: 900,
			ShortWeight: 0.45, ShortMax: 15 * time.Second,
			MediumMedian: 45 * time.Second, MediumSigma: 1.5,
			LongWeight: 0.06, LongMin: 20 * time.Minute, LongMax: 20 * time.Hour,
			FlapProb: 0.16, FlapMeanExtra: 5,
			FlapGapMax: 6 * time.Minute, FlapDurMax: 25 * time.Second,
			PhysicalFraction: 0.36,
		},
	}
}

// GenerateWorkload produces the campaign's ground-truth failure list
// over [start, end), sorted by start time. The rng must be dedicated
// to this call for determinism.
func GenerateWorkload(r *rng, net *topo.Network, params WorkloadParams, start, end time.Time) []GroundTruthFailure {
	var all []GroundTruthFailure
	span := end.Sub(start)
	years := span.Hours() / (365.25 * 24)
	critical := net.CriticalUplinks()

	// Router-wide maintenance first: its windows block the per-link
	// streams so the per-link no-overlap invariant holds.
	blocked := make(map[topo.LinkID][]GroundTruthFailure)
	if params.MaintenancePerRouterYear > 0 {
		maintRNG := r.fork()
		meanGap := time.Duration(float64(365.25*24*time.Hour) / params.MaintenancePerRouterYear)
		lo, hi := params.MaintenanceMin, params.MaintenanceMax
		if lo <= 0 {
			lo = 30 * time.Minute
		}
		if hi <= lo {
			hi = lo + 3*time.Hour
		}
		for _, name := range net.RouterNames {
			router := net.Routers[name]
			t := start.Add(maintRNG.expDur(meanGap))
			for t.Before(end) {
				dur := lo + maintRNG.uniformDur(0, hi-lo)
				for _, ifc := range router.Interfaces {
					link, ok := net.LinkByID(ifc.Link)
					if !ok {
						continue
					}
					f := GroundTruthFailure{
						Link:  link.ID,
						Class: link.Class,
						Start: t,
						End:   t.Add(dur),
						Cause: CausePhysical,
					}
					if f.End.After(end) {
						f.End = end
					}
					if f.End.After(f.Start) && !overlapsAny(f, blocked[link.ID]) {
						blocked[link.ID] = append(blocked[link.ID], f)
						all = append(all, f)
					}
				}
				t = t.Add(dur + maintRNG.expDur(meanGap))
			}
		}
	}

	for _, link := range net.Links {
		p := params.CPE
		if link.Class == topo.CoreLink {
			p = params.Core
		}
		if critical[link.ID] {
			if params.StableRateFactor > 0 {
				p.RateMedian *= params.StableRateFactor
			}
			if params.StableFlapFactor > 0 {
				p.FlapProb *= params.StableFlapFactor
			}
		}
		lr := r.fork()
		for _, f := range generateLinkFailures(lr, link, p, start, end, years) {
			if !overlapsAny(f, blocked[link.ID]) {
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].Start.Equal(all[j].Start) {
			return all[i].Start.Before(all[j].Start)
		}
		return all[i].Link < all[j].Link
	})
	return all
}

func generateLinkFailures(r *rng, link *topo.Link, p ClassParams, start, end time.Time, years float64) []GroundTruthFailure {
	rate := r.lognormal(p.RateMedian, p.RateSigma)
	if rate > p.RateCap {
		rate = p.RateCap
	}
	if rate < 0.2 {
		rate = 0.2
	}
	// rate counts failures; flap episodes bundle several per arrival.
	meanPerArrival := 1 + p.FlapProb*p.FlapMeanExtra
	arrivalsPerYear := rate / meanPerArrival
	meanGap := time.Duration(float64(365.25*24*time.Hour) / arrivalsPerYear)

	var out []GroundTruthFailure
	t := start.Add(r.expDur(meanGap))
	for t.Before(end) {
		flap := r.bernoulli(p.FlapProb)
		count := 1
		if flap {
			count += 1 + drawGeometric(r, p.FlapMeanExtra)
		}
		cur := t
		for i := 0; i < count && cur.Before(end); i++ {
			var dur time.Duration
			if flap {
				dur = time.Second + r.uniformDur(0, p.FlapDurMax)
			} else {
				dur = drawDuration(r, p)
			}
			f := GroundTruthFailure{
				Link:   link.ID,
				Class:  link.Class,
				Start:  cur,
				End:    cur.Add(dur),
				InFlap: flap,
			}
			if f.End.After(end) {
				f.End = end
			}
			if r.bernoulli(p.PhysicalFraction) {
				f.Cause = CausePhysical
			}
			if f.End.After(f.Start) {
				out = append(out, f)
			}
			cur = f.End.Add(10*time.Second + r.uniformDur(0, p.FlapGapMax))
		}
		t = cur.Add(r.expDur(meanGap))
	}
	return out
}

// drawDuration samples the non-flap duration mixture.
func drawDuration(r *rng, p ClassParams) time.Duration {
	u := r.Float64()
	switch {
	case u < p.ShortWeight:
		return time.Second + r.uniformDur(0, p.ShortMax-time.Second)
	case u < p.ShortWeight+p.LongWeight:
		return p.LongMin + r.uniformDur(0, p.LongMax-p.LongMin)
	default:
		d := r.lognormalDur(p.MediumMedian, p.MediumSigma)
		if d < time.Second {
			d = time.Second
		}
		if d > 24*time.Hour {
			d = 24 * time.Hour
		}
		return d
	}
}

// overlapsAny reports whether f intersects any failure in the list.
func overlapsAny(f GroundTruthFailure, list []GroundTruthFailure) bool {
	for _, b := range list {
		if f.Start.Before(b.End) && b.Start.Before(f.End) {
			return true
		}
	}
	return false
}

// drawGeometric samples a geometric-ish count with the given mean
// (number of extra flap failures beyond the first two).
func drawGeometric(r *rng, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean)
	n := 0
	for !r.bernoulli(p) && n < 60 {
		n++
	}
	return n
}
