package netsim

import (
	"sort"
	"testing"
	"time"

	"netfail/internal/topo"
)

func smallNet(t *testing.T) *topo.Network {
	t.Helper()
	spec := topo.Spec{
		Seed: 5, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
		DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
		Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
	}
	n, err := topo.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestWorkloadNoOverlapPerLink(t *testing.T) {
	n := smallNet(t)
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(400 * 24 * time.Hour)
	failures := GenerateWorkload(newRNG(1), n, DefaultWorkload(), start, end)
	last := make(map[topo.LinkID]time.Time)
	for _, f := range failures {
		if !f.End.After(f.Start) {
			t.Fatalf("empty failure %+v", f)
		}
		if f.Start.Before(start) || f.End.After(end) {
			t.Fatalf("failure outside window: %+v", f)
		}
		if prev, ok := last[f.Link]; ok && f.Start.Before(prev) {
			t.Fatalf("overlap on %s: starts %v before previous end %v", f.Link, f.Start, prev)
		}
		last[f.Link] = f.End
	}
	if len(failures) == 0 {
		t.Fatal("no failures generated")
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	n := smallNet(t)
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(100 * 24 * time.Hour)
	a := GenerateWorkload(newRNG(7), n, DefaultWorkload(), start, end)
	b := GenerateWorkload(newRNG(7), n, DefaultWorkload(), start, end)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("failure %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestWorkloadSortedByStart(t *testing.T) {
	n := smallNet(t)
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	failures := GenerateWorkload(newRNG(2), n, DefaultWorkload(), start, start.Add(200*24*time.Hour))
	for i := 1; i < len(failures); i++ {
		if failures[i].Start.Before(failures[i-1].Start) {
			t.Fatal("not sorted by start time")
		}
	}
}

func TestWorkloadHasFlapsAndCauses(t *testing.T) {
	n := smallNet(t)
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	failures := GenerateWorkload(newRNG(3), n, DefaultWorkload(), start, start.Add(400*24*time.Hour))
	var flaps, physical int
	for _, f := range failures {
		if f.InFlap {
			flaps++
		}
		if f.Cause == CausePhysical {
			physical++
		}
	}
	if flaps == 0 {
		t.Error("no flap failures")
	}
	if physical == 0 || physical == len(failures) {
		t.Errorf("physical = %d of %d", physical, len(failures))
	}
	frac := float64(physical) / float64(len(failures))
	if frac < 0.2 || frac > 0.55 {
		t.Errorf("physical fraction = %.2f, want ~1/3", frac)
	}
}

func TestWorkloadClassRates(t *testing.T) {
	// CPE links must fail substantially more often than Core links
	// per link (Table 5: median 12.3 vs 6.6 per year).
	n := smallNet(t)
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	failures := GenerateWorkload(newRNG(4), n, DefaultWorkload(), start, start.Add(400*24*time.Hour))
	perClass := map[topo.LinkClass]int{}
	for _, f := range failures {
		perClass[f.Class]++
	}
	coreLinks, cpeLinks := n.CountLinks()
	coreRate := float64(perClass[topo.CoreLink]) / float64(coreLinks)
	cpeRate := float64(perClass[topo.CPELink]) / float64(cpeLinks)
	if cpeRate <= coreRate {
		t.Errorf("per-link rates: core %.1f, cpe %.1f — CPE should exceed Core", coreRate, cpeRate)
	}
}

func TestDrawGeometricMean(t *testing.T) {
	r := newRNG(9)
	const trials = 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += drawGeometric(r, 4)
	}
	mean := float64(sum) / trials
	if mean < 3.4 || mean > 4.6 {
		t.Errorf("geometric mean = %.2f, want ~4", mean)
	}
	if drawGeometric(r, 0) != 0 {
		t.Error("zero mean should give zero")
	}
}

func TestRNGHelpers(t *testing.T) {
	r := newRNG(1)
	for i := 0; i < 1000; i++ {
		d := r.uniformDur(time.Second, 2*time.Second)
		if d < time.Second || d >= 2*time.Second {
			t.Fatalf("uniformDur out of range: %v", d)
		}
	}
	if r.uniformDur(time.Second, time.Second) != time.Second {
		t.Error("degenerate range should return lo")
	}
	// Lognormal median check.
	var above, below int
	for i := 0; i < 4000; i++ {
		if r.lognormalDur(time.Minute, 1.5) > time.Minute {
			above++
		} else {
			below++
		}
	}
	if above < 1700 || above > 2300 {
		t.Errorf("lognormal median off: %d above, %d below", above, below)
	}
}

func TestWorkloadMaintenanceSharedRisk(t *testing.T) {
	n := smallNet(t)
	start := time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(200 * 24 * time.Hour)
	params := DefaultWorkload()
	params.MaintenancePerRouterYear = 2
	failures := GenerateWorkload(newRNG(12), n, params, start, end)

	// No-overlap invariant must survive maintenance injection.
	byLink := make(map[topo.LinkID][]GroundTruthFailure)
	for _, f := range failures {
		byLink[f.Link] = append(byLink[f.Link], f)
	}
	for link, fs := range byLink {
		sort.Slice(fs, func(i, j int) bool { return fs[i].Start.Before(fs[j].Start) })
		for i := 1; i < len(fs); i++ {
			if fs[i].Start.Before(fs[i-1].End) {
				t.Fatalf("overlap on %s: %v < %v", link, fs[i].Start, fs[i-1].End)
			}
		}
	}

	// Shared risk: find a start time at which several links of one
	// router fail together.
	byStart := make(map[time.Time][]topo.LinkID)
	for _, f := range failures {
		byStart[f.Start] = append(byStart[f.Start], f.Link)
	}
	shared := 0
	for _, links := range byStart {
		if len(links) >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no shared-risk maintenance groups found")
	}

	// Without maintenance the same seed has no such groups.
	plain := GenerateWorkload(newRNG(12), n, DefaultWorkload(), start, end)
	byStart = make(map[time.Time][]topo.LinkID)
	for _, f := range plain {
		byStart[f.Start] = append(byStart[f.Start], f.Link)
	}
	for _, links := range byStart {
		if len(links) >= 2 {
			t.Fatal("plain workload has simultaneous multi-link starts")
		}
	}
}
