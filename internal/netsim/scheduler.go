package netsim

import (
	"container/heap"
	"context"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event executor.
type Scheduler struct {
	heap eventHeap
	now  time.Time
	seq  uint64
}

// NewScheduler creates a scheduler positioned at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current simulated time.
func (s *Scheduler) Now() time.Time { return s.now }

// At schedules fn at the given absolute time. Scheduling in the past
// is clamped to the current instant (runs next).
func (s *Scheduler) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.heap, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn after a delay from the current simulated time.
func (s *Scheduler) After(d time.Duration, fn func()) {
	s.At(s.now.Add(d), fn)
}

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// Run executes events in order until the queue empties or the clock
// passes end; events scheduled at or before end by running events are
// also executed. It returns the number of events executed.
func (s *Scheduler) Run(end time.Time) int {
	n, _ := s.RunCtx(context.Background(), end)
	return n
}

// cancelCheckInterval bounds cancellation latency without putting a
// ctx.Err() call (two atomic loads) on every event: a month-scale
// campaign executes hundreds of thousands of events in a few hundred
// milliseconds, so checking every 4096 keeps the response to a cancel
// well under a millisecond of simulated work.
const cancelCheckInterval = 4096

// RunCtx is Run with cancellation: it stops between events when ctx
// is canceled and returns ctx's error alongside the count executed so
// far. A canceled run leaves the scheduler mid-campaign; the caller
// discards the simulation.
func (s *Scheduler) RunCtx(ctx context.Context, end time.Time) (int, error) {
	executed := 0
	for len(s.heap) > 0 {
		if executed%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return executed, err
			}
		}
		next := s.heap[0]
		if next.at.After(end) {
			break
		}
		heap.Pop(&s.heap)
		s.now = next.at
		next.fn()
		executed++
	}
	if s.now.Before(end) {
		s.now = end
	}
	return executed, nil
}
