package netsim

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"netfail/internal/salvage"
	"netfail/internal/trace"
)

// WriteLSPLog serializes an LSP capture, one record per line:
// "<unix_ms> <hex bytes>". The format deliberately resembles the
// MRT-style dumps IGP listeners produce.
func WriteLSPLog(w io.Writer, log []CapturedLSP) error {
	bw := bufio.NewWriter(w)
	for _, c := range log {
		if _, err := fmt.Fprintf(bw, "%d %s\n", c.Time.UnixMilli(), hex.EncodeToString(c.Data)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLSPLog parses the WriteLSPLog format strictly: the first
// malformed line aborts the read with a line-accurate error.
func ReadLSPLog(r io.Reader) ([]CapturedLSP, error) {
	out, _, err := readLSPLog(r, true)
	return out, err
}

// ReadLSPLogLenient parses the WriteLSPLog format in salvage mode:
// malformed lines are skipped and accounted in the report instead of
// aborting the read. Bit-rotted payloads that still decode as hex are
// kept — the listener's decode-error accounting quarantines them
// downstream.
func ReadLSPLogLenient(r io.Reader) ([]CapturedLSP, *salvage.Report, error) {
	return readLSPLog(r, false)
}

func readLSPLog(r io.Reader, strict bool) ([]CapturedLSP, *salvage.Report, error) {
	var out []CapturedLSP
	rep := &salvage.Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	skip := func(reason string, detail error) error {
		if strict {
			if detail != nil {
				return fmt.Errorf("netsim: LSP log line %d: %s: %v", lineNo, reason, detail)
			}
			return fmt.Errorf("netsim: LSP log line %d: %s", lineNo, reason)
		}
		rep.Skip(lineNo, reason)
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			if err := skip("missing separator", nil); err != nil {
				return nil, nil, err
			}
			continue
		}
		ms, err := strconv.ParseInt(line[:sp], 10, 64)
		if err != nil {
			if err := skip("bad timestamp", err); err != nil {
				return nil, nil, err
			}
			continue
		}
		data, err := hex.DecodeString(line[sp+1:])
		if err != nil {
			if err := skip("bad payload", err); err != nil {
				return nil, nil, err
			}
			continue
		}
		out = append(out, CapturedLSP{Time: time.UnixMilli(ms).UTC(), Data: data})
		rep.Kept++
	}
	return out, rep, sc.Err()
}

// Manifest is the campaign metadata an analysis needs alongside the
// raw captures: the observation window and the listener-offline
// periods.
type Manifest struct {
	Seed            int64          `json:"seed"`
	Start           time.Time      `json:"start"`
	End             time.Time      `json:"end"`
	ListenerOffline []manifestSpan `json:"listener_offline"`
	Counts          Counts         `json:"counts"`
}

type manifestSpan struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// WriteManifest serializes the campaign metadata as JSON.
func (c *Campaign) WriteManifest(w io.Writer) error {
	m := Manifest{
		Seed:   c.Config.Seed,
		Start:  c.Config.Start,
		End:    c.Config.End,
		Counts: c.Counts,
	}
	for _, iv := range c.ListenerOffline {
		m.ListenerOffline = append(m.ListenerOffline, manifestSpan{Start: iv.Start, End: iv.End})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses a campaign manifest strictly.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("netsim: manifest: %w", err)
	}
	return &m, nil
}

// ReadManifestLenient parses a campaign manifest in salvage mode:
// garbage lines interleaved before or after the JSON object are
// skipped and accounted. The manifest itself is small and critical,
// so corruption inside the object stays fatal even here.
func ReadManifestLenient(r io.Reader) (*Manifest, *salvage.Report, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("netsim: manifest: %w", err)
	}
	rep := &salvage.Report{}
	start := bytes.IndexByte(raw, '{')
	if start < 0 {
		return nil, nil, fmt.Errorf("netsim: manifest: no JSON object found")
	}
	end := matchBrace(raw, start)
	if end < 0 {
		return nil, nil, fmt.Errorf("netsim: manifest: unterminated JSON object")
	}
	var m Manifest
	if err := json.Unmarshal(raw[start:end+1], &m); err != nil {
		return nil, nil, fmt.Errorf("netsim: manifest: %w", err)
	}
	rep.Kept = 1
	for _, lineNo := range garbageLines(raw, start, end) {
		rep.Skip(lineNo, "garbage around manifest object")
	}
	return &m, rep, nil
}

// matchBrace returns the index of the brace closing the object opened
// at start, honouring JSON string syntax, or -1.
func matchBrace(data []byte, start int) int {
	depth, inString, escaped := 0, false, false
	for i := start; i < len(data); i++ {
		c := data[i]
		if inString {
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			inString = true
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// garbageLines returns the 1-based line numbers of non-blank lines
// falling entirely outside data[start:end+1].
func garbageLines(data []byte, start, end int) []int {
	var out []int
	lineNo, lineStart := 0, 0
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != '\n' {
			continue
		}
		lineNo++
		line := bytes.TrimSpace(data[lineStart:i])
		if len(line) > 0 && (i <= start || lineStart > end) {
			out = append(out, lineNo)
		}
		lineStart = i + 1
	}
	return out
}

// Offline converts the manifest spans back to intervals.
func (m *Manifest) Offline() []trace.Interval {
	out := make([]trace.Interval, 0, len(m.ListenerOffline))
	for _, s := range m.ListenerOffline {
		out = append(out, trace.Interval{Start: s.Start, End: s.End})
	}
	return out
}

// GroundTruthFailures converts the campaign's ground truth to plain
// trace failures (for ticket generation).
func (c *Campaign) GroundTruthFailures() []trace.Failure {
	out := make([]trace.Failure, 0, len(c.GroundTruth))
	for _, f := range c.GroundTruth {
		out = append(out, trace.Failure{Link: f.Link, Start: f.Start, End: f.End})
	}
	return out
}
