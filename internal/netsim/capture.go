package netsim

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"netfail/internal/trace"
)

// WriteLSPLog serializes an LSP capture, one record per line:
// "<unix_ms> <hex bytes>". The format deliberately resembles the
// MRT-style dumps IGP listeners produce.
func WriteLSPLog(w io.Writer, log []CapturedLSP) error {
	bw := bufio.NewWriter(w)
	for _, c := range log {
		if _, err := fmt.Fprintf(bw, "%d %s\n", c.Time.UnixMilli(), hex.EncodeToString(c.Data)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLSPLog parses the WriteLSPLog format.
func ReadLSPLog(r io.Reader) ([]CapturedLSP, error) {
	var out []CapturedLSP
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("netsim: LSP log line %d: missing separator", lineNo)
		}
		ms, err := strconv.ParseInt(line[:sp], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("netsim: LSP log line %d: bad timestamp: %v", lineNo, err)
		}
		data, err := hex.DecodeString(line[sp+1:])
		if err != nil {
			return nil, fmt.Errorf("netsim: LSP log line %d: bad payload: %v", lineNo, err)
		}
		out = append(out, CapturedLSP{Time: time.UnixMilli(ms).UTC(), Data: data})
	}
	return out, sc.Err()
}

// Manifest is the campaign metadata an analysis needs alongside the
// raw captures: the observation window and the listener-offline
// periods.
type Manifest struct {
	Seed            int64          `json:"seed"`
	Start           time.Time      `json:"start"`
	End             time.Time      `json:"end"`
	ListenerOffline []manifestSpan `json:"listener_offline"`
	Counts          Counts         `json:"counts"`
}

type manifestSpan struct {
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// WriteManifest serializes the campaign metadata as JSON.
func (c *Campaign) WriteManifest(w io.Writer) error {
	m := Manifest{
		Seed:   c.Config.Seed,
		Start:  c.Config.Start,
		End:    c.Config.End,
		Counts: c.Counts,
	}
	for _, iv := range c.ListenerOffline {
		m.ListenerOffline = append(m.ListenerOffline, manifestSpan{Start: iv.Start, End: iv.End})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadManifest parses a campaign manifest.
func ReadManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("netsim: manifest: %w", err)
	}
	return &m, nil
}

// Offline converts the manifest spans back to intervals.
func (m *Manifest) Offline() []trace.Interval {
	out := make([]trace.Interval, 0, len(m.ListenerOffline))
	for _, s := range m.ListenerOffline {
		out = append(out, trace.Interval{Start: s.Start, End: s.End})
	}
	return out
}

// GroundTruthFailures converts the campaign's ground truth to plain
// trace failures (for ticket generation).
func (c *Campaign) GroundTruthFailures() []trace.Failure {
	out := make([]trace.Failure, 0, len(c.GroundTruth))
	for _, f := range c.GroundTruth {
		out = append(out, trace.Failure{Link: f.Link, Start: f.Start, End: f.End})
	}
	return out
}
