package netsim

import (
	"context"
	"fmt"
	"time"

	"netfail/internal/config"
	"netfail/internal/device"
	"netfail/internal/obs"
	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// RefreshMode controls how periodic LSP refreshes (the bulk of the
// 11 M updates in Table 1) are handled.
type RefreshMode int

const (
	// RefreshCounted computes the refresh volume analytically and
	// only materializes content-bearing LSPs. The default: identical
	// analysis results at a fraction of the cost.
	RefreshCounted RefreshMode = iota
	// RefreshFull schedules every periodic refresh as a real event
	// and delivers the re-encoded LSP to the listener capture.
	RefreshFull
)

// Config parameterizes a simulation campaign.
type Config struct {
	Seed int64
	// Spec shapes the network; zero value means topo.DefaultSpec.
	Spec topo.Spec
	// Start and End bound the observation window. Zero values mean
	// the paper's study period (Oct 20 2010 – Nov 11 2011).
	Start, End time.Time
	// Workload and Impair default to the calibrated models when zero.
	Workload *WorkloadParams
	Impair   *ImpairParams
	// ListenerOffline lists windows during which the IS-IS listener
	// recorded nothing. Nil means the default two maintenance
	// windows.
	ListenerOffline []trace.Interval
	// RefreshMode and RefreshInterval control periodic LSP refresh.
	RefreshMode     RefreshMode
	RefreshInterval time.Duration
	// EnableLinkIDs turns on the RFC 5307 link-identifier sub-TLVs
	// on every device: the paper's footnote-1 extension that makes
	// multi-link adjacencies differentiable. Off by default to match
	// the CENIC deployment.
	EnableLinkIDs bool
	// InBandSyslog models syslog's in-band transport mechanistically:
	// a message is lost outright when its router has no path to the
	// collector at emission time (the collector sits on the first
	// core router). Off by default — the calibrated blackout model
	// already absorbs this effect statistically.
	InBandSyslog bool
}

// StudyStart and StudyEnd are the paper's measurement period.
var (
	StudyStart = time.Date(2010, time.October, 20, 0, 0, 0, 0, time.UTC)
	StudyEnd   = time.Date(2011, time.November, 11, 0, 0, 0, 0, time.UTC)
)

func (c *Config) fillDefaults() {
	if c.Spec.CoreRouters == 0 {
		c.Spec = topo.DefaultSpec()
		c.Spec.Seed = c.Seed
	}
	if c.Start.IsZero() {
		c.Start = StudyStart
	}
	if c.End.IsZero() {
		c.End = StudyEnd
	}
	if c.Workload == nil {
		w := DefaultWorkload()
		c.Workload = &w
	}
	if c.Impair == nil {
		im := DefaultImpairments()
		c.Impair = &im
	}
	if c.ListenerOffline == nil {
		c.ListenerOffline = []trace.Interval{
			{Start: c.Start.Add(80 * 24 * time.Hour), End: c.Start.Add(80*24*time.Hour + 30*time.Hour)},
			{Start: c.Start.Add(240 * 24 * time.Hour), End: c.Start.Add(240*24*time.Hour + 52*time.Hour)},
		}
	}
	if c.RefreshInterval == 0 {
		c.RefreshInterval = 15 * time.Minute
	}
}

// CapturedLSP is one LSP as the listener's capture file records it:
// arrival time plus raw wire bytes.
type CapturedLSP struct {
	Time time.Time
	Data []byte
}

// Counts summarizes campaign volume for Table 1.
type Counts struct {
	// SyslogReceived is the number of messages that survived to the
	// collector; SyslogSent the number emitted by devices.
	SyslogReceived int
	SyslogSent     int
	// LSPUpdates counts all LSP receptions at the listener,
	// including periodic refreshes (analytic under RefreshCounted).
	LSPUpdates int
	// ContentLSPs counts LSPs that carried a state change.
	ContentLSPs int
	// GroundTruthFailures is the number of true outages injected.
	GroundTruthFailures int
}

// Campaign is everything a simulation run produces: the raw captures
// the analysis pipelines consume, plus ground truth for calibration.
type Campaign struct {
	Config  Config
	Network *topo.Network
	// Archive is the router-config archive for mining.
	Archive *config.Archive
	// Syslog is the collector's received message log, time-ordered.
	Syslog []*syslog.Message
	// LSPLog is the listener's capture, time-ordered. Empty spans
	// correspond to ListenerOffline windows.
	LSPLog []CapturedLSP
	// GroundTruth is the injected failure list (not available to a
	// real analyst; used for tickets and calibration tests).
	GroundTruth []GroundTruthFailure
	// ListenerOffline echoes the windows for sanitization.
	ListenerOffline []trace.Interval
	Counts          Counts
}

// Run executes a campaign. Cancellation is checked between scheduler
// events; a canceled run returns ctx's error and no campaign.
// Observability attached to ctx (obs package) traces the simulation
// phases without affecting the generated captures.
func Run(ctx context.Context, cfg Config) (*Campaign, error) {
	return run(ctx, cfg, nil, newMemorySink, false)
}

// newMemorySink is Run's sink factory: classic in-RAM captures.
func newMemorySink(camp *Campaign) (eventSink, error) {
	return &memorySink{camp: camp}, nil
}

// run is the campaign engine behind Run and the spill variants: the
// sink is the only degree of freedom, so every capture target replays
// the identical RNG streams and event schedule. net overrides
// topology generation when non-nil (the sharded runner pre-generates
// per-domain networks); skipArchive elides the config archive for
// per-domain runs whose caller builds one combined archive instead.
func run(ctx context.Context, cfg Config, net *topo.Network, mkSink func(*Campaign) (eventSink, error), skipArchive bool) (*Campaign, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("netsim: empty observation window")
	}
	ctx, done := obs.Stage(ctx, "simulate")
	defer done()

	if net == nil {
		_, topoSpan := obs.StartSpan(ctx, "topology")
		var err error
		net, err = topo.Generate(cfg.Spec)
		topoSpan.End()
		if err != nil {
			return nil, err
		}
	}
	root := newRNG(cfg.Seed)
	workRNG := root.fork()
	impairRNG := root.fork()

	_, cfgSpan := obs.StartSpan(ctx, "configs")
	camp := &Campaign{
		Config:          cfg,
		Network:         net,
		ListenerOffline: cfg.ListenerOffline,
	}
	if !skipArchive {
		camp.Archive = config.GenerateArchive(net, cfg.Start.Add(-24*time.Hour), cfg.End, 7*24*time.Hour)
	}
	cfgSpan.End()
	_, wlSpan := obs.StartSpan(ctx, "workload")
	camp.GroundTruth = GenerateWorkload(workRNG, net, *cfg.Workload, cfg.Start, cfg.End)
	wlSpan.End()
	camp.Counts.GroundTruthFailures = len(camp.GroundTruth)

	sink, err := mkSink(camp)
	if err != nil {
		return nil, err
	}
	sim := &simulation{
		cfg:     cfg,
		net:     net,
		camp:    camp,
		sink:    sink,
		rng:     impairRNG,
		sched:   NewScheduler(cfg.Start),
		devices: make(map[string]*device.Router, len(net.RouterNames)),
	}
	if cfg.InBandSyslog {
		sim.graph = topo.NewGraph(net)
		sim.collectorHost = net.RouterNames[0]
		sim.gtDown = make(map[topo.LinkID]int)
		sim.reachCache = make(map[string]bool)
	}
	if cfg.Impair.RateLimitPerMin > 0 {
		sim.buckets = make(map[string]*tokenBucket)
	}
	for _, name := range net.RouterNames {
		r := net.Routers[name]
		dialect := syslog.DialectIOS
		if r.Class == topo.Core {
			dialect = syslog.DialectIOSXR
		}
		d := device.New(net, r, dialect)
		d.LinkIDCapable = cfg.EnableLinkIDs
		sim.devices[name] = d
	}

	// Initial database sync: when the listener joins the IS-IS
	// network it receives every router's current LSP via CSNP
	// exchange, establishing its baseline. The same resync happens
	// whenever the listener returns from an offline window.
	sim.scheduleSync(cfg.Start)
	for _, w := range cfg.ListenerOffline {
		sim.scheduleSync(w.End)
	}
	sim.scheduleFailures()
	sim.schedulePseudoFailures()
	sim.scheduleBlips()
	sim.scheduleNoise()
	if cfg.RefreshMode == RefreshFull {
		sim.scheduleRefreshes()
	}
	ectx, evSpan := obs.StartSpan(ctx, "events")
	executed, err := sim.sched.RunCtx(ectx, cfg.End)
	evSpan.Add("events", int64(executed))
	evSpan.End()
	if err != nil {
		return nil, err
	}

	if err := sink.finish(); err != nil {
		return nil, err
	}
	if cfg.RefreshMode == RefreshCounted {
		camp.Counts.LSPUpdates = camp.Counts.ContentLSPs + sim.analyticRefreshCount()
	}
	obs.Add(ctx, "sim.syslog.sent", int64(camp.Counts.SyslogSent))
	obs.Add(ctx, "sim.syslog.received", int64(camp.Counts.SyslogReceived))
	obs.Add(ctx, "sim.lsps.content", int64(camp.Counts.ContentLSPs))
	obs.Add(ctx, "sim.failures.injected", int64(camp.Counts.GroundTruthFailures))
	return camp, nil
}

// simulation carries the mutable run state.
type simulation struct {
	cfg     Config
	net     *topo.Network
	camp    *Campaign
	sink    eventSink
	rng     *rng
	sched   *Scheduler
	devices map[string]*device.Router

	// In-band syslog state: the graph, collector host, current
	// ground-truth down set, and a memoized reachability view that
	// is invalidated whenever the down set changes.
	graph         *topo.Graph
	collectorHost string
	gtDown        map[topo.LinkID]int
	reachCache    map[string]bool
	reachDirty    bool

	// Per-device syslog rate-limit buckets (Cisco "logging
	// rate-limit"), active when RateLimitPerMin > 0.
	buckets map[string]*tokenBucket
}

// tokenBucket is the per-device rate limiter state.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// rateLimited consumes one token from host's bucket, refilling by
// elapsed simulated time; it reports true when the message must be
// dropped at the source.
func (s *simulation) rateLimited(host string, at time.Time) bool {
	im := s.cfg.Impair
	if im.RateLimitPerMin <= 0 {
		return false
	}
	burst := float64(im.RateLimitBurst)
	if burst < 1 {
		burst = 1
	}
	b := s.buckets[host]
	if b == nil {
		b = &tokenBucket{tokens: burst, last: at}
		s.buckets[host] = b
	}
	if at.After(b.last) {
		b.tokens += at.Sub(b.last).Minutes() * im.RateLimitPerMin
		if b.tokens > burst {
			b.tokens = burst
		}
		b.last = at
	}
	if b.tokens < 1 {
		return true
	}
	b.tokens--
	return false
}

// linkStateChanged records a ground-truth link edge for the in-band
// transport model.
func (s *simulation) linkStateChanged(link topo.LinkID, down bool) {
	if !s.cfg.InBandSyslog {
		return
	}
	if down {
		s.gtDown[link]++
	} else {
		s.gtDown[link]--
		if s.gtDown[link] <= 0 {
			delete(s.gtDown, link)
		}
	}
	s.reachDirty = true
}

// collectorReachable reports whether host currently has a path to the
// collector.
func (s *simulation) collectorReachable(host string) bool {
	if !s.cfg.InBandSyslog {
		return true
	}
	if s.reachDirty {
		s.reachCache = make(map[string]bool, len(s.net.RouterNames))
		s.reachDirty = false
	}
	if v, ok := s.reachCache[host]; ok {
		return v
	}
	down := make(map[topo.LinkID]bool, len(s.gtDown))
	for l := range s.gtDown {
		down[l] = true
	}
	v := s.graph.Reachable(host, s.collectorHost, down)
	s.reachCache[host] = v
	return v
}

// endpoints returns the two devices terminating a link.
func (s *simulation) endpoints(id topo.LinkID) (*device.Router, *device.Router) {
	l, _ := s.net.LinkByID(id)
	return s.devices[l.A.Host], s.devices[l.B.Host]
}

// listenerOnline reports whether the listener records at t.
func (s *simulation) listenerOnline(t time.Time) bool {
	for _, w := range s.camp.ListenerOffline {
		if w.Contains(t) {
			return false
		}
	}
	return true
}

// deliverLSP floods a device's current LSP to the listener.
func (s *simulation) deliverLSP(d *device.Router, content bool) {
	lsp := d.OriginateLSP()
	wire, err := lsp.Encode()
	if err != nil {
		panic(fmt.Sprintf("netsim: encoding LSP for %s: %v", d.Info.Name, err))
	}
	arrive := s.sched.Now().Add(s.rng.uniformDur(0, s.cfg.Impair.FloodDelayMax))
	s.sched.At(arrive, func() {
		if !s.listenerOnline(s.sched.Now()) {
			return
		}
		if content {
			s.camp.Counts.ContentLSPs++
		}
		s.camp.Counts.LSPUpdates++
		if content || s.cfg.RefreshMode == RefreshFull {
			s.sink.lsp(s.sched.Now(), wire)
		}
	})
}

// emitSyslog sends a message through the lossy transport. Under the
// in-band model a message from a router with no path to the collector
// never arrives, regardless of the loss draw.
func (s *simulation) emitSyslog(m *syslog.Message, lossProb float64) {
	s.camp.Counts.SyslogSent++
	// Draw the loss regardless of reachability so the in-band model
	// perturbs only delivery, never the random stream (identical
	// seeds must replay the identical workload either way).
	lost := s.rng.bernoulli(lossProb)
	if s.rateLimited(m.Hostname, m.Timestamp) {
		return
	}
	if !s.collectorReachable(m.Hostname) {
		return
	}
	if lost {
		return
	}
	s.camp.Counts.SyslogReceived++
	s.sink.syslog(s.sched.Now(), m)
}

// lossProb returns the applicable loss probability.
func (s *simulation) lossProb(inFlap bool) float64 {
	if inFlap {
		return s.cfg.Impair.LossFlap
	}
	return s.cfg.Impair.LossBase
}

// scheduleFailures drives every ground-truth failure through both
// observation channels.
func (s *simulation) scheduleFailures() {
	for i := range s.camp.GroundTruth {
		f := s.camp.GroundTruth[i]
		s.sched.At(f.Start, func() { s.failLink(f) })
	}
}

// failLink plays out one failure: detection, LSP origination, syslog
// emission, recovery.
func (s *simulation) failLink(f GroundTruthFailure) {
	im := s.cfg.Impair
	devA, devB := s.endpoints(f.Link)
	loss := s.lossProb(f.InFlap)

	// Correlated loss: the failure's entire syslog footprint may be
	// blacked out (§4.1-style burst loss).
	blackoutProb := im.BlackoutBase
	if f.InFlap {
		blackoutProb = im.BlackoutFlap
	} else if im.LongFailureCutoff > 0 && f.Duration() > im.LongFailureCutoff {
		blackoutProb = im.BlackoutLong
	}
	blackout := s.rng.bernoulli(blackoutProb)
	if blackout {
		loss = 1
	}
	// Onset burst loss: only the Down messages are swallowed.
	downLoss := loss
	if !blackout && s.rng.bernoulli(im.DownBlackoutProb) {
		downLoss = 1
	}

	// The whole failure may be invisible to the listener: sub-second
	// resets can come and go before LSP generation fires.
	suppressLSP := f.Duration() < im.LSPSuppressShort && s.rng.bernoulli(im.LSPSuppressProb)

	// Ground truth for the in-band transport model.
	s.linkStateChanged(f.Link, true)

	// Physical-cause failures take the interface down: %LINK and
	// %LINEPROTO messages immediately, IP-reachability withdrawal
	// after the LSP-generation backoff. A blip shorter than the
	// backoff never withdraws the prefix at all.
	if f.Cause == CausePhysical {
		ipDelay := s.rng.uniformDur(0, im.IPWithdrawDelayMax)
		withdraw := ipDelay < f.Duration()
		for _, d := range [2]*device.Router{devA, devB} {
			d := d
			at := s.sched.Now().Add(s.rng.uniformDur(0, 300*time.Millisecond))
			s.sched.At(at, func() {
				msgs, err := d.LinkMessages(s.sched.Now(), f.Link, false)
				if err == nil {
					for _, m := range msgs {
						s.emitSyslog(m, loss)
					}
				}
			})
			if withdraw {
				jitter := s.rng.uniformDur(0, time.Second)
				s.sched.At(f.Start.Add(ipDelay+jitter), func() {
					if d.SetPhysical(f.Link, false) && !suppressLSP {
						s.deliverLSP(d, true)
					}
				})
			}
		}
	}

	// Adjacency-down detection per endpoint.
	slow := f.Cause == CausePhysical && s.rng.bernoulli(im.SlowDetectProb)
	var base time.Duration
	if slow {
		base = im.HoldExpiryMin + s.rng.uniformDur(0, im.HoldExpiryMax-im.HoldExpiryMin)
	} else {
		base = s.rng.uniformDur(0, im.DetectFastMax)
	}
	reason := "hold time expired"
	if f.Cause == CausePhysical {
		reason = "interface state change"
	}
	for i, d := range [2]*device.Router{devA, devB} {
		d := d
		detect := base
		if i == 1 {
			detect += s.rng.uniformDur(0, im.EndpointSkew)
		}
		// Detection cannot outlive the failure for flap blips; clamp
		// so Down precedes the recovery.
		if detect >= f.Duration() {
			detect = f.Duration() * 3 / 4
		}
		s.sched.At(f.Start.Add(detect), func() {
			if !d.SetAdjacency(f.Link, false) {
				return
			}
			emit := s.sched.Now().Add(s.rng.uniformDur(0, im.ProcDelayMax))
			msg, err := d.AdjMessage(emit, f.Link, false, reason)
			if err == nil {
				s.emitSyslog(msg, downLoss)
			}
			if !suppressLSP {
				s.deliverLSP(d, true)
			}
		})
	}

	// Spurious retransmission of the Down during the failure.
	if s.rng.bernoulli(im.SpuriousDownProb) && f.Duration() > 4*time.Second {
		d := devA
		if s.rng.bernoulli(0.5) {
			d = devB
		}
		at := f.Start.Add(f.Duration()/2 + s.rng.uniformDur(0, f.Duration()/4))
		s.sched.At(at, func() {
			msg, err := d.AdjMessage(s.sched.Now(), f.Link, false, reason)
			if err == nil {
				s.emitSyslog(msg, loss)
			}
		})
	}

	s.sched.At(f.End, func() { s.recoverLink(f, suppressLSP, blackout) })
}

// recoverLink plays out the end of a failure.
func (s *simulation) recoverLink(f GroundTruthFailure, suppressLSP, blackout bool) {
	im := s.cfg.Impair
	s.linkStateChanged(f.Link, false)
	devA, devB := s.endpoints(f.Link)
	loss := s.lossProb(f.InFlap)
	if blackout {
		loss = 1
	}

	if f.Cause == CausePhysical {
		for _, d := range [2]*device.Router{devA, devB} {
			d := d
			at := s.sched.Now().Add(s.rng.uniformDur(0, 300*time.Millisecond))
			s.sched.At(at, func() {
				msgs, err := d.LinkMessages(s.sched.Now(), f.Link, true)
				if err == nil {
					for _, m := range msgs {
						s.emitSyslog(m, loss)
					}
				}
			})
			// IP reachability returns once the interface is up,
			// usually ahead of the adjacency handshake.
			ipAt := s.sched.Now().Add(s.rng.uniformDur(0, im.IPRestoreMax))
			s.sched.At(ipAt, func() {
				if d.SetPhysical(f.Link, true) && !suppressLSP {
					s.deliverLSP(d, true)
				}
			})
		}
	}

	// Adjacency restoration: three-way handshake, endpoint-skewed.
	// During flapping the adjacency bounces quickly; otherwise the
	// full handshake delay applies.
	var first, skew time.Duration
	if f.InFlap {
		first = s.rng.uniformDur(500*time.Millisecond, 2500*time.Millisecond)
		skew = s.rng.uniformDur(0, 2*time.Second)
	} else {
		first = im.AdjRestoreMin + s.rng.uniformDur(0, im.AdjRestoreMax-im.AdjRestoreMin)
		skew = s.rng.uniformDur(0, im.RestoreSkewMax)
	}
	order := [2]*device.Router{devA, devB}
	if s.rng.bernoulli(0.5) {
		order[0], order[1] = order[1], order[0]
	}
	for i, d := range order {
		d := d
		delay := first
		if i == 1 {
			delay += skew
		}
		s.sched.At(f.End.Add(delay), func() {
			if !d.SetAdjacency(f.Link, true) {
				return
			}
			emit := s.sched.Now().Add(s.rng.uniformDur(0, im.ProcDelayMax))
			msg, err := d.AdjMessage(emit, f.Link, true, "new adjacency")
			if err == nil {
				s.emitSyslog(msg, loss)
			}
			if !suppressLSP {
				s.deliverLSP(d, true)
			}
		})
	}

	// Redundant Up after recovery.
	if s.rng.bernoulli(im.SpuriousUpProb) {
		d := order[0]
		at := f.End.Add(first + skew + time.Second + s.rng.uniformDur(0, time.Minute))
		s.sched.At(at, func() {
			msg, err := d.AdjMessage(s.sched.Now(), f.Link, true, "new adjacency")
			if err == nil {
				s.emitSyslog(msg, loss)
			}
		})
	}

	// Adjacency-reset pseudo-failure trailing a real failure.
	afterProb := im.PseudoAfterNonFlap
	if f.InFlap {
		afterProb = im.PseudoAfterFlap
	}
	if s.rng.bernoulli(afterProb) {
		at := f.End.Add(first + skew + 2*time.Second + s.rng.uniformDur(0, 5*time.Second))
		s.sched.At(at, func() { s.pseudoFailure(f.Link, "adjacency reset", f.InFlap) })
	}
}

// pseudoFailure emits a syslog-only Down/Up blip with no LSP: an
// aborted handshake or adjacency reset.
func (s *simulation) pseudoFailure(link topo.LinkID, reason string, inFlap bool) {
	devA, devB := s.endpoints(link)
	d := devA
	if s.rng.bernoulli(0.5) {
		d = devB
	}
	// Resets are local control-plane events, not burst load: their
	// messages are rarely lost. (An orphaned half of this pair shows
	// up as an unexplained repeated transition.)
	loss := s.lossProb(inFlap) * 0.3
	now := s.sched.Now()
	down, err := d.AdjMessage(now, link, false, reason)
	if err != nil {
		return
	}
	s.emitSyslog(down, loss)
	up, err := d.AdjMessage(now.Add(time.Duration(1+s.rng.Intn(999))*time.Millisecond), link, true, "new adjacency")
	if err != nil {
		return
	}
	s.emitSyslog(up, loss)
}

// schedulePseudoFailures spreads background reset blips over every
// link (failure-correlated resets are scheduled from recoverLink).
func (s *simulation) schedulePseudoFailures() {
	im := s.cfg.Impair
	for _, link := range s.net.Links {
		rate := im.PseudoBackgroundPerYear
		if rate <= 0 {
			continue
		}
		meanGap := time.Duration(float64(365.25*24*time.Hour) / rate)
		id := link.ID
		lr := s.rng.fork()
		t := s.cfg.Start.Add(lr.expDur(meanGap))
		for t.Before(s.cfg.End) {
			at := t
			reason := "three-way handshake aborted"
			if lr.bernoulli(0.4) {
				reason = "adjacency reset"
			}
			rsn := reason
			s.sched.At(at, func() { s.pseudoFailure(id, rsn, false) })
			t = t.Add(lr.expDur(meanGap))
		}
	}
}

// blip plays a carrier bounce shorter than the hold time: physical
// messages and prefix withdrawal, no adjacency change.
func (s *simulation) blip(link topo.LinkID, dur time.Duration) {
	im := s.cfg.Impair
	devA, devB := s.endpoints(link)
	start := s.sched.Now()
	ipDelay := 2*time.Second + s.rng.uniformDur(0, 13*time.Second)
	for _, d := range [2]*device.Router{devA, devB} {
		d := d
		at := start.Add(s.rng.uniformDur(0, 300*time.Millisecond))
		s.sched.At(at, func() {
			if msgs, err := d.LinkMessages(s.sched.Now(), link, false); err == nil {
				for _, m := range msgs {
					s.emitSyslog(m, im.LossBase)
				}
			}
		})
		if ipDelay < dur {
			s.sched.At(start.Add(ipDelay+s.rng.uniformDur(0, time.Second)), func() {
				if d.SetPhysical(link, false) {
					s.deliverLSP(d, true)
				}
			})
		}
		end := start.Add(dur)
		s.sched.At(end.Add(s.rng.uniformDur(0, 300*time.Millisecond)), func() {
			if msgs, err := d.LinkMessages(s.sched.Now(), link, true); err == nil {
				for _, m := range msgs {
					s.emitSyslog(m, im.LossBase)
				}
			}
		})
		s.sched.At(end.Add(s.rng.uniformDur(0, im.IPRestoreMax)), func() {
			if d.SetPhysical(link, true) {
				s.deliverLSP(d, true)
			}
		})
	}
}

// scheduleBlips spreads carrier bounces over every link.
func (s *simulation) scheduleBlips() {
	im := s.cfg.Impair
	if im.BlipPerLinkYear <= 0 {
		return
	}
	meanGap := time.Duration(float64(365.25*24*time.Hour) / im.BlipPerLinkYear)
	for _, link := range s.net.Links {
		id := link.ID
		lr := s.rng.fork()
		t := s.cfg.Start.Add(lr.expDur(meanGap))
		for t.Before(s.cfg.End) {
			dur := im.BlipDurMin + lr.uniformDur(0, im.BlipDurMax-im.BlipDurMin)
			at := t
			s.sched.At(at, func() { s.blip(id, dur) })
			t = t.Add(dur + lr.expDur(meanGap))
		}
	}
}

// scheduleNoise emits unrelated syslog messages (config changes,
// login notices) that the analysis must filter out, as the paper's
// collector did.
func (s *simulation) scheduleNoise() {
	im := s.cfg.Impair
	if im.NoisePerRouterDay <= 0 {
		return
	}
	meanGap := time.Duration(float64(24*time.Hour) / im.NoisePerRouterDay)
	for _, name := range s.net.RouterNames {
		host := name
		lr := s.rng.fork()
		seq := uint64(1 << 20) // clear of the device's own counters
		t := s.cfg.Start.Add(lr.expDur(meanGap))
		for t.Before(s.cfg.End) {
			at := t
			seq++
			msgSeq := seq
			s.sched.At(at, func() {
				m := &syslog.Message{
					Facility:  syslog.Local7,
					Severity:  syslog.Informational,
					Timestamp: s.sched.Now().Truncate(time.Millisecond),
					Hostname:  host,
					Seq:       msgSeq,
					Mnemonic:  "SYS-5-CONFIG_I",
					Text:      "Configured from console by admin",
				}
				s.emitSyslog(m, s.cfg.Impair.LossBase)
			})
			t = t.Add(lr.expDur(meanGap))
		}
	}
}

// scheduleSync delivers every device's current LSP to the listener,
// modeling the CSNP-driven database synchronization that happens when
// the listener (re)joins the network.
func (s *simulation) scheduleSync(at time.Time) {
	s.sched.At(at, func() {
		for _, name := range s.net.RouterNames {
			s.deliverLSP(s.devices[name], true)
		}
	})
}

// scheduleRefreshes arranges periodic LSP refreshes for every device.
func (s *simulation) scheduleRefreshes() {
	for _, name := range s.net.RouterNames {
		d := s.devices[name]
		var tick func()
		tick = func() {
			s.deliverLSP(d, false)
			s.sched.After(s.cfg.RefreshInterval+s.rng.uniformDur(0, s.cfg.RefreshInterval/10), tick)
		}
		s.sched.After(s.rng.uniformDur(0, s.cfg.RefreshInterval), tick)
	}
}

// analyticRefreshCount computes the refresh volume RefreshCounted
// mode does not materialize: one refresh per device per interval.
func (s *simulation) analyticRefreshCount() int {
	intervals := float64(s.cfg.End.Sub(s.cfg.Start)) / float64(s.cfg.RefreshInterval)
	return int(intervals * float64(len(s.net.RouterNames)))
}
