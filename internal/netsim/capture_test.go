package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"netfail/internal/trace"
)

func TestLSPLogRoundTrip(t *testing.T) {
	log := []CapturedLSP{
		{Time: time.UnixMilli(1000).UTC(), Data: []byte{0x83, 0x1b, 0x01}},
		{Time: time.UnixMilli(2500).UTC(), Data: []byte{0xde, 0xad, 0xbe, 0xef}},
	}
	var buf bytes.Buffer
	if err := WriteLSPLog(&buf, log); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLSPLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if !got[i].Time.Equal(log[i].Time) || !bytes.Equal(got[i].Data, log[i].Data) {
			t.Errorf("record %d: %+v != %+v", i, got[i], log[i])
		}
	}
}

func TestReadLSPLogErrors(t *testing.T) {
	for _, in := range []string{
		"notanumber deadbeef",
		"1000 nothex!!",
		"1000",
	} {
		if _, err := ReadLSPLog(strings.NewReader(in + "\n")); err == nil {
			t.Errorf("ReadLSPLog(%q) succeeded", in)
		}
	}
	// Comments and blanks are fine.
	got, err := ReadLSPLog(strings.NewReader("# header\n\n1000 83\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("got %v, %v", got, err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	camp := &Campaign{
		Config: Config{
			Seed:  42,
			Start: time.Date(2010, 10, 20, 0, 0, 0, 0, time.UTC),
			End:   time.Date(2011, 11, 11, 0, 0, 0, 0, time.UTC),
		},
		ListenerOffline: []trace.Interval{
			{Start: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC), End: time.Date(2011, 1, 2, 0, 0, 0, 0, time.UTC)},
		},
		Counts: Counts{SyslogReceived: 7, LSPUpdates: 9},
	}
	var buf bytes.Buffer
	if err := camp.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != 42 || !m.Start.Equal(camp.Config.Start) || !m.End.Equal(camp.Config.End) {
		t.Errorf("manifest = %+v", m)
	}
	if m.Counts.SyslogReceived != 7 || m.Counts.LSPUpdates != 9 {
		t.Errorf("counts = %+v", m.Counts)
	}
	off := m.Offline()
	if len(off) != 1 || !off[0].Start.Equal(camp.ListenerOffline[0].Start) {
		t.Errorf("offline = %+v", off)
	}
}

func TestReadManifestError(t *testing.T) {
	if _, err := ReadManifest(strings.NewReader("not json")); err == nil {
		t.Error("garbage manifest accepted")
	}
}

func TestGroundTruthFailuresConversion(t *testing.T) {
	camp := shortCampaign(t, 9)
	fs := camp.GroundTruthFailures()
	if len(fs) != len(camp.GroundTruth) {
		t.Fatalf("len = %d vs %d", len(fs), len(camp.GroundTruth))
	}
	for i := range fs {
		if fs[i].Link != camp.GroundTruth[i].Link || !fs[i].Start.Equal(camp.GroundTruth[i].Start) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}
