package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"netfail/internal/faultinject"
)

func TestReadLSPLogLenientSalvages(t *testing.T) {
	in := strings.Join([]string{
		"1000 83aa",
		"not-a-record",
		"2000 83bb",
		"ZZZZ 83cc", // mangled timestamp
		"3000 83zz", // bad hex
		"4000",      // torn: no separator
		"5000 83dd",
	}, "\n") + "\n"
	got, rep, err := ReadLSPLogLenient(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || rep.Kept != 3 {
		t.Fatalf("kept %d records (report %d), want 3", len(got), rep.Kept)
	}
	if rep.Skipped != 4 || rep.FirstBad != 2 || rep.LastBad != 6 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Reasons["bad timestamp"] != 1 || rep.Reasons["bad payload"] != 1 || rep.Reasons["missing separator"] != 2 {
		t.Errorf("reasons = %v", rep.Reasons)
	}
	if !got[2].Time.Equal(time.UnixMilli(5000).UTC()) {
		t.Errorf("last record = %+v", got[2])
	}
}

// The strict reader must fail on exactly the first malformed line.
func TestReadLSPLogStrictLineAccurate(t *testing.T) {
	in := "1000 83aa\nnot-a-record\n2000 83bb\n"
	_, err := ReadLSPLog(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict error = %v, want line 2", err)
	}
}

func TestReadLSPLogLenientOnInjectedCorruption(t *testing.T) {
	// A synthetic capture corrupted by faultinject must salvage: no
	// panic, kept+skipped covering every record, and strict mode
	// failing on the report's first bad line (when the first fault is
	// one the strict parser can see — hex bit flips may remain valid
	// hex and surface only at LSP decode).
	var clean bytes.Buffer
	for i := 0; i < 400; i++ {
		WriteLSPLog(&clean, []CapturedLSP{{Time: time.UnixMilli(int64(1000 + i)).UTC(), Data: []byte{0x83, byte(i)}}})
	}
	corrupted, faults := faultinject.Corrupt(clean.Bytes(), faultinject.Plan{Seed: 9, Rate: 0.05})
	if len(faults) == 0 {
		t.Fatal("no faults injected")
	}
	got, rep, err := ReadLSPLogLenient(bytes.NewReader(corrupted))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kept != len(got) {
		t.Errorf("report kept %d, reader returned %d", rep.Kept, len(got))
	}
	if rep.Skipped == 0 {
		t.Error("corruption injected but nothing skipped")
	}
	if _, err := ReadLSPLog(bytes.NewReader(corrupted)); err == nil {
		t.Error("strict reader accepted a corrupted capture")
	}
}

func TestReadManifestLenientSkipsSurroundingGarbage(t *testing.T) {
	clean := `{
  "seed": 3,
  "start": "2010-10-01T00:00:00Z",
  "end": "2010-10-02T00:00:00Z",
  "listener_offline": [{"start": "2010-10-01T06:00:00Z", "end": "2010-10-01T07:00:00Z"}],
  "counts": {}
}
`
	dirty := "!!garbage deadbeef interleaved!!\n" + clean + "!!more garbage}{!!\n"
	m, rep, err := ReadManifestLenient(strings.NewReader(dirty))
	if err != nil {
		t.Fatal(err)
	}
	if m.Seed != 3 || !m.Start.Equal(time.Date(2010, 10, 1, 0, 0, 0, 0, time.UTC)) || len(m.ListenerOffline) != 1 {
		t.Errorf("manifest = %+v", m)
	}
	if rep.Kept != 1 || rep.Skipped != 2 {
		t.Errorf("report = %+v", rep)
	}
	if _, err := ReadManifest(strings.NewReader(dirty)); err == nil {
		t.Error("strict reader accepted a garbage-wrapped manifest")
	}
}

func TestReadManifestLenientRejectsCorruptObject(t *testing.T) {
	if _, _, err := ReadManifestLenient(strings.NewReader(`{"seed": ZZ}`)); err == nil {
		t.Error("corruption inside the object must stay fatal")
	}
	if _, _, err := ReadManifestLenient(strings.NewReader("no json here")); err == nil {
		t.Error("missing object must stay fatal")
	}
	if _, _, err := ReadManifestLenient(strings.NewReader(`{"seed": 1`)); err == nil {
		t.Error("unterminated object must stay fatal")
	}
}
