package netsim

import "time"

// ImpairParams models everything that makes the two observation
// channels imperfect. Defaults are calibrated so the comparison
// reproduces the paper's Tables 2–6 shape.
type ImpairParams struct {
	// LossBase is the probability an individual syslog message is
	// lost in normal operation (UDP transport, low-priority
	// process). LossFlap applies during flap episodes, when message
	// generation reliability collapses (§4.1).
	LossBase float64
	LossFlap float64
	// Blackout probabilities model correlated loss: with the
	// applicable probability, every syslog message for a failure is
	// lost (the syslog process is overwhelmed or the device drops
	// the burst). This matches the paper's observation that missed
	// Down and Up transitions concentrate on the same failures: 18%
	// of transitions are unmatched yet only 17% of failures are
	// missed entirely. BlackoutLong applies to failures longer than
	// LongFailureCutoff — serious incidents during which logging
	// infrastructure itself suffers — and produces syslog's downtime
	// deficit (§4.2).
	BlackoutBase      float64
	BlackoutFlap      float64
	BlackoutLong      float64
	LongFailureCutoff time.Duration
	// DownBlackoutProb is the chance the loss burst at failure onset
	// swallows both routers' Down messages while the later Up
	// messages arrive: the resulting orphaned Up is the paper's
	// "lost down" double-Up (Table 6), and the ambiguous span it
	// opens is what the AssumeDown strategy misaccounts (§4.3).
	DownBlackoutProb float64
	// ProcDelayMax bounds the syslog emission delay after the event.
	ProcDelayMax time.Duration

	// RateLimitPerMin, when positive, applies Cisco-style "logging
	// rate-limit" per device: a token bucket of RateLimitBurst
	// messages refilled at RateLimitPerMin per minute; excess
	// messages are silently dropped at the source. Off by default —
	// the calibrated flap-loss model stands in for it statistically.
	RateLimitPerMin float64
	RateLimitBurst  int

	// NoisePerRouterDay, when positive, emits unrelated syslog
	// messages (config events, login notices) at this per-router
	// daily rate, exercising the analysis-side filtering the paper's
	// collector performed. Off by default so Table 1 counts stay
	// comparable to the paper's link-pertinent subset.
	NoisePerRouterDay float64

	// SpuriousDownProb is the per-failure probability that a router
	// re-emits a Down during an ongoing failure; SpuriousUpProb the
	// probability of a redundant Up while the link is up (§4.3,
	// Table 6).
	SpuriousDownProb float64
	SpuriousUpProb   float64

	// PseudoBackgroundPerYear is the per-link rate of spontaneous
	// syslog-only pseudo-failures (aborted three-way handshakes,
	// adjacency resets): sub-second Down/Up message pairs invisible
	// to the IS-IS listener (§4.3).
	PseudoBackgroundPerYear float64
	// BlipPerLinkYear is the rate of physical carrier blips shorter
	// than the hold time: the interface bounces (%LINK/%LINEPROTO
	// messages, IP prefix withdrawn and re-advertised) but the
	// adjacency survives, so neither IS reachability nor IS-IS
	// syslog sees anything. These events give IP reachability its
	// physical-media character in Table 2.
	BlipPerLinkYear float64
	BlipDurMin      time.Duration
	BlipDurMax      time.Duration
	// PseudoAfterFlap and PseudoAfterNonFlap are the chances a real
	// failure is followed by an adjacency-reset pseudo-failure ("a
	// reset often occurs immediately after a longer failure").
	// Resets cluster heavily on flapping links: this is what keeps
	// syslog's short false positives off the stable sole-uplink
	// links, so they almost never isolate a customer (§4.4: only 12
	// syslog-only isolation events with no IS-IS failure at all).
	PseudoAfterFlap    float64
	PseudoAfterNonFlap float64

	// Adjacency-detection timing. On a physical failure both routers
	// usually detect loss of carrier quickly (within DetectFastMax);
	// with SlowDetectProb detection instead waits for hold-time
	// expiry in [HoldExpiryMin, HoldExpiryMax]. Protocol failures
	// always detect within DetectFastMax plus per-endpoint skew.
	DetectFastMax  time.Duration
	SlowDetectProb float64
	HoldExpiryMin  time.Duration
	HoldExpiryMax  time.Duration
	EndpointSkew   time.Duration

	// Recovery timing: the three-way handshake delays adjacency
	// restoration after the link is serviceable, and the two
	// endpoints complete it at different times.
	AdjRestoreMin  time.Duration
	AdjRestoreMax  time.Duration
	RestoreSkewMax time.Duration
	// IPWithdrawDelayMax bounds how long after a physical failure
	// the interface prefix is withdrawn from IS-IS (LSP generation
	// backoff); IPRestoreMax bounds the re-advertisement delay after
	// recovery. Both decouple IP-reachability timing from both the
	// %LINK messages and the adjacency change, producing Table 2's
	// partial cross-matching.
	IPWithdrawDelayMax time.Duration
	IPRestoreMax       time.Duration

	// FloodDelayMax bounds LSP propagation to the listener.
	FloodDelayMax time.Duration

	// LSPSuppressShort: failures shorter than this may produce no
	// LSP at all (adjacency reset absorbed before LSP generation),
	// with probability LSPSuppressProb — the listener's blind spot.
	LSPSuppressShort time.Duration
	LSPSuppressProb  float64
}

// DefaultImpairments returns the calibrated impairment model.
func DefaultImpairments() ImpairParams {
	return ImpairParams{
		LossBase: 0.13,
		LossFlap: 0.24,

		BlackoutBase:      0.03,
		BlackoutFlap:      0.21,
		BlackoutLong:      0.30,
		LongFailureCutoff: time.Hour,
		DownBlackoutProb:  0.015,

		ProcDelayMax: 1500 * time.Millisecond,

		SpuriousDownProb: 0.120,
		SpuriousUpProb:   0.0035,

		PseudoBackgroundPerYear: 0.25,
		PseudoAfterFlap:         0.45,
		PseudoAfterNonFlap:      0.03,

		BlipPerLinkYear: 10,
		BlipDurMin:      12 * time.Second,
		BlipDurMax:      40 * time.Second,

		DetectFastMax:  1200 * time.Millisecond,
		SlowDetectProb: 0.25,
		HoldExpiryMin:  11 * time.Second,
		HoldExpiryMax:  40 * time.Second,
		EndpointSkew:   15 * time.Second,

		AdjRestoreMin:  1 * time.Second,
		AdjRestoreMax:  10 * time.Second,
		RestoreSkewMax: 18 * time.Second,

		IPWithdrawDelayMax: 20 * time.Second,
		IPRestoreMax:       18 * time.Second,

		FloodDelayMax: 400 * time.Millisecond,

		LSPSuppressShort: 1500 * time.Millisecond,
		LSPSuppressProb:  0.55,
	}
}
