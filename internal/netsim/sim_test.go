package netsim

import (
	"context"
	"testing"
	"time"

	"netfail/internal/listener"
	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// shortCampaign runs a 30-day campaign on a small network.
func shortCampaign(t *testing.T, seed int64) *Campaign {
	t.Helper()
	cfg := Config{
		Seed: seed,
		Spec: topo.Spec{
			Seed: seed, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
			DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 1, 31, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
	}
	camp, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return camp
}

func TestCampaignProducesBothChannels(t *testing.T) {
	camp := shortCampaign(t, 1)
	if len(camp.GroundTruth) == 0 {
		t.Fatal("no ground truth failures")
	}
	if len(camp.Syslog) == 0 {
		t.Fatal("no syslog messages")
	}
	if len(camp.LSPLog) == 0 {
		t.Fatal("no LSPs captured")
	}
	if camp.Counts.SyslogSent <= camp.Counts.SyslogReceived {
		t.Error("no syslog loss occurred; impairment model inactive")
	}
}

func TestCampaignSyslogWellFormed(t *testing.T) {
	camp := shortCampaign(t, 2)
	linkEvents := 0
	for _, m := range camp.Syslog {
		// Round trip through the wire format.
		parsed, err := syslog.Parse(m.Render(), camp.Config.Start)
		if err != nil {
			t.Fatalf("message %q does not parse: %v", m.Render(), err)
		}
		if _, err := syslog.ParseLinkEvent(parsed); err == nil {
			linkEvents++
		}
	}
	if linkEvents != len(camp.Syslog) {
		t.Errorf("only %d/%d messages are link events", linkEvents, len(camp.Syslog))
	}
}

func TestCampaignTimestampsOrderedAndBounded(t *testing.T) {
	camp := shortCampaign(t, 3)
	var prev time.Time
	for i, m := range camp.Syslog {
		if m.Timestamp.Before(prev) {
			t.Fatalf("syslog out of order at %d", i)
		}
		prev = m.Timestamp
	}
	prev = time.Time{}
	for i, c := range camp.LSPLog {
		if c.Time.Before(prev) {
			t.Fatalf("LSP log out of order at %d", i)
		}
		prev = c.Time
	}
	// Timestamps must not precede the window start; trailing
	// recovery events may slightly exceed End, bounded by the
	// scheduler cutoff.
	if camp.Syslog[0].Timestamp.Before(camp.Config.Start) {
		t.Error("syslog before window start")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a := shortCampaign(t, 42)
	b := shortCampaign(t, 42)
	if len(a.Syslog) != len(b.Syslog) {
		t.Fatalf("syslog lengths differ: %d vs %d", len(a.Syslog), len(b.Syslog))
	}
	for i := range a.Syslog {
		if a.Syslog[i].Render() != b.Syslog[i].Render() {
			t.Fatalf("syslog %d differs", i)
		}
	}
	if len(a.LSPLog) != len(b.LSPLog) {
		t.Fatalf("LSP log lengths differ: %d vs %d", len(a.LSPLog), len(b.LSPLog))
	}
	for i := range a.LSPLog {
		if string(a.LSPLog[i].Data) != string(b.LSPLog[i].Data) {
			t.Fatalf("LSP %d differs", i)
		}
	}
}

func TestCampaignSeedsDiffer(t *testing.T) {
	a := shortCampaign(t, 1)
	b := shortCampaign(t, 2)
	if len(a.Syslog) == len(b.Syslog) && len(a.GroundTruth) == len(b.GroundTruth) {
		// Extremely unlikely to collide on both counts.
		t.Error("different seeds produced identical campaign sizes")
	}
}

func TestCampaignFeedsListener(t *testing.T) {
	camp := shortCampaign(t, 4)
	l := listener.New(camp.Network)
	for _, c := range camp.LSPLog {
		if err := l.Process(c.Time, c.Data); err != nil {
			t.Fatalf("listener rejected LSP: %v", err)
		}
	}
	res := l.Results()
	if len(res.ISTransitions) == 0 {
		t.Fatal("no IS transitions from campaign")
	}
	if len(res.IPTransitions) == 0 {
		t.Fatal("no IP transitions from campaign")
	}
	// IS-reach failure reconstruction should roughly track ground
	// truth on analyzed (single-adjacency) links.
	rec := trace.Reconstruct(res.ISTransitions)
	truth := 0
	for _, f := range camp.GroundTruth {
		if !camp.Network.IsMultiLink(f.Link) {
			truth++
		}
	}
	got := len(rec.Failures)
	if got < truth/2 || got > truth*3/2 {
		t.Errorf("IS failures = %d, ground truth (single-link) = %d", got, truth)
	}
	// Hostname map should cover every router heard.
	if len(res.Hostnames) != len(camp.Network.Routers) {
		t.Errorf("hostnames = %d, want %d", len(res.Hostnames), len(camp.Network.Routers))
	}
}

func TestListenerOfflineWindowSuppressesCapture(t *testing.T) {
	cfg := Config{
		Seed: 5,
		Spec: topo.Spec{
			Seed: 5, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
			DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start: time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2011, 1, 31, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{{
			Start: time.Date(2011, 1, 10, 0, 0, 0, 0, time.UTC),
			End:   time.Date(2011, 1, 12, 0, 0, 0, 0, time.UTC),
		}},
	}
	camp, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range camp.LSPLog {
		if cfg.ListenerOffline[0].Contains(c.Time) {
			t.Fatalf("LSP captured during offline window at %v", c.Time)
		}
	}
	// Resync after the window: some LSPs right at window end.
	sawResync := false
	for _, c := range camp.LSPLog {
		if !c.Time.Before(cfg.ListenerOffline[0].End) &&
			c.Time.Before(cfg.ListenerOffline[0].End.Add(time.Minute)) {
			sawResync = true
			break
		}
	}
	if !sawResync {
		t.Error("no resync LSPs after offline window")
	}
}

func TestRefreshFullMode(t *testing.T) {
	cfg := Config{
		Seed: 6,
		Spec: topo.Spec{
			Seed: 6, CoreRouters: 5, CPERouters: 5, CoreChords: 1,
			DualHomedCPE: 1, MultiLinkCorePairs: 0, MultiLinkCPEPairs: 0,
			Customers: 5, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 1, 2, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
		RefreshMode:     RefreshFull,
		RefreshInterval: time.Hour,
	}
	camp, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 10 devices x ~24 refreshes, plus content LSPs.
	if camp.Counts.LSPUpdates < 200 {
		t.Errorf("LSP updates = %d, expected refresh traffic", camp.Counts.LSPUpdates)
	}
	// Refreshes with no changes must not perturb the listener.
	l := listener.New(camp.Network)
	for _, c := range camp.LSPLog {
		if err := l.Process(c.Time, c.Data); err != nil {
			t.Fatal(err)
		}
	}
	res := l.Results()
	rec := trace.Reconstruct(res.ISTransitions)
	if len(rec.Failures) > len(camp.GroundTruth)*2 {
		t.Errorf("refresh traffic fabricated failures: %d vs truth %d", len(rec.Failures), len(camp.GroundTruth))
	}
}

func TestAnalyticRefreshCount(t *testing.T) {
	camp := shortCampaign(t, 7)
	// 30 routers, 30 days, 15-minute interval: 30*30*96 = 86,400.
	want := 30 * 30 * 96
	refresh := camp.Counts.LSPUpdates - camp.Counts.ContentLSPs
	if refresh != want {
		t.Errorf("analytic refresh = %d, want %d", refresh, want)
	}
}

func TestAllFeaturesCombined(t *testing.T) {
	// Every opt-in mechanism at once must still produce a coherent
	// campaign.
	im := DefaultImpairments()
	im.RateLimitPerMin = 10
	im.RateLimitBurst = 20
	im.NoisePerRouterDay = 1
	w := DefaultWorkload()
	w.MaintenancePerRouterYear = 1
	cfg := Config{
		Seed: 77,
		Spec: topo.Spec{
			Seed: 77, CoreRouters: 10, CPERouters: 20, CoreChords: 2,
			DualHomedCPE: 4, MultiLinkCorePairs: 1, MultiLinkCPEPairs: 2,
			Customers: 15, LinkBase: 137<<24 | 164<<16, CoreMetric: 10, CPEMetric: 100,
		},
		Start:           time.Date(2011, 1, 1, 0, 0, 0, 0, time.UTC),
		End:             time.Date(2011, 2, 15, 0, 0, 0, 0, time.UTC),
		ListenerOffline: []trace.Interval{},
		Workload:        &w,
		Impair:          &im,
		EnableLinkIDs:   true,
		InBandSyslog:    true,
	}
	camp, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Syslog) == 0 || len(camp.LSPLog) == 0 {
		t.Fatal("empty campaign")
	}
	// The pipeline must still run end to end.
	l := listener.New(camp.Network)
	for _, c := range camp.LSPLog {
		if err := l.Process(c.Time, c.Data); err != nil {
			t.Fatal(err)
		}
	}
	if len(l.Results().ISTransitions) == 0 {
		t.Fatal("no transitions with all features enabled")
	}
	// And deterministically.
	camp2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if camp2.Counts != camp.Counts {
		t.Errorf("nondeterministic: %+v vs %+v", camp.Counts, camp2.Counts)
	}
}
