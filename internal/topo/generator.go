package topo

import (
	"fmt"
	"math/rand"
)

// Spec parameterizes the CENIC-like topology generator. The zero value
// is not useful; start from DefaultSpec.
type Spec struct {
	// Seed drives all randomized choices so a given spec always
	// generates the identical network.
	Seed int64
	// CoreRouters and CPERouters size the two router classes.
	CoreRouters int
	CPERouters  int
	// CoreChords is the number of extra backbone links added on top
	// of the backbone ring for redundancy.
	CoreChords int
	// DualHomedCPE is the number of CPE routers given a second
	// uplink to a distinct core router.
	DualHomedCPE int
	// MultiLinkCorePairs and MultiLinkCPEPairs are the number of
	// router pairs (of each flavor) connected by two parallel links,
	// producing the multi-link adjacencies the IS-reachability
	// analysis must exclude.
	MultiLinkCorePairs int
	MultiLinkCPEPairs  int
	// Customers is the number of customer sites; CPE routers are
	// distributed over sites (some sites have several routers).
	Customers int
	// LinkBase is the host-order address of the /16 from which /31
	// link subnets are carved.
	LinkBase uint32
	// CoreMetric and CPEMetric are the configured IS-IS metrics.
	CoreMetric uint32
	CPEMetric  uint32
}

// DefaultSpec reproduces the scale of the CENIC network in the paper:
// 60 core and 175 CPE routers, 84 core and 215 CPE IS-IS links, and 26
// multi-link adjacency pairs (paper Table 1 and §3.4).
func DefaultSpec() Spec {
	return Spec{
		Seed:               1,
		CoreRouters:        60,
		CPERouters:         175,
		CoreChords:         14, // ring(60) + 14 chords + 10 parallel = 84 core links
		DualHomedCPE:       24, // 175 uplinks + 24 second uplinks + 16 parallel = 215
		MultiLinkCorePairs: 10,
		MultiLinkCPEPairs:  16,
		Customers:          120,
		LinkBase:           137<<24 | 164<<16, // 137.164.0.0/16
		CoreMetric:         10,
		CPEMetric:          100,
	}
}

// pops are the backbone point-of-presence name prefixes, echoing
// CENIC's California footprint.
var pops = []string{
	"lax", "sac", "svl", "fre", "oak", "slo", "sdg", "tus", "bak", "riv",
}

// Generate builds a network from the spec. The backbone is a ring over
// all core routers plus chord links; each CPE router uplinks to one
// (or, if dual-homed, two) core routers; selected pairs get a second
// parallel link to create multi-link adjacencies.
func Generate(spec Spec) (*Network, error) {
	if spec.CoreRouters < 3 {
		return nil, fmt.Errorf("topo: need at least 3 core routers, have %d", spec.CoreRouters)
	}
	if spec.Customers > spec.CPERouters {
		return nil, fmt.Errorf("topo: more customers (%d) than CPE routers (%d)", spec.Customers, spec.CPERouters)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	n := NewNetwork()

	// Routers.
	coreNames := make([]string, spec.CoreRouters)
	for i := 0; i < spec.CoreRouters; i++ {
		pop := pops[i%len(pops)]
		name := fmt.Sprintf("%s-core-%02d", pop, i/len(pops)+1)
		coreNames[i] = name
		if err := n.AddRouter(&Router{
			Name:     name,
			Class:    Core,
			SystemID: SystemIDFromIndex(i + 1),
			Loopback: 10<<24 | 1<<16 | uint32(i+1),
		}); err != nil {
			return nil, err
		}
	}
	cpeNames := make([]string, spec.CPERouters)
	for i := 0; i < spec.CPERouters; i++ {
		name := fmt.Sprintf("cpe-%03d", i+1)
		cpeNames[i] = name
		if err := n.AddRouter(&Router{
			Name:     name,
			Class:    CPE,
			SystemID: SystemIDFromIndex(1000 + i + 1),
			Loopback: 10<<24 | 2<<16 | uint32(i+1),
		}); err != nil {
			return nil, err
		}
	}

	alloc := &subnetAllocator{next: spec.LinkBase}
	ports := newPortAllocator()

	addLink := func(a, b string, metric uint32) (*Link, error) {
		ea := Endpoint{Host: a, Port: ports.next(n.Routers[a])}
		eb := Endpoint{Host: b, Port: ports.next(n.Routers[b])}
		return n.AddLink(ea, eb, alloc.take(), metric)
	}

	// Backbone ring.
	for i := range coreNames {
		j := (i + 1) % len(coreNames)
		if _, err := addLink(coreNames[i], coreNames[j], spec.CoreMetric); err != nil {
			return nil, err
		}
	}
	// Chords: connect well-separated ring positions for redundancy.
	chordsAdded := 0
	for attempt := 0; chordsAdded < spec.CoreChords && attempt < 10*spec.CoreChords+100; attempt++ {
		i := rng.Intn(len(coreNames))
		j := (i + 2 + rng.Intn(len(coreNames)-4)) % len(coreNames)
		key := MakeAdjacencyKey(n.Routers[coreNames[i]].SystemID, n.Routers[coreNames[j]].SystemID)
		if len(n.LinksByAdjacency(key)) > 0 {
			continue
		}
		if _, err := addLink(coreNames[i], coreNames[j], spec.CoreMetric*2); err != nil {
			return nil, err
		}
		chordsAdded++
	}
	if chordsAdded != spec.CoreChords {
		return nil, fmt.Errorf("topo: only placed %d of %d chords", chordsAdded, spec.CoreChords)
	}

	// CPE uplinks: deterministic spread over core routers.
	uplink := make(map[string][]string) // cpe -> core hosts
	for i, cpe := range cpeNames {
		core := coreNames[i%len(coreNames)]
		if _, err := addLink(cpe, core, spec.CPEMetric); err != nil {
			return nil, err
		}
		uplink[cpe] = append(uplink[cpe], core)
	}
	// Second uplinks for dual-homed CPE routers.
	for i := 0; i < spec.DualHomedCPE; i++ {
		cpe := cpeNames[i*len(cpeNames)/max(spec.DualHomedCPE, 1)]
		first := uplink[cpe][0]
		second := coreNames[(indexOf(coreNames, first)+len(coreNames)/2)%len(coreNames)]
		if _, err := addLink(cpe, second, spec.CPEMetric); err != nil {
			return nil, err
		}
		uplink[cpe] = append(uplink[cpe], second)
	}

	// Parallel links creating multi-link adjacencies.
	coreParallel := 0
	for i := 0; coreParallel < spec.MultiLinkCorePairs && i < len(coreNames); i++ {
		j := (i + 1) % len(coreNames)
		if i%6 != 0 { // spread the doubled pairs around the ring
			continue
		}
		if _, err := addLink(coreNames[i], coreNames[j], spec.CoreMetric); err != nil {
			return nil, err
		}
		coreParallel++
	}
	for i := 0; coreParallel < spec.MultiLinkCorePairs; i++ {
		j := (i + 1) % len(coreNames)
		key := MakeAdjacencyKey(n.Routers[coreNames[i]].SystemID, n.Routers[coreNames[j]].SystemID)
		if len(n.LinksByAdjacency(key)) != 1 {
			continue
		}
		if _, err := addLink(coreNames[i], coreNames[j], spec.CoreMetric); err != nil {
			return nil, err
		}
		coreParallel++
	}
	cpeParallel := 0
	for i := 0; cpeParallel < spec.MultiLinkCPEPairs && i < len(cpeNames); i++ {
		if i%7 != 3 {
			continue
		}
		cpe := cpeNames[i]
		if _, err := addLink(cpe, uplink[cpe][0], spec.CPEMetric); err != nil {
			return nil, err
		}
		cpeParallel++
	}
	for i := 0; cpeParallel < spec.MultiLinkCPEPairs && i < len(cpeNames); i++ {
		cpe := cpeNames[i]
		key := MakeAdjacencyKey(n.Routers[cpe].SystemID, n.Routers[uplink[cpe][0]].SystemID)
		if len(n.LinksByAdjacency(key)) != 1 {
			continue
		}
		if _, err := addLink(cpe, uplink[cpe][0], spec.CPEMetric); err != nil {
			return nil, err
		}
		cpeParallel++
	}

	// Customer sites: distribute CPE routers round-robin over sites.
	n.Customers = make([]*Customer, spec.Customers)
	for i := range n.Customers {
		n.Customers[i] = &Customer{Name: fmt.Sprintf("site-%03d", i+1)}
	}
	for i, cpe := range cpeNames {
		c := n.Customers[i%spec.Customers]
		c.Routers = append(c.Routers, cpe)
	}
	return n, nil
}

func indexOf(list []string, s string) int {
	for i, v := range list {
		if v == s {
			return i
		}
	}
	return -1
}

// subnetAllocator hands out sequential /31 subnets.
type subnetAllocator struct{ next uint32 }

func (a *subnetAllocator) take() uint32 {
	s := a.next
	a.next += 2
	return s
}

// portAllocator assigns IOS-style interface names, choosing the
// flavor by router class.
type portAllocator struct {
	used map[string]int
}

func newPortAllocator() *portAllocator {
	return &portAllocator{used: make(map[string]int)}
}

func (p *portAllocator) next(r *Router) string {
	i := p.used[r.Name]
	p.used[r.Name]++
	if r.Class == Core {
		return fmt.Sprintf("TenGigE0/%d/0/%d", i/4, i%4)
	}
	return fmt.Sprintf("GigabitEthernet0/0/%d", i)
}
