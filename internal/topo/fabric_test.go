package topo

import (
	"fmt"
	"testing"
)

func TestFabricDomainsAreDisjoint(t *testing.T) {
	domains, err := Fabric(FabricSpec{Domains: 3, Spines: 4, Leaves: 6, Metric: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 3 {
		t.Fatalf("got %d domains, want 3", len(domains))
	}
	backbone, err := Generate(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}

	hosts := map[string]string{}
	ids := map[SystemID]string{}
	subnets := map[uint32]string{}
	note := func(dom string, n *Network) {
		for _, name := range n.RouterNames {
			if prev, dup := hosts[name]; dup {
				t.Fatalf("hostname %q in both %s and %s", name, prev, dom)
			}
			hosts[name] = dom
			r := n.Routers[name]
			if prev, dup := ids[r.SystemID]; dup {
				t.Fatalf("system ID %v in both %s and %s", r.SystemID, prev, dom)
			}
			ids[r.SystemID] = dom
		}
		for _, l := range n.Links {
			if prev, dup := subnets[l.Subnet]; dup {
				t.Fatalf("subnet %s in both %s and %s", FormatIPv4(l.Subnet), prev, dom)
			}
			subnets[l.Subnet] = dom
		}
	}
	note("backbone", backbone)
	for _, d := range domains {
		note(d.Name, d.Net)
	}

	for _, d := range domains {
		if got, want := len(d.Net.Links), 4*6; got != want {
			t.Errorf("%s has %d links, want %d", d.Name, got, want)
		}
		core, cpe := d.Net.CountRouters()
		if core != 4 || cpe != 6 {
			t.Errorf("%s routers = %d core, %d cpe", d.Name, core, cpe)
		}
		if len(d.Net.Customers) != 6 {
			t.Errorf("%s has %d customers, want 6", d.Name, len(d.Net.Customers))
		}
	}
}

// TestFabricScalesToTenThousandLinks pins the data-center-scale claim:
// a modest fabric spec clears 10k links and merges cleanly with the
// backbone.
func TestFabricScalesToTenThousandLinks(t *testing.T) {
	domains, err := Fabric(FabricSpec{Domains: 4, Spines: 32, Leaves: 80, Metric: 10})
	if err != nil {
		t.Fatal(err)
	}
	backbone, err := Generate(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	nets := []*Network{backbone}
	links := len(backbone.Links)
	for _, d := range domains {
		nets = append(nets, d.Net)
		links += len(d.Net.Links)
	}
	if links < 10000 {
		t.Fatalf("total links %d, want >= 10000", links)
	}
	merged, err := Merge(nets...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Links) != links {
		t.Fatalf("merged %d links, want %d", len(merged.Links), links)
	}
	if len(merged.RouterNames) != len(backbone.RouterNames)+4*(32+80) {
		t.Fatalf("merged %d routers", len(merged.RouterNames))
	}
	// Lookup paths must work through the merged view.
	probe := domains[2].Net.Links[17]
	if l, ok := merged.LinkByID(probe.ID); !ok || l != probe {
		t.Fatalf("merged LinkByID(%s) = %v, %v", probe.ID, l, ok)
	}
	if _, ok := merged.LinkBySubnet(probe.Subnet); !ok {
		t.Fatal("merged LinkBySubnet failed")
	}
	r := domains[0].Net.Routers[domains[0].Net.RouterNames[0]]
	if got, ok := merged.RouterByID(r.SystemID); !ok || got != r {
		t.Fatal("merged RouterByID failed")
	}
}

func TestMergeRejectsOverlap(t *testing.T) {
	a, err := Generate(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b); err == nil {
		t.Fatal("Merge accepted overlapping networks")
	}
}

func TestFabricSpecValidation(t *testing.T) {
	for _, spec := range []FabricSpec{
		{Domains: -1},
		{Domains: 81},
		{Domains: 1, Spines: 0, Leaves: 5},
		{Domains: 1, Spines: 500, Leaves: 5},
	} {
		if _, err := Fabric(spec); err == nil {
			t.Errorf("Fabric(%+v) accepted an invalid spec", spec)
		}
	}
	if domains, err := Fabric(FabricSpec{Domains: 0}); err != nil || len(domains) != 0 {
		t.Errorf("zero-domain fabric: %v, %d domains", err, len(domains))
	}
}

func TestFabricDeterministic(t *testing.T) {
	a, err := Fabric(DefaultFabricSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fabric(DefaultFabricSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		la, lb := a[i].Net.Links, b[i].Net.Links
		if len(la) != len(lb) {
			t.Fatalf("domain %d link counts differ", i)
		}
		for j := range la {
			if fmt.Sprint(*la[j]) != fmt.Sprint(*lb[j]) {
				t.Fatalf("domain %d link %d differs: %v vs %v", i, j, *la[j], *lb[j])
			}
		}
	}
}
