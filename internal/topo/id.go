package topo

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// SystemID is the 6-byte OSI system identifier used by IS-IS to name a
// router. CENIC-style deployments commonly derive it from a loopback
// IP address; here it is assigned by the topology generator.
type SystemID [6]byte

// String renders the system ID in the conventional dotted-triplet form,
// e.g. "1921.6800.1042".
func (s SystemID) String() string {
	h := hex.EncodeToString(s[:])
	return h[0:4] + "." + h[4:8] + "." + h[8:12]
}

// IsZero reports whether the system ID is the all-zero value.
func (s SystemID) IsZero() bool { return s == SystemID{} }

// ParseSystemID parses a dotted-triplet system ID such as
// "1921.6800.1042". It also accepts the undotted 12-hex-digit form.
func ParseSystemID(text string) (SystemID, error) {
	var id SystemID
	clean := strings.ReplaceAll(text, ".", "")
	if len(clean) != 12 {
		return id, fmt.Errorf("topo: malformed system ID %q", text)
	}
	raw, err := hex.DecodeString(clean)
	if err != nil {
		return id, fmt.Errorf("topo: malformed system ID %q: %v", text, err)
	}
	copy(id[:], raw)
	return id, nil
}

// SystemIDFromIndex derives a deterministic system ID from a router
// index, in a scheme reminiscent of encoding an IPv4 loopback address
// as BCD digits (the common operational convention).
func SystemIDFromIndex(idx int) SystemID {
	if idx < 0 || idx > 99999 {
		panic(fmt.Sprintf("topo: router index %d out of range for system ID derivation", idx))
	}
	digits := fmt.Sprintf("1921680%05d", idx)
	var id SystemID
	raw, _ := hex.DecodeString(digits)
	copy(id[:], raw)
	return id
}

// Less imposes a total order on system IDs (lexicographic on bytes).
func (s SystemID) Less(o SystemID) bool {
	for i := range s {
		if s[i] != o[i] {
			return s[i] < o[i]
		}
	}
	return false
}
