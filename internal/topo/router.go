package topo

import "fmt"

// RouterClass distinguishes backbone routers from customer-premises
// equipment. The paper reports most statistics separately for the two
// classes because their equipment, use, and importance differ.
type RouterClass int

const (
	// Core routers form the 10 Gbit/s backbone.
	Core RouterClass = iota
	// CPE routers sit on customer premises and uplink to the backbone.
	CPE
)

// String returns "Core" or "CPE".
func (c RouterClass) String() string {
	switch c {
	case Core:
		return "Core"
	case CPE:
		return "CPE"
	default:
		return fmt.Sprintf("RouterClass(%d)", int(c))
	}
}

// Interface is a named port on a router. Interfaces participating in a
// link carry one address of the link's /31 subnet.
type Interface struct {
	// Name is the IOS-style interface name, e.g. "TenGigE0/1/0/3".
	Name string
	// Router is the hostname of the owning router.
	Router string
	// Addr is the IPv4 address assigned to the interface, as a
	// 32-bit integer in host order; zero if unnumbered.
	Addr uint32
	// Link is the ID of the link this interface terminates, or the
	// empty LinkID if the interface is unused.
	Link LinkID
	// Description mirrors the IOS "description" line and names the
	// far end; the configuration miner parses it.
	Description string
}

// Router is a single IS-IS speaking device.
type Router struct {
	// Name is the syslog-visible hostname, e.g. "riv-core-01".
	Name string
	// Class reports whether the device is a backbone or CPE router.
	Class RouterClass
	// SystemID is the OSI identifier the router uses in IS-IS PDUs.
	SystemID SystemID
	// Loopback is the router's loopback address (advertised in IP
	// reachability), host order.
	Loopback uint32
	// Interfaces lists the router's configured ports in a stable
	// order.
	Interfaces []*Interface
}

// Interface returns the named interface, or nil if the router has no
// such port.
func (r *Router) Interface(name string) *Interface {
	for _, ifc := range r.Interfaces {
		if ifc.Name == name {
			return ifc
		}
	}
	return nil
}
