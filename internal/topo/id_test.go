package topo

import (
	"testing"
	"testing/quick"
)

func TestSystemIDString(t *testing.T) {
	id := SystemID{0x19, 0x21, 0x68, 0x00, 0x10, 0x42}
	if got, want := id.String(), "1921.6800.1042"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseSystemIDRoundTrip(t *testing.T) {
	for _, text := range []string{"1921.6800.1042", "0000.0000.0001", "ffff.ffff.ffff"} {
		id, err := ParseSystemID(text)
		if err != nil {
			t.Fatalf("ParseSystemID(%q): %v", text, err)
		}
		if id.String() != text {
			t.Errorf("round trip %q -> %q", text, id.String())
		}
	}
}

func TestParseSystemIDUndotted(t *testing.T) {
	id, err := ParseSystemID("192168001042")
	if err != nil {
		t.Fatalf("ParseSystemID: %v", err)
	}
	if got := id.String(); got != "1921.6800.1042" {
		t.Errorf("got %q", got)
	}
}

func TestParseSystemIDErrors(t *testing.T) {
	for _, text := range []string{"", "1921.6800", "1921.6800.104g", "1921.6800.10422"} {
		if _, err := ParseSystemID(text); err == nil {
			t.Errorf("ParseSystemID(%q) succeeded, want error", text)
		}
	}
}

func TestSystemIDFromIndexUnique(t *testing.T) {
	seen := make(map[SystemID]int)
	for i := 0; i < 5000; i++ {
		id := SystemIDFromIndex(i)
		if prev, dup := seen[id]; dup {
			t.Fatalf("index %d and %d collide on %v", prev, i, id)
		}
		seen[id] = i
	}
}

func TestSystemIDFromIndexPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	SystemIDFromIndex(100000)
}

func TestSystemIDLessIsStrictOrder(t *testing.T) {
	f := func(a, b SystemID) bool {
		switch {
		case a == b:
			return !a.Less(b) && !b.Less(a)
		default:
			return a.Less(b) != b.Less(a)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSystemIDRoundTripQuick(t *testing.T) {
	f := func(id SystemID) bool {
		back, err := ParseSystemID(id.String())
		return err == nil && back == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
