// Package topo models the network under study: routers, interfaces,
// links, and customers, together with a deterministic generator that
// produces CENIC-like topologies (a ring-structured 10G backbone of
// Core routers with single- and dual-homed CPE routers on customer
// premises) and graph utilities used by the customer-isolation
// analysis.
//
// The topology is the common substrate shared by the IS-IS simulator,
// the configuration miner, and the failure-trace comparison: both the
// syslog and IS-IS reconstruction pipelines resolve their respective
// router naming schemes (hostnames vs. OSI system IDs) onto the link
// namespace defined here.
package topo
