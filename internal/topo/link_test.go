package topo

import (
	"testing"
	"testing/quick"
)

func TestMakeLinkIDSymmetric(t *testing.T) {
	a := Endpoint{Host: "riv-core-01", Port: "TenGigE0/0/0/0"}
	b := Endpoint{Host: "lax-core-01", Port: "TenGigE0/1/0/2"}
	if MakeLinkID(a, b) != MakeLinkID(b, a) {
		t.Error("LinkID depends on endpoint order")
	}
}

func TestMakeLinkIDSymmetricQuick(t *testing.T) {
	f := func(h1, p1, h2, p2 string) bool {
		a := Endpoint{Host: h1, Port: p1}
		b := Endpoint{Host: h2, Port: p2}
		return MakeLinkID(a, b) == MakeLinkID(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkIDEndpoints(t *testing.T) {
	a := Endpoint{Host: "alpha", Port: "Gi0/0/1"}
	b := Endpoint{Host: "beta", Port: "Gi0/0/2"}
	id := MakeLinkID(a, b)
	ea, eb := id.Endpoints()
	if ea != a || eb != b {
		t.Errorf("Endpoints() = %v, %v; want %v, %v", ea, eb, a, b)
	}
}

func TestAdjacencyKeySymmetric(t *testing.T) {
	f := func(a, b SystemID) bool {
		return MakeAdjacencyKey(a, b) == MakeAdjacencyKey(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAdjacencyKeyOrdered(t *testing.T) {
	f := func(a, b SystemID) bool {
		k := MakeAdjacencyKey(a, b)
		return !k.Hi.Less(k.Lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormatParseIPv4(t *testing.T) {
	cases := map[uint32]string{
		137<<24 | 164<<16:  "137.164.0.0",
		0:                  "0.0.0.0",
		0xFFFFFFFF:         "255.255.255.255",
		10<<24 | 1<<16 | 7: "10.1.0.7",
	}
	for v, s := range cases {
		if got := FormatIPv4(v); got != s {
			t.Errorf("FormatIPv4(%#x) = %q, want %q", v, got, s)
		}
		back, err := ParseIPv4(s)
		if err != nil || back != v {
			t.Errorf("ParseIPv4(%q) = %#x, %v; want %#x", s, back, err, v)
		}
	}
}

func TestParseIPv4Errors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded, want error", s)
		}
	}
}

func TestParseIPv4RoundTripQuick(t *testing.T) {
	f := func(v uint32) bool {
		back, err := ParseIPv4(FormatIPv4(v))
		return err == nil && back == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkOther(t *testing.T) {
	a := Endpoint{Host: "alpha", Port: "p1"}
	b := Endpoint{Host: "beta", Port: "p2"}
	l := &Link{ID: MakeLinkID(a, b), A: a, B: b}
	if got, ok := l.Other("alpha"); !ok || got != b {
		t.Errorf("Other(alpha) = %v, %v", got, ok)
	}
	if got, ok := l.Other("beta"); !ok || got != a {
		t.Errorf("Other(beta) = %v, %v", got, ok)
	}
	if _, ok := l.Other("gamma"); ok {
		t.Error("Other(gamma) should not resolve")
	}
}
