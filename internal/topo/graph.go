package topo

// Graph is a precomputed adjacency view of a Network used by the
// customer-isolation analysis, which must evaluate connectivity with
// an arbitrary subset of links failed at every event boundary.
type Graph struct {
	net *Network
	// index maps hostname to a dense node index.
	index map[string]int
	names []string
	// edges[i] lists the links incident to node i.
	edges [][]*Link
	// coreNodes lists node indices of core routers.
	coreNodes []int
}

// NewGraph builds the adjacency view.
func NewGraph(n *Network) *Graph {
	g := &Graph{
		net:   n,
		index: make(map[string]int, len(n.Routers)),
	}
	for _, name := range n.RouterNames {
		g.index[name] = len(g.names)
		g.names = append(g.names, name)
		if n.Routers[name].Class == Core {
			g.coreNodes = append(g.coreNodes, g.index[name])
		}
	}
	g.edges = make([][]*Link, len(g.names))
	for _, l := range n.Links {
		ai, bi := g.index[l.A.Host], g.index[l.B.Host]
		g.edges[ai] = append(g.edges[ai], l)
		g.edges[bi] = append(g.edges[bi], l)
	}
	return g
}

// Components labels each router with a connected-component number,
// ignoring links for which down returns true. It returns the label
// slice (indexed like node indices) and the number of components.
func (g *Graph) Components(down func(LinkID) bool) ([]int, int) {
	labels := make([]int, len(g.names))
	for i := range labels {
		labels[i] = -1
	}
	comp := 0
	queue := make([]int, 0, len(g.names))
	for start := range g.names {
		if labels[start] >= 0 {
			continue
		}
		labels[start] = comp
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, l := range g.edges[v] {
				if down != nil && down(l.ID) {
					continue
				}
				var w int
				if g.index[l.A.Host] == v {
					w = g.index[l.B.Host]
				} else {
					w = g.index[l.A.Host]
				}
				if labels[w] < 0 {
					labels[w] = comp
					queue = append(queue, w)
				}
			}
		}
		comp++
	}
	return labels, comp
}

// BackboneComponent returns the component label containing the most
// core routers, which the isolation analysis treats as "the backbone".
func (g *Graph) BackboneComponent(labels []int) int {
	counts := make(map[int]int)
	best, bestCount := -1, -1
	for _, ni := range g.coreNodes {
		c := labels[ni]
		counts[c]++
		if counts[c] > bestCount {
			best, bestCount = c, counts[c]
		}
	}
	return best
}

// IsolatedCustomers returns the names of customers none of whose CPE
// routers can reach the backbone component when the given links are
// down. The down set is keyed by LinkID.
func (g *Graph) IsolatedCustomers(down map[LinkID]bool) []string {
	if len(down) == 0 {
		return nil
	}
	labels, _ := g.Components(func(id LinkID) bool { return down[id] })
	backbone := g.BackboneComponent(labels)
	var isolated []string
	for _, c := range g.net.Customers {
		cut := true
		for _, host := range c.Routers {
			if labels[g.index[host]] == backbone {
				cut = false
				break
			}
		}
		if cut {
			isolated = append(isolated, c.Name)
		}
	}
	return isolated
}

// NodeCount returns the number of routers in the graph.
func (g *Graph) NodeCount() int { return len(g.names) }

// Reachable reports whether a path exists between two routers with the
// given links down.
func (g *Graph) Reachable(from, to string, down map[LinkID]bool) bool {
	fi, ok := g.index[from]
	if !ok {
		return false
	}
	ti, ok := g.index[to]
	if !ok {
		return false
	}
	labels, _ := g.Components(func(id LinkID) bool { return down[id] })
	return labels[fi] == labels[ti]
}
