package topo

import (
	"fmt"
	"strings"
)

// Endpoint identifies one side of a link by hostname and interface
// name, the naming convention common to both data sources after
// config mining.
type Endpoint struct {
	Host string
	Port string
}

// String renders "host:port".
func (e Endpoint) String() string { return e.Host + ":" + e.Port }

// LinkID is the canonical name of a link: the two endpoints joined in
// lexicographic order. It is the common namespace onto which both the
// syslog hostname convention and the IS-IS OSI-ID convention are
// mapped (paper §3.4).
type LinkID string

// MakeLinkID builds the canonical LinkID for two endpoints, ordering
// them so that (a,b) and (b,a) produce the same ID.
func MakeLinkID(a, b Endpoint) LinkID {
	as, bs := a.String(), b.String()
	if bs < as {
		as, bs = bs, as
	}
	return LinkID(as + "|" + bs)
}

// Endpoints splits a LinkID back into its two endpoints. It returns
// zero-valued endpoints for a malformed ID.
func (id LinkID) Endpoints() (Endpoint, Endpoint) {
	parts := strings.Split(string(id), "|")
	if len(parts) != 2 {
		return Endpoint{}, Endpoint{}
	}
	return parseEndpoint(parts[0]), parseEndpoint(parts[1])
}

func parseEndpoint(s string) Endpoint {
	i := strings.Index(s, ":")
	if i < 0 {
		return Endpoint{Host: s}
	}
	return Endpoint{Host: s[:i], Port: s[i+1:]}
}

// LinkClass classifies a link by the routers it connects.
type LinkClass int

const (
	// CoreLink connects two backbone routers.
	CoreLink LinkClass = iota
	// CPELink connects a CPE router to the backbone (or, rarely,
	// to another CPE router).
	CPELink
)

// String returns "Core" or "CPE".
func (c LinkClass) String() string {
	if c == CoreLink {
		return "Core"
	}
	return "CPE"
}

// AdjacencyKey identifies the pair of IS-IS speakers a link connects,
// ordered so that the key is direction-independent. Because plain
// Extended IS Reachability cannot distinguish parallel links between
// the same pair of routers (paper §3.4, footnote 1), several links may
// share one AdjacencyKey; such multi-link adjacencies are excluded
// from the IS-reachability analysis.
type AdjacencyKey struct {
	Lo, Hi SystemID
}

// MakeAdjacencyKey orders two system IDs into an AdjacencyKey.
func MakeAdjacencyKey(a, b SystemID) AdjacencyKey {
	if b.Less(a) {
		a, b = b, a
	}
	return AdjacencyKey{Lo: a, Hi: b}
}

// Link is a physical point-to-point connection between two router
// interfaces.
type Link struct {
	// ID is the canonical link name.
	ID LinkID
	// A and B are the link's endpoints; A sorts before B.
	A, B Endpoint
	// Class reports whether this is a backbone or CPE uplink.
	Class LinkClass
	// Subnet is the /31 network address (host order) whose two
	// addresses number the endpoints; A gets Subnet, B Subnet+1.
	Subnet uint32
	// Metric is the configured IS-IS wide metric.
	Metric uint32
	// Adjacency names the router pair. Parallel links share it.
	Adjacency AdjacencyKey
}

// Other returns the endpoint opposite to the one on host, and true if
// host terminates the link.
func (l *Link) Other(host string) (Endpoint, bool) {
	switch host {
	case l.A.Host:
		return l.B, true
	case l.B.Host:
		return l.A, true
	}
	return Endpoint{}, false
}

// FormatIPv4 renders a host-order IPv4 address in dotted quad form.
func FormatIPv4(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseIPv4 parses a dotted quad into a host-order uint32.
func ParseIPv4(s string) (uint32, error) {
	var b [4]int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &b[0], &b[1], &b[2], &b[3]); err != nil {
		return 0, fmt.Errorf("topo: bad IPv4 address %q", s)
	}
	var v uint32
	for _, o := range b {
		if o < 0 || o > 255 {
			return 0, fmt.Errorf("topo: bad IPv4 address %q", s)
		}
		v = v<<8 | uint32(o)
	}
	return v, nil
}
