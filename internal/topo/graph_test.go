package topo

import "testing"

// tinyNetwork builds a 3-core triangle with two customers: site-1 has
// a single-homed CPE, site-2 a dual-homed CPE.
func tinyNetwork(t *testing.T) (*Network, map[string]LinkID) {
	t.Helper()
	n := NewNetwork()
	names := []string{"core-a", "core-b", "core-c", "cpe-1", "cpe-2"}
	for i, name := range names {
		class := Core
		if i >= 3 {
			class = CPE
		}
		if err := n.AddRouter(&Router{Name: name, Class: class, SystemID: SystemIDFromIndex(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	links := make(map[string]LinkID)
	add := func(tag, a, b string, subnet uint32) {
		l, err := n.AddLink(Endpoint{Host: a, Port: "p-" + tag}, Endpoint{Host: b, Port: "q-" + tag}, subnet, 10)
		if err != nil {
			t.Fatal(err)
		}
		links[tag] = l.ID
	}
	add("ab", "core-a", "core-b", 0)
	add("bc", "core-b", "core-c", 2)
	add("ca", "core-c", "core-a", 4)
	add("u1", "cpe-1", "core-a", 6)
	add("u2a", "cpe-2", "core-b", 8)
	add("u2b", "cpe-2", "core-c", 10)
	n.Customers = []*Customer{
		{Name: "site-1", Routers: []string{"cpe-1"}},
		{Name: "site-2", Routers: []string{"cpe-2"}},
	}
	return n, links
}

func TestComponentsHealthy(t *testing.T) {
	n, _ := tinyNetwork(t)
	g := NewGraph(n)
	_, comps := g.Components(nil)
	if comps != 1 {
		t.Errorf("components = %d, want 1", comps)
	}
}

func TestIsolationSingleHomed(t *testing.T) {
	n, links := tinyNetwork(t)
	g := NewGraph(n)
	down := map[LinkID]bool{links["u1"]: true}
	got := g.IsolatedCustomers(down)
	if len(got) != 1 || got[0] != "site-1" {
		t.Errorf("isolated = %v, want [site-1]", got)
	}
}

func TestIsolationDualHomedSurvivesOneCut(t *testing.T) {
	n, links := tinyNetwork(t)
	g := NewGraph(n)
	down := map[LinkID]bool{links["u2a"]: true}
	if got := g.IsolatedCustomers(down); len(got) != 0 {
		t.Errorf("isolated = %v, want none", got)
	}
}

func TestIsolationDualHomedBothCut(t *testing.T) {
	n, links := tinyNetwork(t)
	g := NewGraph(n)
	down := map[LinkID]bool{links["u2a"]: true, links["u2b"]: true}
	got := g.IsolatedCustomers(down)
	if len(got) != 1 || got[0] != "site-2" {
		t.Errorf("isolated = %v, want [site-2]", got)
	}
}

func TestIsolationRingSurvivesOneCoreCut(t *testing.T) {
	n, links := tinyNetwork(t)
	g := NewGraph(n)
	down := map[LinkID]bool{links["ab"]: true}
	if got := g.IsolatedCustomers(down); len(got) != 0 {
		t.Errorf("isolated = %v, want none (ring reroutes)", got)
	}
}

func TestIsolationEmptyDownSet(t *testing.T) {
	n, _ := tinyNetwork(t)
	g := NewGraph(n)
	if got := g.IsolatedCustomers(nil); got != nil {
		t.Errorf("isolated = %v, want nil", got)
	}
}

func TestReachable(t *testing.T) {
	n, links := tinyNetwork(t)
	g := NewGraph(n)
	if !g.Reachable("cpe-1", "core-c", nil) {
		t.Error("cpe-1 should reach core-c on healthy network")
	}
	down := map[LinkID]bool{links["u1"]: true}
	if g.Reachable("cpe-1", "core-c", down) {
		t.Error("cpe-1 should be cut off with its uplink down")
	}
	if !g.Reachable("core-a", "core-b", down) {
		t.Error("core ring should be unaffected")
	}
	if g.Reachable("cpe-1", "nonexistent", nil) {
		t.Error("unknown router should not be reachable")
	}
}

func TestBackboneComponentPrefersCoreMajority(t *testing.T) {
	n, links := tinyNetwork(t)
	g := NewGraph(n)
	// Cut core-c off from a and b (including the detour through the
	// dual-homed cpe-2): component with 2 cores wins.
	down := func(id LinkID) bool {
		return id == links["bc"] || id == links["ca"] || id == links["u2b"]
	}
	labels, comps := g.Components(down)
	if comps < 2 {
		t.Fatalf("expected a partition, got %d components", comps)
	}
	backbone := g.BackboneComponent(labels)
	idx := -1
	for i, name := range g.names {
		if name == "core-a" {
			idx = i
		}
	}
	if labels[idx] != backbone {
		t.Error("backbone component should contain the 2-core side")
	}
}
