package topo

import (
	"reflect"
	"testing"
)

func mustGenerate(t *testing.T, spec Spec) *Network {
	t.Helper()
	n, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return n
}

func TestGenerateDefaultScale(t *testing.T) {
	n := mustGenerate(t, DefaultSpec())
	core, cpe := n.CountRouters()
	if core != 60 || cpe != 175 {
		t.Errorf("routers = %d core, %d cpe; want 60, 175", core, cpe)
	}
	coreLinks, cpeLinks := n.CountLinks()
	if coreLinks != 84 {
		t.Errorf("core links = %d, want 84", coreLinks)
	}
	if cpeLinks != 215 {
		t.Errorf("cpe links = %d, want 215", cpeLinks)
	}
	if got := len(n.MultiLinkAdjacencies()); got != 26 {
		t.Errorf("multi-link adjacency pairs = %d, want 26", got)
	}
	if len(n.Customers) != 120 {
		t.Errorf("customers = %d, want 120", len(n.Customers))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, DefaultSpec())
	b := mustGenerate(t, DefaultSpec())
	if len(a.Links) != len(b.Links) {
		t.Fatalf("link counts differ: %d vs %d", len(a.Links), len(b.Links))
	}
	for i := range a.Links {
		if !reflect.DeepEqual(a.Links[i], b.Links[i]) {
			t.Fatalf("link %d differs:\n%+v\n%+v", i, a.Links[i], b.Links[i])
		}
	}
}

func TestGenerateUniqueSubnets(t *testing.T) {
	n := mustGenerate(t, DefaultSpec())
	seen := make(map[uint32]LinkID)
	for _, l := range n.Links {
		if l.Subnet&1 != 0 {
			t.Errorf("link %s subnet %s not /31-aligned", l.ID, FormatIPv4(l.Subnet))
		}
		if prev, dup := seen[l.Subnet]; dup {
			t.Errorf("subnet %s shared by %s and %s", FormatIPv4(l.Subnet), prev, l.ID)
		}
		seen[l.Subnet] = l.ID
	}
}

func TestGenerateInterfaceAddressing(t *testing.T) {
	n := mustGenerate(t, DefaultSpec())
	for _, l := range n.Links {
		ra := n.Routers[l.A.Host]
		rb := n.Routers[l.B.Host]
		ia, ib := ra.Interface(l.A.Port), rb.Interface(l.B.Port)
		if ia == nil || ib == nil {
			t.Fatalf("link %s missing interface records", l.ID)
		}
		if ia.Addr != l.Subnet || ib.Addr != l.Subnet+1 {
			t.Errorf("link %s addresses %s/%s, want %s/%s", l.ID,
				FormatIPv4(ia.Addr), FormatIPv4(ib.Addr),
				FormatIPv4(l.Subnet), FormatIPv4(l.Subnet+1))
		}
		if ia.Link != l.ID || ib.Link != l.ID {
			t.Errorf("link %s interfaces back-reference %s / %s", l.ID, ia.Link, ib.Link)
		}
	}
}

func TestGenerateEveryCPEHasUplink(t *testing.T) {
	n := mustGenerate(t, DefaultSpec())
	degree := make(map[string]int)
	for _, l := range n.Links {
		degree[l.A.Host]++
		degree[l.B.Host]++
	}
	for name, r := range n.Routers {
		if r.Class == CPE && degree[name] == 0 {
			t.Errorf("CPE router %s has no uplink", name)
		}
	}
}

func TestGenerateCustomersCoverAllCPE(t *testing.T) {
	n := mustGenerate(t, DefaultSpec())
	assigned := make(map[string]string)
	for _, c := range n.Customers {
		if len(c.Routers) == 0 {
			t.Errorf("customer %s has no routers", c.Name)
		}
		for _, r := range c.Routers {
			if prev, dup := assigned[r]; dup {
				t.Errorf("router %s assigned to both %s and %s", r, prev, c.Name)
			}
			assigned[r] = c.Name
		}
	}
	_, cpe := n.CountRouters()
	if len(assigned) != cpe {
		t.Errorf("assigned %d CPE routers to customers, want %d", len(assigned), cpe)
	}
}

func TestGenerateConnected(t *testing.T) {
	n := mustGenerate(t, DefaultSpec())
	g := NewGraph(n)
	_, comps := g.Components(nil)
	if comps != 1 {
		t.Errorf("healthy network has %d components, want 1", comps)
	}
}

func TestGenerateLookupIndexes(t *testing.T) {
	n := mustGenerate(t, DefaultSpec())
	for _, l := range n.Links {
		if got, ok := n.LinkByID(l.ID); !ok || got != l {
			t.Errorf("LinkByID(%s) failed", l.ID)
		}
		if got, ok := n.LinkBySubnet(l.Subnet); !ok || got != l {
			t.Errorf("LinkBySubnet(%s) failed", FormatIPv4(l.Subnet))
		}
	}
	for name, r := range n.Routers {
		if got, ok := n.RouterByID(r.SystemID); !ok || got.Name != name {
			t.Errorf("RouterByID(%v) failed for %s", r.SystemID, name)
		}
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	spec := DefaultSpec()
	spec.CoreRouters = 2
	if _, err := Generate(spec); err == nil {
		t.Error("expected error for too few core routers")
	}
	spec = DefaultSpec()
	spec.Customers = spec.CPERouters + 1
	if _, err := Generate(spec); err == nil {
		t.Error("expected error for more customers than CPE routers")
	}
}

func TestAddLinkValidation(t *testing.T) {
	n := NewNetwork()
	for _, name := range []string{"a", "b"} {
		r := &Router{Name: name, Class: Core, SystemID: SystemIDFromIndex(len(n.Routers) + 1)}
		if err := n.AddRouter(r); err != nil {
			t.Fatal(err)
		}
	}
	ea := Endpoint{Host: "a", Port: "p0"}
	eb := Endpoint{Host: "b", Port: "p0"}
	if _, err := n.AddLink(ea, eb, 3, 10); err == nil {
		t.Error("odd subnet accepted")
	}
	if _, err := n.AddLink(ea, Endpoint{Host: "zzz", Port: "p0"}, 2, 10); err == nil {
		t.Error("unknown router accepted")
	}
	if _, err := n.AddLink(ea, eb, 2, 10); err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if _, err := n.AddLink(ea, Endpoint{Host: "b", Port: "p1"}, 4, 10); err == nil {
		t.Error("interface reuse accepted")
	}
	if _, err := n.AddLink(Endpoint{Host: "a", Port: "p1"}, Endpoint{Host: "b", Port: "p1"}, 2, 10); err == nil {
		t.Error("duplicate subnet accepted")
	}
}

func TestAddRouterDuplicates(t *testing.T) {
	n := NewNetwork()
	r1 := &Router{Name: "a", SystemID: SystemIDFromIndex(1)}
	if err := n.AddRouter(r1); err != nil {
		t.Fatal(err)
	}
	if err := n.AddRouter(&Router{Name: "a", SystemID: SystemIDFromIndex(2)}); err == nil {
		t.Error("duplicate hostname accepted")
	}
	if err := n.AddRouter(&Router{Name: "b", SystemID: SystemIDFromIndex(1)}); err == nil {
		t.Error("duplicate system ID accepted")
	}
}
