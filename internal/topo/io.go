package topo

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteCustomersJSON serializes the customer list: operational
// knowledge that accompanies the captures (it is not derivable from
// router configurations).
func WriteCustomersJSON(w io.Writer, customers []*Customer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(customers)
}

// ReadCustomersJSON parses a customer list written by
// WriteCustomersJSON.
func ReadCustomersJSON(r io.Reader) ([]*Customer, error) {
	var customers []*Customer
	if err := json.NewDecoder(r).Decode(&customers); err != nil {
		return nil, fmt.Errorf("topo: customers: %w", err)
	}
	return customers, nil
}

// WriteDOT renders the network as a Graphviz graph: core routers as
// boxes, CPE routers as ellipses, parallel (multi-link-adjacency)
// links dashed. Render with e.g. `sfdp -Tsvg topology.dot`.
func WriteDOT(w io.Writer, n *Network) error {
	var b strings.Builder
	b.WriteString("graph netfail {\n")
	b.WriteString("  layout=sfdp; overlap=false; splines=true;\n")
	b.WriteString("  node [fontsize=9, fontname=\"sans-serif\"];\n")
	for _, name := range n.RouterNames {
		r := n.Routers[name]
		shape := "ellipse"
		fill := "#dceefb"
		if r.Class == Core {
			shape = "box"
			fill = "#fde2c8"
		}
		fmt.Fprintf(&b, "  %q [shape=%s, style=filled, fillcolor=%q];\n", name, shape, fill)
	}
	for _, l := range n.Links {
		style := "solid"
		if n.IsMultiLink(l.ID) {
			style = "dashed"
		}
		fmt.Fprintf(&b, "  %q -- %q [style=%s, tooltip=%q];\n",
			l.A.Host, l.B.Host, style, string(l.ID))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
