package topo

import (
	"fmt"
	"sort"
)

// Customer is a CENIC customer site served by one or more CPE routers.
// A customer is isolated when none of its CPE routers can reach the
// backbone (paper §4.4).
type Customer struct {
	// Name is the site name, e.g. "site-042".
	Name string
	// Routers lists the hostnames of the site's CPE routers.
	Routers []string
}

// Network is the complete modeled topology.
type Network struct {
	// Routers maps hostname to router, with RouterNames giving a
	// stable iteration order.
	Routers     map[string]*Router
	RouterNames []string
	// Links lists every physical link in canonical order.
	Links []*Link
	// Customers lists the customer sites.
	Customers []*Customer

	byID        map[SystemID]*Router
	byLink      map[LinkID]*Link
	byAdjacency map[AdjacencyKey][]*Link
	bySubnet    map[uint32]*Link
}

// NewNetwork creates an empty network.
func NewNetwork() *Network {
	return &Network{
		Routers:     make(map[string]*Router),
		byID:        make(map[SystemID]*Router),
		byLink:      make(map[LinkID]*Link),
		byAdjacency: make(map[AdjacencyKey][]*Link),
		bySubnet:    make(map[uint32]*Link),
	}
}

// AddRouter registers a router. It returns an error for duplicate
// hostnames or system IDs.
func (n *Network) AddRouter(r *Router) error {
	if _, dup := n.Routers[r.Name]; dup {
		return fmt.Errorf("topo: duplicate router %q", r.Name)
	}
	if _, dup := n.byID[r.SystemID]; dup {
		return fmt.Errorf("topo: duplicate system ID %v (router %q)", r.SystemID, r.Name)
	}
	n.Routers[r.Name] = r
	n.RouterNames = append(n.RouterNames, r.Name)
	n.byID[r.SystemID] = r
	return nil
}

// AddLink connects two existing routers with a new link, creating the
// interfaces on both routers and assigning the /31 addresses.
func (n *Network) AddLink(a, b Endpoint, subnet, metric uint32) (*Link, error) {
	ra, ok := n.Routers[a.Host]
	if !ok {
		return nil, fmt.Errorf("topo: unknown router %q", a.Host)
	}
	rb, ok := n.Routers[b.Host]
	if !ok {
		return nil, fmt.Errorf("topo: unknown router %q", b.Host)
	}
	if ra.Interface(a.Port) != nil {
		return nil, fmt.Errorf("topo: interface %v already in use", a)
	}
	if rb.Interface(b.Port) != nil {
		return nil, fmt.Errorf("topo: interface %v already in use", b)
	}
	if subnet&1 != 0 {
		return nil, fmt.Errorf("topo: /31 subnet %s not aligned", FormatIPv4(subnet))
	}
	if _, dup := n.bySubnet[subnet]; dup {
		return nil, fmt.Errorf("topo: subnet %s already allocated", FormatIPv4(subnet))
	}

	id := MakeLinkID(a, b)
	if _, dup := n.byLink[id]; dup {
		return nil, fmt.Errorf("topo: duplicate link %s", id)
	}
	// Canonical endpoint order must match the LinkID order.
	ea, eb := id.Endpoints()
	class := CoreLink
	if n.Routers[ea.Host].Class == CPE || n.Routers[eb.Host].Class == CPE {
		class = CPELink
	}
	l := &Link{
		ID:        id,
		A:         ea,
		B:         eb,
		Class:     class,
		Subnet:    subnet,
		Metric:    metric,
		Adjacency: MakeAdjacencyKey(ra.SystemID, rb.SystemID),
	}
	n.Links = append(n.Links, l)
	n.byLink[id] = l
	n.byAdjacency[l.Adjacency] = append(n.byAdjacency[l.Adjacency], l)
	n.bySubnet[subnet] = l

	addrA, addrB := subnet, subnet+1
	if ea.Host != a.Host || ea.Port != a.Port {
		// a was the lexicographically later endpoint.
		ra, rb = rb, ra
	}
	ra.Interfaces = append(ra.Interfaces, &Interface{
		Name: ea.Port, Router: ea.Host, Addr: addrA, Link: id,
		Description: fmt.Sprintf("to %s %s", eb.Host, eb.Port),
	})
	rb.Interfaces = append(rb.Interfaces, &Interface{
		Name: eb.Port, Router: eb.Host, Addr: addrB, Link: id,
		Description: fmt.Sprintf("to %s %s", ea.Host, ea.Port),
	})
	return l, nil
}

// RouterByID resolves an OSI system ID to a router, as the IS-IS
// listener must before any link mapping is possible.
func (n *Network) RouterByID(id SystemID) (*Router, bool) {
	r, ok := n.byID[id]
	return r, ok
}

// LinkByID returns the link with the given canonical name.
func (n *Network) LinkByID(id LinkID) (*Link, bool) {
	l, ok := n.byLink[id]
	return l, ok
}

// LinksByAdjacency returns all parallel links between a router pair.
func (n *Network) LinksByAdjacency(key AdjacencyKey) []*Link {
	return n.byAdjacency[key]
}

// LinkBySubnet resolves a /31 network address to its link, the mapping
// used when inferring link state from Extended IP Reachability.
func (n *Network) LinkBySubnet(subnet uint32) (*Link, bool) {
	l, ok := n.bySubnet[subnet]
	return l, ok
}

// MultiLinkAdjacencies returns the adjacency keys carried by more than
// one physical link. Links under these keys are excluded from the
// IS-reachability analysis because their adjacency state is a function
// of n physical links (paper §3.4).
func (n *Network) MultiLinkAdjacencies() []AdjacencyKey {
	var keys []AdjacencyKey
	for k, links := range n.byAdjacency {
		if len(links) > 1 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Lo != keys[j].Lo {
			return keys[i].Lo.Less(keys[j].Lo)
		}
		return keys[i].Hi.Less(keys[j].Hi)
	})
	return keys
}

// IsMultiLink reports whether the link shares its adjacency with a
// parallel link.
func (n *Network) IsMultiLink(id LinkID) bool {
	l, ok := n.byLink[id]
	if !ok {
		return false
	}
	return len(n.byAdjacency[l.Adjacency]) > 1
}

// CriticalUplinks returns the links whose individual failure isolates
// a customer: the sole uplink of the sole CPE router of a
// single-router customer site. In operational networks these tend to
// be small, stable tail sites — the failure-workload generator treats
// them accordingly.
func (n *Network) CriticalUplinks() map[LinkID]bool {
	critical := make(map[LinkID]bool)
	for _, c := range n.Customers {
		if len(c.Routers) != 1 {
			continue
		}
		r, ok := n.Routers[c.Routers[0]]
		if !ok {
			continue
		}
		var links []LinkID
		for _, ifc := range r.Interfaces {
			if ifc.Link != "" {
				links = append(links, ifc.Link)
			}
		}
		if len(links) == 1 {
			critical[links[0]] = true
		}
	}
	return critical
}

// CountRouters returns the number of routers in each class.
func (n *Network) CountRouters() (core, cpe int) {
	for _, r := range n.Routers {
		if r.Class == Core {
			core++
		} else {
			cpe++
		}
	}
	return core, cpe
}

// CountLinks returns the number of links in each class.
func (n *Network) CountLinks() (core, cpe int) {
	for _, l := range n.Links {
		if l.Class == CoreLink {
			core++
		} else {
			cpe++
		}
	}
	return core, cpe
}
