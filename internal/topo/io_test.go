package topo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCustomersJSONRoundTrip(t *testing.T) {
	customers := []*Customer{
		{Name: "site-001", Routers: []string{"cpe-001", "cpe-002"}},
		{Name: "site-002", Routers: []string{"cpe-003"}},
	}
	var buf bytes.Buffer
	if err := WriteCustomersJSON(&buf, customers); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCustomersJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, customers) {
		t.Errorf("round trip: %+v != %+v", got, customers)
	}
}

func TestReadCustomersJSONError(t *testing.T) {
	if _, err := ReadCustomersJSON(strings.NewReader("nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCriticalUplinks(t *testing.T) {
	n, links := tinyNetwork(t)
	// site-1: single router cpe-1 with one uplink → critical.
	// site-2: single router cpe-2 with two uplinks → not critical.
	critical := n.CriticalUplinks()
	if len(critical) != 1 || !critical[links["u1"]] {
		t.Errorf("critical = %v, want only u1", critical)
	}
	// A two-router customer is never critical.
	n.Customers = append(n.Customers, &Customer{Name: "site-3", Routers: []string{"cpe-1", "cpe-2"}})
	n.Customers = n.Customers[2:] // replace list with just the 2-router site
	if got := n.CriticalUplinks(); len(got) != 0 {
		t.Errorf("multi-router customer marked critical: %v", got)
	}
}

func TestWriteDOT(t *testing.T) {
	n, links := tinyNetwork(t)
	// Make one adjacency multi-link to exercise the dashed style.
	if _, err := n.AddLink(Endpoint{Host: "core-a", Port: "px"}, Endpoint{Host: "core-b", Port: "qx"}, 20, 10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, n); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph netfail {", `"core-a" [shape=box`, `"cpe-1" [shape=ellipse`,
		`"core-a" -- "core-b" [style=dashed`, "}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// One edge per link.
	if got := strings.Count(out, " -- "); got != len(n.Links) {
		t.Errorf("edges = %d, want %d", got, len(n.Links))
	}
	_ = links
}
