package topo

import "fmt"

// Domain is one shard of a multi-domain topology: an IS-IS area
// simulated and captured independently of its siblings. Domains are
// fully disjoint — no shared routers, links, subnets, or system IDs —
// which is what lets the sharded analysis treat per-domain results as
// concatenable without a global merge sort.
type Domain struct {
	// Name labels the domain (the capture manifest's Domain field).
	Name string
	// Net is the domain's network.
	Net *Network
}

// FabricSpec parameterizes the data-center fabric generator: a set of
// identical spine/leaf domains laid out alongside (and disjoint from)
// the CENIC-style backbone. One domain is one two-tier Clos pod:
// every spine connects to every leaf.
type FabricSpec struct {
	// Domains is the number of fabric domains to generate.
	Domains int
	// Spines and Leaves size each domain; each domain carries
	// Spines*Leaves links.
	Spines int
	Leaves int
	// Metric is the configured IS-IS metric on fabric links.
	Metric uint32
}

// DefaultFabricSpec sizes one pod at roughly one CENIC of links (10
// spines x 30 leaves = 300 links vs CENIC's 299), so an N-domain
// fabric plus the backbone is an (N+1)x-CENIC campaign.
func DefaultFabricSpec(domains int) FabricSpec {
	return FabricSpec{Domains: domains, Spines: 10, Leaves: 30, Metric: 10}
}

// fabricIDBase keeps fabric system-ID indexes clear of the backbone's
// (cores at 1+, CPEs at 1000+): domain d uses 10000+d*1000 for spines
// and 10000+d*1000+500 for leaves.
const fabricIDBase = 10000

// Fabric generates the fabric domains. Namespaces are disjoint from
// the backbone generator's and from each other: hostnames carry the
// domain prefix ("d01-spine-01"), loopbacks come from per-domain /24s
// under 10.(100+d), and link /31s from 138.(d).0.0/16 — all clear of
// the backbone's 10.1/10.2 loopbacks and 137.164/16 links.
func Fabric(spec FabricSpec) ([]Domain, error) {
	if spec.Domains < 0 || spec.Domains > 80 {
		return nil, fmt.Errorf("topo: fabric domains %d out of range [0, 80]", spec.Domains)
	}
	if spec.Domains > 0 && (spec.Spines < 1 || spec.Leaves < 1) {
		return nil, fmt.Errorf("topo: fabric needs at least 1 spine and 1 leaf per domain")
	}
	if spec.Spines > 499 || spec.Leaves > 499 {
		return nil, fmt.Errorf("topo: fabric domain too large (%d spines, %d leaves; max 499 each)", spec.Spines, spec.Leaves)
	}
	metric := spec.Metric
	if metric == 0 {
		metric = 10
	}
	domains := make([]Domain, 0, spec.Domains)
	for d := 1; d <= spec.Domains; d++ {
		n := NewNetwork()
		spines := make([]string, spec.Spines)
		for i := 0; i < spec.Spines; i++ {
			name := fmt.Sprintf("d%02d-spine-%02d", d, i+1)
			spines[i] = name
			if err := n.AddRouter(&Router{
				Name:     name,
				Class:    Core,
				SystemID: SystemIDFromIndex(fabricIDBase + d*1000 + i + 1),
				Loopback: 10<<24 | uint32(100+d)<<16 | uint32(i+1),
			}); err != nil {
				return nil, err
			}
		}
		leaves := make([]string, spec.Leaves)
		for i := 0; i < spec.Leaves; i++ {
			name := fmt.Sprintf("d%02d-leaf-%03d", d, i+1)
			leaves[i] = name
			if err := n.AddRouter(&Router{
				Name:     name,
				Class:    CPE,
				SystemID: SystemIDFromIndex(fabricIDBase + d*1000 + 500 + i + 1),
				Loopback: 10<<24 | uint32(100+d)<<16 | 1<<8 | uint32(i+1),
			}); err != nil {
				return nil, err
			}
		}

		alloc := &subnetAllocator{next: 138<<24 | uint32(d)<<16}
		ports := newPortAllocator()
		for _, spine := range spines {
			sr := n.Routers[spine]
			for _, leaf := range leaves {
				lr := n.Routers[leaf]
				a := Endpoint{Host: spine, Port: ports.next(sr)}
				b := Endpoint{Host: leaf, Port: ports.next(lr)}
				if _, err := n.AddLink(a, b, alloc.take(), metric); err != nil {
					return nil, err
				}
			}
		}
		// Every leaf serves one customer site, so domain failures feed
		// the isolation analysis the same way backbone CPE uplinks do.
		for i, leaf := range leaves {
			n.Customers = append(n.Customers, &Customer{
				Name:    fmt.Sprintf("d%02d-site-%03d", d, i+1),
				Routers: []string{leaf},
			})
		}
		domains = append(domains, Domain{Name: fmt.Sprintf("fabric-%02d", d), Net: n})
	}
	return domains, nil
}

// Merge unions disjoint networks into one. The inputs must not share
// hostnames, system IDs, link IDs, or subnets (the Domain contract);
// routers and links are registered by reference, so the merged view
// aliases the inputs — suitable for the read-only consumers (config
// mining, the IS-IS listener, analysis), not for further topology
// edits.
func Merge(nets ...*Network) (*Network, error) {
	out := NewNetwork()
	for _, n := range nets {
		for _, name := range n.RouterNames {
			if err := out.AddRouter(n.Routers[name]); err != nil {
				return nil, err
			}
		}
		for _, l := range n.Links {
			if _, dup := out.byLink[l.ID]; dup {
				return nil, fmt.Errorf("topo: merge: duplicate link %s", l.ID)
			}
			if _, dup := out.bySubnet[l.Subnet]; dup {
				return nil, fmt.Errorf("topo: merge: duplicate subnet %s", FormatIPv4(l.Subnet))
			}
			out.Links = append(out.Links, l)
			out.byLink[l.ID] = l
			out.byAdjacency[l.Adjacency] = append(out.byAdjacency[l.Adjacency], l)
			out.bySubnet[l.Subnet] = l
		}
		out.Customers = append(out.Customers, n.Customers...)
	}
	return out, nil
}
