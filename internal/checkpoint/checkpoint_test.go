package checkpoint

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netfail/internal/faultinject"
)

// appendN appends records "rec-1".."rec-n" and returns the sequences.
func appendN(t *testing.T, s *Store, n int) []uint64 {
	t.Helper()
	var seqs []uint64
	for i := 1; i <= n; i++ {
		seq, err := s.Append([]byte(fmt.Sprintf("rec-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// wantRecords asserts rec holds exactly records seq 1..n in order with
// the appendN payloads.
func wantRecords(t *testing.T, rec *Recovery, n int) {
	t.Helper()
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d has seq %d, want %d", i, r.Seq, i+1)
		}
		if want := fmt.Sprintf("rec-%d", i+1); string(r.Data) != want {
			t.Errorf("record %d data = %q, want %q", i, r.Data, want)
		}
	}
}

func TestAppendThenRecoverWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.LastSeq() != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	seqs := appendN(t, s, 5)
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Errorf("append %d returned seq %d", i+1, seq)
		}
	}
	// No Close: simulate SIGKILL. Append promises kernel durability, so
	// reopening the same files must see everything.
	s2, rec2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantRecords(t, rec2, 5)
	if rec2.WALRecords != 5 || rec2.SnapshotSeq != 0 {
		t.Errorf("WALRecords=%d SnapshotSeq=%d, want 5, 0", rec2.WALRecords, rec2.SnapshotSeq)
	}
	if !rec2.Report.Clean() {
		t.Errorf("clean store recovered dirty: %s", rec2.Report)
	}
	// Sequences continue, not restart.
	if seq, err := s2.Append([]byte("rec-6")); err != nil || seq != 6 {
		t.Errorf("post-recovery append: seq=%d err=%v, want 6", seq, err)
	}
}

func TestSnapshotThenAppendThenRecover(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 3)
	var hist []Record
	for i := 1; i <= 3; i++ {
		hist = append(hist, Record{Seq: uint64(i), Data: []byte(fmt.Sprintf("rec-%d", i))})
	}
	if err := s.Snapshot(hist); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 5; i++ {
		if _, err := s.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rec, 5)
	if rec.SnapshotSeq != 3 || rec.WALRecords != 2 {
		t.Errorf("SnapshotSeq=%d WALRecords=%d, want 3, 2", rec.SnapshotSeq, rec.WALRecords)
	}
}

func TestSnapshotRetiresCoveredFiles(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 3)
	if err := s.Snapshot([]Record{{Seq: 1, Data: []byte("rec-1")}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]Record{{Seq: 1, Data: []byte("rec-1")}}); err != nil {
		t.Fatal(err)
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Errorf("%d snapshots on disk after two snapshots, want the older retired", len(snaps))
	}
	// Only the fresh (empty) post-snapshot segment may remain.
	if len(wals) != 1 || wals[0].seq != 4 {
		t.Errorf("WAL segments = %+v, want only wal-...4", wals)
	}
}

// TestRecoveryDeduplicatesSnapshotWALOverlap covers the crash window
// between "snapshot renamed into place" and "covered WAL segments
// retired": both files hold seqs 1..3, and recovery must count each
// sequence once.
func TestRecoveryDeduplicatesSnapshotWALOverlap(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Hand-write the snapshot the way Snapshot would have, but leave
	// the overlapping WAL segment in place (the un-retired crash state).
	var buf bytes.Buffer
	var hist []Record
	for i := 1; i <= 3; i++ {
		hist = append(hist, Record{Seq: uint64(i), Data: []byte(fmt.Sprintf("rec-%d", i))})
	}
	if err := writeSnapshot(&buf, 3, hist); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000003.ckpt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rec, 5)
	if rec.SnapshotSeq != 3 || rec.WALRecords != 2 {
		t.Errorf("SnapshotSeq=%d WALRecords=%d, want 3, 2 (seqs 1-3 deduplicated)", rec.SnapshotSeq, rec.WALRecords)
	}
}

func TestTornSnapshotWriteFailsAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	// Tear every snapshot write 40 bytes in: mid-meta-frame, so the
	// file on disk is undecodable garbage behind a valid header.
	s, _, err := Open(dir, SnapshotTap(func(w io.Writer) io.Writer {
		return faultinject.TornWriter(w, 40)
	}))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 3)
	err = s.Snapshot([]Record{{Seq: 1, Data: []byte("rec-1")}})
	if err == nil {
		t.Fatal("torn snapshot write reported success")
	}
	// The torn temp file must not have been renamed into place, and the
	// WAL must still recover everything.
	snaps, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 0 {
		t.Fatalf("torn snapshot left %+v on disk", snaps)
	}
	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rec, 3)
	if !rec.Report.Clean() {
		t.Errorf("recovery not clean after failed (unrenamed) snapshot: %s", rec.Report)
	}
}

func TestDamagedNewestSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 3)
	var hist []Record
	for i := 1; i <= 3; i++ {
		hist = append(hist, Record{Seq: uint64(i), Data: []byte(fmt.Sprintf("rec-%d", i))})
	}
	if err := s.Snapshot(hist); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// A newer snapshot damaged on disk (bit rot, torn rename on a
	// non-atomic filesystem): header intact, frames garbage.
	damaged := append([]byte(snapHeader), bytes.Repeat([]byte{0xFF}, 64)...)
	if err := os.WriteFile(filepath.Join(dir, "snap-0000000000000004.ckpt"), damaged, 0o644); err != nil {
		t.Fatal(err)
	}

	// Lenient: fall back to the older intact snapshot, accounting the
	// damage.
	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rec, 3)
	if rec.SnapshotSeq != 3 {
		t.Errorf("SnapshotSeq = %d, want fallback to 3", rec.SnapshotSeq)
	}
	if rec.Report.Clean() {
		t.Error("damaged snapshot not accounted in the salvage report")
	}

	// Strict: the damage is an error, not a silent fallback.
	if _, _, err := Open(dir, Strict()); err == nil {
		t.Error("strict recovery accepted a damaged snapshot")
	}
}

func TestTornWALTailIsSalvagedLeniently(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final frame: chop the segment's last 4 bytes, the
	// SIGKILL-mid-write shape.
	_, wals, err := scanDir(dir)
	if err != nil || len(wals) != 1 {
		t.Fatalf("wals=%v err=%v", wals, err)
	}
	data, err := os.ReadFile(wals[0].path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(wals[0].path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rec, 4)
	if rec.Report.Clean() || rec.Report.Skipped != 1 {
		t.Errorf("torn tail accounting: %s, want 1 skip", rec.Report)
	}
	if rec.Report.Reasons["torn frame payload"] != 1 {
		t.Errorf("skip reasons = %v, want torn frame payload", rec.Report.Reasons)
	}

	// Strict recovery must refuse the same directory.
	if _, _, err := Open(dir, Strict()); err == nil || !strings.Contains(err.Error(), "torn frame payload") {
		t.Errorf("strict recovery of torn tail: %v", err)
	}
}

func TestMidSegmentCorruptionResynchronizes(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, wals, err := scanDir(dir)
	if err != nil || len(wals) != 1 {
		t.Fatalf("wals=%v err=%v", wals, err)
	}
	data, err := os.ReadFile(wals[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte of record 3: its CRC fails, records 4 and 5
	// must still be found via resync. Frames here are fixed-size
	// (5-byte "rec-N" payloads), so locate frame 3 arithmetically.
	frameLen := frameOverhead + 8 + len("rec-1")
	off := len(walHeader) + 2*frameLen + frameOverhead + 8 // third frame's data bytes
	data[off] ^= 0xFF
	if err := os.WriteFile(wals[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 4 {
		t.Fatalf("recovered %d records, want 4 (seq 3 lost)", len(rec.Records))
	}
	wantSeqs := []uint64{1, 2, 4, 5}
	for i, r := range rec.Records {
		if r.Seq != wantSeqs[i] {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, wantSeqs[i])
		}
	}
	if rec.Report.Reasons["crc mismatch"] != 1 {
		t.Errorf("skip reasons = %v, want one crc mismatch", rec.Report.Reasons)
	}
}

func TestStrictReaderErrorsRecordAccurately(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(walHeader)
	buf.Write(appendFrame(nil, 1, []byte("alpha")))
	buf.Write(appendFrame(nil, 2, []byte("beta")))
	frame3 := appendFrame(nil, 3, []byte("gamma"))
	frame3[len(frame3)-1] ^= 0xFF // corrupt record 3's payload
	offset3 := buf.Len() - len(walHeader)
	buf.Write(frame3)

	_, err := ReadWAL(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("strict reader accepted a corrupt frame")
	}
	want := fmt.Sprintf("record 3 at offset %d: crc mismatch", offset3)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q, want it to contain %q", err, want)
	}

	records, rep, err := ReadWALLenient(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 || rep.Kept != 2 || rep.Skipped != 1 {
		t.Errorf("lenient: %d records, %s", len(records), rep)
	}
}

func TestFsyncEachAndSyncSucceed(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, FsyncEach())
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, s, 2)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append([]byte("late")); err == nil {
		t.Error("append after Close succeeded")
	}
	_, rec, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantRecords(t, rec, 2)
}

func TestScanDirDeletesTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "snap-12345.tmp")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := scanDir(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Errorf("temp file survived the scan: %v", err)
	}
}
