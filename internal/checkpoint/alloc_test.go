package checkpoint

import "testing"

// TestAppendAllocBudget pins the kernel-durable append path to zero
// steady-state allocations: after the first append grows the store's
// frame buffer, every subsequent record encodes into it in place. A
// regression to a per-append frame allocation raises the rate to one
// and fails the pin.
func TestAppendAllocBudget(t *testing.T) {
	st, _, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	data := []byte("alloc budget record payload: sixty-four bytes of syslog-ish tex")
	if _, err := st.Append(data); err != nil { // grow the frame buffer
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := st.Append(data); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("Append allocates %.2f times per record, budget is 0", avg)
	}
}
