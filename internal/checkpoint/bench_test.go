package checkpoint

import (
	"fmt"
	"testing"
)

// BenchmarkAppend measures the kernel-durable append path — the
// per-record cost every admitted ingest record pays in netfail-serve.
func BenchmarkAppend(b *testing.B) {
	st, _, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	data := []byte("benchmark record payload: sixty-four bytes of syslog-ish text..")
	b.SetBytes(int64(len(data) + frameOverhead + 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures cold-start recovery over a WAL holding
// 4096 records with no snapshot — the worst-case restart a crashed
// netfail-serve pays before it can serve again.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	st, _, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if _, err := st.Append([]byte(fmt.Sprintf("record %d: link state transition payload", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, rec, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != 4096 {
			b.Fatalf("recovered %d records, want 4096", len(rec.Records))
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
