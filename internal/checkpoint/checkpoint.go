// Package checkpoint gives the serving path crash-safe state: an
// atomic snapshot file plus a length-prefixed, CRC-framed append WAL
// for the records that arrive between snapshots.
//
// The paper's listener ran unattended for 13 months and its own
// outages had to be sanitized out of the trace after the fact (§3.3);
// the availability literature (Simache & Kaâniche, PAPERS.md) shows
// reboot windows are exactly the intervals a log-based monitor must
// not silently lose. The discipline here is the classic one:
//
//   - every ingested record is appended to the WAL and flushed to the
//     kernel before it is acknowledged, so a SIGKILL loses nothing
//     that was acked (fsync-per-append upgrades that to power-loss
//     safety);
//   - snapshots are written to a temp file, fsynced, and renamed into
//     place, so a crash mid-snapshot leaves the previous snapshot
//     intact and a torn temp file is ignored at recovery;
//   - recovery loads the newest intact snapshot and replays WAL
//     records with later sequence numbers, deduplicating by sequence,
//     so the crash window between "snapshot renamed" and "old WAL
//     deleted" double-counts nothing.
//
// Frames are self-checking (sync marker, length prefix, CRC-32 over
// the payload), and the reader comes in the repo's usual strict /
// lenient pair: strict recovery errors record-accurately on the first
// damaged frame, lenient recovery salvages every decodable frame and
// accounts the rest in a salvage.Report — the same machinery the
// line-oriented capture readers use.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"netfail/internal/salvage"
)

// On-disk format constants. Frame layout, after the per-file header:
//
//	sync[2] = A5 5A | len u32le | crc u32le | payload[len]
//	payload = seq u64le | data
//
// crc is CRC-32 (IEEE) over the payload. len covers the payload only.
const (
	walHeader  = "NFWAL1\n"
	snapHeader = "NFSNAP1\n"

	sync0, sync1  = 0xA5, 0x5A
	frameOverhead = 2 + 4 + 4

	// maxFrameLen guards the reader against a corrupt length prefix
	// demanding a multi-gigabyte allocation.
	maxFrameLen = 64 << 20
)

// A Record is one durably logged payload with its sequence number.
// Sequences are contiguous from 1 in a healthy store; recovery after
// salvage may expose gaps, which the Report accounts.
type Record struct {
	Seq  uint64
	Data []byte
}

// options carries Open's configuration.
type options struct {
	strict    bool
	fsyncEach bool
	tap       func(io.Writer) io.Writer
}

// Option configures Open.
type Option func(*options)

// Strict makes recovery fail record-accurately on the first damaged
// frame instead of salvaging around it.
func Strict() Option { return func(o *options) { o.strict = true } }

// FsyncEach upgrades Append durability from kill-safe (flushed to the
// kernel) to power-loss-safe (fsynced) at a per-record fsync cost.
func FsyncEach() Option { return func(o *options) { o.fsyncEach = true } }

// SnapshotTap wraps the snapshot writer — the fault-injection hook
// the chaos harness uses to tear a checkpoint write mid-stream.
func SnapshotTap(fn func(io.Writer) io.Writer) Option {
	return func(o *options) { o.tap = fn }
}

// Recovery describes what Open reconstructed from disk.
type Recovery struct {
	// Records is the full recovered history in sequence order:
	// snapshot records first, then WAL records with later sequences.
	Records []Record
	// SnapshotSeq is the highest sequence the loaded snapshot covers
	// (0 when no snapshot was usable).
	SnapshotSeq uint64
	// WALRecords is how many of Records came from WAL replay.
	WALRecords int
	// Report accounts every frame lenient recovery had to skip —
	// torn tails, CRC mismatches, damaged snapshots. Clean() means
	// the store was intact.
	Report *salvage.Report
}

// LastSeq returns the highest recovered sequence number.
func (r *Recovery) LastSeq() uint64 {
	if n := len(r.Records); n > 0 {
		return r.Records[n-1].Seq
	}
	return r.SnapshotSeq
}

// A Store is an open checkpoint directory: one active WAL segment
// plus the snapshot/segment files recovery reads. Store methods are
// not safe for concurrent use; the serving layer serializes appends.
type Store struct {
	dir string
	opt options

	wal      *os.File
	seq      uint64 // last appended (or recovered) sequence
	frameBuf []byte // reused frame encoding buffer; grows to the largest record
}

// Open recovers the checkpoint directory (creating it if needed) and
// returns a store ready to append, plus what was recovered. A new WAL
// segment is always started, so a torn tail in the previous segment
// is never appended to.
func Open(dir string, opts ...Option) (*Store, *Recovery, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	rec, err := recoverDir(dir, o.strict)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{dir: dir, opt: o, seq: rec.LastSeq()}
	if err := s.openSegment(); err != nil {
		return nil, nil, err
	}
	return s, rec, nil
}

// Dir returns the checkpoint directory.
func (s *Store) Dir() string { return s.dir }

// LastSeq returns the last sequence number appended or recovered.
func (s *Store) LastSeq() uint64 { return s.seq }

// openSegment starts a fresh WAL segment named for the next sequence.
func (s *Store) openSegment() error {
	name := filepath.Join(s.dir, fmt.Sprintf("wal-%016x.log", s.seq+1))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.WriteString(walHeader); err != nil {
		f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.wal = f
	return nil
}

// Append logs one record and returns its sequence number. On return
// the record has reached the kernel (surviving SIGKILL); with
// FsyncEach it has reached the disk (surviving power loss). The frame
// is encoded into a buffer the store reuses across appends, so the
// steady-state ingest path allocates nothing per record.
//
//netfail:hotpath
func (s *Store) Append(data []byte) (uint64, error) {
	if s.wal == nil {
		return 0, fmt.Errorf("checkpoint: store is closed")
	}
	seq := s.seq + 1
	s.frameBuf = appendFrame(s.frameBuf[:0], seq, data)
	if _, err := s.wal.Write(s.frameBuf); err != nil {
		return 0, fmt.Errorf("checkpoint: append seq %d: %w", seq, err)
	}
	if s.opt.fsyncEach {
		if err := s.wal.Sync(); err != nil {
			return 0, fmt.Errorf("checkpoint: append seq %d: %w", seq, err)
		}
	}
	s.seq = seq
	return seq, nil
}

// Snapshot atomically persists the full history (sequence order,
// normally 1..LastSeq) and retires the WAL segments it covers. After
// a successful snapshot, recovery needs only this file plus whatever
// arrives later.
func (s *Store) Snapshot(records []Record) error {
	if s.wal == nil {
		return fmt.Errorf("checkpoint: store is closed")
	}
	covered := s.seq
	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	var w io.Writer = tmp
	if s.opt.tap != nil {
		w = s.opt.tap(tmp)
	}
	err = writeSnapshot(w, covered, records)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	final := filepath.Join(s.dir, fmt.Sprintf("snap-%016x.ckpt", covered))
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}

	// The snapshot is durable; everything it covers is redundant.
	// Rotate to a fresh WAL segment and delete retired files. A crash
	// anywhere in here is safe: recovery deduplicates by sequence.
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	s.wal = nil
	if err := s.openSegment(); err != nil {
		return err
	}
	s.retire(covered)
	return nil
}

// retire removes snapshots older than the one covering `covered` and
// WAL segments that start at or before it (their records are all
// covered: segments are rotated at every snapshot, so a segment
// starting at seq <= covered holds only seqs <= covered). Removal
// failures are ignored: stale files only cost recovery time, and the
// next snapshot retries.
func (s *Store) retire(covered uint64) {
	snaps, wals, _ := scanDir(s.dir)
	for _, sn := range snaps {
		if sn.seq < covered {
			os.Remove(sn.path)
		}
	}
	for _, w := range wals {
		if w.seq <= covered {
			os.Remove(w.path)
		}
	}
}

// Sync fsyncs the active WAL segment.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Sync()
}

// Close syncs and closes the active WAL segment.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	if err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed snapshot's directory
// entry is durable too.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendFrame appends one record's on-disk frame to dst, growing it
// as needed — the append-style encoder both the WAL and the snapshot
// writer run through one reused buffer.
//
//netfail:hotpath
func appendFrame(dst []byte, seq uint64, data []byte) []byte {
	payloadLen := 8 + len(data)
	start := len(dst)
	if need := start + frameOverhead + payloadLen; cap(dst) < need {
		grown := make([]byte, start, need)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[start : start+frameOverhead+payloadLen]
	buf[0], buf[1] = sync0, sync1
	binary.LittleEndian.PutUint32(buf[2:], uint32(payloadLen))
	payload := buf[frameOverhead:]
	binary.LittleEndian.PutUint64(payload, seq)
	copy(payload[8:], data)
	binary.LittleEndian.PutUint32(buf[6:], crc32.ChecksumIEEE(payload))
	return dst[:start+frameOverhead+payloadLen]
}

// writeSnapshot writes the snapshot stream: header, a meta frame
// (seq = covered, data = record count), then every record frame, all
// encoded through one buffer that grows to the largest record.
func writeSnapshot(w io.Writer, covered uint64, records []Record) error {
	if _, err := io.WriteString(w, snapHeader); err != nil {
		return err
	}
	var count [8]byte
	binary.LittleEndian.PutUint64(count[:], uint64(len(records)))
	buf := appendFrame(nil, covered, count[:])
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, r := range records {
		buf = appendFrame(buf[:0], r.Seq, r.Data)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// dirEntry is one scanned snapshot or WAL file.
type dirEntry struct {
	seq  uint64
	path string
}

// scanDir inventories the checkpoint directory. Temp files from torn
// snapshot attempts are deleted on sight — the rename never happened,
// so they are garbage by construction.
func scanDir(dir string) (snaps, wals []dirEntry, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, ".tmp"):
			os.Remove(path)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".ckpt"):
			if seq, ok := parseSeq(name, "snap-", ".ckpt"); ok {
				snaps = append(snaps, dirEntry{seq, path})
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if seq, ok := parseSeq(name, "wal-", ".log"); ok {
				wals = append(wals, dirEntry{seq, path})
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq }) // newest first
	sort.Slice(wals, func(i, j int) bool { return wals[i].seq < wals[j].seq })    // oldest first
	return snaps, wals, nil
}

func parseSeq(name, prefix, suffix string) (uint64, bool) {
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	seq, err := strconv.ParseUint(hexpart, 16, 64)
	return seq, err == nil
}

// recoverDir reconstructs the durable history: newest intact
// snapshot, then WAL replay of later sequences.
func recoverDir(dir string, strict bool) (*Recovery, error) {
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	rec := &Recovery{Report: &salvage.Report{}}

	// Newest snapshot that loads intact wins; older ones are the
	// fallback when a torn or bit-rotted write damaged the newest.
	for _, sn := range snaps {
		records, covered, err := readSnapshot(sn.path)
		if err != nil {
			if strict {
				return nil, err
			}
			rec.Report.Skip(0, fmt.Sprintf("damaged snapshot %s", filepath.Base(sn.path)))
			continue
		}
		rec.Records = records
		rec.SnapshotSeq = covered
		break
	}

	// Replay WAL segments in start order, keeping only sequences
	// beyond what the snapshot covers (and beyond each other:
	// overlapping segments from a crash between rename and retire
	// deduplicate here).
	last := rec.LastSeq()
	for _, w := range wals {
		records, err := readWALFile(w.path, strict, rec.Report)
		if err != nil {
			return nil, err
		}
		for _, r := range records {
			if r.Seq <= last {
				continue
			}
			rec.Records = append(rec.Records, r)
			rec.WALRecords++
			last = r.Seq
		}
	}
	return rec, nil
}

// readSnapshot loads one snapshot file. Any damage fails the whole
// load — the caller falls back to an older snapshot (lenient) or
// errors (strict): a partial history behind a healthy-looking
// snapshot would silently un-ack records, which is the one
// unforgivable outcome, so there is deliberately no salvaging inside
// a snapshot.
func readSnapshot(path string) ([]Record, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("checkpoint: %w", err)
	}
	name := filepath.Base(path)
	if !bytes.HasPrefix(data, []byte(snapHeader)) {
		return nil, 0, fmt.Errorf("checkpoint: %s: bad header", name)
	}
	frames, err := decodeFramesStrict(data[len(snapHeader):], name)
	if err != nil {
		return nil, 0, err
	}
	if len(frames) == 0 {
		return nil, 0, fmt.Errorf("checkpoint: %s: missing meta frame", name)
	}
	meta := frames[0]
	if len(meta.Data) != 8 {
		return nil, 0, fmt.Errorf("checkpoint: %s: bad meta frame", name)
	}
	count := binary.LittleEndian.Uint64(meta.Data)
	records := frames[1:]
	if uint64(len(records)) != count {
		return nil, 0, fmt.Errorf("checkpoint: %s: snapshot holds %d records, meta declares %d", name, len(records), count)
	}
	return records, meta.Seq, nil
}

// readWALFile loads one WAL segment. Strict mode errors on the first
// damaged frame; lenient mode salvages and accounts into rep.
func readWALFile(path string, strict bool, rep *salvage.Report) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	if strict {
		return ReadWAL(f)
	}
	records, frep, err := ReadWALLenient(f)
	if err != nil {
		return nil, err
	}
	mergeReport(rep, frep)
	return records, nil
}

// ReadWAL parses one WAL segment stream strictly: the first damaged
// frame aborts with a record- and offset-accurate error. It is the
// strict half of the reader pair; ReadWALLenient is the salvage half.
func ReadWAL(r io.Reader) ([]Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if !bytes.HasPrefix(data, []byte(walHeader)) {
		return nil, fmt.Errorf("checkpoint: WAL: bad header")
	}
	return decodeFramesStrict(data[len(walHeader):], "WAL")
}

// ReadWALLenient parses one WAL segment stream in salvage mode:
// damaged frames are skipped — the reader resynchronizes on the next
// sync marker — and accounted in the report instead of aborting.
func ReadWALLenient(r io.Reader) ([]Record, *salvage.Report, error) {
	rep := &salvage.Report{}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: %w", err)
	}
	if !bytes.HasPrefix(data, []byte(walHeader)) {
		rep.Skip(0, "bad WAL header")
		return nil, rep, nil
	}
	records := decodeFramesLenient(data[len(walHeader):], rep)
	return records, rep, nil
}

// decodeFramesStrict walks the frame stream, aborting on the first
// damaged frame with a record- and offset-accurate error.
func decodeFramesStrict(data []byte, name string) ([]Record, error) {
	var out []Record
	off, frameNo := 0, 0
	for off < len(data) {
		frameNo++
		rec, n, reason := decodeFrame(data[off:])
		if reason != "" {
			return nil, fmt.Errorf("checkpoint: %s: record %d at offset %d: %s", name, frameNo, off, reason)
		}
		out = append(out, rec)
		off += n
	}
	return out, nil
}

// decodeFramesLenient walks the frame stream, resynchronizing on the
// next sync marker after each damaged frame and accounting the skip.
func decodeFramesLenient(data []byte, rep *salvage.Report) []Record {
	var out []Record
	off, frameNo := 0, 0
	for off < len(data) {
		frameNo++
		rec, n, reason := decodeFrame(data[off:])
		if reason == "" {
			out = append(out, rec)
			rep.Kept++
			off += n
			continue
		}
		rep.Skip(frameNo, reason)
		// Resynchronize: scan past this offset for the next sync
		// marker that opens a decodable frame.
		next := resync(data, off+1)
		if next < 0 {
			break
		}
		off = next
	}
	return out
}

// decodeFrame decodes one frame at the head of data, returning the
// consumed byte count, or a non-empty reason on damage.
func decodeFrame(data []byte) (rec Record, n int, reason string) {
	if len(data) < frameOverhead {
		return Record{}, 0, "torn frame header"
	}
	if data[0] != sync0 || data[1] != sync1 {
		return Record{}, 0, "bad sync marker"
	}
	payloadLen := int(binary.LittleEndian.Uint32(data[2:]))
	if payloadLen < 8 || payloadLen > maxFrameLen {
		return Record{}, 0, "bad length prefix"
	}
	if len(data) < frameOverhead+payloadLen {
		return Record{}, 0, "torn frame payload"
	}
	payload := data[frameOverhead : frameOverhead+payloadLen]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[6:]) {
		return Record{}, 0, "crc mismatch"
	}
	return Record{
		Seq:  binary.LittleEndian.Uint64(payload),
		Data: append([]byte(nil), payload[8:]...),
	}, frameOverhead + payloadLen, ""
}

// resync returns the offset of the next decodable frame at or after
// from, or -1.
func resync(data []byte, from int) int {
	for i := from; i+1 < len(data); i++ {
		if data[i] != sync0 || data[i+1] != sync1 {
			continue
		}
		if _, _, reason := decodeFrame(data[i:]); reason == "" {
			return i
		}
	}
	return -1
}

// mergeReport folds src into dst, preserving line attribution.
func mergeReport(dst, src *salvage.Report) {
	dst.Kept += src.Kept
	for reason, n := range src.Reasons {
		for i := 0; i < n; i++ {
			dst.Skip(src.FirstBad, reason)
		}
	}
	if src.LastBad > dst.LastBad {
		dst.LastBad = src.LastBad
	}
}
