// Package ctxfirst implements the context-placement analyzer backing
// the pipeline's context-first API redesign.
//
// The observability layer and cancellation both ride the
// context.Context threaded through every pipeline entry point, which
// only works if the context actually flows: a context accepted in a
// non-first parameter position drifts out of sight of callers (and of
// this module's own wrappers), and a context stored in a struct
// outlives the call it scoped, silently detaching cancellation and
// spans from the work they were meant to cover. Both shapes existed
// in pre-redesign drafts of the public API; the analyzer keeps them
// from coming back.
//
// Two diagnostics, matching the standard library's own guidance
// ("Contexts should not be stored inside a struct type, but instead
// passed to each function that needs it", package context):
//
//   - a function, method, function literal, function type, or
//     interface method that takes a context.Context anywhere but the
//     first parameter;
//   - a struct field (named or embedded) of type context.Context.
//
// Variadic and multi-context signatures are judged by the first
// context's position: `func(a int, ctx context.Context)` is flagged
// once, at the offending parameter.
package ctxfirst

import (
	"go/ast"
	"go/types"

	"netfail/internal/lint"
)

// Analyzer is the ctxfirst pass.
var Analyzer = &lint.Analyzer{
	Name: "ctxfirst",
	Doc:  "require context.Context to be a function's first parameter and never a struct field",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkParams(pass, n)
			case *ast.StructType:
				checkFields(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkParams reports the first context.Context parameter that is not
// in position zero. The receiver of a method is not a parameter, so
// `func (s *Server) Handle(ctx context.Context)` is fine.
func checkParams(pass *lint.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		// An unnamed parameter occupies one slot; a name list one per
		// name.
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := pass.TypesInfo.TypeOf(field.Type)
		if _, variadic := field.Type.(*ast.Ellipsis); variadic {
			// The type of `...context.Context` is []context.Context;
			// judge the element. A variadic context pack is suspect in
			// any position, but position is all this pass rules on.
			if slice, ok := t.(*types.Slice); ok {
				t = slice.Elem()
			}
		}
		if isContext(t) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context should be the first parameter of a function")
			return
		}
		idx += n
	}
}

// checkFields reports struct fields of type context.Context, embedded
// ones included.
func checkFields(pass *lint.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContext(pass.TypesInfo.TypeOf(field.Type)) {
			pass.Reportf(field.Pos(),
				"do not store context.Context inside a struct; pass it to each function that needs it")
		}
	}
}

// isContext recognizes context.Context, seen through any chain of
// aliases (`type Ctx = context.Context` hides the name, not the
// contract).
func isContext(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
