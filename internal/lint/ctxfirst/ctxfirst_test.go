package ctxfirst_test

import (
	"testing"

	"netfail/internal/lint/ctxfirst"
	"netfail/internal/lint/linttest"
)

// TestContextPlacement checks the fixture derived from pre-redesign
// drafts of the public API: trailing-context signatures and
// context-carrying structs are diagnosed; context-first entry points,
// methods, and CancelFunc fields pass.
func TestContextPlacement(t *testing.T) {
	linttest.Run(t, ctxfirst.Analyzer, "testdata/api", "netfail/apitest")
}
