package api

import "context"

// Edge cases around the basic rule: variadic packs, value receivers,
// function-typed struct fields, generics, aliases, and interfaces
// alongside their implementations.

// Variadic: the context pack occupies the position of its ellipsis.
func variadicFirst(ctxs ...context.Context)                  {}
func variadicTrailing(fmtStr string, ctxs ...context.Context) {} // want `context.Context should be the first parameter`
func variadicOther(ctx context.Context, extras ...string)     {}

// Value receivers are not parameters, in either direction.
type counter int

func (c counter) Tick(ctx context.Context)          {}
func (c counter) Late(n int, ctx context.Context)   {} // want `context.Context should be the first parameter`
func (c *counter) PtrLate(n int, ctx context.Context) {} // want `context.Context should be the first parameter`

// Function-typed struct fields: the field itself is not context
// storage, but its signature is held to the rule.
type hooks struct {
	OnStart func(ctx context.Context, name string) error
	OnStop  func(name string, ctx context.Context) error // want `context.Context should be the first parameter`
}

// Generic functions: type parameters do not shift the rule.
func mapOver[T any](ctx context.Context, in []T, f func(context.Context, T) T) []T { return in }
func mapLate[T any](in []T, ctx context.Context) []T                               { return in } // want `context.Context should be the first parameter`

// Generic struct: a context field is storage no matter the type
// parameters around it.
type job[T any] struct {
	payload T
	ctx     context.Context // want `do not store context.Context inside a struct`
}

// An alias does not launder either shape.
type stdCtx = context.Context

func aliasLate(n int, ctx stdCtx) {} // want `context.Context should be the first parameter`

type aliasBox struct {
	ctx stdCtx // want `do not store context.Context inside a struct`
}

// Interface methods are signatures too, and an implementation of a
// compliant interface is checked on its own declaration.
type runner interface {
	Run(ctx context.Context, name string) error
	Drain(name string, ctx context.Context) error // want `context.Context should be the first parameter`
}

type impl struct{}

func (impl) Run(ctx context.Context, name string) error { return nil }

// implLate satisfies no interface here, but the declaration itself is
// what the rule binds.
func (impl) Late(name string, ctx context.Context) error { return nil } // want `context.Context should be the first parameter`
