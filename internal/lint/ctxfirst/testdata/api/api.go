// Fixture derived from pre-redesign drafts of the pipeline's public
// entry points: contexts trailing the config arguments, an options
// struct carrying the context alongside the tracer, and a pipeline
// state struct pinning the context for its whole lifetime. Each shape
// compiles, works in the happy path, and silently detaches
// cancellation from the work it was meant to scope — which is why
// ctxfirst exists.
package api

import (
	"context"
	"time"
)

type campaign struct{}
type study struct{}

// Context-first entry points: correct.
func Run(ctx context.Context, seed int64) (*study, error)          { return nil, nil }
func Analyze(ctx context.Context, camp *campaign) (*study, error)  { return nil, nil }
func listen(ctx context.Context, camp *campaign, limit int) error  { return nil }
func noContext(seed int64, window time.Duration) error             { return nil }
func onlyContext(ctx context.Context) error                        { return nil }

// The pre-redesign draft appended the context after the config, where
// wrappers kept forgetting to thread it.
func runDraft(seed int64, ctx context.Context) error { return nil } // want `context\.Context should be the first parameter`

// Trailing context after two leading args.
func analyzeDraft(camp *campaign, window time.Duration, ctx context.Context) error { return nil } // want `context\.Context should be the first parameter`

// A method receiver is not a parameter: first-position context in a
// method is fine...
func (s *study) report(ctx context.Context, wide bool) error { return nil }

// ...but a method burying the context is still wrong.
func (s *study) render(wide bool, ctx context.Context) error { return nil } // want `context\.Context should be the first parameter`

// Function literals and function-typed fields follow the same rule.
var renderHook = func(name string, ctx context.Context) error { return nil } // want `context\.Context should be the first parameter`

type renderer interface {
	Render(ctx context.Context, name string) error
	Draw(name string, ctx context.Context) error // want `context\.Context should be the first parameter`
}

// The draft options struct stored the context next to the tracer —
// the exact shape the functional-options redesign removed.
type analysisOptions struct {
	ctx         context.Context // want `do not store context\.Context inside a struct`
	window      time.Duration
	parallelism int
}

// Embedded contexts hide even better.
type pipelineState struct {
	context.Context // want `do not store context\.Context inside a struct`
	camp            *campaign
}

// A context.CancelFunc field is fine — only the context itself is the
// lifetime hazard.
type runHandle struct {
	cancel context.CancelFunc
}

// Multi-name parameter lists: the context is in slot 2 even though it
// shares a field entry.
func merge(a, b int, ctx context.Context) error { return nil } // want `context\.Context should be the first parameter`
