package droppederr_test

import (
	"testing"

	"netfail/internal/lint/droppederr"
	"netfail/internal/lint/linttest"
)

// TestDroppedParseErrors checks that discarded errors from the
// syslog/IS-IS parse and decode paths are diagnosed wherever the call
// site lives, while checked, counted, and deferred errors pass. The
// fixture mirrors the real ingest pipeline's call shapes.
func TestDroppedParseErrors(t *testing.T) {
	linttest.Run(t, droppederr.Analyzer, "testdata/drop", "netfail/internal/report/ingest")
}

// TestDroppedReaderResults checks the pinned capture-reader entry
// points: discarded errors from the strict readers and discarded
// *salvage.Report results from the lenient readers are diagnosed,
// while checked calls and non-reader callees in the same packages
// pass.
func TestDroppedReaderResults(t *testing.T) {
	linttest.Run(t, droppederr.Analyzer, "testdata/readers", "netfail/internal/report/loaders")
}
