// Package droppederr implements the parse-error analyzer: an error
// returned by the syslog/IS-IS parse and decode paths must not be
// silently discarded.
//
// The syslog-mining literature (Liang et al.; Simache & Kaâniche)
// shows log-analysis pipelines live or die on silently-dropped parse
// errors, and for this reproduction a swallowed decode error is a
// silently shortened trace: the failure simply vanishes from one side
// of the syslog-vs-IS-IS comparison. The analyzer therefore flags any
// call site — anywhere in the module — that discards an error
// returned by a function or method declared in netfail/internal/syslog,
// netfail/internal/isis, or netfail/internal/listener:
//
//   - a call used as a bare expression statement, e.g.
//     `sender.Send(m)`;
//   - an assignment that binds the error result to the blank
//     identifier, e.g. `m, _ := syslog.Parse(line, ref)` or
//     `_ = lsp.Process(at, pkt)`.
//
// The capture readers in netfail/internal/netsim and
// netfail/internal/trace (ReadLSPLog, ReadManifest, ReadTransitions,
// ReadFailuresJSON and their Lenient variants) are traced as specific
// entry points: they gate the same trace completeness from disk, and
// their lenient variants additionally return a *salvage.Report whose
// discard silently hides dropped records — blank-binding that report
// is flagged exactly like blank-binding an error.
//
// Deferred and go'd calls (`defer c.Close()`) are deliberately not
// flagged: there is no binding position for the error, and the
// cleanup-path convention is established in the codebase.
package droppederr

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"netfail/internal/lint"
)

// Analyzer is the droppederr pass.
var Analyzer = &lint.Analyzer{
	Name: "droppederr",
	Doc:  "forbid discarding errors returned by the syslog/IS-IS parse and decode paths",
	Run:  run,
}

// tracedPackages are the packages whose returned errors account for
// trace completeness (ISSUE: the parse and decode paths).
var tracedPackages = []string{
	"netfail/internal/syslog",
	"netfail/internal/isis",
	"netfail/internal/listener",
}

// tracedFuncs pins individual capture-reader entry points in packages
// that are otherwise out of scope: a discarded error (or salvage
// report) from these readers silently shortens or mis-accounts a
// trace read back from disk.
var tracedFuncs = map[string]map[string]bool{
	"netfail/internal/netsim": {
		"ReadLSPLog":          true,
		"ReadLSPLogLenient":   true,
		"ReadManifest":        true,
		"ReadManifestLenient": true,
	},
	"netfail/internal/trace": {
		"ReadTransitions":         true,
		"ReadTransitionsLenient":  true,
		"ReadFailuresJSON":        true,
		"ReadFailuresJSONLenient": true,
	},
}

func tracedPackage(path string) bool {
	for _, p := range tracedPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func tracedFunc(fn *types.Func) bool {
	if tracedPackage(fn.Pkg().Path()) {
		return true
	}
	return tracedFuncs[fn.Pkg().Path()][fn.Name()]
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, kinds := tracedErrorCall(pass.TypesInfo, call); fn != nil && len(kinds) > 0 {
					pass.Reportf(call.Pos(),
						"%s returned by %s.%s is silently discarded; a swallowed parse error silently shortens the trace",
						resultNoun(kinds), fn.Pkg().Name(), fn.Name())
				}
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags assignments that bind an error result from a
// traced call to the blank identifier.
func checkAssign(pass *lint.Pass, stmt *ast.AssignStmt) {
	// Only the 1-call form (x, _ := f(...)) binds results
	// positionally; n:n assignments pair one value per expression.
	if len(stmt.Rhs) != 1 {
		for i, rhs := range stmt.Rhs {
			if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
				continue
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, kinds := tracedErrorCall(pass.TypesInfo, call); fn != nil && len(kinds) == 1 {
				for _, noun := range kinds {
					reportBlank(pass, stmt.Lhs[i].Pos(), noun, fn)
				}
			}
		}
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, kinds := tracedErrorCall(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	for i, noun := range kinds {
		if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
			reportBlank(pass, stmt.Lhs[i].Pos(), noun, fn)
		}
	}
}

func reportBlank(pass *lint.Pass, pos token.Pos, noun string, fn *types.Func) {
	if noun == reportNoun {
		pass.Reportf(pos,
			"salvage report returned by %s.%s is assigned to the blank identifier; dropped-record accounting is lost",
			fn.Pkg().Name(), fn.Name())
		return
	}
	pass.Reportf(pos,
		"error returned by %s.%s is assigned to the blank identifier",
		fn.Pkg().Name(), fn.Name())
}

const (
	errNoun    = "error"
	reportNoun = "salvage report"
)

// resultNoun summarizes a kinds map for the bare-statement message:
// "error" wins when present, since that is the sharper defect.
func resultNoun(kinds map[int]string) string {
	for _, noun := range kinds {
		if noun == errNoun {
			return errNoun
		}
	}
	return reportNoun
}

// tracedErrorCall resolves call's callee; if it is a traced function
// or method whose signature returns one or more accountable results
// (errors, or *salvage.Report for the lenient capture readers), it
// returns the callee and a map from result index to result noun.
func tracedErrorCall(info *types.Info, call *ast.CallExpr) (*types.Func, map[int]string) {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || !tracedFunc(fn) {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	kinds := make(map[int]string)
	for i := 0; i < sig.Results().Len(); i++ {
		switch t := sig.Results().At(i).Type(); {
		case isErrorType(t):
			kinds[i] = errNoun
		case isSalvageReport(t):
			kinds[i] = reportNoun
		}
	}
	if len(kinds) == 0 {
		return nil, nil
	}
	return fn, kinds
}

// isSalvageReport matches *netfail/internal/salvage.Report.
func isSalvageReport(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "netfail/internal/salvage" && obj.Name() == "Report"
}

func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
