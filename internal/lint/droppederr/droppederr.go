// Package droppederr implements the parse-error analyzer: an error
// returned by the syslog/IS-IS parse and decode paths must not be
// silently discarded.
//
// The syslog-mining literature (Liang et al.; Simache & Kaâniche)
// shows log-analysis pipelines live or die on silently-dropped parse
// errors, and for this reproduction a swallowed decode error is a
// silently shortened trace: the failure simply vanishes from one side
// of the syslog-vs-IS-IS comparison. The analyzer therefore flags any
// call site — anywhere in the module — that discards an error
// returned by a function or method declared in netfail/internal/syslog,
// netfail/internal/isis, or netfail/internal/listener:
//
//   - a call used as a bare expression statement, e.g.
//     `sender.Send(m)`;
//   - an assignment that binds the error result to the blank
//     identifier, e.g. `m, _ := syslog.Parse(line, ref)` or
//     `_ = lsp.Process(at, pkt)`.
//
// Deferred and go'd calls (`defer c.Close()`) are deliberately not
// flagged: there is no binding position for the error, and the
// cleanup-path convention is established in the codebase.
package droppederr

import (
	"go/ast"
	"go/types"
	"strings"

	"netfail/internal/lint"
)

// Analyzer is the droppederr pass.
var Analyzer = &lint.Analyzer{
	Name: "droppederr",
	Doc:  "forbid discarding errors returned by the syslog/IS-IS parse and decode paths",
	Run:  run,
}

// tracedPackages are the packages whose returned errors account for
// trace completeness (ISSUE: the parse and decode paths).
var tracedPackages = []string{
	"netfail/internal/syslog",
	"netfail/internal/isis",
	"netfail/internal/listener",
}

func tracedPackage(path string) bool {
	for _, p := range tracedPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, errs := tracedErrorCall(pass.TypesInfo, call); fn != nil && len(errs) > 0 {
					pass.Reportf(call.Pos(),
						"error returned by %s.%s is silently discarded; a swallowed parse error silently shortens the trace",
						fn.Pkg().Name(), fn.Name())
				}
			case *ast.AssignStmt:
				checkAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkAssign flags assignments that bind an error result from a
// traced call to the blank identifier.
func checkAssign(pass *lint.Pass, stmt *ast.AssignStmt) {
	// Only the 1-call form (x, _ := f(...)) binds results
	// positionally; n:n assignments pair one value per expression.
	if len(stmt.Rhs) != 1 {
		for i, rhs := range stmt.Rhs {
			if i >= len(stmt.Lhs) || !isBlank(stmt.Lhs[i]) {
				continue
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn, errs := tracedErrorCall(pass.TypesInfo, call); fn != nil && len(errs) == 1 {
				pass.Reportf(stmt.Lhs[i].Pos(),
					"error returned by %s.%s is assigned to the blank identifier",
					fn.Pkg().Name(), fn.Name())
			}
		}
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errPositions := tracedErrorCall(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	for _, i := range errPositions {
		if i < len(stmt.Lhs) && isBlank(stmt.Lhs[i]) {
			pass.Reportf(stmt.Lhs[i].Pos(),
				"error returned by %s.%s is assigned to the blank identifier",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// tracedErrorCall resolves call's callee; if it is a function or
// method declared in a traced package whose signature returns one or
// more errors, it returns the callee and the indices of the
// error-typed results.
func tracedErrorCall(info *types.Info, call *ast.CallExpr) (*types.Func, []int) {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || !tracedPackage(fn.Pkg().Path()) {
		return nil, nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	var errPositions []int
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errPositions = append(errPositions, i)
		}
	}
	if len(errPositions) == 0 {
		return nil, nil
	}
	return fn, errPositions
}

func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
