// Fixture for the capture-reader entry points: the salvage-mode
// readers added by the degraded-input resilience layer return both an
// error and a *salvage.Report, and discarding either hides truncated
// or mis-accounted traces. The call shapes mirror cmd/netfail-analyze
// before the -lenient wiring.
package readers

import (
	"io"

	"netfail/internal/netsim"
	"netfail/internal/salvage"
	"netfail/internal/trace"
)

// load loses salvage accounting four different ways.
func load(r io.Reader) ([]netsim.CapturedLSP, []trace.Transition) {
	// Blank-binding the strict reader's error: a torn capture reads
	// as a shorter capture.
	lsps, _ := netsim.ReadLSPLog(r) // want `error returned by netsim\.ReadLSPLog is assigned to the blank identifier`

	// Blank-binding the lenient reader's report: the analysis never
	// learns records were dropped.
	ts, _, err := trace.ReadTransitionsLenient(r) // want `salvage report returned by trace\.ReadTransitionsLenient is assigned to the blank identifier; dropped-record accounting is lost`
	if err != nil {
		return lsps, nil
	}

	// Blank-binding both: flagged once per discarded result.
	fs, _, _ := trace.ReadFailuresJSONLenient(r) // want `salvage report returned by trace\.ReadFailuresJSONLenient is assigned to the blank identifier; dropped-record accounting is lost` `error returned by trace\.ReadFailuresJSONLenient is assigned to the blank identifier`
	_ = fs

	// Bare statement: everything the manifest reader found vanishes.
	netsim.ReadManifest(r) // want `error returned by netsim\.ReadManifest is silently discarded; a swallowed parse error silently shortens the trace`

	return lsps, ts
}

// handled shows the accepted shapes: checked errors, consumed
// reports, and non-reader callees in the same packages staying out of
// scope.
func handled(w io.Writer, r io.Reader) (*salvage.Report, error) {
	m, rep, err := netsim.ReadManifestLenient(r)
	if err != nil {
		return nil, err
	}
	_ = m
	ts, err := trace.ReadTransitions(r)
	if err != nil {
		return nil, err
	}
	// WriteTransitions is not a capture reader: only the pinned
	// entry points are traced in this package.
	_ = trace.WriteTransitions(w, ts)
	return rep, nil
}
