// Fixture derived from the repository's real ingest pipeline: the
// call shapes come from internal/syslog/collector.go (Parse feeding
// the message log), internal/listener (Process feeding the LSP
// database), and examples/livecapture (Send on the UDP sender).
// Before droppederr, any of these errors could be dropped on the
// floor and the trace would silently shorten — the defect class
// Liang et al. and Simache & Kaâniche document for syslog pipelines.
package drop

import (
	"fmt"
	"time"

	"netfail/internal/isis"
	"netfail/internal/listener"
	"netfail/internal/syslog"
	"netfail/internal/topo"
)

// ingest loses messages three different ways.
func ingest(lines []string, ref time.Time) []*syslog.Message {
	var out []*syslog.Message
	for _, line := range lines {
		// Blank-binding the parse error: the message count silently
		// diverges from the line count.
		m, _ := syslog.Parse(line, ref) // want `error returned by syslog\.Parse is assigned to the blank identifier`
		out = append(out, m)
	}
	return out
}

func replay(l *listener.Listener, at time.Time, pkts [][]byte) {
	for _, pkt := range pkts {
		// Bare call statement: a decode failure vanishes entirely.
		l.Process(at, pkt) // want `error returned by listener\.Process is silently discarded`
	}
}

func flood(s *syslog.Sender, m *syslog.Message) {
	s.Send(m) // want `error returned by syslog\.Send is silently discarded`
	_ = s.Send(m) // want `error returned by syslog\.Send is assigned to the blank identifier`
}

func peek(pkt []byte) isis.PDUType {
	typ, _ := isis.PeekType(pkt) // want `error returned by isis\.PeekType is assigned to the blank identifier`
	return typ
}

// handled shows the accepted shapes: checked errors, counted errors,
// deferred cleanup, and out-of-scope callees.
func handled(net *topo.Network, lines []string, pkts [][]byte, ref time.Time) (int, error) {
	bad := 0
	for _, line := range lines {
		if _, err := syslog.Parse(line, ref); err != nil {
			bad++ // counted, not fatal: ReadLog's documented contract
		}
	}
	l := listener.New(net)
	for _, pkt := range pkts {
		if err := l.Process(ref, pkt); err != nil {
			return bad, err
		}
	}
	c, err := syslog.NewCollector("127.0.0.1:0", ref)
	if err != nil {
		return bad, err
	}
	// Deferred cleanup is the established idiom; there is no binding
	// position for the error.
	defer c.Close()
	fmt.Println(bad) // out-of-scope package: not a traced callee
	return bad, nil
}
