// Package hot is the hotalloc fixture: a condensed copy of the
// pipeline's per-record paths with the allocation mistakes the
// analyzer exists to catch. The first function is the seeded
// regression from the acceptance criteria — the syslog tokenizer
// converting its input []byte to string per record, the exact shape
// the []byte-oriented rewrite (ROADMAP item 4) must never regress to.
package hot

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

type message struct {
	host string
	text string
	seq  uint64
}

var errMalformed = errors.New("malformed")

// tokenize is the regression case: a tokenizer that round-trips its
// input through string.
//
//netfail:hotpath
func tokenize(line []byte, out *message) error {
	s := string(line) // want `converts \[\]byte to string`
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			out.host = s[:i]
			out.text = s[i+1:]
			return nil
		}
	}
	return fmt.Errorf("%w: no separator in %q", errMalformed, line) // error return path: exempt
}

// render allocates on the success path in every way the analyzer
// tracks.
//
//netfail:hotpath
func render(msgs []message) []string {
	var lines []string
	for _, m := range msgs {
		lines = append(lines, m.host+m.text) // want `grows lines inside a loop without preallocated capacity`
	}
	for _, m := range msgs {
		_ = fmt.Sprintf("%s: %s", m.host, m.text) // want `calls fmt.Sprintf`
		_ = []byte(m.text)                        // want `converts string to \[\]byte`
		kv := map[string]string{m.host: m.text}   // want `allocates a map literal per loop iteration`
		pair := []string{m.host, m.text}          // want `allocates a slice literal per loop iteration`
		_ = func() int { return len(kv) }         // want `allocates a closure per loop iteration`
		_ = pair
	}
	return lines
}

// sink has an interface parameter; calling it with a concrete value
// boxes per record.
func sink(v any) { _ = v }

//netfail:hotpath
func box(msgs []message) {
	for _, m := range msgs {
		sink(m.seq) // want `boxes uint64 into interface`
	}
}

// preallocated is the sanctioned shape of the same loops: counting
// pass + make with capacity, errors built only on the failure return,
// worker spawn via go.
//
//netfail:hotpath
func preallocated(msgs []message) ([]string, error) {
	lines := make([]string, 0, len(msgs))
	for _, m := range msgs {
		if m.host == "" {
			return nil, fmt.Errorf("%w: empty host at seq %d", errMalformed, m.seq)
		}
		lines = append(lines, m.host)
	}
	sort.Strings(lines)
	done := make(chan struct{})
	for i := 0; i < 2; i++ {
		go func() { // goroutine spawn in a loop is structural, not per-record
			<-done
		}()
	}
	close(done)
	return lines, nil
}

// scaled keeps duration arithmetic and non-slice literals unflagged.
//
//netfail:hotpath
func scaled(msgs []message, w time.Duration) int {
	n := 0
	for _, m := range msgs {
		v := message{host: m.host} // struct literal: a value, not a heap allocation
		if time.Duration(len(v.host))*time.Millisecond < w {
			n++
		}
	}
	return n
}

// unannotated proves the analyzer is opt-in: the same constructs
// outside a //netfail:hotpath function are silent.
func unannotated(msgs []message) []string {
	var lines []string
	for _, m := range msgs {
		_ = fmt.Sprintf("%s", m.host)
		_ = []byte(m.text)
		sink(m.seq)
		lines = append(lines, string([]byte(m.host)))
	}
	return lines
}

// probe exercises the map-index exemption: m[string(b)] lookups are
// compiled without the conversion and stay silent, in plain and
// comma-ok form; every write through a converted key still allocates
// the stored key and is flagged.
//
//netfail:hotpath
func probe(m map[string]int, keys [][]byte) int {
	n := 0
	for _, b := range keys {
		n += m[string(b)] // lookup: conversion elided, exempt
		if v, ok := m[(string(b))]; ok {
			n += v
		}
		m[string(b)] = n // want `converts \[\]byte to string`
		m[string(b)]++   // want `converts \[\]byte to string`
		_ = string(b)    // want `converts \[\]byte to string`
	}
	return n
}

// panicking exercises the panic exemption: a hot path that dies may
// format its last words.
//
//netfail:hotpath
func panicking(msgs []message) {
	for _, m := range msgs {
		if m.seq == 0 {
			panic(fmt.Sprintf("zero seq on %s", m.host))
		}
	}
}
