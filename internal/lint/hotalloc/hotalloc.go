// Package hotalloc implements the allocation-discipline analyzer for
// //netfail:hotpath functions (see internal/lint/hotpath for the
// annotation contract).
//
// ROADMAP item 4 drives the per-record pipeline — syslog tokenizing,
// LSP/TLV decoding, the matching-window inner loops, the pool shard
// bodies — toward amortized zero allocations (~1M syslog msgs/sec per
// core). Allocation bugs in those paths are invisible to tests: the
// code is correct, merely slow, and only slow enough to matter at
// month-of-campaign scale, which is exactly when a streaming pipeline
// starts falling behind its log source (Liang et al., PAPERS.md).
// The analyzer makes the discipline structural: annotate a function
// //netfail:hotpath and these constructs are flagged in its body:
//
//   - string([]byte) and []byte(string) conversions (each allocates
//     and copies; hot paths stay on one representation);
//   - calls into package fmt (every call formats through reflection
//     and allocates);
//   - interface boxing at call sites: a concrete value passed to an
//     interface-typed parameter;
//   - append to a slice declared empty in the function, growing
//     inside a loop (size it with a counting pass and make);
//   - map or slice composite literals inside loops, and closures
//     created inside loops (one allocation per iteration).
//
// The cold-path exemption: constructs inside a return statement whose
// final result is a non-nil error, or inside the argument of panic,
// are not flagged. The steady-state success path must be
// allocation-free; the failure return path may build a descriptive
// error — that is the idiom the tokenizer and TLV walkers use.
// Goroutine-launch closures (`go func() {...}`) inside loops are also
// exempt: spawning a bounded worker set is structural, not
// per-record, and is goleak's concern instead.
//
// The map-index exemption: a string([]byte) conversion used directly
// as a map lookup key — m[string(b)] in rvalue position, including the
// comma-ok form — is not flagged. The compiler elides that conversion
// (no allocation, no copy), and it is the idiomatic zero-allocation
// []byte-keyed probe the resolver and intern tables rely on. Map
// *assignment* through a converted key still allocates (the stored key
// must outlive b) and is still flagged.
//
// What the analyzer cannot see — allocations the compiler introduces
// because a value escapes — is covered by the companion
// escape-analysis baseline gate (internal/lint/escape): hotalloc
// catches the constructs that always allocate, the baseline pins the
// set of compiler-reported escapes so it can only shrink.
package hotalloc

import (
	"go/ast"
	"go/types"

	"netfail/internal/lint"
	"netfail/internal/lint/hotpath"
)

// Analyzer is the hotalloc pass.
var Analyzer = &lint.Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation-inducing constructs in //netfail:hotpath functions",
	Run:  run,
}

func run(pass *lint.Pass) error {
	for _, fn := range hotpath.Functions(pass.Files) {
		if fn.Decl.Body == nil {
			continue
		}
		c := &checker{
			pass:  pass,
			fname: fn.Name,
			empty: emptySliceVars(pass, fn.Decl.Body),
		}
		c.stmt(fn.Decl.Body, state{results: fn.Decl.Type.Results})
	}
	return nil
}

// state is the walk context: whether the node sits inside a loop
// (per-iteration cost), inside a cold failure path (exempt), on the
// left-hand side of an assignment (map-index exemption does not apply
// to writes), and the result list of the enclosing function (for
// error-return detection).
type state struct {
	inLoop  bool
	cold    bool
	lhs     bool
	results *ast.FieldList
}

type checker struct {
	pass  *lint.Pass
	fname string
	// empty holds the function's locally-declared slice variables
	// with no capacity: the append-growth rule's subjects.
	empty map[types.Object]bool
}

// stmt walks one statement.
func (c *checker) stmt(n ast.Stmt, st state) {
	switch n := n.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s := range n.List {
			c.stmt(s, st)
		}
	case *ast.ForStmt:
		c.stmt(n.Init, st)
		loop := st
		loop.inLoop = true
		c.expr(n.Cond, loop)
		c.stmt(n.Post, loop)
		c.stmt(n.Body, loop)
	case *ast.RangeStmt:
		c.expr(n.X, st) // evaluated once
		loop := st
		loop.inLoop = true
		c.stmt(n.Body, loop)
	case *ast.ReturnStmt:
		rst := st
		rst.cold = rst.cold || c.errorReturn(n, st)
		for _, e := range n.Results {
			c.expr(e, rst)
		}
	case *ast.IfStmt:
		c.stmt(n.Init, st)
		c.expr(n.Cond, st)
		c.stmt(n.Body, st)
		c.stmt(n.Else, st)
	case *ast.SwitchStmt:
		c.stmt(n.Init, st)
		c.expr(n.Tag, st)
		c.stmt(n.Body, st)
	case *ast.TypeSwitchStmt:
		c.stmt(n.Init, st)
		c.stmt(n.Assign, st)
		c.stmt(n.Body, st)
	case *ast.CaseClause:
		for _, e := range n.List {
			c.expr(e, st)
		}
		for _, s := range n.Body {
			c.stmt(s, st)
		}
	case *ast.SelectStmt:
		c.stmt(n.Body, st)
	case *ast.CommClause:
		c.stmt(n.Comm, st)
		for _, s := range n.Body {
			c.stmt(s, st)
		}
	case *ast.GoStmt:
		// The launched closure is structural (worker spawn), not a
		// per-record allocation: exempt from the closure rule, body
		// checked as a fresh function.
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			c.stmt(lit.Body, state{results: lit.Type.Results})
		} else {
			c.expr(n.Call.Fun, st)
		}
		for _, a := range n.Call.Args {
			c.expr(a, st)
		}
	case *ast.DeferStmt:
		c.expr(n.Call, st)
	case *ast.ExprStmt:
		c.expr(n.X, st)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			c.expr(e, st)
		}
		wst := st
		wst.lhs = true
		for _, e := range n.Lhs {
			c.expr(e, wst)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, st)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		wst := st
		wst.lhs = true // m[k]++ is a write: no elided-key exemption
		c.expr(n.X, wst)
	case *ast.SendStmt:
		c.expr(n.Chan, st)
		c.expr(n.Value, st)
	case *ast.LabeledStmt:
		c.stmt(n.Stmt, st)
	}
}

// expr walks one expression.
func (c *checker) expr(n ast.Expr, st state) {
	switch n := n.(type) {
	case nil:
	case *ast.CallExpr:
		c.call(n, st)
	case *ast.FuncLit:
		if st.inLoop && !st.cold {
			c.pass.Reportf(n.Pos(),
				"hot path %s allocates a closure per loop iteration; hoist the function value out of the loop", c.fname)
		}
		// The closure body is still hot code, but a fresh function:
		// loop and cold context do not carry in.
		c.stmt(n.Body, state{results: n.Type.Results})
	case *ast.CompositeLit:
		if st.inLoop && !st.cold {
			switch c.pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Map:
				c.pass.Reportf(n.Pos(),
					"hot path %s allocates a map literal per loop iteration; hoist or reuse it", c.fname)
			case *types.Slice:
				c.pass.Reportf(n.Pos(),
					"hot path %s allocates a slice literal per loop iteration; hoist or reuse it", c.fname)
			}
		}
		for _, e := range n.Elts {
			c.expr(e, st)
		}
	case *ast.KeyValueExpr:
		c.expr(n.Value, st)
	case *ast.ParenExpr:
		c.expr(n.X, st)
	case *ast.UnaryExpr:
		c.expr(n.X, st)
	case *ast.BinaryExpr:
		c.expr(n.X, st)
		c.expr(n.Y, st)
	case *ast.StarExpr:
		c.expr(n.X, st)
	case *ast.SelectorExpr:
		c.expr(n.X, st)
	case *ast.IndexExpr:
		c.expr(n.X, st)
		if conv := c.elidedMapKey(n, st); conv != nil {
			// m[string(b)] lookup: the compiler elides the conversion;
			// still walk the key's own subexpression.
			for _, a := range conv.Args {
				c.expr(a, st)
			}
		} else {
			c.expr(n.Index, st)
		}
	case *ast.SliceExpr:
		c.expr(n.X, st)
		c.expr(n.Low, st)
		c.expr(n.High, st)
		c.expr(n.Max, st)
	case *ast.TypeAssertExpr:
		c.expr(n.X, st)
	}
}

// call applies the conversion, fmt, boxing, and append rules to one
// call expression, then descends into its arguments.
func (c *checker) call(call *ast.CallExpr, st state) {
	info := c.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type, st)
		for _, a := range call.Args {
			c.expr(a, st)
		}
		return
	}
	if name, ok := builtinOf(c.pass, call.Fun); ok {
		if name == "append" {
			c.append(call, st)
		}
		cold := st
		if name == "panic" {
			cold.cold = true // a panicking hot path is already off the rails
		}
		for _, a := range call.Args {
			c.expr(a, cold)
		}
		return
	}
	if c.fmtCall(call, st) {
		// One diagnostic for the call; its arguments box into ...any
		// but reporting each would drown the signal.
		return
	}
	c.boxing(call, st)
	c.expr(call.Fun, st)
	for _, a := range call.Args {
		c.expr(a, st)
	}
}

// elidedMapKey returns the string([]byte) conversion call when n is a
// map lookup keyed directly by one — the form the compiler compiles
// without allocating — and nil otherwise. Writes (assignment LHS,
// IncDec) do not qualify: a stored key must be a real string.
func (c *checker) elidedMapKey(n *ast.IndexExpr, st state) *ast.CallExpr {
	if st.lhs {
		return nil
	}
	if xt := c.pass.TypesInfo.TypeOf(n.X); xt == nil {
		return nil
	} else if _, ok := xt.Underlying().(*types.Map); !ok {
		return nil
	}
	call, ok := ast.Unparen(n.Index).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !isString(tv.Type) {
		return nil
	}
	if from := c.pass.TypesInfo.TypeOf(call.Args[0]); from == nil || !isByteSlice(from) {
		return nil
	}
	return call
}

// conversion flags string<->[]byte conversions, each an allocate-
// and-copy.
func (c *checker) conversion(call *ast.CallExpr, to types.Type, st state) {
	if st.cold || len(call.Args) != 1 {
		return
	}
	from := c.pass.TypesInfo.TypeOf(call.Args[0])
	if from == nil {
		return
	}
	switch {
	case isString(to) && isByteSlice(from):
		c.pass.Reportf(call.Pos(),
			"hot path %s converts []byte to string, allocating and copying; keep the []byte representation or intern", c.fname)
	case isByteSlice(to) && isString(from):
		c.pass.Reportf(call.Pos(),
			"hot path %s converts string to []byte, allocating and copying; keep one representation end to end", c.fname)
	}
}

// fmtCall flags calls into package fmt and reports whether it
// consumed the node.
func (c *checker) fmtCall(call *ast.CallExpr, st state) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false // a method named like a fmt function
	}
	if !st.cold {
		c.pass.Reportf(call.Pos(),
			"hot path %s calls fmt.%s, which formats through reflection and allocates; precompute the string or move the call to the failure return path", c.fname, fn.Name())
	}
	return true
}

// boxing flags concrete values passed to interface-typed parameters:
// each such argument is wrapped in an interface header and usually
// forces the value to the heap.
func (c *checker) boxing(call *ast.CallExpr, st state) {
	if st.cold || call.Ellipsis.IsValid() {
		return
	}
	sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramType(sig, i)
		if param == nil || !types.IsInterface(param) {
			continue
		}
		at := c.pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(c.pass, arg) {
			continue
		}
		c.pass.Reportf(arg.Pos(),
			"hot path %s boxes %s into interface %s at this call; take a concrete parameter or move the call off the hot path",
			c.fname, at.String(), param.String())
	}
}

// append flags growth of a function-local, capacity-less slice inside
// a loop: the classic reallocate-per-batch pattern a counting pass
// and make(len 0, cap n) removes.
func (c *checker) append(call *ast.CallExpr, st state) {
	if !st.inLoop || st.cold || len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil || !c.empty[obj] {
		return
	}
	c.pass.Reportf(call.Pos(),
		"hot path %s grows %s inside a loop without preallocated capacity; count first and make(%s, 0, n)",
		c.fname, id.Name, types.TypeString(obj.Type(), types.RelativeTo(c.pass.Pkg)))
}

// errorReturn reports whether ret's final result is a non-nil error —
// the failure path the exemption covers.
func (c *checker) errorReturn(ret *ast.ReturnStmt, st state) bool {
	if len(ret.Results) == 0 || st.results == nil {
		return false
	}
	// Resolve the enclosing function's final result type.
	var last ast.Expr
	for _, f := range st.results.List {
		last = f.Type
	}
	if last == nil || !isErrorType(c.pass.TypesInfo.TypeOf(last)) {
		return false
	}
	final := ret.Results[len(ret.Results)-1]
	return !isUntypedNil(c.pass, final)
}

// emptySliceVars collects the function's slice variables declared
// with no backing capacity: `var x []T`, `x := []T{}`, `x := []T(nil)`,
// and `x := make([]T, 0)` (no capacity argument). make with a length
// or capacity argument counts as preallocated.
func emptySliceVars(pass *lint.Pass, body *ast.BlockStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	record := func(name *ast.Ident) {
		obj := pass.TypesInfo.Defs[name]
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); ok {
			vars[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if len(vs.Values) == 0 || isEmptySliceExpr(pass, vs.Values[i]) {
						record(name)
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				name, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isEmptySliceExpr(pass, n.Rhs[i]) {
					record(name)
				}
			}
		}
		return true
	})
	return vars
}

// isEmptySliceExpr matches the no-capacity initializers: empty
// composite literal, nil conversion, make with zero length and no
// capacity.
func isEmptySliceExpr(pass *lint.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		_, isSlice := pass.TypesInfo.TypeOf(e).Underlying().(*types.Slice)
		return isSlice && len(e.Elts) == 0
	case *ast.CallExpr:
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			_, isSlice := tv.Type.Underlying().(*types.Slice)
			return isSlice && len(e.Args) == 1 && isUntypedNil(pass, e.Args[0])
		}
		if name, _ := builtinOf(pass, e.Fun); name == "make" && len(e.Args) == 2 {
			tv, ok := pass.TypesInfo.Types[e.Args[1]]
			return ok && tv.Value != nil && tv.Value.String() == "0"
		}
	}
	return false
}

func builtinOf(pass *lint.Pass, fun ast.Expr) (string, bool) {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}

func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return slice.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

func isUntypedNil(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
