package hotalloc_test

import (
	"testing"

	"netfail/internal/lint/hotalloc"
	"netfail/internal/lint/linttest"
)

// TestHotalloc runs the analyzer over the fixture: a condensed copy
// of the per-record pipeline paths, including the seeded regression
// from the acceptance criteria (a tokenizer reintroducing a
// string([]byte) conversion) and the sanctioned preallocated shapes
// that must stay silent.
func TestHotalloc(t *testing.T) {
	linttest.Run(t, hotalloc.Analyzer, "testdata/hot", "netfail/internal/syslog")
}
