package lint_test

import (
	"go/ast"
	"strings"
	"testing"

	"netfail/internal/lint"
)

// TestLoadTypeChecksModulePackages loads a real module package
// offline through the export-data importer and runs a trivial
// analyzer over it, exercising the exact path cmd/netfail-lint uses.
func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := lint.Load("..", "netfail/internal/clock", "netfail/internal/match")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*lint.Package{}
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
			t.Fatalf("%s: incomplete package: %+v", p.ImportPath, p)
		}
		if len(p.TypesInfo.Uses) == 0 {
			t.Fatalf("%s: type info has no uses; type-checking did not run", p.ImportPath)
		}
	}
	if byPath["netfail/internal/match"] == nil || byPath["netfail/internal/clock"] == nil {
		t.Fatalf("unexpected package set: %v", byPath)
	}

	// A trivial analyzer: count function declarations, prove Run
	// routes diagnostics with positions.
	funcs := 0
	counter := &lint.Analyzer{
		Name: "funccount",
		Doc:  "test analyzer",
		Run: func(pass *lint.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						funcs++
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := lint.Run(pkgs, []*lint.Analyzer{counter})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != funcs || funcs == 0 {
		t.Fatalf("got %d findings for %d functions", len(findings), funcs)
	}
	for _, f := range findings {
		if f.Pos.Filename == "" || f.Pos.Line == 0 {
			t.Fatalf("finding lacks a position: %+v", f)
		}
		if !strings.HasPrefix(f.Message, "func ") {
			t.Fatalf("unexpected message: %q", f.Message)
		}
	}
}

// TestLoadRejectsUnknownPattern ensures loader errors surface instead
// of silently analyzing nothing.
func TestLoadRejectsUnknownPattern(t *testing.T) {
	if _, err := lint.Load("..", "netfail/internal/does-not-exist"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}
