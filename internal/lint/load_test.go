package lint_test

import (
	"go/ast"
	"strings"
	"testing"

	"netfail/internal/lint"
)

// TestLoadTypeChecksModulePackages loads a real module package
// offline through the export-data importer and runs a trivial
// analyzer over it, exercising the exact path cmd/netfail-lint uses.
func TestLoadTypeChecksModulePackages(t *testing.T) {
	pkgs, err := lint.Load("..", "netfail/internal/clock", "netfail/internal/match")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	base := map[string]*lint.Package{}
	tests := map[string]int{}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
			t.Fatalf("%s: incomplete package: %+v", p.ImportPath, p)
		}
		if len(p.TypesInfo.Uses) == 0 {
			t.Fatalf("%s: type info has no uses; type-checking did not run", p.ImportPath)
		}
		if p.TestScope {
			tests[p.ImportPath]++
			continue
		}
		base[p.ImportPath] = p
	}
	if len(base) != 2 || base["netfail/internal/match"] == nil || base["netfail/internal/clock"] == nil {
		t.Fatalf("unexpected base package set: %v", base)
	}
	// match has in-package tests (match_test.go, sweep_test.go) and an
	// external example_test.go; clock's tests are all external. Both
	// shapes must surface as TestScope variants.
	if tests["netfail/internal/match"] == 0 || tests["netfail/internal/match_test"] == 0 {
		t.Fatalf("missing test variants for match: %v", tests)
	}
	if tests["netfail/internal/clock_test"] == 0 {
		t.Fatalf("missing external test variant for clock: %v", tests)
	}

	// A trivial analyzer: count function declarations, prove Run
	// routes diagnostics with positions.
	funcs := 0
	counter := &lint.Analyzer{
		Name: "funccount",
		Doc:  "test analyzer",
		Run: func(pass *lint.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						funcs++
						pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := lint.Run(pkgs, []*lint.Analyzer{counter})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(findings) != funcs || funcs == 0 {
		t.Fatalf("got %d findings for %d functions", len(findings), funcs)
	}
	for _, f := range findings {
		if f.Pos.Filename == "" || f.Pos.Line == 0 {
			t.Fatalf("finding lacks a position: %+v", f)
		}
		if !strings.HasPrefix(f.Message, "func ") {
			t.Fatalf("unexpected message: %q", f.Message)
		}
	}
}

// TestLoadRejectsUnknownPattern ensures loader errors surface instead
// of silently analyzing nothing.
func TestLoadRejectsUnknownPattern(t *testing.T) {
	if _, err := lint.Load("..", "netfail/internal/does-not-exist"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}
