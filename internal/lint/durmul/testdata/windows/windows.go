// Fixture derived from the matching-window code in internal/match
// (DefaultWindow, Within, WindowSweep) and the campaign-duration
// arithmetic in internal/netsim. The defective lines are the
// mistakes durmul exists to catch: scaling an existing window by a
// unit constant, multiplying two windows, and passing a bare integer
// where a window is expected — each compiles silently and each
// corrupts every matched-fraction figure downstream.
package windows

import "time"

const defaultWindow = 10 * time.Second // untyped 10 × unit: correct

// scale = 3 is an untyped constant; durations may be scaled by it.
const scale = 3

type index struct{}

// within mirrors match.TransitionIndex.Within's window parameter.
func (index) within(t time.Time, w time.Duration) int { return 0 }

func sweep(idx index, t time.Time, w time.Duration, n int, ds []time.Duration) {
	// The classic widening bug: w already carries units.
	wide := w * time.Second // want `time\.Duration multiplied by time\.Duration`

	// Window × window, as in a bad variance computation.
	sq := w * w // want `time\.Duration multiplied by time\.Duration`

	// Unit² hidden in a constant expression.
	u := time.Second * time.Second // want `time\.Duration multiplied by time\.Duration`

	// A bare integer window: 10 nanoseconds where 10 seconds was
	// meant (match.DefaultWindow is 10s).
	idx.within(t, 10) // want `integer constant 10 passed as time\.Duration`

	// Correct idioms, all silent: untyped-constant scaling,
	// explicit conversion then unit, conversion products
	// (cmd/netfail-sim's campaign length), constant folding
	// (netsim's listener-offline windows), and unit-typed argument.
	half := w / 2
	tripled := scale * w
	converted := time.Duration(n) * time.Second
	campaign := time.Duration(n) * 24 * time.Hour
	offline := 80*24*time.Hour + 30*time.Hour
	backoff := half * time.Duration(n)
	idx.within(t, defaultWindow)
	idx.within(t, 10*time.Second)
	idx.within(t, 0) // zero disables the window; no unit implied

	_ = []time.Duration{wide, sq, u, tripled, converted, campaign, offline, backoff}
	_ = ds
}
