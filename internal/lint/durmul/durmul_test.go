package durmul_test

import (
	"testing"

	"netfail/internal/lint/durmul"
	"netfail/internal/lint/linttest"
)

// TestWindowArithmetic checks duration arithmetic on fixtures
// mirroring the matching-window code: duration×duration and bare
// integer windows are diagnosed; untyped-constant scaling, explicit
// conversions, and constant folding pass.
func TestWindowArithmetic(t *testing.T) {
	linttest.Run(t, durmul.Analyzer, "testdata/windows", "netfail/internal/match/windowtest")
}
