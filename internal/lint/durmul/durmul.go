// Package durmul implements the duration-arithmetic analyzer for the
// flap-detection and matching-window code.
//
// time.Duration is an int64 nanosecond count, and Go's untyped
// constants make two mistakes compile silently:
//
//   - duration × duration: `w * time.Second` where w is already a
//     time.Duration multiplies nanoseconds by nanoseconds. A 10s
//     matching window becomes 10??s×10?? — every window comparison in
//     the paper's Tables 4–7 silently saturates.
//   - raw integer as duration: `idx.Within(link, dir, t, 10)` passes
//     10 nanoseconds where a 10-second window was meant; the untyped
//     constant converts without complaint.
//
// The correct idioms — `10 * time.Second` (untyped constant times
// unit) and `time.Duration(n) * time.Second` (explicit conversion of
// a variable, then unit) — are recognized and allowed.
package durmul

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"netfail/internal/lint"
)

// Analyzer is the durmul pass. It extends to _test.go files in full:
// a duration×duration slip in a test silently weakens the assertion
// it backs, so no rule is relaxed there.
var Analyzer = &lint.Analyzer{
	Name:         "durmul",
	Doc:          "catch time.Duration arithmetic bugs: duration×duration and raw integers passed as durations",
	IncludeTests: true,
	Run:          run,
}

// nanosecondThreshold bounds the raw-integer heuristic: an untyped
// integer constant below one millisecond's worth of nanoseconds
// passed as a time.Duration almost certainly meant seconds or
// milliseconds, not nanoseconds.
const nanosecondThreshold = 1_000_000

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				checkMul(pass, e)
			case *ast.CallExpr:
				checkArgs(pass, e)
			}
			return true
		})
	}
	return nil
}

// operand classifies how a duration-typed expression participates in
// multiplication.
type operand int

const (
	// untypedNum: a pure untyped constant (literal 10, 80*24, const
	// scale = 3). Multiplying a duration by it is scaling — fine.
	untypedNum operand = iota
	// unitConst: contains a typed duration constant (time.Second,
	// 24*time.Hour). Carries real units.
	unitConst
	// scaledCount: a non-constant expression made dimensionless by an
	// explicit conversion, e.g. time.Duration(n) or
	// time.Duration(*days)*24. The programmer asserted "this is a
	// count"; multiplying it by a unit is the sanctioned idiom.
	scaledCount
	// durationVar: a non-constant expression with duration semantics
	// (variable, field, function result). Multiplying it by a unit or
	// another duration is the bug.
	durationVar
)

// checkMul flags multiplication of two duration-typed operands when
// both sides carry duration semantics: variable×unit (`w *
// time.Second`), variable×variable, and unit×unit (`time.Second *
// time.Second`) all yield nanoseconds squared. Scaling by an untyped
// constant or by an explicit time.Duration(n) conversion is the
// correct idiom and passes.
func checkMul(pass *lint.Pass, e *ast.BinaryExpr) {
	if e.Op != token.MUL {
		return
	}
	if !isDuration(pass.TypesInfo.TypeOf(e.X)) || !isDuration(pass.TypesInfo.TypeOf(e.Y)) {
		return
	}
	x, y := classify(pass, e.X), classify(pass, e.Y)
	if (x == unitConst || x == durationVar) && (y == unitConst || y == durationVar) {
		pass.Reportf(e.Pos(),
			"time.Duration multiplied by time.Duration: the result is nanoseconds squared; convert one operand with time.Duration(n) or use an untyped constant")
	}
}

func classify(pass *lint.Pass, e ast.Expr) operand {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return untypedNum
	case *ast.UnaryExpr:
		return classify(pass, e.X)
	case *ast.Ident:
		return classifyObj(pass.TypesInfo.Uses[e])
	case *ast.SelectorExpr:
		return classifyObj(pass.TypesInfo.Uses[e.Sel])
	case *ast.BinaryExpr:
		return combine(classify(pass, e.X), classify(pass, e.Y))
	case *ast.CallExpr:
		// A conversion: the call's Fun denotes a type, not a value.
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if !isDuration(pass.TypesInfo.TypeOf(e.Args[0])) {
				return scaledCount
			}
			return classify(pass, e.Args[0])
		}
	}
	return durationVar
}

func classifyObj(obj types.Object) operand {
	c, ok := obj.(*types.Const)
	if !ok {
		return durationVar
	}
	if basic, ok := c.Type().(*types.Basic); ok && basic.Info()&types.IsUntyped != 0 {
		return untypedNum
	}
	if isDuration(c.Type()) {
		return unitConst
	}
	return untypedNum
}

// combine folds the classification of a compound expression: pure
// numbers stay numbers, an explicit conversion anywhere keeps the
// expression a sanctioned count, otherwise any non-constant part
// makes it a duration variable and any unit constant gives it units.
func combine(x, y operand) operand {
	switch {
	case x == untypedNum && y == untypedNum:
		return untypedNum
	case x == scaledCount || y == scaledCount:
		return scaledCount
	case x == durationVar || y == durationVar:
		return durationVar
	default:
		return unitConst
	}
}

// untypedConst reports whether obj is a constant declared without an
// explicit type (e.g. `const scale = 3`). Typed duration constants
// such as time.Second do NOT qualify: `w * time.Second` with w a
// duration is precisely the bug.
func untypedConst(obj types.Object) bool {
	c, ok := obj.(*types.Const)
	if !ok {
		return false
	}
	basic, ok := c.Type().(*types.Basic)
	return ok && basic.Info()&types.IsUntyped != 0
}

// checkArgs flags small untyped integer constants passed where a
// time.Duration parameter is expected.
func checkArgs(pass *lint.Pass, call *ast.CallExpr) {
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		param := paramAt(sig, i)
		if param == nil || !isDuration(param.Type()) {
			continue
		}
		v, ok := smallIntConstant(pass, arg)
		if !ok {
			continue
		}
		pass.Reportf(arg.Pos(),
			"integer constant %d passed as time.Duration is %d nanoseconds; write an explicit unit such as %d*time.Second",
			v, v, v)
	}
}

func paramAt(sig *types.Signature, i int) *types.Var {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok {
			return types.NewVar(last.Pos(), last.Pkg(), last.Name(), slice.Elem())
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i)
}

// smallIntConstant reports the value of arg if it is a syntactically
// constant positive integer below the nanosecond threshold — i.e. a
// literal or untyped constant the programmer wrote without a unit.
func smallIntConstant(pass *lint.Pass, arg ast.Expr) (int64, bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.BasicLit:
	case *ast.Ident:
		if !untypedConst(pass.TypesInfo.Uses[e]) {
			return 0, false
		}
	case *ast.SelectorExpr:
		if !untypedConst(pass.TypesInfo.Uses[e.Sel]) {
			return 0, false
		}
	default:
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil {
		return 0, false
	}
	if !isDuration(tv.Type) {
		return 0, false
	}
	v, ok := int64Value(tv)
	if !ok || v <= 0 || v >= nanosecondThreshold {
		return 0, false
	}
	return v, true
}

func int64Value(tv types.TypeAndValue) (int64, bool) {
	if tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}
