// Package lockguard implements the mutex-annotation analyzer: struct
// fields documented as mutex-guarded must only be touched while the
// named mutex is held.
//
// The convention (docs/static-analysis.md) is a comment on the field
// declaration:
//
//	mu       sync.Mutex
//	messages []*Message // guarded by mu
//	dropped  int        // guarded by mu
//
// For every selector access x.field of a guarded field, the enclosing
// function must contain a lock acquisition on the same receiver
// chain, x.mu.Lock() — or x.mu.RLock() when every access in question
// is a read. The check is deliberately flow-insensitive: it asks "does
// this function take the lock at all", the same contract TSan's
// annotations and staticcheck's SA-style checks enforce, which is
// exactly strong enough to catch the snapshot-method-forgets-to-lock
// defect class that corrupts a concurrently-collected trace.
//
// Goroutine scopes: a function literal launched with `go` runs
// concurrently with its enclosing function, so it is analyzed as a
// scope of its own — a lock held by the spawning code does not license
// accesses inside the goroutine, and a lock taken inside the goroutine
// does not license accesses outside it. This is the defect class a
// parallel worker pool introduces: the pool body mutates shared tally
// state while the spawner (or another worker) holds nothing.
//
// Exemptions, matching established codebase idioms:
//
//   - composite literals (&Collector{...} in a constructor) — the
//     value is not yet shared;
//   - accesses through a variable declared inside the scope body
//     itself (freshly constructed, not yet escaped); note a variable
//     declared in the enclosing function but captured by a
//     go-closure is shared, and is not exempt inside the closure;
//   - functions whose name ends in "Locked", the documented marker
//     for helpers called with the lock already held.
package lockguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"netfail/internal/lint"
)

// Analyzer is the lockguard pass.
var Analyzer = &lint.Analyzer{
	Name: "lockguard",
	Doc:  "enforce the \"// guarded by mu\" convention: guarded fields are only accessed under their mutex",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *lint.Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, guarded, fn)
		}
	}
	return nil
}

// collectGuardedFields maps each annotated field object to the name
// of the mutex that guards it.
func collectGuardedFields(pass *lint.Pass) map[*types.Var]string {
	guarded := make(map[*types.Var]string)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// access is one guarded-field selector occurrence inside a function.
type access struct {
	sel   *ast.SelectorExpr
	field *types.Var
	mu    string
	base  string // rendering of the receiver chain, e.g. "c" or "s.db"
	write bool
}

func checkFunc(pass *lint.Pass, guarded map[*types.Var]string, fn *ast.FuncDecl) {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return
	}
	checkScope(pass, guarded, fn.Body)
}

// checkScope checks one goroutine scope: a function body, or the body
// of a go-launched closure. Nested go-closures are recursed into as
// scopes of their own and excluded from this scope's accesses and
// lock calls — the two run concurrently, so neither's locks license
// the other's accesses.
func checkScope(pass *lint.Pass, guarded map[*types.Var]string, body *ast.BlockStmt) {
	accesses, goBodies := collectAccesses(pass, guarded, body)
	for _, gb := range goBodies {
		checkScope(pass, guarded, gb)
	}
	if len(accesses) == 0 {
		return
	}
	locked, rlocked := collectLockCalls(body)
	for _, a := range accesses {
		key := a.base + "." + a.mu
		switch {
		case locked[key]:
			// Full lock covers reads and writes.
		case rlocked[key] && !a.write:
			// Read lock covers reads.
		case rlocked[key] && a.write:
			pass.Reportf(a.sel.Pos(),
				"write to %s.%s (guarded by %s) under %s.RLock; writes need %s.Lock",
				a.base, a.field.Name(), a.mu, key, key)
		default:
			verb := "read of"
			if a.write {
				verb = "write to"
			}
			pass.Reportf(a.sel.Pos(),
				"%s %s.%s (guarded by %s) without holding %s.Lock",
				verb, a.base, a.field.Name(), a.mu, key)
		}
	}
}

// inspectScope walks root calling fn on every node, but prunes the
// bodies of go-launched function literals — those are separate
// goroutine scopes — and returns them. The launch call's arguments
// still belong to the current scope (they are evaluated by the
// spawner) and are walked normally.
func inspectScope(root ast.Node, fn func(ast.Node) bool) (goBodies []*ast.BlockStmt) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			g, ok := m.(*ast.GoStmt)
			if !ok {
				return fn(m)
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			goBodies = append(goBodies, lit.Body)
			for _, arg := range g.Call.Args {
				walk(arg)
			}
			return false // the closure body is another scope
		})
	}
	walk(root)
	return goBodies
}

func collectAccesses(pass *lint.Pass, guarded map[*types.Var]string, body *ast.BlockStmt) ([]access, []*ast.BlockStmt) {
	var accesses []access
	goBodies := inspectScope(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		field, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, ok := guarded[field]
		if !ok {
			return true
		}
		if declaredIn(pass, sel.X, body) {
			// Freshly constructed local value: not yet shared.
			return true
		}
		accesses = append(accesses, access{
			sel:   sel,
			field: field,
			mu:    mu,
			base:  exprString(sel.X),
			write: isWrite(pass, body, sel),
		})
		return true
	})
	return accesses, goBodies
}

// declaredIn reports whether the base of an access chain is a
// variable declared inside body (e.g. c := &Collector{...} in a
// constructor). Receivers and parameters are declared in the function
// signature, before body.Lbrace, so they are never exempt.
func declaredIn(pass *lint.Pass, base ast.Expr, body *ast.BlockStmt) bool {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	return obj.Pos() > body.Lbrace && obj.Pos() < body.Rbrace
}

// collectLockCalls finds every <chain>.<mu>.Lock / RLock call in the
// scope — go-closure bodies excluded, their locks belong to their own
// scope — and records the "<chain>.<mu>" key.
func collectLockCalls(body *ast.BlockStmt) (locked, rlocked map[string]bool) {
	locked, rlocked = map[string]bool{}, map[string]bool{}
	inspectScope(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock":
			locked[exprString(sel.X)] = true
		case "RLock":
			rlocked[exprString(sel.X)] = true
		}
		return true
	})
	return locked, rlocked
}

// isWrite reports whether sel is the target of an assignment,
// compound assignment, increment/decrement, element write
// (x.f[k] = v), or address-taking anywhere in body.
func isWrite(pass *lint.Pass, body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	write := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if writeTarget(lhs) == sel {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if writeTarget(st.X) == sel {
				write = true
			}
		case *ast.UnaryExpr:
			if st.Op == token.AND && writeTarget(st.X) == sel {
				write = true
			}
		case *ast.CallExpr:
			// The delete and clear builtins mutate their map
			// argument in place.
			if id, ok := ast.Unparen(st.Fun).(*ast.Ident); ok &&
				(id.Name == "delete" || id.Name == "clear") &&
				pass.TypesInfo.Uses[id] == types.Universe.Lookup(id.Name) &&
				len(st.Args) > 0 && writeTarget(st.Args[0]) == sel {
				write = true
			}
		}
		return true
	})
	return write
}

// writeTarget strips the wrappers through which a store still
// mutates the underlying field: parens, element indexing, and
// pointer dereference.
func writeTarget(e ast.Expr) ast.Expr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return e
		}
	}
}

// exprString renders simple receiver chains (identifiers, field
// selections, dereferences) for matching accesses against lock
// calls.
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprString(e.X)
	default:
		return fmt.Sprintf("<%T>", e)
	}
}
