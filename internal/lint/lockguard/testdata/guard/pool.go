// Fixture derived from internal/core's parallel-pipeline tally: a
// bounded worker pool whose goroutines fold shard-local counters into
// shared state. Goroutine bodies are separate lock scopes — a lock
// held by the spawner does not protect accesses inside a go-closure,
// and a lock inside the closure does not license the spawner's own
// accesses.
package guard

import "sync"

// tally mirrors core.extractTally: the shared accumulator the
// extraction shards fold their counters into.
type tally struct {
	mu    sync.Mutex
	total int // guarded by mu
	drops int // guarded by mu
}

// add is the correct fold: lock taken inside the method.
func (t *tally) add(n, dropped int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total += n
	t.drops += dropped
}

// fanOut is the correct pool shape: workers touch only shard-local
// state and fold through the locked method; the final read happens
// after Wait under the lock.
func fanOut(t *tally, chunks [][]int) int {
	var wg sync.WaitGroup
	for _, chunk := range chunks {
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			n := 0
			for range chunk {
				n++
			}
			t.add(n, 0)
		}(chunk)
	}
	wg.Wait()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// fanOutRacy is the defect the scope rule exists for: the spawner
// holds the lock while launching, but the goroutine body runs after
// Unlock — its write is unprotected even though the enclosing
// function "takes the lock".
func fanOutRacy(t *tally, chunks [][]int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var wg sync.WaitGroup
	for range chunks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.total++ // want `write to t\.total \(guarded by mu\) without holding t\.mu\.Lock`
		}()
	}
	wg.Wait()
}

// drainRacy is the inverse defect: the lock lives inside the
// goroutine, but the spawner reads the guarded field concurrently
// with the workers.
func drainRacy(t *tally) int {
	go func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.drops++
	}()
	return t.drops // want `read of t\.drops \(guarded by mu\) without holding t\.mu\.Lock`
}

// workerLocked shows a goroutine body locking for itself: correct.
func workerLocked(t *tally, done chan<- struct{}) {
	go func() {
		t.mu.Lock()
		t.total++
		t.mu.Unlock()
		close(done)
	}()
}

// localPool constructs the tally inside the function: the value is
// function-local at spawn time, but the closure still shares it with
// the spawner, so the unlocked read in the closure is diagnosed while
// the constructor-style writes before the goroutine starts are not.
func localPool(chunks [][]int) *tally {
	t := &tally{}
	t.total = 0 // fresh local value: exempt
	var wg sync.WaitGroup
	for range chunks {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t.add(1, 0)
		}()
	}
	wg.Wait()
	return t
}
