// Fixture derived from internal/syslog/collector.go and
// internal/isis/lsdb.go, the two shared structures the paper's live
// capture path mutates concurrently. The defective methods are the
// pre-annotation versions of the real accessors with the locking
// dropped — the exact snapshot-without-lock race the annotation
// convention exists to catch.
package guard

import "sync"

// collector mirrors syslog.Collector.
type collector struct {
	mu       sync.Mutex
	messages []string // guarded by mu
	dropped  int      // guarded by mu

	ref string // unguarded: written once before the goroutine starts
}

// newCollector constructs a not-yet-shared value; accesses through a
// function-local variable are exempt.
func newCollector(ref string) *collector {
	c := &collector{ref: ref}
	c.messages = make([]string, 0, 64)
	return c
}

// run is the real collector's receive loop: correct, locks around
// both guarded fields.
func (c *collector) run(lines <-chan string, parse func(string) (string, error)) {
	for line := range lines {
		m, err := parse(line)
		c.mu.Lock()
		if err != nil {
			c.dropped++
		} else {
			c.messages = append(c.messages, m)
		}
		c.mu.Unlock()
	}
}

// snapshot is correct: read under the lock.
func (c *collector) snapshot() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.messages...)
}

// droppedCount is the defect: reading a guarded counter without the
// lock races with run's increment.
func (c *collector) droppedCount() int {
	return c.dropped // want `read of c\.dropped \(guarded by mu\) without holding c\.mu\.Lock`
}

// reset is the write-path defect.
func (c *collector) reset() {
	c.messages = nil // want `write to c\.messages \(guarded by mu\) without holding c\.mu\.Lock`
	c.dropped = 0    // want `write to c\.dropped \(guarded by mu\) without holding c\.mu\.Lock`
}

// appendLocked follows the *Locked suffix convention: the caller
// holds the mutex.
func (c *collector) appendLocked(m string) {
	c.messages = append(c.messages, m)
}

// name reads only unguarded state; no lock required.
func (c *collector) name() string { return c.ref }

// database mirrors isis.Database with its RWMutex.
type database struct {
	mu   sync.RWMutex
	lsps map[string]int // guarded by mu
}

// get is correct: a read under RLock.
func (db *database) get(id string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.lsps[id]
}

// install under RLock is the subtler defect: the read lock does not
// license a map write.
func (db *database) install(id string, seq int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	db.lsps[id] = seq // want `write to db\.lsps \(guarded by mu\) under db\.mu\.RLock; writes need db\.mu\.Lock`
}

// drain accesses another instance's guarded field: the lock must be
// taken on that instance's chain, and here it is.
func drain(src *database) map[string]int {
	src.mu.Lock()
	defer src.mu.Unlock()
	out := src.lsps
	src.lsps = map[string]int{}
	return out
}

// purge mutates the map through the delete builtin: still a write,
// still not licensed by RLock.
func (db *database) purge(id string) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	delete(db.lsps, id) // want `write to db\.lsps \(guarded by mu\) under db\.mu\.RLock; writes need db\.mu\.Lock`
}

// merge locks the receiver but touches the other instance's guarded
// map without its lock.
func (db *database) merge(other *database) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for id, seq := range other.lsps { // want `read of other\.lsps \(guarded by mu\) without holding other\.mu\.Lock`
		if seq > db.lsps[id] {
			db.lsps[id] = seq
		}
	}
}
