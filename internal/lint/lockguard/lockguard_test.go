package lockguard_test

import (
	"testing"

	"netfail/internal/lint/linttest"
	"netfail/internal/lint/lockguard"
)

// TestGuardedFields checks the "// guarded by mu" convention on
// fixtures mirroring syslog.Collector and isis.Database: unlocked
// reads and writes and writes under RLock are diagnosed; locked
// accesses, *Locked helpers, constructors, and per-instance locking
// pass.
func TestGuardedFields(t *testing.T) {
	linttest.Run(t, lockguard.Analyzer, "testdata/guard", "netfail/internal/syslog/guardtest")
}
