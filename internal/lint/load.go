package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TestScope marks the test variants of a package: the
	// test-augmented package (GoFiles plus in-package _test.go files)
	// and the external test package (package foo_test). Run only
	// applies IncludeTests analyzers to them and keeps only their
	// _test.go diagnostics.
	TestScope bool
}

// listedPackage is the subset of `go list -json` output the loader
// consumes. DepOnly marks packages listed only because a matched
// package depends on them; Export is the compiled export-data file.
type listedPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	ForTest      string
	Export       string
	Standard     bool
	DepOnly      bool
	Error        *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, which
// must be inside the module), parses their Go files, and type-checks
// them against export data emitted by the go toolchain. This works
// fully offline: `go list -deps -test -export` compiles dependencies
// (test dependencies included) into the build cache and reports the
// export file per package, and the standard library's gc importer
// reads those files back.
//
// Each matched package yields up to three entries: the package
// itself, a TestScope variant re-checked with its in-package _test.go
// files, and a TestScope package for its external tests (package
// foo_test), so analyzers can opt into test files via IncludeTests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly || !isBasePackage(p) {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		base, err := check(fset, newImporter(fset, exports, ""), p, p.ImportPath, p.GoFiles, false)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, base)
		if len(p.TestGoFiles) > 0 {
			aug, err := check(fset, newImporter(fset, exports, ""), p, p.ImportPath,
				append(append([]string(nil), p.GoFiles...), p.TestGoFiles...), true)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, aug)
		}
		if len(p.XTestGoFiles) > 0 {
			// External test files may use hooks that export_test.go
			// files add to the package under test, so imports of that
			// package must resolve to its test-augmented export data.
			xImp := newImporter(fset, exports, p.ImportPath)
			xt, err := check(fset, xImp, p, p.ImportPath+"_test", p.XTestGoFiles, true)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xt)
		}
	}
	return pkgs, nil
}

// isBasePackage filters the extra entries `go list -test` emits: the
// generated test binary main ("pkg.test") and the recompiled
// test-dependency variants ("pkg [other.test]"). Their export data is
// still consulted; only the base entry drives analysis.
func isBasePackage(p listedPackage) bool {
	return p.ForTest == "" &&
		!strings.HasSuffix(p.ImportPath, ".test") &&
		!strings.Contains(p.ImportPath, " [")
}

// newImporter builds an export-data importer. When augmentFor is
// non-empty, imports of that package resolve to its test-augmented
// variant ("path [path.test]") if one was compiled — the export data
// external test packages are built against.
func newImporter(fset *token.FileSet, exports map[string]string, augmentFor string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := "", false
		if path == augmentFor {
			file, ok = exports[fmt.Sprintf("%s [%s.test]", path, path)]
		}
		if !ok {
			file, ok = exports[path]
		}
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,ForTest,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

func check(fset *token.FileSet, imp types.Importer, p listedPackage, importPath string, names []string, testScope bool) (*Package, error) {
	var files []*ast.File
	for _, name := range names {
		file, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, file)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
		TestScope:  testScope,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated. Shared with the linttest harness so fixtures are
// type-checked identically to real packages.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
