package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes. DepOnly marks packages listed only because a matched
// package depends on them; Export is the compiled export-data file.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns (relative to dir, which
// must be inside the module), parses their non-test Go files, and
// type-checks them against export data emitted by the go toolchain.
// This works fully offline: `go list -export` compiles dependencies
// into the build cache and reports the export file per package, and
// the standard library's gc importer reads those files back.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", lookup)
	var pkgs []*Package
	for _, p := range listed {
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := check(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

func check(fset *token.FileSet, imp types.Importer, p listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		file, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, file)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult populated. Shared with the linttest harness so fixtures are
// type-checked identically to real packages.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
