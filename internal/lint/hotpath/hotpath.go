// Package hotpath locates functions annotated with the
// //netfail:hotpath directive — the annotation contract behind the
// hotalloc analyzer and the escape-analysis baseline gate
// (internal/lint/escape).
//
// The directive is a standard Go directive comment (no space after
// //, so godoc hides it) placed in the doc-comment block of a
// function or method declaration:
//
//	//netfail:hotpath
//	func Parse(line string, ref time.Time) (*Message, error) { ... }
//
// Annotating a function declares it part of the steady-state
// per-record path of the pipeline (syslog tokenizing, LSP/TLV
// decoding, matching-window inner loops, pool shard bodies) and opts
// it into two machine-checked invariants:
//
//   - hotalloc flags allocation-inducing constructs in its body;
//   - every heap escape the compiler reports inside its body must be
//     recorded in lint-escape-baseline.txt, so new escapes fail CI.
package hotpath

import (
	"go/ast"
	"strings"
)

// Directive is the annotation comment, byte-exact.
const Directive = "//netfail:hotpath"

// A Func is one annotated function declaration.
type Func struct {
	Decl *ast.FuncDecl
	// Name is the qualified name within its package, matching the
	// compiler's diagnostic naming: "Parse" for functions,
	// "(*TransitionIndex).AnyWithin" / "ISNeighbor.Key" for methods.
	Name string
}

// Functions returns the annotated declarations in files, in source
// order.
func Functions(files []*ast.File) []Func {
	var out []Func
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !Annotated(fd) {
				continue
			}
			out = append(out, Func{Decl: fd, Name: FuncName(fd)})
		}
	}
	return out
}

// Annotated reports whether the declaration carries the directive.
func Annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// FuncName returns the qualified name of a declaration:
// "Func" for package-level functions, "(*T).Method" or "T.Method"
// for methods (type parameters elided).
func FuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := receiverTypeName(fd.Recv.List[0].Type)
	return recv + "." + fd.Name.Name
}

// receiverTypeName renders a receiver type expression: *T becomes
// (*T), generic instantiations T[P] reduce to T.
func receiverTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return "(*" + baseTypeName(e.X) + ")"
	default:
		return baseTypeName(e)
	}
}

func baseTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr:
		return baseTypeName(e.X)
	case *ast.IndexListExpr:
		return baseTypeName(e.X)
	case *ast.ParenExpr:
		return baseTypeName(e.X)
	}
	return "?"
}
