// Package linttest runs lint analyzers over testdata fixture
// packages and checks their diagnostics against expectations written
// in the fixtures themselves, following the golang.org/x/tools
// analysistest convention: a line that should be flagged carries a
// trailing comment
//
//	// want `regexp`
//
// (double-quoted Go strings also work, and several expectations may
// follow one want). A fixture directory holds exactly one package;
// the test chooses the import path under which it is type-checked,
// which is how path-scoped analyzers (detclock, droppederr) are
// exercised both inside and outside their enforcement scope.
package linttest

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"netfail/internal/lint"
)

// Run type-checks the single package in dir under importPath, applies
// the analyzer, and reports any mismatch between its diagnostics and
// the fixture's want comments as test errors.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	run(t, a, dir, importPath, true)
}

// RunExpectNone applies the analyzer to the fixture and requires zero
// diagnostics, ignoring any want comments. It re-uses positive
// fixtures to prove a scope exemption: the same code that is flagged
// under a deterministic import path must be silent outside it.
func RunExpectNone(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	run(t, a, dir, importPath, false)
}

func run(t *testing.T, a *lint.Analyzer, dir, importPath string, useWants bool) {
	t.Helper()

	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	info := lint.NewTypesInfo()
	conf := types.Config{Importer: fixtureImporter(t, fset, files)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-checking %s: %v", dir, err)
	}

	pkg := &lint.Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	findings, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	if !useWants {
		for _, f := range findings {
			t.Errorf("%s: unexpected diagnostic outside scope: %s", f.Pos, f.Message)
		}
		return
	}
	wants := collectWants(t, fset, files)
	checkExpectations(t, findings, wants)
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	return files, nil
}

// fixtureImporter resolves the fixture's imports (standard library
// and netfail packages alike) from export data produced by
// `go list -export`, run once per fixture from the module root.
func fixtureImporter(t *testing.T, fset *token.FileSet, files []*ast.File) types.Importer {
	t.Helper()
	seen := map[string]bool{}
	var paths []string
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[path] {
				continue
			}
			seen[path] = true
			paths = append(paths, path)
		}
	}
	exports := exportData(t, paths)
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("linttest: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func exportData(t *testing.T, paths []string) map[string]string {
	t.Helper()
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot(t)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("linttest: go list %v: %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			t.Fatalf("linttest: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("linttest: no go.mod above test directory")
		}
		dir = parent
	}
}

// A want is one expected diagnostic: a position and a regexp the
// message must match.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range parsePatterns(t, pos, m[1]) {
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: pat})
				}
			}
		}
	}
	return wants
}

// parsePatterns reads a space-separated sequence of quoted regexps
// (backquoted or double-quoted) from the tail of a want comment.
func parsePatterns(t *testing.T, pos token.Position, s string) []*regexp.Regexp {
	t.Helper()
	var pats []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		quoted, rest, err := quotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want comment %q: %v", pos, s, err)
		}
		text, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: malformed want pattern %q: %v", pos, quoted, err)
		}
		pat, err := regexp.Compile(text)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, text, err)
		}
		pats = append(pats, pat)
		s = rest
	}
}

func quotedPrefix(s string) (quoted, rest string, err error) {
	quoted, err = strconv.QuotedPrefix(s)
	if err != nil {
		return "", "", err
	}
	return quoted, s[len(quoted):], nil
}

func checkExpectations(t *testing.T, findings []lint.Finding, wants []*want) {
	t.Helper()
	for _, f := range findings {
		if w := matchWant(wants, f); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func matchWant(wants []*want, f lint.Finding) *want {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(f.Message) {
			return w
		}
	}
	return nil
}
