// Package lint is a self-contained static-analysis framework for the
// netfail repository, modelled on golang.org/x/tools/go/analysis but
// built entirely on the standard library so the repo carries no
// external dependencies.
//
// The paper's methodology rests on byte-faithful trace reconstruction
// and reproducible matching windows: a single unseeded random source,
// a stray wall-clock read in a simulation path, or an unsynchronized
// LSP-database access silently corrupts the syslog-vs-IS-IS
// comparison. The analyzers under internal/lint/ encode those
// invariants so they are checked mechanically on every change:
//
//   - detclock: forbids time.Now/Since/Until and global math/rand
//     outside internal/clock (determinism).
//   - droppederr: forbids silently discarding errors returned by the
//     syslog/IS-IS parse and decode paths (a swallowed error is a
//     silently shortened trace).
//   - lockguard: enforces the "// guarded by mu" field annotation
//     convention (accesses must hold the named mutex).
//   - durmul: catches time.Duration arithmetic bugs in the
//     flap/matching-window code (duration×duration, raw integers
//     passed as durations).
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. The loader (Load) type-checks packages offline using
// export data produced by `go list -export`, and the cmd/netfail-lint
// multichecker drives the whole suite.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "detclock".
	Name string
	// Doc is a one-paragraph description of what the analyzer checks.
	Doc string
	// IncludeTests extends the pass to _test.go files: the analyzer
	// also runs over the test-augmented and external-test variants of
	// each package, with findings restricted to positions inside test
	// files (the non-test files were already analyzed in the base
	// pass). Analyzers whose invariants do not bind tests leave this
	// false and never see test code.
	IncludeTests bool
	// Run applies the analyzer to a single package and reports
	// findings via pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides an analyzer with the parsed, type-checked package
// under inspection and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// A Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers
// with IncludeTests set use it to relax rules that only bind
// production code (e.g. detclock permits wall-clock deadlines in
// tests but still forbids the process-global random source).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// A Finding is a diagnostic resolved to a file position, tagged with
// the analyzer and package that produced it.
type Finding struct {
	Analyzer string
	Pkg      string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies each analyzer to each package and returns the combined
// findings sorted by position. Test-scoped packages (the variants the
// loader emits for _test.go files) are analyzed only by IncludeTests
// analyzers, and only their test-file diagnostics are kept: the
// non-test files in a test-augmented package were already covered by
// the base pass.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if pkg.TestScope && !a.IncludeTests {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diagnostics {
				pos := pkg.Fset.Position(d.Pos)
				if pkg.TestScope && !strings.HasSuffix(pos.Filename, "_test.go") {
					continue
				}
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pkg:      pkg.ImportPath,
					Pos:      pos,
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
