package escape_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netfail/internal/lint/escape"
)

// TestCollectSyntheticModule builds a throwaway module with one
// escaping and one escape-free hotpath function and checks Collect
// reads the compiler's verdicts back out, scoped to the annotated
// bodies only.
func TestCollectSyntheticModule(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "go.mod", "module example.com/esc\n\ngo 1.24\n")
	write(t, dir, "esc.go", `package esc

type Box struct{ V int }

// Leak forces a heap escape: the address outlives the frame.
//
//netfail:hotpath
func Leak() *Box {
	b := Box{V: 1}
	return &b
}

// Stays is escape-free.
//
//netfail:hotpath
func Stays(vs []int) int {
	n := 0
	for _, v := range vs {
		n += v
	}
	return n
}

// unannotated escapes too, but is outside the gate.
func unannotated() *Box {
	b := Box{V: 2}
	return &b
}
`)

	entries, err := escape.Collect(dir)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("Collect returned %d entries, want 2: %v", len(entries), entries)
	}
	if entries[0].Func != "example.com/esc.Leak" || !strings.Contains(entries[0].Diag, "moved to heap") {
		t.Errorf("entry 0 = %v, want Leak moved-to-heap", entries[0])
	}
	if entries[1].Func != "example.com/esc.Stays" || entries[1].Diag != escape.None {
		t.Errorf("entry 1 = %v, want Stays %s", entries[1], escape.None)
	}
}

// TestCollectNoAnnotations pins the empty case: a module without
// hotpath directives produces no entries and no error.
func TestCollectNoAnnotations(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "go.mod", "module example.com/cold\n\ngo 1.24\n")
	write(t, dir, "cold.go", "package cold\n\nfunc F() *int { v := 3; return &v }\n")
	entries, err := escape.Collect(dir)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("Collect returned %v, want none", entries)
	}
}

// TestFormatParseRoundTrip checks the baseline file format survives a
// write/read cycle, including diagnostics that themselves contain
// colons, and that comment lines carry real line numbers through.
func TestFormatParseRoundTrip(t *testing.T) {
	in := []Entry{
		{Func: "netfail/internal/isis.(*LSP).Decode", Diag: "moved to heap: out"},
		{Func: "netfail/internal/syslog.Parse", Diag: escape.None},
	}
	parsed, err := escape.ParseBaseline(escape.Format(in))
	if err != nil {
		t.Fatalf("ParseBaseline: %v", err)
	}
	if len(parsed) != len(in) {
		t.Fatalf("round-trip lost entries: %v", parsed)
	}
	headerLines := strings.Count(escape.Header, "\n")
	for i, b := range parsed {
		if b.Entry != in[i] {
			t.Errorf("entry %d = %v, want %v", i, b.Entry, in[i])
		}
		if b.Line != headerLines+i+1 {
			t.Errorf("entry %d line = %d, want %d", i, b.Line, headerLines+i+1)
		}
	}
}

type Entry = escape.Entry

func TestParseBaselineMalformed(t *testing.T) {
	if _, err := escape.ParseBaseline([]byte("# ok\nnot a baseline line\n")); err == nil {
		t.Fatal("ParseBaseline accepted a malformed line")
	}
}

// TestDiff covers the three gate outcomes: in sync, a new escape, and
// a stale baseline entry.
func TestDiff(t *testing.T) {
	cur := []Entry{
		{Func: "p.A", Diag: "moved to heap: x"},
		{Func: "p.B", Diag: escape.None},
	}
	base, err := escape.ParseBaseline(escape.Format(cur))
	if err != nil {
		t.Fatal(err)
	}
	if added, stale := escape.Diff(cur, base); len(added) != 0 || len(stale) != 0 {
		t.Fatalf("in-sync diff reported added=%v stale=%v", added, stale)
	}

	grown := append([]Entry{{Func: "p.A", Diag: "&b escapes to heap"}}, cur...)
	added, stale := escape.Diff(grown, base)
	if len(added) != 1 || added[0].Diag != "&b escapes to heap" {
		t.Errorf("new escape not reported: added=%v", added)
	}
	if len(stale) != 0 {
		t.Errorf("spurious stale entries: %v", stale)
	}

	added, stale = escape.Diff(cur[:1], base)
	if len(added) != 0 {
		t.Errorf("spurious added entries: %v", added)
	}
	if len(stale) != 1 || stale[0].Func != "p.B" || stale[0].Line == 0 {
		t.Errorf("stale entry not reported with its line: %v", stale)
	}
}

func write(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
