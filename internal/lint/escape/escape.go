// Package escape implements the escape-analysis baseline gate: the
// compiler's own escape diagnostics (`go build -gcflags=-m=1`),
// filtered to //netfail:hotpath function bodies and diffed against a
// committed baseline, so that a change that introduces a new heap
// escape on a hot path fails lint even when no reviewer notices.
//
// hotalloc (the sibling analyzer) flags allocation-inducing syntax;
// this gate closes the other half of the loop: escapes the syntax
// does not reveal — a value whose address reaches the heap through a
// chain of calls, an interface the compiler cannot devirtualize, a
// slice the inliner stopped stack-allocating after a refactor. The
// compiler already computes all of this on every build; the gate just
// makes the answer diffable.
//
// The baseline (lint-escape-baseline.txt at the module root) holds
// one line per distinct diagnostic,
//
//	<import path>.<func>: <compiler message>
//
// with line numbers deliberately omitted so unrelated edits do not
// churn the file, and the sentinel "<none>" recording a hot function
// the compiler currently keeps off the heap entirely — so the
// baseline names every annotated function, and losing an escape-free
// status is as loud as gaining an escape.
package escape

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"netfail/internal/lint/hotpath"
)

// None is the baseline sentinel for a hotpath function with no escape
// diagnostics.
const None = "<none>"

// Header introduces the baseline file; lines starting with # are
// comments.
const Header = `# netfail escape-analysis baseline (go build -gcflags=-m=1).
# One line per compiler heap-escape diagnostic inside a
# //netfail:hotpath function; "<none>" records a hot function that is
# currently escape-free. Line numbers are omitted on purpose so the
# file survives unrelated edits. Refresh after intentional changes:
#   make lint-baseline
`

// An Entry is one baseline line: a hotpath function and one compiler
// escape diagnostic inside it (or None).
type Entry struct {
	Func string // qualified: "netfail/internal/syslog.Parse", "netfail/internal/match.(*TransitionIndex).AnyWithin"
	Diag string // compiler message, e.g. "moved to heap: out", or None
}

func (e Entry) String() string { return e.Func + ": " + e.Diag }

// A BaselineEntry is an Entry read from a baseline file, with the
// 1-based line it came from, so stale entries can be reported at
// their source.
type BaselineEntry struct {
	Entry
	Line int
}

// region is the source extent of one annotated function.
type region struct {
	file       string // module-root-relative, as the compiler prints it
	start, end int
	fn         string
}

// Collect builds the module with escape diagnostics enabled and
// returns the entries for every hotpath function, sorted. A function
// with no diagnostics yields a single None entry.
func Collect(moduleRoot string) ([]Entry, error) {
	regions, funcs, err := hotpathRegions(moduleRoot)
	if err != nil {
		return nil, err
	}
	if len(funcs) == 0 {
		return nil, nil
	}
	diags, err := buildDiagnostics(moduleRoot)
	if err != nil {
		return nil, err
	}
	seen := map[Entry]bool{}
	byFunc := map[string][]string{}
	for _, d := range diags {
		fn, ok := enclosing(regions, d.file, d.line)
		if !ok {
			continue
		}
		e := Entry{Func: fn, Diag: d.msg}
		if !seen[e] {
			seen[e] = true
			byFunc[fn] = append(byFunc[fn], d.msg)
		}
	}
	var out []Entry
	for _, fn := range funcs {
		msgs := byFunc[fn]
		if len(msgs) == 0 {
			out = append(out, Entry{Func: fn, Diag: None})
			continue
		}
		sort.Strings(msgs)
		for _, m := range msgs {
			out = append(out, Entry{Func: fn, Diag: m})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Diag < out[j].Diag
	})
	return out, nil
}

// hotpathRegions parses the module's non-test Go files and returns
// the source regions of annotated functions plus the sorted list of
// qualified function names (deduplicated).
func hotpathRegions(moduleRoot string) ([]region, []string, error) {
	cmd := exec.Command("go", "list", "-f",
		`{{.ImportPath}} {{.Dir}}{{range .GoFiles}} {{.}}{{end}}`, "./...")
	cmd.Dir = moduleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("escape: go list: %v\n%s", err, stderr.String())
	}
	var regions []region
	nameSet := map[string]bool{}
	fset := token.NewFileSet()
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue // package with no Go files
		}
		importPath, dir := fields[0], fields[1]
		for _, name := range fields[2:] {
			path := filepath.Join(dir, name)
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, nil, fmt.Errorf("escape: %v", err)
			}
			rel, err := filepath.Rel(moduleRoot, path)
			if err != nil {
				return nil, nil, fmt.Errorf("escape: %v", err)
			}
			for _, fn := range hotpath.Functions([]*ast.File{file}) {
				qualified := importPath + "." + fn.Name
				regions = append(regions, region{
					file:  filepath.ToSlash(rel),
					start: fset.Position(fn.Decl.Pos()).Line,
					end:   fset.Position(fn.Decl.End()).Line,
					fn:    qualified,
				})
				nameSet[qualified] = true
			}
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	return regions, names, nil
}

// FuncDecls returns the declaration position (module-root-relative
// file, first line) of every hotpath function, so gate findings can
// be attributed to source rather than to the baseline file.
func FuncDecls(moduleRoot string) (map[string]token.Position, error) {
	regions, _, err := hotpathRegions(moduleRoot)
	if err != nil {
		return nil, err
	}
	out := make(map[string]token.Position, len(regions))
	for _, r := range regions {
		if _, ok := out[r.fn]; !ok {
			out[r.fn] = token.Position{Filename: r.file, Line: r.start, Column: 1}
		}
	}
	return out, nil
}

// diag is one parsed compiler diagnostic.
type diag struct {
	file string
	line int
	msg  string
}

var diagRe = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+)$`)

// buildDiagnostics runs the compiler with -m=1 over the whole module
// and returns the heap-escape diagnostics. The go build cache replays
// -m output on cache hits, so this is cheap on a warm cache and needs
// no cache-busting flags.
func buildDiagnostics(moduleRoot string) ([]diag, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m=1", "./...")
	cmd.Dir = moduleRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("escape: go build -gcflags=-m=1: %v\n%s", err, stderr.String())
	}
	var diags []diag
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := diagRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		n, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		file := strings.TrimPrefix(filepath.ToSlash(m[1]), "./")
		diags = append(diags, diag{file: file, line: n, msg: msg})
	}
	return diags, nil
}

func enclosing(regions []region, file string, line int) (string, bool) {
	for _, r := range regions {
		if r.file == file && r.start <= line && line <= r.end {
			return r.fn, true
		}
	}
	return "", false
}

// Format renders entries as a baseline file, header included.
func Format(entries []Entry) []byte {
	var b strings.Builder
	b.WriteString(Header)
	for _, e := range entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// ParseBaseline reads a baseline file, skipping comments and blank
// lines, keeping source line numbers for stale-entry reporting.
func ParseBaseline(data []byte) ([]BaselineEntry, error) {
	var out []BaselineEntry
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fn, msg, ok := strings.Cut(line, ": ")
		if !ok || fn == "" || msg == "" {
			return nil, fmt.Errorf("escape: baseline line %d: malformed entry %q (want \"func: diagnostic\")", i+1, line)
		}
		out = append(out, BaselineEntry{
			Entry: Entry{Func: fn, Diag: msg},
			Line:  i + 1,
		})
	}
	return out, nil
}

// Diff compares the current entries against a baseline. added are
// current entries the baseline does not record (new escapes — or new
// hotpath functions not yet baselined); stale are baseline entries no
// longer produced (fixed escapes, renamed functions), which must be
// pruned so the baseline never pads out.
func Diff(current []Entry, baseline []BaselineEntry) (added []Entry, stale []BaselineEntry) {
	inBase := map[Entry]bool{}
	for _, b := range baseline {
		inBase[b.Entry] = true
	}
	inCur := map[Entry]bool{}
	for _, c := range current {
		inCur[c] = true
		if !inBase[c] {
			added = append(added, c)
		}
	}
	for _, b := range baseline {
		if !inCur[b.Entry] {
			stale = append(stale, b)
		}
	}
	return added, stale
}
