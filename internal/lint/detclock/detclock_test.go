package detclock_test

import (
	"testing"

	"netfail/internal/lint/detclock"
	"netfail/internal/lint/linttest"
)

// TestDeterministicPackage checks that wall-clock reads and global
// math/rand draws are diagnosed inside the deterministic scope. The
// fixture reproduces the pre-fix defects from examples/livecapture
// and cmd/netfail-listener.
func TestDeterministicPackage(t *testing.T) {
	linttest.Run(t, detclock.Analyzer, "testdata/det", "netfail/internal/netsim/dettest")
}

// TestClockPackageExempt checks that internal/clock — the sanctioned
// wall-clock source — is outside the enforcement scope.
func TestClockPackageExempt(t *testing.T) {
	linttest.Run(t, detclock.Analyzer, "testdata/exempt", "netfail/internal/clock/systest")
}

// TestOutsideModuleExempt checks that a package outside the module
// path (e.g. a vendored tool) is not in scope: the same defective
// code that TestDeterministicPackage flags must be silent there.
func TestOutsideModuleExempt(t *testing.T) {
	linttest.RunExpectNone(t, detclock.Analyzer, "testdata/det", "example.com/external")
}
