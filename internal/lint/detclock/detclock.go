// Package detclock implements the determinism analyzer: inside the
// reproduction's deterministic packages, wall-clock reads and the
// process-global math/rand source are forbidden.
//
// The paper's analysis (failure durations, matching windows, Tables
// 2–7) must reproduce bit-for-bit from a seed. Every timestamp in a
// simulated trace therefore flows from the simulation clock or an
// explicit parameter, and every random draw from a seeded
// *rand.Rand. A stray time.Now() or global rand.Intn() compiles
// fine, passes tests on a fast machine, and silently corrupts the
// syslog-vs-IS-IS comparison — exactly the defect class a compiler
// never catches.
//
// The analyzer flags, in every module package except internal/clock
// (the one sanctioned wall-clock source):
//
//   - any use of time.Now, time.Since, or time.Until (time.Since and
//     time.Until read the wall clock implicitly);
//   - any use of a package-level math/rand function that draws from
//     the process-global source (rand.Int, rand.Intn, rand.Seed,
//     rand.Shuffle, ...). Constructing a seeded source with rand.New
//     and rand.NewSource remains legal — that is the required idiom.
package detclock

import (
	"go/ast"
	"go/types"
	"strings"

	"netfail/internal/lint"
)

// Analyzer is the detclock pass. It extends to _test.go files with
// the wall-clock rule relaxed: tests may poll real time while waiting
// on sockets and goroutines (the collector tests do), but a test that
// draws from the process-global math/rand source produces
// unreproducible test data, so the randomness rule binds everywhere.
var Analyzer = &lint.Analyzer{
	Name:         "detclock",
	Doc:          "forbid wall-clock reads and global math/rand in deterministic packages",
	IncludeTests: true,
	Run:          run,
}

// clockPackage is the only package allowed to touch the wall clock;
// everything else injects a clock.Clock or takes timestamps as
// parameters.
const clockPackage = "netfail/internal/clock"

// inScope reports whether the package at path is subject to
// determinism enforcement. The whole module is in scope except
// internal/clock itself. External test packages inherit the scope of
// the package they test ("netfail/internal/clock_test" is exempt like
// clock itself).
func inScope(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	if path == clockPackage || strings.HasPrefix(path, clockPackage+"/") {
		return false
	}
	return path == "netfail" ||
		strings.HasPrefix(path, "netfail/internal/") ||
		strings.HasPrefix(path, "netfail/cmd/") ||
		strings.HasPrefix(path, "netfail/examples/")
}

// wallClockFuncs are the time package functions that read the wall
// clock.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// sourceConstructors are the math/rand package-level functions that
// do not draw from the global source and stay allowed.
var sourceConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func run(pass *lint.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn, time.Time.Sub) are
			// fine: only package-level functions touch global state.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] && !pass.InTestFile(sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock in deterministic package %s; inject a clock.Clock (netfail/internal/clock) or pass the timestamp as a parameter",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !sourceConstructors[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global source in deterministic package %s; use a seeded rand.New(rand.NewSource(seed))",
						fn.Name(), pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
