// Fixture type-checked under a path below netfail/internal/clock:
// the one sanctioned home for the wall clock. Identical calls to the
// det fixture, zero diagnostics expected.
package exempt

import "time"

func systemNow() time.Time { return time.Now().UTC() }

func sinceStart(start time.Time) time.Duration { return time.Since(start) }
