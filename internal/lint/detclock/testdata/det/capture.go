// Fixture derived from the pre-fix repository code that detclock was
// built to catch: examples/livecapture/main.go fed lsp.Process with
// time.Now().UTC() and cmd/netfail-listener/main.go wrapped the wall
// clock in a nowUTC() helper, so replaying the same capture twice
// produced two different traces. This package is type-checked under a
// deterministic import path, so every wall-clock read and global
// rand draw must be diagnosed.
package det

import (
	"math/rand"
	"time"
)

func nowUTC() time.Time {
	return time.Now().UTC() // want `time\.Now reads the wall clock`
}

func process(at time.Time, data []byte) error { return nil }

func capture(buf []byte) error {
	// Pre-fix examples/livecapture: stamping a simulated PDU with the
	// host's wall clock.
	return process(time.Now().UTC(), buf) // want `time\.Now reads the wall clock`
}

func age(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func deadline(start time.Time) time.Duration {
	return time.Until(start.Add(time.Hour)) // want `time\.Until reads the wall clock`
}

func jitter() time.Duration {
	// Pre-fix seed pattern: the process-global source, seeded from
	// the wall clock, in one line.
	rand.Seed(time.Now().UnixNano()) // want `rand\.Seed draws from the process-global source` `time\.Now reads the wall clock`
	return time.Duration(rand.Intn(1000)) * time.Millisecond // want `rand\.Intn draws from the process-global source`
}

func seeded(seed int64, n int) []int {
	// The required idiom: an explicitly seeded source and methods on
	// it. rand.New and rand.NewSource are constructors, not draws.
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(100)
	}
	return out
}

func explicitTimestamps(at time.Time, events []time.Time) time.Duration {
	// Timestamp parameters and time.Time methods are fine; only the
	// ambient wall clock is forbidden.
	var total time.Duration
	for _, e := range events {
		total += at.Sub(e)
	}
	time.Sleep(0) // Sleep does not read the clock.
	return total
}
