// Package goleak implements the goroutine-soundness analyzer: every
// goroutine the module launches must have a reachable exit path, and
// must not block forever on a channel send whose receiver has gone
// away.
//
// The streaming daemon direction (ROADMAP item 1) turns the pipeline
// into a long-running process, which is the regime where a leaked
// goroutine stops being a curiosity and becomes the failure mode
// Liang et al. (PAPERS.md) document for syslog pipelines: the
// process stays up, memory and scheduler load creep, and the capture
// silently falls behind its log source. The race detector cannot see
// a leak — a leaked goroutine races with nothing — so the invariant
// is enforced statically, at the `go` statement:
//
//   - a goroutine whose body runs an unconditional `for` loop with no
//     reachable exit — no return, no break that targets the loop, no
//     terminal call (panic, os.Exit, log.Fatal*, runtime.Goexit) —
//     leaks for the life of the process. Loop until a cancellation
//     signal (ctx.Done(), a done channel, a closed work channel)
//     tells you to return;
//   - a channel send inside a goroutine that is not a case of a
//     `select` with a receive or default case blocks forever once the
//     receiver is gone. Pair every goroutine send with a cancellation
//     receive in one select.
//
// Named functions launched with `go f()` are resolved within the
// package and their bodies held to the same rules (the collector's
// `go c.run()` shape); functions from other packages are outside the
// pass's view and trusted. Closures nested inside a goroutine body
// are skipped — each `go` statement is analyzed at its own launch
// site.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"netfail/internal/lint"
)

// Analyzer is the goleak pass.
var Analyzer = &lint.Analyzer{
	Name: "goleak",
	Doc:  "require every goroutine to have a reachable exit path and cancellation-guarded sends",
	Run:  run,
}

// inScope limits enforcement to the module's own packages.
func inScope(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return path == "netfail" ||
		strings.HasPrefix(path, "netfail/internal/") ||
		strings.HasPrefix(path, "netfail/cmd/") ||
		strings.HasPrefix(path, "netfail/examples/")
}

func run(pass *lint.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	decls := declIndex(pass.Files)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, named := launchedBody(pass, decls, g)
			if body == nil {
				return true
			}
			checkGoroutine(pass, g, body, named)
			return true
		})
	}
	return nil
}

// declIndex maps each function declaration's name position to its
// declaration, the key obj.Pos() yields for a resolved *types.Func.
func declIndex(files []*ast.File) map[token.Pos]*ast.FuncDecl {
	idx := map[token.Pos]*ast.FuncDecl{}
	for _, file := range files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				idx[fd.Name.Pos()] = fd
			}
		}
	}
	return idx
}

// launchedBody resolves the body of the function a go statement
// launches: a literal's own body, or the declaration of a named
// function or method defined in this package. named carries the
// callee's name for diagnostics ("" for literals).
func launchedBody(pass *lint.Pass, decls map[token.Pos]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, string) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, ""
	case *ast.Ident:
		return declBody(pass, decls, fun)
	case *ast.SelectorExpr:
		return declBody(pass, decls, fun.Sel)
	}
	return nil, ""
}

func declBody(pass *lint.Pass, decls map[token.Pos]*ast.FuncDecl, id *ast.Ident) (*ast.BlockStmt, string) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return nil, ""
	}
	fd, ok := decls[fn.Pos()]
	if !ok || fd.Body == nil {
		return nil, "" // defined elsewhere: outside this pass's view
	}
	return fd.Body, fn.Name()
}

// checkGoroutine applies both rules to one launched body.
func checkGoroutine(pass *lint.Pass, g *ast.GoStmt, body *ast.BlockStmt, named string) {
	where := "goroutine"
	if named != "" {
		where = "goroutine calling " + named
	}
	for _, loop := range unconditionalLoops(body) {
		if !loopExits(pass, loop) {
			pass.Reportf(g.Pos(),
				"%s runs an unconditional loop with no reachable exit (no return, loop break, or terminal call): it leaks for the life of the process; select on a cancellation signal (ctx.Done or a done channel) and return", where)
		}
	}
	for _, send := range unguardedSends(body) {
		pass.Reportf(send.Pos(),
			"channel send in a %s outside a select with a cancellation case: if the receiver is gone this goroutine blocks forever; wrap the send in select with ctx.Done (or default)", where)
	}
}

// unconditionalLoops collects `for { ... }` statements in body,
// excluding those inside nested function literals.
func unconditionalLoops(body *ast.BlockStmt) []*ast.ForStmt {
	var loops []*ast.ForStmt
	inspectShallow(body, func(n ast.Node) {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			loops = append(loops, f)
		}
	})
	return loops
}

// loopExits reports whether the loop body contains a statement that
// can leave the loop (or the goroutine): a return, a break that
// targets this loop (unlabeled breaks inside nested loops, switches,
// and selects target those instead), a goto, or a terminal call.
func loopExits(pass *lint.Pass, loop *ast.ForStmt) bool {
	return scanExit(pass, loop.Body, true)
}

// scanExit walks stmts; breakable tracks whether an unlabeled break
// here still targets the goroutine loop under test.
func scanExit(pass *lint.Pass, n ast.Stmt, breakable bool) bool {
	switch n := n.(type) {
	case nil:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if n.Tok == token.GOTO {
			return true // a goto can jump past the loop
		}
		return n.Tok == token.BREAK && (breakable || n.Label != nil)
	case *ast.ExprStmt:
		return isTerminalCall(pass, n.X)
	case *ast.BlockStmt:
		for _, s := range n.List {
			if scanExit(pass, s, breakable) {
				return true
			}
		}
	case *ast.IfStmt:
		return scanExit(pass, n.Body, breakable) || scanExit(pass, n.Else, breakable)
	case *ast.ForStmt:
		return scanExit(pass, n.Body, false)
	case *ast.RangeStmt:
		return scanExit(pass, n.Body, false)
	case *ast.SwitchStmt:
		return scanExit(pass, n.Body, false)
	case *ast.TypeSwitchStmt:
		return scanExit(pass, n.Body, false)
	case *ast.SelectStmt:
		return scanExit(pass, n.Body, false)
	case *ast.CaseClause:
		for _, s := range n.Body {
			if scanExit(pass, s, breakable) {
				return true
			}
		}
	case *ast.CommClause:
		for _, s := range n.Body {
			if scanExit(pass, s, breakable) {
				return true
			}
		}
	case *ast.LabeledStmt:
		return scanExit(pass, n.Stmt, breakable)
	}
	return false
}

// terminalFuncs are package-level functions that never return.
var terminalFuncs = map[string]map[string]bool{
	"os":      {"Exit": true},
	"runtime": {"Goexit": true},
	"log":     {"Fatal": true, "Fatalf": true, "Fatalln": true, "Panic": true, "Panicf": true, "Panicln": true},
}

func isTerminalCall(pass *lint.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, builtin := pass.TypesInfo.Uses[fun].(*types.Builtin)
		return builtin && fun.Name == "panic"
	case *ast.SelectorExpr:
		fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return false
		}
		return terminalFuncs[fn.Pkg().Path()][fn.Name()]
	}
	return false
}

// unguardedSends collects channel sends in body (nested literals
// excluded) that are not protected by a select with an escape case: a
// receive case or a default.
func unguardedSends(body *ast.BlockStmt) []*ast.SendStmt {
	guarded := map[*ast.SendStmt]bool{}
	var sends []*ast.SendStmt
	inspectShallow(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectStmt:
			escape := false
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CommClause)
				if cc.Comm == nil || isReceive(cc.Comm) {
					escape = true
				}
			}
			if !escape {
				return
			}
			for _, clause := range n.Body.List {
				if send, ok := clause.(*ast.CommClause).Comm.(*ast.SendStmt); ok {
					guarded[send] = true
				}
			}
		case *ast.SendStmt:
			sends = append(sends, n)
		}
	})
	var out []*ast.SendStmt
	for _, s := range sends {
		if !guarded[s] {
			out = append(out, s)
		}
	}
	return out
}

// isReceive matches the comm statement forms that receive: `<-ch`,
// `v := <-ch`, `v, ok = <-ch`.
func isReceive(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, ok := ast.Unparen(s.X).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	}
	return false
}

// inspectShallow visits body without descending into nested function
// literals: each go statement is analyzed at its own launch site, and
// a closure defined (but perhaps never called) inside a goroutine
// must not vouch for it.
func inspectShallow(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
