// Package leak is the goleak fixture: the goroutine shapes of a
// streaming capture daemon, before and after cancellation discipline.
// The flagged forms are the ones a long-running collector cannot
// afford; the silent forms are the repo's sanctioned shapes
// (collector run loop with a done channel, pool workers ranging over
// a closed work channel).
package leak

import (
	"context"
	"log"
	"sync"
)

type record struct{ seq uint64 }

func work(r record)   {}
func next() record    { return record{} }
func degraded() bool  { return false }
func shouldEnd() bool { return true }

// spin is the canonical leak: an anonymous goroutine that polls
// forever with no way out.
func spin() {
	go func() { // want `goroutine runs an unconditional loop with no reachable exit`
		for {
			work(next())
		}
	}()
}

// pump leaks twice over: its loop never exits, and its send blocks
// forever once the consumer stops reading.
func pump(ch chan record) {
	for {
		ch <- next() // want `channel send in a goroutine calling pump outside a select with a cancellation case`
	}
}

func startPump(ch chan record) {
	go pump(ch) // want `goroutine calling pump runs an unconditional loop with no reachable exit`
}

// collector is the sanctioned daemon shape: the run loop selects on a
// done channel and returns.
type collector struct {
	done chan struct{}
	in   chan record
}

func (c *collector) run() {
	for {
		select {
		case <-c.done:
			return
		case r := <-c.in:
			work(r)
		}
	}
}

func (c *collector) start() {
	go c.run()
}

// selectBreak shows why an unlabeled break is not an exit: it targets
// the select, not the loop, so the goroutine spins on.
func selectBreak(done chan struct{}) {
	go func() { // want `goroutine runs an unconditional loop with no reachable exit`
		for {
			select {
			case <-done:
				break // breaks the select; the loop keeps going
			}
		}
	}()
}

// labeledBreak is the corrected form: the labeled break targets the
// loop and the goroutine ends.
func labeledBreak(done chan struct{}) {
	go func() {
	drain:
		for {
			select {
			case <-done:
				break drain
			}
		}
	}()
}

// fatalLoop may loop unconditionally because its only steady state
// ends the process.
func fatalLoop() {
	go func() {
		for {
			if degraded() {
				log.Fatal("capture degraded beyond salvage")
			}
			work(next())
		}
	}()
}

// guardedSend pairs every send with a cancellation receive in one
// select: the sanctioned way to hand records downstream.
func guardedSend(ctx context.Context, out chan record) {
	go func() {
		for {
			select {
			case out <- next():
			case <-ctx.Done():
				return
			}
		}
	}()
}

// sendOnlySelect shows that a select does not guard a send unless it
// has a receive or default case to escape through.
func sendOnlySelect(out chan record) {
	go func() {
		for {
			select {
			case out <- next(): // want `channel send in a goroutine outside a select with a cancellation case`
			}
			if shouldEnd() {
				return
			}
		}
	}()
}

// droppingSend uses default to shed load instead of blocking: silent.
func droppingSend(out chan record) {
	go func() {
		for {
			select {
			case out <- next():
			default:
			}
			if shouldEnd() {
				return
			}
		}
	}()
}

// worker is the pool shape: range over a closed work channel plus
// WaitGroup accounting. The range loop has a bound (channel close),
// so it is not an unconditional loop.
func worker(tasks chan record, wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		for r := range tasks {
			work(r)
		}
	}()
}

// innerClosure defines (but may never call) a looping closure inside
// a goroutine; the launch site is not charged for it.
func innerClosure() {
	go func() {
		retry := func() {
			for {
				work(next())
			}
		}
		_ = retry
	}()
}

func runSource(ctx context.Context) error { return nil }
func sleepCtx(ctx context.Context) error  { return ctx.Err() }

// naiveSupervisor is the flagged restart shape: it resurrects the
// source forever, with no exhaustion, cancellation, or budget path
// out — the daemon can never drain.
func naiveSupervisor(ctx context.Context) {
	go func() { // want `goroutine runs an unconditional loop with no reachable exit`
		for {
			_ = runSource(ctx)
		}
	}()
}

// supervisor is the sanctioned restart-with-backoff shape
// (internal/serve): every outcome of one source run either returns —
// exhausted source, dead context, spent backoff budget — or sleeps
// under the context before the next restart.
func supervisor(ctx context.Context) {
	go func() {
		for {
			err := runSource(ctx)
			if err == nil || ctx.Err() != nil {
				return
			}
			if !degraded() {
				return // restart budget spent: the source is down
			}
			if sleepCtx(ctx) != nil {
				return
			}
		}
	}()
}
