package goleak_test

import (
	"testing"

	"netfail/internal/lint/goleak"
	"netfail/internal/lint/linttest"
)

// TestGoleak runs the analyzer over the daemon fixture: leaking loop
// and send shapes are flagged, the repo's sanctioned collector / pool
// / guarded-send shapes stay silent.
func TestGoleak(t *testing.T) {
	linttest.Run(t, goleak.Analyzer, "testdata/leak", "netfail/internal/streamd")
}

// TestGoleakOutOfScope pins the module-only scope: the same leaking
// shapes in a third-party package produce nothing.
func TestGoleakOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, goleak.Analyzer, "testdata/leak", "example.com/external/streamd")
}
