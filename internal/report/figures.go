package report

import (
	"fmt"
	"os"
	"path/filepath"

	"netfail/internal/core"
	"netfail/internal/match"
	"netfail/internal/plot"
)

// SaveFigures writes Figure 1a–1c and the window-sweep knee as SVG
// files into dir, returning the paths written.
func SaveFigures(dir string, fig core.Figure1, knee []match.WindowPoint) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	charts := []struct {
		name  string
		chart *plot.Chart
	}{
		{"figure1a.svg", cdfChart("Figure 1a: CDF of failure duration (CPE links)", "seconds", fig.FailureDuration)},
		{"figure1b.svg", cdfChart("Figure 1b: CDF of annualized link downtime (CPE links)", "hours per year", fig.LinkDowntime)},
		{"figure1c.svg", cdfChart("Figure 1c: CDF of time between failures (CPE links)", "hours", fig.TimeBetween)},
		{"knee.svg", kneeChart(knee)},
	}
	var paths []string
	for _, c := range charts {
		path := filepath.Join(dir, c.name)
		f, err := os.Create(path)
		if err != nil {
			return paths, err
		}
		if err := c.chart.Render(f); err != nil {
			f.Close()
			return paths, fmt.Errorf("report: rendering %s: %w", c.name, err)
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

func cdfChart(title, xlabel string, cdfs [2]core.CDF) *plot.Chart {
	sx, sy := downsample(cdfs[0].X, cdfs[0].Y, 400)
	ix, iy := downsample(cdfs[1].X, cdfs[1].Y, 400)
	return &plot.Chart{
		Title:  title,
		XLabel: xlabel,
		YLabel: "cumulative fraction",
		LogX:   true,
		Series: []plot.Series{
			{Label: "syslog", X: sx, Y: sy},
			{Label: "IS-IS", X: ix, Y: iy},
		},
	}
}

// downsample thins a curve to at most n points, always keeping the
// endpoints. CDFs are monotone, so uniform index sampling preserves
// the shape.
func downsample(x, y []float64, n int) ([]float64, []float64) {
	if len(x) <= n {
		return x, y
	}
	ox := make([]float64, 0, n)
	oy := make([]float64, 0, n)
	step := float64(len(x)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		j := int(float64(i) * step)
		ox = append(ox, x[j])
		oy = append(oy, y[j])
	}
	ox[n-1], oy[n-1] = x[len(x)-1], y[len(y)-1]
	return ox, oy
}

func kneeChart(pts []match.WindowPoint) *plot.Chart {
	var xs, down, fail []float64
	for _, p := range pts {
		xs = append(xs, p.Window.Seconds())
		down = append(down, p.MatchedDowntimeFraction)
		fail = append(fail, p.MatchedFailureFraction)
	}
	return &plot.Chart{
		Title:  "Matching window sweep (knee at ten seconds, §3.4)",
		XLabel: "window (seconds)",
		YLabel: "fraction matched",
		LogX:   true,
		Series: []plot.Series{
			{Label: "downtime", X: xs, Y: down},
			{Label: "failures", X: xs, Y: fail},
		},
	}
}
