// Package report renders the analysis results as text tables laid
// out like the paper's Tables 1–7 and as plain data series for
// Figure 1, with the paper's published values alongside the measured
// ones so reproduction quality is visible at a glance.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// Num formats an integer with thousands separators, as the paper
// prints counts.
func Num(n int) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// F1 formats a float with one decimal.
func F1(f float64) string { return fmt.Sprintf("%.1f", f) }

// F0 formats a float with no decimals.
func F0(f float64) string { return fmt.Sprintf("%.0f", f) }
