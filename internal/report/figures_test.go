package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netfail/internal/core"
	"netfail/internal/match"
	"netfail/internal/trace"
)

func sampleFigure() core.Figure1 {
	mk := func(label string, n int) core.CDF {
		var xs, ys []float64
		for i := 1; i <= n; i++ {
			xs = append(xs, float64(i))
			ys = append(ys, float64(i)/float64(n))
		}
		return core.CDF{Label: label, X: xs, Y: ys}
	}
	return core.Figure1{
		FailureDuration: [2]core.CDF{mk("syslog", 600), mk("isis", 500)},
		LinkDowntime:    [2]core.CDF{mk("syslog", 50), mk("isis", 50)},
		TimeBetween:     [2]core.CDF{mk("syslog", 80), mk("isis", 80)},
	}
}

func sampleKnee() []match.WindowPoint {
	return []match.WindowPoint{
		{Window: time.Second, MatchedDowntimeFraction: 0.4, MatchedFailureFraction: 0.35},
		{Window: 10 * time.Second, MatchedDowntimeFraction: 0.75, MatchedFailureFraction: 0.7},
		{Window: time.Minute, MatchedDowntimeFraction: 0.85, MatchedFailureFraction: 0.8},
	}
}

func TestSaveFiguresWritesAllSVGs(t *testing.T) {
	dir := t.TempDir()
	paths, err := SaveFigures(dir, sampleFigure(), sampleKnee())
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg") {
			t.Errorf("%s is not an SVG", p)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "knee.svg")); err != nil {
		t.Error("knee.svg missing")
	}
}

func TestSaveFiguresDownsamples(t *testing.T) {
	dir := t.TempDir()
	paths, err := SaveFigures(dir, sampleFigure(), sampleKnee())
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(paths[0]) // figure1a from 600-point CDFs
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 120_000 {
		t.Errorf("figure1a.svg = %d bytes; downsampling ineffective", len(data))
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	x := make([]float64, 1000)
	y := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) / 999
	}
	ox, oy := downsample(x, y, 100)
	if len(ox) != 100 || len(oy) != 100 {
		t.Fatalf("len = %d/%d", len(ox), len(oy))
	}
	if ox[0] != 0 || ox[99] != 999 || oy[99] != 1 {
		t.Errorf("endpoints: %v..%v / %v", ox[0], ox[99], oy[99])
	}
	// Short inputs pass through untouched.
	sx, sy := downsample(x[:5], y[:5], 100)
	if len(sx) != 5 || len(sy) != 5 {
		t.Error("short input resampled")
	}
}

func TestRenderTable1(t *testing.T) {
	var buf bytes.Buffer
	t1 := core.Table1{
		Period:      trace.Interval{Start: time.Date(2010, 10, 20, 0, 0, 0, 0, time.UTC), End: time.Date(2011, 11, 11, 0, 0, 0, 0, time.UTC)},
		CoreRouters: 60, CPERouters: 175,
		ConfigFiles: 11623, CoreLinks: 84, CPELinks: 215,
		SyslogMessages: 47371, ISISUpdates: 11095550,
		MultiLinkAdjacencyPairs: 26, AnalyzedLinks: 247,
	}
	if err := RenderTable1(&buf, t1); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"60 Core and 175 CPE", "11,095,550", "47,371", "Oct 20, 2010"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRenderTable3(t *testing.T) {
	var buf bytes.Buffer
	t3 := core.Table3{
		Down:                core.Table3Row{None: 10, One: 20, Both: 70},
		Up:                  core.Table3Row{None: 5, One: 45, Both: 50},
		UnmatchedInFlapDown: 0.67, UnmatchedInFlapUp: 0.61,
	}
	if err := RenderTable3(&buf, t3); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "70 (70%)") || !strings.Contains(out, "67%") {
		t.Errorf("render:\n%s", out)
	}
	// Zero-total rows must not divide by zero.
	buf.Reset()
	if err := RenderTable3(&buf, core.Table3{}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderTable7(t *testing.T) {
	var buf bytes.Buffer
	t7 := core.Table7{
		ISISEvents: 1401, SyslogEvents: 1060, IntersectionEvents: 1002,
		ISISSites: 74, SyslogSites: 67, IntersectionSites: 66,
		ISISDowntime:     26*24*time.Hour + 7*time.Hour,
		SyslogOnlyEvents: 58, SyslogOnlyNoISISFailure: 12, SyslogOnlyIntersecting: 46,
		ISISOnlyEvents: 399, ISISOnlyDowntime: 6*24*time.Hour + 12*time.Hour,
	}
	if err := RenderTable7(&buf, t7); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"1,401", "26.3", "Syslog-only events: 58", "IS-IS-only events: 399"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
