package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"netfail/internal/core"
	"netfail/internal/match"
	"netfail/internal/stats"
	"netfail/internal/trace"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Title", "A", "LongHeader", "C")
	tbl.AddRow("x", "1", "z")
	tbl.AddRow("longer-cell", "2", "w")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "Title" {
		t.Errorf("title = %q", lines[0])
	}
	// Column B must start at the same offset in all content lines.
	idx := strings.Index(lines[1], "LongHeader")
	if strings.Index(lines[3], "1") != idx || strings.Index(lines[4], "2") != idx {
		t.Errorf("columns misaligned:\n%s", buf.String())
	}
}

func TestTableDropsExtraCells(t *testing.T) {
	tbl := NewTable("", "A")
	tbl.AddRow("x", "overflow")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "overflow") {
		t.Error("extra cell rendered")
	}
}

func TestNum(t *testing.T) {
	cases := map[int]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		11095550: "11,095,550",
		-1234:    "-1,234",
	}
	for n, want := range cases {
		if got := Num(n); got != want {
			t.Errorf("Num(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(0.823) != "82%" {
		t.Errorf("Pct = %q", Pct(0.823))
	}
}

func TestRenderTablesContainPaperValues(t *testing.T) {
	var buf bytes.Buffer
	t2 := core.Table2{ISISDownVsIS: 0.8, ISISDownVsIP: 0.3}
	if err := RenderTable2(&buf, t2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"82%", "25%", "IS-IS Down", "physical media Up"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 render missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	t4 := core.Table4{ISISFailures: 100, SyslogFailures: 110, ISISDowntime: time.Hour}
	if err := RenderTable4(&buf, t4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "11,213") {
		t.Errorf("Table 4 render missing paper count:\n%s", buf.String())
	}

	buf.Reset()
	t6 := core.Table6{LostDown: 3, SpuriousUp: 2}
	if err := RenderTable6(&buf, t6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Spurious Retransmission") {
		t.Errorf("Table 6 render:\n%s", buf.String())
	}
}

func TestRenderTable5HandlesEmptyCells(t *testing.T) {
	var buf bytes.Buffer
	t5 := core.Table5{
		Core: map[string]core.MetricSummaries{},
		CPE:  map[string]core.MetricSummaries{},
	}
	if err := RenderTable5(&buf, t5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "KS tests") {
		t.Error("missing KS line")
	}
}

func TestRenderKneeAndPolicies(t *testing.T) {
	var buf bytes.Buffer
	pts := []match.WindowPoint{
		{Window: time.Second, MatchedDowntimeFraction: 0.4, MatchedFailureFraction: 0.3},
		{Window: 10 * time.Second, MatchedDowntimeFraction: 0.7, MatchedFailureFraction: 0.7},
	}
	if err := RenderKnee(&buf, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10s") || !strings.Contains(buf.String(), "70%") {
		t.Errorf("knee render:\n%s", buf.String())
	}
	buf.Reset()
	rows := []core.DowntimePolicy{
		{Policy: trace.HoldPrevious, SyslogDowntime: 100 * time.Hour, AbsError: time.Hour},
	}
	if err := RenderPolicies(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hold-previous") {
		t.Errorf("policies render:\n%s", buf.String())
	}
}

func TestRenderFigure1Grid(t *testing.T) {
	mk := func(label string, xs []float64) core.CDF {
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = float64(i+1) / float64(len(xs))
		}
		return core.CDF{Label: label, X: xs, Y: ys}
	}
	fig := core.Figure1{
		FailureDuration: [2]core.CDF{mk("syslog", []float64{1, 2, 5}), mk("isis", []float64{2, 3})},
		LinkDowntime:    [2]core.CDF{mk("syslog", []float64{1}), mk("isis", []float64{1})},
		TimeBetween:     [2]core.CDF{mk("syslog", []float64{0.5}), mk("isis", []float64{0.7})},
	}
	var buf bytes.Buffer
	if err := RenderFigure1(&buf, fig); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 1a") || !strings.Contains(out, "Figure 1c") {
		t.Errorf("missing sections:\n%s", out)
	}
	// Merged grid of 1a: x values 1,2,3,5 each with two columns.
	if !strings.Contains(out, "1\t0.3333\t0.0000") {
		t.Errorf("unexpected grid:\n%s", out)
	}
}

func TestMergeGridDownsamples(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	got := mergeGrid(xs, nil, 100)
	if len(got) != 100 {
		t.Errorf("len = %d, want 100", len(got))
	}
	if got[0] != 0 || got[99] != 999 {
		t.Errorf("endpoints = %v, %v", got[0], got[99])
	}
}

func TestSummaryUnused(t *testing.T) {
	// Guard: stats.Summary zero value renders as zeros without panic.
	var s stats.Summary
	if s.Median != 0 {
		t.Fatal("unexpected")
	}
}

func TestMarkdownSmoke(t *testing.T) {
	// Render against zero-valued analysis tables via a synthetic
	// Analysis would require a full pipeline; the markdown renderer
	// is covered end to end by the CLI and the golden docs. Here we
	// check only the verdict helpers' banding.
	cases := []struct {
		m, p float64
		want string
	}{
		{0.82, 0.82, "ok"},
		{0.60, 0.82, "partial"},
		{0.10, 0.82, "off"},
	}
	for _, c := range cases {
		if got := fracVerdict(c.m, c.p); got != c.want {
			t.Errorf("fracVerdict(%v, %v) = %q, want %q", c.m, c.p, got, c.want)
		}
	}
	if countVerdict(100, 100) != "ok" || countVerdict(100, 250) != "partial" || countVerdict(100, 10000) != "off" {
		t.Error("countVerdict bands wrong")
	}
	if countVerdict(0, 0) != "ok" || countVerdict(5, 0) != "off" {
		t.Error("countVerdict zero handling wrong")
	}
	if boolVerdict(true) != "ok" || boolVerdict(false) != "off" {
		t.Error("boolVerdict wrong")
	}
}
