package report

import (
	"bytes"
	"io"

	"netfail/internal/core"
	"netfail/internal/pool"
)

// FullReport renders every table and figure of the paper's evaluation
// section — Tables 1–7, the false-positive and ambiguity-policy
// breakdowns, the window-size sweep, and Figure 1 — in the canonical
// order. The sections are independent reductions over the same
// Analysis, so each one renders into its own buffer across a bounded
// worker pool of the given size (<= 0 means GOMAXPROCS, 1 the
// sequential reference path); the buffers are then written in fixed
// order, making the output byte-identical for every worker count.
func FullReport(w io.Writer, a *core.Analysis, configFiles, lspUpdates, parallelism int) error {
	sections := []func(io.Writer) error{
		func(w io.Writer) error { return RenderTable1(w, a.Table1(configFiles, lspUpdates)) },
		func(w io.Writer) error { return RenderTable2(w, a.Table2()) },
		func(w io.Writer) error { return RenderTable3(w, a.Table3()) },
		func(w io.Writer) error { return RenderTable4(w, a.Table4()) },
		func(w io.Writer) error { return RenderFalsePositives(w, a.FalsePositives()) },
		func(w io.Writer) error { return RenderTable5(w, a.Table5()) },
		func(w io.Writer) error { return RenderTable6(w, a.Table6()) },
		func(w io.Writer) error { return RenderPolicies(w, a.PolicyAblation()) },
		func(w io.Writer) error { return RenderTable7(w, a.Table7()) },
		func(w io.Writer) error { return RenderKnee(w, a.WindowKnee(nil)) },
		func(w io.Writer) error { return RenderFigure1(w, a.Figure1()) },
	}
	workers := pool.Resolve(parallelism)
	bufs := make([]bytes.Buffer, len(sections))
	errs := make([]error, len(sections))
	pool.ForEach(len(sections), workers, func(i int) {
		errs[i] = sections[i](&bufs[i])
	})
	for i := range sections {
		if errs[i] != nil {
			return errs[i]
		}
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}
