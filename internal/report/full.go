package report

import (
	"bytes"
	"context"
	"io"

	"netfail/internal/core"
	"netfail/internal/obs"
	"netfail/internal/pool"
)

// FullReport renders every table and figure of the paper's evaluation
// section — Tables 1–7, the false-positive and ambiguity-policy
// breakdowns, the window-size sweep, and Figure 1 — in the canonical
// order. The sections are independent reductions over the same
// Analysis, so each one renders into its own buffer across a bounded
// worker pool of the given size (<= 0 means GOMAXPROCS, 1 the
// sequential reference path); the buffers are then written in fixed
// order, making the output byte-identical for every worker count.
// Cancellation stops dispatching sections and returns ctx's error;
// an attached tracer records one "report/<section>" span per section.
func FullReport(ctx context.Context, w io.Writer, a *core.Analysis, configFiles, lspUpdates, parallelism int) error {
	sections := []struct {
		name   string
		render func(io.Writer) error
	}{
		{"table1", func(w io.Writer) error { return RenderTable1(w, a.Table1(configFiles, lspUpdates)) }},
		{"table2", func(w io.Writer) error { return RenderTable2(w, a.Table2()) }},
		{"table3", func(w io.Writer) error { return RenderTable3(w, a.Table3()) }},
		{"table4", func(w io.Writer) error { return RenderTable4(w, a.Table4()) }},
		{"false-positives", func(w io.Writer) error { return RenderFalsePositives(w, a.FalsePositives()) }},
		{"table5", func(w io.Writer) error { return RenderTable5(w, a.Table5()) }},
		{"table6", func(w io.Writer) error { return RenderTable6(w, a.Table6()) }},
		{"policies", func(w io.Writer) error { return RenderPolicies(w, a.PolicyAblation()) }},
		{"table7", func(w io.Writer) error { return RenderTable7(w, a.Table7()) }},
		{"knee", func(w io.Writer) error { return RenderKnee(w, a.WindowKnee(nil)) }},
		{"figure1", func(w io.Writer) error { return RenderFigure1(w, a.Figure1()) }},
	}
	ctx, done := obs.Stage(ctx, "report")
	defer done()
	workers := pool.Resolve(parallelism)
	bufs := make([]bytes.Buffer, len(sections))
	errs := make([]error, len(sections))
	if err := pool.ForEachCtx(ctx, len(sections), workers, func(sctx context.Context, i int) {
		_, span := obs.StartSpan(sctx, "report/"+sections[i].name)
		errs[i] = sections[i].render(&bufs[i])
		span.End()
	}); err != nil {
		return err
	}
	for i := range sections {
		if errs[i] != nil {
			return errs[i]
		}
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := w.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}
