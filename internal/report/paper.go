package report

import (
	"fmt"
	"io"
	"time"

	"netfail/internal/core"
	"netfail/internal/match"
)

// PaperValues holds the published numbers used for side-by-side
// comparison in rendered tables (Turner et al., IMC 2013).
var PaperValues = struct {
	Table2 [8]float64 // same order as the rendered rows
	Table3 struct {
		DownNone, DownOne, DownBoth float64
		UpNone, UpOne, UpBoth       float64
	}
	Table4 struct {
		ISIS, Syslog, Overlap                        int
		ISISDowntimeH, SyslogDowntimeH, OverlapDownH int
	}
	Table6 struct {
		LostDown, LostUp, SpurDown, SpurUp, UnkDown, UnkUp int
	}
	Table7 struct {
		ISISEvents, SyslogEvents, InterEvents int
		ISISSites, SyslogSites, InterSites    int
		ISISDays, SyslogDays, InterDays       float64
	}
}{
	Table2: [8]float64{0.82, 0.25, 0.85, 0.23, 0.31, 0.52, 0.34, 0.53},
}

func init() {
	PaperValues.Table3.DownNone, PaperValues.Table3.DownOne, PaperValues.Table3.DownBoth = 0.18, 0.39, 0.43
	PaperValues.Table3.UpNone, PaperValues.Table3.UpOne, PaperValues.Table3.UpBoth = 0.15, 0.48, 0.37
	PaperValues.Table4.ISIS, PaperValues.Table4.Syslog, PaperValues.Table4.Overlap = 11213, 11738, 9298
	PaperValues.Table4.ISISDowntimeH, PaperValues.Table4.SyslogDowntimeH, PaperValues.Table4.OverlapDownH = 3648, 2714, 2331
	PaperValues.Table6.LostDown, PaperValues.Table6.LostUp = 194, 174
	PaperValues.Table6.SpurDown, PaperValues.Table6.SpurUp = 240, 28
	PaperValues.Table6.UnkDown, PaperValues.Table6.UnkUp = 27, 0
	PaperValues.Table7.ISISEvents, PaperValues.Table7.SyslogEvents, PaperValues.Table7.InterEvents = 1401, 1060, 1002
	PaperValues.Table7.ISISSites, PaperValues.Table7.SyslogSites, PaperValues.Table7.InterSites = 74, 67, 66
	PaperValues.Table7.ISISDays, PaperValues.Table7.SyslogDays, PaperValues.Table7.InterDays = 26.3, 22.3, 19.8
}

// RenderTable1 prints the dataset summary.
func RenderTable1(w io.Writer, t1 core.Table1) error {
	t := NewTable("Table 1: Summary of data used in the study", "Parameter", "Value", "Paper")
	t.AddRow("Period", fmt.Sprintf("%s - %s",
		t1.Period.Start.Format("Jan 2, 2006"), t1.Period.End.Format("Jan 2, 2006")),
		"Oct 20, 2010 - Nov 11, 2011")
	t.AddRow("Routers", fmt.Sprintf("%d Core and %d CPE", t1.CoreRouters, t1.CPERouters), "60 Core and 175 CPE")
	t.AddRow("Router Config Files", Num(t1.ConfigFiles), "11,623")
	t.AddRow("IS-IS links", fmt.Sprintf("%d Core and %d CPE", t1.CoreLinks, t1.CPELinks), "84 Core and 215 CPE")
	t.AddRow("Syslog messages", Num(t1.SyslogMessages), "47,371")
	t.AddRow("IS-IS updates", Num(t1.ISISUpdates), "11,095,550")
	t.AddRow("Multi-link adjacency pairs", Num(t1.MultiLinkAdjacencyPairs), "26")
	t.AddRow("Links analyzed", Num(t1.AnalyzedLinks), "")
	return t.Render(w)
}

// RenderTable2 prints the reachability-field matching table.
func RenderTable2(w io.Writer, t2 core.Table2) error {
	t := NewTable("Table 2: % of state transitions matching syslog messages by IS or IP reachability",
		"Syslog Type", "IS reachability", "IP reachability", "Paper (IS/IP)")
	p := PaperValues.Table2
	t.AddRow("IS-IS Down", Pct(t2.ISISDownVsIS), Pct(t2.ISISDownVsIP), fmt.Sprintf("%s / %s", Pct(p[0]), Pct(p[1])))
	t.AddRow("IS-IS Up", Pct(t2.ISISUpVsIS), Pct(t2.ISISUpVsIP), fmt.Sprintf("%s / %s", Pct(p[2]), Pct(p[3])))
	t.AddRow("physical media Down", Pct(t2.PhysDownVsIS), Pct(t2.PhysDownVsIP), fmt.Sprintf("%s / %s", Pct(p[4]), Pct(p[5])))
	t.AddRow("physical media Up", Pct(t2.PhysUpVsIS), Pct(t2.PhysUpVsIP), fmt.Sprintf("%s / %s", Pct(p[6]), Pct(p[7])))
	return t.Render(w)
}

// RenderTable3 prints the None/One/Both accounting.
func RenderTable3(w io.Writer, t3 core.Table3) error {
	t := NewTable("Table 3: IS-IS state transitions by number of matching syslog messages",
		"IS-IS transition", "None", "One", "Both", "Paper (None/One/Both)")
	p := PaperValues.Table3
	row := func(name string, r core.Table3Row, pn, po, pb float64) {
		tot := r.Total()
		cell := func(n int) string {
			if tot == 0 {
				return "0"
			}
			return fmt.Sprintf("%s (%.0f%%)", Num(n), 100*float64(n)/float64(tot))
		}
		t.AddRow(name, cell(r.None), cell(r.One), cell(r.Both),
			fmt.Sprintf("%s/%s/%s", Pct(pn), Pct(po), Pct(pb)))
	}
	row("DOWN", t3.Down, p.DownNone, p.DownOne, p.DownBoth)
	row("UP", t3.Up, p.UpNone, p.UpOne, p.UpBoth)
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Unmatched transitions during flapping: DOWN %s (paper 67%%), UP %s (paper 61%%)\nSyslog transitions matched during flapping: %s (paper: under half)\n",
		Pct(t3.UnmatchedInFlapDown), Pct(t3.UnmatchedInFlapUp), Pct(t3.SyslogFlapMatchedFraction))
	return err
}

// RenderTable4 prints failure counts and downtime.
func RenderTable4(w io.Writer, t4 core.Table4) error {
	t := NewTable("Table 4: Failures and downtime after sanitization",
		"", "IS-IS", "Syslog", "Overlap", "Paper (IS-IS/Syslog/Overlap)")
	p := PaperValues.Table4
	t.AddRow("Failure Count", Num(t4.ISISFailures), Num(t4.SyslogFailures), Num(t4.OverlapFailures),
		fmt.Sprintf("%s / %s / %s", Num(p.ISIS), Num(p.Syslog), Num(p.Overlap)))
	t.AddRow("Downtime (Hours)", F0(t4.ISISDowntime.Hours()), F0(t4.SyslogDowntime.Hours()), F0(t4.OverlapDowntime.Hours()),
		fmt.Sprintf("%s / %s / %s", Num(p.ISISDowntimeH), Num(p.SyslogDowntimeH), Num(p.OverlapDownH)))
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Syslog false positives: %s (%s of syslog failures; paper ~21%%)\nLong-failure verification removed %s of spurious downtime across %d failures\n",
		Num(t4.FalsePositives), Pct(t4.FalsePositiveFraction),
		fmtHours(t4.SyslogSanitize.LongRemovedTime), t4.SyslogSanitize.LongRemoved)
	return err
}

// RenderFalsePositives prints the §4.3 false-positive breakdown.
func RenderFalsePositives(w io.Writer, b core.FalsePositiveBreakdown) error {
	t := NewTable("Syslog false positives (§4.3)", "Quantity", "Measured", "Paper")
	t.AddRow("Total false positives", Num(b.Total), "2,440")
	t.AddRow("Short (<= 10 s)", fmt.Sprintf("%s (%s)", Num(b.Short), Pct(b.ShortFraction())), "83%")
	t.AddRow("FP downtime in long remainder", Pct(b.LongDowntimeFraction()), "94%")
	t.AddRow("Long FPs during flapping", Num(b.LongInFlap), "all but 19 of 373")
	t.AddRow("Partial-overlap FP downtime", fmt.Sprintf("%.1f h", b.PartialOverlapDowntime.Hours()), "365.5 h of 383 h")
	t.AddRow("Pure FP downtime", fmt.Sprintf("%.1f h", b.PureDowntime.Hours()), "17.5 h")
	return t.Render(w)
}

// RenderTable5 prints the statistics table with the paper's values.
func RenderTable5(w io.Writer, t5 core.Table5) error {
	t := NewTable("Table 5: Statistics for syslog-inferred and IS-IS listener-reported failures",
		"Statistic", "Core Syslog", "Core IS-IS", "CPE Syslog", "CPE IS-IS", "Paper (same order)")
	type row struct {
		name  string
		pick  func(core.MetricSummaries) [3]float64
		paper string
	}
	rows := []row{
		{"Failures/link (med/avg/95)", func(m core.MetricSummaries) [3]float64 {
			return [3]float64{m.FailuresPerLink.Median, m.FailuresPerLink.Mean, m.FailuresPerLink.P95}
		}, "5.7/14.2/46 | 6.6/16.1/46 | 11.3/49/249 | 12.3/45/253"},
		{"Duration s (med/avg/95)", func(m core.MetricSummaries) [3]float64 {
			return [3]float64{m.Duration.Median, m.Duration.Mean, m.Duration.P95}
		}, "52/1078/6318 | 42/1527/6683 | 10/814/665 | 12/1140/825"},
		{"Between h (med/avg/95)", func(m core.MetricSummaries) [3]float64 {
			return [3]float64{m.TimeBetween.Median, m.TimeBetween.Mean, m.TimeBetween.P95}
		}, "0.2/343/2014 | 0.2/347/2147 | 0.01/116/673 | 0.03/136/845"},
		{"Downtime h/yr (med/avg/95)", func(m core.MetricSummaries) [3]float64 {
			return [3]float64{m.Downtime.Median, m.Downtime.Mean, m.Downtime.P95}
		}, "0.6/4/24 | 0.8/7/26 | 1.9/11/49 | 2.4/14/51"},
	}
	cells := []core.MetricSummaries{t5.Core["syslog"], t5.Core["isis"], t5.CPE["syslog"], t5.CPE["isis"]}
	for _, r := range rows {
		out := make([]string, 0, 6)
		out = append(out, r.name)
		for _, c := range cells {
			v := r.pick(c)
			out = append(out, fmt.Sprintf("%.1f/%.0f/%.0f", v[0], v[1], v[2]))
		}
		out = append(out, r.paper)
		t.AddRow(out...)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "Duration median 95%% bootstrap CI: Core syslog [%.0f, %.0f] / IS-IS [%.0f, %.0f] | CPE syslog [%.0f, %.0f] / IS-IS [%.0f, %.0f] (seconds)\n",
		t5.Core["syslog"].DurationMedianCI[0], t5.Core["syslog"].DurationMedianCI[1],
		t5.Core["isis"].DurationMedianCI[0], t5.Core["isis"].DurationMedianCI[1],
		t5.CPE["syslog"].DurationMedianCI[0], t5.CPE["syslog"].DurationMedianCI[1],
		t5.CPE["isis"].DurationMedianCI[0], t5.CPE["isis"].DurationMedianCI[1]); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "KS tests (pooled): failures/link D=%.3f p=%.3f (%s) | duration D=%.3f p=%.3f (%s) | downtime D=%.3f p=%.3f (%s)\n",
		t5.KSFailuresPerLink.D, t5.KSFailuresPerLink.PValue, verdict(t5.KSFailuresPerLink.Consistent(0.01)),
		t5.KSDuration.D, t5.KSDuration.PValue, verdict(t5.KSDuration.Consistent(0.01)),
		t5.KSDowntime.D, t5.KSDowntime.PValue, verdict(t5.KSDowntime.Consistent(0.01))); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "CvM corroboration: failures/link p=%.3f (%s) | duration p=%.3f (%s) | downtime p=%.3f (%s)\nPaper verdicts: failures/link and downtime consistent, duration NOT consistent\n",
		t5.CvMFailuresPerLink.PValue, verdict(t5.CvMFailuresPerLink.Consistent(0.01)),
		t5.CvMDuration.PValue, verdict(t5.CvMDuration.Consistent(0.01)),
		t5.CvMDowntime.PValue, verdict(t5.CvMDowntime.Consistent(0.01)))
	return err
}

func verdict(consistent bool) string {
	if consistent {
		return "consistent"
	}
	return "NOT consistent"
}

// RenderTable6 prints the ambiguous-state-change classification.
func RenderTable6(w io.Writer, t6 core.Table6) error {
	t := NewTable("Table 6: Ambiguous state changes by cause", "Cause", "Down", "Up", "Paper (Down/Up)")
	p := PaperValues.Table6
	t.AddRow("Lost Message", Num(t6.LostDown), Num(t6.LostUp), fmt.Sprintf("%d / %d", p.LostDown, p.LostUp))
	t.AddRow("Spurious Retransmission", Num(t6.SpuriousDown), Num(t6.SpuriousUp), fmt.Sprintf("%d / %d", p.SpurDown, p.SpurUp))
	t.AddRow("Unknown", Num(t6.UnknownDown), Num(t6.UnknownUp), fmt.Sprintf("%d / %d", p.UnkDown, p.UnkUp))
	t.AddRow("Total", Num(t6.TotalDown()), Num(t6.TotalUp()), "461 / 202")
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Ambiguous periods cover %s of the link-weighted measurement period (paper 7.8%%)\nSpurious Down messages reporting the same failure: %s (paper 99%%)\n",
		Pct(t6.AmbiguousFractionOfPeriod), Pct(t6.SpuriousSameFailureDown))
	return err
}

// RenderTable7 prints the isolation comparison.
func RenderTable7(w io.Writer, t7 core.Table7) error {
	t := NewTable("Table 7: Customer-isolating failures",
		"Data Source", "Isolating Events", "Sites Impacted", "Downtime (days)", "Paper")
	p := PaperValues.Table7
	t.AddRow("IS-IS", Num(t7.ISISEvents), Num(t7.ISISSites), F1(t7.ISISDowntime.Hours()/24),
		fmt.Sprintf("%d / %d / %.1f", p.ISISEvents, p.ISISSites, p.ISISDays))
	t.AddRow("Syslog", Num(t7.SyslogEvents), Num(t7.SyslogSites), F1(t7.SyslogDowntime.Hours()/24),
		fmt.Sprintf("%d / %d / %.1f", p.SyslogEvents, p.SyslogSites, p.SyslogDays))
	t.AddRow("Intersection", Num(t7.IntersectionEvents), Num(t7.IntersectionSites), F1(t7.IntersectionDowntime.Hours()/24),
		fmt.Sprintf("%d / %d / %.1f", p.InterEvents, p.InterSites, p.InterDays))
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "Syslog-only events: %d (%d with no IS-IS failure on the links, %d intersecting; paper: 58 = 12 + 46)\nIS-IS-only events: %d totaling %.1f days (%d partial syslog match, %d syslog saw failures, %d unrelated; paper: 399 = 99 partial + 82 single-message + 218 unrelated, 6.5 days)\n",
		t7.SyslogOnlyEvents, t7.SyslogOnlyNoISISFailure, t7.SyslogOnlyIntersecting,
		t7.ISISOnlyEvents, t7.ISISOnlyDowntime.Hours()/24,
		t7.ISISOnlyPartialMatch, t7.ISISOnlySyslogSawFailures, t7.ISISOnlyUnrelated)
	return err
}

// RenderFigure1 prints the three CPE CDFs as tab-separated series
// ready for plotting.
func RenderFigure1(w io.Writer, fig core.Figure1) error {
	sections := []struct {
		name string
		cdfs [2]core.CDF
		unit string
	}{
		{"Figure 1a: CDF of failure duration (CPE links)", fig.FailureDuration, "seconds"},
		{"Figure 1b: CDF of annualized link downtime (CPE links)", fig.LinkDowntime, "hours/year"},
		{"Figure 1c: CDF of time between failures (CPE links)", fig.TimeBetween, "hours"},
	}
	for _, s := range sections {
		if _, err := fmt.Fprintf(w, "# %s (x in %s)\n# x\tF_syslog\tF_isis\n", s.name, s.unit); err != nil {
			return err
		}
		if err := renderCDFPair(w, s.cdfs); err != nil {
			return err
		}
	}
	return nil
}

// renderCDFPair merges two CDFs onto a common grid of their x values,
// downsampled to at most 200 points per curve.
func renderCDFPair(w io.Writer, cdfs [2]core.CDF) error {
	xs := mergeGrid(cdfs[0].X, cdfs[1].X, 200)
	for _, x := range xs {
		y0 := cdfAt(cdfs[0], x)
		y1 := cdfAt(cdfs[1], x)
		if _, err := fmt.Fprintf(w, "%g\t%.4f\t%.4f\n", x, y0, y1); err != nil {
			return err
		}
	}
	return nil
}

func mergeGrid(a, b []float64, maxPoints int) []float64 {
	all := append(append([]float64(nil), a...), b...)
	if len(all) == 0 {
		return nil
	}
	// all is built from sorted inputs; sort the merge.
	for i := 1; i < len(all); i++ {
		for j := i; j > 0 && all[j] < all[j-1]; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	var dedup []float64
	for _, v := range all {
		if len(dedup) == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	if len(dedup) <= maxPoints {
		return dedup
	}
	out := make([]float64, 0, maxPoints)
	step := float64(len(dedup)-1) / float64(maxPoints-1)
	for i := 0; i < maxPoints; i++ {
		out = append(out, dedup[int(float64(i)*step)])
	}
	return out
}

func cdfAt(c core.CDF, x float64) float64 {
	y := 0.0
	for i, xv := range c.X {
		if xv > x {
			break
		}
		y = c.Y[i]
	}
	return y
}

// RenderKnee prints the window-size sweep behind the paper's choice
// of the ten-second matching window.
func RenderKnee(w io.Writer, pts []match.WindowPoint) error {
	t := NewTable("Window-size sweep (the 'knee at ten seconds' of §3.4)",
		"Window", "% downtime matched", "% failures matched")
	for _, p := range pts {
		t.AddRow(p.Window.String(), Pct(p.MatchedDowntimeFraction), Pct(p.MatchedFailureFraction))
	}
	return t.Render(w)
}

// RenderPolicies prints the ambiguity-policy ablation.
func RenderPolicies(w io.Writer, rows []core.DowntimePolicy) error {
	t := NewTable("Ambiguity-policy ablation (§4.3; paper recommends hold-previous)",
		"Policy", "Syslog downtime (h)", "|error| vs IS-IS (h)")
	for _, r := range rows {
		t.AddRow(r.Policy.String(), F0(r.SyslogDowntime.Hours()), F0(r.AbsError.Hours()))
	}
	return t.Render(w)
}

func fmtHours(d time.Duration) string {
	return fmt.Sprintf("%.0f h", d.Hours())
}
