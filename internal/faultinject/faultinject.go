// Package faultinject deterministically corrupts the on-disk capture
// formats (LSP log, transition log, failures JSONL, syslog archive) so
// degraded-input behaviour is testable bit-for-bit reproducibly.
//
// All capture formats are line-oriented, so the corruptor operates on
// lines: each record is independently corrupted with a configured
// probability, and the corruption mode is drawn from the same seeded
// stream. Identical (input, Plan) pairs therefore produce identical
// corrupted outputs — the repo's determinism invariant extended to its
// failure modes. The modes mirror what operational captures actually
// suffer: torn writes from a crashed collector, bit rot in hex
// payloads, mangled timestamps, interleaved garbage from a second
// writer, and a truncated final record.
package faultinject

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Mode is one corruption technique.
type Mode int

const (
	// BitFlip flips one bit of one byte in the record — inside an LSP
	// log line this usually lands in the hex payload, producing either
	// invalid hex (reader skips) or a valid-hex-but-corrupt PDU that
	// flows into the listener's decode-error accounting.
	BitFlip Mode = iota
	// MangleTimestamp overwrites the record's first digit run,
	// destroying whichever timestamp field the format carries.
	MangleTimestamp
	// GarbageLine interleaves a non-record line before this record,
	// as a second writer sharing the file descriptor would.
	GarbageLine
	// TornWrite truncates the record at a random interior byte: a
	// mid-file partial write flushed before the crash.
	TornWrite
	// TruncateFinal cuts the file's final record mid-way and drops
	// the trailing newline: the classic crash-stop capture tail.
	TruncateFinal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case BitFlip:
		return "bit-flip"
	case MangleTimestamp:
		return "mangle-timestamp"
	case GarbageLine:
		return "garbage-line"
	case TornWrite:
		return "torn-write"
	case TruncateFinal:
		return "truncate-final"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault records one injected corruption.
type Fault struct {
	// Line is the 1-based line number in the corrupted output where
	// the fault landed (for GarbageLine, the inserted line itself).
	Line int
	// Mode is the technique applied.
	Mode Mode
}

// Plan parameterizes one corruption pass.
type Plan struct {
	// Seed drives every random choice; identical seeds over identical
	// input produce byte-identical output.
	Seed int64
	// Rate is the per-record corruption probability (0 disables the
	// per-line modes).
	Rate float64
	// Modes restricts the techniques applied; nil means all of them.
	// TruncateFinal applies once, at the end, when selected.
	Modes []Mode
}

// perLineModes are the modes applied record-by-record at Plan.Rate.
var perLineModes = []Mode{BitFlip, MangleTimestamp, GarbageLine, TornWrite}

// Corrupt applies the plan to a line-oriented capture and returns the
// corrupted bytes plus the list of injected faults in output order.
// The input is not modified.
func Corrupt(data []byte, p Plan) ([]byte, []Fault) {
	rng := rand.New(rand.NewSource(p.Seed))
	inline, truncateFinal := selectedModes(p.Modes)

	lines := splitLines(data)
	var out bytes.Buffer
	out.Grow(len(data) + 256)
	var faults []Fault
	outLine := 0

	for _, line := range lines {
		if len(inline) > 0 && len(line) > 0 && rng.Float64() < p.Rate {
			mode := inline[rng.Intn(len(inline))]
			if mode == GarbageLine {
				outLine++
				faults = append(faults, Fault{Line: outLine, Mode: mode})
				fmt.Fprintf(&out, "!!garbage %08x interleaved!!\n", rng.Uint32())
				outLine++
				out.Write(line)
				out.WriteByte('\n')
				continue
			}
			outLine++
			faults = append(faults, Fault{Line: outLine, Mode: mode})
			out.Write(corruptLine(rng, line, mode))
			out.WriteByte('\n')
			continue
		}
		outLine++
		out.Write(line)
		out.WriteByte('\n')
	}

	result := out.Bytes()
	if truncateFinal && len(result) > 0 {
		// Locate the final record in the output (a per-line mode may
		// already have reshaped it) and cut it mid-way, dropping the
		// trailing newline with it.
		body := result[:len(result)-1]
		start := bytes.LastIndexByte(body, '\n') + 1
		if last := len(body) - start; last > 1 {
			cut := 1 + rng.Intn(last-1)
			result = body[:start+cut]
			faults = append(faults, Fault{Line: outLine, Mode: TruncateFinal})
		}
	}
	return result, faults
}

// selectedModes partitions the plan's modes into the per-line set and
// the final-truncation flag.
func selectedModes(modes []Mode) (inline []Mode, truncateFinal bool) {
	if modes == nil {
		return perLineModes, true
	}
	for _, m := range modes {
		if m == TruncateFinal {
			truncateFinal = true
			continue
		}
		inline = append(inline, m)
	}
	return inline, truncateFinal
}

// corruptLine applies one per-line mode, returning a new slice.
func corruptLine(rng *rand.Rand, line []byte, mode Mode) []byte {
	out := append([]byte(nil), line...)
	switch mode {
	case BitFlip:
		i := rng.Intn(len(out))
		out[i] ^= 1 << uint(rng.Intn(8))
		// A flip landing on a newline byte would silently split the
		// record in two and skew line accounting; nudge it off.
		if out[i] == '\n' || out[i] == '\r' {
			out[i] ^= 0x01
		}
	case MangleTimestamp:
		mangleDigits(out)
	case TornWrite:
		if len(out) > 1 {
			out = out[:1+rng.Intn(len(out)-1)]
		}
	}
	return out
}

// mangleDigits overwrites the first run of digits (up to four bytes)
// with non-numeric garbage.
func mangleDigits(line []byte) {
	for i := 0; i < len(line); i++ {
		if line[i] >= '0' && line[i] <= '9' {
			for j := i; j < len(line) && j < i+4 && line[j] >= '0' && line[j] <= '9'; j++ {
				line[j] = 'Z'
			}
			return
		}
	}
}

// splitLines splits on '\n', tolerating a missing trailing newline;
// the final empty slice after a trailing newline is dropped so that
// Corrupt's re-join does not append a blank line.
func splitLines(data []byte) [][]byte {
	if len(data) == 0 {
		return nil
	}
	lines := bytes.Split(data, []byte{'\n'})
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	return lines
}
