package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestTornWriterCutsAtExactOffset(t *testing.T) {
	var buf bytes.Buffer
	w := TornWriter(&buf, 10)
	n, err := w.Write([]byte("0123456"))
	if n != 7 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("789abcdef"))
	if n != 3 || !errors.Is(err, ErrTorn) {
		t.Fatalf("tearing write: n=%d err=%v, want 3, ErrTorn", n, err)
	}
	if got := buf.String(); got != "0123456789" {
		t.Errorf("torn prefix = %q, want the first 10 bytes exactly", got)
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrTorn) {
		t.Errorf("post-tear write: n=%d err=%v, want 0, ErrTorn", n, err)
	}
}

func TestStallReaderBlocksUntilReleased(t *testing.T) {
	release := make(chan struct{})
	r := StallReader(strings.NewReader("hello world"), 5, release)

	// The pre-stall bytes must read through normally.
	head := make([]byte, 5)
	if _, err := io.ReadFull(r, head); err != nil || string(head) != "hello" {
		t.Fatalf("pre-stall read: %q, %v", head, err)
	}

	// The next read stalls; run it in a goroutine and observe that it
	// only completes once release is closed.
	got := make(chan string, 1)
	go func() {
		rest, err := io.ReadAll(r)
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		got <- string(rest)
	}()
	select {
	case s := <-got:
		t.Fatalf("read completed before release: %q", s)
	default:
	}
	close(release)
	if s := <-got; s != " world" {
		t.Errorf("post-release read = %q, want %q", s, " world")
	}
}

func TestFlapperIsSeeded(t *testing.T) {
	run := func(seed int64) []int {
		f := NewFlapper(seed, 0.3)
		var flapsAt []int
		for i := 1; i <= 100; i++ {
			if f.Tick() != nil {
				flapsAt = append(flapsAt, i)
			}
		}
		return flapsAt
	}
	a, b := run(7), run(7)
	if len(a) == 0 {
		t.Fatal("rate 0.3 over 100 ticks injected nothing")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different flap counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different flap ticks: %v vs %v", a, b)
		}
	}
	if c := run(8); len(c) == len(a) && func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds produced an identical flap storm")
	}
	f := NewFlapper(7, 0.3)
	for i := 0; i < 100; i++ {
		f.Tick()
	}
	if f.Flaps() != len(a) {
		t.Errorf("Flaps() = %d, want %d", f.Flaps(), len(a))
	}
}

func TestKillAfterIsSeededAndInterior(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := RuntimePlan{Seed: seed}
		k := p.KillAfter(100)
		if k < 1 || k >= 100 {
			t.Fatalf("seed %d: KillAfter(100) = %d, want interior [1,100)", seed, k)
		}
		if k2 := p.KillAfter(100); k2 != k {
			t.Fatalf("seed %d: KillAfter not deterministic: %d then %d", seed, k, k2)
		}
	}
	if k := (RuntimePlan{Seed: 1}).KillAfter(1); k != 1 {
		t.Errorf("KillAfter(1) = %d, want 1", k)
	}
}

func TestCorruptBytesIsDeterministic(t *testing.T) {
	data := bytes.Repeat([]byte{0xA5, 0x5A, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06}, 64)
	p := Plan{Seed: 42, Rate: 0.2}
	out1, faults1 := CorruptBytes(data, p)
	out2, faults2 := CorruptBytes(data, p)
	if !bytes.Equal(out1, out2) {
		t.Error("same (input, Plan) produced different corrupted bytes")
	}
	if len(faults1) != len(faults2) {
		t.Errorf("same (input, Plan) produced %d vs %d faults", len(faults1), len(faults2))
	}
	if len(faults1) == 0 {
		t.Error("rate 0.2 over 512 bytes injected nothing")
	}
	if bytes.Equal(out1, data) && len(faults1) > 0 {
		t.Error("faults reported but output identical to input")
	}
}

func TestCorruptBytesTruncateFinalCutsTheTail(t *testing.T) {
	data := bytes.Repeat([]byte{0xEE}, 256)
	out, faults := CorruptBytes(data, Plan{Seed: 3, Modes: []Mode{TruncateFinal}})
	if len(out) >= len(data) {
		t.Fatalf("output %d bytes, want a truncation below %d", len(out), len(data))
	}
	if len(out) < len(data)-65 {
		t.Errorf("cut at %d, want inside the final 64-byte window", len(out))
	}
	if len(faults) != 1 || faults[0].Mode != TruncateFinal || faults[0].Offset != len(out) {
		t.Errorf("faults = %+v, want one TruncateFinal at offset %d", faults, len(out))
	}
}

func TestCorruptBytesTornWriteTruncatesInterior(t *testing.T) {
	data := bytes.Repeat([]byte{0xCC}, 256)
	// Rate*8 is the application probability for TornWrite; rate 0.5
	// makes it fire for most seeds — find one deterministically.
	for seed := int64(0); seed < 20; seed++ {
		out, faults := CorruptBytes(data, Plan{Seed: seed, Rate: 0.5, Modes: []Mode{TornWrite}})
		if len(faults) == 1 {
			if faults[0].Mode != TornWrite {
				t.Fatalf("fault mode = %v", faults[0].Mode)
			}
			if len(out) != faults[0].Offset || len(out) >= len(data) {
				t.Fatalf("cut %d bytes with fault offset %d", len(out), faults[0].Offset)
			}
			return
		}
	}
	t.Fatal("TornWrite never fired across 20 seeds at rate 0.5")
}
