package faultinject

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// sampleCapture builds a line-oriented capture resembling the LSP log
// format: "<unix_ms> <hex>".
func sampleCapture(lines int) []byte {
	var b bytes.Buffer
	for i := 0; i < lines; i++ {
		fmt.Fprintf(&b, "%d 83%02x00aa55\n", 1_300_000_000_000+int64(i)*1000, i)
	}
	return b.Bytes()
}

func TestCorruptDeterministic(t *testing.T) {
	in := sampleCapture(200)
	a, fa := Corrupt(in, Plan{Seed: 42, Rate: 0.05})
	b, fb := Corrupt(in, Plan{Seed: 42, Rate: 0.05})
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corrupted output")
	}
	if len(fa) != len(fb) {
		t.Fatalf("fault lists differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, fa[i], fb[i])
		}
	}
	c, _ := Corrupt(in, Plan{Seed: 43, Rate: 0.05})
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical corrupted output")
	}
}

func TestCorruptLeavesInputIntact(t *testing.T) {
	in := sampleCapture(50)
	orig := append([]byte(nil), in...)
	Corrupt(in, Plan{Seed: 1, Rate: 1})
	if !bytes.Equal(in, orig) {
		t.Error("Corrupt modified its input")
	}
}

func TestCorruptRateZeroOnlyTruncatesFinal(t *testing.T) {
	in := sampleCapture(30)
	out, faults := Corrupt(in, Plan{Seed: 7, Rate: 0})
	if len(faults) != 1 || faults[0].Mode != TruncateFinal {
		t.Fatalf("faults = %+v, want exactly one TruncateFinal", faults)
	}
	if !bytes.HasPrefix(in, out) {
		t.Error("rate-0 corruption is not a prefix of the input")
	}
	if out[len(out)-1] == '\n' {
		t.Error("truncated capture still ends in a newline")
	}
}

func TestCorruptModesRestrictable(t *testing.T) {
	in := sampleCapture(300)
	out, faults := Corrupt(in, Plan{Seed: 5, Rate: 0.2, Modes: []Mode{GarbageLine}})
	if len(faults) == 0 {
		t.Fatal("no faults injected at rate 0.2 over 300 lines")
	}
	for _, f := range faults {
		if f.Mode != GarbageLine {
			t.Fatalf("unexpected mode %v", f.Mode)
		}
	}
	// GarbageLine only inserts: every original line must survive.
	lines := strings.Split(strings.TrimSuffix(string(out), "\n"), "\n")
	if want := 300 + len(faults); len(lines) != want {
		t.Errorf("got %d lines, want %d", len(lines), want)
	}
}

func TestCorruptFaultLinesPointAtCorruptedOutput(t *testing.T) {
	in := sampleCapture(100)
	out, faults := Corrupt(in, Plan{Seed: 11, Rate: 0.1})
	lines := strings.Split(string(out), "\n")
	orig := strings.Split(string(in), "\n")
	for _, f := range faults {
		if f.Line < 1 || f.Line > len(lines) {
			t.Fatalf("fault line %d out of range (%d lines)", f.Line, len(lines))
		}
		got := lines[f.Line-1]
		// Every per-line fault must have actually changed something
		// at its recorded position relative to the clean capture.
		if f.Mode != TruncateFinal && f.Line-1 < len(orig) && got == orig[f.Line-1] {
			// A GarbageLine entry is the inserted line itself, which
			// by construction differs from any record; the remaining
			// modes rewrite the record in place.
			t.Errorf("fault %+v: output line unchanged: %q", f, got)
		}
	}
}

func TestCorruptEmptyInput(t *testing.T) {
	out, faults := Corrupt(nil, Plan{Seed: 1, Rate: 1})
	if len(out) != 0 || len(faults) != 0 {
		t.Errorf("corrupting nothing produced %q, %v", out, faults)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		BitFlip:         "bit-flip",
		MangleTimestamp: "mangle-timestamp",
		GarbageLine:     "garbage-line",
		TornWrite:       "torn-write",
		TruncateFinal:   "truncate-final",
		Mode(99):        "Mode(99)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}
