// Runtime faults: the corruptor in faultinject.go damages captures at
// rest; the helpers here damage a *running* daemon deterministically.
// They are the chaos vocabulary the serving path (internal/serve,
// cmd/netfail-serve) is tested against: a reader that stalls
// mid-record, a checkpoint write torn partway through, a source that
// flaps in storms, and a seeded choice of where to hard-kill the
// process mid-ingest. Everything is driven by explicit seeds or
// explicit release signals, so a chaos run replays bit-for-bit.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
)

// RuntimePlan seeds the runtime chaos choices the way Plan seeds the
// capture corruptor: identical seeds make identical choices.
type RuntimePlan struct {
	// Seed drives every choice the plan makes.
	Seed int64
}

// KillAfter picks the durable-record count after which the chaos
// harness hard-kills (SIGKILL) the daemon: an interior point of the
// ingest, never before the first record and never after the last.
func (p RuntimePlan) KillAfter(total int) int {
	if total <= 2 {
		return 1
	}
	rng := rand.New(rand.NewSource(p.Seed))
	return 1 + rng.Intn(total-1)
}

// ErrTorn is the error a TornWriter returns once its budget is spent,
// leaving the bytes written so far behind as a torn prefix.
var ErrTorn = errors.New("faultinject: torn write")

// TornWriter wraps w to pass through at most n bytes and then fail
// every subsequent write with ErrTorn — a checkpoint write torn
// mid-stream by a crash or a full disk. The prefix actually written
// is exactly n bytes, so the tear lands at a byte-precise, replayable
// offset.
func TornWriter(w io.Writer, n int) io.Writer {
	return &tornWriter{w: w, left: n}
}

type tornWriter struct {
	w    io.Writer
	left int
}

func (t *tornWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, ErrTorn
	}
	if len(p) <= t.left {
		n, err := t.w.Write(p)
		t.left -= n
		return n, err
	}
	n, err := t.w.Write(p[:t.left])
	t.left -= n
	if err != nil {
		return n, err
	}
	return n, ErrTorn
}

// StallReader wraps r to block at byte offset stallAt until release
// is closed — the stalled-reader fault: a source that stops mid-record
// without erroring, the shape that hangs a daemon with no deadline
// discipline. After release it reads through transparently.
func StallReader(r io.Reader, stallAt int, release <-chan struct{}) io.Reader {
	return &stallReader{r: r, left: stallAt, release: release}
}

type stallReader struct {
	r       io.Reader
	left    int // bytes until the stall; <0 once released
	release <-chan struct{}
}

func (s *stallReader) Read(p []byte) (int, error) {
	if s.left >= 0 {
		if s.left == 0 {
			<-s.release
			s.left = -1
		} else {
			if len(p) > s.left {
				p = p[:s.left]
			}
			n, err := s.r.Read(p)
			s.left -= n
			return n, err
		}
	}
	return s.r.Read(p)
}

// A Flapper injects failures into a source's record loop at a seeded
// rate — the flap-storm fault that drives a supervisor's
// degraded/down state machine and its restart backoff. Each Tick is
// one record boundary; a non-nil result is the injected failure the
// source must surface.
type Flapper struct {
	rng   *rand.Rand
	rate  float64
	ticks int
	flaps int
}

// NewFlapper seeds a flapper that fails roughly rate of its ticks.
func NewFlapper(seed int64, rate float64) *Flapper {
	return &Flapper{rng: rand.New(rand.NewSource(seed)), rate: rate}
}

// Tick advances one record boundary, returning the injected failure
// or nil.
func (f *Flapper) Tick() error {
	f.ticks++
	if f.rng.Float64() < f.rate {
		f.flaps++
		return fmt.Errorf("faultinject: injected flap %d at tick %d", f.flaps, f.ticks)
	}
	return nil
}

// Flaps returns how many failures have been injected so far.
func (f *Flapper) Flaps() int { return f.flaps }

// ByteFault records one corruption at a byte offset of a binary
// stream (the binary analogue of Fault, which is line-oriented).
type ByteFault struct {
	// Offset is the 0-based byte offset in the corrupted output where
	// the fault landed (for truncations, the cut point).
	Offset int
	// Mode is the technique applied.
	Mode Mode
}

// CorruptBytes applies the plan to a binary stream — the checkpoint
// snapshot and WAL formats, which are framed rather than
// line-oriented. The plan's modes map onto bytes:
//
//   - BitFlip flips one seeded bit per 64-byte window at Rate;
//   - GarbageLine splices a short run of seeded garbage bytes;
//   - TornWrite truncates at a seeded interior offset;
//   - TruncateFinal cuts inside the final 64-byte window — the
//     crash-stop tail.
//
// MangleTimestamp has no binary meaning and is ignored. The input is
// not modified; identical (input, Plan) pairs produce identical
// output.
func CorruptBytes(data []byte, p Plan) ([]byte, []ByteFault) {
	rng := rand.New(rand.NewSource(p.Seed))
	inline, truncateFinal := selectedModes(p.Modes)
	out := append([]byte(nil), data...)
	var faults []ByteFault

	const window = 64
	for _, mode := range inline {
		switch mode {
		case BitFlip:
			for w := 0; w < len(out); w += window {
				if rng.Float64() >= p.Rate {
					continue
				}
				end := w + window
				if end > len(out) {
					end = len(out)
				}
				i := w + rng.Intn(end-w)
				out[i] ^= 1 << uint(rng.Intn(8))
				faults = append(faults, ByteFault{Offset: i, Mode: BitFlip})
			}
		case GarbageLine:
			if len(out) > 0 && rng.Float64() < p.Rate*8 {
				at := rng.Intn(len(out))
				garbage := make([]byte, 8+rng.Intn(24))
				for i := range garbage {
					garbage[i] = byte(rng.Intn(256))
				}
				out = append(out[:at], append(garbage, out[at:]...)...)
				faults = append(faults, ByteFault{Offset: at, Mode: GarbageLine})
			}
		case TornWrite:
			if len(out) > 1 && rng.Float64() < p.Rate*8 {
				cut := 1 + rng.Intn(len(out)-1)
				out = out[:cut]
				faults = append(faults, ByteFault{Offset: cut, Mode: TornWrite})
			}
		}
	}
	if truncateFinal && len(out) > 1 {
		tail := window
		if tail >= len(out) {
			tail = len(out) - 1
		}
		cut := len(out) - 1 - rng.Intn(tail)
		out = out[:cut]
		faults = append(faults, ByteFault{Offset: cut, Mode: TruncateFinal})
	}
	return out, faults
}
