// Package listener implements the passive IS-IS listener (the role
// PyRT played in the paper, §3.2): it consumes the LSP capture,
// maintains each router's advertised adjacency and IP-reachability
// sets, and emits link state transitions when successive LSPs from a
// router differ. System IDs are resolved onto the common link
// namespace via the mined configuration topology, and the dynamic
// hostname TLV builds the OSI-ID-to-hostname map.
//
// Two transition streams are produced, one per TLV: Extended IS
// Reachability (the field the paper ultimately uses) and Extended IP
// Reachability (kept for the Table 2 comparison). A link's
// IS-reachability state is the conjunction of the two directions'
// advertisements; multi-link adjacencies cannot be differentiated
// without RFC 5305 link IDs and are skipped, as §3.4 requires.
package listener

import (
	"fmt"
	"time"

	"netfail/internal/isis"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Listener reconstructs link state from a stream of LSPs.
type Listener struct {
	net *topo.Network
	db  *isis.Database

	// Per-fragment advertised content (ISO 10589 §7.3.7: a
	// router's advertisement set is the union over its fragments)
	// and the per-originator aggregate the diffing reads.
	fragAdv map[isis.LSPID]map[string]int
	adv     map[topo.SystemID]map[string]int
	heard   map[topo.SystemID]bool

	// Derived per-link state.
	adjUp map[topo.LinkID]bool
	ipUp  map[topo.LinkID]bool
	// multiCount tracks advertised-entry counts for multi-link
	// adjacencies, only to account for skipped changes.
	multiCount map[topo.AdjacencyKey]int

	hostnames map[topo.SystemID]string

	isTransitions []trace.Transition
	ipTransitions []trace.Transition

	// Diagnostics.
	lspCount       int
	decodeErrors   int
	staleLSPs      int
	unknownOrig    int
	otherPDUs      int
	multiLinkSkips int
}

// New creates a listener resolving against the given (typically
// mined) topology.
func New(net *topo.Network) *Listener {
	return &Listener{
		net:        net,
		db:         isis.NewDatabase(),
		fragAdv:    make(map[isis.LSPID]map[string]int),
		adv:        make(map[topo.SystemID]map[string]int),
		heard:      make(map[topo.SystemID]bool),
		adjUp:      make(map[topo.LinkID]bool),
		ipUp:       make(map[topo.LinkID]bool),
		multiCount: make(map[topo.AdjacencyKey]int),
		hostnames:  make(map[topo.SystemID]string),
	}
}

// Process ingests one captured PDU (wire bytes) received at the
// given time. Non-LSP PDUs (hellos, CSNPs, PSNPs — all present on a
// live circuit) are counted and skipped; decode failures are counted
// and returned; stale LSPs (not newer than the database copy) are
// counted and ignored.
func (l *Listener) Process(at time.Time, data []byte) error {
	if typ, err := isis.PeekType(data); err == nil && typ != isis.TypeLSPL2 {
		l.otherPDUs++
		return nil
	}
	var lsp isis.LSP
	if err := lsp.DecodeFromBytes(data); err != nil {
		l.decodeErrors++
		return fmt.Errorf("listener: %w", err)
	}
	l.lspCount++
	if !l.db.Install(&lsp, at) {
		l.staleLSPs++
		return nil
	}
	orig := lsp.ID.System
	if lsp.Hostname != "" {
		l.hostnames[orig] = lsp.Hostname
	}
	router, known := l.net.RouterByID(orig)
	if !known {
		l.unknownOrig++
		return nil
	}

	// This fragment's advertised content: neighbor keys and prefix
	// keys share one namespace (dotted system IDs cannot collide
	// with dotted-quad prefixes).
	newFrag := make(map[string]int, len(lsp.Neighbors)+len(lsp.Prefixes))
	for _, n := range lsp.Neighbors {
		newFrag[n.Key()]++
	}
	for pfx := range lsp.PrefixKeys() {
		newFrag[pfx]++
	}

	// Snapshot the originator's aggregate, then apply the fragment
	// delta: union semantics across fragments.
	agg := l.adv[orig]
	if agg == nil {
		agg = make(map[string]int)
		l.adv[orig] = agg
	}
	prev := make(map[string]int, len(agg))
	for k, v := range agg {
		prev[k] = v
	}
	for k, v := range l.fragAdv[lsp.ID] {
		agg[k] -= v
		if agg[k] <= 0 {
			delete(agg, k)
		}
	}
	for k, v := range newFrag {
		agg[k] += v
	}
	l.fragAdv[lsp.ID] = newFrag
	first := !l.heard[orig]
	l.heard[orig] = true

	for _, ifc := range router.Interfaces {
		link, ok := l.net.LinkByID(ifc.Link)
		if !ok {
			continue
		}
		if first {
			l.baselineLink(link)
		} else {
			l.diffLink(at, router.Name, link, prev, agg)
		}
	}
	return nil
}

// baselineLink establishes initial state for a link once both ends
// have been heard: up if either end currently advertises it.
func (l *Listener) baselineLink(link *topo.Link) {
	ra := l.net.Routers[link.A.Host]
	rb := l.net.Routers[link.B.Host]
	if ra == nil || rb == nil || !l.heard[ra.SystemID] || !l.heard[rb.SystemID] {
		return
	}
	plainAdv := l.adv[ra.SystemID][neighborKey(rb.SystemID)] > 0 ||
		l.adv[rb.SystemID][neighborKey(ra.SystemID)] > 0
	idAdv := l.adv[ra.SystemID][linkIDKey(rb.SystemID, link.Subnet)] > 0 ||
		l.adv[rb.SystemID][linkIDKey(ra.SystemID, link.Subnet)] > 0
	switch {
	case !l.net.IsMultiLink(link.ID):
		l.adjUp[link.ID] = plainAdv || idAdv
	case idAdv:
		// RFC 5307 link identifiers give even parallel links
		// per-link baseline state.
		l.adjUp[link.ID] = true
	default:
		l.multiCount[link.Adjacency] = l.adv[ra.SystemID][neighborKey(rb.SystemID)] +
			l.adv[rb.SystemID][neighborKey(ra.SystemID)]
	}
	pfx := prefixKey(link.Subnet)
	l.ipUp[link.ID] = l.adv[ra.SystemID][pfx] > 0 || l.adv[rb.SystemID][pfx] > 0
}

// diffLink applies one originator's advertisement changes to a link,
// following the paper's rule (§3.4): a "down" transition occurs when
// a previously listed adjacency or IP space is no longer advertised,
// an "up" transition when it is re-advertised. The second endpoint's
// matching withdrawal or re-advertisement changes nothing because the
// link is already in that state.
func (l *Listener) diffLink(at time.Time, reporter string, link *topo.Link, prev, cur map[string]int) {
	ra := l.net.Routers[link.A.Host]
	rb := l.net.Routers[link.B.Host]
	if ra == nil || rb == nil || !l.heard[ra.SystemID] || !l.heard[rb.SystemID] {
		return
	}
	peer := ra
	if reporter == ra.Name {
		peer = rb
	}
	key := neighborKey(peer.SystemID)
	// RFC 5307 link identifiers, when advertised, name the circuit
	// and make parallel adjacencies attributable to physical links.
	extKey := linkIDKey(peer.SystemID, link.Subnet)

	switch {
	case prev[extKey] > 0 || cur[extKey] > 0:
		prevHas, newHas := prev[extKey] > 0, cur[extKey] > 0
		switch {
		case prevHas && !newHas:
			l.setState(at, reporter, link, l.adjUp, false, trace.KindISReach, &l.isTransitions)
		case !prevHas && newHas:
			l.setState(at, reporter, link, l.adjUp, true, trace.KindISReach, &l.isTransitions)
		}
	case l.net.IsMultiLink(link.ID):
		// Parallel links share one adjacency: without link-ID
		// sub-TLVs the change cannot be attributed to a physical
		// link (§3.4). Count and skip.
		if prev[key] != cur[key] {
			l.multiLinkSkips++
			l.multiCount[link.Adjacency] += cur[key] - prev[key]
		}
	default:
		prevHas, newHas := prev[key] > 0, cur[key] > 0
		switch {
		case prevHas && !newHas:
			l.setState(at, reporter, link, l.adjUp, false, trace.KindISReach, &l.isTransitions)
		case !prevHas && newHas:
			l.setState(at, reporter, link, l.adjUp, true, trace.KindISReach, &l.isTransitions)
		}
	}

	pfx := prefixKey(link.Subnet)
	prevHas, newHas := prev[pfx] > 0, cur[pfx] > 0
	switch {
	case prevHas && !newHas:
		l.setState(at, reporter, link, l.ipUp, false, trace.KindIPReach, &l.ipTransitions)
	case !prevHas && newHas:
		l.setState(at, reporter, link, l.ipUp, true, trace.KindIPReach, &l.ipTransitions)
	}
}

// setState moves a link's derived state, emitting a transition if it
// actually changed.
func (l *Listener) setState(at time.Time, reporter string, link *topo.Link, states map[topo.LinkID]bool, up bool, kind trace.Kind, out *[]trace.Transition) {
	if prev, seen := states[link.ID]; seen && prev == up {
		return
	}
	states[link.ID] = up
	dir := trace.Down
	if up {
		dir = trace.Up
	}
	*out = append(*out, trace.Transition{
		Time:     at,
		Link:     link.ID,
		Dir:      dir,
		Kind:     kind,
		Reporter: reporter,
	})
}

func neighborKey(id topo.SystemID) string {
	return fmt.Sprintf("%s.%02x", id, 0)
}

// linkIDKey matches isis.ISNeighbor.Key for entries carrying RFC 5307
// link identifiers (the simulator uses the link's /31 as circuit ID).
func linkIDKey(id topo.SystemID, circuit uint32) string {
	return fmt.Sprintf("%s.%02x#%08x", id, 0, circuit)
}

func prefixKey(subnet uint32) string {
	return fmt.Sprintf("%s/31", topo.FormatIPv4(subnet))
}

// Result is the listener's complete output.
type Result struct {
	// ISTransitions and IPTransitions are the two transition
	// streams, in arrival order.
	ISTransitions []trace.Transition
	IPTransitions []trace.Transition
	// Hostnames maps OSI system IDs to dynamic hostnames.
	Hostnames map[topo.SystemID]string
	// LSPCount is the number of LSPs successfully processed;
	// DecodeErrors, StaleLSPs, UnknownOriginators, OtherPDUs, and
	// MultiLinkSkips account for the rest.
	LSPCount           int
	DecodeErrors       int
	StaleLSPs          int
	UnknownOriginators int
	OtherPDUs          int
	MultiLinkSkips     int
}

// Results returns a snapshot of the listener's output. Every field is
// a defensive copy — the hostname map included, so mutating a result
// cannot corrupt the listener's OSI-ID resolution.
func (l *Listener) Results() *Result {
	hostnames := make(map[topo.SystemID]string, len(l.hostnames))
	for id, h := range l.hostnames {
		hostnames[id] = h
	}
	return &Result{
		ISTransitions:      append([]trace.Transition(nil), l.isTransitions...),
		IPTransitions:      append([]trace.Transition(nil), l.ipTransitions...),
		Hostnames:          hostnames,
		LSPCount:           l.lspCount,
		DecodeErrors:       l.decodeErrors,
		StaleLSPs:          l.staleLSPs,
		UnknownOriginators: l.unknownOrig,
		OtherPDUs:          l.otherPDUs,
		MultiLinkSkips:     l.multiLinkSkips,
	}
}

// Hostname resolves a system ID to the hostname learned from TLV 137.
func (l *Listener) Hostname(id topo.SystemID) (string, bool) {
	h, ok := l.hostnames[id]
	return h, ok
}

// Database exposes the listener's link-state database, e.g. to run
// SPF over the captured routing state.
func (l *Listener) Database() *isis.Database { return l.db }
