package listener

import (
	"testing"

	"netfail/internal/trace"
)

// TestLinkIDDifferentiatesParallelLinks verifies the RFC 5307
// extension: with link identifiers, the listener attributes a change
// on one of two parallel links to exactly that link — the capability
// whose absence forced the paper to discard multi-link adjacencies.
func TestLinkIDDifferentiatesParallelLinks(t *testing.T) {
	tb := newTestbed(t, true) // two parallel core-a <-> core-b links
	for _, d := range tb.devices {
		d.LinkIDCapable = true
	}
	tb.sync(t)

	link0 := tb.net.Links[0].ID // first parallel link
	link2 := tb.net.Links[2].ID // second parallel link
	if !tb.net.IsMultiLink(link0) || !tb.net.IsMultiLink(link2) {
		t.Fatal("setup: links should share a multi-link adjacency")
	}

	// Fail only the first parallel link.
	tb.devices["core-a"].SetAdjacency(link0, false)
	tb.flood(t, "core-a")

	res := tb.l.Results()
	if len(res.ISTransitions) != 1 {
		t.Fatalf("transitions = %+v, want exactly one", res.ISTransitions)
	}
	tr0 := res.ISTransitions[0]
	if tr0.Link != link0 || tr0.Dir != trace.Down {
		t.Errorf("transition = %+v, want Down on %s", tr0, link0)
	}
	if res.MultiLinkSkips != 0 {
		t.Errorf("skips = %d, want 0 with link IDs", res.MultiLinkSkips)
	}

	// Recovery on the same link.
	tb.devices["core-a"].SetAdjacency(link0, true)
	tb.flood(t, "core-a")
	res = tb.l.Results()
	if len(res.ISTransitions) != 2 || res.ISTransitions[1].Dir != trace.Up {
		t.Fatalf("transitions = %+v", res.ISTransitions)
	}

	// The second parallel link must still work independently.
	tb.devices["core-b"].SetAdjacency(link2, false)
	tb.flood(t, "core-b")
	res = tb.l.Results()
	if len(res.ISTransitions) != 3 || res.ISTransitions[2].Link != link2 {
		t.Fatalf("transitions = %+v", res.ISTransitions)
	}
}

// TestLinkIDSingleLinkStillWorks: the extension must not disturb
// ordinary single-link adjacencies.
func TestLinkIDSingleLinkStillWorks(t *testing.T) {
	tb := newTestbed(t, false)
	for _, d := range tb.devices {
		d.LinkIDCapable = true
	}
	tb.sync(t)
	link := tb.net.Links[1].ID // core-a <-> cpe-1
	tb.devices["core-a"].SetAdjacency(link, false)
	tb.flood(t, "core-a")
	res := tb.l.Results()
	if len(res.ISTransitions) != 1 || res.ISTransitions[0].Link != link {
		t.Fatalf("transitions = %+v", res.ISTransitions)
	}
}

// TestMixedCapabilityFallsBack: a link-ID-capable router paired with
// a legacy one still yields per-link transitions from the capable
// side's advertisements.
func TestMixedCapabilityFallsBack(t *testing.T) {
	tb := newTestbed(t, true)
	tb.devices["core-a"].LinkIDCapable = true // core-b stays legacy
	tb.sync(t)
	link0 := tb.net.Links[0].ID
	tb.devices["core-a"].SetAdjacency(link0, false)
	tb.flood(t, "core-a")
	res := tb.l.Results()
	if len(res.ISTransitions) != 1 || res.ISTransitions[0].Link != link0 {
		t.Fatalf("transitions = %+v", res.ISTransitions)
	}
}
