package listener

import (
	"testing"

	"netfail/internal/isis"
	"netfail/internal/trace"
)

// TestFragmentedLSPsUnioned verifies ISO 10589 §7.3.7 semantics: a
// router's advertisement set is the union over its fragments, so
// moving content between fragments or updating one fragment must not
// fabricate transitions, while a genuine withdrawal in any fragment
// must surface.
func TestFragmentedLSPsUnioned(t *testing.T) {
	tb := newTestbed(t, false)

	// Build core-a's full LSP, split into tiny fragments, and
	// deliver everything as the baseline.
	full := tb.devices["core-a"].OriginateLSP()
	frags := isis.SplitLSP(full, 91)
	if len(frags) < 2 {
		t.Fatalf("need multiple fragments, got %d", len(frags))
	}
	for _, f := range frags {
		wire, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		tb.now = tb.now.Add(100 * 1e6) // 100 ms
		if err := tb.l.Process(tb.now, wire); err != nil {
			t.Fatal(err)
		}
	}
	tb.flood(t, "core-b")
	tb.flood(t, "cpe-1")
	if got := len(tb.l.Results().ISTransitions); got != 0 {
		t.Fatalf("baseline produced %d transitions", got)
	}

	// Refresh one fragment with identical content: nothing happens.
	refresh := *frags[0]
	refresh.Sequence++
	wire, err := refresh.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.l.Process(tb.now.Add(1e9), wire); err != nil {
		t.Fatal(err)
	}
	if got := len(tb.l.Results().ISTransitions); got != 0 {
		t.Fatalf("no-op fragment refresh produced %d transitions", got)
	}

	// Withdraw the core-b adjacency from whichever fragment carries
	// it: a Down must surface on exactly that link.
	linkAB := tb.net.Links[0].ID
	tb.devices["core-a"].SetAdjacency(linkAB, false)
	full2 := tb.devices["core-a"].OriginateLSP()
	full2.Sequence = refresh.Sequence + 1
	for _, f := range isis.SplitLSP(full2, 91) {
		f.Sequence = full2.Sequence
		w, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		tb.now = tb.now.Add(2e9)
		if err := tb.l.Process(tb.now, w); err != nil {
			t.Fatal(err)
		}
	}
	res := tb.l.Results()
	downs := 0
	for _, tr0 := range res.ISTransitions {
		if tr0.Dir == trace.Down {
			downs++
			if tr0.Link != linkAB {
				t.Errorf("down on wrong link: %+v", tr0)
			}
		} else {
			t.Errorf("unexpected up: %+v", tr0)
		}
	}
	if downs != 1 {
		t.Errorf("downs = %d, want 1 (got %+v)", downs, res.ISTransitions)
	}
}
