package listener

import (
	"testing"
	"time"

	"netfail/internal/device"
	"netfail/internal/isis"
	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// testbed builds a 3-router network with devices and a listener fed
// by direct LSP delivery.
type testbed struct {
	net     *topo.Network
	devices map[string]*device.Router
	l       *Listener
	now     time.Time
}

func newTestbed(t *testing.T, parallel bool) *testbed {
	t.Helper()
	n := topo.NewNetwork()
	for i, name := range []string{"core-a", "core-b", "cpe-1"} {
		class := topo.Core
		if name == "cpe-1" {
			class = topo.CPE
		}
		if err := n.AddRouter(&topo.Router{
			Name: name, Class: class,
			SystemID: topo.SystemIDFromIndex(i + 1),
			Loopback: 10<<24 | uint32(i+1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	link := func(a, b topo.Endpoint, subnet uint32) {
		if _, err := n.AddLink(a, b, subnet, 10); err != nil {
			t.Fatal(err)
		}
	}
	link(topo.Endpoint{Host: "core-a", Port: "Te0"}, topo.Endpoint{Host: "core-b", Port: "Te0"}, 0)
	link(topo.Endpoint{Host: "core-a", Port: "Te1"}, topo.Endpoint{Host: "cpe-1", Port: "Gi0"}, 2)
	if parallel {
		link(topo.Endpoint{Host: "core-a", Port: "Te2"}, topo.Endpoint{Host: "core-b", Port: "Te2"}, 4)
	}
	tb := &testbed{
		net:     n,
		devices: make(map[string]*device.Router),
		l:       New(n),
		now:     time.Date(2011, time.January, 1, 0, 0, 0, 0, time.UTC),
	}
	for name, r := range n.Routers {
		tb.devices[name] = device.New(n, r, syslog.DialectIOSXR)
	}
	return tb
}

// flood originates and delivers one device's LSP.
func (tb *testbed) flood(t *testing.T, name string) {
	t.Helper()
	wire, err := tb.devices[name].OriginateLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	tb.now = tb.now.Add(100 * time.Millisecond)
	if err := tb.l.Process(tb.now, wire); err != nil {
		t.Fatal(err)
	}
}

// sync floods every device (deterministic order).
func (tb *testbed) sync(t *testing.T) {
	for _, name := range tb.net.RouterNames {
		tb.flood(t, name)
	}
}

func TestBaselineProducesNoTransitions(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	res := tb.l.Results()
	if len(res.ISTransitions) != 0 || len(res.IPTransitions) != 0 {
		t.Errorf("baseline transitions: IS=%d IP=%d", len(res.ISTransitions), len(res.IPTransitions))
	}
	if res.LSPCount != 3 {
		t.Errorf("LSP count = %d", res.LSPCount)
	}
}

func TestAdjacencyWithdrawalEmitsOneDown(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	link := tb.net.Links[0].ID // core-a <-> core-b

	// Both endpoints withdraw; listener must coalesce to ONE Down at
	// the first withdrawal.
	tb.devices["core-a"].SetAdjacency(link, false)
	tb.flood(t, "core-a")
	firstSeen := tb.now
	tb.devices["core-b"].SetAdjacency(link, false)
	tb.flood(t, "core-b")

	res := tb.l.Results()
	if len(res.ISTransitions) != 1 {
		t.Fatalf("IS transitions = %+v", res.ISTransitions)
	}
	tr0 := res.ISTransitions[0]
	if tr0.Dir != trace.Down || tr0.Link != link || !tr0.Time.Equal(firstSeen) {
		t.Errorf("transition = %+v", tr0)
	}
	if tr0.Kind != trace.KindISReach {
		t.Errorf("kind = %v", tr0.Kind)
	}

	// Recovery: Up at the FIRST re-advertisement (§3.4: an "up"
	// transition occurs when the adjacency is re-advertised); the
	// second endpoint's re-advertisement changes nothing.
	tb.devices["core-a"].SetAdjacency(link, true)
	tb.flood(t, "core-a")
	upSeen := tb.now
	res = tb.l.Results()
	if len(res.ISTransitions) != 2 || res.ISTransitions[1].Dir != trace.Up {
		t.Fatalf("transitions = %+v", res.ISTransitions)
	}
	if !res.ISTransitions[1].Time.Equal(upSeen) {
		t.Errorf("Up time = %v, want %v", res.ISTransitions[1].Time, upSeen)
	}
	tb.devices["core-b"].SetAdjacency(link, true)
	tb.flood(t, "core-b")
	if got := len(tb.l.Results().ISTransitions); got != 2 {
		t.Fatalf("second re-advertisement emitted a transition: %d", got)
	}
}

func TestIPReachabilityIndependentOfAdjacency(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	link := tb.net.Links[1].ID // core-a <-> cpe-1

	// Protocol-only failure: adjacency down, interface (prefix) up.
	tb.devices["core-a"].SetAdjacency(link, false)
	tb.devices["cpe-1"].SetAdjacency(link, false)
	tb.flood(t, "core-a")
	tb.flood(t, "cpe-1")
	res := tb.l.Results()
	if len(res.ISTransitions) != 1 {
		t.Fatalf("IS transitions = %d, want 1", len(res.ISTransitions))
	}
	if len(res.IPTransitions) != 0 {
		t.Errorf("IP transitions = %+v, want none (interface stayed up)", res.IPTransitions)
	}

	// Physical failure withdraws the prefix too.
	tb.devices["core-a"].SetPhysical(link, false)
	tb.flood(t, "core-a")
	res = tb.l.Results()
	if len(res.IPTransitions) != 1 || res.IPTransitions[0].Dir != trace.Down {
		t.Errorf("IP transitions = %+v", res.IPTransitions)
	}
}

func TestMultiLinkAdjacencySkipped(t *testing.T) {
	tb := newTestbed(t, true) // two parallel core-a<->core-b links
	tb.sync(t)
	link := tb.net.Links[0].ID
	if !tb.net.IsMultiLink(link) {
		t.Fatal("setup: link should be multi-link")
	}
	tb.devices["core-a"].SetAdjacency(link, false)
	tb.flood(t, "core-a")
	tb.devices["core-b"].SetAdjacency(link, false)
	tb.flood(t, "core-b")
	res := tb.l.Results()
	for _, tr := range res.ISTransitions {
		if tr.Link == link {
			t.Errorf("multi-link transition leaked: %+v", tr)
		}
	}
	if res.MultiLinkSkips == 0 {
		t.Error("skipped multi-link changes not counted")
	}
	// IP reachability still works for parallel links (unique /31s).
	tb.devices["core-a"].SetPhysical(link, false)
	tb.devices["core-b"].SetPhysical(link, false)
	tb.flood(t, "core-a")
	res = tb.l.Results()
	if len(res.IPTransitions) != 1 || res.IPTransitions[0].Link != link {
		t.Errorf("IP transitions = %+v", res.IPTransitions)
	}
}

func TestHostnameLearning(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	for name, r := range tb.net.Routers {
		if got, ok := tb.l.Hostname(r.SystemID); !ok || got != name {
			t.Errorf("Hostname(%v) = %q, %v", r.SystemID, got, ok)
		}
	}
}

func TestStaleLSPIgnored(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	link := tb.net.Links[0].ID
	d := tb.devices["core-a"]

	// Capture an old LSP, apply a change, deliver new then old.
	oldWire, err := d.OriginateLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	d.SetAdjacency(link, false)
	tb.flood(t, "core-a")
	before := len(tb.l.Results().ISTransitions)
	if err := tb.l.Process(tb.now.Add(time.Second), oldWire); err != nil {
		t.Fatal(err)
	}
	res := tb.l.Results()
	if res.StaleLSPs != 1 {
		t.Errorf("stale = %d, want 1", res.StaleLSPs)
	}
	if len(res.ISTransitions) != before {
		t.Error("stale LSP altered state")
	}
}

func TestDecodeErrorCounted(t *testing.T) {
	tb := newTestbed(t, false)
	if err := tb.l.Process(tb.now, []byte("garbage")); err == nil {
		t.Error("expected decode error")
	}
	if tb.l.Results().DecodeErrors != 1 {
		t.Errorf("decode errors = %d", tb.l.Results().DecodeErrors)
	}
}

func TestUnknownOriginatorCounted(t *testing.T) {
	tb := newTestbed(t, false)
	// An LSP from a system ID absent from the mined topology.
	foreign := topo.NewNetwork()
	if err := foreign.AddRouter(&topo.Router{Name: "ghost", SystemID: topo.SystemIDFromIndex(999)}); err != nil {
		t.Fatal(err)
	}
	d := device.New(foreign, foreign.Routers["ghost"], syslog.DialectIOS)
	wire, err := d.OriginateLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.l.Process(tb.now, wire); err != nil {
		t.Fatal(err)
	}
	if tb.l.Results().UnknownOriginators != 1 {
		t.Errorf("unknown originators = %d", tb.l.Results().UnknownOriginators)
	}
}

func TestRefreshWithoutChangeSilent(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	for i := 0; i < 5; i++ {
		tb.flood(t, "core-a") // periodic refresh, same content
	}
	res := tb.l.Results()
	if len(res.ISTransitions)+len(res.IPTransitions) != 0 {
		t.Error("refreshes produced transitions")
	}
}

func TestNonLSPPDUsSkipped(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	hello := &isis.Hello{CircuitType: 2, Source: topo.SystemIDFromIndex(1), HoldingTime: 30}
	wire, err := hello.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.l.Process(tb.now, wire); err != nil {
		t.Fatalf("hello should be skipped, not error: %v", err)
	}
	csnp := &isis.CSNP{Source: topo.SystemIDFromIndex(1)}
	cw, err := csnp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.l.Process(tb.now, cw); err != nil {
		t.Fatal(err)
	}
	res := tb.l.Results()
	if res.OtherPDUs != 2 {
		t.Errorf("other PDUs = %d, want 2", res.OtherPDUs)
	}
	if res.DecodeErrors != 0 {
		t.Errorf("decode errors = %d", res.DecodeErrors)
	}
}

func TestResultsHostnamesIsACopy(t *testing.T) {
	tb := newTestbed(t, false)
	tb.sync(t)
	res := tb.l.Results()
	if res.Hostnames[topo.SystemIDFromIndex(1)] != "core-a" {
		t.Fatalf("hostnames = %v", res.Hostnames)
	}
	// Mutating the returned map must not corrupt the listener's
	// internal hostname table.
	res.Hostnames[topo.SystemIDFromIndex(1)] = "mallory"
	delete(res.Hostnames, topo.SystemIDFromIndex(2))

	again := tb.l.Results()
	if got := again.Hostnames[topo.SystemIDFromIndex(1)]; got != "core-a" {
		t.Errorf("hostname after caller mutation = %q, want core-a", got)
	}
	if got := again.Hostnames[topo.SystemIDFromIndex(2)]; got != "core-b" {
		t.Errorf("hostname after caller delete = %q, want core-b", got)
	}
}
