// Package plot renders simple SVG line charts with optional
// logarithmic x axes — enough to draw the paper's Figure 1 CDFs
// without any dependency. Output is deterministic for a given input.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one curve.
type Series struct {
	Label string
	X, Y  []float64
	// Color is an SVG color; defaults are assigned per index.
	Color string
}

// Chart is one figure.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogX draws a log10 x axis (the natural scale for failure
	// durations spanning seconds to days).
	LogX   bool
	Series []Series
	// Width and Height default to 640x420.
	Width, Height int
}

var defaultColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd"}

const (
	marginLeft   = 60
	marginRight  = 20
	marginTop    = 36
	marginBottom = 46
)

// Render writes the chart as a standalone SVG document.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width == 0 {
		width = 640
	}
	if height == 0 {
		height = 420
	}
	plotW := float64(width - marginLeft - marginRight)
	plotH := float64(height - marginTop - marginBottom)

	xmin, xmax, ymin, ymax := c.bounds()
	xt := func(x float64) float64 {
		if c.LogX {
			x = math.Log10(x)
		}
		return marginLeft + plotW*(x-xmin)/(xmax-xmin)
	}
	yt := func(y float64) float64 {
		return marginTop + plotH*(1-(y-ymin)/(ymax-ymin))
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="20" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, height-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, height-marginBottom, width-marginRight, height-marginBottom)

	// Y ticks at 0, .25, .5, .75, 1 (scaled to range).
	for i := 0; i <= 4; i++ {
		y := ymin + (ymax-ymin)*float64(i)/4
		py := yt(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ccc"/>`+"\n",
			marginLeft, py, width-marginRight, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%.2g</text>`+"\n",
			marginLeft-6, py+4, y)
	}
	// X ticks: decades when log, 5 linear ticks otherwise.
	if c.LogX {
		for d := math.Ceil(xmin); d <= math.Floor(xmax); d++ {
			px := marginLeft + plotW*(d-xmin)/(xmax-xmin)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ccc"/>`+"\n",
				px, marginTop, px, height-marginBottom)
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
				px, height-marginBottom+16, decadeLabel(d))
		}
	} else {
		for i := 0; i <= 4; i++ {
			x := xmin + (xmax-xmin)*float64(i)/4
			px := marginLeft + plotW*float64(i)/4
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%.3g</text>`+"\n",
				px, height-marginBottom+16, x)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+int(plotW/2), height-10, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginTop+int(plotH/2), marginTop+int(plotH/2), escape(c.YLabel))

	// Curves as step functions (CDF semantics).
	for i, s := range c.Series {
		color := s.Color
		if color == "" {
			color = defaultColors[i%len(defaultColors)]
		}
		var path strings.Builder
		first := true
		prevY := 0.0
		for j := range s.X {
			x := s.X[j]
			if c.LogX && x <= 0 {
				continue
			}
			px, py := xt(x), yt(s.Y[j])
			if first {
				path.WriteString(fmt.Sprintf("M%.1f,%.1f", px, yt(prevY)))
				first = false
			} else {
				path.WriteString(fmt.Sprintf("L%.1f,%.1f", px, yt(prevY)))
			}
			path.WriteString(fmt.Sprintf("L%.1f,%.1f", px, py))
			prevY = s.Y[j]
		}
		if path.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", path.String(), color)
		// Legend entry.
		ly := marginTop + 14 + 18*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginRight-120, ly, width-marginRight-96, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			width-marginRight-90, ly+4, escape(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds computes axis ranges (log-space for x when LogX).
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, xmax = math.Inf(1), math.Inf(-1)
	ymin, ymax = 0, 1
	for _, s := range c.Series {
		for j, x := range s.X {
			if c.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log10(x)
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if s.Y[j] > ymax {
				ymax = s.Y[j]
			}
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax = 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	return xmin, xmax, ymin, ymax
}

func decadeLabel(d float64) string {
	v := math.Pow(10, d)
	if d >= 0 && d <= 6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("1e%.0f", d)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
