package plot

import (
	"bytes"
	"strings"
	"testing"
)

func sampleChart(logx bool) *Chart {
	return &Chart{
		Title:  "CDF of failure duration",
		XLabel: "seconds",
		YLabel: "P[X <= x]",
		LogX:   logx,
		Series: []Series{
			{Label: "syslog", X: []float64{1, 10, 100, 1000}, Y: []float64{0.3, 0.6, 0.9, 1}},
			{Label: "isis", X: []float64{2, 20, 200, 2000}, Y: []float64{0.25, 0.55, 0.85, 1}},
		},
	}
}

func TestRenderWellFormed(t *testing.T) {
	for _, logx := range []bool{false, true} {
		var buf bytes.Buffer
		if err := sampleChart(logx).Render(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
			t.Errorf("not an SVG document (logx=%v)", logx)
		}
		if strings.Count(out, "<path") != 2 {
			t.Errorf("paths = %d, want 2", strings.Count(out, "<path"))
		}
		for _, want := range []string{"syslog", "isis", "CDF of failure duration", "seconds"} {
			if !strings.Contains(out, want) {
				t.Errorf("missing %q", want)
			}
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleChart(true).Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleChart(true).Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("nondeterministic output")
	}
}

func TestRenderEmptySeries(t *testing.T) {
	c := &Chart{Title: "empty", Series: []Series{{Label: "none"}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Error("no document for empty chart")
	}
}

func TestLogXSkipsNonPositive(t *testing.T) {
	c := &Chart{
		LogX: true,
		Series: []Series{
			{Label: "s", X: []float64{0, -5, 1, 10}, Y: []float64{0.1, 0.2, 0.5, 1}},
		},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Error("non-finite coordinates leaked into SVG")
	}
}

func TestEscape(t *testing.T) {
	c := &Chart{Title: "a<b & c>d", Series: []Series{{Label: "x", X: []float64{1}, Y: []float64{1}}}}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a&lt;b &amp; c&gt;d") {
		t.Error("title not escaped")
	}
}
