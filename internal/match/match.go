// Package match implements the paper's matching methodology (§3.4):
// two state transitions match if they occur on the same link, in the
// same direction, within a ten-second window; two failures match if
// they are on the same link with both start and end times within the
// window. It also provides interval-intersection downtime (the
// "Overlap" column of Table 4) and the window-size sweep behind the
// paper's "knee at ten seconds" observation.
package match

import (
	"sort"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// DefaultWindow is the paper's matching window.
const DefaultWindow = 10 * time.Second

// TransitionIndex answers "is there a transition on this link, in
// this direction, within w of t" queries in O(log n).
type TransitionIndex struct {
	byKey map[key][]trace.Transition
}

type key struct {
	link topo.LinkID
	dir  trace.Direction
}

// NewTransitionIndex builds the index; input order is irrelevant.
// Per-key lists are sized exactly (one counting pass) and sorted
// stably so equal-time entries keep their input order.
func NewTransitionIndex(ts []trace.Transition) *TransitionIndex {
	counts := make(map[key]int)
	for _, t := range ts {
		counts[key{t.Link, t.Dir}]++
	}
	idx := &TransitionIndex{byKey: make(map[key][]trace.Transition, len(counts))}
	for _, t := range ts {
		k := key{t.Link, t.Dir}
		if idx.byKey[k] == nil {
			idx.byKey[k] = make([]trace.Transition, 0, counts[k])
		}
		idx.byKey[k] = append(idx.byKey[k], t)
	}
	for _, list := range idx.byKey {
		sort.SliceStable(list, func(i, j int) bool { return list[i].Time.Before(list[j].Time) })
	}
	return idx
}

// bounds returns the half-open index range [lo, hi) of entries on
// (link, dir) with |time − t| ≤ w, via two binary searches.
//
//netfail:hotpath
func (idx *TransitionIndex) bounds(link topo.LinkID, dir trace.Direction, t time.Time, w time.Duration) (list []trace.Transition, lo, hi int) {
	list = idx.byKey[key{link, dir}]
	from := t.Add(-w)
	lo = sort.Search(len(list), func(i int) bool { return !list[i].Time.Before(from) })
	hi = lo + sort.Search(len(list)-lo, func(i int) bool { return list[lo+i].Time.Sub(t) > w })
	return list, lo, hi
}

// Within returns the transitions on (link, dir) with |time − t| ≤ w.
// The result slice is allocated exactly once at its final size.
//
//netfail:hotpath
func (idx *TransitionIndex) Within(link topo.LinkID, dir trace.Direction, t time.Time, w time.Duration) []trace.Transition {
	list, lo, hi := idx.bounds(link, dir, t, w)
	if hi <= lo {
		return nil
	}
	out := make([]trace.Transition, hi-lo)
	copy(out, list[lo:hi])
	return out
}

// AnyWithin reports whether any transition on (link, dir) lies within
// w of t. It is Within without materializing the result slice — the
// allocation-free existence check the MatchedFraction hot loop needs.
//
//netfail:hotpath
func (idx *TransitionIndex) AnyWithin(link topo.LinkID, dir trace.Direction, t time.Time, w time.Duration) bool {
	list := idx.byKey[key{link, dir}]
	from := t.Add(-w)
	i := sort.Search(len(list), func(i int) bool { return !list[i].Time.Before(from) })
	return i < len(list) && list[i].Time.Sub(t) <= w
}

// Reporters returns the distinct Reporter values among matches.
func (idx *TransitionIndex) Reporters(link topo.LinkID, dir trace.Direction, t time.Time, w time.Duration) map[string]bool {
	list, lo, hi := idx.bounds(link, dir, t, w)
	set := make(map[string]bool, hi-lo)
	for i := lo; i < hi; i++ {
		set[list[i].Reporter] = true
	}
	return set
}

// ReporterCount returns the number of distinct Reporter values among
// matches without allocating: a link has two routers, so the distinct
// scan is a tiny quadratic over an already narrow window.
//
//netfail:hotpath
func (idx *TransitionIndex) ReporterCount(link topo.LinkID, dir trace.Direction, t time.Time, w time.Duration) int {
	list, lo, hi := idx.bounds(link, dir, t, w)
	n := 0
	for i := lo; i < hi; i++ {
		dup := false
		for j := lo; j < i; j++ {
			if list[j].Reporter == list[i].Reporter {
				dup = true
				break
			}
		}
		if !dup {
			n++
		}
	}
	return n
}

// MatchedFraction returns the fraction of src transitions that have
// at least one match in ref within the window.
func MatchedFraction(src, ref []trace.Transition, w time.Duration) float64 {
	if len(src) == 0 {
		return 0
	}
	idx := NewTransitionIndex(ref)
	matched := 0
	for _, t := range src {
		if idx.AnyWithin(t.Link, t.Dir, t.Time, w) {
			matched++
		}
	}
	return float64(matched) / float64(len(src))
}

// FailurePair records one matched failure pair by index.
type FailurePair struct {
	A, B int
}

// FailureMatch is the outcome of matching two failure lists.
type FailureMatch struct {
	// Pairs holds matched (A-index, B-index) pairs.
	Pairs []FailurePair
	// OnlyA and OnlyB are the unmatched indices.
	OnlyA, OnlyB []int
}

// Failures matches failure lists a and b: same link, start times
// within w, end times within w, one-to-one (greedy by start-time
// proximity within each link).
func Failures(a, b []trace.Failure, w time.Duration) FailureMatch {
	byLinkB := groupIndicesByLink(b)
	usedB := make(map[int]bool)
	var res FailureMatch
	order := startOrder(a)
	for _, ai := range order {
		fa := a[ai]
		cands := byLinkB[fa.Link]
		lo := fa.Start.Add(-w)
		j := sort.Search(len(cands), func(k int) bool { return !b[cands[k]].Start.Before(lo) })
		best := -1
		var bestDiff time.Duration
		for ; j < len(cands); j++ {
			bi := cands[j]
			fb := b[bi]
			if fb.Start.Sub(fa.Start) > w {
				break
			}
			if usedB[bi] {
				continue
			}
			endDiff := absDur(fb.End.Sub(fa.End))
			if endDiff > w {
				continue
			}
			diff := absDur(fb.Start.Sub(fa.Start)) + endDiff
			if best < 0 || diff < bestDiff {
				best, bestDiff = bi, diff
			}
		}
		if best >= 0 {
			usedB[best] = true
			res.Pairs = append(res.Pairs, FailurePair{A: ai, B: best})
		} else {
			res.OnlyA = append(res.OnlyA, ai)
		}
	}
	for i := range b {
		if !usedB[i] {
			res.OnlyB = append(res.OnlyB, i)
		}
	}
	sort.Ints(res.OnlyB)
	sort.Ints(res.OnlyA)
	sort.Slice(res.Pairs, func(i, j int) bool { return res.Pairs[i].A < res.Pairs[j].A })
	return res
}

// Intersects reports whether failure fa overlaps in time with any
// failure on the same link in the (sorted-per-link) index list.
func Intersects(fa trace.Failure, byLink map[topo.LinkID][]trace.Failure) bool {
	for _, fb := range byLink[fa.Link] {
		if fb.Start.After(fa.End) {
			break
		}
		if fa.Overlaps(fb.Start, fb.End) {
			return true
		}
	}
	return false
}

// GroupByLink builds a per-link failure index sorted (stably) by
// start time. Per-link lists are sized exactly via a counting pass.
func GroupByLink(fs []trace.Failure) map[topo.LinkID][]trace.Failure {
	counts := make(map[topo.LinkID]int)
	for _, f := range fs {
		counts[f.Link]++
	}
	byLink := make(map[topo.LinkID][]trace.Failure, len(counts))
	for _, f := range fs {
		if byLink[f.Link] == nil {
			byLink[f.Link] = make([]trace.Failure, 0, counts[f.Link])
		}
		byLink[f.Link] = append(byLink[f.Link], f)
	}
	for _, list := range byLink {
		sort.SliceStable(list, func(i, j int) bool { return list[i].Start.Before(list[j].Start) })
	}
	return byLink
}

// groupIndicesByLink is GroupByLink over indices into fs, sorted
// (stably) by start time within each link.
func groupIndicesByLink(fs []trace.Failure) map[topo.LinkID][]int {
	counts := make(map[topo.LinkID]int)
	for _, f := range fs {
		counts[f.Link]++
	}
	byLink := make(map[topo.LinkID][]int, len(counts))
	for i, f := range fs {
		if byLink[f.Link] == nil {
			byLink[f.Link] = make([]int, 0, counts[f.Link])
		}
		byLink[f.Link] = append(byLink[f.Link], i)
	}
	for _, list := range byLink {
		sort.SliceStable(list, func(x, y int) bool { return fs[list[x]].Start.Before(fs[list[y]].Start) })
	}
	return byLink
}

// startOrder returns the indices of fs sorted (stably) by start time:
// the greedy matching order.
func startOrder(fs []trace.Failure) []int {
	order := make([]int, len(fs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return fs[order[x]].Start.Before(fs[order[y]].Start) })
	return order
}

// IntersectionDowntime returns the total time during which both
// sources agree a link was down, summed over links: the Overlap cell
// of Table 4's downtime row.
func IntersectionDowntime(a, b []trace.Failure) time.Duration {
	byLinkB := GroupByLink(b)
	var total time.Duration
	for _, fa := range a {
		for _, fb := range byLinkB[fa.Link] {
			if fb.Start.After(fa.End) {
				break
			}
			lo := maxTime(fa.Start, fb.Start)
			hi := minTime(fa.End, fb.End)
			if hi.After(lo) {
				total += hi.Sub(lo)
			}
		}
	}
	return total
}

// WindowPoint is one sample of the window-size sweep.
type WindowPoint struct {
	Window time.Duration
	// MatchedDowntimeFraction is the share of source-A downtime in
	// failures matched at this window.
	MatchedDowntimeFraction float64
	// MatchedFailureFraction is the share of source-A failures
	// matched.
	MatchedFailureFraction float64
}

// WindowSweep evaluates failure matching over a range of window
// sizes: the analysis behind the paper's choice of ten seconds (the
// knee of this curve).
//
// The per-link candidate index is built once, for the largest window,
// and every window size is then evaluated incrementally over the
// precomputed candidate lists — O(windows × candidates) instead of
// re-running Failures (O(windows × n log n)) from scratch. Each
// point is exactly what Failures would report at that window: the
// candidate enumeration order, the end-time filter, and the greedy
// best-pair selection are identical.
func WindowSweep(a, b []trace.Failure, windows []time.Duration) []WindowPoint {
	if len(windows) == 0 {
		return nil
	}
	totalDowntime := trace.TotalDowntime(a)
	var maxW time.Duration
	for _, w := range windows {
		if w > maxW {
			maxW = w
		}
	}
	sweep := newFailureSweep(a, b, maxW)
	out := make([]WindowPoint, 0, len(windows))
	for _, w := range windows {
		pairs, matchedDown := sweep.evaluate(w)
		pt := WindowPoint{Window: w}
		if totalDowntime > 0 {
			pt.MatchedDowntimeFraction = float64(matchedDown) / float64(totalDowntime)
		}
		if len(a) > 0 {
			pt.MatchedFailureFraction = float64(pairs) / float64(len(a))
		}
		out = append(out, pt)
	}
	return out
}

// sweepCandidate is one (a, b) failure pair that can match at some
// window size ≤ the sweep's maximum: both the start and end time
// differences are within it.
type sweepCandidate struct {
	bi        int
	startDiff time.Duration // |b.Start − a.Start|
	endDiff   time.Duration // |b.End − a.End|
	diff      time.Duration // startDiff + endDiff, the greedy score
}

// failureSweep holds the candidate index a WindowSweep evaluates all
// its window sizes against.
type failureSweep struct {
	a []trace.Failure
	// order is the greedy matching order: a-indices by start time.
	order []int
	// cands[k] lists, for a-index order[k], the b-candidates in
	// b-start order — the enumeration order Failures uses.
	cands [][]sweepCandidate
	// usedB/pairedA are per-evaluation scratch, reset by epoch
	// stamping instead of reallocation.
	usedB []int
	epoch int
}

// newFailureSweep precomputes the candidate lists for the largest
// window of the sweep.
func newFailureSweep(a, b []trace.Failure, maxW time.Duration) *failureSweep {
	s := &failureSweep{
		a:     a,
		order: startOrder(a),
		cands: make([][]sweepCandidate, len(a)),
		usedB: make([]int, len(b)),
	}
	for i := range s.usedB {
		s.usedB[i] = -1
	}
	byLinkB := groupIndicesByLink(b)
	for k, ai := range s.order {
		fa := a[ai]
		cands := byLinkB[fa.Link]
		lo := fa.Start.Add(-maxW)
		j := sort.Search(len(cands), func(k int) bool { return !b[cands[k]].Start.Before(lo) })
		var list []sweepCandidate
		for ; j < len(cands); j++ {
			bi := cands[j]
			fb := b[bi]
			if fb.Start.Sub(fa.Start) > maxW {
				break
			}
			endDiff := absDur(fb.End.Sub(fa.End))
			if endDiff > maxW {
				continue
			}
			list = append(list, sweepCandidate{
				bi:        bi,
				startDiff: absDur(fb.Start.Sub(fa.Start)),
				endDiff:   endDiff,
				diff:      absDur(fb.Start.Sub(fa.Start)) + endDiff,
			})
		}
		s.cands[k] = list
	}
	return s
}

// evaluate runs the greedy one-to-one matching at window w over the
// precomputed candidates and returns the pair count and the summed
// duration of matched a-failures.
//
//netfail:hotpath
func (s *failureSweep) evaluate(w time.Duration) (pairs int, matchedDown time.Duration) {
	s.epoch++
	for k := range s.order {
		best := -1
		var bestDiff time.Duration
		for _, c := range s.cands[k] {
			if c.startDiff > w || c.endDiff > w || s.usedB[c.bi] == s.epoch {
				continue
			}
			if best < 0 || c.diff < bestDiff {
				best, bestDiff = c.bi, c.diff
			}
		}
		if best >= 0 {
			s.usedB[best] = s.epoch
			pairs++
			matchedDown += s.a[s.order[k]].Duration()
		}
	}
	return pairs, matchedDown
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
