// Package match implements the paper's matching methodology (§3.4):
// two state transitions match if they occur on the same link, in the
// same direction, within a ten-second window; two failures match if
// they are on the same link with both start and end times within the
// window. It also provides interval-intersection downtime (the
// "Overlap" column of Table 4) and the window-size sweep behind the
// paper's "knee at ten seconds" observation.
package match

import (
	"sort"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// DefaultWindow is the paper's matching window.
const DefaultWindow = 10 * time.Second

// TransitionIndex answers "is there a transition on this link, in
// this direction, within w of t" queries in O(log n).
type TransitionIndex struct {
	byKey map[key][]trace.Transition
}

type key struct {
	link topo.LinkID
	dir  trace.Direction
}

// NewTransitionIndex builds the index; input order is irrelevant.
func NewTransitionIndex(ts []trace.Transition) *TransitionIndex {
	idx := &TransitionIndex{byKey: make(map[key][]trace.Transition)}
	for _, t := range ts {
		k := key{t.Link, t.Dir}
		idx.byKey[k] = append(idx.byKey[k], t)
	}
	for _, list := range idx.byKey {
		sort.Slice(list, func(i, j int) bool { return list[i].Time.Before(list[j].Time) })
	}
	return idx
}

// Within returns the transitions on (link, dir) with |time − t| ≤ w.
func (idx *TransitionIndex) Within(link topo.LinkID, dir trace.Direction, t time.Time, w time.Duration) []trace.Transition {
	list := idx.byKey[key{link, dir}]
	lo := t.Add(-w)
	i := sort.Search(len(list), func(i int) bool { return !list[i].Time.Before(lo) })
	var out []trace.Transition
	for ; i < len(list); i++ {
		if list[i].Time.Sub(t) > w {
			break
		}
		out = append(out, list[i])
	}
	return out
}

// Reporters returns the distinct Reporter values among matches.
func (idx *TransitionIndex) Reporters(link topo.LinkID, dir trace.Direction, t time.Time, w time.Duration) map[string]bool {
	set := make(map[string]bool)
	for _, m := range idx.Within(link, dir, t, w) {
		set[m.Reporter] = true
	}
	return set
}

// MatchedFraction returns the fraction of src transitions that have
// at least one match in ref within the window.
func MatchedFraction(src, ref []trace.Transition, w time.Duration) float64 {
	if len(src) == 0 {
		return 0
	}
	idx := NewTransitionIndex(ref)
	matched := 0
	for _, t := range src {
		if len(idx.Within(t.Link, t.Dir, t.Time, w)) > 0 {
			matched++
		}
	}
	return float64(matched) / float64(len(src))
}

// FailurePair records one matched failure pair by index.
type FailurePair struct {
	A, B int
}

// FailureMatch is the outcome of matching two failure lists.
type FailureMatch struct {
	// Pairs holds matched (A-index, B-index) pairs.
	Pairs []FailurePair
	// OnlyA and OnlyB are the unmatched indices.
	OnlyA, OnlyB []int
}

// Failures matches failure lists a and b: same link, start times
// within w, end times within w, one-to-one (greedy by start-time
// proximity within each link).
func Failures(a, b []trace.Failure, w time.Duration) FailureMatch {
	byLinkB := make(map[topo.LinkID][]int)
	for i, f := range b {
		byLinkB[f.Link] = append(byLinkB[f.Link], i)
	}
	for _, list := range byLinkB {
		sort.Slice(list, func(x, y int) bool { return b[list[x]].Start.Before(b[list[y]].Start) })
	}
	usedB := make(map[int]bool)
	var res FailureMatch
	order := make([]int, len(a))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool { return a[order[x]].Start.Before(a[order[y]].Start) })
	for _, ai := range order {
		fa := a[ai]
		cands := byLinkB[fa.Link]
		lo := fa.Start.Add(-w)
		j := sort.Search(len(cands), func(k int) bool { return !b[cands[k]].Start.Before(lo) })
		best := -1
		var bestDiff time.Duration
		for ; j < len(cands); j++ {
			bi := cands[j]
			fb := b[bi]
			if fb.Start.Sub(fa.Start) > w {
				break
			}
			if usedB[bi] {
				continue
			}
			endDiff := absDur(fb.End.Sub(fa.End))
			if endDiff > w {
				continue
			}
			diff := absDur(fb.Start.Sub(fa.Start)) + endDiff
			if best < 0 || diff < bestDiff {
				best, bestDiff = bi, diff
			}
		}
		if best >= 0 {
			usedB[best] = true
			res.Pairs = append(res.Pairs, FailurePair{A: ai, B: best})
		} else {
			res.OnlyA = append(res.OnlyA, ai)
		}
	}
	for i := range b {
		if !usedB[i] {
			res.OnlyB = append(res.OnlyB, i)
		}
	}
	sort.Ints(res.OnlyB)
	sort.Ints(res.OnlyA)
	sort.Slice(res.Pairs, func(i, j int) bool { return res.Pairs[i].A < res.Pairs[j].A })
	return res
}

// Intersects reports whether failure fa overlaps in time with any
// failure on the same link in the (sorted-per-link) index list.
func Intersects(fa trace.Failure, byLink map[topo.LinkID][]trace.Failure) bool {
	for _, fb := range byLink[fa.Link] {
		if fb.Start.After(fa.End) {
			break
		}
		if fa.Overlaps(fb.Start, fb.End) {
			return true
		}
	}
	return false
}

// GroupByLink builds a per-link failure index sorted by start time.
func GroupByLink(fs []trace.Failure) map[topo.LinkID][]trace.Failure {
	byLink := make(map[topo.LinkID][]trace.Failure)
	for _, f := range fs {
		byLink[f.Link] = append(byLink[f.Link], f)
	}
	for _, list := range byLink {
		sort.Slice(list, func(i, j int) bool { return list[i].Start.Before(list[j].Start) })
	}
	return byLink
}

// IntersectionDowntime returns the total time during which both
// sources agree a link was down, summed over links: the Overlap cell
// of Table 4's downtime row.
func IntersectionDowntime(a, b []trace.Failure) time.Duration {
	byLinkB := GroupByLink(b)
	var total time.Duration
	for _, fa := range a {
		for _, fb := range byLinkB[fa.Link] {
			if fb.Start.After(fa.End) {
				break
			}
			lo := maxTime(fa.Start, fb.Start)
			hi := minTime(fa.End, fb.End)
			if hi.After(lo) {
				total += hi.Sub(lo)
			}
		}
	}
	return total
}

// WindowPoint is one sample of the window-size sweep.
type WindowPoint struct {
	Window time.Duration
	// MatchedDowntimeFraction is the share of source-A downtime in
	// failures matched at this window.
	MatchedDowntimeFraction float64
	// MatchedFailureFraction is the share of source-A failures
	// matched.
	MatchedFailureFraction float64
}

// WindowSweep evaluates failure matching over a range of window
// sizes: the analysis behind the paper's choice of ten seconds (the
// knee of this curve).
func WindowSweep(a, b []trace.Failure, windows []time.Duration) []WindowPoint {
	var out []WindowPoint
	totalDowntime := trace.TotalDowntime(a)
	for _, w := range windows {
		m := Failures(a, b, w)
		var matchedDown time.Duration
		for _, p := range m.Pairs {
			matchedDown += a[p.A].Duration()
		}
		pt := WindowPoint{Window: w}
		if totalDowntime > 0 {
			pt.MatchedDowntimeFraction = float64(matchedDown) / float64(totalDowntime)
		}
		if len(a) > 0 {
			pt.MatchedFailureFraction = float64(len(m.Pairs)) / float64(len(a))
		}
		out = append(out, pt)
	}
	return out
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
