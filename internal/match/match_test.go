package match

import (
	"testing"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

const linkA = topo.LinkID("a:p1|b:p1")
const linkB = topo.LinkID("a:p2|c:p1")

func at(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func tr(link topo.LinkID, sec int, dir trace.Direction, reporter string) trace.Transition {
	return trace.Transition{Time: at(sec), Link: link, Dir: dir, Reporter: reporter}
}

func fail(link topo.LinkID, start, end int) trace.Failure {
	return trace.Failure{Link: link, Start: at(start), End: at(end)}
}

func TestTransitionIndexWithin(t *testing.T) {
	idx := NewTransitionIndex([]trace.Transition{
		tr(linkA, 100, trace.Down, "a"),
		tr(linkA, 105, trace.Down, "b"),
		tr(linkA, 130, trace.Down, "a"),
		tr(linkA, 102, trace.Up, "a"),
		tr(linkB, 100, trace.Down, "c"),
	})
	got := idx.Within(linkA, trace.Down, at(103), DefaultWindow)
	if len(got) != 2 {
		t.Fatalf("matches = %d, want 2", len(got))
	}
	// Direction and link must discriminate.
	if len(idx.Within(linkA, trace.Up, at(130), DefaultWindow)) != 0 {
		t.Error("direction not respected")
	}
	if len(idx.Within(linkB, trace.Down, at(130), DefaultWindow)) != 0 {
		t.Error("link not respected")
	}
	// Window boundary is inclusive.
	if len(idx.Within(linkA, trace.Down, at(115), DefaultWindow)) != 1 {
		t.Error("inclusive boundary broken")
	}
}

func TestReporters(t *testing.T) {
	idx := NewTransitionIndex([]trace.Transition{
		tr(linkA, 100, trace.Down, "router-a"),
		tr(linkA, 104, trace.Down, "router-b"),
		tr(linkA, 106, trace.Down, "router-a"),
	})
	reps := idx.Reporters(linkA, trace.Down, at(102), DefaultWindow)
	if len(reps) != 2 || !reps["router-a"] || !reps["router-b"] {
		t.Errorf("reporters = %v", reps)
	}
}

func TestMatchedFraction(t *testing.T) {
	src := []trace.Transition{
		tr(linkA, 100, trace.Down, "x"),
		tr(linkA, 200, trace.Down, "x"),
		tr(linkA, 300, trace.Down, "x"),
		tr(linkA, 400, trace.Down, "x"),
	}
	ref := []trace.Transition{
		tr(linkA, 103, trace.Down, "y"),
		tr(linkA, 215, trace.Down, "y"), // 15 s off: no match
		tr(linkA, 300, trace.Up, "y"),   // wrong direction
	}
	if got := MatchedFraction(src, ref, DefaultWindow); got != 0.25 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
	if MatchedFraction(nil, ref, DefaultWindow) != 0 {
		t.Error("empty src should give 0")
	}
}

func TestFailuresExactMatch(t *testing.T) {
	a := []trace.Failure{fail(linkA, 100, 200), fail(linkA, 500, 600)}
	b := []trace.Failure{fail(linkA, 103, 195), fail(linkA, 900, 950)}
	m := Failures(a, b, DefaultWindow)
	if len(m.Pairs) != 1 || m.Pairs[0] != (FailurePair{A: 0, B: 0}) {
		t.Errorf("pairs = %+v", m.Pairs)
	}
	if len(m.OnlyA) != 1 || m.OnlyA[0] != 1 {
		t.Errorf("onlyA = %v", m.OnlyA)
	}
	if len(m.OnlyB) != 1 || m.OnlyB[0] != 1 {
		t.Errorf("onlyB = %v", m.OnlyB)
	}
}

func TestFailuresEndMustMatchToo(t *testing.T) {
	a := []trace.Failure{fail(linkA, 100, 200)}
	b := []trace.Failure{fail(linkA, 100, 290)} // start matches, end off by 90 s
	m := Failures(a, b, DefaultWindow)
	if len(m.Pairs) != 0 {
		t.Errorf("pairs = %+v, want none", m.Pairs)
	}
}

func TestFailuresOneToOne(t *testing.T) {
	// Two a-failures near one b-failure: only one may claim it.
	a := []trace.Failure{fail(linkA, 100, 200), fail(linkA, 105, 205)}
	b := []trace.Failure{fail(linkA, 102, 202)}
	m := Failures(a, b, DefaultWindow)
	if len(m.Pairs) != 1 {
		t.Fatalf("pairs = %+v", m.Pairs)
	}
	if len(m.OnlyA) != 1 {
		t.Errorf("onlyA = %v", m.OnlyA)
	}
}

func TestFailuresPicksNearest(t *testing.T) {
	a := []trace.Failure{fail(linkA, 100, 200)}
	b := []trace.Failure{fail(linkA, 92, 200), fail(linkA, 101, 201)}
	m := Failures(a, b, DefaultWindow)
	if len(m.Pairs) != 1 || m.Pairs[0].B != 1 {
		t.Errorf("pairs = %+v, want B=1 (nearest)", m.Pairs)
	}
}

func TestIntersectionDowntime(t *testing.T) {
	a := []trace.Failure{fail(linkA, 100, 200), fail(linkB, 0, 50)}
	b := []trace.Failure{fail(linkA, 150, 250), fail(linkB, 100, 150)}
	// linkA overlap [150,200] = 50 s; linkB overlap none.
	if got := IntersectionDowntime(a, b); got != 50*time.Second {
		t.Errorf("intersection = %v, want 50s", got)
	}
}

func TestIntersectionDowntimeMultipleOverlaps(t *testing.T) {
	a := []trace.Failure{fail(linkA, 0, 1000)}
	b := []trace.Failure{fail(linkA, 100, 200), fail(linkA, 300, 400)}
	if got := IntersectionDowntime(a, b); got != 200*time.Second {
		t.Errorf("intersection = %v, want 200s", got)
	}
}

func TestIntersects(t *testing.T) {
	byLink := GroupByLink([]trace.Failure{fail(linkA, 100, 200)})
	if !Intersects(fail(linkA, 150, 300), byLink) {
		t.Error("overlapping failure not detected")
	}
	if Intersects(fail(linkA, 300, 400), byLink) {
		t.Error("disjoint failure detected")
	}
	if Intersects(fail(linkB, 150, 300), byLink) {
		t.Error("wrong link detected")
	}
}

func TestWindowSweepMonotone(t *testing.T) {
	// Failures offset by varying amounts: larger windows match more.
	var a, b []trace.Failure
	for i := 0; i < 30; i++ {
		start := i * 1000
		a = append(a, fail(linkA, start, start+100))
		b = append(b, fail(linkA, start+i, start+100+i)) // offset grows with i
	}
	windows := []time.Duration{time.Second, 5 * time.Second, 15 * time.Second, 40 * time.Second}
	pts := WindowSweep(a, b, windows)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MatchedFailureFraction < pts[i-1].MatchedFailureFraction {
			t.Errorf("fraction not monotone: %+v", pts)
		}
	}
	if pts[3].MatchedFailureFraction <= pts[0].MatchedFailureFraction {
		t.Error("sweep shows no growth")
	}
}
