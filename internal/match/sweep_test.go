package match

// Equivalence tests for the incremental window sweep: every point the
// precomputed-candidate evaluation reports must be exactly what a
// naive per-window Failures run would report, and the allocation-free
// index queries (AnyWithin, ReporterCount) must agree with their
// materializing counterparts on the same data.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// sweepCorpus generates a deterministic failure corpus: list b is
// list a re-observed with per-failure jitter, dropped records, and
// spurious extras, over a handful of links — the shape the syslog/
// IS-IS comparison actually feeds WindowSweep. Equal start times and
// overlapping candidates occur by construction (integer-second
// jitter), which is exactly where a sloppy rewrite would diverge.
func sweepCorpus(seed int64, n int) (a, b []trace.Failure) {
	rng := rand.New(rand.NewSource(seed))
	base := time.Unix(1300000000, 0).UTC()
	links := make([]topo.LinkID, 8)
	for i := range links {
		links[i] = topo.LinkID(fmt.Sprintf("r%d:p1|r%d:p2", i, i+1))
	}
	cursor := base
	for i := 0; i < n; i++ {
		link := links[rng.Intn(len(links))]
		cursor = cursor.Add(time.Duration(rng.Intn(90)) * time.Second)
		dur := time.Duration(1+rng.Intn(300)) * time.Second
		fa := trace.Failure{Link: link, Start: cursor, End: cursor.Add(dur)}
		a = append(a, fa)
		switch rng.Intn(10) {
		case 0:
			// Dropped in b.
		case 1:
			// Spurious extra in b on top of the jittered copy.
			b = append(b, jitterFailure(rng, fa), trace.Failure{
				Link:  link,
				Start: cursor.Add(time.Duration(rng.Intn(600)) * time.Second),
				End:   cursor.Add(time.Duration(600+rng.Intn(600)) * time.Second),
			})
		default:
			b = append(b, jitterFailure(rng, fa))
		}
	}
	rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
	return a, b
}

func jitterFailure(rng *rand.Rand, f trace.Failure) trace.Failure {
	j := func() time.Duration { return time.Duration(rng.Intn(61)-30) * time.Second }
	g := trace.Failure{Link: f.Link, Start: f.Start.Add(j()), End: f.End.Add(j())}
	if !g.End.After(g.Start) {
		g.End = g.Start.Add(time.Second)
	}
	return g
}

// naiveWindowPoint is the pre-optimization reference: run the full
// greedy Failures match at this window and derive the fractions.
func naiveWindowPoint(a, b []trace.Failure, w time.Duration) WindowPoint {
	m := Failures(a, b, w)
	var matchedDown time.Duration
	for _, p := range m.Pairs {
		matchedDown += a[p.A].Duration()
	}
	pt := WindowPoint{Window: w}
	if total := trace.TotalDowntime(a); total > 0 {
		pt.MatchedDowntimeFraction = float64(matchedDown) / float64(total)
	}
	if len(a) > 0 {
		pt.MatchedFailureFraction = float64(len(m.Pairs)) / float64(len(a))
	}
	return pt
}

func TestWindowSweepMatchesNaiveReference(t *testing.T) {
	// 20 windows spanning sub-jitter to way-past-jitter, deliberately
	// unsorted to prove the sweep does not require ordered input.
	windows := []time.Duration{
		10 * time.Second, 1 * time.Second, 2 * time.Second, 5 * time.Second,
		15 * time.Second, 3 * time.Second, 20 * time.Second, 30 * time.Second,
		45 * time.Second, 60 * time.Second, 75 * time.Second, 90 * time.Second,
		120 * time.Second, 4 * time.Second, 8 * time.Second, 25 * time.Second,
		40 * time.Second, 100 * time.Second, 150 * time.Second, 7 * time.Second,
	}
	for _, seed := range []int64{1, 7, 42} {
		a, b := sweepCorpus(seed, 400)
		got := WindowSweep(a, b, windows)
		if len(got) != len(windows) {
			t.Fatalf("seed %d: %d points, want %d", seed, len(got), len(windows))
		}
		for i, w := range windows {
			want := naiveWindowPoint(a, b, w)
			if got[i] != want {
				t.Errorf("seed %d window %v: sweep %+v, naive %+v", seed, w, got[i], want)
			}
		}
	}
}

func TestWindowSweepEmpty(t *testing.T) {
	a, b := sweepCorpus(1, 50)
	if pts := WindowSweep(a, b, nil); pts != nil {
		t.Errorf("nil windows should yield nil, got %v", pts)
	}
	pts := WindowSweep(nil, b, []time.Duration{time.Second})
	if len(pts) != 1 || pts[0].MatchedFailureFraction != 0 || pts[0].MatchedDowntimeFraction != 0 {
		t.Errorf("empty a: %+v", pts)
	}
	pts = WindowSweep(a, nil, []time.Duration{time.Second})
	if len(pts) != 1 || pts[0].MatchedFailureFraction != 0 {
		t.Errorf("empty b: %+v", pts)
	}
}

// TestWindowSweepReusable pins the epoch-stamped scratch: evaluating
// the same window twice through one sweep must be idempotent.
func TestWindowSweepReusable(t *testing.T) {
	a, b := sweepCorpus(3, 200)
	w := 30 * time.Second
	pts := WindowSweep(a, b, []time.Duration{w, w, w})
	if pts[0] != pts[1] || pts[1] != pts[2] {
		t.Errorf("repeated window not idempotent: %+v", pts)
	}
}

// Randomized agreement between the allocation-free queries and their
// materializing counterparts.
func TestIndexQueryAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := time.Unix(1300000000, 0).UTC()
	links := []topo.LinkID{linkA, linkB}
	reporters := []string{"r-a", "r-b", "r-c"}
	var ts []trace.Transition
	for i := 0; i < 500; i++ {
		ts = append(ts, trace.Transition{
			Time:     base.Add(time.Duration(rng.Intn(3600)) * time.Second),
			Link:     links[rng.Intn(len(links))],
			Dir:      trace.Direction(rng.Intn(2)),
			Reporter: reporters[rng.Intn(len(reporters))],
		})
	}
	idx := NewTransitionIndex(ts)
	for i := 0; i < 1000; i++ {
		link := links[rng.Intn(len(links))]
		dir := trace.Direction(rng.Intn(2))
		at := base.Add(time.Duration(rng.Intn(3700)-50) * time.Second)
		w := time.Duration(rng.Intn(120)) * time.Second
		matches := idx.Within(link, dir, at, w)
		if got, want := idx.AnyWithin(link, dir, at, w), len(matches) > 0; got != want {
			t.Fatalf("AnyWithin(%v,%v,%v,%v) = %v, Within found %d", link, dir, at, w, got, len(matches))
		}
		if got, want := idx.ReporterCount(link, dir, at, w), len(idx.Reporters(link, dir, at, w)); got != want {
			t.Fatalf("ReporterCount = %d, Reporters map has %d", got, want)
		}
	}
}
