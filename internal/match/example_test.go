package match_test

import (
	"fmt"
	"time"

	"netfail/internal/match"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// ExampleFailures matches two failure traces with the paper's
// ten-second window on both start and end times.
func ExampleFailures() {
	link := topo.LinkID("cpe-001:Gi0|core-a:Te0")
	at := func(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }
	syslog := []trace.Failure{
		{Link: link, Start: at(100), End: at(200)},
		{Link: link, Start: at(900), End: at(901)}, // false positive
	}
	isis := []trace.Failure{
		{Link: link, Start: at(103), End: at(195)}, // matches the first
		{Link: link, Start: at(500), End: at(600)}, // missed by syslog
	}
	m := match.Failures(syslog, isis, match.DefaultWindow)
	fmt.Printf("matched pairs: %d\n", len(m.Pairs))
	fmt.Printf("syslog-only (false positives): %d\n", len(m.OnlyA))
	fmt.Printf("IS-IS-only (missed by syslog): %d\n", len(m.OnlyB))
	// Output:
	// matched pairs: 1
	// syslog-only (false positives): 1
	// IS-IS-only (missed by syslog): 1
}
