package syslog

import "time"

// This file is the allocation-free core of the parser: a tokenizer
// generic over []byte and string that scans one wire-format line and
// records where the fields live, without materializing any of them.
// Parse/ParseInto instantiate it over string (substrings are free);
// Tokenizer.ParseBytes instantiates it over []byte and materializes
// the three string fields through the intern tables, so a warm parse
// of a datagram performs zero allocations.
//
// The scan reproduces the retired strings-based parser — which leaned
// on time.Parse, strconv.Atoi, strconv.ParseUint, and
// strings.TrimSpace — bit for bit, quirks included: case-insensitive
// month names, the "_2" optional day padding, one-or-two-digit hours,
// a bare fractional-second tail after the seconds field, signed PRI
// and fractional digits where strconv/atoi accepted a sign, and
// Unicode white space in the service-stamp region. The differential
// fuzz test (FuzzParseMatchesReference) holds the two parsers equal
// over corrupted corpora, so every quirk here is load-bearing.

// text is the tokenizer's input constraint: one implementation scans
// both the archive reader's byte slices and API-level strings.
type text interface{ ~[]byte | ~string }

// tokens is one scanned line: the fixed-width fields decoded, the
// variable ones as [lo,hi) offsets into the input.
type tokens struct {
	facility Facility
	severity Severity
	stamp    time.Time
	seq      uint64

	hostLo, hostHi int
	mnemLo, mnemHi int
	textLo         int // text runs to the end of the line
}

// tokenize scans one wire-format line into tok. On error tok is
// partially written and must not be used.
//
//netfail:hotpath
func tokenize[T text](line T, ref time.Time, tok *tokens) error {
	// <PRI>
	if len(line) < 3 || line[0] != '<' {
		return errMissingPRI
	}
	end := -1
	for i := 1; i < len(line) && i <= 4; i++ {
		if line[i] == '>' {
			end = i
			break
		}
	}
	if end < 0 {
		return errBadPRI
	}
	pri, ok := parsePRI(line[1:end])
	if !ok || pri < 0 || pri > 191 {
		return errBadPRI
	}
	tok.facility = Facility(pri / 8)
	tok.severity = Severity(pri % 8)
	rest := line[end+1:]
	off := end + 1 // offset of rest within line

	// TIMESTAMP: fixed 15 chars "Mmm dd hh:mm:ss". The 16th byte is
	// skipped unvalidated, as the retired parser's rest[16:] did.
	if len(rest) < 16 {
		return errTruncatedHeader
	}
	stamp, ok := parseStamp(rest[:15], false)
	if !ok {
		return errBadTimestamp
	}
	tok.stamp = resolveYear(stamp, ref)
	rest = rest[16:]
	off += 16

	// HOSTNAME
	sp := indexByteIn(rest, ' ')
	if sp <= 0 {
		return errMissingHostname
	}
	tok.hostLo, tok.hostHi = off, off+sp
	rest = rest[sp+1:]
	off += sp + 1

	// "seq: " tag.
	colon := indexColonSpace(rest)
	if colon < 0 {
		return errMissingSeqTag
	}
	seq, ok := parseSeq(rest[:colon])
	if !ok {
		return errBadSeq
	}
	tok.seq = seq
	rest = rest[colon+2:]
	off += colon + 2

	// Optional high-resolution service timestamp before the mnemonic.
	if len(rest) == 0 || rest[0] != '%' {
		pct := indexByteIn(rest, '%')
		if pct < 0 {
			return errMissingMnemonic
		}
		region := trimSuffix(trimSpace(rest[:pct]), ":")
		if hires, ok := parseServiceStamp(region, ref); ok {
			tok.stamp = hires
		}
		rest = rest[pct:]
		off += pct
	}

	// %MNEMONIC: text
	colon = indexColonSpace(rest)
	if colon < 0 || len(rest) < 2 {
		return errMissingMnemSep
	}
	tok.mnemLo, tok.mnemHi = off+1, off+colon // rest[0] is always '%'
	tok.textLo = off + colon + 2
	return nil
}

// parseServiceStamp parses the Cisco "service timestamps" form
// "Mmm dd hh:mm:ss.mmm UTC" (already space- and colon-trimmed).
//
//netfail:hotpath
func parseServiceStamp[T text](s T, ref time.Time) (time.Time, bool) {
	s = trimSuffix(s, " UTC")
	t, ok := parseStamp(s, true)
	if !ok {
		return time.Time{}, false
	}
	return resolveYear(t, ref), true
}

// parseStamp decodes "Jan _2 15:04:05" — with ".000" appended when
// withFrac is set — exactly as time.Parse does, over the full window:
// optional day padding, one-or-two-digit day and hour, fixed two-digit
// minute and second, time.Parse's bare fractional-second tail when the
// layout carries no fraction, and its "extra text" rejection of
// anything left over. The result lands in year 0 (a leap year, so
// Feb 29 is valid), to be placed by resolveYear.
//
//netfail:hotpath
func parseStamp[T text](s T, withFrac bool) (time.Time, bool) {
	month, s, ok := parseMonth(s)
	if !ok {
		return time.Time{}, false
	}
	s, ok = skipSpaces(s)
	if !ok {
		return time.Time{}, false
	}
	// "_2": skip one optional pad space, then one or two digits.
	if len(s) > 0 && s[0] == ' ' {
		s = s[1:]
	}
	day, s, ok := getnum(s, false)
	if !ok {
		return time.Time{}, false
	}
	s, ok = skipSpaces(s)
	if !ok {
		return time.Time{}, false
	}
	hour, s, ok := getnum(s, false)
	if !ok || hour > 23 || len(s) == 0 || s[0] != ':' {
		return time.Time{}, false
	}
	s = s[1:]
	minute, s, ok := getnum(s, true)
	if !ok || minute > 59 || len(s) == 0 || s[0] != ':' {
		return time.Time{}, false
	}
	s = s[1:]
	sec, s, ok := getnum(s, true)
	if !ok || sec > 59 {
		return time.Time{}, false
	}
	nsec := 0
	if withFrac {
		// ".000" demands a comma or period plus exactly three bytes,
		// parsed with atoi's sign tolerance (".+42" ≡ ".042").
		if len(s) < 4 || !commaOrPeriod(s[0]) {
			return time.Time{}, false
		}
		ns, ok := atoiSigned(s[1:4])
		if !ok || ns < 0 {
			return time.Time{}, false
		}
		nsec = ns * 1e6 // three digits given, scaled to nanoseconds
		s = s[4:]
	} else if len(s) >= 2 && commaOrPeriod(s[0]) && isDigit(s[1]) {
		// Fractional second in the input but not the layout:
		// time.Parse consumes it anyway.
		n := 2
		for n < len(s) && isDigit(s[n]) {
			n++
		}
		nb := min(n, 10) // at most nine fractional digits parse
		ns, ok := atoiSigned(s[1:nb])
		if !ok || ns < 0 {
			return time.Time{}, false
		}
		for i := nb; i < 10; i++ {
			ns *= 10
		}
		nsec = ns
		s = s[n:]
	}
	if len(s) != 0 { // "extra text"
		return time.Time{}, false
	}
	if day < 1 || day > daysInYear0[month-1] {
		return time.Time{}, false
	}
	return time.Date(0, time.Month(month), day, hour, minute, sec, nsec, time.UTC), true
}

// daysInYear0 is the month-length table for year 0, which the
// proleptic Gregorian calendar makes a leap year — time.Parse accepts
// "Feb 29" for exactly that reason.
var daysInYear0 = [12]int{31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}

// shortMonthNames mirrors the time package's table; lookup order
// matters only cosmetically (the names are prefix-free).
var shortMonthNames = [12]string{
	"Jan", "Feb", "Mar", "Apr", "May", "Jun",
	"Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
}

// parseMonth matches a three-letter month name with time.Parse's
// ASCII case folding.
//
//netfail:hotpath
func parseMonth[T text](s T) (int, T, bool) {
	if len(s) >= 3 {
		for i, name := range &shortMonthNames {
			if matchFold(s, name) {
				return i + 1, s[3:], true
			}
		}
	}
	return 0, s, false
}

// matchFold reports whether s begins with name under time.Parse's
// folding: bytes equal, or both folding to the same lowercase ASCII
// letter.
//
//netfail:hotpath
func matchFold[T text](s T, name string) bool {
	for i := 0; i < len(name); i++ {
		c1, c2 := s[i], name[i]
		if c1 != c2 {
			c1 |= 'a' - 'A'
			c2 |= 'a' - 'A'
			if c1 != c2 || c1 < 'a' || c1 > 'z' {
				return false
			}
		}
	}
	return true
}

// getnum reads a one-or-two-digit number (exactly two when fixed).
//
//netfail:hotpath
func getnum[T text](s T, fixed bool) (int, T, bool) {
	if len(s) == 0 || !isDigit(s[0]) {
		return 0, s, false
	}
	if len(s) < 2 || !isDigit(s[1]) {
		if fixed {
			return 0, s, false
		}
		return int(s[0] - '0'), s[1:], true
	}
	return int(s[0]-'0')*10 + int(s[1]-'0'), s[2:], true
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// skipSpaces replicates time.Parse's skip() for a one-space layout
// prefix: a non-space first byte fails, and otherwise every leading
// space is consumed — so " _2 " layouts absorb runs of spaces, and an
// already-empty value passes (the following field then rejects it).
//
//netfail:hotpath
func skipSpaces[T text](s T) (T, bool) {
	if len(s) > 0 && s[0] != ' ' {
		return s, false
	}
	for len(s) > 0 && s[0] == ' ' {
		s = s[1:]
	}
	return s, true
}

func commaOrPeriod(c byte) bool { return c == '.' || c == ',' }

// parsePRI decodes the PRI digits with strconv.Atoi's fast-path
// semantics: an optional leading sign, then nothing but digits. The
// value is at most three digits, so overflow cannot occur.
//
//netfail:hotpath
func parsePRI[T text](s T) (int, bool) {
	if len(s) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if s[0] == '-' || s[0] == '+' {
		neg = s[0] == '-'
		i = 1
		if len(s) == 1 {
			return 0, false
		}
	}
	n := 0
	for ; i < len(s); i++ {
		c := s[i] - '0'
		if c > 9 {
			return 0, false
		}
		n = n*10 + int(c)
	}
	if neg {
		n = -n
	}
	return n, true
}

// parseSeq decodes the sequence tag with strconv.ParseUint(s, 10, 64)
// semantics: digits only, overflow is an error.
//
//netfail:hotpath
func parseSeq[T text](s T) (uint64, bool) {
	if len(s) == 0 {
		return 0, false
	}
	const cutoff = (1<<64-1)/10 + 1
	var n uint64
	for i := 0; i < len(s); i++ {
		c := s[i] - '0'
		if c > 9 || n >= cutoff {
			return 0, false
		}
		n1 := n*10 + uint64(c)
		if n1 < n {
			return 0, false
		}
		n = n1
	}
	return n, true
}

// atoiSigned applies the time package's internal atoi to at most nine
// bytes: optional sign, then digits only; the empty string is zero.
//
//netfail:hotpath
func atoiSigned[T text](s T) (int, bool) {
	neg := false
	i := 0
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		i = 1
	}
	n := 0
	for ; i < len(s); i++ {
		c := s[i] - '0'
		if c > 9 {
			return 0, false
		}
		n = n*10 + int(c)
	}
	if neg {
		n = -n
	}
	return n, true
}

// indexByteIn is bytes.IndexByte/strings.IndexByte over the generic
// input; the scanned regions are short (hostnames, tags), so the
// byte loop costs nothing measurable against the SIMD versions.
//
//netfail:hotpath
func indexByteIn[T text](s T, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// indexColonSpace finds the first ": " separator.
//
//netfail:hotpath
func indexColonSpace[T text](s T) int {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == ':' && s[i+1] == ' ' {
			return i
		}
	}
	return -1
}

// trimSuffix drops one trailing suffix if present.
//
//netfail:hotpath
func trimSuffix[T text](s T, suffix string) T {
	n := len(s) - len(suffix)
	if n < 0 {
		return s
	}
	for i := 0; i < len(suffix); i++ {
		if s[n+i] != suffix[i] {
			return s
		}
	}
	return s[:n]
}

// trimSpace is strings.TrimSpace over the generic input: maximal
// white-space trim from both ends, Unicode included.
//
//netfail:hotpath
func trimSpace[T text](s T) T {
	for {
		n := leadingSpaceLen(s)
		if n == 0 {
			break
		}
		s = s[n:]
	}
	for {
		n := trailingSpaceLen(s)
		if n == 0 {
			break
		}
		s = s[:len(s)-n]
	}
	return s
}

// leadingSpaceLen returns the byte length of the white-space rune at
// the front of s, or zero. Multi-byte spaces are matched by their
// exact UTF-8 encodings — the complete White_Space set above ASCII —
// which is equivalent to decode-then-unicode.IsSpace because any
// other sequence (including overlong encodings) either decodes to a
// non-space rune or to RuneError, and both stop the trim.
//
//netfail:hotpath
func leadingSpaceLen[T text](s T) int {
	if len(s) == 0 {
		return 0
	}
	c := s[0]
	if c < 0x80 {
		if isASCIISpace(c) {
			return 1
		}
		return 0
	}
	if len(s) >= 2 && c == 0xc2 && (s[1] == 0x85 || s[1] == 0xa0) {
		return 2 // U+0085 NEL, U+00A0 NBSP
	}
	if len(s) >= 3 && isSpace3(c, s[1], s[2]) {
		return 3
	}
	return 0
}

// trailingSpaceLen is leadingSpaceLen for the end of s. Matching the
// exact encodings backwards is equivalent to DecodeLastRune: a tail
// that byte-equals a space encoding always decodes as that rune, and
// any other tail decodes to a non-space rune or RuneError.
//
//netfail:hotpath
func trailingSpaceLen[T text](s T) int {
	n := len(s)
	if n == 0 {
		return 0
	}
	c := s[n-1]
	if c < 0x80 {
		if isASCIISpace(c) {
			return 1
		}
		return 0
	}
	if n >= 2 && s[n-2] == 0xc2 && (c == 0x85 || c == 0xa0) {
		return 2
	}
	if n >= 3 && isSpace3(s[n-3], s[n-2], c) {
		return 3
	}
	return 0
}

func isASCIISpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// isSpace3 reports whether b0 b1 b2 encode a three-byte White_Space
// rune: U+1680, U+2000–U+200A, U+2028, U+2029, U+202F, U+205F, U+3000.
func isSpace3(b0, b1, b2 byte) bool {
	switch b0 {
	case 0xe1:
		return b1 == 0x9a && b2 == 0x80
	case 0xe2:
		if b1 == 0x80 {
			return (0x80 <= b2 && b2 <= 0x8a) || b2 == 0xa8 || b2 == 0xa9 || b2 == 0xaf
		}
		return b1 == 0x81 && b2 == 0x9f
	case 0xe3:
		return b1 == 0x80 && b2 == 0x80
	}
	return false
}
