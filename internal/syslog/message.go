package syslog

import (
	"fmt"
	"strconv"
	"time"
)

// Severity is the RFC 3164 severity level.
type Severity int

// Standard severities.
const (
	Emergency Severity = iota
	Alert
	Critical
	Error
	Warning
	Notice
	Informational
	Debug
)

// Facility is the RFC 3164 facility code. Cisco routers default to
// Local7.
type Facility int

// Facilities used here.
const (
	Kern   Facility = 0
	Local7 Facility = 23
)

// Message is a parsed RFC 3164 syslog message in the Cisco layout:
// PRI, header timestamp, hostname, a per-process sequence tag, and the
// %FACILITY-SEVERITY-MNEMONIC body.
type Message struct {
	Facility Facility
	Severity Severity
	// Timestamp is the header timestamp. RFC 3164 timestamps carry
	// no year; Parse resolves the year against a reference time.
	Timestamp time.Time
	// Hostname is the emitting router.
	Hostname string
	// Seq is Cisco's per-device message sequence number.
	Seq uint64
	// Mnemonic is the %FAC-SEV-NAME token, e.g. "CLNS-5-ADJCHANGE".
	Mnemonic string
	// Text is the free text after the mnemonic.
	Text string
}

// PRI returns the encoded priority value.
func (m *Message) PRI() int { return int(m.Facility)*8 + int(m.Severity) }

// Render serializes the message to its wire form.
func (m *Message) Render() string {
	return string(m.AppendRender(nil))
}

// AppendRender appends the message's wire form to dst and returns the
// extended slice. The spill writer renders every message through one
// reused buffer, so a warm writer allocates nothing per line.
//
//netfail:hotpath
func (m *Message) AppendRender(dst []byte) []byte {
	dst = append(dst, '<')
	dst = strconv.AppendInt(dst, int64(m.PRI()), 10)
	dst = append(dst, '>')
	dst = m.Timestamp.AppendFormat(dst, stampLayout)
	dst = append(dst, ' ')
	dst = append(dst, m.Hostname...)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, int64(m.Seq), 10)
	dst = append(dst, ':', ' ')
	dst = m.Timestamp.AppendFormat(dst, stampLayout)
	dst = append(dst, '.')
	ms := m.Timestamp.Nanosecond() / int(time.Millisecond)
	if ms < 100 {
		dst = append(dst, '0')
	}
	if ms < 10 {
		dst = append(dst, '0')
	}
	dst = strconv.AppendInt(dst, int64(ms), 10)
	dst = append(dst, " UTC: %"...)
	dst = append(dst, m.Mnemonic...)
	dst = append(dst, ':', ' ')
	dst = append(dst, m.Text...)
	return dst
}

// stampLayout is the RFC 3164 TIMESTAMP: "Mmm dd hh:mm:ss" with a
// space-padded day.
const stampLayout = "Jan _2 15:04:05"

// EventType classifies the link-state-relevant message types.
type EventType int

const (
	// EventISISAdj is an IS-IS adjacency state change
	// (%CLNS-5-ADJCHANGE or %ROUTING-ISIS-4-ADJCHANGE): the "IS-IS"
	// syslog rows of Table 2.
	EventISISAdj EventType = iota
	// EventLink is a physical interface state change
	// (%LINK-3-UPDOWN): the "physical media" rows of Table 2.
	EventLink
	// EventLineProto is a line-protocol state change
	// (%LINEPROTO-5-UPDOWN), also counted as physical media.
	EventLineProto
	// EventOther is any message this analysis does not interpret.
	EventOther
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EventISISAdj:
		return "isis-adj"
	case EventLink:
		return "link"
	case EventLineProto:
		return "lineproto"
	default:
		return "other"
	}
}

// Dialect selects which vendor OS message format a router emits.
type Dialect int

const (
	// DialectIOS emits %CLNS-5-ADJCHANGE.
	DialectIOS Dialect = iota
	// DialectIOSXR emits %ROUTING-ISIS-4-ADJCHANGE.
	DialectIOSXR
)

// LinkEvent is the structured content of a link-state message: what
// the analysis extracts from every relevant syslog line.
type LinkEvent struct {
	Type EventType
	// Router is the reporting hostname.
	Router string
	// Interface is the local interface named in the message.
	Interface string
	// Neighbor is the adjacency peer (hostname or system ID string)
	// for IS-IS messages; empty for physical-media messages.
	Neighbor string
	// Up is the direction of the transition.
	Up bool
	// Reason is the trailing explanation, e.g. "hold time expired".
	Reason string
	// Time is the message timestamp.
	Time time.Time
	// Seq is the device's message sequence number.
	Seq uint64
}

// AdjChange formats an IS-IS adjacency change message in the given
// dialect.
func AdjChange(dialect Dialect, host string, seq uint64, ts time.Time, neighbor, iface string, up bool, reason string) *Message {
	dir := "Down"
	if up {
		dir = "Up"
	}
	m := &Message{
		Facility:  Local7,
		Timestamp: ts,
		Hostname:  host,
		Seq:       seq,
	}
	switch dialect {
	case DialectIOSXR:
		m.Severity = Warning
		m.Mnemonic = "ROUTING-ISIS-4-ADJCHANGE"
		m.Text = fmt.Sprintf("Adjacency to %s (%s) (L2) %s, %s", neighbor, iface, dir, reason)
	default:
		m.Severity = Notice
		m.Mnemonic = "CLNS-5-ADJCHANGE"
		m.Text = fmt.Sprintf("ISIS: Adjacency to %s (%s) %s, %s", neighbor, iface, dir, reason)
	}
	return m
}

// LinkUpDown formats a physical interface state change.
func LinkUpDown(host string, seq uint64, ts time.Time, iface string, up bool) *Message {
	dir := "down"
	if up {
		dir = "up"
	}
	return &Message{
		Facility:  Local7,
		Severity:  Error,
		Timestamp: ts,
		Hostname:  host,
		Seq:       seq,
		Mnemonic:  "LINK-3-UPDOWN",
		Text:      fmt.Sprintf("Interface %s, changed state to %s", iface, dir),
	}
}

// LineProtoUpDown formats a line-protocol state change.
func LineProtoUpDown(host string, seq uint64, ts time.Time, iface string, up bool) *Message {
	dir := "down"
	if up {
		dir = "up"
	}
	return &Message{
		Facility:  Local7,
		Severity:  Notice,
		Timestamp: ts,
		Hostname:  host,
		Seq:       seq,
		Mnemonic:  "LINEPROTO-5-UPDOWN",
		Text:      fmt.Sprintf("Line protocol on Interface %s, changed state to %s", iface, dir),
	}
}
