package syslog

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollectorReceivesOverUDP(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", refTime)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s, err := NewSender(c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	want := 20
	for i := 0; i < want; i++ {
		m := LinkUpDown("cpe-001", uint64(i), ts(time.March, 3, 1, 2, 3, i), "Gi0/0/0", i%2 == 0)
		if err := s.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.Messages()) >= want {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	got := c.Messages()
	if len(got) != want {
		t.Fatalf("received %d messages, want %d", len(got), want)
	}
	if got[0].Hostname != "cpe-001" {
		t.Errorf("first message: %+v", got[0])
	}
}

func TestCollectorCountsGarbage(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", refTime)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s, err := NewSender(c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.conn.Write([]byte("complete garbage")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Dropped() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if c.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", c.Dropped())
	}
}

func TestCollectorSurfacesTerminalReadError(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", refTime)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the socket out from under the capture loop without
	// signalling shutdown: every subsequent read fails with a
	// non-timeout error, so after the retry budget the collector must
	// stop and record the terminal error.
	if err := c.conn.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Err() == nil {
		time.Sleep(10 * time.Millisecond)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "consecutive read errors") {
		t.Fatalf("Err() = %v, want terminal read error", err)
	}
	if err := c.Close(); err == nil || !strings.Contains(err.Error(), "consecutive read errors") {
		t.Errorf("Close() = %v, want the terminal error surfaced", err)
	}
}

// TestCollectorRetryScheduleIsPinned pins the exact backoff schedule
// the capture loop sleeps through before giving up: the shared
// backoff.Default sequence (1, 2, 4, 8, 16 ms), not a hand-rolled
// variant. The sleeper is injected before the loop starts, so the
// recorded delays are the loop's real decisions with no wall time
// involved.
func TestCollectorRetryScheduleIsPinned(t *testing.T) {
	udpAddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	c := newCollector(conn, refTime)
	var mu sync.Mutex
	var slept []time.Duration
	c.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	c.start()
	// Kill the socket out from under the loop: every read now fails
	// with a non-timeout error and the loop walks the whole schedule.
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	if c.Err() == nil {
		t.Fatal("collector never surfaced the terminal read error")
	}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		16 * time.Millisecond,
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want the pinned schedule %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("retry %d slept %v, want %v", i+1, slept[i], want[i])
		}
	}
}

func TestCollectorLimitOverflowAccounting(t *testing.T) {
	c, err := NewCollector("127.0.0.1:0", refTime)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetLimit(3)
	s, err := NewSender(c.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		m := LinkUpDown("cpe-001", uint64(i), ts(time.March, 3, 1, 2, 3, i), "Gi0/0/0", i%2 == 0)
		if err := s.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && c.Overflow() < 7 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.Messages(); len(got) != 3 {
		t.Errorf("kept %d messages, want 3 (limit)", len(got))
	}
	if c.Overflow() != 7 {
		t.Errorf("overflow = %d, want 7", c.Overflow())
	}
	if c.Err() != nil {
		t.Errorf("overflow must not be a terminal error: %v", c.Err())
	}
}

func TestWriteReadLogRoundTrip(t *testing.T) {
	var messages []*Message
	for i := 0; i < 50; i++ {
		messages = append(messages, AdjChange(DialectIOS, "riv-core-01", uint64(i),
			ts(time.April, 1+i%27, i%24, i%60, i%60, i%1000), "cpe-002", "Gi0/0/1", i%2 == 0, "test"))
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, messages); err != nil {
		t.Fatal(err)
	}
	got, bad, err := ReadLog(&buf, refTime)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Errorf("bad lines = %d", bad)
	}
	if len(got) != len(messages) {
		t.Fatalf("got %d messages, want %d", len(got), len(messages))
	}
	for i := range got {
		if got[i].Render() != messages[i].Render() {
			t.Errorf("message %d: %q != %q", i, got[i].Render(), messages[i].Render())
		}
	}
}

func TestReadLogRollingYearAcrossThirteenMonths(t *testing.T) {
	// A 13-month archive (the study period): messages more than six
	// months past the start must still land in the right year.
	times := []time.Time{
		time.Date(2010, time.October, 20, 12, 0, 0, 0, time.UTC),
		time.Date(2011, time.January, 5, 12, 0, 0, 0, time.UTC),
		time.Date(2011, time.June, 15, 12, 0, 0, 0, time.UTC),
		time.Date(2011, time.November, 10, 12, 0, 0, 0, time.UTC),
	}
	var buf bytes.Buffer
	var msgs []*Message
	for i, ts := range times {
		msgs = append(msgs, LinkUpDown("r", uint64(i), ts, "Gi0/0/0", i%2 == 0))
	}
	if err := WriteLog(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, bad, err := ReadLog(&buf, times[0])
	if err != nil || bad != 0 {
		t.Fatalf("err=%v bad=%d", err, bad)
	}
	for i, m := range got {
		if !m.Timestamp.Equal(times[i]) {
			t.Errorf("message %d resolved to %v, want %v", i, m.Timestamp, times[i])
		}
	}
}

func TestReadLogSkipsBadLines(t *testing.T) {
	log := strings.Join([]string{
		LinkUpDown("r", 1, ts(time.May, 1, 0, 0, 0, 0), "Gi0/0/0", true).Render(),
		"this line is noise",
		LinkUpDown("r", 2, ts(time.May, 1, 0, 0, 1, 0), "Gi0/0/0", false).Render(),
		"",
	}, "\n")
	got, bad, err := ReadLog(strings.NewReader(log), refTime)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || bad != 1 {
		t.Errorf("got %d messages, %d bad; want 2, 1", len(got), bad)
	}
}
