package syslog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Collector is the central logging facility: it receives syslog lines
// over UDP and appends the parsed messages to an in-memory log. Every
// router in the network is configured to send to one collector.
type Collector struct {
	conn *net.UDPConn
	ref  time.Time

	mu       sync.Mutex
	messages []*Message // guarded by mu
	dropped  int        // guarded by mu

	done chan struct{}
	wg   sync.WaitGroup
}

// NewCollector starts a collector listening on addr (e.g.
// "127.0.0.1:0"). ref is the reference time for resolving the
// year-less RFC 3164 timestamps.
func NewCollector(addr string, ref time.Time) (*Collector, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("syslog: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("syslog: listen: %w", err)
	}
	c := &Collector{conn: conn, ref: ref, done: make(chan struct{})}
	c.wg.Add(1)
	go c.run()
	return c, nil
}

// Addr returns the address the collector is listening on.
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

func (c *Collector) run() {
	defer c.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				continue
			}
			return
		}
		m, err := Parse(string(buf[:n]), c.ref)
		c.mu.Lock()
		if err != nil {
			c.dropped++
		} else {
			c.messages = append(c.messages, m)
		}
		c.mu.Unlock()
	}
}

// Messages returns a snapshot of the messages received so far.
func (c *Collector) Messages() []*Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Message(nil), c.messages...)
}

// Dropped returns the count of unparseable datagrams.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Close stops the collector.
func (c *Collector) Close() error {
	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// Sender transmits syslog messages over UDP, as a router's syslog
// process would.
type Sender struct {
	conn net.Conn
}

// NewSender dials the collector.
func NewSender(addr string) (*Sender, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("syslog: dial %q: %w", addr, err)
	}
	return &Sender{conn: conn}, nil
}

// Send transmits one message. UDP delivery is, faithfully, best
// effort.
func (s *Sender) Send(m *Message) error {
	_, err := io.WriteString(s.conn, m.Render())
	return err
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// WriteLog writes messages to w, one rendered line each: the on-disk
// archive format the analysis pipeline reads back.
func WriteLog(w io.Writer, messages []*Message) error {
	bw := bufio.NewWriter(w)
	for _, m := range messages {
		if _, err := bw.WriteString(m.Render()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a log written by WriteLog. Unparseable lines are
// counted, not fatal, matching operational reality.
//
// RFC 3164 timestamps carry no year, so a single fixed reference
// would misplace messages more than six months from it — fatal for a
// 13-month archive. Logs are chronological, so the reader resolves
// each line against a rolling reference: the previous message's
// resolved time (seeded by ref, the archive's start).
func ReadLog(r io.Reader, ref time.Time) (messages []*Message, badLines int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rolling := ref
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		m, perr := Parse(line, rolling)
		if perr != nil {
			badLines++
			continue
		}
		if m.Timestamp.After(rolling) {
			rolling = m.Timestamp
		}
		messages = append(messages, m)
	}
	return messages, badLines, sc.Err()
}
