package syslog

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"netfail/internal/backoff"
	"netfail/internal/salvage"
)

// Collector is the central logging facility: it receives syslog lines
// over UDP and appends the parsed messages to an in-memory log. Every
// router in the network is configured to send to one collector.
//
// Read-retry policy: a persistent non-timeout socket error does not
// kill the capture silently — the read is retried on the shared
// backoff.Default schedule, and only when its retry budget is
// exhausted does the collector stop, recording the terminal error for
// Err and Close to surface.
type Collector struct {
	conn  *net.UDPConn
	ref   time.Time
	tok   *Tokenizer
	retry backoff.Policy
	sleep func(time.Duration) // injected in tests to pin the schedule

	mu       sync.Mutex
	messages []*Message // guarded by mu
	dropped  int        // guarded by mu
	overflow int        // guarded by mu
	limit    int        // guarded by mu
	err      error      // guarded by mu

	done chan struct{}
	wg   sync.WaitGroup
}

// NewCollector starts a collector listening on addr (e.g.
// "127.0.0.1:0"). ref is the reference time for resolving the
// year-less RFC 3164 timestamps.
func NewCollector(addr string, ref time.Time) (*Collector, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("syslog: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("syslog: listen: %w", err)
	}
	c := newCollector(conn, ref)
	c.start()
	return c, nil
}

// newCollector wires a collector without starting its capture loop,
// so tests can swap the sleeper (and pin the retry schedule) before
// any goroutine reads the fields.
func newCollector(conn *net.UDPConn, ref time.Time) *Collector {
	return &Collector{conn: conn, ref: ref, tok: NewTokenizer(), retry: backoff.Default, sleep: time.Sleep, done: make(chan struct{})}
}

// start launches the capture loop.
func (c *Collector) start() {
	c.wg.Add(1)
	go c.run()
}

// Addr returns the address the collector is listening on.
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

func (c *Collector) run() {
	defer c.wg.Done()
	buf := make([]byte, 64*1024)
	retry := c.retry.New()
	for {
		n, _, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				retry.Reset()
				continue
			}
			d, ok := retry.Next()
			if !ok {
				c.mu.Lock()
				c.err = fmt.Errorf("syslog: capture stopped after %d consecutive read errors: %w", retry.Attempts(), err)
				c.mu.Unlock()
				return
			}
			c.sleep(d)
			continue
		}
		retry.Reset()
		// Parse straight off the datagram buffer: ParseBytes interns
		// the retained strings, so buf is free to be overwritten by
		// the next read.
		m := new(Message)
		err = c.tok.ParseBytes(buf[:n], c.ref, m)
		c.mu.Lock()
		switch {
		case err != nil:
			c.dropped++
		case c.limit > 0 && len(c.messages) >= c.limit:
			c.overflow++
		default:
			c.messages = append(c.messages, m)
		}
		c.mu.Unlock()
	}
}

// Messages returns a snapshot of the messages received so far.
func (c *Collector) Messages() []*Message {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Message(nil), c.messages...)
}

// Dropped returns the count of unparseable datagrams.
func (c *Collector) Dropped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// SetLimit caps the in-memory message log at n messages (0 restores
// unbounded capture). Parseable messages arriving past the cap are
// dropped and accounted by Overflow, so a bounded collector degrades
// with the same drop accounting as the unbounded one.
func (c *Collector) SetLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.limit = n
}

// Overflow returns the count of parseable messages dropped because
// the SetLimit cap was reached.
func (c *Collector) Overflow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overflow
}

// Err returns the terminal read error that stopped the capture, or
// nil while the collector is healthy. A non-nil Err means the message
// log is truncated: everything after the failure was never received.
func (c *Collector) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close stops the collector. If the capture already died on a
// persistent read error, that terminal error is surfaced here (joined
// with any socket-close error) so a truncated capture cannot pass for
// a clean shutdown.
func (c *Collector) Close() error {
	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return errors.Join(c.Err(), err)
}

// Sender transmits syslog messages over UDP, as a router's syslog
// process would.
type Sender struct {
	conn net.Conn
}

// NewSender dials the collector.
func NewSender(addr string) (*Sender, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("syslog: dial %q: %w", addr, err)
	}
	return &Sender{conn: conn}, nil
}

// Send transmits one message. UDP delivery is, faithfully, best
// effort.
func (s *Sender) Send(m *Message) error {
	_, err := io.WriteString(s.conn, m.Render())
	return err
}

// Close releases the socket.
func (s *Sender) Close() error { return s.conn.Close() }

// WriteLog writes messages to w, one rendered line each: the on-disk
// archive format the analysis pipeline reads back.
func WriteLog(w io.Writer, messages []*Message) error {
	bw := bufio.NewWriter(w)
	for _, m := range messages {
		if _, err := bw.WriteString(m.Render()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a log written by WriteLog. Unparseable lines are
// counted, not fatal, matching operational reality.
//
// RFC 3164 timestamps carry no year, so a single fixed reference
// would misplace messages more than six months from it — fatal for a
// 13-month archive. Logs are chronological, so the reader resolves
// each line against a rolling reference: the previous message's
// resolved time (seeded by ref, the archive's start).
func ReadLog(r io.Reader, ref time.Time) (messages []*Message, badLines int, err error) {
	messages, rep, err := ReadLogLenient(r, ref)
	return messages, rep.Skipped, err
}

// ReadLogLenient is ReadLog with full salvage accounting: the same
// skip-and-count semantics, but the report also records where the bad
// lines were. (This reader was always lenient — the archive format is
// lossy by construction — so there is no strict variant to pair it
// with.)
func ReadLogLenient(r io.Reader, ref time.Time) ([]*Message, *salvage.Report, error) {
	var messages []*Message
	rep := &salvage.Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	// One tokenizer per archive: messages come out with interned
	// (canonical, shared) strings instead of per-line copies, and the
	// scanner's byte buffer is never converted to a throwaway string.
	tok := NewTokenizer()
	rolling := ref
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		m := new(Message)
		if perr := tok.ParseBytes(line, rolling, m); perr != nil {
			rep.Skip(lineNo, "unparseable line")
			continue
		}
		if m.Timestamp.After(rolling) {
			rolling = m.Timestamp
		}
		messages = append(messages, m)
		rep.Kept++
	}
	return messages, rep, sc.Err()
}
