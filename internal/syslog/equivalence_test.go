package syslog

// Differential tests pinning the []byte tokenizer to the retired
// strings-based parser (parse_reference_test.go): same accept/reject
// decision and identical Message on every input, clean or corrupted.

import (
	"bytes"
	"testing"
	"time"

	"netfail/internal/faultinject"
)

// equivalenceRefs exercises year resolution mid-year and across the
// year boundary the study period straddles.
var equivalenceRefs = []time.Time{
	time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC),
	time.Date(2011, 1, 1, 0, 0, 30, 0, time.UTC),
	time.Date(2010, 12, 31, 23, 59, 0, 0, time.UTC),
}

// checkParserEquivalence runs one line through the reference parser,
// the new string parser, and the []byte tokenizer, and fails on any
// divergence: accept/reject, any Message field, or the derived
// LinkEvent.
func checkParserEquivalence(t *testing.T, tk *Tokenizer, line string) {
	t.Helper()
	for _, ref := range equivalenceRefs {
		want, werr := refParse(line, ref)
		got, gerr := Parse(line, ref)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("Parse(%q, ref=%v): err = %v, reference err = %v", line, ref, gerr, werr)
		}
		var m Message
		berr := tk.ParseBytes([]byte(line), ref, &m)
		if (werr == nil) != (berr == nil) {
			t.Fatalf("ParseBytes(%q, ref=%v): err = %v, reference err = %v", line, ref, berr, werr)
		}
		if werr != nil {
			continue
		}
		if *got != *want {
			t.Fatalf("Parse(%q, ref=%v):\n got %+v\nwant %+v", line, ref, *got, *want)
		}
		if m != *want {
			t.Fatalf("ParseBytes(%q, ref=%v):\n got %+v\nwant %+v", line, ref, m, *want)
		}
		wantEv, weverr := refParseLinkEvent(want)
		var ev LinkEvent
		geverr := ParseLinkEventInto(got, &ev)
		if (weverr == nil) != (geverr == nil) {
			t.Fatalf("ParseLinkEventInto(%q): err = %v, reference err = %v", line, geverr, weverr)
		}
		if weverr == nil && ev != *wantEv {
			t.Fatalf("ParseLinkEventInto(%q):\n got %+v\nwant %+v", line, ev, *wantEv)
		}
	}
}

// equivalenceCorpus renders a varied capture: every message family
// and dialect, padded and unpadded days, a leap day, and timestamps
// hugging the year boundary.
func equivalenceCorpus() []byte {
	var msgs []*Message
	times := []time.Time{
		time.Date(2011, 3, 3, 4, 5, 6, 789e6, time.UTC),
		time.Date(2011, 3, 14, 23, 59, 59, 1e6, time.UTC),
		time.Date(2012, 2, 29, 12, 0, 0, 0, time.UTC),
		time.Date(2010, 12, 31, 23, 59, 58, 500e6, time.UTC),
		time.Date(2011, 1, 1, 0, 0, 2, 0, time.UTC),
	}
	hosts := []string{"riv-core-01", "lax-agg-02", "sac-hpr-03"}
	ifaces := []string{"TenGigE0/1/0/3", "GigabitEthernet0/0/1", "POS1/0"}
	seq := uint64(1)
	for _, ts := range times {
		for i, h := range hosts {
			ifc := ifaces[i%len(ifaces)]
			peer := hosts[(i+1)%len(hosts)]
			msgs = append(msgs,
				AdjChange(DialectIOS, h, seq, ts, peer, ifc, i%2 == 0, "hold time expired"),
				AdjChange(DialectIOSXR, h, seq+1, ts, peer, ifc, i%2 != 0, "new adjacency"),
				LinkUpDown(h, seq+2, ts, ifc, i%2 == 0),
				LineProtoUpDown(h, seq+3, ts, ifc, i%2 != 0),
			)
			seq += 4
		}
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, msgs); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// TestTokenizerMatchesReferenceOnCorruptedCorpus is the deterministic
// half of the differential pin: the rendered corpus is mangled by
// every faultinject mode over several seeds, and every resulting line
// must parse identically under the old and new parsers.
func TestTokenizerMatchesReferenceOnCorruptedCorpus(t *testing.T) {
	clean := equivalenceCorpus()
	tk := NewTokenizer()
	for _, line := range bytes.Split(clean, []byte("\n")) {
		checkParserEquivalence(t, tk, string(line))
	}
	for seed := int64(1); seed <= 8; seed++ {
		corrupted, faults := faultinject.Corrupt(clean, faultinject.Plan{Seed: seed, Rate: 0.5})
		if len(faults) == 0 {
			t.Fatalf("seed %d injected no faults", seed)
		}
		for _, line := range bytes.Split(corrupted, []byte("\n")) {
			checkParserEquivalence(t, tk, string(line))
		}
	}
}

// FuzzParseMatchesReference lets the fuzzer hunt for divergence
// beyond the corpus: seeds cover every known quirk of the retired
// parser (time.Parse's case-folded months, optional day padding,
// short hours, bare and signed fractions, Unicode spaces; strconv's
// signed PRI and sequence overflow).
func FuzzParseMatchesReference(f *testing.F) {
	clean := equivalenceCorpus()
	for i, line := range bytes.Split(clean, []byte("\n")) {
		if i%5 == 0 { // a sample keeps the seed corpus small
			f.Add(string(line))
		}
	}
	corrupted, _ := faultinject.Corrupt(clean, faultinject.Plan{Seed: 42, Rate: 0.7})
	for i, line := range bytes.Split(corrupted, []byte("\n")) {
		if i%7 == 0 {
			f.Add(string(line))
		}
	}
	for _, quirk := range []string{
		"<189>mAr  3 04:05:06 h 1: %M-1-X: t",                          // case-folded month
		"<189>Mar 3 4:05:06 x h 1: %M-1-X: t",                          // unpadded day, short hour
		"<189>Mar  3 4:05:06.5 h 1: %M-1-X: t",                         // bare fraction in the 15-byte window
		"<189>Mar 13 04:05:06 h 1: Mar 13 04:05:06.+42 UTC: %M-1-X: t", // signed fraction
		"<189>Mar 13 04:05:06 h 1: Mar 13 04:05:06,042 UTC: %M-1-X: t", // comma fraction
		"<189>Feb 29 04:05:06 h 1: %M-1-X: t",                          // leap day in year 0
		"<+89>Mar 13 04:05:06 h 1: %M-1-X: t",                          // signed PRI
		"<189>Mar 13 04:05:06 h 18446744073709551616: %M-1-X: t",       // seq overflow
		"<189>Mar 13 04:05:06 h 1:  Mar 13 04:05:06.000 UTC :　%M-1-X: t",
		"<189>Dec 31 23:59:59 h 9: %LINK-3-UPDOWN: Interface POS1/0, changed state to down",
		"<189>Jan  1 00:00:01 h 9: %CLNS-5-ADJCHANGE: ISIS: Adjacency to p (i) Up",
	} {
		f.Add(quirk)
	}
	f.Fuzz(func(t *testing.T, line string) {
		checkParserEquivalence(t, NewTokenizer(), line)
	})
}
