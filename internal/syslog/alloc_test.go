package syslog

import (
	"testing"
	"time"
)

// Allocation pins companion to the benchmarks: ReportAllocs shows a
// regression only to someone reading benchmark output, while these
// fail `go test` outright. The hot paths are pinned at zero steady-
// state allocations per record — the tokenizer keeps fields as spans,
// ParseBytes materializes them through warm intern tables, and the
// Into variants write into caller-owned structs — while the pointer-
// returning wrappers are pinned at exactly the one escape they
// document. Any new allocation on a parse path is a test failure, the
// same invariant the hotalloc analyzer and the escape baseline
// enforce statically.

func allocTestLine() string {
	return AdjChange(DialectIOSXR, "riv-core-01", 421,
		time.Date(2011, 3, 3, 4, 5, 6, 789e6, time.UTC),
		"cpe-001", "TenGigE0/1/0/3", false, "hold time expired").Render()
}

func TestParseAllocBudget(t *testing.T) {
	line := allocTestLine()
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	avg := testing.AllocsPerRun(100, func() {
		if _, err := Parse(line, ref); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 1 {
		t.Errorf("Parse allocates %.1f times per message, budget is exactly 1 (the *Message)", avg)
	}
}

func TestParseIntoAllocBudget(t *testing.T) {
	line := allocTestLine()
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	var m Message
	avg := testing.AllocsPerRun(100, func() {
		if err := ParseInto(line, ref, &m); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("ParseInto allocates %.1f times per message, budget is 0", avg)
	}
}

func TestParseBytesAllocBudget(t *testing.T) {
	line := []byte(allocTestLine())
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	tk := NewTokenizer()
	var m Message
	// Warm the intern tables: the first sightings allocate, the
	// steady state must not.
	for i := 0; i < 8; i++ {
		if err := tk.ParseBytes(line, ref, &m); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := tk.ParseBytes(line, ref, &m); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm ParseBytes allocates %.1f times per message, budget is 0", avg)
	}
}

func TestParseErrorAllocBudget(t *testing.T) {
	// Corrupt captures make parse errors routine; the reject path must
	// not allocate either (preconstructed errors, no annotations).
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	bad := []byte("<189>Mar 13 99:99:99 riv-core-01 421: %LINK-3-UPDOWN: x")
	tk := NewTokenizer()
	var m Message
	avg := testing.AllocsPerRun(100, func() {
		if err := tk.ParseBytes(bad, ref, &m); err == nil {
			t.Fatal("bad line parsed")
		}
	})
	if avg != 0 {
		t.Errorf("ParseBytes reject path allocates %.1f times per message, budget is 0", avg)
	}
}

func TestParseLinkEventAllocBudget(t *testing.T) {
	m := AdjChange(DialectIOS, "riv-core-01", 1,
		time.Date(2011, 3, 3, 4, 5, 6, 0, time.UTC),
		"cpe-001", "GigabitEthernet0/0/1", true, "new adjacency")
	avg := testing.AllocsPerRun(100, func() {
		if _, err := ParseLinkEvent(m); err != nil {
			t.Fatal(err)
		}
	})
	// Zero, not one: with ParseLinkEventInto inlined, the discarded
	// *LinkEvent never escapes.
	if avg != 0 {
		t.Errorf("ParseLinkEvent allocates %.1f times per message, budget is 0", avg)
	}
}

func TestParseLinkEventIntoAllocBudget(t *testing.T) {
	msgs := []*Message{
		AdjChange(DialectIOS, "riv-core-01", 1,
			time.Date(2011, 3, 3, 4, 5, 6, 0, time.UTC),
			"cpe-001", "GigabitEthernet0/0/1", true, "new adjacency"),
		AdjChange(DialectIOSXR, "riv-core-01", 2,
			time.Date(2011, 3, 3, 4, 5, 7, 0, time.UTC),
			"cpe-001", "TenGigE0/1/0/3", false, "hold time expired"),
		LinkUpDown("riv-core-01", 3, time.Date(2011, 3, 3, 4, 5, 8, 0, time.UTC), "POS1/0", false),
		LineProtoUpDown("riv-core-01", 4, time.Date(2011, 3, 3, 4, 5, 9, 0, time.UTC), "POS1/0", false),
	}
	var ev LinkEvent
	avg := testing.AllocsPerRun(100, func() {
		for _, m := range msgs {
			if err := ParseLinkEventInto(m, &ev); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("ParseLinkEventInto allocates %.1f times per batch, budget is 0", avg)
	}
}
