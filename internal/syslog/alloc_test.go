package syslog

import (
	"testing"
	"time"
)

// Allocation pins companion to the benchmarks: ReportAllocs shows a
// regression only to someone reading benchmark output, while these
// fail `go test` outright. The budgets are the current exact counts —
// one allocation each, the returned struct itself — so any new
// allocation on the parse path is a test failure, the same invariant
// the hotalloc analyzer and the escape baseline enforce statically.

func TestParseAllocBudget(t *testing.T) {
	line := AdjChange(DialectIOSXR, "riv-core-01", 421,
		time.Date(2011, 3, 3, 4, 5, 6, 789e6, time.UTC),
		"cpe-001", "TenGigE0/1/0/3", false, "hold time expired").Render()
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	avg := testing.AllocsPerRun(100, func() {
		if _, err := Parse(line, ref); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("Parse allocates %.1f times per message, budget is 1 (the *Message)", avg)
	}
}

func TestParseLinkEventAllocBudget(t *testing.T) {
	m := AdjChange(DialectIOS, "riv-core-01", 1,
		time.Date(2011, 3, 3, 4, 5, 6, 0, time.UTC),
		"cpe-001", "GigabitEthernet0/0/1", true, "new adjacency")
	avg := testing.AllocsPerRun(100, func() {
		if _, err := ParseLinkEvent(m); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("ParseLinkEvent allocates %.1f times per message, budget is 1 (the *LinkEvent)", avg)
	}
}
