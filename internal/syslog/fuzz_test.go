package syslog

import (
	"testing"
	"time"
)

// FuzzParse: arbitrary lines must never panic the parser, and
// anything that parses must render back to something parseable.
func FuzzParse(f *testing.F) {
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	f.Add(AdjChange(DialectIOS, "riv-core-01", 1, ref, "cpe-001", "Gi0/0/0", true, "new adjacency").Render())
	f.Add(AdjChange(DialectIOSXR, "riv-core-01", 2, ref, "cpe-001", "Te0/1/0/3", false, "hold time expired").Render())
	f.Add(LinkUpDown("cpe-001", 3, ref, "Gi0/0/0", false).Render())
	f.Add(LineProtoUpDown("cpe-001", 4, ref, "Gi0/0/0", true).Render())
	f.Add("<189>Oct 20 04:01:02 host 1: %SYS-5-CONFIG_I: Configured")
	f.Add("")
	f.Add("<>")

	f.Fuzz(func(t *testing.T, line string) {
		m, err := Parse(line, ref)
		if err != nil {
			return
		}
		if _, err := Parse(m.Render(), ref); err != nil {
			t.Fatalf("re-rendered message does not parse: %v (from %q)", err, line)
		}
		// Link-event extraction must not panic either.
		_, _ = ParseLinkEvent(m)
	})
}
