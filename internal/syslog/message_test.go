package syslog

import (
	"errors"
	"strings"
	"testing"
	"time"
)

var refTime = time.Date(2011, time.March, 15, 0, 0, 0, 0, time.UTC)

func ts(month time.Month, day, hour, min, sec, ms int) time.Time {
	return time.Date(2011, month, day, hour, min, sec, ms*int(time.Millisecond), time.UTC)
}

func TestAdjChangeRenderParseRoundTrip(t *testing.T) {
	for _, dialect := range []Dialect{DialectIOS, DialectIOSXR} {
		orig := AdjChange(dialect, "riv-core-01", 421, ts(time.March, 3, 4, 5, 6, 789),
			"cpe-001", "TenGigE0/1/0/3", false, "hold time expired")
		line := orig.Render()
		m, err := Parse(line, refTime)
		if err != nil {
			t.Fatalf("dialect %d: Parse(%q): %v", dialect, line, err)
		}
		if m.Hostname != "riv-core-01" || m.Seq != 421 {
			t.Errorf("header: %+v", m)
		}
		if !m.Timestamp.Equal(orig.Timestamp) {
			t.Errorf("timestamp = %v, want %v", m.Timestamp, orig.Timestamp)
		}
		ev, err := ParseLinkEvent(m)
		if err != nil {
			t.Fatalf("ParseLinkEvent: %v", err)
		}
		if ev.Type != EventISISAdj || ev.Up || ev.Neighbor != "cpe-001" ||
			ev.Interface != "TenGigE0/1/0/3" || ev.Reason != "hold time expired" {
			t.Errorf("event = %+v", ev)
		}
	}
}

func TestLinkUpDownRoundTrip(t *testing.T) {
	orig := LinkUpDown("cpe-001", 7, ts(time.October, 20, 23, 59, 59, 1), "GigabitEthernet0/0/1", true)
	m, err := Parse(orig.Render(), refTime)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ParseLinkEvent(m)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventLink || !ev.Up || ev.Interface != "GigabitEthernet0/0/1" {
		t.Errorf("event = %+v", ev)
	}
}

func TestLineProtoRoundTrip(t *testing.T) {
	orig := LineProtoUpDown("cpe-001", 8, ts(time.June, 1, 1, 2, 3, 0), "GigabitEthernet0/0/1", false)
	m, err := Parse(orig.Render(), refTime)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ParseLinkEvent(m)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != EventLineProto || ev.Up {
		t.Errorf("event = %+v", ev)
	}
}

func TestParseYearResolution(t *testing.T) {
	// Study period Oct 2010 – Nov 2011: a December stamp seen from a
	// January reference belongs to the previous year.
	jan2011 := time.Date(2011, time.January, 10, 0, 0, 0, 0, time.UTC)
	m := LinkUpDown("r", 1, time.Date(2010, time.December, 30, 12, 0, 0, 0, time.UTC), "Gi0/0/0", false)
	got, err := Parse(m.Render(), jan2011)
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp.Year() != 2010 {
		t.Errorf("year = %d, want 2010", got.Timestamp.Year())
	}
	// And a January stamp seen from December belongs to the next year.
	dec2010 := time.Date(2010, time.December, 28, 0, 0, 0, 0, time.UTC)
	m2 := LinkUpDown("r", 2, time.Date(2011, time.January, 2, 3, 0, 0, 0, time.UTC), "Gi0/0/0", true)
	got2, err := Parse(m2.Render(), dec2010)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Timestamp.Year() != 2011 {
		t.Errorf("year = %d, want 2011", got2.Timestamp.Year())
	}
}

func TestParseMalformed(t *testing.T) {
	bad := []string{
		"",
		"no pri at all",
		"<999>Oct 20 01:02:03 host 1: %X-1-Y: text",
		"<189>bad timestamp here host 1: %X-1-Y: t",
		"<189>Oct 20 01:02:03 ",
		"<189>Oct 20 01:02:03 host notanum: %X-1-Y: t",
		"<189>Oct 20 01:02:03 host 1: no mnemonic here",
	}
	for _, line := range bad {
		if _, err := Parse(line, refTime); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", line)
		}
	}
}

func TestParseLinkEventRejectsOthers(t *testing.T) {
	m := &Message{Mnemonic: "SYS-5-CONFIG_I", Text: "Configured from console"}
	if _, err := ParseLinkEvent(m); !errors.Is(err, ErrNotLink) {
		t.Errorf("err = %v, want ErrNotLink", err)
	}
}

func TestParseAdjTextMalformed(t *testing.T) {
	for _, text := range []string{
		"Adjacency to neighbor-without-iface Up, ok",
		"Adjacency to n (iface-unterminated Up",
		"Adjacency to n (i) Sideways, reason",
		"nonsense",
	} {
		m := &Message{Mnemonic: "ROUTING-ISIS-4-ADJCHANGE", Text: text}
		if _, err := ParseLinkEvent(m); err == nil {
			t.Errorf("ParseLinkEvent(%q) succeeded", text)
		}
	}
}

func TestPRIEncoding(t *testing.T) {
	m := &Message{Facility: Local7, Severity: Notice}
	if m.PRI() != 189 {
		t.Errorf("PRI = %d, want 189", m.PRI())
	}
	if !strings.HasPrefix(m.Render(), "<189>") {
		t.Errorf("render = %q", m.Render())
	}
}

func TestInterfaceNamesWithSpacesInDescription(t *testing.T) {
	// Neighbor hostnames may contain dots and dashes; parser must not
	// split on them.
	orig := AdjChange(DialectIOS, "h", 1, ts(time.May, 5, 5, 5, 5, 5),
		"svl-core-02.cenic.net", "TenGigE0/1/0/3.100", true, "new adjacency")
	m, err := Parse(orig.Render(), refTime)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := ParseLinkEvent(m)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Neighbor != "svl-core-02.cenic.net" || ev.Interface != "TenGigE0/1/0/3.100" {
		t.Errorf("event = %+v", ev)
	}
}
