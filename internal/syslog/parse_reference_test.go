package syslog

// The retired strings-based parser, preserved verbatim (names
// ref-prefixed, allocation behavior and all) as the oracle for the
// differential tests in equivalence_test.go: the []byte tokenizer
// must reproduce it bit for bit — time.Parse, strconv.Atoi,
// strconv.ParseUint, and strings.TrimSpace quirks included — over
// both clean and faultinject-corrupted corpora. Do not modernize this
// file; its fidelity to the old implementation is the point.

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

func refParse(line string, ref time.Time) (*Message, error) {
	var m Message

	// <PRI>
	if len(line) < 3 || line[0] != '<' {
		return nil, fmt.Errorf("%w: missing PRI", ErrMalformed)
	}
	end := strings.IndexByte(line, '>')
	if end < 0 || end > 4 {
		return nil, fmt.Errorf("%w: bad PRI", ErrMalformed)
	}
	pri, err := strconv.Atoi(line[1:end])
	if err != nil || pri < 0 || pri > 191 {
		return nil, fmt.Errorf("%w: bad PRI %q", ErrMalformed, line[1:end])
	}
	m.Facility = Facility(pri / 8)
	m.Severity = Severity(pri % 8)
	rest := line[end+1:]

	// TIMESTAMP: fixed 15 chars "Mmm dd hh:mm:ss".
	if len(rest) < 16 {
		return nil, fmt.Errorf("%w: truncated header", ErrMalformed)
	}
	stamp, err := time.Parse(stampLayout, rest[:15])
	if err != nil {
		return nil, fmt.Errorf("%w: bad timestamp %q", ErrMalformed, rest[:15])
	}
	m.Timestamp = refResolveYear(stamp, ref)
	rest = rest[16:]

	// HOSTNAME
	sp := strings.IndexByte(rest, ' ')
	if sp <= 0 {
		return nil, fmt.Errorf("%w: missing hostname", ErrMalformed)
	}
	m.Hostname = rest[:sp]
	rest = rest[sp+1:]

	// "seq: " tag.
	colon := strings.Index(rest, ": ")
	if colon < 0 {
		return nil, fmt.Errorf("%w: missing sequence tag", ErrMalformed)
	}
	seq, err := strconv.ParseUint(rest[:colon], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: bad sequence %q", ErrMalformed, rest[:colon])
	}
	m.Seq = seq
	rest = rest[colon+2:]

	// Optional high-resolution service timestamp before the mnemonic.
	if !strings.HasPrefix(rest, "%") {
		pct := strings.Index(rest, "%")
		if pct < 0 {
			return nil, fmt.Errorf("%w: missing mnemonic", ErrMalformed)
		}
		if hires, ok := refParseServiceStamp(strings.TrimSuffix(strings.TrimSpace(rest[:pct]), ":"), ref); ok {
			m.Timestamp = hires
		}
		rest = rest[pct:]
	}

	// %MNEMONIC: text
	colon = strings.Index(rest, ": ")
	if colon < 0 || len(rest) < 2 {
		return nil, fmt.Errorf("%w: missing mnemonic separator", ErrMalformed)
	}
	m.Mnemonic = strings.TrimPrefix(rest[:colon], "%")
	m.Text = rest[colon+2:]
	return &m, nil
}

func refParseServiceStamp(s string, ref time.Time) (time.Time, bool) {
	s = strings.TrimSuffix(s, " UTC")
	t, err := time.Parse(stampLayout+".000", s)
	if err != nil {
		return time.Time{}, false
	}
	return refResolveYear(t, ref), true
}

func refResolveYear(t, ref time.Time) time.Time {
	best := t.AddDate(ref.Year(), 0, 0)
	bestDiff := refAbsDuration(best.Sub(ref))
	for _, y := range []int{ref.Year() - 1, ref.Year() + 1} {
		cand := t.AddDate(y, 0, 0)
		if d := refAbsDuration(cand.Sub(ref)); d < bestDiff {
			best, bestDiff = cand, d
		}
	}
	return best
}

func refAbsDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func refParseLinkEvent(m *Message) (*LinkEvent, error) {
	ev := &LinkEvent{Router: m.Hostname, Time: m.Timestamp, Seq: m.Seq}
	switch m.Mnemonic {
	case "CLNS-5-ADJCHANGE":
		ev.Type = EventISISAdj
		text := strings.TrimPrefix(m.Text, "ISIS: ")
		return refParseAdjText(ev, text)
	case "ROUTING-ISIS-4-ADJCHANGE":
		ev.Type = EventISISAdj
		return refParseAdjText(ev, m.Text)
	case "LINK-3-UPDOWN":
		ev.Type = EventLink
		return refParseIfaceText(ev, m.Text, "Interface ")
	case "LINEPROTO-5-UPDOWN":
		ev.Type = EventLineProto
		return refParseIfaceText(ev, m.Text, "Line protocol on Interface ")
	default:
		return nil, ErrNotLink
	}
}

func refParseAdjText(ev *LinkEvent, text string) (*LinkEvent, error) {
	const prefix = "Adjacency to "
	if !strings.HasPrefix(text, prefix) {
		return nil, fmt.Errorf("%w: %q", ErrMalformed, text)
	}
	text = text[len(prefix):]
	open := strings.Index(text, " (")
	if open < 0 {
		return nil, fmt.Errorf("%w: missing interface", ErrMalformed)
	}
	ev.Neighbor = text[:open]
	text = text[open+2:]
	closeP := strings.Index(text, ") ")
	if closeP < 0 {
		return nil, fmt.Errorf("%w: unterminated interface", ErrMalformed)
	}
	ev.Interface = text[:closeP]
	text = text[closeP+2:]
	text = strings.TrimPrefix(text, "(L2) ")
	comma := strings.Index(text, ", ")
	dir := text
	if comma >= 0 {
		dir = text[:comma]
		ev.Reason = text[comma+2:]
	}
	switch dir {
	case "Up":
		ev.Up = true
	case "Down":
		ev.Up = false
	default:
		return nil, fmt.Errorf("%w: bad direction %q", ErrMalformed, dir)
	}
	return ev, nil
}

func refParseIfaceText(ev *LinkEvent, text, prefix string) (*LinkEvent, error) {
	if !strings.HasPrefix(text, prefix) {
		return nil, fmt.Errorf("%w: %q", ErrMalformed, text)
	}
	text = text[len(prefix):]
	const sep = ", changed state to "
	i := strings.Index(text, sep)
	if i < 0 {
		return nil, fmt.Errorf("%w: missing state clause", ErrMalformed)
	}
	ev.Interface = text[:i]
	switch text[i+len(sep):] {
	case "up":
		ev.Up = true
	case "down":
		ev.Up = false
	default:
		return nil, fmt.Errorf("%w: bad direction %q", ErrMalformed, text[i+len(sep):])
	}
	return ev, nil
}
