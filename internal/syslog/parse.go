package syslog

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"netfail/internal/intern"
)

// Parsing errors.
var (
	ErrMalformed = errors.New("syslog: malformed message")
	ErrNotLink   = errors.New("syslog: not a link-state message")
)

// The hot path returns preconstructed errors: corrupted captures make
// parse failures routine (ReadLog counts them per line), and building
// a fresh annotated error per bad line is exactly the per-record
// garbage this path exists to avoid. errors.Is(err, ErrMalformed)
// still classifies every one of them.
var (
	errMissingPRI      = fmt.Errorf("%w: missing PRI", ErrMalformed)
	errBadPRI          = fmt.Errorf("%w: bad PRI", ErrMalformed)
	errTruncatedHeader = fmt.Errorf("%w: truncated header", ErrMalformed)
	errBadTimestamp    = fmt.Errorf("%w: bad timestamp", ErrMalformed)
	errMissingHostname = fmt.Errorf("%w: missing hostname", ErrMalformed)
	errMissingSeqTag   = fmt.Errorf("%w: missing sequence tag", ErrMalformed)
	errBadSeq          = fmt.Errorf("%w: bad sequence", ErrMalformed)
	errMissingMnemonic = fmt.Errorf("%w: missing mnemonic", ErrMalformed)
	errMissingMnemSep  = fmt.Errorf("%w: missing mnemonic separator", ErrMalformed)

	errBadAdjPrefix      = fmt.Errorf("%w: not an adjacency message", ErrMalformed)
	errMissingInterface  = fmt.Errorf("%w: missing interface", ErrMalformed)
	errUntermInterface   = fmt.Errorf("%w: unterminated interface", ErrMalformed)
	errBadDirection      = fmt.Errorf("%w: bad direction", ErrMalformed)
	errBadIfacePrefix    = fmt.Errorf("%w: not an interface message", ErrMalformed)
	errMissingStateWords = fmt.Errorf("%w: missing state clause", ErrMalformed)
)

// Parse decodes one wire-format line. RFC 3164 timestamps carry no
// year, so ref supplies one: the parsed timestamp is placed in the
// year that puts it closest to ref, which handles logs spanning a
// year boundary (the study period Oct 2010 – Nov 2011 does).
//
//netfail:hotpath
func Parse(line string, ref time.Time) (*Message, error) {
	m := new(Message)
	if err := ParseInto(line, ref, m); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseInto is Parse into a caller-owned Message: the string fields
// are substrings of line, so a successful parse performs zero
// allocations. On error m is partially overwritten and must not be
// used.
//
//netfail:hotpath
func ParseInto(line string, ref time.Time, m *Message) error {
	var tok tokens
	if err := tokenize(line, ref, &tok); err != nil {
		return err
	}
	m.Facility = tok.facility
	m.Severity = tok.severity
	m.Timestamp = tok.stamp
	m.Seq = tok.seq
	m.Hostname = line[tok.hostLo:tok.hostHi]
	m.Mnemonic = line[tok.mnemLo:tok.mnemHi]
	m.Text = line[tok.textLo:]
	return nil
}

// Tokenizer parses wire-format lines directly from byte buffers,
// materializing the string fields through intern tables so a warm
// parse — every symbol already seen — allocates nothing and the
// returned Message owns no part of the input buffer. One Tokenizer is
// safe for concurrent use; sharing one across a capture's readers
// also canonicalizes the strings (equal fields are pointer-equal),
// which downstream maps exploit.
type Tokenizer struct {
	// Symbols interns the bounded vocabulary: hostnames and mnemonics.
	// A month-scale campaign sees a few hundred of each.
	Symbols *intern.Table
	// Texts interns the free-text field. Real captures repeat a small
	// set of texts (the same adjacency flaps over and over), but
	// corrupted or hostile input is unbounded, so this table carries a
	// limit past which texts degrade to ordinary fresh strings.
	Texts *intern.Table
}

// textInternLimit caps the free-text table: generous for the repeated
// flap messages of a real capture, harmless when corrupted input
// blows past it.
const textInternLimit = 1 << 16

// NewTokenizer returns a Tokenizer with fresh intern tables.
func NewTokenizer() *Tokenizer {
	return &Tokenizer{Symbols: &intern.Table{}, Texts: &intern.Table{Limit: textInternLimit}}
}

// ParseBytes decodes one wire-format line from a byte buffer into m.
// The buffer may be reused immediately: every retained string is
// interned or freshly copied. On error m is partially overwritten and
// must not be used.
//
//netfail:hotpath
func (tk *Tokenizer) ParseBytes(line []byte, ref time.Time, m *Message) error {
	var tok tokens
	if err := tokenize(line, ref, &tok); err != nil {
		return err
	}
	m.Facility = tok.facility
	m.Severity = tok.severity
	m.Timestamp = tok.stamp
	m.Seq = tok.seq
	m.Hostname = tk.Symbols.Intern(line[tok.hostLo:tok.hostHi])
	m.Mnemonic = tk.Symbols.Intern(line[tok.mnemLo:tok.mnemHi])
	m.Text = tk.Texts.Intern(line[tok.textLo:])
	return nil
}

// resolveYear places a year-less timestamp in the year (of ref's
// location) that brings it closest to ref.
//
//netfail:hotpath
func resolveYear(t, ref time.Time) time.Time {
	best := t.AddDate(ref.Year(), 0, 0)
	bestDiff := absDuration(best.Sub(ref))
	for _, y := range [2]int{ref.Year() - 1, ref.Year() + 1} {
		cand := t.AddDate(y, 0, 0)
		if d := absDuration(cand.Sub(ref)); d < bestDiff {
			best, bestDiff = cand, d
		}
	}
	return best
}

func absDuration(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

// ParseLinkEvent extracts the structured link event from a message,
// returning ErrNotLink for mnemonics outside the three families the
// analysis consumes.
//
//netfail:hotpath
func ParseLinkEvent(m *Message) (*LinkEvent, error) {
	ev := new(LinkEvent)
	if err := ParseLinkEventInto(m, ev); err != nil {
		return nil, err
	}
	return ev, nil
}

// ParseLinkEventInto is ParseLinkEvent into a caller-owned LinkEvent,
// for loops that reuse one event across a capture. The string fields
// are substrings of the message's fields, so a successful extraction
// performs zero allocations. On error ev is partially overwritten and
// must not be used.
//
//netfail:hotpath
func ParseLinkEventInto(m *Message, ev *LinkEvent) error {
	// Fields are assigned individually rather than via a struct
	// literal: every success path below overwrites Interface, Up, and
	// (for adjacency messages) Neighbor/Reason, so only the fields the
	// path leaves untouched need explicit clearing. This keeps the
	// extract loop from re-zeroing the whole 112-byte struct per
	// message.
	ev.Router = m.Hostname
	ev.Time = m.Timestamp
	ev.Seq = m.Seq
	switch m.Mnemonic {
	case "CLNS-5-ADJCHANGE":
		ev.Type = EventISISAdj
		return parseAdjText(ev, strings.TrimPrefix(m.Text, "ISIS: "))
	case "ROUTING-ISIS-4-ADJCHANGE":
		ev.Type = EventISISAdj
		return parseAdjText(ev, m.Text)
	case "LINK-3-UPDOWN":
		ev.Type = EventLink
		return parseIfaceText(ev, m.Text, "Interface ")
	case "LINEPROTO-5-UPDOWN":
		ev.Type = EventLineProto
		return parseIfaceText(ev, m.Text, "Line protocol on Interface ")
	default:
		return ErrNotLink
	}
}

// parseAdjText handles "Adjacency to NEIGHBOR (IFACE) [\(L2\) ]DIR, reason".
//
//netfail:hotpath
func parseAdjText(ev *LinkEvent, text string) error {
	const prefix = "Adjacency to "
	if !strings.HasPrefix(text, prefix) {
		return errBadAdjPrefix
	}
	text = text[len(prefix):]
	open := strings.Index(text, " (")
	if open < 0 {
		return errMissingInterface
	}
	ev.Neighbor = text[:open]
	text = text[open+2:]
	closeP := strings.Index(text, ") ")
	if closeP < 0 {
		return errUntermInterface
	}
	ev.Interface = text[:closeP]
	text = text[closeP+2:]
	text = strings.TrimPrefix(text, "(L2) ")
	comma := strings.Index(text, ", ")
	dir := text
	ev.Reason = ""
	if comma >= 0 {
		dir = text[:comma]
		ev.Reason = text[comma+2:]
	}
	switch dir {
	case "Up":
		ev.Up = true
	case "Down":
		ev.Up = false
	default:
		return errBadDirection
	}
	return nil
}

// parseIfaceText handles "... IFACE, changed state to DIR".
//
//netfail:hotpath
func parseIfaceText(ev *LinkEvent, text, prefix string) error {
	if !strings.HasPrefix(text, prefix) {
		return errBadIfacePrefix
	}
	text = text[len(prefix):]
	const sep = ", changed state to "
	i := strings.Index(text, sep)
	if i < 0 {
		return errMissingStateWords
	}
	ev.Interface = text[:i]
	ev.Neighbor = ""
	ev.Reason = ""
	switch text[i+len(sep):] {
	case "up":
		ev.Up = true
	case "down":
		ev.Up = false
	default:
		return errBadDirection
	}
	return nil
}
