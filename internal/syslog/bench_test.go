package syslog

import (
	"testing"
	"time"
)

func BenchmarkRender(b *testing.B) {
	b.ReportAllocs()
	m := AdjChange(DialectIOSXR, "riv-core-01", 421,
		time.Date(2011, 3, 3, 4, 5, 6, 789e6, time.UTC),
		"cpe-001", "TenGigE0/1/0/3", false, "hold time expired")
	for i := 0; i < b.N; i++ {
		if m.Render() == "" {
			b.Fatal("empty")
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	line := AdjChange(DialectIOSXR, "riv-core-01", 421,
		time.Date(2011, 3, 3, 4, 5, 6, 789e6, time.UTC),
		"cpe-001", "TenGigE0/1/0/3", false, "hold time expired").Render()
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(line, ref); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "msgs/op")
}

// BenchmarkParseBytes is the zero-allocation wire path: one reused
// Message, warm intern tables, input straight from a byte buffer.
func BenchmarkParseBytes(b *testing.B) {
	b.ReportAllocs()
	line := []byte(AdjChange(DialectIOSXR, "riv-core-01", 421,
		time.Date(2011, 3, 3, 4, 5, 6, 789e6, time.UTC),
		"cpe-001", "TenGigE0/1/0/3", false, "hold time expired").Render())
	ref := time.Date(2011, 3, 1, 0, 0, 0, 0, time.UTC)
	tk := NewTokenizer()
	var m Message
	b.SetBytes(int64(len(line)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tk.ParseBytes(line, ref, &m); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "msgs/op")
}

func BenchmarkParseLinkEvent(b *testing.B) {
	b.ReportAllocs()
	m := AdjChange(DialectIOS, "riv-core-01", 1,
		time.Date(2011, 3, 3, 4, 5, 6, 0, time.UTC),
		"cpe-001", "GigabitEthernet0/0/1", true, "new adjacency")
	var ev LinkEvent
	// Warm once so the intern table's first-sight symbol insertions
	// land outside the measured region: the steady state is 0 allocs.
	if err := ParseLinkEventInto(m, &ev); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ParseLinkEventInto(m, &ev); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "msgs/op")
}
