package isis

// LSP fragmentation (ISO 10589 §7.3.7): a router whose link-state
// information exceeds the maximum PDU size splits it across fragments
// 0..N, each its own LSP with the same system ID. Receivers must
// treat the originator's advertisement set as the union over all
// fragments. CENIC-scale routers fit in one fragment, but the
// machinery matters for generality and is exercised by the listener's
// fragment-aware union state.

// MaxLSPSize is the conventional maximum LSP size (originating
// bufferSize, ISO 10589 §7.3.4.2).
const MaxLSPSize = 1492

// SplitLSP distributes an LSP's variable content over as many
// fragments as needed so no encoded fragment exceeds maxBytes.
// Fragment 0 carries the hostname, areas and interface addresses;
// neighbors and prefixes fill fragments in order. The input LSP is
// not modified. maxBytes below a usable floor is clamped.
func SplitLSP(l *LSP, maxBytes int) []*LSP {
	const floor = lspHeaderLen + 64
	if maxBytes < floor {
		maxBytes = floor
	}

	mk := func(frag uint8) *LSP {
		return &LSP{
			ID:       LSPID{System: l.ID.System, Pseudonode: l.ID.Pseudonode, Fragment: frag},
			Sequence: l.Sequence,
			Lifetime: l.Lifetime,
			Attached: l.Attached,
			Overload: l.Overload,
		}
	}
	cur := mk(0)
	cur.Hostname = l.Hostname
	cur.Areas = l.Areas
	cur.IfaceAddrs = l.IfaceAddrs
	out := []*LSP{cur}

	size := func(lsp *LSP) int {
		wire, err := lsp.Encode()
		if err != nil {
			return maxBytes + 1
		}
		return len(wire)
	}

	next := func() {
		cur = mk(uint8(len(out)))
		out = append(out, cur)
	}
	for _, n := range l.Neighbors {
		cur.Neighbors = append(cur.Neighbors, n)
		if size(cur) > maxBytes {
			cur.Neighbors = cur.Neighbors[:len(cur.Neighbors)-1]
			next()
			cur.Neighbors = append(cur.Neighbors, n)
		}
	}
	for _, p := range l.Prefixes {
		cur.Prefixes = append(cur.Prefixes, p)
		if size(cur) > maxBytes {
			cur.Prefixes = cur.Prefixes[:len(cur.Prefixes)-1]
			next()
			cur.Prefixes = append(cur.Prefixes, p)
		}
	}
	return out
}
