package isis

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

// twoDatabases builds a "device" DB with systems 1..4 and a
// "listener" DB that is behind: missing system 3, stale on system 2,
// and ahead on system 4.
func twoDatabases(t *testing.T) (device, listener *Database) {
	t.Helper()
	now := time.Unix(0, 0)
	device, listener = NewDatabase(), NewDatabase()
	put := func(db *Database, idx int, seq uint32) {
		if !db.Install(NewLSP(topo.SystemIDFromIndex(idx), seq, "r", nil, nil), now) {
			t.Fatal("install failed")
		}
	}
	put(device, 1, 5)
	put(listener, 1, 5) // in sync
	put(device, 2, 9)
	put(listener, 2, 4) // listener stale
	put(device, 3, 2)   // listener missing
	put(device, 4, 1)
	put(listener, 4, 7) // listener ahead (e.g. device rebooted)
	return device, listener
}

func TestCompareCSNPFullExchange(t *testing.T) {
	device, lst := twoDatabases(t)
	csnp := device.BuildCSNP(topo.SystemIDFromIndex(99))
	plan := lst.CompareCSNP(csnp)

	// Listener must request systems 2 (stale) and 3 (missing).
	if len(plan.Request) != 2 {
		t.Fatalf("request = %+v", plan.Request)
	}
	if plan.Request[0].ID.System != topo.SystemIDFromIndex(2) ||
		plan.Request[1].ID.System != topo.SystemIDFromIndex(3) {
		t.Errorf("request order/content: %+v", plan.Request)
	}
	// Listener must flood system 4 (its copy is newer).
	if len(plan.Flood) != 1 || plan.Flood[0].ID.System != topo.SystemIDFromIndex(4) {
		t.Errorf("flood = %+v", plan.Flood)
	}

	// The PSNP solicits the peer's copies.
	psnp := plan.BuildPSNP(topo.SystemIDFromIndex(99))
	if len(psnp.Entries) != 2 {
		t.Fatalf("psnp entries = %d", len(psnp.Entries))
	}
	for _, e := range psnp.Entries {
		if e.Sequence != 0 {
			t.Errorf("psnp entry should solicit with seq 0: %+v", e)
		}
	}

	// The device serves the PSNP with its newer LSPs.
	served := device.ServePSNP(psnp)
	if len(served) != 2 {
		t.Fatalf("served = %d", len(served))
	}
	for _, lsp := range served {
		if !lst.Install(lsp, time.Unix(1, 0)) {
			t.Errorf("served LSP %v not newer", lsp.ID)
		}
	}

	// After installing, a second exchange is quiescent apart from
	// the listener's newer system-4 copy.
	plan2 := lst.CompareCSNP(device.BuildCSNP(topo.SystemIDFromIndex(99)))
	if len(plan2.Request) != 0 {
		t.Errorf("second exchange still requests: %+v", plan2.Request)
	}
	if len(plan2.Flood) != 1 {
		t.Errorf("second exchange flood = %+v", plan2.Flood)
	}
}

func TestCompareCSNPRangeLimits(t *testing.T) {
	device, lst := twoDatabases(t)
	csnp := device.BuildCSNP(topo.SystemIDFromIndex(99))
	// Narrow the range to only system 2's LSP ID.
	csnp.StartID = LSPID{System: topo.SystemIDFromIndex(2)}
	csnp.EndID = LSPID{System: topo.SystemIDFromIndex(2), Pseudonode: 0xff, Fragment: 0xff}
	var limited []LSPEntry
	for _, e := range csnp.Entries {
		if e.ID.System == topo.SystemIDFromIndex(2) {
			limited = append(limited, e)
		}
	}
	csnp.Entries = limited
	plan := lst.CompareCSNP(csnp)
	if len(plan.Request) != 1 || plan.Request[0].ID.System != topo.SystemIDFromIndex(2) {
		t.Errorf("request = %+v", plan.Request)
	}
	// System 4 is outside the range: no flooding.
	if len(plan.Flood) != 0 {
		t.Errorf("flood = %+v", plan.Flood)
	}
}

func TestServePSNPAcknowledged(t *testing.T) {
	device, _ := twoDatabases(t)
	// A PSNP acknowledging the current sequence solicits nothing.
	psnp := &PSNP{Entries: []LSPEntry{{ID: LSPID{System: topo.SystemIDFromIndex(2)}, Sequence: 9}}}
	if got := device.ServePSNP(psnp); len(got) != 0 {
		t.Errorf("served = %+v", got)
	}
	// Unknown LSP: nothing to serve.
	psnp = &PSNP{Entries: []LSPEntry{{ID: LSPID{System: topo.SystemIDFromIndex(42)}}}}
	if got := device.ServePSNP(psnp); len(got) != 0 {
		t.Errorf("served = %+v", got)
	}
}

func TestSyncPlanWireRoundTrip(t *testing.T) {
	device, lst := twoDatabases(t)
	// Whole exchange over wire encodings.
	wire, err := device.BuildCSNP(topo.SystemIDFromIndex(99)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var csnp CSNP
	if err := csnp.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	plan := lst.CompareCSNP(&csnp)
	pw, err := plan.BuildPSNP(topo.SystemIDFromIndex(99)).Encode()
	if err != nil {
		t.Fatal(err)
	}
	var psnp PSNP
	if err := psnp.DecodeFromBytes(pw); err != nil {
		t.Fatal(err)
	}
	if len(device.ServePSNP(&psnp)) != 2 {
		t.Error("wire round trip lost requests")
	}
}
