package isis

import (
	"testing"

	"netfail/internal/topo"
)

// FuzzDecode throws arbitrary bytes at the generic PDU decoder: it
// must never panic, and whatever decodes must re-encode.
func FuzzDecode(f *testing.F) {
	// Seed with every valid PDU type.
	if wire, err := sampleLSP().Encode(); err == nil {
		f.Add(wire)
	}
	if wire, err := sampleHello().Encode(); err == nil {
		f.Add(wire)
	}
	if wire, err := (&CSNP{Source: topo.SystemIDFromIndex(1), Entries: sampleEntries(3)}).Encode(); err == nil {
		f.Add(wire)
	}
	if wire, err := (&PSNP{Source: topo.SystemIDFromIndex(2), Entries: sampleEntries(2)}).Encode(); err == nil {
		f.Add(wire)
	}
	f.Add([]byte{})
	f.Add([]byte{IRPD})
	f.Add([]byte{IRPD, 27, 1, 0, 20, 1, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		pdu, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := pdu.Encode(); err != nil {
			t.Fatalf("decoded PDU fails to re-encode: %v", err)
		}
	})
}

// FuzzLSPRoundTrip: any LSP that decodes must decode identically
// after a re-encode (idempotent normalization).
func FuzzLSPRoundTrip(f *testing.F) {
	if wire, err := sampleLSP().Encode(); err == nil {
		f.Add(wire)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var a LSP
		if err := a.DecodeFromBytes(data); err != nil {
			return
		}
		wire2, err := a.Encode()
		if err != nil {
			t.Skip() // some decodable inputs exceed encode limits
		}
		var b LSP
		if err := b.DecodeFromBytes(wire2); err != nil {
			t.Fatalf("re-encoded LSP does not decode: %v", err)
		}
		if a.ID != b.ID || a.Sequence != b.Sequence || len(a.Neighbors) != len(b.Neighbors) ||
			len(a.Prefixes) != len(b.Prefixes) || a.Hostname != b.Hostname {
			t.Fatalf("round trip not stable:\n a=%v\n b=%v", a.String(), b.String())
		}
	})
}
