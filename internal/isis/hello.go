package isis

import (
	"encoding/binary"
	"fmt"

	"netfail/internal/topo"
)

// AdjacencyState is the RFC 5303 three-way handshake state carried in
// the P2P Adjacency State TLV (240).
type AdjacencyState uint8

const (
	// AdjUp means the sender sees the neighbor and the neighbor
	// reports seeing the sender.
	AdjUp AdjacencyState = 0
	// AdjInitializing means the sender sees the neighbor but has not
	// yet been confirmed by it.
	AdjInitializing AdjacencyState = 1
	// AdjDown means the sender has no neighbor state.
	AdjDown AdjacencyState = 2
)

// String names the handshake state.
func (s AdjacencyState) String() string {
	switch s {
	case AdjUp:
		return "Up"
	case AdjInitializing:
		return "Initializing"
	case AdjDown:
		return "Down"
	default:
		return fmt.Sprintf("AdjacencyState(%d)", uint8(s))
	}
}

// Hello is a point-to-point IS-IS Hello PDU (IIH).
type Hello struct {
	// CircuitType is 1 (L1), 2 (L2) or 3 (L1L2).
	CircuitType uint8
	// Source is the sending router's system ID.
	Source topo.SystemID
	// HoldingTime is the advertised hold time in seconds.
	HoldingTime uint16
	// LocalCircuitID identifies the sending interface.
	LocalCircuitID uint8

	// ThreeWay carries the RFC 5303 state; NeighborSet reports
	// whether the neighbor fields are present.
	ThreeWay          AdjacencyState
	HasThreeWay       bool
	NeighborSet       bool
	NeighborID        topo.SystemID
	NeighborCircuitID uint32
	ExtLocalCircuitID uint32
	// IfaceAddrs lists IP interface addresses (TLV 132).
	IfaceAddrs []uint32
	// Unknown preserves undecoded TLVs (e.g. padding).
	Unknown []RawTLV
}

// Type implements PDU.
func (h *Hello) Type() PDUType { return TypeP2PHello }

// Encode serializes the hello.
func (h *Hello) Encode() ([]byte, error) {
	b := appendCommonHeader(nil, TypeP2PHello, iihHeaderLen)
	b = append(b, h.CircuitType)
	b = append(b, h.Source[:]...)
	b = append(b, byte(h.HoldingTime>>8), byte(h.HoldingTime))
	b = append(b, 0, 0) // PDU length, patched below
	b = append(b, h.LocalCircuitID)

	if h.HasThreeWay {
		val := []byte{byte(h.ThreeWay)}
		var ext [4]byte
		binary.BigEndian.PutUint32(ext[:], h.ExtLocalCircuitID)
		val = append(val, ext[:]...)
		if h.NeighborSet {
			val = append(val, h.NeighborID[:]...)
			var nc [4]byte
			binary.BigEndian.PutUint32(nc[:], h.NeighborCircuitID)
			val = append(val, nc[:]...)
		}
		b = appendTLV(b, TLVP2PAdjState, val)
	}
	if len(h.IfaceAddrs) > 0 {
		var val []byte
		for _, a := range h.IfaceAddrs {
			var buf [4]byte
			binary.BigEndian.PutUint32(buf[:], a)
			val = append(val, buf[:]...)
		}
		b = appendTLV(b, TLVIPIfaceAddr, val)
	}
	for _, u := range h.Unknown {
		b = appendTLV(b, u.Type, u.Value)
	}
	if len(b) > 0xffff {
		return nil, fmt.Errorf("isis: hello exceeds maximum PDU size")
	}
	putUint16(b, commonHeaderLen+9, uint16(len(b)))
	return b, nil
}

// DecodeFromBytes parses a point-to-point IIH.
func (h *Hello) DecodeFromBytes(data []byte) error {
	typ, err := PeekType(data)
	if err != nil {
		return err
	}
	if typ != TypeP2PHello {
		return fmt.Errorf("%w: got %v, want %v", ErrUnknownType, typ, TypeP2PHello)
	}
	if len(data) < iihHeaderLen {
		return ErrTruncated
	}
	pduLen := int(binary.BigEndian.Uint16(data[commonHeaderLen+9:]))
	if pduLen > len(data) || pduLen < iihHeaderLen {
		return ErrTruncated
	}
	data = data[:pduLen]

	*h = Hello{}
	h.CircuitType = data[8]
	copy(h.Source[:], data[9:15])
	h.HoldingTime = binary.BigEndian.Uint16(data[15:])
	h.LocalCircuitID = data[19]

	return parseTLVs(data[iihHeaderLen:], func(typ TLVType, value []byte) error {
		switch typ {
		case TLVP2PAdjState:
			if len(value) < 1 {
				return ErrTruncated
			}
			h.HasThreeWay = true
			h.ThreeWay = AdjacencyState(value[0])
			if len(value) >= 5 {
				h.ExtLocalCircuitID = binary.BigEndian.Uint32(value[1:])
			}
			if len(value) >= 15 {
				h.NeighborSet = true
				copy(h.NeighborID[:], value[5:11])
				h.NeighborCircuitID = binary.BigEndian.Uint32(value[11:])
			}
		case TLVIPIfaceAddr:
			if len(value)%4 != 0 {
				return ErrTruncated
			}
			for off := 0; off < len(value); off += 4 {
				h.IfaceAddrs = append(h.IfaceAddrs, binary.BigEndian.Uint32(value[off:]))
			}
		default:
			h.Unknown = append(h.Unknown, RawTLV{Type: typ, Value: append([]byte(nil), value...)})
		}
		return nil
	})
}
