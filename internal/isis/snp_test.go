package isis

import (
	"errors"
	"reflect"
	"testing"

	"netfail/internal/topo"
)

func sampleEntries(n int) []LSPEntry {
	entries := make([]LSPEntry, n)
	for i := range entries {
		entries[i] = LSPEntry{
			Lifetime: uint16(1000 + i),
			ID:       LSPID{System: topo.SystemIDFromIndex(i + 1)},
			Sequence: uint32(i * 3),
			Checksum: uint16(i),
		}
	}
	return entries
}

func TestCSNPRoundTrip(t *testing.T) {
	orig := &CSNP{
		Source:  topo.SystemIDFromIndex(1),
		StartID: LSPID{},
		EndID:   LSPID{System: topo.SystemID{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, Pseudonode: 0xff, Fragment: 0xff},
		Entries: sampleEntries(40), // spans multiple TLVs (15 per TLV)
	}
	wire, err := orig.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got CSNP
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Errorf("round trip mismatch")
	}
}

func TestPSNPRoundTrip(t *testing.T) {
	orig := &PSNP{
		Source:  topo.SystemIDFromIndex(2),
		Entries: sampleEntries(3),
	}
	wire, err := orig.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got PSNP
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Errorf("round trip mismatch")
	}
}

func TestSNPDecodeErrors(t *testing.T) {
	var c CSNP
	if err := c.DecodeFromBytes(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("CSNP nil: %v", err)
	}
	var p PSNP
	if err := p.DecodeFromBytes([]byte{IRPD}); !errors.Is(err, ErrTruncated) {
		t.Errorf("PSNP short: %v", err)
	}
}

func TestSNPViaGenericDecode(t *testing.T) {
	cw, err := (&CSNP{Source: topo.SystemIDFromIndex(1)}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	pw, err := (&PSNP{Source: topo.SystemIDFromIndex(1)}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if pdu, err := Decode(cw); err != nil || pdu.Type() != TypeCSNPL2 {
		t.Errorf("CSNP decode: %T %v", pdu, err)
	}
	if pdu, err := Decode(pw); err != nil || pdu.Type() != TypePSNPL2 {
		t.Errorf("PSNP decode: %T %v", pdu, err)
	}
}

func TestDecodeUnknownType(t *testing.T) {
	wire := appendCommonHeader(nil, PDUType(31), commonHeaderLen)
	if _, err := Decode(wire); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want ErrUnknownType", err)
	}
}
