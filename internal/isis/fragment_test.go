package isis

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

// bigLSP builds an LSP with enough content to need several fragments
// at a small max size.
func bigLSP(neighbors, prefixes int) *LSP {
	l := NewLSP(topo.SystemIDFromIndex(1), 7, "big-router", nil, nil)
	for i := 0; i < neighbors; i++ {
		l.Neighbors = append(l.Neighbors, ISNeighbor{System: topo.SystemIDFromIndex(i + 10), Metric: 10})
	}
	for i := 0; i < prefixes; i++ {
		l.Prefixes = append(l.Prefixes, IPPrefix{Metric: 10, Addr: uint32(i) << 8, Length: 31})
	}
	return l
}

func TestSplitLSPSingleFragmentWhenSmall(t *testing.T) {
	l := bigLSP(4, 5)
	frags := SplitLSP(l, MaxLSPSize)
	if len(frags) != 1 {
		t.Fatalf("fragments = %d, want 1", len(frags))
	}
	if frags[0].ID.Fragment != 0 || frags[0].Hostname != "big-router" {
		t.Errorf("fragment 0 = %+v", frags[0])
	}
	if len(frags[0].Neighbors) != 4 || len(frags[0].Prefixes) != 5 {
		t.Errorf("content lost: %d nbrs, %d prefixes", len(frags[0].Neighbors), len(frags[0].Prefixes))
	}
}

func TestSplitLSPPreservesContent(t *testing.T) {
	l := bigLSP(40, 60)
	frags := SplitLSP(l, 400)
	if len(frags) < 2 {
		t.Fatalf("fragments = %d, want several at 400 bytes", len(frags))
	}
	var nbrs, pfxs int
	seen := make(map[uint8]bool)
	for _, f := range frags {
		if f.ID.System != l.ID.System {
			t.Errorf("fragment system mismatch")
		}
		if seen[f.ID.Fragment] {
			t.Errorf("duplicate fragment number %d", f.ID.Fragment)
		}
		seen[f.ID.Fragment] = true
		nbrs += len(f.Neighbors)
		pfxs += len(f.Prefixes)
		wire, err := f.Encode()
		if err != nil {
			t.Fatalf("fragment %d encode: %v", f.ID.Fragment, err)
		}
		if len(wire) > 400 {
			t.Errorf("fragment %d size %d exceeds 400", f.ID.Fragment, len(wire))
		}
	}
	if nbrs != len(l.Neighbors) || pfxs != len(l.Prefixes) {
		t.Errorf("content: %d/%d neighbors, %d/%d prefixes", nbrs, len(l.Neighbors), pfxs, len(l.Prefixes))
	}
	// Fragments must be numbered densely from zero.
	for i := 0; i < len(frags); i++ {
		if !seen[uint8(i)] {
			t.Errorf("fragment %d missing", i)
		}
	}
}

func TestSplitLSPFloorClamped(t *testing.T) {
	l := bigLSP(10, 10)
	frags := SplitLSP(l, 1) // absurd: clamped to a usable floor
	total := 0
	for _, f := range frags {
		total += len(f.Neighbors)
	}
	if total != 10 {
		t.Errorf("neighbors lost under clamped floor: %d", total)
	}
}

func TestSPFUnionsFragments(t *testing.T) {
	db := NewDatabase()
	now := time.Unix(0, 0)
	sys := func(i int) topo.SystemID { return topo.SystemIDFromIndex(i) }
	// System 1's adjacency to 2 lives in fragment 0, to 3 in
	// fragment 1.
	f0 := NewLSP(sys(1), 1, "r1", []ISNeighbor{{System: sys(2), Metric: 10}}, nil)
	f1 := NewLSP(sys(1), 1, "r1", []ISNeighbor{{System: sys(3), Metric: 10}}, nil)
	f1.ID.Fragment = 1
	db.Install(f0, now)
	db.Install(f1, now)
	db.Install(NewLSP(sys(2), 1, "r2", []ISNeighbor{{System: sys(1), Metric: 10}}, nil), now)
	db.Install(NewLSP(sys(3), 1, "r3", []ISNeighbor{{System: sys(1), Metric: 10}}, nil), now)

	res := RunSPF(db, sys(1))
	if !res.Reachable(sys(2)) || !res.Reachable(sys(3)) {
		t.Errorf("fragmented adjacencies not unioned: %+v", res.Routes)
	}
}
