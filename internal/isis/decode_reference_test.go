package isis

import (
	"encoding/binary"
	"fmt"
)

// This file preserves, verbatim, the LSP decode path that the in-place
// tlvCursor/arena rewrite retired: the callback TLV walk with per-TLV
// value copies and freshly allocated neighbor/prefix lists. It exists
// only as the reference implementation for the differential tests in
// decode_equivalence_test.go — do not modernize it; its value is that
// it is the old code, byte for byte.

func refDecodeLSP(l *LSP, data []byte) error {
	typ, err := PeekType(data)
	if err != nil {
		return err
	}
	if typ != TypeLSPL2 {
		return fmt.Errorf("%w: got %v, want %v", ErrUnknownType, typ, TypeLSPL2)
	}
	if len(data) < lspHeaderLen {
		return ErrTruncated
	}
	pduLen := int(binary.BigEndian.Uint16(data[commonHeaderLen:]))
	if pduLen > len(data) || pduLen < lspHeaderLen {
		return ErrTruncated
	}
	data = data[:pduLen]

	*l = LSP{}
	l.Lifetime = binary.BigEndian.Uint16(data[10:])
	l.ID = lspIDFromBytes(data[12:20])
	l.Sequence = binary.BigEndian.Uint32(data[20:])
	l.Checksum = binary.BigEndian.Uint16(data[24:])
	if l.Lifetime > 0 && !fletcherVerify(data[12:], 24-12) {
		return ErrBadChecksum
	}
	flags := data[26]
	l.Attached = flags&0x40 != 0
	l.Overload = flags&0x04 != 0

	return parseTLVs(data[lspHeaderLen:], func(typ TLVType, value []byte) error {
		switch typ {
		case TLVAreaAddresses:
			for off := 0; off < len(value); {
				alen := int(value[off])
				off++
				if off+alen > len(value) {
					return ErrTruncated
				}
				l.Areas = append(l.Areas, append([]byte(nil), value[off:off+alen]...))
				off += alen
			}
		case TLVHostname:
			l.Hostname = string(value)
		case TLVIPIfaceAddr:
			if len(value)%4 != 0 {
				return ErrTruncated
			}
			for off := 0; off < len(value); off += 4 {
				l.IfaceAddrs = append(l.IfaceAddrs, binary.BigEndian.Uint32(value[off:]))
			}
		case TLVExtISReach:
			ns, err := refParseExtISReach(value)
			if err != nil {
				return err
			}
			l.Neighbors = append(l.Neighbors, ns...)
		case TLVExtIPReach:
			ps, err := refParseExtIPReach(value)
			if err != nil {
				return err
			}
			l.Prefixes = append(l.Prefixes, ps...)
		default:
			l.Unknown = append(l.Unknown, RawTLV{Type: typ, Value: append([]byte(nil), value...)})
		}
		return nil
	})
}

func refParseExtISReach(value []byte) ([]ISNeighbor, error) {
	// Each entry occupies at least the fixed header, which bounds the
	// entry count and keeps the append below growth-free.
	out := make([]ISNeighbor, 0, len(value)/isNeighborFixedLen)
	for off := 0; off < len(value); {
		if off+isNeighborFixedLen > len(value) {
			return nil, ErrTruncated
		}
		var n ISNeighbor
		copy(n.System[:], value[off:off+6])
		n.Pseudonode = value[off+6]
		n.Metric = uint32(value[off+7])<<16 | uint32(value[off+8])<<8 | uint32(value[off+9])
		subLen := int(value[off+10])
		off += isNeighborFixedLen
		if off+subLen > len(value) {
			return nil, ErrTruncated
		}
		sub := value[off : off+subLen]
		for soff := 0; soff < len(sub); {
			if soff+2 > len(sub) {
				return nil, ErrTruncated
			}
			st := TLVType(sub[soff])
			sl := int(sub[soff+1])
			soff += 2
			if soff+sl > len(sub) {
				return nil, ErrTruncated
			}
			n.SubTLVs = append(n.SubTLVs, RawTLV{Type: st, Value: append([]byte(nil), sub[soff:soff+sl]...)})
			soff += sl
		}
		off += subLen
		out = append(out, n)
	}
	return out, nil
}

func refParseExtIPReach(value []byte) ([]IPPrefix, error) {
	// Metric + control byte is the minimum entry, bounding the count.
	out := make([]IPPrefix, 0, len(value)/5)
	for off := 0; off < len(value); {
		if off+5 > len(value) {
			return nil, ErrTruncated
		}
		var p IPPrefix
		p.Metric = uint32(value[off])<<24 | uint32(value[off+1])<<16 | uint32(value[off+2])<<8 | uint32(value[off+3])
		ctrl := value[off+4]
		p.Down = ctrl&0x80 != 0
		subPresent := ctrl&0x40 != 0
		p.Length = ctrl & 0x3f
		if p.Length > 32 {
			return nil, fmt.Errorf("isis: bad prefix length %d", p.Length)
		}
		octets := int(p.Length+7) / 8
		off += 5
		if off+octets > len(value) {
			return nil, ErrTruncated
		}
		var addr [4]byte
		copy(addr[:], value[off:off+octets])
		p.Addr = uint32(addr[0])<<24 | uint32(addr[1])<<16 | uint32(addr[2])<<8 | uint32(addr[3])
		off += octets
		if subPresent {
			if off >= len(value) {
				return nil, ErrTruncated
			}
			subLen := int(value[off])
			off++
			if off+subLen > len(value) {
				return nil, ErrTruncated
			}
			off += subLen // sub-TLVs ignored
		}
		out = append(out, p)
	}
	return out, nil
}
