package isis

import (
	"math/rand"
	"testing"
)

func TestFletcherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 16 + rng.Intn(500)
		data := make([]byte, n)
		rng.Read(data)
		ckOff := rng.Intn(n - 1)
		ck := fletcherChecksum(data, ckOff)
		data[ckOff] = byte(ck >> 8)
		data[ckOff+1] = byte(ck)
		if !fletcherVerify(data, ckOff) {
			t.Fatalf("trial %d: checksum %#04x fails verification (len=%d ckOff=%d)", trial, ck, n, ckOff)
		}
	}
}

func TestFletcherDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	misses := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		n := 16 + rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		ckOff := rng.Intn(n - 1)
		ck := fletcherChecksum(data, ckOff)
		data[ckOff] = byte(ck >> 8)
		data[ckOff+1] = byte(ck)
		// Flip one random byte outside the checksum field.
		pos := rng.Intn(n)
		for pos == ckOff || pos == ckOff+1 {
			pos = rng.Intn(n)
		}
		orig := data[pos]
		data[pos] ^= byte(1 + rng.Intn(255))
		if data[pos] == orig {
			continue
		}
		if fletcherVerify(data, ckOff) {
			// Fletcher is not perfect (e.g. 0x00 vs 0xFF aliases)
			// but should catch nearly everything.
			misses++
		}
	}
	if misses > trials/20 {
		t.Errorf("checksum missed %d/%d corruptions", misses, trials)
	}
}

func TestFletcherZeroFieldVerifies(t *testing.T) {
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(i * 7)
	}
	data[4], data[5] = 0, 0
	if !fletcherVerify(data, 4) {
		t.Error("zero checksum field should verify trivially (means unchecked)")
	}
}

func TestFletcherNonZeroOctets(t *testing.T) {
	// The check octets must never be zero; zero means "unchecked".
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		n := 14 + rng.Intn(100)
		data := make([]byte, n)
		rng.Read(data)
		ck := fletcherChecksum(data, 2)
		if byte(ck>>8) == 0 || byte(ck) == 0 {
			t.Fatalf("trial %d: zero check octet in %#04x", trial, ck)
		}
	}
}
