package isis

import (
	"container/heap"
	"sort"

	"netfail/internal/topo"
)

// SPF computes shortest paths over a link-state database, the way a
// real IS-IS speaker builds its routing table after each LSP change.
// Adjacencies are used only when advertised by both endpoints (the
// protocol's two-way connectivity check), so the routing view is
// exactly what "the routing state is ground truth" means in §3.2: if
// SPF has no path, traffic is not delivered.

// Route is one entry of the computed routing table.
type Route struct {
	// Dest is the destination system.
	Dest topo.SystemID
	// Metric is the total path cost.
	Metric uint32
	// NextHop is the first system after the source on the path;
	// equal to Dest for directly connected systems.
	NextHop topo.SystemID
	// Hops is the path length in links.
	Hops int
}

// SPFResult is the shortest-path tree from one source.
type SPFResult struct {
	Source topo.SystemID
	// Routes maps destination system to its route. Unreachable
	// systems are absent.
	Routes map[topo.SystemID]Route
}

// Reachable reports whether dest has a route.
func (r *SPFResult) Reachable(dest topo.SystemID) bool {
	_, ok := r.Routes[dest]
	return ok
}

// Sorted returns the routes ordered by destination for stable output.
func (r *SPFResult) Sorted() []Route {
	out := make([]Route, 0, len(r.Routes))
	for _, rt := range r.Routes {
		out = append(out, rt)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Dest.Less(out[j].Dest) })
	return out
}

// spfEdge is one usable (two-way-checked) adjacency.
type spfEdge struct {
	to     topo.SystemID
	metric uint32
}

// spfItem is a priority-queue entry.
type spfItem struct {
	sys     topo.SystemID
	dist    uint32
	hops    int
	nextHop topo.SystemID
	index   int
}

type spfQueue []*spfItem

func (q spfQueue) Len() int           { return len(q) }
func (q spfQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q spfQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *spfQueue) Push(x any)        { it := x.(*spfItem); it.index = len(*q); *q = append(*q, it) }
func (q *spfQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// RunSPF computes the shortest-path tree from source over the
// database's current contents (Dijkstra with the ISO 10589 two-way
// check).
func RunSPF(db *Database, source topo.SystemID) *SPFResult {
	// Collect advertised adjacency sets per system.
	// The advertisement set unions all of a system's fragments
	// (ISO 10589 §7.3.7).
	adv := make(map[topo.SystemID]map[topo.SystemID]uint32)
	for _, lsp := range db.Snapshot() {
		if lsp.ID.Pseudonode != 0 {
			continue
		}
		sys := lsp.ID.System
		m, ok := adv[sys]
		if !ok {
			m = make(map[topo.SystemID]uint32)
			adv[sys] = m
		}
		for _, n := range lsp.Neighbors {
			// Keep the best metric among parallel adjacencies.
			if cur, dup := m[n.System]; !dup || n.Metric < cur {
				m[n.System] = n.Metric
			}
		}
	}
	// Two-way check: an edge exists only if both ends advertise it.
	edges := make(map[topo.SystemID][]spfEdge, len(adv))
	for from, nbrs := range adv {
		for to, metric := range nbrs {
			back, ok := adv[to][from]
			if !ok {
				continue
			}
			m := metric
			if back > m {
				m = back
			}
			edges[from] = append(edges[from], spfEdge{to: to, metric: m})
		}
	}

	res := &SPFResult{Source: source, Routes: make(map[topo.SystemID]Route)}
	if _, ok := adv[source]; !ok {
		return res
	}
	dist := map[topo.SystemID]uint32{source: 0}
	done := make(map[topo.SystemID]bool)
	q := &spfQueue{}
	heap.Push(q, &spfItem{sys: source})
	for q.Len() > 0 {
		it := heap.Pop(q).(*spfItem)
		if done[it.sys] {
			continue
		}
		done[it.sys] = true
		if it.sys != source {
			res.Routes[it.sys] = Route{Dest: it.sys, Metric: it.dist, NextHop: it.nextHop, Hops: it.hops}
		}
		for _, e := range edges[it.sys] {
			nd := it.dist + e.metric
			if cur, seen := dist[e.to]; seen && cur <= nd {
				continue
			}
			dist[e.to] = nd
			next := it.nextHop
			if it.sys == source {
				next = e.to
			}
			heap.Push(q, &spfItem{sys: e.to, dist: nd, hops: it.hops + 1, nextHop: next})
		}
	}
	return res
}
