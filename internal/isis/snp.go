package isis

import (
	"encoding/binary"
	"fmt"

	"netfail/internal/topo"
)

// LSPEntry is one element of the LSP Entries TLV (9) carried in CSNPs
// and PSNPs: enough of an LSP's identity to compare database
// freshness.
type LSPEntry struct {
	Lifetime uint16
	ID       LSPID
	Sequence uint32
	Checksum uint16
}

const lspEntryLen = 2 + 8 + 4 + 2

func appendLSPEntries(b []byte, entries []LSPEntry) []byte {
	const perTLV = maxTLVValueLength / lspEntryLen
	for start := 0; start < len(entries); start += perTLV {
		end := start + perTLV
		if end > len(entries) {
			end = len(entries)
		}
		var val []byte
		for _, e := range entries[start:end] {
			var buf [lspEntryLen]byte
			binary.BigEndian.PutUint16(buf[0:], e.Lifetime)
			copy(buf[2:8], e.ID.System[:])
			buf[8] = e.ID.Pseudonode
			buf[9] = e.ID.Fragment
			binary.BigEndian.PutUint32(buf[10:], e.Sequence)
			binary.BigEndian.PutUint16(buf[14:], e.Checksum)
			val = append(val, buf[:]...)
		}
		b = appendTLV(b, TLVLSPEntries, val)
	}
	return b
}

func parseLSPEntries(value []byte) ([]LSPEntry, error) {
	if len(value)%lspEntryLen != 0 {
		return nil, ErrTruncated
	}
	var out []LSPEntry
	for off := 0; off < len(value); off += lspEntryLen {
		var e LSPEntry
		e.Lifetime = binary.BigEndian.Uint16(value[off:])
		e.ID = lspIDFromBytes(value[off+2 : off+10])
		e.Sequence = binary.BigEndian.Uint32(value[off+10:])
		e.Checksum = binary.BigEndian.Uint16(value[off+14:])
		out = append(out, e)
	}
	return out, nil
}

// CSNP is a complete sequence numbers PDU: a digest of the sender's
// whole LSP database over a range of LSP IDs.
type CSNP struct {
	Source  topo.SystemID
	StartID LSPID
	EndID   LSPID
	Entries []LSPEntry
}

// Type implements PDU.
func (c *CSNP) Type() PDUType { return TypeCSNPL2 }

// Encode serializes the CSNP.
func (c *CSNP) Encode() ([]byte, error) {
	b := appendCommonHeader(nil, TypeCSNPL2, csnpHeaderLen)
	b = append(b, 0, 0) // PDU length, patched below
	b = append(b, c.Source[:]...)
	b = append(b, 0) // source circuit: zero for point-to-point
	b = c.StartID.appendTo(b)
	b = c.EndID.appendTo(b)
	b = appendLSPEntries(b, c.Entries)
	if len(b) > 0xffff {
		return nil, fmt.Errorf("isis: CSNP exceeds maximum PDU size")
	}
	putUint16(b, commonHeaderLen, uint16(len(b)))
	return b, nil
}

// DecodeFromBytes parses a CSNP.
func (c *CSNP) DecodeFromBytes(data []byte) error {
	typ, err := PeekType(data)
	if err != nil {
		return err
	}
	if typ != TypeCSNPL2 {
		return fmt.Errorf("%w: got %v, want %v", ErrUnknownType, typ, TypeCSNPL2)
	}
	if len(data) < csnpHeaderLen {
		return ErrTruncated
	}
	pduLen := int(binary.BigEndian.Uint16(data[commonHeaderLen:]))
	if pduLen > len(data) || pduLen < csnpHeaderLen {
		return ErrTruncated
	}
	data = data[:pduLen]

	*c = CSNP{}
	copy(c.Source[:], data[10:16])
	c.StartID = lspIDFromBytes(data[17:25])
	c.EndID = lspIDFromBytes(data[25:33])
	return parseTLVs(data[csnpHeaderLen:], func(typ TLVType, value []byte) error {
		if typ != TLVLSPEntries {
			return nil
		}
		entries, err := parseLSPEntries(value)
		if err != nil {
			return err
		}
		c.Entries = append(c.Entries, entries...)
		return nil
	})
}

// PSNP is a partial sequence numbers PDU, used to acknowledge or
// request individual LSPs on point-to-point circuits.
type PSNP struct {
	Source  topo.SystemID
	Entries []LSPEntry
}

// Type implements PDU.
func (p *PSNP) Type() PDUType { return TypePSNPL2 }

// Encode serializes the PSNP.
func (p *PSNP) Encode() ([]byte, error) {
	b := appendCommonHeader(nil, TypePSNPL2, psnpHeaderLen)
	b = append(b, 0, 0) // PDU length, patched below
	b = append(b, p.Source[:]...)
	b = append(b, 0) // source circuit
	b = appendLSPEntries(b, p.Entries)
	if len(b) > 0xffff {
		return nil, fmt.Errorf("isis: PSNP exceeds maximum PDU size")
	}
	putUint16(b, commonHeaderLen, uint16(len(b)))
	return b, nil
}

// DecodeFromBytes parses a PSNP.
func (p *PSNP) DecodeFromBytes(data []byte) error {
	typ, err := PeekType(data)
	if err != nil {
		return err
	}
	if typ != TypePSNPL2 {
		return fmt.Errorf("%w: got %v, want %v", ErrUnknownType, typ, TypePSNPL2)
	}
	if len(data) < psnpHeaderLen {
		return ErrTruncated
	}
	pduLen := int(binary.BigEndian.Uint16(data[commonHeaderLen:]))
	if pduLen > len(data) || pduLen < psnpHeaderLen {
		return ErrTruncated
	}
	data = data[:pduLen]

	*p = PSNP{}
	copy(p.Source[:], data[10:16])
	return parseTLVs(data[psnpHeaderLen:], func(typ TLVType, value []byte) error {
		if typ != TLVLSPEntries {
			return nil
		}
		entries, err := parseLSPEntries(value)
		if err != nil {
			return err
		}
		p.Entries = append(p.Entries, entries...)
		return nil
	})
}
