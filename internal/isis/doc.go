// Package isis implements the subset of the IS-IS link-state routing
// protocol (ISO 10589 with the RFC 1195 / RFC 5305 IP extensions)
// needed to reproduce the paper's measurement apparatus: binary
// encoding and decoding of LSP, point-to-point IIH, CSNP and PSNP
// PDUs; the TLVs listed in Table 1 of the paper (Area Addresses,
// Extended IS Reachability, IP Interface Address, Extended IP
// Reachability, and Dynamic Hostname); the ISO 8473 Fletcher
// checksum; a link-state database with sequence-number ordering and
// lifetime aging; and the three-way point-to-point adjacency state
// machine.
//
// Encoding follows the gopacket convention: every PDU type offers
// Encode (serialize to wire bytes) and DecodeFromBytes; Decode
// dispatches on the PDU type in the common header.
package isis
