package isis

import (
	"errors"
	"fmt"
	"slices"
	"strconv"

	"netfail/internal/intern"
	"netfail/internal/topo"
)

// symbols interns the decode vocabulary — hostnames, neighbor keys,
// prefix keys. A campaign's LSP stream repeats the same few hundred
// symbols millions of times; interning makes every warm sighting a
// lock-free map probe instead of an allocation, and the canonical
// strings double as cheap map keys in the listener's diff sets. The
// limit bounds the table against corrupted captures: past it, unseen
// symbols degrade to plain allocation instead of growing the table.
var symbols = intern.Table{Limit: 1 << 16}

const hexDigits = "0123456789abcdef"

// appendSystemID appends the canonical lowercase "xxxx.xxxx.xxxx"
// rendering of a system ID, byte-identical to topo.SystemID.String
// without the fmt machinery.
//
//netfail:hotpath
func appendSystemID(dst []byte, s topo.SystemID) []byte {
	for i := 0; i < len(s); i++ {
		if i == 2 || i == 4 {
			dst = append(dst, '.')
		}
		dst = append(dst, hexDigits[s[i]>>4], hexDigits[s[i]&0xf])
	}
	return dst
}

// TLVType identifies a type/length/value field inside a PDU.
type TLVType uint8

// TLV types used in this implementation (paper Table 1 plus the
// machinery TLVs needed by hellos and SNPs).
const (
	TLVAreaAddresses  TLVType = 1
	TLVLSPEntries     TLVType = 9
	TLVExtISReach     TLVType = 22
	TLVProtocols      TLVType = 129
	TLVIPIfaceAddr    TLVType = 132
	TLVExtIPReach     TLVType = 135
	TLVHostname       TLVType = 137
	TLVP2PAdjState    TLVType = 240
	TLVPadding        TLVType = 8
	maxTLVValueLength         = 255
)

// RawTLV is an undecoded type/length/value field. Unknown TLVs are
// preserved so a listener can skip them, as a real implementation
// must.
type RawTLV struct {
	Type  TLVType
	Value []byte
}

// appendTLV writes one TLV; it panics if value exceeds 255 bytes
// because callers are responsible for splitting long lists.
func appendTLV(b []byte, typ TLVType, value []byte) []byte {
	if len(value) > maxTLVValueLength {
		panic(fmt.Sprintf("isis: TLV %d value length %d exceeds 255", typ, len(value)))
	}
	b = append(b, byte(typ), byte(len(value)))
	return append(b, value...)
}

// parseTLVs walks the TLV region, invoking fn for each field. It
// returns ErrTruncated if a declared length overruns the buffer.
// Cold-path PDUs (hellos, SNPs) use this callback form; the LSP hot
// path walks a tlvCursor instead.
func parseTLVs(data []byte, fn func(typ TLVType, value []byte) error) error {
	cur := tlvCursor{data: data}
	for {
		typ, value, ok := cur.next()
		if !ok {
			break
		}
		if err := fn(typ, value); err != nil {
			return err
		}
	}
	return cur.err
}

// tlvCursor is an in-place iterator over a TLV region: no callback,
// no closure, no per-TLV bookkeeping beyond one offset. The yielded
// value slices alias the input buffer; callers that retain them must
// copy (the LSP decode copies into its arena).
type tlvCursor struct {
	data []byte
	off  int
	err  error
}

// next yields the next TLV. ok is false at the end of the region or
// on framing error; the cursor's err field distinguishes the two.
//
//netfail:hotpath
func (c *tlvCursor) next() (typ TLVType, value []byte, ok bool) {
	if c.off >= len(c.data) || c.err != nil {
		return 0, nil, false
	}
	if c.off+2 > len(c.data) {
		c.err = ErrTruncated
		return 0, nil, false
	}
	typ = TLVType(c.data[c.off])
	length := int(c.data[c.off+1])
	c.off += 2
	if c.off+length > len(c.data) {
		c.err = ErrTruncated
		return 0, nil, false
	}
	value = c.data[c.off : c.off+length]
	c.off += length
	return typ, value, true
}

// SubTLVLinkIDs is the Link Local/Remote Identifiers sub-TLV
// (RFC 5307 §1.1): eight bytes identifying the circuit, which is what
// lets a receiver differentiate parallel adjacencies between the same
// router pair — the capability CENIC's devices did not run (paper
// §3.4, footnote 1).
const SubTLVLinkIDs TLVType = 4

// ISNeighbor is one entry of the Extended IS Reachability TLV
// (RFC 5305 §3): a neighbor system ID (plus pseudonode octet), a
// 3-byte wide metric, and optional sub-TLVs.
type ISNeighbor struct {
	System     topo.SystemID
	Pseudonode uint8
	Metric     uint32 // 24-bit wide metric
	SubTLVs    []RawTLV
}

// Key returns the neighbor identity the listener diffs between
// successive LSPs. When the entry carries link identifiers the key
// includes them, so parallel adjacencies become distinguishable.
// Keys are built on the stack ("sysid.pn" plus an optional "#local")
// and interned, so the warm path allocates nothing.
//
//netfail:hotpath
func (n ISNeighbor) Key() string {
	var buf [32]byte
	b := n.appendPlainKey(buf[:0])
	if local, _, ok := n.LinkIDs(); ok {
		b = append(b, '#')
		for shift := 28; shift >= 0; shift -= 4 {
			b = append(b, hexDigits[(local>>uint(shift))&0xf])
		}
	}
	return symbols.Intern(b)
}

// PlainKey returns the identity without link identifiers.
//
//netfail:hotpath
func (n ISNeighbor) PlainKey() string {
	var buf [32]byte
	return symbols.Intern(n.appendPlainKey(buf[:0]))
}

// appendPlainKey appends "xxxx.xxxx.xxxx.pn" (system ID plus the
// two-hex-digit pseudonode octet).
//
//netfail:hotpath
func (n *ISNeighbor) appendPlainKey(dst []byte) []byte {
	dst = appendSystemID(dst, n.System)
	return append(dst, '.', hexDigits[n.Pseudonode>>4], hexDigits[n.Pseudonode&0xf])
}

// SetLinkIDs attaches the RFC 5307 link local/remote identifiers.
func (n *ISNeighbor) SetLinkIDs(local, remote uint32) {
	val := make([]byte, 8)
	val[0], val[1], val[2], val[3] = byte(local>>24), byte(local>>16), byte(local>>8), byte(local)
	val[4], val[5], val[6], val[7] = byte(remote>>24), byte(remote>>16), byte(remote>>8), byte(remote)
	for i, s := range n.SubTLVs {
		if s.Type == SubTLVLinkIDs {
			n.SubTLVs[i].Value = val
			return
		}
	}
	n.SubTLVs = append(n.SubTLVs, RawTLV{Type: SubTLVLinkIDs, Value: val})
}

// LinkIDs extracts the link identifiers, if present.
func (n ISNeighbor) LinkIDs() (local, remote uint32, ok bool) {
	for _, s := range n.SubTLVs {
		if s.Type == SubTLVLinkIDs && len(s.Value) >= 8 {
			v := s.Value
			local = uint32(v[0])<<24 | uint32(v[1])<<16 | uint32(v[2])<<8 | uint32(v[3])
			remote = uint32(v[4])<<24 | uint32(v[5])<<16 | uint32(v[6])<<8 | uint32(v[7])
			return local, remote, true
		}
	}
	return 0, 0, false
}

const isNeighborFixedLen = 6 + 1 + 3 + 1 // sysID + pseudonode + metric + subTLV len

func appendExtISReach(b []byte, neighbors []ISNeighbor) []byte {
	// Split entries across TLVs so no value exceeds 255 bytes.
	for start := 0; start < len(neighbors); {
		var val []byte
		end := start
		for end < len(neighbors) {
			n := neighbors[end]
			subLen := 0
			for _, s := range n.SubTLVs {
				subLen += 2 + len(s.Value)
			}
			entry := isNeighborFixedLen + subLen
			if len(val)+entry > maxTLVValueLength {
				break
			}
			val = append(val, n.System[:]...)
			val = append(val, n.Pseudonode)
			val = append(val, byte(n.Metric>>16), byte(n.Metric>>8), byte(n.Metric))
			val = append(val, byte(subLen))
			for _, s := range n.SubTLVs {
				val = append(val, byte(s.Type), byte(len(s.Value)))
				val = append(val, s.Value...)
			}
			end++
		}
		if end == start {
			panic("isis: single IS reachability entry exceeds TLV capacity")
		}
		b = appendTLV(b, TLVExtISReach, val)
		start = end
	}
	return b
}

// decodeExtISReach appends one TLV 22 value's entries to l.Neighbors,
// walking the wire bytes in place: neighbor slots come from the reused
// backing array (nextNeighbor), and sub-TLV values are copied into the
// LSP's arena rather than individually allocated.
//
//netfail:hotpath
func (l *LSP) decodeExtISReach(value []byte) error {
	// Each entry occupies at least the fixed header, which bounds the
	// entry count; growing up front keeps the slot appends growth-free.
	l.Neighbors = slices.Grow(l.Neighbors, len(value)/isNeighborFixedLen)
	for off := 0; off < len(value); {
		if off+isNeighborFixedLen > len(value) {
			return ErrTruncated
		}
		n := l.nextNeighbor()
		copy(n.System[:], value[off:off+6])
		n.Pseudonode = value[off+6]
		n.Metric = uint32(value[off+7])<<16 | uint32(value[off+8])<<8 | uint32(value[off+9])
		subLen := int(value[off+10])
		off += isNeighborFixedLen
		if off+subLen > len(value) {
			return ErrTruncated
		}
		sub := value[off : off+subLen]
		for soff := 0; soff < len(sub); {
			if soff+2 > len(sub) {
				return ErrTruncated
			}
			st := TLVType(sub[soff])
			sl := int(sub[soff+1])
			soff += 2
			if soff+sl > len(sub) {
				return ErrTruncated
			}
			n.SubTLVs = append(n.SubTLVs, RawTLV{Type: st, Value: l.arenaCopy(sub[soff : soff+sl])})
			soff += sl
		}
		off += subLen
	}
	return nil
}

// IPPrefix is one entry of the Extended IP Reachability TLV
// (RFC 5305 §4): a 32-bit metric and a variable-length prefix.
type IPPrefix struct {
	Metric uint32
	// Addr is the network address in host order; bits beyond Length
	// must be zero.
	Addr uint32
	// Length is the prefix length, 0–32.
	Length uint8
	// Down is the up/down bit used for interlevel leaking.
	Down bool
}

// String renders "a.b.c.d/len".
func (p IPPrefix) String() string {
	return fmt.Sprintf("%s/%d", topo.FormatIPv4(p.Addr), p.Length)
}

// Key returns the prefix identity without the metric: the same
// "a.b.c.d/len" rendering as String, built on the stack and interned
// so the listener's per-install diff sets allocate nothing warm.
//
//netfail:hotpath
func (p IPPrefix) Key() string {
	var buf [20]byte // "255.255.255.255/32" is 18 bytes
	b := strconv.AppendUint(buf[:0], uint64(p.Addr>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(p.Addr>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(p.Addr>>8&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(p.Addr&0xff), 10)
	b = append(b, '/')
	b = strconv.AppendUint(b, uint64(p.Length), 10)
	return symbols.Intern(b)
}

func appendExtIPReach(b []byte, prefixes []IPPrefix) []byte {
	for start := 0; start < len(prefixes); {
		var val []byte
		end := start
		for end < len(prefixes) {
			p := prefixes[end]
			octets := int(p.Length+7) / 8
			entry := 4 + 1 + octets
			if len(val)+entry > maxTLVValueLength {
				break
			}
			var metric [4]byte
			putUint32(metric[:], 0, p.Metric)
			val = append(val, metric[:]...)
			ctrl := p.Length & 0x3f
			if p.Down {
				ctrl |= 0x80
			}
			val = append(val, ctrl)
			var addr [4]byte
			putUint32(addr[:], 0, p.Addr)
			val = append(val, addr[:octets]...)
			end++
		}
		if end == start {
			panic("isis: single IP reachability entry exceeds TLV capacity")
		}
		b = appendTLV(b, TLVExtIPReach, val)
		start = end
	}
	return b
}

// errBadPrefixLen is preconstructed so the reject path stays
// allocation-free on corrupted captures.
var errBadPrefixLen = errors.New("isis: bad prefix length")

// decodeExtIPReach appends one TLV 135 value's entries to l.Prefixes
// in place; prefix entries are plain values, so the reused backing
// array is the only storage involved.
//
//netfail:hotpath
func (l *LSP) decodeExtIPReach(value []byte) error {
	// Metric + control byte is the minimum entry, bounding the count.
	l.Prefixes = slices.Grow(l.Prefixes, len(value)/5)
	for off := 0; off < len(value); {
		if off+5 > len(value) {
			return ErrTruncated
		}
		var p IPPrefix
		p.Metric = uint32(value[off])<<24 | uint32(value[off+1])<<16 | uint32(value[off+2])<<8 | uint32(value[off+3])
		ctrl := value[off+4]
		p.Down = ctrl&0x80 != 0
		subPresent := ctrl&0x40 != 0
		p.Length = ctrl & 0x3f
		if p.Length > 32 {
			return errBadPrefixLen
		}
		octets := int(p.Length+7) / 8
		off += 5
		if off+octets > len(value) {
			return ErrTruncated
		}
		var addr [4]byte
		copy(addr[:], value[off:off+octets])
		p.Addr = uint32(addr[0])<<24 | uint32(addr[1])<<16 | uint32(addr[2])<<8 | uint32(addr[3])
		off += octets
		if subPresent {
			if off >= len(value) {
				return ErrTruncated
			}
			subLen := int(value[off])
			off++
			if off+subLen > len(value) {
				return ErrTruncated
			}
			off += subLen // sub-TLVs ignored
		}
		l.Prefixes = append(l.Prefixes, p)
	}
	return nil
}
