package isis

import (
	"time"

	"netfail/internal/topo"
)

// Adjacency runs the RFC 5303 three-way handshake state machine for
// one point-to-point circuit. The simulated routers drive it with
// received hellos, hold-timer expiry, and interface up/down events;
// its Up/Down edges are what ultimately appear in both data sources.
type Adjacency struct {
	// Local and Neighbor identify the two ends.
	Local    topo.SystemID
	Neighbor topo.SystemID
	// HoldTime is the negotiated hold time.
	HoldTime time.Duration

	state    AdjacencyState
	lastSeen time.Time
}

// NewAdjacency creates an adjacency in the Down state.
func NewAdjacency(local, neighbor topo.SystemID, hold time.Duration) *Adjacency {
	return &Adjacency{Local: local, Neighbor: neighbor, HoldTime: hold, state: AdjDown}
}

// State returns the current three-way state.
func (a *Adjacency) State() AdjacencyState { return a.state }

// HandleHello processes a received point-to-point IIH and returns
// true if the adjacency state changed. now is the receive time.
func (a *Adjacency) HandleHello(h *Hello, now time.Time) bool {
	if h.Source != a.Neighbor {
		return false
	}
	a.lastSeen = now
	old := a.state
	seesUs := h.HasThreeWay && h.NeighborSet && h.NeighborID == a.Local
	switch a.state {
	case AdjDown:
		if seesUs {
			a.state = AdjUp
		} else {
			a.state = AdjInitializing
		}
	case AdjInitializing:
		if seesUs {
			a.state = AdjUp
		}
	case AdjUp:
		if h.HasThreeWay && h.NeighborSet && h.NeighborID != a.Local {
			// Neighbor is talking three-way to someone else: reset.
			a.state = AdjDown
		}
	}
	return a.state != old
}

// CheckHold expires the adjacency if no hello has arrived within the
// hold time; it returns true if the adjacency went down.
func (a *Adjacency) CheckHold(now time.Time) bool {
	if a.state == AdjDown {
		return false
	}
	if now.Sub(a.lastSeen) >= a.HoldTime {
		a.state = AdjDown
		return true
	}
	return false
}

// LinkDown forces the adjacency down (interface failure); it returns
// true if the state changed.
func (a *Adjacency) LinkDown() bool {
	if a.state == AdjDown {
		return false
	}
	a.state = AdjDown
	return true
}

// BuildHello constructs the IIH this end should send given its
// current state.
func (a *Adjacency) BuildHello(circuitID uint8) *Hello {
	h := &Hello{
		CircuitType:    2, // level 2 only
		Source:         a.Local,
		HoldingTime:    uint16(a.HoldTime / time.Second),
		LocalCircuitID: circuitID,
		HasThreeWay:    true,
		ThreeWay:       a.state,
	}
	if a.state != AdjDown {
		h.NeighborSet = true
		h.NeighborID = a.Neighbor
	}
	return h
}
