package isis

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

// spfTestDB builds a database for the topology
//
//	s1 --10-- s2 --10-- s3
//	  \------40--------/
//
// where s1..s3 are systems 1..3.
func spfTestDB(t *testing.T, withDirectLink bool) *Database {
	t.Helper()
	db := NewDatabase()
	now := time.Unix(0, 0)
	sys := func(i int) topo.SystemID { return topo.SystemIDFromIndex(i) }
	install := func(owner int, nbrs ...ISNeighbor) {
		lsp := NewLSP(sys(owner), 1, "r", nbrs, nil)
		if !db.Install(lsp, now) {
			t.Fatal("install failed")
		}
	}
	n1 := []ISNeighbor{{System: sys(2), Metric: 10}}
	n2 := []ISNeighbor{{System: sys(1), Metric: 10}, {System: sys(3), Metric: 10}}
	n3 := []ISNeighbor{{System: sys(2), Metric: 10}}
	if withDirectLink {
		n1 = append(n1, ISNeighbor{System: sys(3), Metric: 40})
		n3 = append(n3, ISNeighbor{System: sys(1), Metric: 40})
	}
	install(1, n1...)
	install(2, n2...)
	install(3, n3...)
	return db
}

func TestSPFShortestPath(t *testing.T) {
	db := spfTestDB(t, true)
	res := RunSPF(db, topo.SystemIDFromIndex(1))
	r3, ok := res.Routes[topo.SystemIDFromIndex(3)]
	if !ok {
		t.Fatal("s3 unreachable")
	}
	// Via s2 (10+10=20), not the direct 40-cost link.
	if r3.Metric != 20 || r3.Hops != 2 {
		t.Errorf("route to s3 = %+v, want metric 20 hops 2", r3)
	}
	if r3.NextHop != topo.SystemIDFromIndex(2) {
		t.Errorf("next hop = %v, want s2", r3.NextHop)
	}
	r2 := res.Routes[topo.SystemIDFromIndex(2)]
	if r2.Metric != 10 || r2.NextHop != topo.SystemIDFromIndex(2) {
		t.Errorf("route to s2 = %+v", r2)
	}
}

func TestSPFTwoWayCheck(t *testing.T) {
	// s3 advertises s1 but s1 does not advertise s3 (one-way): the
	// direct edge must not be used.
	db := NewDatabase()
	now := time.Unix(0, 0)
	sys := func(i int) topo.SystemID { return topo.SystemIDFromIndex(i) }
	db.Install(NewLSP(sys(1), 1, "r1", []ISNeighbor{{System: sys(2), Metric: 10}}, nil), now)
	db.Install(NewLSP(sys(2), 1, "r2", []ISNeighbor{{System: sys(1), Metric: 10}}, nil), now)
	db.Install(NewLSP(sys(3), 1, "r3", []ISNeighbor{{System: sys(1), Metric: 5}}, nil), now)
	res := RunSPF(db, sys(1))
	if res.Reachable(sys(3)) {
		t.Error("one-way adjacency used by SPF")
	}
	if !res.Reachable(sys(2)) {
		t.Error("two-way adjacency not used")
	}
}

func TestSPFPartition(t *testing.T) {
	db := spfTestDB(t, false)
	// Withdraw the s2<->s3 adjacency from s2's side: s3 unreachable.
	sys := func(i int) topo.SystemID { return topo.SystemIDFromIndex(i) }
	lsp := NewLSP(sys(2), 2, "r", []ISNeighbor{{System: sys(1), Metric: 10}}, nil)
	db.Install(lsp, time.Unix(1, 0))
	res := RunSPF(db, sys(1))
	if res.Reachable(sys(3)) {
		t.Error("s3 should be unreachable after withdrawal")
	}
}

func TestSPFUnknownSource(t *testing.T) {
	db := spfTestDB(t, false)
	res := RunSPF(db, topo.SystemIDFromIndex(99))
	if len(res.Routes) != 0 {
		t.Errorf("routes from unknown source: %+v", res.Routes)
	}
}

func TestSPFSortedStable(t *testing.T) {
	db := spfTestDB(t, true)
	res := RunSPF(db, topo.SystemIDFromIndex(1))
	routes := res.Sorted()
	for i := 1; i < len(routes); i++ {
		if !routes[i-1].Dest.Less(routes[i].Dest) {
			t.Error("routes not sorted")
		}
	}
}

func TestSPFParallelLinksUseBestMetric(t *testing.T) {
	db := NewDatabase()
	now := time.Unix(0, 0)
	sys := func(i int) topo.SystemID { return topo.SystemIDFromIndex(i) }
	// Two parallel adjacencies with metrics 30 and 10.
	nbrs12 := []ISNeighbor{{System: sys(2), Metric: 30}, {System: sys(2), Metric: 10}}
	nbrs21 := []ISNeighbor{{System: sys(1), Metric: 30}, {System: sys(1), Metric: 10}}
	db.Install(NewLSP(sys(1), 1, "r1", nbrs12, nil), now)
	db.Install(NewLSP(sys(2), 1, "r2", nbrs21, nil), now)
	res := RunSPF(db, sys(1))
	if got := res.Routes[sys(2)].Metric; got != 10 {
		t.Errorf("metric = %d, want 10 (best of parallels)", got)
	}
}
