package isis

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"netfail/internal/faultinject"
	"netfail/internal/topo"
)

// Differential tests pinning the in-place decode to the retired
// reference implementation (decode_reference_test.go): same
// accept/reject decision and identical decoded structure over valid
// encodings, corrupted captures, and arbitrary fuzz input — with the
// decode target both fresh and dirty from previous decodes, since slot
// reuse is exactly where a stale-state bug would hide.

// sameLSP compares the exported decode output of two LSPs, tolerating
// nil versus empty slices (a reused LSP holds empty backing arrays
// where a fresh decode holds nil).
func sameLSP(a, b *LSP) string {
	if a.ID != b.ID || a.Sequence != b.Sequence || a.Lifetime != b.Lifetime || a.Checksum != b.Checksum {
		return fmt.Sprintf("header: %+v vs %+v", a, b)
	}
	if a.Attached != b.Attached || a.Overload != b.Overload {
		return "flags differ"
	}
	if a.Hostname != b.Hostname {
		return fmt.Sprintf("hostname: %q vs %q", a.Hostname, b.Hostname)
	}
	if len(a.Areas) != len(b.Areas) {
		return fmt.Sprintf("area count: %d vs %d", len(a.Areas), len(b.Areas))
	}
	for i := range a.Areas {
		if !bytes.Equal(a.Areas[i], b.Areas[i]) {
			return fmt.Sprintf("area %d: %x vs %x", i, a.Areas[i], b.Areas[i])
		}
	}
	if len(a.IfaceAddrs) != len(b.IfaceAddrs) {
		return fmt.Sprintf("iface addr count: %d vs %d", len(a.IfaceAddrs), len(b.IfaceAddrs))
	}
	for i := range a.IfaceAddrs {
		if a.IfaceAddrs[i] != b.IfaceAddrs[i] {
			return fmt.Sprintf("iface addr %d differs", i)
		}
	}
	if len(a.Neighbors) != len(b.Neighbors) {
		return fmt.Sprintf("neighbor count: %d vs %d", len(a.Neighbors), len(b.Neighbors))
	}
	for i := range a.Neighbors {
		x, y := &a.Neighbors[i], &b.Neighbors[i]
		if x.System != y.System || x.Pseudonode != y.Pseudonode || x.Metric != y.Metric {
			return fmt.Sprintf("neighbor %d: %+v vs %+v", i, x, y)
		}
		if len(x.SubTLVs) != len(y.SubTLVs) {
			return fmt.Sprintf("neighbor %d sub-TLV count: %d vs %d", i, len(x.SubTLVs), len(y.SubTLVs))
		}
		for j := range x.SubTLVs {
			if x.SubTLVs[j].Type != y.SubTLVs[j].Type || !bytes.Equal(x.SubTLVs[j].Value, y.SubTLVs[j].Value) {
				return fmt.Sprintf("neighbor %d sub-TLV %d differs", i, j)
			}
		}
	}
	if len(a.Prefixes) != len(b.Prefixes) {
		return fmt.Sprintf("prefix count: %d vs %d", len(a.Prefixes), len(b.Prefixes))
	}
	for i := range a.Prefixes {
		if a.Prefixes[i] != b.Prefixes[i] {
			return fmt.Sprintf("prefix %d: %+v vs %+v", i, a.Prefixes[i], b.Prefixes[i])
		}
	}
	if len(a.Unknown) != len(b.Unknown) {
		return fmt.Sprintf("unknown TLV count: %d vs %d", len(a.Unknown), len(b.Unknown))
	}
	for i := range a.Unknown {
		if a.Unknown[i].Type != b.Unknown[i].Type || !bytes.Equal(a.Unknown[i].Value, b.Unknown[i].Value) {
			return fmt.Sprintf("unknown TLV %d differs", i)
		}
	}
	return ""
}

// checkDecodeEquivalence runs the reference and in-place decoders over
// data — the latter into both a fresh and a caller-dirtied LSP — and
// requires identical accept/reject decisions and identical output.
// Error contents are not compared: the rewrite replaced dynamic error
// strings with preconstructed ones.
func checkDecodeEquivalence(t testing.TB, data []byte, reused *LSP) {
	t.Helper()
	var ref LSP
	refErr := refDecodeLSP(&ref, data)
	var fresh LSP
	freshErr := fresh.DecodeFromBytes(data)
	if (refErr == nil) != (freshErr == nil) {
		t.Fatalf("accept/reject diverges on %x: reference err=%v, rewrite err=%v", data, refErr, freshErr)
	}
	reusedErr := reused.DecodeFromBytes(data)
	if (refErr == nil) != (reusedErr == nil) {
		t.Fatalf("accept/reject diverges on reused LSP for %x: reference err=%v, rewrite err=%v", data, refErr, reusedErr)
	}
	if refErr != nil {
		return
	}
	if diff := sameLSP(&ref, &fresh); diff != "" {
		t.Fatalf("fresh decode diverges on %x: %s", data, diff)
	}
	if diff := sameLSP(&ref, reused); diff != "" {
		t.Fatalf("reused decode diverges on %x: %s", data, diff)
	}
}

// equivalenceLSPs spans the decoder's structure space: minimal,
// typical, TLV-splitting, link-identified, unknown-TLV-bearing, and
// zero-lifetime (checksum-exempt) LSPs.
func equivalenceLSPs() []*LSP {
	withLinks := benchLSP()
	for i := range withLinks.Neighbors {
		withLinks.Neighbors[i].SetLinkIDs(uint32(i+1), uint32(i+100))
	}
	withUnknown := sampleLSP()
	withUnknown.Unknown = []RawTLV{{Type: 222, Value: []byte{9, 9, 9}}, {Type: 250, Value: nil}}
	expired := sampleLSP()
	expired.Lifetime = 0
	big := sampleLSP()
	big.Neighbors = nil
	big.Prefixes = nil
	for i := 0; i < 60; i++ {
		big.Neighbors = append(big.Neighbors, ISNeighbor{System: topo.SystemIDFromIndex(i + 100), Metric: uint32(i)})
		big.Prefixes = append(big.Prefixes, IPPrefix{Metric: uint32(i), Addr: uint32(i) << 8, Length: 24, Down: i%3 == 0})
	}
	return []*LSP{
		NewLSP(topo.SystemIDFromIndex(1), 1, "", nil, nil),
		sampleLSP(),
		benchLSP(),
		withLinks,
		withUnknown,
		expired,
		big,
	}
}

func TestDecodeMatchesReferenceOnCorruptedCorpus(t *testing.T) {
	var reused LSP
	for _, l := range equivalenceLSPs() {
		wire, err := l.Encode()
		if err != nil {
			t.Fatal(err)
		}
		checkDecodeEquivalence(t, wire, &reused)
		for seed := int64(1); seed <= 8; seed++ {
			corrupted, _ := faultinject.Corrupt(wire, faultinject.Plan{
				Seed: seed,
				Rate: 0.7,
				Modes: []faultinject.Mode{
					faultinject.BitFlip, faultinject.TornWrite, faultinject.TruncateFinal,
				},
			})
			checkDecodeEquivalence(t, corrupted, &reused)
		}
	}
}

// TestLSPDecodeReuseMatchesFresh pins the scratch-reuse contract
// directly: decoding B into an LSP that previously decoded a larger A
// (or failed a corrupt decode) yields exactly what a fresh decode of B
// yields.
func TestLSPDecodeReuseMatchesFresh(t *testing.T) {
	lsps := equivalenceLSPs()
	big, err := lsps[len(lsps)-1].Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lsps {
		wire, err := l.Encode()
		if err != nil {
			t.Fatal(err)
		}
		var fresh LSP
		if err := fresh.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}

		var reused LSP
		if err := reused.DecodeFromBytes(big); err != nil {
			t.Fatal(err)
		}
		if err := reused.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
		if diff := sameLSP(&fresh, &reused); diff != "" {
			t.Errorf("decode after big LSP diverges: %s", diff)
		}

		// A failed decode must not poison the next one.
		bad := append([]byte(nil), big...)
		bad[len(bad)-1] ^= 0x55 // damage the tail: checksum or TLV framing breaks
		_ = reused.DecodeFromBytes(bad)
		if err := reused.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
		if diff := sameLSP(&fresh, &reused); diff != "" {
			t.Errorf("decode after failed decode diverges: %s", diff)
		}
	}
}

// TestLSPDecodeDoesNotAliasInput pins arena ownership: a decoded LSP
// retains no view of the caller's buffer, which the listener relies on
// when it installs decoded LSPs while the read buffer is recycled.
func TestLSPDecodeDoesNotAliasInput(t *testing.T) {
	l := equivalenceLSPs()[4] // unknown-TLV variant: exercises every copy path
	wire, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got, want LSP
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if err := want.DecodeFromBytes(append([]byte(nil), wire...)); err != nil {
		t.Fatal(err)
	}
	for i := range wire {
		wire[i] = 0xff
	}
	if diff := sameLSP(&want, &got); diff != "" {
		t.Errorf("decoded LSP aliases its input: %s", diff)
	}
}

func FuzzLSPDecodeMatchesReference(f *testing.F) {
	for _, l := range equivalenceLSPs() {
		wire, err := l.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
		corrupted, _ := faultinject.Corrupt(wire, faultinject.Plan{Seed: 3, Rate: 0.9})
		f.Add(corrupted)
	}
	dirty, err := equivalenceLSPs()[2].Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Dirty the reused LSP first so slot reuse is always exercised.
		var reused LSP
		if err := reused.DecodeFromBytes(dirty); err != nil {
			t.Fatal(err)
		}
		checkDecodeEquivalence(t, data, &reused)
	})
}

// TestKeysMatchFmtReference pins the hand-rolled key renderings to the
// fmt originals they replaced, over the full value space.
func TestKeysMatchFmtReference(t *testing.T) {
	neighbor := func(sys [6]byte, pn uint8, local, remote uint32, withLinks bool) bool {
		n := ISNeighbor{System: topo.SystemID(sys), Pseudonode: pn}
		plain := fmt.Sprintf("%s.%02x", n.System, n.Pseudonode)
		key := plain
		if withLinks {
			n.SetLinkIDs(local, remote)
			key = fmt.Sprintf("%s.%02x#%08x", n.System, n.Pseudonode, local)
		}
		return n.Key() == key && n.PlainKey() == plain
	}
	if err := quick.Check(neighbor, nil); err != nil {
		t.Error(err)
	}
	prefix := func(addr uint32, length uint8) bool {
		p := IPPrefix{Addr: addr, Length: length % 33}
		return p.Key() == fmt.Sprintf("%s/%d", topo.FormatIPv4(p.Addr), p.Length) && p.Key() == p.String()
	}
	if err := quick.Check(prefix, nil); err != nil {
		t.Error(err)
	}
}
