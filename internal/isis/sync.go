package isis

import "sort"

// Database synchronization per ISO 10589 §7.3.15/§7.3.17: on a
// point-to-point circuit the two speakers exchange CSNPs describing
// their databases; each side requests what it lacks with a PSNP and
// floods what the other lacks. This is how a passive listener (PyRT,
// or cmd/netfail-listener) catches up after joining or after an
// outage.

// SyncPlan is the outcome of comparing a local database against a
// received CSNP.
type SyncPlan struct {
	// Request lists entries the peer has that are newer than (or
	// absent from) the local database: send a PSNP carrying these.
	Request []LSPEntry
	// Flood lists local LSPs that are newer than the peer's copy (or
	// that the peer lacks entirely within the CSNP range): send them.
	Flood []*LSP
}

// CompareCSNP diffs the database against a CSNP covering
// [start, end]. Entries outside the range are ignored; local LSPs
// outside the range are not flooded.
func (db *Database) CompareCSNP(c *CSNP) SyncPlan {
	var plan SyncPlan
	remote := make(map[LSPID]LSPEntry, len(c.Entries))
	for _, e := range c.Entries {
		if lspIDInRange(e.ID, c.StartID, c.EndID) {
			remote[e.ID] = e
		}
	}
	for _, lsp := range db.Snapshot() {
		if !lspIDInRange(lsp.ID, c.StartID, c.EndID) {
			continue
		}
		re, ok := remote[lsp.ID]
		switch {
		case !ok:
			plan.Flood = append(plan.Flood, lsp)
		case re.Sequence > lsp.Sequence:
			plan.Request = append(plan.Request, re)
		case re.Sequence < lsp.Sequence:
			plan.Flood = append(plan.Flood, lsp)
		}
		delete(remote, lsp.ID)
	}
	// Whatever remains is present remotely but absent locally.
	for _, e := range remote {
		plan.Request = append(plan.Request, e)
	}
	sort.Slice(plan.Request, func(i, j int) bool { return lessLSPID(plan.Request[i].ID, plan.Request[j].ID) })
	sort.Slice(plan.Flood, func(i, j int) bool { return lessLSPID(plan.Flood[i].ID, plan.Flood[j].ID) })
	return plan
}

// BuildPSNP wraps the plan's requests in a PSNP from the given
// source. Requested entries carry zero sequence numbers, signalling
// "send me your copy" (ISO 10589 §7.3.17 note: a PSNP entry with a
// lower sequence number solicits the newer LSP).
func (p SyncPlan) BuildPSNP(source [6]byte) *PSNP {
	psnp := &PSNP{Source: source}
	for _, e := range p.Request {
		psnp.Entries = append(psnp.Entries, LSPEntry{ID: e.ID, Sequence: 0, Lifetime: 0, Checksum: 0})
	}
	return psnp
}

// ServePSNP answers a peer's PSNP against the database: every entry
// whose local copy is newer than the acknowledged sequence is
// returned for (re)flooding.
func (db *Database) ServePSNP(p *PSNP) []*LSP {
	var out []*LSP
	for _, e := range p.Entries {
		if lsp := db.Get(e.ID); lsp != nil && lsp.Sequence > e.Sequence {
			out = append(out, lsp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return lessLSPID(out[i].ID, out[j].ID) })
	return out
}

// BuildCSNP describes the database's full contents as a single CSNP
// covering the entire LSP ID space.
func (db *Database) BuildCSNP(source [6]byte) *CSNP {
	return &CSNP{
		Source:  source,
		StartID: LSPID{},
		EndID: LSPID{
			System:     [6]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
			Pseudonode: 0xff,
			Fragment:   0xff,
		},
		Entries: db.Entries(),
	}
}

// lspIDInRange reports start <= id <= end.
func lspIDInRange(id, start, end LSPID) bool {
	return !lessLSPID(id, start) && !lessLSPID(end, id)
}
