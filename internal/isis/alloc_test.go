package isis

import "testing"

// Allocation pins companion to the benchmarks: ReportAllocs shows a
// regression only to someone reading benchmark output, while these
// fail `go test` outright. The in-place decode copies every retained
// byte into one reused arena and takes neighbor/prefix slots from
// reused backing arrays, so a warm LSP decodes with zero allocations;
// a cold LSP pays only the handful of one-time buffer allocations.

// TestLSPDecodeAllocBudget pins the cold path: decoding into a fresh
// LSP allocates the arena, the neighbor and prefix backing arrays, and
// the area list — one-time buffers, not per-record garbage. (The
// hostname intern amortizes to zero across the run.)
func TestLSPDecodeAllocBudget(t *testing.T) {
	wire, err := benchLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		var l LSP
		if err := l.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
	})
	budget := 4.0
	if raceEnabled {
		budget = 6.0 // race instrumentation adds allocations of its own
	}
	if avg > budget {
		t.Errorf("cold DecodeFromBytes allocates %.1f times per LSP, budget is %.0f", avg, budget)
	}
}

// TestLSPDecodeReuseAllocBudget pins the steady state: decoding into a
// warm reused LSP — the arena sized, the slot arrays grown, the
// hostname interned — must allocate nothing at all.
func TestLSPDecodeReuseAllocBudget(t *testing.T) {
	wire, err := benchLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	var l LSP
	for i := 0; i < 4; i++ {
		if err := l.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := l.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("warm DecodeFromBytes allocates %.1f times per LSP, budget is 0", avg)
	}
}

// TestNeighborKeyAllocBudget pins the listener's per-install diff
// keys: once interned, Key, PlainKey, and IPPrefix.Key are built on
// the stack and resolved by a lock-free map probe — zero allocations.
func TestNeighborKeyAllocBudget(t *testing.T) {
	l := benchLSP()
	n := l.Neighbors[0]
	n.SetLinkIDs(7, 9)
	p := l.Prefixes[0]
	// Warm the intern table: two sightings promote the snapshot.
	for i := 0; i < 4; i++ {
		_, _, _ = n.Key(), n.PlainKey(), p.Key()
	}
	avg := testing.AllocsPerRun(100, func() {
		_, _, _ = n.Key(), n.PlainKey(), p.Key()
	})
	if avg != 0 {
		t.Errorf("warm Key/PlainKey/IPPrefix.Key allocate %.1f times per batch, budget is 0", avg)
	}
}
