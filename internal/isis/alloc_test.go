package isis

import "testing"

// TestLSPDecodeAllocBudget pins DecodeFromBytes to its current
// allocation count on the benchmark LSP (~8 neighbors, ~11 prefixes):
// the TLV slice, the preallocated neighbor and prefix lists, the
// hostname string, and per-TLV value copies. The []byte-oriented
// decode rewrite (ROADMAP item 4) should lower the budget; nothing
// should raise it unnoticed.
func TestLSPDecodeAllocBudget(t *testing.T) {
	wire, err := benchLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		var l LSP
		if err := l.DecodeFromBytes(wire); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 7 {
		t.Errorf("DecodeFromBytes allocates %.1f times per LSP, budget is 7", avg)
	}
}
