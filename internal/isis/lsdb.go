package isis

import (
	"sort"
	"sync"
	"time"
)

// Database is a level-2 link-state database: the per-router view of
// every LSP in the network, keyed by LSP ID and ordered by sequence
// number. It is safe for concurrent use.
type Database struct {
	mu   sync.RWMutex
	lsps map[LSPID]*storedLSP // guarded by mu
}

type storedLSP struct {
	lsp      *LSP
	received time.Time
}

// NewDatabase creates an empty database.
func NewDatabase() *Database {
	return &Database{lsps: make(map[LSPID]*storedLSP)}
}

// Install stores the LSP if it is newer than the stored copy (higher
// sequence number, or equal sequence with zero lifetime superseding a
// live copy). It returns true if the database changed. now stamps the
// arrival for lifetime aging.
func (db *Database) Install(lsp *LSP, now time.Time) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	cur, ok := db.lsps[lsp.ID]
	if ok && !newer(lsp, cur.lsp) {
		return false
	}
	db.lsps[lsp.ID] = &storedLSP{lsp: lsp, received: now}
	return true
}

// newer reports whether candidate should replace stored per ISO 10589
// §7.3.16.
func newer(candidate, stored *LSP) bool {
	if candidate.Sequence != stored.Sequence {
		return candidate.Sequence > stored.Sequence
	}
	// Same sequence: a zero-lifetime (purged) copy wins.
	return candidate.Lifetime == 0 && stored.Lifetime != 0
}

// Get returns the stored LSP for the ID, or nil.
func (db *Database) Get(id LSPID) *LSP {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if s, ok := db.lsps[id]; ok {
		return s.lsp
	}
	return nil
}

// Len returns the number of stored LSPs.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.lsps)
}

// Snapshot returns the stored LSPs sorted by LSP ID, as a CSNP would
// enumerate them.
func (db *Database) Snapshot() []*LSP {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*LSP, 0, len(db.lsps))
	for _, s := range db.lsps {
		out = append(out, s.lsp)
	}
	sort.Slice(out, func(i, j int) bool { return lessLSPID(out[i].ID, out[j].ID) })
	return out
}

// Entries returns CSNP-style digest entries for the whole database.
func (db *Database) Entries() []LSPEntry {
	lsps := db.Snapshot()
	entries := make([]LSPEntry, len(lsps))
	for i, l := range lsps {
		entries[i] = LSPEntry{Lifetime: l.Lifetime, ID: l.ID, Sequence: l.Sequence, Checksum: l.Checksum}
	}
	return entries
}

// Expire removes LSPs whose remaining lifetime has elapsed relative
// to now, returning the expired IDs.
func (db *Database) Expire(now time.Time) []LSPID {
	db.mu.Lock()
	defer db.mu.Unlock()
	var expired []LSPID
	for id, s := range db.lsps {
		deadline := s.received.Add(time.Duration(s.lsp.Lifetime) * time.Second)
		if !now.Before(deadline) {
			delete(db.lsps, id)
			expired = append(expired, id)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return lessLSPID(expired[i], expired[j]) })
	return expired
}

func lessLSPID(a, b LSPID) bool {
	if a.System != b.System {
		return a.System.Less(b.System)
	}
	if a.Pseudonode != b.Pseudonode {
		return a.Pseudonode < b.Pseudonode
	}
	return a.Fragment < b.Fragment
}
