package isis

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

// benchLSP builds a realistic backbone-router LSP: ~8 neighbors and
// ~10 prefixes.
func benchLSP() *LSP {
	var neighbors []ISNeighbor
	var prefixes []IPPrefix
	for i := 0; i < 8; i++ {
		neighbors = append(neighbors, ISNeighbor{System: topo.SystemIDFromIndex(i + 2), Metric: 10})
		prefixes = append(prefixes, IPPrefix{Metric: 10, Addr: uint32(i) << 8, Length: 31})
	}
	prefixes = append(prefixes, IPPrefix{Metric: 0, Addr: 10 << 24, Length: 32})
	return NewLSP(topo.SystemIDFromIndex(1), 7, "riv-core-01", neighbors, prefixes)
}

func BenchmarkLSPEncode(b *testing.B) {
	b.ReportAllocs()
	l := benchLSP()
	wire, err := l.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSPDecode measures the steady-state listener decode: one
// reused LSP, warm arena and intern table, so the loop body is the
// zero-allocation in-place walk.
func BenchmarkLSPDecode(b *testing.B) {
	b.ReportAllocs()
	wire, err := benchLSP().Encode()
	if err != nil {
		b.Fatal(err)
	}
	var l LSP
	if err := l.DecodeFromBytes(wire); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.DecodeFromBytes(wire); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "records/op")
}

func BenchmarkFletcherChecksum(b *testing.B) {
	b.ReportAllocs()
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i * 31)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		fletcherChecksum(data, 12)
	}
}

func BenchmarkDatabaseInstall(b *testing.B) {
	b.ReportAllocs()
	db := NewDatabase()
	now := time.Unix(0, 0)
	lsps := make([]*LSP, 256)
	for i := range lsps {
		lsps[i] = NewLSP(topo.SystemIDFromIndex(i+1), 1, "r", nil, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := lsps[i%len(lsps)]
		l.Sequence = uint32(i + 2)
		db.Install(l, now)
	}
}
