//go:build !race

package isis

// raceEnabled reports whether the race detector is instrumenting this
// test binary; its instrumentation adds allocations the cold-path
// budget must tolerate.
const raceEnabled = false
