package isis

import (
	"encoding/binary"
	"fmt"

	"netfail/internal/topo"
)

// LSP is a level-2 link-state PDU: the unit of information flooded
// through the network and recorded by the listener. The fields mirror
// the TLVs in Table 1 of the paper.
type LSP struct {
	// ID is the LSP identifier (system ID, pseudonode, fragment).
	ID LSPID
	// Sequence orders successive issues of the same LSP.
	Sequence uint32
	// Lifetime is the remaining lifetime in seconds.
	Lifetime uint16
	// Checksum is the ISO 8473 checksum as carried on the wire;
	// populated by Encode and verified by DecodeFromBytes.
	Checksum uint16
	// Attached and Overload are the ATT and LSPDBOL header bits.
	Attached bool
	Overload bool

	// Hostname is the dynamic hostname (TLV 137); empty if absent.
	Hostname string
	// Areas holds the area addresses (TLV 1), raw.
	Areas [][]byte
	// IfaceAddrs lists IP interface addresses (TLV 132), host order.
	IfaceAddrs []uint32
	// Neighbors is the Extended IS Reachability list (TLV 22).
	Neighbors []ISNeighbor
	// Prefixes is the Extended IP Reachability list (TLV 135).
	Prefixes []IPPrefix
	// Unknown preserves TLVs this implementation does not decode.
	Unknown []RawTLV

	// arena is the decode scratch buffer: every byte slice a decoded
	// LSP retains (area addresses, sub-TLV values, unknown TLV values)
	// is a subrange of this one allocation instead of an individual
	// copy. It is sized to the PDU length — all retained bytes come
	// from the PDU, so it never grows mid-decode — and reused across
	// DecodeFromBytes calls on the same LSP, making steady-state decode
	// allocation-free. The decoded LSP owns its data; nothing aliases
	// the caller's input buffer.
	arena []byte
}

// Type implements PDU.
func (l *LSP) Type() PDUType { return TypeLSPL2 }

// Encode serializes the LSP, computing the PDU length and Fletcher
// checksum. The Checksum field is updated with the computed value.
func (l *LSP) Encode() ([]byte, error) {
	b := appendCommonHeader(nil, TypeLSPL2, lspHeaderLen)
	b = append(b, 0, 0) // PDU length, patched below
	b = append(b, byte(l.Lifetime>>8), byte(l.Lifetime))
	b = l.ID.appendTo(b)
	var seq [4]byte
	binary.BigEndian.PutUint32(seq[:], l.Sequence)
	b = append(b, seq[:]...)
	b = append(b, 0, 0) // checksum, patched below
	flags := byte(0x03) // IS type: level 2
	if l.Attached {
		flags |= 0x40 // ATT default-metric bit
	}
	if l.Overload {
		flags |= 0x04
	}
	b = append(b, flags)

	if len(l.Areas) > 0 {
		var val []byte
		for _, a := range l.Areas {
			val = append(val, byte(len(a)))
			val = append(val, a...)
		}
		b = appendTLV(b, TLVAreaAddresses, val)
	}
	if l.Hostname != "" {
		if len(l.Hostname) > maxTLVValueLength {
			return nil, fmt.Errorf("isis: hostname %q too long", l.Hostname)
		}
		b = appendTLV(b, TLVHostname, []byte(l.Hostname))
	}
	if len(l.IfaceAddrs) > 0 {
		var val []byte
		for _, a := range l.IfaceAddrs {
			var buf [4]byte
			binary.BigEndian.PutUint32(buf[:], a)
			val = append(val, buf[:]...)
			if len(val) == 252 {
				b = appendTLV(b, TLVIPIfaceAddr, val)
				val = nil
			}
		}
		if len(val) > 0 {
			b = appendTLV(b, TLVIPIfaceAddr, val)
		}
	}
	b = appendExtISReach(b, l.Neighbors)
	b = appendExtIPReach(b, l.Prefixes)
	for _, u := range l.Unknown {
		b = appendTLV(b, u.Type, u.Value)
	}

	if len(b) > 0xffff {
		return nil, fmt.Errorf("isis: LSP %v exceeds maximum PDU size", l.ID)
	}
	putUint16(b, commonHeaderLen, uint16(len(b)))
	// Checksum covers LSP ID through end (offset 12 from PDU start).
	const ckOff = 24 // absolute offset of checksum field
	const ckStart = 12
	ck := fletcherChecksum(b[ckStart:], ckOff-ckStart)
	putUint16(b, ckOff, ck)
	l.Checksum = ck
	return b, nil
}

// resetForDecode wipes the LSP for a fresh decode while keeping every
// reusable backing array: the arena (regrown only if the new PDU is
// larger than any seen before), the outer slices, and — via
// nextNeighbor — the per-slot SubTLVs capacity inside Neighbors.
//
//netfail:hotpath
func (l *LSP) resetForDecode(pduLen int) {
	arena := l.arena
	if cap(arena) < pduLen {
		arena = make([]byte, 0, pduLen)
	}
	*l = LSP{
		arena:      arena[:0],
		Areas:      l.Areas[:0],
		IfaceAddrs: l.IfaceAddrs[:0],
		Neighbors:  l.Neighbors[:0],
		Prefixes:   l.Prefixes[:0],
		Unknown:    l.Unknown[:0],
	}
}

// arenaCopy copies b into the arena and returns the full-capped
// subrange. The arena's capacity covers the whole PDU, and every copy
// is a disjoint region of it, so the append never grows.
//
//netfail:hotpath
func (l *LSP) arenaCopy(b []byte) []byte {
	n := len(l.arena)
	l.arena = append(l.arena, b...)
	return l.arena[n : n+len(b) : n+len(b)]
}

// nextNeighbor extends l.Neighbors by one slot, reusing the backing
// array — and, crucially, the slot's previous SubTLVs capacity, which
// a plain append of a fresh ISNeighbor would discard. Every other
// field is overwritten by the caller.
//
//netfail:hotpath
func (l *LSP) nextNeighbor() *ISNeighbor {
	if len(l.Neighbors) < cap(l.Neighbors) {
		l.Neighbors = l.Neighbors[:len(l.Neighbors)+1]
	} else {
		l.Neighbors = append(l.Neighbors, ISNeighbor{})
	}
	n := &l.Neighbors[len(l.Neighbors)-1]
	n.SubTLVs = n.SubTLVs[:0]
	return n
}

// DecodeFromBytes parses an LSP from wire bytes, validating the
// common header, PDU length, and Fletcher checksum. The decode is
// in-place: a tlvCursor walks the TLV region without callbacks or
// per-TLV copies, retained bytes land in the LSP's reused arena, and
// the hostname is interned — so decoding into a warm reused LSP
// allocates nothing.
//
//netfail:hotpath
func (l *LSP) DecodeFromBytes(data []byte) error {
	typ, err := PeekType(data)
	if err != nil {
		return err
	}
	if typ != TypeLSPL2 {
		return fmt.Errorf("%w: got %v, want %v", ErrUnknownType, typ, TypeLSPL2)
	}
	if len(data) < lspHeaderLen {
		return ErrTruncated
	}
	pduLen := int(binary.BigEndian.Uint16(data[commonHeaderLen:]))
	if pduLen > len(data) || pduLen < lspHeaderLen {
		return ErrTruncated
	}
	data = data[:pduLen]

	l.resetForDecode(pduLen)
	l.Lifetime = binary.BigEndian.Uint16(data[10:])
	l.ID = lspIDFromBytes(data[12:20])
	l.Sequence = binary.BigEndian.Uint32(data[20:])
	l.Checksum = binary.BigEndian.Uint16(data[24:])
	if l.Lifetime > 0 && !fletcherVerify(data[12:], 24-12) {
		return ErrBadChecksum
	}
	flags := data[26]
	l.Attached = flags&0x40 != 0
	l.Overload = flags&0x04 != 0

	cur := tlvCursor{data: data[lspHeaderLen:]}
	for {
		typ, value, ok := cur.next()
		if !ok {
			break
		}
		switch typ {
		case TLVAreaAddresses:
			for off := 0; off < len(value); {
				alen := int(value[off])
				off++
				if off+alen > len(value) {
					return ErrTruncated
				}
				l.Areas = append(l.Areas, l.arenaCopy(value[off:off+alen]))
				off += alen
			}
		case TLVHostname:
			l.Hostname = symbols.Intern(value)
		case TLVIPIfaceAddr:
			if len(value)%4 != 0 {
				return ErrTruncated
			}
			for off := 0; off < len(value); off += 4 {
				l.IfaceAddrs = append(l.IfaceAddrs, binary.BigEndian.Uint32(value[off:]))
			}
		case TLVExtISReach:
			if err := l.decodeExtISReach(value); err != nil {
				return err
			}
		case TLVExtIPReach:
			if err := l.decodeExtIPReach(value); err != nil {
				return err
			}
		default:
			l.Unknown = append(l.Unknown, RawTLV{Type: typ, Value: l.arenaCopy(value)})
		}
	}
	return cur.err
}

// NeighborKeys returns the set of advertised IS-reachability neighbor
// identities, the quantity whose change signals an adjacency
// transition.
func (l *LSP) NeighborKeys() map[string]bool {
	set := make(map[string]bool, len(l.Neighbors))
	for _, n := range l.Neighbors {
		set[n.Key()] = true
	}
	return set
}

// PrefixKeys returns the set of advertised IP-reachability prefixes.
func (l *LSP) PrefixKeys() map[string]bool {
	set := make(map[string]bool, len(l.Prefixes))
	for _, p := range l.Prefixes {
		set[p.Key()] = true
	}
	return set
}

// NewLSP builds a minimal valid LSP for the given router state.
func NewLSP(sys topo.SystemID, seq uint32, hostname string, neighbors []ISNeighbor, prefixes []IPPrefix) *LSP {
	return &LSP{
		ID:        LSPID{System: sys},
		Sequence:  seq,
		Lifetime:  MaxAge,
		Hostname:  hostname,
		Areas:     [][]byte{{0x49, 0x00, 0x01}},
		Neighbors: neighbors,
		Prefixes:  prefixes,
	}
}

// String summarizes the LSP for logs.
func (l *LSP) String() string {
	return fmt.Sprintf("LSP %v seq=%#x life=%d host=%q nbrs=%d prefixes=%d",
		l.ID, l.Sequence, l.Lifetime, l.Hostname, len(l.Neighbors), len(l.Prefixes))
}
