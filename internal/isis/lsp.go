package isis

import (
	"encoding/binary"
	"fmt"

	"netfail/internal/topo"
)

// LSP is a level-2 link-state PDU: the unit of information flooded
// through the network and recorded by the listener. The fields mirror
// the TLVs in Table 1 of the paper.
type LSP struct {
	// ID is the LSP identifier (system ID, pseudonode, fragment).
	ID LSPID
	// Sequence orders successive issues of the same LSP.
	Sequence uint32
	// Lifetime is the remaining lifetime in seconds.
	Lifetime uint16
	// Checksum is the ISO 8473 checksum as carried on the wire;
	// populated by Encode and verified by DecodeFromBytes.
	Checksum uint16
	// Attached and Overload are the ATT and LSPDBOL header bits.
	Attached bool
	Overload bool

	// Hostname is the dynamic hostname (TLV 137); empty if absent.
	Hostname string
	// Areas holds the area addresses (TLV 1), raw.
	Areas [][]byte
	// IfaceAddrs lists IP interface addresses (TLV 132), host order.
	IfaceAddrs []uint32
	// Neighbors is the Extended IS Reachability list (TLV 22).
	Neighbors []ISNeighbor
	// Prefixes is the Extended IP Reachability list (TLV 135).
	Prefixes []IPPrefix
	// Unknown preserves TLVs this implementation does not decode.
	Unknown []RawTLV
}

// Type implements PDU.
func (l *LSP) Type() PDUType { return TypeLSPL2 }

// Encode serializes the LSP, computing the PDU length and Fletcher
// checksum. The Checksum field is updated with the computed value.
func (l *LSP) Encode() ([]byte, error) {
	b := appendCommonHeader(nil, TypeLSPL2, lspHeaderLen)
	b = append(b, 0, 0) // PDU length, patched below
	b = append(b, byte(l.Lifetime>>8), byte(l.Lifetime))
	b = l.ID.appendTo(b)
	var seq [4]byte
	binary.BigEndian.PutUint32(seq[:], l.Sequence)
	b = append(b, seq[:]...)
	b = append(b, 0, 0) // checksum, patched below
	flags := byte(0x03) // IS type: level 2
	if l.Attached {
		flags |= 0x40 // ATT default-metric bit
	}
	if l.Overload {
		flags |= 0x04
	}
	b = append(b, flags)

	if len(l.Areas) > 0 {
		var val []byte
		for _, a := range l.Areas {
			val = append(val, byte(len(a)))
			val = append(val, a...)
		}
		b = appendTLV(b, TLVAreaAddresses, val)
	}
	if l.Hostname != "" {
		if len(l.Hostname) > maxTLVValueLength {
			return nil, fmt.Errorf("isis: hostname %q too long", l.Hostname)
		}
		b = appendTLV(b, TLVHostname, []byte(l.Hostname))
	}
	if len(l.IfaceAddrs) > 0 {
		var val []byte
		for _, a := range l.IfaceAddrs {
			var buf [4]byte
			binary.BigEndian.PutUint32(buf[:], a)
			val = append(val, buf[:]...)
			if len(val) == 252 {
				b = appendTLV(b, TLVIPIfaceAddr, val)
				val = nil
			}
		}
		if len(val) > 0 {
			b = appendTLV(b, TLVIPIfaceAddr, val)
		}
	}
	b = appendExtISReach(b, l.Neighbors)
	b = appendExtIPReach(b, l.Prefixes)
	for _, u := range l.Unknown {
		b = appendTLV(b, u.Type, u.Value)
	}

	if len(b) > 0xffff {
		return nil, fmt.Errorf("isis: LSP %v exceeds maximum PDU size", l.ID)
	}
	putUint16(b, commonHeaderLen, uint16(len(b)))
	// Checksum covers LSP ID through end (offset 12 from PDU start).
	const ckOff = 24 // absolute offset of checksum field
	const ckStart = 12
	ck := fletcherChecksum(b[ckStart:], ckOff-ckStart)
	putUint16(b, ckOff, ck)
	l.Checksum = ck
	return b, nil
}

// DecodeFromBytes parses an LSP from wire bytes, validating the
// common header, PDU length, and Fletcher checksum.
func (l *LSP) DecodeFromBytes(data []byte) error {
	typ, err := PeekType(data)
	if err != nil {
		return err
	}
	if typ != TypeLSPL2 {
		return fmt.Errorf("%w: got %v, want %v", ErrUnknownType, typ, TypeLSPL2)
	}
	if len(data) < lspHeaderLen {
		return ErrTruncated
	}
	pduLen := int(binary.BigEndian.Uint16(data[commonHeaderLen:]))
	if pduLen > len(data) || pduLen < lspHeaderLen {
		return ErrTruncated
	}
	data = data[:pduLen]

	*l = LSP{}
	l.Lifetime = binary.BigEndian.Uint16(data[10:])
	l.ID = lspIDFromBytes(data[12:20])
	l.Sequence = binary.BigEndian.Uint32(data[20:])
	l.Checksum = binary.BigEndian.Uint16(data[24:])
	if l.Lifetime > 0 && !fletcherVerify(data[12:], 24-12) {
		return ErrBadChecksum
	}
	flags := data[26]
	l.Attached = flags&0x40 != 0
	l.Overload = flags&0x04 != 0

	return parseTLVs(data[lspHeaderLen:], func(typ TLVType, value []byte) error {
		switch typ {
		case TLVAreaAddresses:
			for off := 0; off < len(value); {
				alen := int(value[off])
				off++
				if off+alen > len(value) {
					return ErrTruncated
				}
				l.Areas = append(l.Areas, append([]byte(nil), value[off:off+alen]...))
				off += alen
			}
		case TLVHostname:
			l.Hostname = string(value)
		case TLVIPIfaceAddr:
			if len(value)%4 != 0 {
				return ErrTruncated
			}
			for off := 0; off < len(value); off += 4 {
				l.IfaceAddrs = append(l.IfaceAddrs, binary.BigEndian.Uint32(value[off:]))
			}
		case TLVExtISReach:
			ns, err := parseExtISReach(value)
			if err != nil {
				return err
			}
			l.Neighbors = append(l.Neighbors, ns...)
		case TLVExtIPReach:
			ps, err := parseExtIPReach(value)
			if err != nil {
				return err
			}
			l.Prefixes = append(l.Prefixes, ps...)
		default:
			l.Unknown = append(l.Unknown, RawTLV{Type: typ, Value: append([]byte(nil), value...)})
		}
		return nil
	})
}

// NeighborKeys returns the set of advertised IS-reachability neighbor
// identities, the quantity whose change signals an adjacency
// transition.
func (l *LSP) NeighborKeys() map[string]bool {
	set := make(map[string]bool, len(l.Neighbors))
	for _, n := range l.Neighbors {
		set[n.Key()] = true
	}
	return set
}

// PrefixKeys returns the set of advertised IP-reachability prefixes.
func (l *LSP) PrefixKeys() map[string]bool {
	set := make(map[string]bool, len(l.Prefixes))
	for _, p := range l.Prefixes {
		set[p.Key()] = true
	}
	return set
}

// NewLSP builds a minimal valid LSP for the given router state.
func NewLSP(sys topo.SystemID, seq uint32, hostname string, neighbors []ISNeighbor, prefixes []IPPrefix) *LSP {
	return &LSP{
		ID:        LSPID{System: sys},
		Sequence:  seq,
		Lifetime:  MaxAge,
		Hostname:  hostname,
		Areas:     [][]byte{{0x49, 0x00, 0x01}},
		Neighbors: neighbors,
		Prefixes:  prefixes,
	}
}

// String summarizes the LSP for logs.
func (l *LSP) String() string {
	return fmt.Sprintf("LSP %v seq=%#x life=%d host=%q nbrs=%d prefixes=%d",
		l.ID, l.Sequence, l.Lifetime, l.Hostname, len(l.Neighbors), len(l.Prefixes))
}
