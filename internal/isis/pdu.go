package isis

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"

	"netfail/internal/topo"
)

// Protocol constants from ISO 10589.
const (
	// IRPD is the Intradomain Routing Protocol Discriminator that
	// begins every IS-IS PDU.
	IRPD = 0x83
	// ProtocolVersion is the version/protocol ID extension value.
	ProtocolVersion = 1
	// SystemIDLen is the ID length used throughout (wire value 0).
	SystemIDLen = 6
	// MaxAge is the default maximum LSP remaining lifetime, seconds.
	MaxAge = 1200
)

// PDUType identifies the PDU kind carried after the common header.
// Only level-2 PDU types are implemented; CENIC runs a single-area
// network where all adjacencies are level 2.
type PDUType uint8

const (
	// TypeP2PHello is a point-to-point IS-IS Hello.
	TypeP2PHello PDUType = 17
	// TypeLSPL2 is a level-2 link-state PDU.
	TypeLSPL2 PDUType = 20
	// TypeCSNPL2 is a level-2 complete sequence numbers PDU.
	TypeCSNPL2 PDUType = 25
	// TypePSNPL2 is a level-2 partial sequence numbers PDU.
	TypePSNPL2 PDUType = 27
)

// String names the PDU type.
func (t PDUType) String() string {
	switch t {
	case TypeP2PHello:
		return "P2P-IIH"
	case TypeLSPL2:
		return "L2-LSP"
	case TypeCSNPL2:
		return "L2-CSNP"
	case TypePSNPL2:
		return "L2-PSNP"
	default:
		return fmt.Sprintf("PDUType(%d)", uint8(t))
	}
}

// Header lengths (common header plus the type-specific fixed part).
const (
	commonHeaderLen = 8
	lspHeaderLen    = commonHeaderLen + 19
	iihHeaderLen    = commonHeaderLen + 12
	csnpHeaderLen   = commonHeaderLen + 25
	psnpHeaderLen   = commonHeaderLen + 9
)

// Decoding errors.
var (
	ErrTruncated   = errors.New("isis: truncated PDU")
	ErrBadDiscrim  = errors.New("isis: not an IS-IS PDU (bad discriminator)")
	ErrBadVersion  = errors.New("isis: unsupported protocol version")
	ErrBadIDLength = errors.New("isis: unsupported system ID length")
	ErrBadChecksum = errors.New("isis: LSP checksum mismatch")
	ErrUnknownType = errors.New("isis: unknown PDU type")
)

// LSPID names an LSP: originating system ID, pseudonode number, and
// fragment number.
type LSPID struct {
	System     topo.SystemID
	Pseudonode uint8
	Fragment   uint8
}

// String renders the conventional "xxxx.xxxx.xxxx.pn-fr" form.
func (id LSPID) String() string {
	return fmt.Sprintf("%s.%02x-%02x", id.System, id.Pseudonode, id.Fragment)
}

func (id LSPID) appendTo(b []byte) []byte {
	b = append(b, id.System[:]...)
	return append(b, id.Pseudonode, id.Fragment)
}

func lspIDFromBytes(b []byte) LSPID {
	var id LSPID
	copy(id.System[:], b[:6])
	id.Pseudonode = b[6]
	id.Fragment = b[7]
	return id
}

// PDU is implemented by every decodable IS-IS packet type.
type PDU interface {
	// Type returns the PDU type carried in the common header.
	Type() PDUType
	// Encode serializes the PDU to wire format.
	Encode() ([]byte, error)
}

// Decode parses any supported PDU, dispatching on the common header.
func Decode(data []byte) (PDU, error) {
	typ, err := PeekType(data)
	if err != nil {
		return nil, err
	}
	switch typ {
	case TypeLSPL2:
		var l LSP
		if err := l.DecodeFromBytes(data); err != nil {
			return nil, err
		}
		return &l, nil
	case TypeP2PHello:
		var h Hello
		if err := h.DecodeFromBytes(data); err != nil {
			return nil, err
		}
		return &h, nil
	case TypeCSNPL2:
		var c CSNP
		if err := c.DecodeFromBytes(data); err != nil {
			return nil, err
		}
		return &c, nil
	case TypePSNPL2:
		var p PSNP
		if err := p.DecodeFromBytes(data); err != nil {
			return nil, err
		}
		return &p, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, typ)
	}
}

// PeekType validates the common header and returns the PDU type
// without decoding the body.
func PeekType(data []byte) (PDUType, error) {
	if len(data) < commonHeaderLen {
		return 0, ErrTruncated
	}
	if data[0] != IRPD {
		return 0, ErrBadDiscrim
	}
	if data[2] != ProtocolVersion || data[5] != ProtocolVersion {
		return 0, ErrBadVersion
	}
	if data[3] != 0 && data[3] != SystemIDLen {
		return 0, ErrBadIDLength
	}
	return PDUType(data[4] & 0x1f), nil
}

// appendCommonHeader writes the 8-byte common header.
func appendCommonHeader(b []byte, typ PDUType, headerLen int) []byte {
	return append(b,
		IRPD,
		byte(headerLen),
		ProtocolVersion,
		0, // ID length: 0 means 6
		byte(typ),
		ProtocolVersion,
		0, // reserved
		0, // max area addresses: 0 means 3
	)
}

func putUint16(b []byte, off int, v uint16) { binary.BigEndian.PutUint16(b[off:], v) }
func putUint32(b []byte, off int, v uint32) { binary.BigEndian.PutUint32(b[off:], v) }

func hexDump(b []byte) string { return hex.EncodeToString(b) }
