package isis

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

func TestAdjacencyThreeWayHandshake(t *testing.T) {
	a := topo.SystemIDFromIndex(1)
	b := topo.SystemIDFromIndex(2)
	adjA := NewAdjacency(a, b, 30*time.Second)
	adjB := NewAdjacency(b, a, 30*time.Second)
	now := time.Unix(100, 0)

	// A sends a hello first: it is Down, so no neighbor field.
	hA := adjA.BuildHello(1)
	if hA.NeighborSet {
		t.Error("down adjacency should not claim a neighbor")
	}
	// B receives it: Down -> Initializing.
	if !adjB.HandleHello(hA, now) {
		t.Error("B should change state")
	}
	if adjB.State() != AdjInitializing {
		t.Errorf("B state = %v, want Initializing", adjB.State())
	}
	// B replies, now naming A. A goes straight to Up.
	hB := adjB.BuildHello(1)
	if !hB.NeighborSet || hB.NeighborID != a {
		t.Error("B's hello should name A")
	}
	if !adjA.HandleHello(hB, now) || adjA.State() != AdjUp {
		t.Errorf("A state = %v, want Up", adjA.State())
	}
	// A's next hello confirms B: B goes Up.
	if !adjB.HandleHello(adjA.BuildHello(1), now) || adjB.State() != AdjUp {
		t.Errorf("B state = %v, want Up", adjB.State())
	}
	// Steady state: further hellos change nothing.
	if adjA.HandleHello(adjB.BuildHello(1), now) {
		t.Error("steady-state hello changed A")
	}
}

func TestAdjacencyIgnoresWrongSource(t *testing.T) {
	a := topo.SystemIDFromIndex(1)
	adj := NewAdjacency(a, topo.SystemIDFromIndex(2), 30*time.Second)
	h := &Hello{Source: topo.SystemIDFromIndex(3)}
	if adj.HandleHello(h, time.Unix(0, 0)) {
		t.Error("hello from wrong source changed state")
	}
}

func TestAdjacencyHoldTimeExpiry(t *testing.T) {
	a := topo.SystemIDFromIndex(1)
	b := topo.SystemIDFromIndex(2)
	adj := NewAdjacency(a, b, 30*time.Second)
	now := time.Unix(100, 0)
	adj.HandleHello(&Hello{Source: b, HasThreeWay: true, NeighborSet: true, NeighborID: a}, now)
	if adj.State() != AdjUp {
		t.Fatalf("state = %v", adj.State())
	}
	if adj.CheckHold(now.Add(29 * time.Second)) {
		t.Error("expired before hold time")
	}
	if !adj.CheckHold(now.Add(30 * time.Second)) {
		t.Error("did not expire at hold time")
	}
	if adj.State() != AdjDown {
		t.Errorf("state = %v, want Down", adj.State())
	}
	if adj.CheckHold(now.Add(31 * time.Second)) {
		t.Error("double expiry reported")
	}
}

func TestAdjacencyLinkDown(t *testing.T) {
	a := topo.SystemIDFromIndex(1)
	b := topo.SystemIDFromIndex(2)
	adj := NewAdjacency(a, b, 30*time.Second)
	if adj.LinkDown() {
		t.Error("LinkDown on down adjacency reported a change")
	}
	adj.HandleHello(&Hello{Source: b, HasThreeWay: true, NeighborSet: true, NeighborID: a}, time.Unix(0, 0))
	if !adj.LinkDown() || adj.State() != AdjDown {
		t.Error("LinkDown did not take adjacency down")
	}
}

func TestAdjacencyResetOnForeignNeighbor(t *testing.T) {
	a := topo.SystemIDFromIndex(1)
	b := topo.SystemIDFromIndex(2)
	adj := NewAdjacency(a, b, 30*time.Second)
	now := time.Unix(0, 0)
	adj.HandleHello(&Hello{Source: b, HasThreeWay: true, NeighborSet: true, NeighborID: a}, now)
	if adj.State() != AdjUp {
		t.Fatal("setup failed")
	}
	// B now reports a different neighbor: our adjacency must reset.
	foreign := &Hello{Source: b, HasThreeWay: true, NeighborSet: true, NeighborID: topo.SystemIDFromIndex(9)}
	if !adj.HandleHello(foreign, now) || adj.State() != AdjDown {
		t.Errorf("state = %v, want Down", adj.State())
	}
}
