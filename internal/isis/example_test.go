package isis_test

import (
	"fmt"

	"netfail/internal/isis"
	"netfail/internal/topo"
)

// ExampleLSP encodes a link-state PDU to its ISO 10589 wire format
// and decodes it back — what flows between the simulated routers and
// the passive listener.
func ExampleLSP() {
	lsp := isis.NewLSP(
		topo.SystemIDFromIndex(1), 7, "riv-core-01",
		[]isis.ISNeighbor{{System: topo.SystemIDFromIndex(2), Metric: 10}},
		[]isis.IPPrefix{{Metric: 10, Addr: 137<<24 | 164<<16, Length: 31}},
	)
	wire, err := lsp.Encode()
	if err != nil {
		panic(err)
	}
	var decoded isis.LSP
	if err := decoded.DecodeFromBytes(wire); err != nil {
		panic(err)
	}
	fmt.Printf("%s advertises %d neighbor, %d prefix\n",
		decoded.Hostname, len(decoded.Neighbors), len(decoded.Prefixes))
	fmt.Printf("prefix: %s\n", decoded.Prefixes[0])
	// Output:
	// riv-core-01 advertises 1 neighbor, 1 prefix
	// prefix: 137.164.0.0/31
}
