package isis

import (
	"errors"
	"reflect"
	"testing"

	"netfail/internal/topo"
)

func sampleHello() *Hello {
	return &Hello{
		CircuitType:       2,
		Source:            topo.SystemIDFromIndex(7),
		HoldingTime:       30,
		LocalCircuitID:    3,
		HasThreeWay:       true,
		ThreeWay:          AdjUp,
		NeighborSet:       true,
		NeighborID:        topo.SystemIDFromIndex(8),
		NeighborCircuitID: 12,
		ExtLocalCircuitID: 9,
		IfaceAddrs:        []uint32{137<<24 | 164<<16 | 4},
	}
}

func TestHelloRoundTrip(t *testing.T) {
	orig := sampleHello()
	wire, err := orig.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got Hello
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, orig) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, *orig)
	}
}

func TestHelloWithoutNeighborRoundTrip(t *testing.T) {
	orig := sampleHello()
	orig.NeighborSet = false
	orig.NeighborID = topo.SystemID{}
	orig.NeighborCircuitID = 0
	orig.ThreeWay = AdjDown
	wire, err := orig.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got Hello
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if got.NeighborSet {
		t.Error("NeighborSet should be false")
	}
	if got.ThreeWay != AdjDown {
		t.Errorf("state = %v, want Down", got.ThreeWay)
	}
}

func TestHelloDecodeErrors(t *testing.T) {
	wire, err := sampleHello().Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got Hello
	if err := got.DecodeFromBytes(wire[:10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: err = %v", err)
	}
	bad := append([]byte(nil), wire...)
	bad[4] = byte(TypeLSPL2)
	if err := got.DecodeFromBytes(bad); !errors.Is(err, ErrUnknownType) {
		t.Errorf("wrong type: err = %v", err)
	}
}

func TestHelloViaGenericDecode(t *testing.T) {
	wire, err := sampleHello().Encode()
	if err != nil {
		t.Fatal(err)
	}
	pdu, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := pdu.(*Hello)
	if !ok {
		t.Fatalf("Decode returned %T", pdu)
	}
	if h.Source != sampleHello().Source {
		t.Error("source mismatch")
	}
}

func TestAdjacencyStateString(t *testing.T) {
	if AdjUp.String() != "Up" || AdjDown.String() != "Down" || AdjInitializing.String() != "Initializing" {
		t.Error("bad state names")
	}
}
