package isis

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"netfail/internal/topo"
)

func sampleLSP() *LSP {
	sys := topo.SystemIDFromIndex(7)
	nbr1 := topo.SystemIDFromIndex(8)
	nbr2 := topo.SystemIDFromIndex(9)
	return &LSP{
		ID:       LSPID{System: sys},
		Sequence: 0x1234,
		Lifetime: 1199,
		Hostname: "riv-core-01",
		Areas:    [][]byte{{0x49, 0x00, 0x01}},
		IfaceAddrs: []uint32{
			137<<24 | 164<<16 | 0<<8 | 0,
			137<<24 | 164<<16 | 0<<8 | 2,
		},
		Neighbors: []ISNeighbor{
			{System: nbr1, Metric: 10},
			{System: nbr2, Metric: 100, SubTLVs: []RawTLV{{Type: 6, Value: []byte{1, 2, 3, 4}}}},
		},
		Prefixes: []IPPrefix{
			{Metric: 10, Addr: 137<<24 | 164<<16, Length: 31},
			{Metric: 0, Addr: 10<<24 | 1<<16 | 7, Length: 32},
			{Metric: 20, Addr: 0, Length: 0},
		},
	}
}

func TestLSPEncodeDecodeRoundTrip(t *testing.T) {
	orig := sampleLSP()
	wire, err := orig.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var got LSP
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatalf("DecodeFromBytes: %v", err)
	}
	if got.ID != orig.ID || got.Sequence != orig.Sequence || got.Lifetime != orig.Lifetime {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Hostname != orig.Hostname {
		t.Errorf("hostname = %q, want %q", got.Hostname, orig.Hostname)
	}
	if !reflect.DeepEqual(got.Areas, orig.Areas) {
		t.Errorf("areas = %v, want %v", got.Areas, orig.Areas)
	}
	if !reflect.DeepEqual(got.IfaceAddrs, orig.IfaceAddrs) {
		t.Errorf("iface addrs = %v, want %v", got.IfaceAddrs, orig.IfaceAddrs)
	}
	if !reflect.DeepEqual(got.Neighbors, orig.Neighbors) {
		t.Errorf("neighbors = %+v, want %+v", got.Neighbors, orig.Neighbors)
	}
	if !reflect.DeepEqual(got.Prefixes, orig.Prefixes) {
		t.Errorf("prefixes = %+v, want %+v", got.Prefixes, orig.Prefixes)
	}
	if got.Checksum == 0 {
		t.Error("checksum not populated")
	}
}

func TestLSPChecksumValidation(t *testing.T) {
	wire, err := sampleLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a TLV byte: decode must fail with ErrBadChecksum.
	// (Avoid ^0xff, which aliases 0x00 to 0xFF — the one corruption
	// a Fletcher checksum cannot detect.)
	wire[lspHeaderLen+2] += 3
	var got LSP
	if err := got.DecodeFromBytes(wire); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestLSPDecodeErrors(t *testing.T) {
	wire, err := sampleLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"short header", func(b []byte) []byte { return b[:10] }, ErrTruncated},
		{"bad discriminator", func(b []byte) []byte { b[0] = 0x42; return b }, ErrBadDiscrim},
		{"bad version", func(b []byte) []byte { b[2] = 9; return b }, ErrBadVersion},
		{"bad id length", func(b []byte) []byte { b[3] = 8; return b }, ErrBadIDLength},
		{"wrong type", func(b []byte) []byte { b[4] = byte(TypeP2PHello); return b }, ErrUnknownType},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-4] }, ErrTruncated},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			buf := append([]byte(nil), wire...)
			buf = c.mut(buf)
			var got LSP
			if err := got.DecodeFromBytes(buf); !errors.Is(err, c.want) {
				t.Errorf("err = %v, want %v", err, c.want)
			}
		})
	}
}

func TestLSPManyNeighborsSplitsTLVs(t *testing.T) {
	// More neighbors than fit one 255-byte TLV must round trip.
	l := sampleLSP()
	l.Neighbors = nil
	for i := 0; i < 60; i++ {
		l.Neighbors = append(l.Neighbors, ISNeighbor{System: topo.SystemIDFromIndex(i + 100), Metric: uint32(i)})
	}
	l.Prefixes = nil
	for i := 0; i < 80; i++ {
		l.Prefixes = append(l.Prefixes, IPPrefix{Metric: uint32(i), Addr: uint32(i) << 8, Length: 24})
	}
	wire, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got LSP
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if len(got.Neighbors) != 60 || len(got.Prefixes) != 80 {
		t.Errorf("got %d neighbors, %d prefixes; want 60, 80", len(got.Neighbors), len(got.Prefixes))
	}
	if !reflect.DeepEqual(got.Neighbors, l.Neighbors) {
		t.Error("neighbors corrupted by TLV splitting")
	}
	if !reflect.DeepEqual(got.Prefixes, l.Prefixes) {
		t.Error("prefixes corrupted by TLV splitting")
	}
}

func TestLSPUnknownTLVPreserved(t *testing.T) {
	l := sampleLSP()
	l.Unknown = []RawTLV{{Type: 222, Value: []byte{9, 9, 9}}}
	wire, err := l.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got LSP
	if err := got.DecodeFromBytes(wire); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Unknown, l.Unknown) {
		t.Errorf("unknown TLVs = %+v, want %+v", got.Unknown, l.Unknown)
	}
}

func TestLSPKeySets(t *testing.T) {
	l := sampleLSP()
	nk := l.NeighborKeys()
	if len(nk) != 2 {
		t.Errorf("neighbor keys = %v", nk)
	}
	pk := l.PrefixKeys()
	if len(pk) != 3 || !pk["137.164.0.0/31"] {
		t.Errorf("prefix keys = %v", pk)
	}
}

func TestLSPDecodeViaGenericDecode(t *testing.T) {
	wire, err := sampleLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	pdu, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if pdu.Type() != TypeLSPL2 {
		t.Errorf("type = %v", pdu.Type())
	}
	if _, ok := pdu.(*LSP); !ok {
		t.Errorf("Decode returned %T", pdu)
	}
}

func TestLSPDecodeFuzzNoPanic(t *testing.T) {
	// Random garbage and truncations must return errors, not panic.
	rng := rand.New(rand.NewSource(99))
	wire, err := sampleLSP().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		buf := append([]byte(nil), wire...)
		switch trial % 3 {
		case 0:
			buf = buf[:rng.Intn(len(buf)+1)]
		case 1:
			for i := 0; i < 4; i++ {
				buf[rng.Intn(len(buf))] ^= byte(rng.Intn(256))
			}
		case 2:
			buf = make([]byte, rng.Intn(128))
			rng.Read(buf)
		}
		var got LSP
		_ = got.DecodeFromBytes(buf) // must not panic
		_, _ = Decode(buf)
	}
}

func TestPrefixRoundTripQuick(t *testing.T) {
	f := func(metric, addr uint32, length uint8, down bool) bool {
		length %= 33
		// Mask address to prefix length as a well-formed sender would.
		if length == 0 {
			addr = 0
		} else {
			addr &= ^uint32(0) << (32 - length)
		}
		in := []IPPrefix{{Metric: metric, Addr: addr, Length: length, Down: down}}
		wire := appendExtIPReach(nil, in)
		var l LSP
		err := l.decodeExtIPReach(wire[2:])
		return err == nil && len(l.Prefixes) == 1 && l.Prefixes[0] == in[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLSPString(t *testing.T) {
	s := sampleLSP().String()
	if s == "" {
		t.Error("empty String()")
	}
}
