package isis

// Fletcher checksum per ISO 8473 / ISO 10589 §7.3.11, as used for the
// LSP checksum field. The checksum covers the LSP from the LSP ID
// field to the end of the PDU; the check octets are computed so that
// both running sums of the completed PDU are zero (RFC 1008 §5).

const fletcherMod = 255

// fletcherChecksum computes the two check octets for data, where the
// checksum field (two bytes, treated as zero) lives at byte offset
// ckOff within data. The returned value is X<<8|Y ready to be stored
// big-endian at ckOff.
func fletcherChecksum(data []byte, ckOff int) uint16 {
	var c0, c1 int
	for i, b := range data {
		if i == ckOff || i == ckOff+1 {
			b = 0
		}
		c0 = (c0 + int(b)) % fletcherMod
		c1 = (c1 + c0) % fletcherMod
	}
	// RFC 1008 §5: with n the 1-based position of the first check
	// octet and L the block length,
	//   X = (L - n)·C0 - C1  (mod 255)
	//   Y = C1 - (L - n + 1)·C0  (mod 255)
	// adjusted into [1, 255] since a zero field means "unchecked".
	n := ckOff + 1
	l := len(data)
	x := ((l-n)*c0 - c1) % fletcherMod
	if x <= 0 {
		x += fletcherMod
	}
	y := (c1 - (l-n+1)*c0) % fletcherMod
	if y <= 0 {
		y += fletcherMod
	}
	return uint16(x)<<8 | uint16(y)
}

// fletcherVerify reports whether data (with the check octets in place
// at ckOff) carries a valid ISO 8473 checksum. A zero checksum field
// means "checksum not computed" and verifies trivially.
func fletcherVerify(data []byte, ckOff int) bool {
	if data[ckOff] == 0 && data[ckOff+1] == 0 {
		return true
	}
	var c0, c1 int
	for _, b := range data {
		c0 = (c0 + int(b)) % fletcherMod
		c1 = (c1 + c0) % fletcherMod
	}
	return c0 == 0 && c1 == 0
}
