package isis

import (
	"testing"
	"time"

	"netfail/internal/topo"
)

func lspWithSeq(idx int, seq uint32) *LSP {
	return NewLSP(topo.SystemIDFromIndex(idx), seq, "r", nil, nil)
}

func TestDatabaseInstallOrdering(t *testing.T) {
	db := NewDatabase()
	now := time.Unix(0, 0)
	if !db.Install(lspWithSeq(1, 5), now) {
		t.Error("first install rejected")
	}
	if db.Install(lspWithSeq(1, 4), now) {
		t.Error("older sequence accepted")
	}
	if db.Install(lspWithSeq(1, 5), now) {
		t.Error("same sequence accepted")
	}
	if !db.Install(lspWithSeq(1, 6), now) {
		t.Error("newer sequence rejected")
	}
	if got := db.Get(LSPID{System: topo.SystemIDFromIndex(1)}); got == nil || got.Sequence != 6 {
		t.Errorf("stored seq = %+v", got)
	}
}

func TestDatabasePurgeWins(t *testing.T) {
	db := NewDatabase()
	now := time.Unix(0, 0)
	db.Install(lspWithSeq(1, 5), now)
	purge := lspWithSeq(1, 5)
	purge.Lifetime = 0
	if !db.Install(purge, now) {
		t.Error("zero-lifetime copy at same sequence should supersede")
	}
}

func TestDatabaseSnapshotSorted(t *testing.T) {
	db := NewDatabase()
	now := time.Unix(0, 0)
	for _, idx := range []int{5, 1, 3} {
		db.Install(lspWithSeq(idx, 1), now)
	}
	snap := db.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if !lessLSPID(snap[i-1].ID, snap[i].ID) {
			t.Error("snapshot not sorted")
		}
	}
}

func TestDatabaseEntries(t *testing.T) {
	db := NewDatabase()
	now := time.Unix(0, 0)
	db.Install(lspWithSeq(1, 9), now)
	entries := db.Entries()
	if len(entries) != 1 || entries[0].Sequence != 9 {
		t.Errorf("entries = %+v", entries)
	}
}

func TestDatabaseExpire(t *testing.T) {
	db := NewDatabase()
	start := time.Unix(0, 0)
	short := lspWithSeq(1, 1)
	short.Lifetime = 10
	long := lspWithSeq(2, 1)
	long.Lifetime = 1200
	db.Install(short, start)
	db.Install(long, start)

	expired := db.Expire(start.Add(11 * time.Second))
	if len(expired) != 1 || expired[0].System != topo.SystemIDFromIndex(1) {
		t.Errorf("expired = %v", expired)
	}
	if db.Len() != 1 {
		t.Errorf("len = %d, want 1", db.Len())
	}
	if got := db.Get(LSPID{System: topo.SystemIDFromIndex(2)}); got == nil {
		t.Error("long-lived LSP evicted")
	}
}

func TestDatabaseConcurrentAccess(t *testing.T) {
	db := NewDatabase()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			db.Install(lspWithSeq(i%10, uint32(i)), time.Unix(int64(i), 0))
		}
	}()
	for i := 0; i < 1000; i++ {
		db.Get(LSPID{System: topo.SystemIDFromIndex(i % 10)})
		db.Len()
	}
	<-done
}
