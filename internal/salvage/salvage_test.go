package salvage

import "testing"

func TestReportSkipTracksRange(t *testing.T) {
	var r Report
	r.Kept = 3
	r.Skip(17, "bad timestamp")
	r.Skip(4, "bad payload")
	r.Skip(99, "bad timestamp")
	if r.Skipped != 3 || r.FirstBad != 4 || r.LastBad != 99 {
		t.Errorf("report = %+v", r)
	}
	if r.Reasons["bad timestamp"] != 2 || r.Reasons["bad payload"] != 1 {
		t.Errorf("reasons = %v", r.Reasons)
	}
	if r.Clean() {
		t.Error("Clean() on a report with skips")
	}
}

func TestReportStringDeterministic(t *testing.T) {
	var r Report
	r.Kept = 10
	r.Skip(2, "zeta")
	r.Skip(5, "alpha")
	want := "kept 10 records, skipped 2 lines (alpha: 1, zeta: 1), lines 2-5"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestReportStringClean(t *testing.T) {
	r := Report{Kept: 7}
	if got := r.String(); got != "kept 7 records, skipped 0 lines" {
		t.Errorf("String() = %q", got)
	}
	if !r.Clean() {
		t.Error("Clean() = false on a clean report")
	}
}

func TestReportStringWithoutPositions(t *testing.T) {
	// Payload-level skips carry no line numbers; the range is omitted.
	r := Report{Kept: 5, Skipped: 2, Reasons: map[string]int{"undecodable LSP payload": 2}}
	want := "kept 5 records, skipped 2 lines (undecodable LSP payload: 2)"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
