// Package salvage defines the shared accounting record that lenient
// ("salvage-mode") capture readers return instead of aborting on the
// first malformed record.
//
// The paper's data sources are unreliable by construction — lossy UDP
// syslog, listener outages, torn capture files — and the syslog-mining
// literature (Liang et al.; Simache & Kaâniche) treats partially
// malformed logs as the operational norm. A reader that dies on line
// 48,211 of a 13-month archive discards everything; a reader that
// silently skips the line discards the evidence that anything was
// wrong. The Report is the middle path: keep what parses, skip what
// does not, and account for every skipped line so the analysis can
// decide whether the salvage was acceptable.
package salvage

import (
	"fmt"
	"sort"
	"strings"
)

// Report accounts for what a lenient reader kept and what it skipped.
// A nil-safe zero value is ready to use.
type Report struct {
	// Kept is the number of records successfully parsed.
	Kept int
	// Skipped is the number of lines discarded as malformed.
	Skipped int
	// FirstBad and LastBad are the 1-based line numbers of the first
	// and last skipped lines (0 when nothing was skipped).
	FirstBad int
	LastBad  int
	// Reasons counts skipped lines by parse-failure reason.
	Reasons map[string]int
}

// Skip records one discarded line with its failure reason.
func (r *Report) Skip(line int, reason string) {
	r.Skipped++
	if r.FirstBad == 0 || line < r.FirstBad {
		r.FirstBad = line
	}
	if line > r.LastBad {
		r.LastBad = line
	}
	if r.Reasons == nil {
		r.Reasons = make(map[string]int)
	}
	r.Reasons[reason]++
}

// Clean reports whether every line parsed.
func (r *Report) Clean() bool { return r.Skipped == 0 }

// Merge folds o's accounting into r — the accumulator for readers
// that salvage the same component across several passes (the store's
// query layer reopens segments per query).
func (r *Report) Merge(o *Report) {
	if o == nil {
		return
	}
	r.Kept += o.Kept
	r.Skipped += o.Skipped
	if o.FirstBad > 0 && (r.FirstBad == 0 || o.FirstBad < r.FirstBad) {
		r.FirstBad = o.FirstBad
	}
	if o.LastBad > r.LastBad {
		r.LastBad = o.LastBad
	}
	for reason, n := range o.Reasons {
		if r.Reasons == nil {
			r.Reasons = make(map[string]int)
		}
		r.Reasons[reason] += n
	}
}

// String renders the report in one line with reasons in deterministic
// (sorted) order, e.g.
//
//	kept 1289 records, skipped 13 lines (bad payload: 5, bad timestamp: 8), lines 88-1301
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kept %d records, skipped %d lines", r.Kept, r.Skipped)
	if r.Skipped == 0 {
		return b.String()
	}
	reasons := make([]string, 0, len(r.Reasons))
	for reason := range r.Reasons {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	b.WriteString(" (")
	for i, reason := range reasons {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %d", reason, r.Reasons[reason])
	}
	b.WriteString(")")
	// Skips recorded without positions (e.g. payload-level decode
	// failures) have no line range to print.
	if r.FirstBad > 0 {
		fmt.Fprintf(&b, ", lines %d-%d", r.FirstBad, r.LastBad)
	}
	return b.String()
}
