package salvage

import "bytes"

// JSONObject extracts the first complete JSON object from raw,
// tolerating garbage before and after it — the shared salvage step for
// small JSON metadata files (capture and store manifests), where
// corruption *inside* the object stays fatal but a stray log line or
// torn trailing bytes around it should not discard the file. It
// returns the object's bytes (a view into raw), a report accounting
// the garbage lines skipped, and false when no complete object exists.
func JSONObject(raw []byte) ([]byte, *Report, bool) {
	rep := &Report{}
	start := bytes.IndexByte(raw, '{')
	if start < 0 {
		return nil, nil, false
	}
	end := matchBrace(raw, start)
	if end < 0 {
		return nil, nil, false
	}
	rep.Kept = 1
	for _, lineNo := range garbageLines(raw, start, end) {
		rep.Skip(lineNo, "garbage around JSON object")
	}
	return raw[start : end+1], rep, true
}

// matchBrace returns the index of the brace closing the object opened
// at start, honouring JSON string syntax, or -1.
func matchBrace(data []byte, start int) int {
	depth, inString, escaped := 0, false, false
	for i := start; i < len(data); i++ {
		c := data[i]
		if inString {
			switch {
			case escaped:
				escaped = false
			case c == '\\':
				escaped = true
			case c == '"':
				inString = false
			}
			continue
		}
		switch c {
		case '"':
			inString = true
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return i
			}
		}
	}
	return -1
}

// garbageLines returns the 1-based line numbers of non-blank lines
// falling entirely outside data[start:end+1].
func garbageLines(data []byte, start, end int) []int {
	var out []int
	lineNo, lineStart := 0, 0
	for i := 0; i <= len(data); i++ {
		if i < len(data) && data[i] != '\n' {
			continue
		}
		lineNo++
		line := bytes.TrimSpace(data[lineStart:i])
		if len(line) > 0 && (i <= start || lineStart > end) {
			out = append(out, lineNo)
		}
		lineStart = i + 1
	}
	return out
}
