package core

import (
	"testing"
	"time"

	"netfail/internal/topo"
	"netfail/internal/trace"
)

// isoNet builds a triangle core with one single-homed and one
// dual-homed customer.
func isoNet(t *testing.T) (*topo.Network, map[string]topo.LinkID) {
	t.Helper()
	n := topo.NewNetwork()
	names := []string{"core-a", "core-b", "core-c", "cpe-1", "cpe-2"}
	for i, name := range names {
		class := topo.Core
		if i >= 3 {
			class = topo.CPE
		}
		if err := n.AddRouter(&topo.Router{Name: name, Class: class, SystemID: topo.SystemIDFromIndex(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	links := map[string]topo.LinkID{}
	add := func(tag, a, b string, subnet uint32) {
		l, err := n.AddLink(topo.Endpoint{Host: a, Port: "p" + tag}, topo.Endpoint{Host: b, Port: "q" + tag}, subnet, 10)
		if err != nil {
			t.Fatal(err)
		}
		links[tag] = l.ID
	}
	add("ab", "core-a", "core-b", 0)
	add("bc", "core-b", "core-c", 2)
	add("ca", "core-c", "core-a", 4)
	add("u1", "cpe-1", "core-a", 6)
	add("u2a", "cpe-2", "core-b", 8)
	add("u2b", "cpe-2", "core-c", 10)
	n.Customers = []*topo.Customer{
		{Name: "site-1", Routers: []string{"cpe-1"}},
		{Name: "site-2", Routers: []string{"cpe-2"}},
	}
	return n, links
}

func at(sec int) time.Time { return time.Unix(int64(sec), 0).UTC() }

func TestIsolationEventsSingleHomed(t *testing.T) {
	n, links := isoNet(t)
	g := topo.NewGraph(n)
	failures := []trace.Failure{
		{Link: links["u1"], Start: at(100), End: at(200)},
		{Link: links["ab"], Start: at(500), End: at(600)}, // ring: no isolation
	}
	events := IsolationEvents(g, n.Customers, failures, at(10000))
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	e := events[0]
	if e.Customer != "site-1" {
		t.Errorf("customer = %s", e.Customer)
	}
	if !e.Interval.Start.Equal(at(100)) || !e.Interval.End.Equal(at(200)) {
		t.Errorf("interval = %+v", e.Interval)
	}
	if len(e.Links) != 1 || e.Links[0] != links["u1"] {
		t.Errorf("links = %v", e.Links)
	}
}

func TestIsolationEventsDualHomedNeedsBoth(t *testing.T) {
	n, links := isoNet(t)
	g := topo.NewGraph(n)
	failures := []trace.Failure{
		{Link: links["u2a"], Start: at(100), End: at(400)},
		{Link: links["u2b"], Start: at(200), End: at(300)},
	}
	events := IsolationEvents(g, n.Customers, failures, at(10000))
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	e := events[0]
	if e.Customer != "site-2" {
		t.Errorf("customer = %s", e.Customer)
	}
	// Isolated only while BOTH uplinks are down: [200, 300].
	if !e.Interval.Start.Equal(at(200)) || !e.Interval.End.Equal(at(300)) {
		t.Errorf("interval = %v..%v, want 200..300", e.Interval.Start, e.Interval.End)
	}
	if len(e.Links) != 2 {
		t.Errorf("links = %v, want the two uplinks", e.Links)
	}
}

func TestIsolationEventsRepeatedFailures(t *testing.T) {
	n, links := isoNet(t)
	g := topo.NewGraph(n)
	var failures []trace.Failure
	for i := 0; i < 5; i++ {
		s := 1000 * (i + 1)
		failures = append(failures, trace.Failure{Link: links["u1"], Start: at(s), End: at(s + 100)})
	}
	events := IsolationEvents(g, n.Customers, failures, at(100000))
	if len(events) != 5 {
		t.Errorf("events = %d, want 5 distinct isolations", len(events))
	}
}

func TestIsolationEventsOpenAtEnd(t *testing.T) {
	n, links := isoNet(t)
	g := topo.NewGraph(n)
	failures := []trace.Failure{{Link: links["u1"], Start: at(100), End: at(10000)}}
	end := at(5000)
	events := IsolationEvents(g, n.Customers, failures, end)
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if !events[0].Interval.End.Equal(at(10000)) && !events[0].Interval.End.Equal(end) {
		t.Errorf("open event end = %v", events[0].Interval.End)
	}
}

func TestIsolationEventsEmptyInputs(t *testing.T) {
	n, _ := isoNet(t)
	g := topo.NewGraph(n)
	if got := IsolationEvents(g, nil, []trace.Failure{{}}, at(0)); got != nil {
		t.Errorf("no customers: %v", got)
	}
	if got := IsolationEvents(g, n.Customers, nil, at(0)); got != nil {
		t.Errorf("no failures: %v", got)
	}
}

func TestIsolationOverlappingFailuresSameLink(t *testing.T) {
	// Two overlapping failure records on the same uplink (as happens
	// when comparing noisy sources) must keep the link down until the
	// LAST of them clears.
	n, links := isoNet(t)
	g := topo.NewGraph(n)
	failures := []trace.Failure{
		{Link: links["u1"], Start: at(100), End: at(300)},
		{Link: links["u1"], Start: at(200), End: at(500)},
	}
	events := IsolationEvents(g, n.Customers, failures, at(10000))
	if len(events) != 1 {
		t.Fatalf("events = %+v", events)
	}
	if !events[0].Interval.End.Equal(at(500)) {
		t.Errorf("end = %v, want 500 (reference counting)", events[0].Interval.End)
	}
}
