package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"netfail/internal/listener"
	"netfail/internal/match"
	"netfail/internal/netsim"
	"netfail/internal/tickets"
	"netfail/internal/trace"
)

// pipeline runs the full analysis over a simulated campaign: the
// integration path every table test shares.
func pipeline(t testing.TB, cfg netsim.Config) (*netsim.Campaign, *Analysis) {
	t.Helper()
	camp, err := netsim.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := listener.New(camp.Network)
	for _, c := range camp.LSPLog {
		if err := l.Process(c.Time, c.Data); err != nil {
			t.Fatal(err)
		}
	}
	res := l.Results()

	var truth []trace.Failure
	for _, f := range camp.GroundTruth {
		truth = append(truth, trace.Failure{Link: f.Link, Start: f.Start, End: f.End})
	}
	tix := tickets.NewIndex(tickets.Generate(cfg.Seed+1, truth, tickets.DefaultParams()))

	a, err := Analyze(context.Background(), Input{
		Network:         camp.Network,
		Customers:       camp.Network.Customers,
		Syslog:          camp.Syslog,
		ISTransitions:   res.ISTransitions,
		IPTransitions:   res.IPTransitions,
		Start:           camp.Config.Start,
		End:             camp.Config.End,
		ListenerOffline: camp.ListenerOffline,
		Tickets:         tix,
	})
	if err != nil {
		t.Fatal(err)
	}
	return camp, a
}

var (
	campOnce sync.Once
	campFull *netsim.Campaign
	aFull    *Analysis
)

// fullStudy runs the 13-month CENIC-scale campaign once per test
// binary; the table tests share it.
func fullStudy(t testing.TB) (*netsim.Campaign, *Analysis) {
	campOnce.Do(func() {
		campFull, aFull = pipeline(t, netsim.Config{Seed: 1})
	})
	if campFull == nil || aFull == nil {
		t.Fatal("full study pipeline failed earlier")
	}
	return campFull, aFull
}

func TestStudyScaleShape(t *testing.T) {
	camp, a := fullStudy(t)
	t4 := a.Table4()
	t.Logf("ground truth failures: %d", len(camp.GroundTruth))
	t.Logf("IS-IS transitions: %d (IS) / %d (IP)", len(a.ISReach), len(a.IPReach))
	t.Logf("syslog messages: %d (adj %d, phys %d)", len(camp.Syslog), a.Traces.AdjMessages, a.Traces.PhysMessages)
	t.Logf("Table 4: isis=%d syslog=%d overlap=%d | downtime isis=%.0fh syslog=%.0fh overlap=%.0fh | FP=%d (%.0f%%)",
		t4.ISISFailures, t4.SyslogFailures, t4.OverlapFailures,
		t4.ISISDowntime.Hours(), t4.SyslogDowntime.Hours(), t4.OverlapDowntime.Hours(),
		t4.FalsePositives, 100*t4.FalsePositiveFraction)

	// Diagnostics: decompose unmatched IS-IS failures.
	m := match.Failures(a.ISISFailures, a.SyslogFailures, a.In.Window)
	sByLink := match.GroupByLink(a.SyslogFailures)
	partial, invisible := 0, 0
	var partialDown, invisibleDown time.Duration
	for _, i := range m.OnlyA {
		f := a.ISISFailures[i]
		if match.Intersects(f, sByLink) {
			partial++
			partialDown += f.Duration()
		} else {
			invisible++
			invisibleDown += f.Duration()
		}
	}
	t.Logf("IS-IS-only failures: %d partial (%.0fh), %d invisible (%.0fh)",
		partial, partialDown.Hours(), invisible, invisibleDown.Hours())

	// Scale: the paper records 11,213 IS-IS failures over 13 months.
	// Within a factor of two keeps the statistics meaningful.
	if t4.ISISFailures < 5000 || t4.ISISFailures > 25000 {
		t.Errorf("IS-IS failures = %d, want paper-scale (~11,000)", t4.ISISFailures)
	}
	// Syslog reports more failures but less downtime (§4.2).
	if t4.SyslogFailures <= t4.ISISFailures*95/100 {
		t.Errorf("syslog failures (%d) should be at or above IS-IS (%d)", t4.SyslogFailures, t4.ISISFailures)
	}
	if t4.SyslogDowntime >= t4.ISISDowntime {
		t.Errorf("syslog downtime (%v) should be below IS-IS (%v)", t4.SyslogDowntime, t4.ISISDowntime)
	}
	// Roughly 20% of syslog failures are false positives.
	if t4.FalsePositiveFraction < 0.08 || t4.FalsePositiveFraction > 0.40 {
		t.Errorf("false positive fraction = %.2f, want ~0.21", t4.FalsePositiveFraction)
	}
}

func TestTable2Shape(t *testing.T) {
	_, a := fullStudy(t)
	t2 := a.Table2()
	t.Logf("Table 2: ISIS syslog vs IS=%.0f%%/%.0f%% vs IP=%.0f%%/%.0f%% | phys vs IS=%.0f%%/%.0f%% vs IP=%.0f%%/%.0f%%",
		100*t2.ISISDownVsIS, 100*t2.ISISUpVsIS, 100*t2.ISISDownVsIP, 100*t2.ISISUpVsIP,
		100*t2.PhysDownVsIS, 100*t2.PhysUpVsIS, 100*t2.PhysDownVsIP, 100*t2.PhysUpVsIP)

	// IS reachability matches far more IS-IS-process syslog than IP
	// reachability does (paper: 82% vs 25%).
	if t2.ISISDownVsIS < 2*t2.ISISDownVsIP {
		t.Errorf("IS reach (%.2f) should dominate IP reach (%.2f) for ISIS syslog downs", t2.ISISDownVsIS, t2.ISISDownVsIP)
	}
	if t2.ISISDownVsIS < 0.6 {
		t.Errorf("IS reach vs ISIS syslog = %.2f, want high (~0.82)", t2.ISISDownVsIS)
	}
	// IP reachability reflects physical media better than IS
	// reachability does (paper: 52% vs 31%).
	if t2.PhysDownVsIP <= t2.PhysDownVsIS {
		t.Errorf("IP reach (%.2f) should beat IS reach (%.2f) for physical syslog downs", t2.PhysDownVsIP, t2.PhysDownVsIS)
	}
}

func TestTable3Shape(t *testing.T) {
	_, a := fullStudy(t)
	t3 := a.Table3()
	dTot, uTot := t3.Down.Total(), t3.Up.Total()
	t.Logf("Table 3 DOWN: none=%d (%.0f%%) one=%d (%.0f%%) both=%d (%.0f%%)",
		t3.Down.None, pct(t3.Down.None, dTot), t3.Down.One, pct(t3.Down.One, dTot), t3.Down.Both, pct(t3.Down.Both, dTot))
	t.Logf("Table 3 UP:   none=%d (%.0f%%) one=%d (%.0f%%) both=%d (%.0f%%)",
		t3.Up.None, pct(t3.Up.None, uTot), t3.Up.One, pct(t3.Up.One, uTot), t3.Up.Both, pct(t3.Up.Both, uTot))
	t.Logf("unmatched in flap: down=%.0f%% up=%.0f%% | syslog flap matched=%.0f%%",
		100*t3.UnmatchedInFlapDown, 100*t3.UnmatchedInFlapUp, 100*t3.SyslogFlapMatchedFraction)

	if dTot == 0 || uTot == 0 {
		t.Fatal("no transitions accounted")
	}
	// Paper: 18% DOWN / 15% UP with no matching message.
	noneDown := float64(t3.Down.None) / float64(dTot)
	noneUp := float64(t3.Up.None) / float64(uTot)
	if noneDown < 0.05 || noneDown > 0.35 {
		t.Errorf("DOWN none fraction = %.2f, want ~0.18", noneDown)
	}
	if noneUp < 0.05 || noneUp > 0.35 {
		t.Errorf("UP none fraction = %.2f, want ~0.15", noneUp)
	}
	// Most unmatched transitions occur during flapping (67%/61%).
	if t3.UnmatchedInFlapDown < 0.4 {
		t.Errorf("unmatched-in-flap (down) = %.2f, want majority", t3.UnmatchedInFlapDown)
	}
}

func TestTable5Shape(t *testing.T) {
	_, a := fullStudy(t)
	t5 := a.Table5()
	for class, cells := range map[string]map[string]MetricSummaries{"Core": t5.Core, "CPE": t5.CPE} {
		for src, ms := range cells {
			t.Logf("%s/%s: fail/link med=%.1f avg=%.1f p95=%.1f | dur med=%.0fs avg=%.0fs | downtime med=%.1fh avg=%.1fh",
				class, src,
				ms.FailuresPerLink.Median, ms.FailuresPerLink.Mean, ms.FailuresPerLink.P95,
				ms.Duration.Median, ms.Duration.Mean,
				ms.Downtime.Median, ms.Downtime.Mean)
		}
	}
	t.Logf("KS: failures/link D=%.3f p=%.3f | duration D=%.3f p=%.3f | downtime D=%.3f p=%.3f",
		t5.KSFailuresPerLink.D, t5.KSFailuresPerLink.PValue,
		t5.KSDuration.D, t5.KSDuration.PValue,
		t5.KSDowntime.D, t5.KSDowntime.PValue)

	// CPE links fail more often than Core links (both sources).
	for _, src := range []string{"syslog", "isis"} {
		if t5.CPE[src].FailuresPerLink.Median <= t5.Core[src].FailuresPerLink.Median {
			t.Errorf("%s: CPE median failures/link (%.1f) should exceed Core (%.1f)",
				src, t5.CPE[src].FailuresPerLink.Median, t5.Core[src].FailuresPerLink.Median)
		}
	}
	// The paper's KS verdicts: failures/link and downtime consistent,
	// duration NOT.
	if !t5.KSFailuresPerLink.Consistent(0.01) {
		t.Errorf("failures/link should be KS-consistent (D=%.3f p=%.4f)", t5.KSFailuresPerLink.D, t5.KSFailuresPerLink.PValue)
	}
	if !t5.KSDowntime.Consistent(0.01) {
		t.Errorf("downtime should be KS-consistent (D=%.3f p=%.4f)", t5.KSDowntime.D, t5.KSDowntime.PValue)
	}
	if t5.KSDuration.Consistent(0.05) {
		t.Errorf("duration should NOT be KS-consistent (D=%.3f p=%.4f)", t5.KSDuration.D, t5.KSDuration.PValue)
	}
	// Cramér–von Mises must corroborate the verdicts.
	t.Logf("CvM: failures/link p=%.3f | duration p=%.3f | downtime p=%.3f",
		t5.CvMFailuresPerLink.PValue, t5.CvMDuration.PValue, t5.CvMDowntime.PValue)
	if !t5.CvMFailuresPerLink.Consistent(0.01) {
		t.Errorf("CvM rejects failures/link (p=%.4f)", t5.CvMFailuresPerLink.PValue)
	}
	if t5.CvMDuration.Consistent(0.05) {
		t.Errorf("CvM accepts duration (p=%.4f)", t5.CvMDuration.PValue)
	}
}

func TestTable6Shape(t *testing.T) {
	_, a := fullStudy(t)
	t6 := a.Table6()
	t.Logf("Table 6: lost=%d/%d spurious=%d/%d unknown=%d/%d | ambiguous span=%.1f%% | spurious-same-failure=%.0f%%",
		t6.LostDown, t6.LostUp, t6.SpuriousDown, t6.SpuriousUp, t6.UnknownDown, t6.UnknownUp,
		100*t6.AmbiguousFractionOfPeriod, 100*t6.SpuriousSameFailureDown)

	if t6.TotalDown() == 0 || t6.TotalUp() == 0 {
		t.Fatal("no ambiguities found")
	}
	// Paper: double downs outnumber double ups (461 vs 202), and
	// spurious retransmissions dominate double downs among
	// non-lost causes while lost messages dominate double ups.
	if t6.TotalDown() <= t6.TotalUp() {
		t.Errorf("double downs (%d) should outnumber double ups (%d)", t6.TotalDown(), t6.TotalUp())
	}
	if t6.SpuriousDown == 0 {
		t.Error("no spurious down retransmissions detected")
	}
	if t6.LostUp == 0 {
		t.Error("no lost-message double ups detected")
	}
}

func TestPolicyAblation(t *testing.T) {
	_, a := fullStudy(t)
	rows := a.PolicyAblation()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPolicy := make(map[trace.AmbiguityPolicy]DowntimePolicy)
	for _, r := range rows {
		byPolicy[r.Policy] = r
		t.Logf("policy %v: downtime=%.0fh err=%.0fh", r.Policy, r.SyslogDowntime.Hours(), r.AbsError.Hours())
	}
	// The paper's recommendation: HoldPrevious minimizes error.
	hp := byPolicy[trace.HoldPrevious].AbsError
	if hp > byPolicy[trace.AssumeDown].AbsError || hp > byPolicy[trace.AssumeUp].AbsError {
		t.Errorf("HoldPrevious error (%v) should be minimal (down=%v up=%v)",
			hp, byPolicy[trace.AssumeDown].AbsError, byPolicy[trace.AssumeUp].AbsError)
	}
}

func TestWindowKneeShape(t *testing.T) {
	_, a := fullStudy(t)
	pts := a.WindowKnee(nil)
	if len(pts) < 5 {
		t.Fatal("too few sweep points")
	}
	for _, p := range pts {
		t.Logf("window %v: downtime matched %.1f%% failures matched %.1f%%",
			p.Window, 100*p.MatchedDowntimeFraction, 100*p.MatchedFailureFraction)
	}
	// Monotone growth with a knee: the gain from 10s on must be
	// small relative to the gain up to 10s.
	var at1, at10, at60 float64
	for _, p := range pts {
		switch p.Window {
		case time.Second:
			at1 = p.MatchedDowntimeFraction
		case 10 * time.Second:
			at10 = p.MatchedDowntimeFraction
		case 60 * time.Second:
			at60 = p.MatchedDowntimeFraction
		}
	}
	if !(at10 > at1) {
		t.Errorf("matching should grow toward 10s: 1s=%.3f 10s=%.3f", at1, at10)
	}
	if at60-at10 > at10-at1 {
		t.Errorf("no knee at 10s: gain before=%.3f, after=%.3f", at10-at1, at60-at10)
	}
}

func TestTable7Shape(t *testing.T) {
	_, a := fullStudy(t)
	t7 := a.Table7()
	t.Logf("Table 7: isis events=%d sites=%d downtime=%.1fd | syslog events=%d sites=%d downtime=%.1fd | inter events=%d sites=%d downtime=%.1fd",
		t7.ISISEvents, t7.ISISSites, t7.ISISDowntime.Hours()/24,
		t7.SyslogEvents, t7.SyslogSites, t7.SyslogDowntime.Hours()/24,
		t7.IntersectionEvents, t7.IntersectionSites, t7.IntersectionDowntime.Hours()/24)
	t.Logf("syslog-only=%d (noisis=%d intersecting=%d) | isis-only=%d (partial=%d sawfail=%d unrelated=%d, %.1fd)",
		t7.SyslogOnlyEvents, t7.SyslogOnlyNoISISFailure, t7.SyslogOnlyIntersecting,
		t7.ISISOnlyEvents, t7.ISISOnlyPartialMatch, t7.ISISOnlySyslogSawFailures, t7.ISISOnlyUnrelated,
		t7.ISISOnlyDowntime.Hours()/24)

	if t7.ISISEvents == 0 || t7.SyslogEvents == 0 {
		t.Fatal("no isolation events")
	}
	// Paper: IS-IS sees more isolating events and more isolation
	// downtime than syslog; a small syslog-only set exists.
	if t7.ISISEvents <= t7.SyslogEvents {
		t.Errorf("IS-IS events (%d) should exceed syslog events (%d)", t7.ISISEvents, t7.SyslogEvents)
	}
	if t7.SyslogOnlyEvents == 0 {
		t.Error("expected some syslog-only isolation events")
	}
	if t7.IntersectionEvents == 0 {
		t.Error("no intersecting events")
	}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

func TestFalsePositiveBreakdown(t *testing.T) {
	_, a := fullStudy(t)
	fp := a.FalsePositives()
	t.Logf("false positives: %d total, %d short (%.0f%%) | downtime short=%.1fh long=%.1fh (long share %.0f%%) | long-in-flap %d | partial overlap %d (%.0fh) pure %.0fh",
		fp.Total, fp.Short, 100*fp.ShortFraction(),
		fp.ShortDowntime.Hours(), fp.LongDowntime.Hours(), 100*fp.LongDowntimeFraction(),
		fp.LongInFlap, fp.PartialOverlap, fp.PartialOverlapDowntime.Hours(), fp.PureDowntime.Hours())

	if fp.Total == 0 {
		t.Fatal("no false positives")
	}
	// Paper: 83% of false positives are <= 10 s.
	if fp.ShortFraction() < 0.55 {
		t.Errorf("short fraction = %.2f, want dominant (~0.83)", fp.ShortFraction())
	}
	// Paper: 94% of false-positive downtime belongs to the long ones.
	if fp.LongDowntimeFraction() < 0.7 {
		t.Errorf("long downtime fraction = %.2f, want dominant (~0.94)", fp.LongDowntimeFraction())
	}
	// Paper: long false positives occur overwhelmingly during flaps.
	long := fp.Total - fp.Short
	if long > 0 && float64(fp.LongInFlap)/float64(long) < 0.4 {
		t.Errorf("long-in-flap = %d of %d, want majority", fp.LongInFlap, long)
	}
}

func TestEgregiousIsolationsAndTimeline(t *testing.T) {
	_, a := fullStudy(t)
	worst := a.EgregiousIsolations(5)
	if len(worst) == 0 {
		t.Fatal("no matched isolation pairs")
	}
	for i, m := range worst {
		t.Logf("egregious %d: %s isis=%v syslog=%v ratio=%.1f overlap=%v",
			i, m.Customer, m.ISIS.Duration(), m.Syslog.Duration(), m.Ratio, m.Overlap)
		if m.Ratio < 1 {
			t.Errorf("ratio below 1: %+v", m)
		}
		if m.Overlap <= 0 {
			t.Errorf("matched pair without overlap: %+v", m)
		}
	}
	// Ranked worst-first.
	for i := 1; i < len(worst); i++ {
		if worst[i].Ratio > worst[i-1].Ratio {
			t.Error("not sorted by ratio")
		}
	}
	// The paper's anecdotes are order-of-magnitude mismatches; a
	// 13-month campaign should surface at least a 5x disagreement.
	if worst[0].Ratio < 5 {
		t.Errorf("worst ratio = %.1f, expected an egregious mismatch", worst[0].Ratio)
	}

	// Timelines for the worst-disagreement links interleave both
	// sources in time order.
	links := a.WorstDisagreementLinks(3)
	if len(links) == 0 {
		t.Fatal("no disagreement links")
	}
	tl := a.LinkTimeline(links[0])
	if len(tl) == 0 {
		t.Fatal("empty timeline")
	}
	sources := map[string]bool{}
	for i, e := range tl {
		sources[e.Source] = true
		if i > 0 && e.Time.Before(tl[i-1].Time) {
			t.Fatal("timeline out of order")
		}
	}
	if !sources["syslog"] || !sources["isis"] {
		t.Errorf("timeline missing a source: %v", sources)
	}
}
