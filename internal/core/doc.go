// Package core implements the paper's contribution: the head-to-head
// comparison of syslog-reconstructed and IS-IS-listener-reconstructed
// network failure histories.
//
// The pipeline mirrors §3.4: syslog messages and listener transitions
// are resolved onto the common link namespace mined from router
// configs; multi-link adjacencies are excluded; failures are
// reconstructed from each stream, sanitized (listener-offline
// removal, trouble-ticket verification of >24 h syslog failures), and
// matched with a ten-second window. The Analysis type then reproduces
// every table and figure of the evaluation: transition matching
// (Tables 2–3), failure and downtime accounting (Table 4), per-link
// statistics with KS consistency tests (Table 5, Figure 1), ambiguous
// state-change classification (Table 6), and customer-isolation
// analysis (Table 7).
package core
