package core

import (
	"sort"
	"time"

	"netfail/internal/match"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// AmbiguityCause classifies a repeated syslog transition (§4.3,
// Table 6).
type AmbiguityCause int

const (
	// CauseLostMessage: both repeated messages correspond to real
	// IS-IS transitions — the intervening opposite message was lost.
	CauseLostMessage AmbiguityCause = iota
	// CauseSpuriousRetransmission: the link was already in the
	// reported state according to IS-IS — the message is a spurious
	// reminder.
	CauseSpuriousRetransmission
	// CauseUnknown covers the remainder.
	CauseUnknown
)

// String names the cause.
func (c AmbiguityCause) String() string {
	switch c {
	case CauseLostMessage:
		return "lost-message"
	case CauseSpuriousRetransmission:
		return "spurious-retransmission"
	default:
		return "unknown"
	}
}

// Table6 counts ambiguous state changes by cause and direction.
type Table6 struct {
	// Counts[cause] per direction of the repeated message.
	LostDown, LostUp         int
	SpuriousDown, SpuriousUp int
	UnknownDown, UnknownUp   int
	// AmbiguousFractionOfPeriod is the share of the (link-weighted)
	// measurement period covered by ambiguous spans (paper: 7.8%).
	AmbiguousFractionOfPeriod float64
	// SpuriousSameFailureDown is the share of spurious Down messages
	// reporting the same IS-IS failure as the preceding message
	// (paper: 99%).
	SpuriousSameFailureDown float64
}

// TotalDown and TotalUp return the per-direction totals.
func (t Table6) TotalDown() int { return t.LostDown + t.SpuriousDown + t.UnknownDown }

// TotalUp returns the Up-direction total.
func (t Table6) TotalUp() int { return t.LostUp + t.SpuriousUp + t.UnknownUp }

// isisState answers "was the link up at time t according to IS-IS"
// and locates the failure containing t.
type isisState struct {
	byLink map[topo.LinkID][]trace.Failure
}

func newISISState(failures []trace.Failure) *isisState {
	return &isisState{byLink: match.GroupByLink(failures)}
}

// failureAt returns the index of the failure containing t, or -1.
func (s *isisState) failureAt(link topo.LinkID, t time.Time) int {
	fs := s.byLink[link]
	i := sort.Search(len(fs), func(i int) bool { return fs[i].End.After(t) })
	if i < len(fs) && !t.Before(fs[i].Start) {
		return i
	}
	return -1
}

// down reports whether the link was down at t per IS-IS.
func (s *isisState) down(link topo.LinkID, t time.Time) bool {
	return s.failureAt(link, t) >= 0
}

// Table6 classifies the ambiguous state changes in the syslog stream
// against IS-IS ground truth.
func (a *Analysis) Table6() Table6 {
	var t6 Table6
	w := a.In.Window
	isIdx := match.NewTransitionIndex(a.ISReach)
	state := newISISState(a.ISISRec.Failures)

	var spuriousDownSame, spuriousDownTotal int
	var ambiguousSpan time.Duration
	for _, amb := range a.SyslogRec.Ambiguities {
		ambiguousSpan += amb.Span().Duration()
		// Lost message: both repeated messages correspond to real
		// IS-IS transitions of their direction.
		firstReal := len(isIdx.Within(amb.Link, amb.Dir, amb.First, w)) > 0
		secondReal := len(isIdx.Within(amb.Link, amb.Dir, amb.Second, w)) > 0
		if firstReal && secondReal {
			if amb.Dir == trace.Down {
				t6.LostDown++
			} else {
				t6.LostUp++
			}
			continue
		}
		// Spurious retransmission: IS-IS already has the link in the
		// repeated state at the second message.
		isDown := state.down(amb.Link, amb.Second)
		if (amb.Dir == trace.Down) == isDown {
			if amb.Dir == trace.Down {
				t6.SpuriousDown++
				spuriousDownTotal++
				f1 := state.failureAt(amb.Link, amb.First)
				f2 := state.failureAt(amb.Link, amb.Second)
				if f1 >= 0 && f1 == f2 {
					spuriousDownSame++
				}
			} else {
				t6.SpuriousUp++
			}
			continue
		}
		if amb.Dir == trace.Down {
			t6.UnknownDown++
		} else {
			t6.UnknownUp++
		}
	}
	if spuriousDownTotal > 0 {
		t6.SpuriousSameFailureDown = float64(spuriousDownSame) / float64(spuriousDownTotal)
	}
	// Normalize against the link-weighted measurement period: the
	// ambiguous spans live on individual links.
	span := a.In.End.Sub(a.In.Start)
	if span > 0 && len(a.AnalyzedLinks) > 0 {
		t6.AmbiguousFractionOfPeriod = float64(ambiguousSpan) / (float64(span) * float64(len(a.AnalyzedLinks)))
	}
	return t6
}

// DowntimePolicy is one row of the ambiguity-policy ablation: total
// syslog downtime under a policy, against the IS-IS reference.
type DowntimePolicy struct {
	Policy         trace.AmbiguityPolicy
	SyslogDowntime time.Duration
	// AbsError is |syslog − IS-IS| total downtime.
	AbsError time.Duration
}

// PolicyAblation evaluates the three §4.3 strategies for ambiguous
// periods. HoldPrevious is the sanitized baseline (the main
// pipeline's downtime, with its one-time manual verification of long
// failures). The alternative strategies differ only in how the spans
// between repeated messages are accounted: AssumeDown additionally
// counts every double-Up span as downtime, AssumeUp removes every
// double-Down span (where it lies inside a surviving failure) from
// downtime. Manual verification cannot be re-run per strategy, so the
// deltas are taken on the raw ambiguity records — which is exactly
// why AssumeDown overshoots catastrophically: multi-day double-Up
// spans all become downtime. The paper finds HoldPrevious minimizes
// the error.
func (a *Analysis) PolicyAblation() []DowntimePolicy {
	ref := trace.TotalDowntime(a.ISISFailures)
	base := trace.TotalDowntime(a.SyslogFailures)
	kept := match.GroupByLink(a.SyslogFailures)

	var addDown, subUp time.Duration
	for _, amb := range a.SyslogRec.Ambiguities {
		switch amb.Dir {
		case trace.Up:
			// HoldPrevious treated the span as uptime.
			addDown += amb.Span().Duration()
		case trace.Down:
			// HoldPrevious treated the span as downtime if its
			// containing failure survived sanitization.
			probe := trace.Failure{Link: amb.Link, Start: amb.First, End: amb.Second}
			if match.Intersects(probe, kept) {
				subUp += amb.Span().Duration()
			}
		}
	}
	mk := func(p trace.AmbiguityPolicy, total time.Duration) DowntimePolicy {
		err := total - ref
		if err < 0 {
			err = -err
		}
		return DowntimePolicy{Policy: p, SyslogDowntime: total, AbsError: err}
	}
	return []DowntimePolicy{
		mk(trace.HoldPrevious, base),
		mk(trace.AssumeDown, base+addDown),
		mk(trace.AssumeUp, base-subUp),
	}
}
