package core

import (
	"time"

	"netfail/internal/match"
	"netfail/internal/stats"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Table1 is the dataset summary (paper Table 1).
type Table1 struct {
	Period                  trace.Interval
	CoreRouters, CPERouters int
	ConfigFiles             int
	CoreLinks, CPELinks     int
	SyslogMessages          int
	ISISUpdates             int
	MultiLinkAdjacencyPairs int
	AnalyzedLinks           int
}

// Table1 fills the dataset summary. ConfigFiles and ISISUpdates are
// campaign-level counts the analysis cannot see; callers supply them.
func (a *Analysis) Table1(configFiles, isisUpdates int) Table1 {
	core, cpe := a.In.Network.CountRouters()
	coreLinks, cpeLinks := a.In.Network.CountLinks()
	return Table1{
		Period:                  trace.Interval{Start: a.In.Start, End: a.In.End},
		CoreRouters:             core,
		CPERouters:              cpe,
		ConfigFiles:             configFiles,
		CoreLinks:               coreLinks,
		CPELinks:                cpeLinks,
		SyslogMessages:          a.Traces.Messages,
		ISISUpdates:             isisUpdates,
		MultiLinkAdjacencyPairs: len(a.In.Network.MultiLinkAdjacencies()),
		AnalyzedLinks:           len(a.AnalyzedLinks),
	}
}

// Table2 reports, for each reachability field, the fraction of its
// state transitions that match syslog transitions of each class
// (paper Table 2).
type Table2 struct {
	// Rows: [direction] → matched fraction, per syslog class and
	// reachability field.
	ISISDownVsIS, ISISDownVsIP float64
	ISISUpVsIS, ISISUpVsIP     float64
	PhysDownVsIS, PhysDownVsIP float64
	PhysUpVsIS, PhysUpVsIP     float64
}

// Table2 computes the reachability-field comparison.
func (a *Analysis) Table2() Table2 {
	w := a.In.Window
	isDown, isUp := splitDir(a.ISReach)
	ipDown, ipUp := splitDir(a.IPReach)
	adjDown, adjUp := splitDir(a.SyslogAdj)
	phDown, phUp := splitDir(a.SyslogPhysical)
	return Table2{
		ISISDownVsIS: match.MatchedFraction(isDown, adjDown, w),
		ISISDownVsIP: match.MatchedFraction(ipDown, adjDown, w),
		ISISUpVsIS:   match.MatchedFraction(isUp, adjUp, w),
		ISISUpVsIP:   match.MatchedFraction(ipUp, adjUp, w),
		PhysDownVsIS: match.MatchedFraction(isDown, phDown, w),
		PhysDownVsIP: match.MatchedFraction(ipDown, phDown, w),
		PhysUpVsIS:   match.MatchedFraction(isUp, phUp, w),
		PhysUpVsIP:   match.MatchedFraction(ipUp, phUp, w),
	}
}

func splitDir(ts []trace.Transition) (down, up []trace.Transition) {
	for _, t := range ts {
		if t.Dir == trace.Down {
			down = append(down, t)
		} else {
			up = append(up, t)
		}
	}
	return down, up
}

// Table3Row counts IS-IS transitions by how many of the link's two
// routers sent a matching syslog message.
type Table3Row struct {
	None, One, Both int
}

// Total returns the row total.
func (r Table3Row) Total() int { return r.None + r.One + r.Both }

// Table3 is the per-direction transition accounting plus the flap
// attribution of §4.1.
type Table3 struct {
	Down, Up Table3Row
	// UnmatchedInFlapDown/Up is the fraction of None-transitions
	// that occurred during flapping (paper: 67% and 61%).
	UnmatchedInFlapDown float64
	UnmatchedInFlapUp   float64
	// SyslogFlapMatchedFraction is the share of syslog transitions
	// during flap periods that match an IS-IS transition (paper:
	// under one half).
	SyslogFlapMatchedFraction float64
}

// Table3 computes the message-level matching table.
func (a *Analysis) Table3() Table3 {
	w := a.In.Window
	idx := match.NewTransitionIndex(a.SyslogPerRtr)
	var t3 Table3
	var noneFlapDown, noneFlapUp int
	for _, tr0 := range a.ISReach {
		reporters := idx.ReporterCount(tr0.Link, tr0.Dir, tr0.Time, w)
		row := &t3.Down
		if tr0.Dir == trace.Up {
			row = &t3.Up
		}
		switch reporters {
		case 0:
			row.None++
			if a.ISISFlaps.InFlap(tr0.Link, tr0.Time) {
				if tr0.Dir == trace.Down {
					noneFlapDown++
				} else {
					noneFlapUp++
				}
			}
		case 1:
			row.One++
		default:
			row.Both++
		}
	}
	if t3.Down.None > 0 {
		t3.UnmatchedInFlapDown = float64(noneFlapDown) / float64(t3.Down.None)
	}
	if t3.Up.None > 0 {
		t3.UnmatchedInFlapUp = float64(noneFlapUp) / float64(t3.Up.None)
	}

	// Reverse view: syslog transitions during flap vs IS-IS.
	isIdx := match.NewTransitionIndex(a.ISReach)
	var flapTotal, flapMatched int
	for _, tr0 := range a.SyslogAdj {
		if !a.ISISFlaps.InFlap(tr0.Link, tr0.Time) {
			continue
		}
		flapTotal++
		if isIdx.AnyWithin(tr0.Link, tr0.Dir, tr0.Time, w) {
			flapMatched++
		}
	}
	if flapTotal > 0 {
		t3.SyslogFlapMatchedFraction = float64(flapMatched) / float64(flapTotal)
	}
	return t3
}

// Table4 is the failure/downtime accounting after sanitization.
type Table4 struct {
	ISISFailures   int
	SyslogFailures int
	// OverlapFailures counts strictly matched failure pairs.
	OverlapFailures int
	ISISDowntime    time.Duration
	SyslogDowntime  time.Duration
	// OverlapDowntime is the interval-intersection downtime.
	OverlapDowntime time.Duration
	// FalsePositives counts syslog failures with no matching IS-IS
	// failure; FalsePositiveFraction normalizes by syslog failures.
	FalsePositives        int
	FalsePositiveFraction float64
	// Sanitization accounting.
	SyslogSanitize trace.SanitizeReport
	ISISSanitize   trace.SanitizeReport
}

// Table4 computes failure counts and downtime for both sources.
func (a *Analysis) Table4() Table4 {
	m := match.Failures(a.SyslogFailures, a.ISISFailures, a.In.Window)
	t4 := Table4{
		ISISFailures:    len(a.ISISFailures),
		SyslogFailures:  len(a.SyslogFailures),
		OverlapFailures: len(m.Pairs),
		ISISDowntime:    trace.TotalDowntime(a.ISISFailures),
		SyslogDowntime:  trace.TotalDowntime(a.SyslogFailures),
		OverlapDowntime: match.IntersectionDowntime(a.SyslogFailures, a.ISISFailures),
		FalsePositives:  len(m.OnlyA),
		SyslogSanitize:  a.SyslogSanitize,
		ISISSanitize:    a.ISISSanitize,
	}
	if t4.SyslogFailures > 0 {
		t4.FalsePositiveFraction = float64(t4.FalsePositives) / float64(t4.SyslogFailures)
	}
	return t4
}

// MetricSummaries holds the paper's four Table 5 metrics for one
// (class, source) cell, plus a bootstrap confidence interval on the
// duration median (the metric whose small paper differences — 10 s
// vs 12 s — most need an error bar).
type MetricSummaries struct {
	// FailuresPerLink is annualized failures per link.
	FailuresPerLink stats.Summary
	// Duration is failure duration in seconds.
	Duration stats.Summary
	// DurationMedianCI is the 95% bootstrap CI of the duration
	// median.
	DurationMedianCI [2]float64
	// TimeBetween is hours between consecutive failures on a link.
	TimeBetween stats.Summary
	// Downtime is annualized link downtime in hours.
	Downtime stats.Summary
}

// Table5 is the per-class statistical comparison plus the KS
// consistency verdicts of §4.2.
type Table5 struct {
	// Cells[class][source] with source "syslog" or "isis".
	Core, CPE map[string]MetricSummaries
	// KS tests between the two sources per metric, CPE and Core
	// pooled as in the paper's consistency discussion.
	KSFailuresPerLink stats.KSResult
	KSDuration        stats.KSResult
	KSDowntime        stats.KSResult
	// Cramér–von Mises corroboration: CvM integrates over the whole
	// CDF gap rather than keying on its maximum, so agreement with
	// KS makes the consistency verdicts robust.
	CvMFailuresPerLink stats.CvMResult
	CvMDuration        stats.CvMResult
	CvMDowntime        stats.CvMResult
}

// Table5 computes the statistics table.
func (a *Analysis) Table5() Table5 {
	t5 := Table5{
		Core: make(map[string]MetricSummaries),
		CPE:  make(map[string]MetricSummaries),
	}
	syslogByClass := a.failuresByClass(a.SyslogFailures)
	isisByClass := a.failuresByClass(a.ISISFailures)

	fill := func(dst map[string]MetricSummaries, source string, fs []trace.Failure, class topo.LinkClass) {
		dst[source] = a.metricSummaries(fs, class)
	}
	fill(t5.Core, "syslog", syslogByClass[topo.CoreLink], topo.CoreLink)
	fill(t5.Core, "isis", isisByClass[topo.CoreLink], topo.CoreLink)
	fill(t5.CPE, "syslog", syslogByClass[topo.CPELink], topo.CPELink)
	fill(t5.CPE, "isis", isisByClass[topo.CPELink], topo.CPELink)

	// Pooled KS tests (both classes together).
	sFPL, sDur, _, sDown := a.metricSamples(a.SyslogFailures, nil)
	iFPL, iDur, _, iDown := a.metricSamples(a.ISISFailures, nil)
	t5.KSFailuresPerLink, _ = stats.KSTest(sFPL, iFPL)
	t5.KSDuration, _ = stats.KSTest(sDur, iDur)
	t5.KSDowntime, _ = stats.KSTest(sDown, iDown)
	t5.CvMFailuresPerLink, _ = stats.CvMTest(sFPL, iFPL)
	t5.CvMDuration, _ = stats.CvMTest(sDur, iDur)
	t5.CvMDowntime, _ = stats.CvMTest(sDown, iDown)
	return t5
}

// metricSamples derives the four metric sample sets from a failure
// list. classFilter restricts to one class when non-nil.
func (a *Analysis) metricSamples(fs []trace.Failure, classFilter *topo.LinkClass) (perLink, durations, between, downtime []float64) {
	perLinkCount := make(map[topo.LinkID]int)
	perLinkDown := make(map[topo.LinkID]time.Duration)
	lastEnd := make(map[topo.LinkID]time.Time)
	for _, f := range fs {
		class, ok := a.linkClass(f.Link)
		if !ok || (classFilter != nil && class != *classFilter) {
			continue
		}
		perLinkCount[f.Link]++
		perLinkDown[f.Link] += f.Duration()
		durations = append(durations, f.Duration().Seconds())
		if prev, ok := lastEnd[f.Link]; ok && f.Start.After(prev) {
			between = append(between, f.Start.Sub(prev).Hours())
		}
		lastEnd[f.Link] = f.End
	}
	// Only links that failed at least once enter the per-link
	// distributions, as in the paper's annualized-per-link metrics.
	for link, n := range perLinkCount {
		perLink = append(perLink, float64(n)/a.Years)
		downtime = append(downtime, perLinkDown[link].Hours()/a.Years)
	}
	return perLink, durations, between, downtime
}

func (a *Analysis) metricSummaries(fs []trace.Failure, class topo.LinkClass) MetricSummaries {
	perLink, durations, between, downtime := a.metricSamples(fs, &class)
	var ms MetricSummaries
	ms.FailuresPerLink, _ = stats.Summarize(perLink)
	ms.Duration, _ = stats.Summarize(durations)
	ms.TimeBetween, _ = stats.Summarize(between)
	ms.Downtime, _ = stats.Summarize(downtime)
	if lo, hi, err := stats.BootstrapMedianCI(durations, 400, 0.05, 1); err == nil {
		ms.DurationMedianCI = [2]float64{lo, hi}
	}
	return ms
}
