package core

import (
	"context"
	"testing"
	"time"

	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// synthAnalysis builds an Analysis over the tiny network with
// hand-crafted transitions injected from both sources.
func synthAnalysis(t *testing.T, msgs []*syslog.Message, isTr, ipTr []trace.Transition) *Analysis {
	t.Helper()
	n, _ := tinyNet(t)
	a, err := Analyze(context.Background(), Input{
		Network:       n,
		Syslog:        msgs,
		ISTransitions: isTr,
		IPTransitions: ipTr,
		Start:         time.Unix(0, 0).UTC(),
		End:           time.Unix(100000, 0).UTC(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func isT(link topo.LinkID, sec int, dir trace.Direction) trace.Transition {
	return trace.Transition{Time: at(sec), Link: link, Dir: dir, Kind: trace.KindISReach, Reporter: "core-a"}
}

func TestTable2Synthetic(t *testing.T) {
	n, link := tinyNet(t)
	_ = n
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 100, false), // matches IS down at 103
		adjMsg("core-a", "Te0", "cpe-1", 200, true),  // matches IS up at 205
	}
	isTr := []trace.Transition{
		isT(link, 103, trace.Down),
		isT(link, 205, trace.Up),
		isT(link, 500, trace.Down), // no syslog match
		isT(link, 600, trace.Up),   // no syslog match
	}
	a := synthAnalysis(t, msgs, isTr, nil)
	t2 := a.Table2()
	if t2.ISISDownVsIS != 0.5 {
		t.Errorf("ISISDownVsIS = %v, want 0.5", t2.ISISDownVsIS)
	}
	if t2.ISISUpVsIS != 0.5 {
		t.Errorf("ISISUpVsIS = %v, want 0.5", t2.ISISUpVsIS)
	}
	// No IP transitions at all: fractions are zero.
	if t2.ISISDownVsIP != 0 {
		t.Errorf("ISISDownVsIP = %v", t2.ISISDownVsIP)
	}
}

func TestTable3Synthetic(t *testing.T) {
	_, link := tinyNet(t)
	msgs := []*syslog.Message{
		// Failure 1: both routers report the Down, one reports the Up.
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("cpe-1", "Gi0", "core-a", 102, false),
		adjMsg("core-a", "Te0", "cpe-1", 200, true),
		// Failure 2: nobody reports anything.
	}
	isTr := []trace.Transition{
		isT(link, 101, trace.Down),
		isT(link, 201, trace.Up),
		isT(link, 5000, trace.Down),
		isT(link, 5100, trace.Up),
	}
	a := synthAnalysis(t, msgs, isTr, nil)
	t3 := a.Table3()
	if t3.Down.Both != 1 || t3.Down.None != 1 || t3.Down.One != 0 {
		t.Errorf("Down = %+v", t3.Down)
	}
	if t3.Up.One != 1 || t3.Up.None != 1 || t3.Up.Both != 0 {
		t.Errorf("Up = %+v", t3.Up)
	}
}

func TestTable4Synthetic(t *testing.T) {
	_, link := tinyNet(t)
	msgs := []*syslog.Message{
		// Matches IS-IS failure [100, 200] exactly.
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("core-a", "Te0", "cpe-1", 200, true),
		// A syslog-only pseudo-failure.
		adjMsg("core-a", "Te0", "cpe-1", 900, false),
		adjMsg("core-a", "Te0", "cpe-1", 901, true),
	}
	isTr := []trace.Transition{
		isT(link, 100, trace.Down),
		isT(link, 200, trace.Up),
		// An IS-IS-only failure.
		isT(link, 3000, trace.Down),
		isT(link, 3300, trace.Up),
	}
	a := synthAnalysis(t, msgs, isTr, nil)
	t4 := a.Table4()
	if t4.ISISFailures != 2 || t4.SyslogFailures != 2 {
		t.Fatalf("counts: %+v", t4)
	}
	if t4.OverlapFailures != 1 {
		t.Errorf("overlap = %d, want 1", t4.OverlapFailures)
	}
	if t4.FalsePositives != 1 {
		t.Errorf("false positives = %d, want 1", t4.FalsePositives)
	}
	if t4.ISISDowntime != 400*time.Second {
		t.Errorf("isis downtime = %v", t4.ISISDowntime)
	}
	if t4.SyslogDowntime != 101*time.Second {
		t.Errorf("syslog downtime = %v", t4.SyslogDowntime)
	}
	if t4.OverlapDowntime != 100*time.Second {
		t.Errorf("overlap downtime = %v", t4.OverlapDowntime)
	}
}

func TestTable6Synthetic(t *testing.T) {
	_, link := tinyNet(t)
	msgs := []*syslog.Message{
		// Lost-message double Down: two real failures, the Up between
		// them lost. Both Downs match IS-IS Downs.
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("core-a", "Te0", "cpe-1", 500, false),
		adjMsg("core-a", "Te0", "cpe-1", 600, true),
		// Spurious double Down: second Down mid-failure, no IS-IS
		// transition near it, link down per IS-IS.
		adjMsg("core-a", "Te0", "cpe-1", 2000, false),
		adjMsg("core-a", "Te0", "cpe-1", 2500, false),
		adjMsg("core-a", "Te0", "cpe-1", 3000, true),
		// Unknown double Up: repeated Up while IS-IS link is down.
		adjMsg("core-a", "Te0", "cpe-1", 8000, false),
		adjMsg("core-a", "Te0", "cpe-1", 8100, true),
		adjMsg("core-a", "Te0", "cpe-1", 8200, true),
	}
	isTr := []trace.Transition{
		isT(link, 100, trace.Down),
		isT(link, 300, trace.Up), // lost by syslog
		isT(link, 500, trace.Down),
		isT(link, 600, trace.Up),
		isT(link, 2000, trace.Down),
		isT(link, 3000, trace.Up),
		isT(link, 8000, trace.Down),
		isT(link, 8500, trace.Up), // syslog's 8100/8200 Ups are early
	}
	a := synthAnalysis(t, msgs, isTr, nil)
	t6 := a.Table6()
	if t6.LostDown != 1 {
		t.Errorf("lost down = %d, want 1", t6.LostDown)
	}
	if t6.SpuriousDown != 1 {
		t.Errorf("spurious down = %d, want 1", t6.SpuriousDown)
	}
	if t6.SpuriousSameFailureDown != 1 {
		t.Errorf("same-failure fraction = %v, want 1", t6.SpuriousSameFailureDown)
	}
	if t6.UnknownUp != 1 {
		t.Errorf("unknown up = %d, want 1 (got %+v)", t6.UnknownUp, t6)
	}
}

func TestTable5SyntheticClasses(t *testing.T) {
	// One link is CPE (core-a..cpe-1); verify the class split.
	_, link := tinyNet(t)
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("core-a", "Te0", "cpe-1", 160, true),
	}
	isTr := []trace.Transition{
		isT(link, 100, trace.Down),
		isT(link, 150, trace.Up),
	}
	a := synthAnalysis(t, msgs, isTr, nil)
	t5 := a.Table5()
	if t5.CPE["syslog"].Duration.N != 1 || t5.CPE["syslog"].Duration.Median != 60 {
		t.Errorf("CPE syslog duration = %+v", t5.CPE["syslog"].Duration)
	}
	if t5.CPE["isis"].Duration.Median != 50 {
		t.Errorf("CPE isis duration = %+v", t5.CPE["isis"].Duration)
	}
	if t5.Core["syslog"].Duration.N != 0 {
		t.Errorf("core cell should be empty: %+v", t5.Core["syslog"])
	}
}

func TestFigure1Synthetic(t *testing.T) {
	_, link := tinyNet(t)
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("core-a", "Te0", "cpe-1", 130, true),
	}
	isTr := []trace.Transition{
		isT(link, 100, trace.Down),
		isT(link, 120, trace.Up),
	}
	a := synthAnalysis(t, msgs, isTr, nil)
	fig := a.Figure1()
	if len(fig.FailureDuration[0].X) != 1 || fig.FailureDuration[0].X[0] != 30 {
		t.Errorf("syslog duration CDF = %+v", fig.FailureDuration[0])
	}
	if len(fig.FailureDuration[1].X) != 1 || fig.FailureDuration[1].X[0] != 20 {
		t.Errorf("isis duration CDF = %+v", fig.FailureDuration[1])
	}
	if fig.FailureDuration[0].Y[0] != 1 {
		t.Errorf("CDF should reach 1: %+v", fig.FailureDuration[0].Y)
	}
}

func TestSanitizationRemovesOfflineSpanning(t *testing.T) {
	n, link := tinyNet(t)
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("core-a", "Te0", "cpe-1", 2000, true),
	}
	isTr := []trace.Transition{
		isT(link, 100, trace.Down),
		isT(link, 2000, trace.Up),
	}
	a, err := Analyze(context.Background(), Input{
		Network:         n,
		Syslog:          msgs,
		ISTransitions:   isTr,
		Start:           time.Unix(0, 0).UTC(),
		End:             time.Unix(100000, 0).UTC(),
		ListenerOffline: []trace.Interval{{Start: at(500), End: at(700)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.SyslogFailures) != 0 || len(a.ISISFailures) != 0 {
		t.Errorf("failures spanning offline windows must be removed: %d/%d",
			len(a.SyslogFailures), len(a.ISISFailures))
	}
	if a.SyslogSanitize.RemovedOffline != 1 || a.ISISSanitize.RemovedOffline != 1 {
		t.Errorf("sanitize reports: %+v %+v", a.SyslogSanitize, a.ISISSanitize)
	}
}
