package core

// Shard-merge determinism for the extraction stage: chunked parsing
// plus per-link merge must reproduce the sequential extraction exactly
// at every worker count, counters included.

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"netfail/internal/syslog"
	"netfail/internal/topo"
)

// meshNet builds a core mesh with enough links that per-link sharding
// actually fans out.
func meshNet(t *testing.T) *topo.Network {
	t.Helper()
	n := topo.NewNetwork()
	const routers = 6
	for i := 0; i < routers; i++ {
		if err := n.AddRouter(&topo.Router{
			Name:     fmt.Sprintf("core-%d", i),
			Class:    topo.Core,
			SystemID: topo.SystemIDFromIndex(i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	subnet := uint32(0)
	for i := 0; i < routers; i++ {
		for j := i + 1; j < routers; j++ {
			subnet += 4
			_, err := n.AddLink(
				topo.Endpoint{Host: fmt.Sprintf("core-%d", i), Port: fmt.Sprintf("Te%d", j)},
				topo.Endpoint{Host: fmt.Sprintf("core-%d", j), Port: fmt.Sprintf("Te%d", i)},
				subnet, 10)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return n
}

// randomAdjStream emits a seeded up/down adjacency chatter over every
// link of the mesh, with some unresolvable noise mixed in so the
// tally counters are exercised too.
func randomAdjStream(rng *rand.Rand, n *topo.Network, count int) []*syslog.Message {
	type pair struct{ host, iface, peer string }
	var pairs []pair
	for _, l := range n.Links {
		pairs = append(pairs,
			pair{l.A.Host, l.A.Port, l.B.Host},
			pair{l.B.Host, l.B.Port, l.A.Host})
	}
	msgs := make([]*syslog.Message, 0, count)
	for i := 0; i < count; i++ {
		sec := 1000 + rng.Intn(50000)
		when := time.Unix(int64(sec), 0).UTC()
		switch rng.Intn(12) {
		case 0: // unknown router
			msgs = append(msgs, syslog.AdjChange(syslog.DialectIOS, "ghost", uint64(i),
				when, "core-0", "Te0", rng.Intn(2) == 0, "test"))
		case 1: // unknown interface
			msgs = append(msgs, syslog.AdjChange(syslog.DialectIOS, "core-0", uint64(i),
				when, "core-1", "Te99", rng.Intn(2) == 0, "test"))
		case 2: // physical-layer message
			p := pairs[rng.Intn(len(pairs))]
			msgs = append(msgs, syslog.LinkUpDown(p.host, uint64(i), when, p.iface, rng.Intn(2) == 0))
		default:
			p := pairs[rng.Intn(len(pairs))]
			msgs = append(msgs, syslog.AdjChange(syslog.DialectIOS, p.host, uint64(i),
				when, p.peer, p.iface, rng.Intn(2) == 0, "test"))
		}
	}
	return msgs
}

func TestExtractSyslogParallelMatchesSequential(t *testing.T) {
	n := meshNet(t)
	rng := rand.New(rand.NewSource(17))
	msgs := randomAdjStream(rng, n, 2000)
	want := ExtractSyslogParallel(context.Background(), n, msgs, 60*time.Second, 1)
	for _, workers := range []int{0, 2, 3, 8, 33} {
		got := ExtractSyslogParallel(context.Background(), n, msgs, 60*time.Second, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers %d: parallel extraction diverges from sequential", workers)
		}
	}
	// The exported sequential entry point is the same path.
	if got := ExtractSyslog(n, msgs, 60*time.Second); !reflect.DeepEqual(got, want) {
		t.Error("ExtractSyslog diverges from ExtractSyslogParallel(…, 1)")
	}
}

func TestChunkBounds(t *testing.T) {
	cases := []struct {
		n, workers int
		want       []int
	}{
		{0, 4, []int{0, 0}},
		{10, 1, []int{0, 10}},
		{10, 3, []int{0, 3, 6, 10}},
		{3, 8, []int{0, 1, 2, 3}},
		{7, 0, []int{0, 7}},
	}
	for _, c := range cases {
		got := chunkBounds(c.n, c.workers)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("chunkBounds(%d, %d) = %v, want %v", c.n, c.workers, got, c.want)
		}
		// Bounds must be monotone and cover [0, n].
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Errorf("chunkBounds(%d, %d) not monotone: %v", c.n, c.workers, got)
			}
		}
	}
}
