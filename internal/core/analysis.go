package core

import (
	"context"
	"fmt"
	"time"

	"netfail/internal/match"
	"netfail/internal/obs"
	"netfail/internal/pool"
	"netfail/internal/syslog"
	"netfail/internal/tickets"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// Input assembles everything the comparison consumes. The network is
// typically the config-mined topology; customers come from
// operational knowledge (the simulator's topology carries them).
type Input struct {
	Network *topo.Network
	// Customers lists the customer sites for isolation analysis;
	// may be nil to skip Table 7.
	Customers []*topo.Customer
	// Syslog is the collector's message log.
	Syslog []*syslog.Message
	// Traces, when non-nil, supplies pre-extracted syslog traces and
	// skips the extraction stage; Syslog may then be nil. The sharded
	// capture path extracts shard by shard (bounding residency to one
	// shard's messages) and merges in manifest order before analysis;
	// benchmark harnesses use it to reuse one extraction across runs.
	Traces *SyslogTraces
	// ISTransitions and IPTransitions are the listener's output.
	ISTransitions []trace.Transition
	IPTransitions []trace.Transition
	// Start and End bound the observation window.
	Start, End time.Time
	// ListenerOffline windows drive sanitization.
	ListenerOffline []trace.Interval
	// Tickets verifies long syslog failures; nil keeps them all.
	Tickets *tickets.Index
	// Window is the matching window (default ten seconds); FlapGap
	// the flapping rule (default ten minutes). MergeWindow is the
	// span within which the two routers' same-direction messages are
	// collapsed into one transition (default sixty seconds — wider
	// than the matching window, since the second router's report can
	// lag well past ten seconds without being a new transition).
	Window      time.Duration
	FlapGap     time.Duration
	MergeWindow time.Duration
	// IncludeMultiLink keeps multi-link-adjacency links in the
	// analysis. Only meaningful when the devices advertised RFC 5307
	// link identifiers (netsim.Config.EnableLinkIDs), which let the
	// listener attribute changes to individual parallel links —
	// otherwise those links simply contribute empty IS-IS traces.
	IncludeMultiLink bool
	// Parallelism bounds the worker pool the pipeline's sharded
	// stages run on: <= 0 means one worker per CPU (GOMAXPROCS), 1
	// forces the sequential reference path. Every worker count
	// produces byte-identical output — shards merge in stable
	// link-ID/time order — so this knob trades wall-clock for cores,
	// never determinism.
	Parallelism int
}

// Analysis is the complete comparison state: the reconstructed and
// sanitized traces from both sources plus the indexes the table
// computations share.
type Analysis struct {
	In     Input
	Years  float64
	Traces *SyslogTraces

	// AnalyzedLinks are the links included in the comparison:
	// multi-link adjacencies excluded (§3.4).
	AnalyzedLinks []*topo.Link

	// Filtered transition streams (analyzed links only).
	SyslogAdj      []trace.Transition
	SyslogPerRtr   []trace.Transition
	SyslogPhysical []trace.Transition
	ISReach        []trace.Transition
	IPReach        []trace.Transition

	// Reconstructions.
	SyslogRec trace.Reconstruction
	ISISRec   trace.Reconstruction

	// Sanitized failure lists and their sanitize reports.
	SyslogFailures []trace.Failure
	ISISFailures   []trace.Failure
	SyslogSanitize trace.SanitizeReport
	ISISSanitize   trace.SanitizeReport

	// Flap indexes over each source's failures.
	SyslogFlaps *trace.FlapIndex
	ISISFlaps   *trace.FlapIndex
}

// Analyze runs the full §3.4 pipeline. Cancellation is honored at
// every stage and shard boundary: if ctx is canceled mid-run, Analyze
// stops dispatching work and returns ctx's error (running shards
// finish first, so no partial per-index state ever escapes).
// Observability state attached to ctx (obs.WithTracer, obs.WithRegistry,
// obs.WithProgress) instruments each stage; it never changes the
// analysis itself.
func Analyze(ctx context.Context, in Input) (*Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if in.Network == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if !in.Start.Before(in.End) {
		return nil, fmt.Errorf("core: empty observation window")
	}
	if in.Window == 0 {
		in.Window = match.DefaultWindow
	}
	if in.FlapGap == 0 {
		in.FlapGap = trace.DefaultFlapGap
	}
	if in.MergeWindow == 0 {
		in.MergeWindow = 60 * time.Second
	}
	ctx, done := obs.Stage(ctx, "analyze")
	defer done()

	a := &Analysis{
		In:    in,
		Years: in.End.Sub(in.Start).Hours() / (365.25 * 24),
	}

	// Link namespace: exclude multi-link adjacencies (§3.4), unless
	// the deployment advertises link identifiers.
	analyzed := make(map[topo.LinkID]bool)
	for _, l := range in.Network.Links {
		if in.IncludeMultiLink || !in.Network.IsMultiLink(l.ID) {
			a.AnalyzedLinks = append(a.AnalyzedLinks, l)
			analyzed[l.ID] = true
		}
	}

	workers := resolveParallelism(in.Parallelism)

	// Syslog extraction and filtering. The filters are independent
	// order-preserving scans over disjoint outputs, so they fan out
	// across the pool.
	if in.Traces != nil {
		a.Traces = in.Traces
	} else {
		a.Traces = ExtractSyslogParallel(ctx, in.Network, in.Syslog, in.MergeWindow, workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	obs.Add(ctx, "syslog.messages", int64(a.Traces.Messages))
	obs.Add(ctx, "syslog.nonlink", int64(a.Traces.NonLink))
	obs.Add(ctx, "drops.syslog.unresolved", int64(a.Traces.Unresolved))

	fctx, fdone := obs.Stage(ctx, "filter")
	err := pool.StagesCtx(fctx, workers,
		func(context.Context) { a.SyslogAdj = filterLinks(a.Traces.MergedAdj, analyzed) },
		func(context.Context) { a.SyslogPerRtr = filterLinks(a.Traces.PerRouterAdj, analyzed) },
		func(context.Context) { a.SyslogPhysical = filterLinks(a.Traces.MergedPhysical, analyzed) },
		func(context.Context) { a.ISReach = filterLinks(in.ISTransitions, analyzed) },
		func(context.Context) { a.IPReach = filterLinks(in.IPTransitions, analyzed) },
	)
	fdone()
	if err != nil {
		return nil, err
	}
	obs.Add(ctx, "transitions.syslog.adj", int64(len(a.SyslogAdj)))
	obs.Add(ctx, "transitions.syslog.physical", int64(len(a.SyslogPhysical)))
	obs.Add(ctx, "transitions.isis", int64(len(a.ISReach)))

	// Reconstruction: the two sources are independent, and each one
	// shards per link inside ReconstructParallel.
	rctx, rdone := obs.Stage(ctx, "reconstruct")
	err = pool.StagesCtx(rctx, workers,
		func(sctx context.Context) { a.SyslogRec = trace.ReconstructParallel(sctx, a.SyslogAdj, workers) },
		func(sctx context.Context) { a.ISISRec = trace.ReconstructParallel(sctx, a.ISReach, workers) },
	)
	rdone()
	if err != nil {
		return nil, err
	}

	// Sanitization: both sources drop failures spanning listener
	// outages (those periods cannot be compared); syslog failures
	// beyond 24 h are verified against trouble tickets (§4.2).
	verify := func(f trace.Failure) bool { return true }
	if in.Tickets != nil {
		verify = in.Tickets.Verify
	}
	sctx, sdone := obs.Stage(ctx, "sanitize")
	err = pool.StagesCtx(sctx, workers,
		func(context.Context) {
			a.SyslogSanitize = trace.Sanitize(a.SyslogRec.Failures, in.ListenerOffline, trace.LongFailureThreshold, verify)
			a.SyslogFailures = a.SyslogSanitize.Kept
			a.SyslogFlaps = trace.NewFlapIndex(a.SyslogFailures, in.FlapGap)
		},
		func(context.Context) {
			a.ISISSanitize = trace.Sanitize(a.ISISRec.Failures, in.ListenerOffline, 0, nil)
			a.ISISFailures = a.ISISSanitize.Kept
			a.ISISFlaps = trace.NewFlapIndex(a.ISISFailures, in.FlapGap)
		},
	)
	sdone()
	if err != nil {
		return nil, err
	}
	obs.Add(ctx, "failures.syslog", int64(len(a.SyslogFailures)))
	obs.Add(ctx, "failures.isis", int64(len(a.ISISFailures)))

	// Matching accounting exists only to be observed — the report
	// recomputes matches per table — so it runs only when some
	// observability consumer is attached, and never feeds back into
	// the Analysis.
	if obs.Enabled(ctx) {
		mctx, mdone := obs.Stage(ctx, "match")
		fm := match.Failures(a.ISISFailures, a.SyslogFailures, in.Window)
		obs.Add(mctx, "match.pairs", int64(len(fm.Pairs)))
		obs.Add(mctx, "match.unmatched.isis", int64(len(fm.OnlyA)))
		obs.Add(mctx, "match.unmatched.syslog", int64(len(fm.OnlyB)))
		mdone()
	}
	return a, nil
}

func filterLinks(ts []trace.Transition, keep map[topo.LinkID]bool) []trace.Transition {
	// Capacity hint: nearly every transition survives the multi-link
	// exclusion, so size for the input.
	out := make([]trace.Transition, 0, len(ts))
	for _, t := range ts {
		if keep[t.Link] {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// linkClass returns the class of a link in the analysis namespace.
func (a *Analysis) linkClass(id topo.LinkID) (topo.LinkClass, bool) {
	l, ok := a.In.Network.LinkByID(id)
	if !ok {
		return 0, false
	}
	return l.Class, true
}

// failuresByClass splits a failure list by link class.
func (a *Analysis) failuresByClass(fs []trace.Failure) map[topo.LinkClass][]trace.Failure {
	out := make(map[topo.LinkClass][]trace.Failure)
	for _, f := range fs {
		if class, ok := a.linkClass(f.Link); ok {
			out[class] = append(out[class], f)
		}
	}
	return out
}
