package core

import (
	"time"

	"netfail/internal/match"
	"netfail/internal/trace"
)

// FalsePositiveBreakdown reproduces the §4.3 analysis of syslog
// failures the IS-IS listener never saw: most are ten seconds or
// less (83% in the paper), almost all the false-positive downtime
// sits in the long remainder (94%), and the long ones concentrate in
// flapping periods. The footnote-2 decomposition — how much apparent
// false-positive downtime actually belongs to failures that partially
// overlap real ones — is included.
type FalsePositiveBreakdown struct {
	// Total counts syslog failures with no matching IS-IS failure.
	Total int
	// Short counts false positives at or below the threshold
	// (paper: ten seconds, 83%).
	Short          int
	ShortThreshold time.Duration
	// ShortDowntime and LongDowntime split the false-positive
	// downtime (paper: 94% belongs to the long remainder).
	ShortDowntime time.Duration
	LongDowntime  time.Duration
	// LongInFlap counts long false positives inside flapping periods
	// (paper: all but 19 of the 373).
	LongInFlap int
	// PartialOverlap counts false positives that intersect some
	// IS-IS failure without matching it, with their downtime —
	// footnote 2's 365.5 of 383 hours.
	PartialOverlap         int
	PartialOverlapDowntime time.Duration
	// PureDowntime is downtime of false positives with no IS-IS
	// overlap at all.
	PureDowntime time.Duration
}

// ShortFraction returns the share of false positives at or below the
// threshold.
func (b FalsePositiveBreakdown) ShortFraction() float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Short) / float64(b.Total)
}

// LongDowntimeFraction returns the share of false-positive downtime
// in the long remainder.
func (b FalsePositiveBreakdown) LongDowntimeFraction() float64 {
	total := b.ShortDowntime + b.LongDowntime
	if total == 0 {
		return 0
	}
	return float64(b.LongDowntime) / float64(total)
}

// FalsePositives computes the §4.3 breakdown with the paper's
// ten-second short threshold.
func (a *Analysis) FalsePositives() FalsePositiveBreakdown {
	const threshold = 10 * time.Second
	b := FalsePositiveBreakdown{ShortThreshold: threshold}

	m := match.Failures(a.SyslogFailures, a.ISISFailures, a.In.Window)
	isisByLink := match.GroupByLink(a.ISISFailures)

	for _, i := range m.OnlyA {
		f := a.SyslogFailures[i]
		b.Total++
		short := f.Duration() <= threshold
		overlaps := match.Intersects(f, isisByLink)
		if overlaps {
			b.PartialOverlap++
			b.PartialOverlapDowntime += f.Duration()
		} else {
			b.PureDowntime += f.Duration()
		}
		if short {
			b.Short++
			b.ShortDowntime += f.Duration()
			continue
		}
		b.LongDowntime += f.Duration()
		if a.ISISFlaps.InFlap(f.Link, f.Start) || a.SyslogFlaps.InFlap(f.Link, f.Start) {
			b.LongInFlap++
		}
	}
	return b
}

// ambiguityFromTrace re-exports the trace ambiguity for callers of
// the breakdown who also want the §4.3 double-message records.
func (a *Analysis) Ambiguities() []trace.Ambiguity {
	return a.SyslogRec.Ambiguities
}
