package core

import (
	"context"
	"testing"
	"time"

	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// tinyNet builds a two-router, one-link network for unit tests.
func tinyNet(t *testing.T) (*topo.Network, topo.LinkID) {
	t.Helper()
	n := topo.NewNetwork()
	for i, name := range []string{"core-a", "cpe-1"} {
		class := topo.Core
		if i == 1 {
			class = topo.CPE
		}
		if err := n.AddRouter(&topo.Router{
			Name: name, Class: class, SystemID: topo.SystemIDFromIndex(i + 1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	l, err := n.AddLink(
		topo.Endpoint{Host: "core-a", Port: "Te0"},
		topo.Endpoint{Host: "cpe-1", Port: "Gi0"}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	return n, l.ID
}

func adjMsg(host, iface, peer string, sec int, up bool) *syslog.Message {
	return syslog.AdjChange(syslog.DialectIOS, host, uint64(sec),
		time.Unix(int64(sec), 0).UTC(), peer, iface, up, "test")
}

func TestExtractSyslogResolvesAndSplits(t *testing.T) {
	n, link := tinyNet(t)
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("cpe-1", "Gi0", "core-a", 103, false), // counterpart: merged
		adjMsg("core-a", "Te0", "cpe-1", 200, true),
		syslog.LinkUpDown("core-a", 5, time.Unix(150, 0).UTC(), "Te0", false),
		// Unresolvable: unknown interface.
		adjMsg("core-a", "Te99", "cpe-1", 300, false),
		// Unknown router.
		adjMsg("ghost", "Te0", "cpe-1", 300, false),
	}
	st := ExtractSyslog(n, msgs, 60*time.Second)

	if st.AdjMessages != 3 {
		t.Errorf("adj messages = %d, want 3", st.AdjMessages)
	}
	if st.PhysMessages != 1 {
		t.Errorf("phys messages = %d, want 1", st.PhysMessages)
	}
	if st.Unresolved != 2 {
		t.Errorf("unresolved = %d, want 2", st.Unresolved)
	}
	if len(st.PerRouterAdj) != 3 {
		t.Errorf("per-router = %d, want 3", len(st.PerRouterAdj))
	}
	// Merged: Down(100) [Down(103) absorbed] Up(200).
	if len(st.MergedAdj) != 2 {
		t.Fatalf("merged = %+v", st.MergedAdj)
	}
	if st.MergedAdj[0].Dir != trace.Down || !st.MergedAdj[0].Time.Equal(time.Unix(100, 0).UTC()) {
		t.Errorf("merged[0] = %+v", st.MergedAdj[0])
	}
	if st.MergedAdj[0].Link != link {
		t.Errorf("link = %v", st.MergedAdj[0].Link)
	}
	if len(st.MergedPhysical) != 1 {
		t.Errorf("physical = %+v", st.MergedPhysical)
	}
}

func TestExtractSyslogKeepsTrueDoubles(t *testing.T) {
	n, _ := tinyNet(t)
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("core-a", "Te0", "cpe-1", 300, false), // 200 s later: genuine double
		adjMsg("core-a", "Te0", "cpe-1", 400, true),
	}
	st := ExtractSyslog(n, msgs, 60*time.Second)
	if len(st.MergedAdj) != 3 {
		t.Fatalf("merged = %+v (true double must survive)", st.MergedAdj)
	}
	rec := trace.Reconstruct(st.MergedAdj)
	if len(rec.Ambiguities) != 1 || rec.Ambiguities[0].Dir != trace.Down {
		t.Errorf("ambiguities = %+v", rec.Ambiguities)
	}
}

func TestExtractSyslogAlternationNotMerged(t *testing.T) {
	// Down/Up pairs inside the merge window alternate direction and
	// must all survive (a 3-second flap blip is two transitions).
	n, _ := tinyNet(t)
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("core-a", "Te0", "cpe-1", 103, true),
		adjMsg("core-a", "Te0", "cpe-1", 106, false),
		adjMsg("core-a", "Te0", "cpe-1", 109, true),
	}
	st := ExtractSyslog(n, msgs, 60*time.Second)
	if len(st.MergedAdj) != 4 {
		t.Fatalf("merged = %d, want 4", len(st.MergedAdj))
	}
	rec := trace.Reconstruct(st.MergedAdj)
	if len(rec.Failures) != 2 {
		t.Errorf("failures = %+v", rec.Failures)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	n, _ := tinyNet(t)
	if _, err := Analyze(context.Background(), Input{}); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := Analyze(context.Background(), Input{Network: n}); err == nil {
		t.Error("empty window accepted")
	}
	in := Input{
		Network: n,
		Start:   time.Unix(0, 0),
		End:     time.Unix(1000, 0),
	}
	a, err := Analyze(context.Background(), in)
	if err != nil {
		t.Fatalf("minimal analyze: %v", err)
	}
	if len(a.AnalyzedLinks) != 1 {
		t.Errorf("analyzed links = %d", len(a.AnalyzedLinks))
	}
	// Defaults applied.
	if a.In.Window != 10*time.Second || a.In.MergeWindow != 60*time.Second {
		t.Errorf("defaults: %+v", a.In)
	}
}

func TestAnalyzeExcludesMultiLink(t *testing.T) {
	n, _ := tinyNet(t)
	// Add a parallel link to create a multi-link adjacency.
	if _, err := n.AddLink(
		topo.Endpoint{Host: "core-a", Port: "Te1"},
		topo.Endpoint{Host: "cpe-1", Port: "Gi1"}, 2, 10); err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(context.Background(), Input{Network: n, Start: time.Unix(0, 0), End: time.Unix(1000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.AnalyzedLinks) != 0 {
		t.Errorf("multi-link adjacency links must be excluded: %v", a.AnalyzedLinks)
	}
}
