package core

import (
	"time"

	"netfail/internal/match"
	"netfail/internal/stats"
	"netfail/internal/topo"
)

// CDF is one empirical curve of Figure 1: x values with cumulative
// probabilities.
type CDF struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure1 holds the three CPE-link cumulative distributions of the
// paper's Figure 1, each with a syslog and an IS-IS curve.
type Figure1 struct {
	// FailureDuration in seconds (Fig 1a).
	FailureDuration [2]CDF
	// LinkDowntime in annualized hours (Fig 1b).
	LinkDowntime [2]CDF
	// TimeBetween in hours (Fig 1c).
	TimeBetween [2]CDF
}

// Figure1 computes the CPE-link CDFs for both sources.
func (a *Analysis) Figure1() Figure1 {
	var fig Figure1
	cpe := topo.CPELink
	_, sDur, sBet, sDown := a.metricSamples(a.SyslogFailures, &cpe)
	_, iDur, iBet, iDown := a.metricSamples(a.ISISFailures, &cpe)
	fig.FailureDuration[0] = makeCDF("syslog", sDur)
	fig.FailureDuration[1] = makeCDF("isis", iDur)
	fig.LinkDowntime[0] = makeCDF("syslog", sDown)
	fig.LinkDowntime[1] = makeCDF("isis", iDown)
	fig.TimeBetween[0] = makeCDF("syslog", sBet)
	fig.TimeBetween[1] = makeCDF("isis", iBet)
	return fig
}

func makeCDF(label string, sample []float64) CDF {
	x, y := stats.NewECDF(sample).Points()
	return CDF{Label: label, X: x, Y: y}
}

// WindowKnee reproduces the (omitted-for-space) window-size analysis
// behind §3.4's "clear knee at ten seconds": the fraction of syslog
// downtime matched to IS-IS failures as the matching window grows.
func (a *Analysis) WindowKnee(windows []time.Duration) []match.WindowPoint {
	if len(windows) == 0 {
		windows = []time.Duration{
			1 * time.Second, 2 * time.Second, 3 * time.Second, 5 * time.Second,
			8 * time.Second, 10 * time.Second, 15 * time.Second, 20 * time.Second,
			30 * time.Second, 45 * time.Second, 60 * time.Second,
		}
	}
	return match.WindowSweep(a.SyslogFailures, a.ISISFailures, windows)
}
