package core

import (
	"sort"
	"time"

	"netfail/internal/match"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// IsolationEvent is one maximal interval during which a customer site
// had no path to the backbone (§4.4).
type IsolationEvent struct {
	Customer string
	Interval trace.Interval
	// Links lists the links that were down when the isolation began.
	Links []topo.LinkID
}

// Duration returns the event length.
func (e IsolationEvent) Duration() time.Duration { return e.Interval.Duration() }

// IsolationEvents sweeps a failure trace over the topology and
// returns every customer-isolation interval. The graph must be built
// over a network that carries the customer list.
func IsolationEvents(g *topo.Graph, customers []*topo.Customer, failures []trace.Failure, end time.Time) []IsolationEvent {
	if len(customers) == 0 || len(failures) == 0 {
		return nil
	}
	// Boundary events: failure starts and ends.
	type boundary struct {
		t    time.Time
		link topo.LinkID
		down bool
	}
	bounds := make([]boundary, 0, 2*len(failures))
	for _, f := range failures {
		bounds = append(bounds, boundary{t: f.Start, link: f.Link, down: true})
		bounds = append(bounds, boundary{t: f.End, link: f.Link, down: false})
	}
	sort.Slice(bounds, func(i, j int) bool {
		if !bounds[i].t.Equal(bounds[j].t) {
			return bounds[i].t.Before(bounds[j].t)
		}
		// Ups before downs at the same instant keeps the down-set
		// minimal.
		return !bounds[i].down && bounds[j].down
	})

	downCount := make(map[topo.LinkID]int)
	downSet := make(map[topo.LinkID]bool)
	isolatedSince := make(map[string]time.Time)
	linksAt := make(map[string][]topo.LinkID)
	var events []IsolationEvent

	openLinks := func() []topo.LinkID {
		links := make([]topo.LinkID, 0, len(downSet))
		for l := range downSet {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
		return links
	}

	for i := 0; i < len(bounds); {
		t := bounds[i].t
		for i < len(bounds) && bounds[i].t.Equal(t) {
			b := bounds[i]
			if b.down {
				downCount[b.link]++
			} else {
				downCount[b.link]--
			}
			if downCount[b.link] > 0 {
				downSet[b.link] = true
			} else {
				delete(downSet, b.link)
			}
			i++
		}
		isolated := g.IsolatedCustomers(downSet)
		cur := make(map[string]bool, len(isolated))
		var snapshot []topo.LinkID
		for _, c := range isolated {
			cur[c] = true
			if _, already := isolatedSince[c]; !already {
				isolatedSince[c] = t
				if snapshot == nil {
					snapshot = openLinks()
				}
				linksAt[c] = snapshot
			}
		}
		for c, since := range isolatedSince {
			if !cur[c] {
				events = append(events, IsolationEvent{
					Customer: c,
					Interval: trace.Interval{Start: since, End: t},
					Links:    linksAt[c],
				})
				delete(isolatedSince, c)
				delete(linksAt, c)
			}
		}
	}
	// Close events still open at the end of the window.
	for c, since := range isolatedSince {
		events = append(events, IsolationEvent{
			Customer: c,
			Interval: trace.Interval{Start: since, End: end},
			Links:    linksAt[c],
		})
	}
	sort.Slice(events, func(i, j int) bool {
		if !events[i].Interval.Start.Equal(events[j].Interval.Start) {
			return events[i].Interval.Start.Before(events[j].Interval.Start)
		}
		return events[i].Customer < events[j].Customer
	})
	return events
}

// Table7 is the customer-isolation comparison (paper Table 7 and the
// unmatched-event breakdown of §4.4).
type Table7 struct {
	ISISEvents, SyslogEvents     int
	ISISSites, SyslogSites       int
	ISISDowntime, SyslogDowntime time.Duration
	IntersectionEvents           int
	IntersectionSites            int
	IntersectionDowntime         time.Duration
	// Syslog-only events: split by whether IS-IS saw any failure on
	// the affected links during the event.
	SyslogOnlyEvents        int
	SyslogOnlyNoISISFailure int
	SyslogOnlyIntersecting  int
	// IS-IS-only events: the §4.4 breakdown.
	ISISOnlyEvents            int
	ISISOnlyPartialMatch      int
	ISISOnlySyslogSawFailures int
	ISISOnlyUnrelated         int
	ISISOnlyDowntime          time.Duration
}

// Table7 runs the isolation analysis over both sources.
func (a *Analysis) Table7() Table7 {
	var t7 Table7
	if len(a.In.Customers) == 0 {
		return t7
	}
	// The isolation graph needs the customer list attached.
	netWithCustomers := *a.In.Network
	netWithCustomers.Customers = a.In.Customers
	g := topo.NewGraph(&netWithCustomers)

	isisEvents := IsolationEvents(g, a.In.Customers, a.ISISFailures, a.In.End)
	syslogEvents := IsolationEvents(g, a.In.Customers, a.SyslogFailures, a.In.End)

	t7.ISISEvents = len(isisEvents)
	t7.SyslogEvents = len(syslogEvents)
	t7.ISISSites = distinctCustomers(isisEvents)
	t7.SyslogSites = distinctCustomers(syslogEvents)
	t7.ISISDowntime = totalIsolation(isisEvents)
	t7.SyslogDowntime = totalIsolation(syslogEvents)

	// Match events: same customer, overlapping intervals, one-to-one.
	matchedI := make([]bool, len(isisEvents))
	matchedS := make([]bool, len(syslogEvents))
	interCustomers := make(map[string]bool)
	byCustomer := make(map[string][]int)
	for j, e := range syslogEvents {
		byCustomer[e.Customer] = append(byCustomer[e.Customer], j)
	}
	for i, ie := range isisEvents {
		for _, j := range byCustomer[ie.Customer] {
			if matchedS[j] {
				continue
			}
			se := syslogEvents[j]
			lo := maxTime(ie.Interval.Start, se.Interval.Start)
			hi := minTime(ie.Interval.End, se.Interval.End)
			if hi.After(lo) {
				matchedI[i] = true
				matchedS[j] = true
				t7.IntersectionEvents++
				t7.IntersectionDowntime += hi.Sub(lo)
				interCustomers[ie.Customer] = true
				break
			}
		}
	}
	t7.IntersectionSites = len(interCustomers)

	// Classify unmatched events.
	isisByLink := match.GroupByLink(a.ISISFailures)
	syslogByLink := match.GroupByLink(a.SyslogFailures)
	for j, se := range syslogEvents {
		if matchedS[j] {
			continue
		}
		t7.SyslogOnlyEvents++
		if anyFailureDuring(isisByLink, se) {
			t7.SyslogOnlyIntersecting++
		} else {
			t7.SyslogOnlyNoISISFailure++
		}
	}
	for i, ie := range isisEvents {
		if matchedI[i] {
			continue
		}
		t7.ISISOnlyEvents++
		t7.ISISOnlyDowntime += ie.Duration()
		switch {
		case anyEventOverlap(syslogEvents, ie):
			t7.ISISOnlyPartialMatch++
		case anyFailureDuring(syslogByLink, ie):
			t7.ISISOnlySyslogSawFailures++
		default:
			t7.ISISOnlyUnrelated++
		}
	}
	return t7
}

func distinctCustomers(events []IsolationEvent) int {
	set := make(map[string]bool)
	for _, e := range events {
		set[e.Customer] = true
	}
	return len(set)
}

func totalIsolation(events []IsolationEvent) time.Duration {
	var total time.Duration
	for _, e := range events {
		total += e.Duration()
	}
	return total
}

// anyFailureDuring reports whether the other source saw any failure
// on the event's affected links during the event's interval.
func anyFailureDuring(byLink map[topo.LinkID][]trace.Failure, e IsolationEvent) bool {
	probe := trace.Failure{Start: e.Interval.Start, End: e.Interval.End}
	for _, link := range e.Links {
		probe.Link = link
		if match.Intersects(probe, byLink) {
			return true
		}
	}
	return false
}

// anyEventOverlap reports whether any event for the same customer
// overlaps the probe interval.
func anyEventOverlap(events []IsolationEvent, probe IsolationEvent) bool {
	for _, e := range events {
		if e.Customer != probe.Customer {
			continue
		}
		lo := maxTime(e.Interval.Start, probe.Interval.Start)
		hi := minTime(e.Interval.End, probe.Interval.End)
		if hi.After(lo) {
			return true
		}
	}
	return false
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
