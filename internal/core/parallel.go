package core

import (
	"sync"

	"netfail/internal/pool"
)

// extractTally accumulates the message-accounting counters that
// ExtractSyslog's shards produce. Each worker parses a contiguous
// chunk of the capture into shard-local state and folds its counts in
// here as it finishes; the transition slices themselves are merged
// index-ordered and never cross the mutex.
type extractTally struct {
	mu         sync.Mutex
	unresolved int // guarded by mu
	nonLink    int // guarded by mu
	adj        int // guarded by mu
	phys       int // guarded by mu
}

// add folds one shard's counters into the tally.
func (t *extractTally) add(unresolved, nonLink, adj, phys int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.unresolved += unresolved
	t.nonLink += nonLink
	t.adj += adj
	t.phys += phys
}

// snapshot reads the folded counters after the pool has drained.
func (t *extractTally) snapshot() (unresolved, nonLink, adj, phys int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.unresolved, t.nonLink, t.adj, t.phys
}

// chunkBounds splits n items into at most workers contiguous chunks
// and returns the chunk boundaries: chunk i is [bounds[i], bounds[i+1]).
// Contiguous chunks let the merge concatenate shard outputs in index
// order, reproducing the sequential iteration order exactly.
func chunkBounds(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, 0, workers+1)
	for i := 0; i <= workers; i++ {
		bounds = append(bounds, i*n/workers)
	}
	return bounds
}

// resolveParallelism maps the Input.Parallelism knob to a worker
// count (<= 0 means GOMAXPROCS).
func resolveParallelism(n int) int { return pool.Resolve(n) }
