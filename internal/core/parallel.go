package core

import (
	"netfail/internal/pool"
)

// chunkBounds splits n items into at most workers contiguous chunks
// and returns the chunk boundaries: chunk i is [bounds[i], bounds[i+1]).
// Contiguous chunks let the merge concatenate shard outputs in index
// order, reproducing the sequential iteration order exactly.
func chunkBounds(n, workers int) []int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, 0, workers+1)
	for i := 0; i <= workers; i++ {
		bounds = append(bounds, i*n/workers)
	}
	return bounds
}

// resolveParallelism maps the Input.Parallelism knob to a worker
// count (<= 0 means GOMAXPROCS).
func resolveParallelism(n int) int { return pool.Resolve(n) }
