package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// The flat-pass merge in mergeStream relies on two properties proved
// in its comment: a time-sorted input stream admits single-pass
// per-link duplicate absorption, and after absorption no two survivors
// share (Time, Link, Dir), so re-ordering equal-timestamp runs by
// (link, direction) reproduces SortTransitions exactly. These tests
// check the fast path against mergeLinkStreamReference — the original
// grouped merge, kept as the oracle — across randomized sorted
// streams, dense equal-time ties, window extremes, and arbitrary
// shard splits.

// mergeFixture builds an Extractor with n sorted links and converts a
// flat transition stream into chunked shards carrying the key/index
// mirrors parseChunk would have produced.
type mergeFixture struct {
	e     *Extractor
	byID  map[topo.LinkID]int32
	links []topo.LinkID
}

func newMergeFixture(nlinks int) *mergeFixture {
	f := &mergeFixture{byID: make(map[topo.LinkID]int32, nlinks)}
	for i := 0; i < nlinks; i++ {
		id := topo.LinkID(fmt.Sprintf("link-%02d", i))
		f.links = append(f.links, id)
		f.byID[id] = int32(i)
	}
	f.e = &Extractor{links: f.links}
	return f
}

// shard splits the stream into nc contiguous chunks, mirroring the
// chunk bounds the parallel parse would have used.
func (f *mergeFixture) shard(stream []trace.Transition, nc int) []extractShard {
	bounds := chunkBounds(len(stream), nc)
	shards := make([]extractShard, len(bounds)-1)
	for i := range shards {
		for _, tr := range stream[bounds[i]:bounds[i+1]] {
			shards[i].adjT = append(shards[i].adjT, tr)
			shards[i].adjK = append(shards[i].adjK, tr.Time.UnixNano())
			shards[i].adjL = append(shards[i].adjL, f.byID[tr.Link])
		}
	}
	return shards
}

func (f *mergeFixture) merge(stream []trace.Transition, nc int, w time.Duration, sorted bool) []trace.Transition {
	var ms mergeState
	return f.e.mergeStream(&ms, f.shard(stream, nc), false, w, len(stream), sorted, nil)
}

// randomSortedStream draws a time-sorted stream over nlinks links with
// deliberately clumped timestamps: repeats inside and outside typical
// windows, equal-time bursts across links, and mixed reporters.
func randomSortedStream(rng *rand.Rand, n, nlinks int, links []topo.LinkID) []trace.Transition {
	out := make([]trace.Transition, 0, n)
	k := int64(1000)
	for len(out) < n {
		// Advance 0 (ties), a few seconds (inside window), or minutes.
		switch rng.Intn(4) {
		case 0: // keep k: equal-time burst
		case 1:
			k += int64(rng.Intn(5))
		case 2:
			k += int64(1 + rng.Intn(90))
		default:
			k += int64(120 + rng.Intn(600))
		}
		burst := 1 + rng.Intn(3)
		for b := 0; b < burst && len(out) < n; b++ {
			dir := trace.Down
			if rng.Intn(2) == 1 {
				dir = trace.Up
			}
			out = append(out, trace.Transition{
				Time:     time.Unix(k, 0).UTC(),
				Link:     links[rng.Intn(nlinks)],
				Dir:      dir,
				Kind:     trace.KindISISAdj,
				Reporter: fmt.Sprintf("r%d", rng.Intn(4)),
			})
		}
	}
	// Bursts share a timestamp but the stream stays globally sorted.
	return out
}

func TestMergeFastPathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := newMergeFixture(12)
	windows := []time.Duration{0, time.Second, 10 * time.Second, 60 * time.Second, time.Hour}
	for trial := 0; trial < 40; trial++ {
		stream := randomSortedStream(rng, 50+rng.Intn(400), 12, f.links)
		w := windows[trial%len(windows)]
		want := mergeLinkStreamReference(append([]trace.Transition(nil), stream...), w)
		for _, nc := range []int{1, 2, 3, 7} {
			got := f.merge(stream, nc, w, true)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d window %v chunks %d: fast path diverges\n got %d transitions\nwant %d",
					trial, w, nc, len(got), len(want))
			}
		}
	}
}

func TestMergeFastPathEqualTimeTieOrder(t *testing.T) {
	// Every link transitions at the same instant, arriving in scrambled
	// link order: the equal-time run re-order must reproduce the
	// (time, link, direction) sort exactly.
	f := newMergeFixture(8)
	at := time.Unix(5000, 0).UTC()
	var stream []trace.Transition
	for _, li := range []int{5, 2, 7, 0, 3, 6, 1, 4} {
		for _, dir := range []trace.Direction{trace.Up, trace.Down} {
			stream = append(stream, trace.Transition{
				Time: at, Link: f.links[li], Dir: dir,
				Kind: trace.KindISISAdj, Reporter: "r0",
			})
		}
	}
	want := mergeLinkStreamReference(append([]trace.Transition(nil), stream...), 10*time.Second)
	got := f.merge(stream, 3, 10*time.Second, true)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("tie order diverges:\n got %+v\nwant %+v", got, want)
	}
	if len(got) != 16 {
		t.Fatalf("merged %d transitions, want 16 (one per link and direction)", len(got))
	}
}

func TestMergeZeroWindowAbsorbsExactTies(t *testing.T) {
	// Window 0 still absorbs a same-time same-direction duplicate — the
	// property that makes Reporter irrelevant to the final order.
	f := newMergeFixture(1)
	at := time.Unix(100, 0).UTC()
	stream := []trace.Transition{
		{Time: at, Link: f.links[0], Dir: trace.Down, Kind: trace.KindISISAdj, Reporter: "a"},
		{Time: at, Link: f.links[0], Dir: trace.Down, Kind: trace.KindISISAdj, Reporter: "b"},
	}
	got := f.merge(stream, 1, 0, true)
	want := mergeLinkStreamReference(append([]trace.Transition(nil), stream...), 0)
	if !reflect.DeepEqual(got, want) || len(got) != 1 {
		t.Fatalf("window-0 merge = %+v, reference %+v", got, want)
	}
	if got[0].Reporter != "a" {
		t.Fatalf("survivor reporter = %q, want first arrival", got[0].Reporter)
	}
}

func TestMergeUnsortedFallsBackToReference(t *testing.T) {
	// An out-of-order capture (sorted=false) and a negative window must
	// both route to the reference path and match it on arbitrary input.
	rng := rand.New(rand.NewSource(7))
	f := newMergeFixture(6)
	stream := randomSortedStream(rng, 200, 6, f.links)
	rng.Shuffle(len(stream), func(i, j int) { stream[i], stream[j] = stream[j], stream[i] })
	want := mergeLinkStreamReference(append([]trace.Transition(nil), stream...), 10*time.Second)
	if got := f.merge(stream, 4, 10*time.Second, false); !reflect.DeepEqual(got, want) {
		t.Fatalf("unsorted fallback diverges: got %d, want %d", len(got), len(want))
	}
	sortedStream := randomSortedStream(rng, 100, 6, f.links)
	wantNeg := mergeLinkStreamReference(append([]trace.Transition(nil), sortedStream...), -time.Second)
	if got := f.merge(sortedStream, 2, -time.Second, true); !reflect.DeepEqual(got, wantNeg) {
		t.Fatalf("negative-window fallback diverges: got %d, want %d", len(got), len(wantNeg))
	}
}

func TestMergeStateReuseAcrossCalls(t *testing.T) {
	// Back-to-back merges through one mergeState (the Extractor's
	// steady state) must not leak per-link state between captures.
	rng := rand.New(rand.NewSource(11))
	f := newMergeFixture(10)
	var ms mergeState
	var dst []trace.Transition
	for trial := 0; trial < 10; trial++ {
		stream := randomSortedStream(rng, 150, 10, f.links)
		want := mergeLinkStreamReference(append([]trace.Transition(nil), stream...), 10*time.Second)
		dst = f.e.mergeStream(&ms, f.shard(stream, 3), false, 10*time.Second, len(stream), true, dst)
		if !reflect.DeepEqual(dst, want) {
			t.Fatalf("trial %d: reused-state merge diverges (got %d, want %d)", trial, len(dst), len(want))
		}
	}
}

// TestExtractUnsortedCaptureMatchesReference drives the full
// ExtractInto path with an out-of-order capture: the per-chunk
// sortedness detection must route the merge to the reference path, and
// the result must be chunking-invariant.
func TestExtractUnsortedCaptureMatchesReference(t *testing.T) {
	n, _ := tinyNet(t)
	msgs := []*syslog.Message{
		adjMsg("core-a", "Te0", "cpe-1", 300, false), // out of order
		adjMsg("core-a", "Te0", "cpe-1", 100, false),
		adjMsg("cpe-1", "Gi0", "core-a", 103, false),
		adjMsg("core-a", "Te0", "cpe-1", 400, true),
	}
	seq := ExtractSyslog(n, msgs, 60*time.Second)
	for _, workers := range []int{2, 3, 4} {
		par := ExtractSyslogParallel(context.Background(), n, msgs, 60*time.Second, workers)
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("workers=%d: unsorted capture diverges from sequential", workers)
		}
	}
	// The merge must still have collapsed the counterpart report.
	if len(seq.MergedAdj) != 3 {
		t.Fatalf("merged = %d, want 3 (counterpart at 103 absorbed)", len(seq.MergedAdj))
	}
}
