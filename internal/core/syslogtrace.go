package core

import (
	"context"
	"math"
	"sort"
	"time"

	"netfail/internal/obs"
	"netfail/internal/pool"
	"netfail/internal/syslog"
	"netfail/internal/topo"
	"netfail/internal/trace"
)

// SyslogTraces is the structured form of a syslog capture: the
// message stream resolved onto links and split into the channels the
// comparison needs.
type SyslogTraces struct {
	// PerRouterAdj has one transition per IS-IS adjacency message,
	// with Reporter naming the sending router — the unit Table 3
	// counts (None/One/Both routers reporting).
	PerRouterAdj []trace.Transition
	// MergedAdj is the per-link state stream: the two routers'
	// reports of one event are collapsed into a single transition,
	// while genuinely repeated transitions (double Down/Up) survive
	// for ambiguity analysis.
	MergedAdj []trace.Transition
	// MergedPhysical is the same merge over %LINK/%LINEPROTO
	// messages.
	MergedPhysical []trace.Transition
	// Unresolved counts messages whose (router, interface) pair did
	// not map to a known link.
	Unresolved int
	// NonLink counts messages of kinds the analysis ignores.
	NonLink int
	// AdjMessages and PhysMessages count resolved messages by class.
	AdjMessages  int
	PhysMessages int
	// Messages counts every message the extraction consumed — the
	// capture size Table 1 reports, carried here so pre-extracted
	// (sharded) captures report it without retaining the messages.
	Messages int
}

// Merge appends o's streams and counters onto st. The sharded capture
// path extracts each topology domain separately and merges in the
// manifest's fixed shard order; because domains are link-disjoint,
// plain concatenation keeps every per-link stream time-sorted, and
// skipping a global re-sort (which would be unstable across
// equal-time entries) is what keeps single-shard captures
// byte-identical to the in-RAM path.
func (st *SyslogTraces) Merge(o *SyslogTraces) {
	st.PerRouterAdj = append(st.PerRouterAdj, o.PerRouterAdj...)
	st.MergedAdj = append(st.MergedAdj, o.MergedAdj...)
	st.MergedPhysical = append(st.MergedPhysical, o.MergedPhysical...)
	st.Unresolved += o.Unresolved
	st.NonLink += o.NonLink
	st.AdjMessages += o.AdjMessages
	st.PhysMessages += o.PhysMessages
	st.Messages += o.Messages
}

// Extractor resolves syslog captures against one topology. It owns
// the (router, interface) → link resolver and all per-worker parse and
// merge scratch, so a long-lived Extractor — the streaming daemon's
// shape, and the benchmark's — performs only the handful of exact-size
// result allocations per Extract call: amortized zero allocations per
// message. An Extractor is not safe for concurrent Extract calls;
// Extract itself fans out over the worker pool internally.
type Extractor struct {
	net   *topo.Network
	links []topo.LinkID // sorted; the merge state's index space

	// resolver maps "host\x00iface" to the link index, folding the
	// old router-map lookup + linear interface scan + link presence
	// check into one probe. Keys are substrings of one backing string.
	// Topology names never contain NUL, so the separator cannot be
	// forged by a hostile hostname: such a key simply misses, exactly
	// as the two-step lookup would.
	resolver map[string]int32

	shards        []extractShard // per-chunk parse scratch, reused across calls
	adjSt, physSt mergeState     // per-stream merge state + emit scratch
}

// extractShard is one chunk's parse output and the worker scratch that
// produced it: transition/key/link-index triples per stream, the
// resolver key buffer, and the reused link event.
type extractShard struct {
	adjT, physT []trace.Transition
	adjK, physK []int64 // UnixNano mirror of adjT/physT
	adjL, physL []int32 // link-index mirror of adjT/physT
	keyBuf      []byte
	ev          syslog.LinkEvent

	unresolved, nonLink int
	sorted              bool  // accepted entries were time-ordered within the chunk
	firstK, lastK       int64 // seam-check bounds (accepted entries only)
}

// mergeState is one stream's per-link merge state plus the key
// scratch mirroring the emitted transitions.
type mergeState struct {
	lastEmit []int64
	lastDir  []int8
	seen     []bool

	outK []int64
	outL []int32 // (link index << 1) | direction: the equal-time tie order
}

// reset sizes the per-link arrays and clears the seen marks.
func (ms *mergeState) reset(nlinks int) {
	if cap(ms.lastEmit) < nlinks {
		ms.lastEmit = make([]int64, nlinks)
		ms.lastDir = make([]int8, nlinks)
		ms.seen = make([]bool, nlinks)
	}
	ms.lastEmit = ms.lastEmit[:nlinks]
	ms.lastDir = ms.lastDir[:nlinks]
	ms.seen = ms.seen[:nlinks]
	clear(ms.seen)
}

// NewExtractor builds the resolver and link index for one topology.
func NewExtractor(net *topo.Network) *Extractor {
	e := &Extractor{net: net}
	e.links = make([]topo.LinkID, 0, len(net.Links))
	for _, l := range net.Links {
		e.links = append(e.links, l.ID)
	}
	sort.Slice(e.links, func(i, j int) bool { return e.links[i] < e.links[j] })
	byID := make(map[topo.LinkID]int32, len(e.links))
	for i, id := range e.links {
		byID[id] = int32(i)
	}

	// Keys live as substrings of one backing string: the table costs
	// O(interfaces) to build but a bounded number of allocations.
	type keySpan struct{ lo, hi, li int32 }
	var blob []byte
	spans := make([]keySpan, 0, 2*len(net.Links))
	for _, name := range net.RouterNames {
		for _, ifc := range net.Routers[name].Interfaces {
			if ifc.Link == "" {
				continue
			}
			lo := int32(len(blob))
			blob = append(blob, name...)
			blob = append(blob, 0)
			blob = append(blob, ifc.Name...)
			spans = append(spans, keySpan{lo, int32(len(blob)), byID[ifc.Link]})
		}
	}
	backing := string(blob)
	e.resolver = make(map[string]int32, len(spans))
	for _, sp := range spans {
		e.resolver[backing[sp.lo:sp.hi]] = sp.li
	}
	return e
}

// ExtractSyslog resolves and merges a syslog capture against the
// (mined) topology. mergeWindow is the span within which two
// same-direction messages are treated as the two routers' reports of
// one transition; the paper's ten-second matching window is the
// natural choice.
func ExtractSyslog(net *topo.Network, msgs []*syslog.Message, mergeWindow time.Duration) *SyslogTraces {
	return ExtractSyslogParallel(context.Background(), net, msgs, mergeWindow, 1)
}

// ExtractSyslogParallel is ExtractSyslog sharded across a bounded
// worker pool: the capture is split into contiguous chunks parsed
// concurrently, the shard outputs are walked in chunk order
// (reproducing the sequential message order exactly), and the per-link
// merges of the two streams then run as concurrent stages. Output is
// byte-identical to the sequential path for any worker count. Callers
// doing repeated extractions should hold a NewExtractor and call
// Extract to reuse its scratch.
func ExtractSyslogParallel(ctx context.Context, net *topo.Network, msgs []*syslog.Message, mergeWindow time.Duration, workers int) *SyslogTraces {
	return NewExtractor(net).Extract(ctx, msgs, mergeWindow, workers)
}

// Extract runs the extraction pipeline over one capture into a fresh
// result. A cancellation leaves the result partially filled; callers
// observe it through ctx.Err() and discard the result.
func (e *Extractor) Extract(ctx context.Context, msgs []*syslog.Message, mergeWindow time.Duration, workers int) *SyslogTraces {
	st := &SyslogTraces{}
	e.ExtractInto(ctx, msgs, mergeWindow, workers, st)
	return st
}

// ExtractInto is Extract into a caller-owned result, truncating and
// reusing st's transition slices. A long-lived (Extractor, result)
// pair — the streaming ingest shape — makes repeated extractions
// allocation-free at steady state: no per-message garbage means the
// collector never runs between captures. Empty streams leave the
// reused slices truncated to length zero rather than resetting them
// to nil.
func (e *Extractor) ExtractInto(ctx context.Context, msgs []*syslog.Message, mergeWindow time.Duration, workers int, st *SyslogTraces) {
	ctx, done := obs.Stage(ctx, "extract-syslog")
	defer done()
	bounds := chunkBounds(len(msgs), workers)
	nshards := len(bounds) - 1
	for len(e.shards) < nshards {
		e.shards = append(e.shards, extractShard{})
	}
	shards := e.shards[:nshards]
	_ = pool.ForEachWorkerCtx(ctx, nshards, workers, func(_ context.Context, _, i int) {
		shards[i].parseChunk(e, msgs[bounds[i]:bounds[i+1]])
	})

	adjN, physN := 0, 0
	st.Unresolved, st.NonLink = 0, 0
	sorted := true
	lastSeen := int64(math.MinInt64)
	for i := range shards {
		s := &shards[i]
		st.Unresolved += s.unresolved
		st.NonLink += s.nonLink
		adjN += len(s.adjT)
		physN += len(s.physT)
		if len(s.adjT)+len(s.physT) == 0 {
			continue
		}
		if !s.sorted || s.firstK < lastSeen {
			sorted = false
		}
		lastSeen = s.lastK
	}
	st.AdjMessages, st.PhysMessages = adjN, physN
	st.Messages = len(msgs)

	st.PerRouterAdj = st.PerRouterAdj[:0]
	if adjN > 0 {
		if cap(st.PerRouterAdj) < adjN {
			st.PerRouterAdj = make([]trace.Transition, 0, adjN)
		}
		for i := range shards {
			st.PerRouterAdj = append(st.PerRouterAdj, shards[i].adjT...)
		}
	}

	_ = pool.StagesCtx(ctx, workers,
		func(context.Context) {
			st.MergedAdj = e.mergeStream(&e.adjSt, shards, false, mergeWindow, adjN, sorted, st.MergedAdj)
		},
		func(context.Context) {
			st.MergedPhysical = e.mergeStream(&e.physSt, shards, true, mergeWindow, physN, sorted, st.MergedPhysical)
		},
	)
}

// parseChunk parses one contiguous chunk of the capture into the
// shard's reused accumulators.
//
//netfail:hotpath
func (s *extractShard) parseChunk(e *Extractor, msgs []*syslog.Message) {
	s.adjT, s.adjK, s.adjL = s.adjT[:0], s.adjK[:0], s.adjL[:0]
	s.physT, s.physK, s.physL = s.physT[:0], s.physK[:0], s.physL[:0]
	s.unresolved, s.nonLink = 0, 0
	s.sorted = true
	s.firstK, s.lastK = math.MaxInt64, math.MinInt64
	prev := int64(math.MinInt64)
	ev := &s.ev
	for _, m := range msgs {
		if err := syslog.ParseLinkEventInto(m, ev); err != nil {
			s.nonLink++
			continue
		}
		key := append(s.keyBuf[:0], ev.Router...)
		key = append(key, 0)
		key = append(key, ev.Interface...)
		s.keyBuf = key
		li, ok := e.resolver[string(key)]
		if !ok {
			s.unresolved++
			continue
		}
		dir := trace.Down
		if ev.Up {
			dir = trace.Up
		}
		k := ev.Time.UnixNano()
		switch ev.Type {
		case syslog.EventISISAdj:
			s.adjT = append(s.adjT, trace.Transition{Time: ev.Time, Link: e.links[li], Dir: dir, Kind: trace.KindISISAdj, Reporter: ev.Router})
			s.adjK = append(s.adjK, k)
			s.adjL = append(s.adjL, li)
		case syslog.EventLink, syslog.EventLineProto:
			s.physT = append(s.physT, trace.Transition{Time: ev.Time, Link: e.links[li], Dir: dir, Kind: trace.KindPhysical, Reporter: ev.Router})
			s.physK = append(s.physK, k)
			s.physL = append(s.physL, li)
		default:
			s.nonLink++
			continue
		}
		if k < prev {
			s.sorted = false
		}
		prev = k
		if s.firstK == math.MaxInt64 {
			s.firstK = k
		}
		s.lastK = k
	}
}

// mergeStream collapses one stream's per-router reports into per-link
// transitions and returns them time-sorted. The capture is time-sorted
// in every real pipeline, which admits a single flat pass with
// per-link state — no per-link grouping, no map, no sort: the emitted
// subsequence is already time-ordered, and the final SortTransitions
// order differs from it only inside equal-timestamp runs, which are
// re-ordered by (link, direction, reporter) in place. Unsorted input
// and negative windows take the reference path.
//
//netfail:hotpath
func (e *Extractor) mergeStream(ms *mergeState, shards []extractShard, phys bool, mergeWindow time.Duration, total int, sorted bool, dst []trace.Transition) []trace.Transition {
	dst = dst[:0]
	if total == 0 {
		return dst
	}
	stream := func(s *extractShard) ([]trace.Transition, []int64, []int32) {
		if phys {
			return s.physT, s.physK, s.physL
		}
		return s.adjT, s.adjK, s.adjL
	}
	if !sorted || mergeWindow < 0 {
		flat := make([]trace.Transition, 0, total)
		for i := range shards {
			sT, _, _ := stream(&shards[i])
			flat = append(flat, sT...)
		}
		return mergeLinkStreamReference(flat, mergeWindow)
	}

	ms.reset(len(e.links))
	if cap(dst) < total {
		dst = make([]trace.Transition, 0, total)
	}
	w := int64(mergeWindow)
	outK, outL := ms.outK[:0], ms.outL[:0]
	for si := range shards {
		sT, sK, sL := stream(&shards[si])
		for i := range sT {
			li := sL[i]
			k := sK[i]
			d := int8(sT[i].Dir)
			if ms.seen[li] && ms.lastDir[li] == d {
				// sorted input makes k-lastEmit non-negative; a wrapped
				// (centuries-apart) difference lands negative and is
				// correctly not absorbed, matching time.Time.Sub's
				// saturation.
				if since := k - ms.lastEmit[li]; since >= 0 && since <= w {
					continue // counterpart router's duplicate
				}
			}
			dst = append(dst, sT[i])
			outK = append(outK, k)
			outL = append(outL, li<<1|int32(d))
			ms.seen[li] = true
			ms.lastDir[li] = d
			ms.lastEmit[li] = k
		}
	}
	ms.outK, ms.outL = outK, outL

	for i := 0; i < len(outK); {
		j := i + 1
		for j < len(outK) && outK[j] == outK[i] {
			j++
		}
		// Insertion sort the equal-time run by (link, direction,
		// reporter) — runs are almost always length 1. Reporter only
		// breaks a tie when a link flaps through the same direction
		// twice at one instant (Down/Up/Down): the repeats straddle an
		// opposite transition, so no window absorbs them.
		for a := i + 1; a < j; a++ {
			for b := a; b > i; b-- {
				if outL[b-1] < outL[b] || (outL[b-1] == outL[b] && dst[b-1].Reporter <= dst[b].Reporter) {
					break
				}
				outL[b-1], outL[b] = outL[b], outL[b-1]
				dst[b-1], dst[b] = dst[b], dst[b-1]
			}
		}
		i = j
	}
	return dst
}

// mergeLinkStreamReference is the original map-grouped merge: group
// per link preserving time order, absorb same-direction duplicates
// within the window, concatenate in sorted link order, and sort. It
// remains the oracle the flat-pass fast path is tested against, and
// the fallback for unsorted captures and negative windows.
func mergeLinkStreamReference(msgs []trace.Transition, mergeWindow time.Duration) []trace.Transition {
	grouped := trace.ByLink(msgs)
	links := make([]topo.LinkID, 0, len(grouped))
	for l := range grouped {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })

	out := make([]trace.Transition, 0, len(msgs))
	for _, l := range links {
		out = append(out, mergeOneLink(grouped[l], mergeWindow)...)
	}
	trace.SortTransitions(out)
	return out
}

// mergeOneLink collapses one link's time-sorted message stream.
func mergeOneLink(seq []trace.Transition, mergeWindow time.Duration) []trace.Transition {
	var out []trace.Transition
	var lastDir trace.Direction
	var lastEmit time.Time
	seen := false
	for _, m := range seq {
		if seen && m.Dir == lastDir && m.Time.Sub(lastEmit) <= mergeWindow {
			continue // counterpart router's duplicate
		}
		out = append(out, m)
		lastDir, lastEmit, seen = m.Dir, m.Time, true
	}
	return out
}
